package pardes

import (
	"testing"
	"time"

	"rstorm/internal/des"
)

// countingLane records every horizon it was advanced to.
type countingLane struct {
	horizons []time.Duration
	next     time.Duration
	hasNext  bool
}

func (l *countingLane) PeekTime() (time.Duration, bool) { return l.next, l.hasNext }
func (l *countingLane) AdvanceTo(h time.Duration) int {
	l.horizons = append(l.horizons, h)
	return 0
}

func TestCoordinatorAdvancesEveryLaneEachWindow(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		lanes := make([]Lane, 7)
		counting := make([]*countingLane, 7)
		for i := range lanes {
			counting[i] = &countingLane{}
			lanes[i] = counting[i]
		}
		c := NewCoordinator(lanes, workers)
		windows := []time.Duration{time.Second, 2 * time.Second, 5 * time.Second}
		for _, h := range windows {
			c.Advance(h)
		}
		c.Stop()
		c.Stop() // idempotent
		for i, l := range counting {
			if len(l.horizons) != len(windows) {
				t.Fatalf("workers=%d lane %d advanced %d times, want %d",
					workers, i, len(l.horizons), len(windows))
			}
			for j, h := range windows {
				if l.horizons[j] != h {
					t.Fatalf("workers=%d lane %d window %d horizon %v, want %v",
						workers, i, j, l.horizons[j], h)
				}
			}
		}
	}
}

func TestCoordinatorNextEvent(t *testing.T) {
	lanes := []Lane{
		&countingLane{next: 3 * time.Second, hasNext: true},
		&countingLane{},
		&countingLane{next: time.Second, hasNext: true},
	}
	c := NewCoordinator(lanes, 1)
	if at, ok := c.NextEvent(); !ok || at != time.Second {
		t.Fatalf("NextEvent = %v, %v, want 1s, true", at, ok)
	}
	empty := NewCoordinator([]Lane{&countingLane{}}, 1)
	if _, ok := empty.NextEvent(); ok {
		t.Fatal("NextEvent on idle lanes reported an event")
	}
}

// TestCoordinatorWindowedEnginesMatchSerial drives real des.Engines with
// self-rescheduling events through the coordinator at several worker
// counts: each lane's event count and final clock must match a serial
// single-engine run of the same schedule, for every pool width.
func TestCoordinatorWindowedEnginesMatchSerial(t *testing.T) {
	const lanes = 8
	horizon := 500 * time.Millisecond
	window := 2 * time.Millisecond
	run := func(workers int) []int {
		engines := make([]Lane, lanes)
		counts := make([]int, lanes)
		for i := range engines {
			e := des.NewEngine()
			i := i
			period := time.Duration(100+13*i) * time.Microsecond
			var tick func()
			tick = func() {
				counts[i]++
				e.Schedule(period, tick)
			}
			e.Schedule(period, tick)
			engines[i] = e
		}
		c := NewCoordinator(engines, workers)
		for now := time.Duration(0); now < horizon; now += window {
			h := now + window
			if h > horizon {
				h = horizon
			}
			c.Advance(h)
		}
		c.Stop()
		return counts
	}
	want := run(1)
	for i, period := 0, 100*time.Microsecond; i < 1; i++ {
		if got := int(horizon / period); want[0] < got-1 || want[0] > got+1 {
			t.Fatalf("lane 0 ticked %d times, want ~%d", want[0], got)
		}
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d lane %d ticked %d, serial %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRingFIFOAndReuse(t *testing.T) {
	var r Ring[int]
	if r.Len() != 0 {
		t.Fatal("fresh ring not empty")
	}
	// Interleave pushes and pops across several wrap-arounds.
	next, expect := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 3+round%5; i++ {
			r.Push(next)
			next++
		}
		for r.Len() > 2 {
			if got := r.Pop(); got != expect {
				t.Fatalf("Pop = %d, want %d", got, expect)
			}
			expect++
		}
	}
	for r.Len() > 0 {
		if got := r.Pop(); got != expect {
			t.Fatalf("drain Pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("popped %d of %d", expect, next)
	}
}

// BenchmarkRingSteadyState holds the inbox ring's push/drain cycle at
// 0 allocs/op once capacity has grown: the ring is the cross-shard
// hand-off path, paid per remote tuple per window.
func BenchmarkRingSteadyState(b *testing.B) {
	b.ReportAllocs()
	var r Ring[[2]uint64]
	for i := 0; i < 256; i++ {
		r.Push([2]uint64{})
	}
	for r.Len() > 0 {
		r.Pop()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			r.Push([2]uint64{uint64(i), uint64(j)})
		}
		for r.Len() > 0 {
			r.Pop()
		}
	}
}

// BenchmarkCoordinatorWindow measures the per-window barrier cost with
// busy des.Engine lanes — the overhead the lookahead window must
// amortize. Inline (workers=1) mode must be allocation-free per window;
// pooled mode pays only the channel hops.
func BenchmarkCoordinatorWindow(b *testing.B) {
	for _, workers := range []int{1, 4} {
		name := "workers=1"
		if workers == 4 {
			name = "workers=4"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			const lanes = 4
			engines := make([]Lane, lanes)
			for i := range engines {
				e := des.NewEngine()
				period := time.Duration(50+7*i) * time.Microsecond
				var tick func()
				tick = func() { e.Schedule(period, tick) }
				e.Schedule(period, tick)
				engines[i] = e
			}
			c := NewCoordinator(engines, workers)
			defer c.Stop()
			window := time.Millisecond
			now := time.Duration(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += window
				c.Advance(now)
			}
		})
	}
}
