// Package pardes is a conservative parallel harness over deterministic
// discrete-event lanes (DESIGN.md §11). A Lane is an independent event
// loop — in this repository, one internal/des.Engine per cluster rack —
// and the Coordinator advances every lane to a common horizon per call,
// spreading the lanes over a bounded pool of persistent workers.
//
// The conservative contract is the caller's: it must pick horizons such
// that no lane can affect another inside the window (the classic
// null-message lookahead bound — here, the minimum inter-shard network
// latency), and it must exchange cross-lane messages only between Advance
// calls, via Ring inboxes it drains at the barrier. Under that contract
// the lanes' event streams are independent of the worker count, so a
// seeded simulation produces byte-identical results for any parallelism.
//
// Synchronization is two channel hops per window: each worker receives
// the horizon on its own start channel and reports on a shared done
// channel. Both hops are happens-before edges, so lane state written
// inside a window is visible to the coordinator (and to whichever worker
// owns the lane next window) without locks; lanes are never touched by
// two goroutines at once because the lane→worker assignment is static.
package pardes

import "time"

// Lane is one independently advancing event loop. *des.Engine satisfies
// it. AdvanceTo must process every event strictly before the horizon and
// leave the lane's clock at the horizon; PeekTime must report the earliest
// pending event without disturbing the queue.
type Lane interface {
	PeekTime() (time.Duration, bool)
	AdvanceTo(horizon time.Duration) int
}

// Coordinator advances a fixed set of lanes in lock-stepped windows
// across a persistent worker pool. Workers > 1 spawns goroutines that
// live until Stop; workers <= 1 (or a single lane) runs inline with no
// goroutines at all, so a serial caller pays nothing for the abstraction.
type Coordinator struct {
	lanes  []Lane
	starts []chan time.Duration // one per worker; nil in inline mode
	done   chan struct{}
	blocks [][]Lane // static lane→worker assignment
}

// NewCoordinator builds a coordinator over lanes with the given worker
// count, clamped to [1, len(lanes)]. Lane index order is preserved within
// each worker's contiguous block, so any per-block iteration the caller
// observes (none, under the conservative contract) is deterministic.
func NewCoordinator(lanes []Lane, workers int) *Coordinator {
	c := &Coordinator{lanes: lanes}
	if workers > len(lanes) {
		workers = len(lanes)
	}
	if workers <= 1 {
		return c
	}
	c.starts = make([]chan time.Duration, workers)
	c.done = make(chan struct{}, workers)
	c.blocks = make([][]Lane, workers)
	// Contiguous blocks, remainder spread over the leading workers.
	per, extra := len(lanes)/workers, len(lanes)%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + per
		if w < extra {
			hi++
		}
		c.blocks[w] = lanes[lo:hi]
		lo = hi
		c.starts[w] = make(chan time.Duration, 1)
		go c.work(w)
	}
	return c
}

// Advance moves every lane to horizon and returns once all have arrived —
// the merge barrier. The caller drains cross-lane inboxes before the next
// call.
func (c *Coordinator) Advance(horizon time.Duration) {
	if c.starts == nil {
		advanceBlock(c.lanes, horizon)
		return
	}
	for _, ch := range c.starts {
		ch <- horizon
	}
	for range c.starts {
		<-c.done
	}
}

// NextEvent returns the earliest pending event time across all lanes.
// Call only at a barrier (between Advance calls).
func (c *Coordinator) NextEvent() (time.Duration, bool) {
	var earliest time.Duration
	any := false
	for _, ln := range c.lanes {
		if at, ok := ln.PeekTime(); ok && (!any || at < earliest) {
			earliest, any = at, true
		}
	}
	return earliest, any
}

// Stop terminates the worker pool. Idempotent; a no-op in inline mode.
// The coordinator must not be advanced again afterwards.
func (c *Coordinator) Stop() {
	if c.starts == nil {
		return
	}
	for _, ch := range c.starts {
		close(ch)
	}
	c.starts = nil
}

// work is one persistent worker: advance the static lane block each
// window, then report at the barrier.
func (c *Coordinator) work(w int) {
	block := c.blocks[w]
	for h := range c.starts[w] {
		advanceBlock(block, h)
		c.done <- struct{}{}
	}
}

// advanceBlock is the shard loop: every lane in the block runs its own
// heap to the horizon.
//
//rstorm:hotpath
func advanceBlock(block []Lane, horizon time.Duration) {
	for _, ln := range block {
		ln.AdvanceTo(horizon)
	}
}

// Ring is a growable FIFO inbox for cross-lane messages. It is
// single-producer/single-consumer by phase, not by locking: during a
// window exactly one lane pushes, and at the barrier exactly the
// coordinator pops — the Advance barrier itself is the fence between the
// phases, so the hot path carries no atomics. Steady state is
// allocation-free: capacity is retained across windows.
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Push appends v.
//
//rstorm:hotpath
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = v
	r.n++
}

// Pop removes and returns the oldest element. The caller must check Len
// first; popping an empty ring panics by index.
//
//rstorm:hotpath
func (r *Ring[T]) Pop() T {
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero // release references for the GC
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return v
}

// Len returns the number of queued elements.
//
//rstorm:hotpath
func (r *Ring[T]) Len() int { return r.n }

// grow doubles capacity, relinearizing the queue.
func (r *Ring[T]) grow() {
	next := make([]T, 2*len(r.buf)+1)
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		next[i] = r.buf[j]
	}
	r.buf = next
	r.head = 0
}
