package stormyaml

import (
	"strings"
	"testing"
)

func TestParseStormYaml(t *testing.T) {
	doc := `
# capacities per paper §5.2
supervisor.memory.capacity.mb: 20480.0
supervisor.cpu.capacity: 100.0
storm.scheduler: "rstorm.ResourceAwareScheduler"
topology.workers: 12
acking.enabled: true
debug: false
empty.value:
`
	cfg, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if f, ok := cfg.Float("supervisor.memory.capacity.mb"); !ok || f != 20480 {
		t.Errorf("memory = %v %v", f, ok)
	}
	if f, ok := cfg.Float("supervisor.cpu.capacity"); !ok || f != 100 {
		t.Errorf("cpu = %v %v", f, ok)
	}
	if s, ok := cfg.String("storm.scheduler"); !ok || s != "rstorm.ResourceAwareScheduler" {
		t.Errorf("scheduler = %q %v", s, ok)
	}
	if i, ok := cfg.Int("topology.workers"); !ok || i != 12 {
		t.Errorf("workers = %v %v", i, ok)
	}
	if b, ok := cfg.Bool("acking.enabled"); !ok || !b {
		t.Errorf("acking = %v %v", b, ok)
	}
	if b, ok := cfg.Bool("debug"); !ok || b {
		t.Errorf("debug = %v %v", b, ok)
	}
	if v, present := cfg["empty.value"]; !present || v != nil {
		t.Errorf("empty value = %v %v", v, present)
	}
	// Int accessor also available through Float.
	if f, ok := cfg.Float("topology.workers"); !ok || f != 12 {
		t.Errorf("workers as float = %v %v", f, ok)
	}
}

func TestParseNestedMaps(t *testing.T) {
	doc := `
rstorm.weights:
  cpu: 0.01
  memory: 0.0005
  bandwidth: 0.5
nimbus:
  host: master
  childopts:
    xmx: "-Xmx1024m"
`
	cfg, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	w, ok := cfg.Map("rstorm.weights")
	if !ok {
		t.Fatalf("weights missing: %v", cfg)
	}
	if f, ok := w.Float("cpu"); !ok || f != 0.01 {
		t.Errorf("cpu weight = %v %v", f, ok)
	}
	nb, ok := cfg.Map("nimbus")
	if !ok {
		t.Fatal("nimbus missing")
	}
	if s, _ := nb.String("host"); s != "master" {
		t.Errorf("host = %q", s)
	}
	inner, ok := nb.Map("childopts")
	if !ok {
		t.Fatal("childopts missing")
	}
	if s, _ := inner.String("xmx"); s != "-Xmx1024m" {
		t.Errorf("xmx = %q", s)
	}
}

func TestParseLists(t *testing.T) {
	doc := `
supervisor.slots.ports:
  - 6700
  - 6701
  - 6702
drpc.servers:
  - "host1"
  - "host2"
`
	cfg, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	ports, ok := cfg.List("supervisor.slots.ports")
	if !ok || len(ports) != 3 {
		t.Fatalf("ports = %v %v", ports, ok)
	}
	if ports[0] != int64(6700) {
		t.Errorf("port[0] = %v (%T)", ports[0], ports[0])
	}
	servers, _ := cfg.List("drpc.servers")
	if len(servers) != 2 || servers[1] != "host2" {
		t.Errorf("servers = %v", servers)
	}
}

func TestCommentsAndQuotes(t *testing.T) {
	doc := `
key1: value # trailing comment
key2: "quoted # not a comment"
key3: 'single # quoted'
`
	cfg, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if s, _ := cfg.String("key1"); s != "value" {
		t.Errorf("key1 = %q", s)
	}
	if s, _ := cfg.String("key2"); s != "quoted # not a comment" {
		t.Errorf("key2 = %q", s)
	}
	if s, _ := cfg.String("key3"); s != "single # quoted" {
		t.Errorf("key3 = %q", s)
	}
}

func TestScalarTypes(t *testing.T) {
	doc := `
int: 42
negint: -7
float: 3.14
negfloat: -0.5
exp: 1e3
nullv: null
tilde: ~
str: plain string with spaces
`
	cfg, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if v, _ := cfg.Int("int"); v != 42 {
		t.Errorf("int = %v", v)
	}
	if v, _ := cfg.Int("negint"); v != -7 {
		t.Errorf("negint = %v", v)
	}
	if v, _ := cfg.Float("float"); v != 3.14 {
		t.Errorf("float = %v", v)
	}
	if v, _ := cfg.Float("negfloat"); v != -0.5 {
		t.Errorf("negfloat = %v", v)
	}
	if v, _ := cfg.Float("exp"); v != 1000 {
		t.Errorf("exp = %v", v)
	}
	if cfg["nullv"] != nil || cfg["tilde"] != nil {
		t.Error("null values wrong")
	}
	if s, _ := cfg.String("str"); s != "plain string with spaces" {
		t.Errorf("str = %q", s)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
		sub  string
	}{
		{"no colon", "just some text\n", "expected 'key: value'"},
		{"empty key", ": value\n", "empty key"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate key"},
		{"tab indent", "a:\n\tb: 1\n", "tabs"},
		{"stray indent", "a: 1\n    b: 2\n", "unexpected indentation"},
		{"list at top level", "- item\n", "list item where mapping expected"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseString(tt.doc)
			if err == nil {
				t.Fatal("parse succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.sub) {
				t.Errorf("error %q does not contain %q", err, tt.sub)
			}
		})
	}
}

func TestEmptyDocument(t *testing.T) {
	cfg, err := ParseString("\n# only comments\n\n")
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(cfg) != 0 {
		t.Errorf("cfg = %v", cfg)
	}
}

func TestAccessorTypeMismatches(t *testing.T) {
	cfg, err := ParseString("s: hello\nn: 5\n")
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if _, ok := cfg.Float("s"); ok {
		t.Error("Float on string should fail")
	}
	if _, ok := cfg.Int("s"); ok {
		t.Error("Int on string should fail")
	}
	if _, ok := cfg.String("n"); ok {
		t.Error("String on int should fail")
	}
	if _, ok := cfg.Bool("n"); ok {
		t.Error("Bool on int should fail")
	}
	if _, ok := cfg.Map("n"); ok {
		t.Error("Map on int should fail")
	}
	if _, ok := cfg.List("n"); ok {
		t.Error("List on int should fail")
	}
	if _, ok := cfg.Float("missing"); ok {
		t.Error("Float on missing should fail")
	}
}
