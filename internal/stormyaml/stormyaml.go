// Package stormyaml parses the YAML subset used by storm.yaml-style
// configuration files (paper §5.2), using only the standard library. It
// supports scalar values (strings, numbers, booleans, null), nested maps
// through indentation, block lists, comments, and quoted strings — enough
// to express
//
//	supervisor.memory.capacity.mb: 20480.0
//	supervisor.cpu.capacity: 100.0
//	storm.scheduler: "rstorm.ResourceAwareScheduler"
//	rstorm.weights:
//	  cpu: 0.01
//	  memory: 0.0005
//	  bandwidth: 0.5
package stormyaml

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Config is a parsed document: keys map to scalars (string, float64, bool,
// nil), nested Config maps, or []any lists.
type Config map[string]any

// ParseString parses a document from a string.
func ParseString(s string) (Config, error) {
	return Parse(strings.NewReader(s))
}

// Parse parses a document from a reader.
func Parse(r io.Reader) (Config, error) {
	var lines []line
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		raw := scanner.Text()
		content := stripComment(raw)
		if strings.TrimSpace(content) == "" {
			continue
		}
		indent := 0
		for indent < len(content) && content[indent] == ' ' {
			indent++
		}
		if indent < len(content) && content[indent] == '\t' {
			return nil, fmt.Errorf("line %d: tabs are not allowed for indentation", lineNo)
		}
		lines = append(lines, line{no: lineNo, indent: indent, text: strings.TrimSpace(content)})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("read config: %w", err)
	}
	cfg, rest, err := parseMap(lines, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("line %d: unexpected indentation", rest[0].no)
	}
	return cfg, nil
}

type line struct {
	no     int
	indent int
	text   string
}

// stripComment removes a trailing comment, respecting quoted strings.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble {
				return s[:i]
			}
		}
	}
	return s
}

// parseMap consumes lines at exactly indent depth into a map, returning
// unconsumed lines.
func parseMap(lines []line, indent int) (Config, []line, error) {
	cfg := make(Config)
	for len(lines) > 0 {
		l := lines[0]
		if l.indent < indent {
			return cfg, lines, nil
		}
		if l.indent > indent {
			return nil, nil, fmt.Errorf("line %d: unexpected indentation", l.no)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, nil, fmt.Errorf("line %d: list item where mapping expected", l.no)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := cfg[key]; dup {
			return nil, nil, fmt.Errorf("line %d: duplicate key %q", l.no, key)
		}
		lines = lines[1:]
		if rest != "" {
			cfg[key] = parseScalar(rest)
			continue
		}
		// No inline value: nested map or list follows (or empty -> nil).
		if len(lines) == 0 || lines[0].indent <= indent {
			cfg[key] = nil
			continue
		}
		childIndent := lines[0].indent
		if strings.HasPrefix(lines[0].text, "-") {
			var items []any
			for len(lines) > 0 && lines[0].indent == childIndent &&
				(strings.HasPrefix(lines[0].text, "- ") || lines[0].text == "-") {
				item := strings.TrimSpace(strings.TrimPrefix(lines[0].text, "-"))
				items = append(items, parseScalar(item))
				lines = lines[1:]
			}
			if len(lines) > 0 && lines[0].indent > indent && lines[0].indent != childIndent {
				return nil, nil, fmt.Errorf("line %d: inconsistent list indentation", lines[0].no)
			}
			cfg[key] = items
			continue
		}
		child, remaining, err := parseMap(lines, childIndent)
		if err != nil {
			return nil, nil, err
		}
		cfg[key] = child
		lines = remaining
	}
	return cfg, lines, nil
}

// splitKey splits "key: value" respecting quoted keys.
func splitKey(l line) (key, value string, err error) {
	idx := strings.Index(l.text, ":")
	if idx < 0 {
		return "", "", fmt.Errorf("line %d: expected 'key: value', got %q", l.no, l.text)
	}
	key = strings.TrimSpace(l.text[:idx])
	key = unquote(key)
	if key == "" {
		return "", "", fmt.Errorf("line %d: empty key", l.no)
	}
	return key, strings.TrimSpace(l.text[idx+1:]), nil
}

// parseScalar interprets a scalar token.
func parseScalar(s string) any {
	switch s {
	case "", "~", "null", "Null", "NULL":
		return nil
	case "true", "True", "TRUE":
		return true
	case "false", "False", "FALSE":
		return false
	}
	if (strings.HasPrefix(s, `"`) && strings.HasSuffix(s, `"`) && len(s) >= 2) ||
		(strings.HasPrefix(s, `'`) && strings.HasSuffix(s, `'`) && len(s) >= 2) {
		return s[1 : len(s)-1]
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

func unquote(s string) string {
	if v, ok := parseScalar(s).(string); ok {
		return v
	}
	return s
}

// Float fetches a numeric value (int or float) by key.
func (c Config) Float(key string) (float64, bool) {
	switch v := c[key].(type) {
	case float64:
		return v, true
	case int64:
		return float64(v), true
	default:
		return 0, false
	}
}

// Int fetches an integer value by key.
func (c Config) Int(key string) (int64, bool) {
	v, ok := c[key].(int64)
	return v, ok
}

// String fetches a string value by key.
func (c Config) String(key string) (string, bool) {
	v, ok := c[key].(string)
	return v, ok
}

// Bool fetches a boolean value by key.
func (c Config) Bool(key string) (bool, bool) {
	v, ok := c[key].(bool)
	return v, ok
}

// Map fetches a nested mapping by key.
func (c Config) Map(key string) (Config, bool) {
	v, ok := c[key].(Config)
	return v, ok
}

// List fetches a list by key.
func (c Config) List(key string) ([]any, bool) {
	v, ok := c[key].([]any)
	return v, ok
}
