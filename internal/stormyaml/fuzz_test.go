package stormyaml

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that successful parses
// obey basic invariants (non-nil config, accessors safe on every key).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"key: value\n",
		"supervisor.cpu.capacity: 100.0\n",
		"a:\n  b: 1\n  c:\n    - x\n    - y\n",
		"quoted: \"hash # inside\"\n",
		"list:\n  - 1\n  - 2\n",
		"deep:\n  deeper:\n    deepest: true\n",
		"# only a comment\n",
		"weird: ~\n",
		"neg: -42\n",
		"exp: 1e9\n",
		"a: 1\nb:\n  c: 2\nd: 3\n",
		"t: true\nf: False\n",
		": empty\n",
		"dup: 1\ndup: 2\n",
		"tab:\n\tbad: 1\n",
		"-: dash\n",
		"- toplevel\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		cfg, err := ParseString(doc)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if cfg == nil {
			t.Fatal("nil config without error")
		}
		for key := range cfg {
			// Accessors must never panic regardless of stored type.
			cfg.Float(key)
			cfg.Int(key)
			cfg.String(key)
			cfg.Bool(key)
			cfg.Map(key)
			cfg.List(key)
			if strings.ContainsRune(key, '\n') {
				t.Fatalf("key contains newline: %q", key)
			}
		}
	})
}
