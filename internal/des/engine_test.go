package des

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	if n := e.RunUntil(10 * time.Second); n != 3 {
		t.Fatalf("processed %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Drain()
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	e.Schedule(time.Second, func() {
		fired = append(fired, e.Now())
		e.Schedule(time.Second, func() {
			fired = append(fired, e.Now())
		})
	})
	e.RunUntil(5 * time.Second)
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntilHorizonExcludesLaterEvents(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(10*time.Second, func() { ran = true })
	e.RunUntil(5 * time.Second)
	if ran {
		t.Fatal("event past horizon ran")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("Now = %v", e.Now())
	}
	e.RunUntil(15 * time.Second)
	if !ran {
		t.Fatal("event within horizon did not run")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		e.Schedule(-time.Hour, func() {
			if e.Now() != time.Second {
				t.Errorf("clamped event at %v, want 1s", e.Now())
			}
		})
	})
	e.Drain()
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(2*time.Second, func() {
		e.ScheduleAt(time.Second, func() {
			if e.Now() != 2*time.Second {
				t.Errorf("past event at %v, want 2s", e.Now())
			}
		})
	})
	e.Drain()
}

func TestStepOnEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	if e.Drain() != 0 {
		t.Fatal("Drain on empty queue processed events")
	}
}

func TestQuickClockNeverGoesBackwards(t *testing.T) {
	f := func(delays []int16) bool {
		e := NewEngine()
		last := time.Duration(-1)
		ok := true
		for _, d := range delays {
			delay := time.Duration(d) * time.Millisecond
			e.Schedule(delay, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Drain()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRunUntilProcessesExactlyHorizonEvents(t *testing.T) {
	f := func(raw []uint8) bool {
		e := NewEngine()
		within := 0
		for _, r := range raw {
			d := time.Duration(r) * time.Millisecond
			if d <= 100*time.Millisecond {
				within++
			}
			e.Schedule(d, func() {})
		}
		return e.RunUntil(100*time.Millisecond) == within
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
