package des

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	if n := e.RunUntil(10 * time.Second); n != 3 {
		t.Fatalf("processed %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Drain()
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	e.Schedule(time.Second, func() {
		fired = append(fired, e.Now())
		e.Schedule(time.Second, func() {
			fired = append(fired, e.Now())
		})
	})
	e.RunUntil(5 * time.Second)
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntilHorizonExcludesLaterEvents(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(10*time.Second, func() { ran = true })
	e.RunUntil(5 * time.Second)
	if ran {
		t.Fatal("event past horizon ran")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("Now = %v", e.Now())
	}
	e.RunUntil(15 * time.Second)
	if !ran {
		t.Fatal("event within horizon did not run")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		e.Schedule(-time.Hour, func() {
			if e.Now() != time.Second {
				t.Errorf("clamped event at %v, want 1s", e.Now())
			}
		})
	})
	e.Drain()
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(2*time.Second, func() {
		e.ScheduleAt(time.Second, func() {
			if e.Now() != 2*time.Second {
				t.Errorf("past event at %v, want 2s", e.Now())
			}
		})
	})
	e.Drain()
}

func TestStepOnEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	if e.Drain() != 0 {
		t.Fatal("Drain on empty queue processed events")
	}
}

// recordingEvent implements Event for typed-event tests.
type recordingEvent struct {
	id  int
	out *[]int
}

func (e *recordingEvent) Fire() { *e.out = append(*e.out, e.id) }

func TestTypedEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.ScheduleEvent(3*time.Second, &recordingEvent{id: 3, out: &order})
	e.ScheduleEvent(1*time.Second, &recordingEvent{id: 1, out: &order})
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Drain()
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTypedEventsInterleaveFIFOWithClosures(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			e.ScheduleEvent(time.Second, &recordingEvent{id: i, out: &order})
		} else {
			i := i
			e.Schedule(time.Second, func() { order = append(order, i) })
		}
	}
	e.Drain()
	for i := 0; i < 6; i++ {
		if order[i] != i {
			t.Fatalf("equal-timestamp typed/closure events not FIFO: %v", order)
		}
	}
}

// TestHeapFIFOUnderRandomInterleaving is the property test for the 4-ary
// heap: under randomized interleaved Schedule/Step sequences with heavily
// colliding timestamps, events sharing a timestamp must fire in exact
// scheduling order, and timestamps must be globally non-decreasing.
func TestHeapFIFOUnderRandomInterleaving(t *testing.T) {
	type fired struct {
		at  time.Duration
		seq int
	}
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		e := NewEngine()
		var log []fired
		seq := 0
		schedule := func() {
			// Few distinct timestamps ahead of now -> many collisions.
			at := e.Now() + time.Duration(rng.Intn(4))*time.Millisecond
			id := seq
			seq++
			if rng.Intn(2) == 0 {
				e.ScheduleAt(at, func() { log = append(log, fired{at: at, seq: id}) })
			} else {
				at := at
				e.ScheduleEventAt(at, eventFunc(func() { log = append(log, fired{at: at, seq: id}) }))
			}
		}
		for op := 0; op < 400; op++ {
			if rng.Intn(3) == 0 {
				e.Step()
			} else {
				schedule()
			}
		}
		e.Drain()
		if len(log) != seq {
			t.Fatalf("trial %d: fired %d of %d events", trial, len(log), seq)
		}
		for i := 1; i < len(log); i++ {
			prev, cur := log[i-1], log[i]
			if cur.at < prev.at {
				t.Fatalf("trial %d: time went backwards: %v after %v", trial, cur.at, prev.at)
			}
			if cur.at == prev.at && cur.seq < prev.seq {
				t.Fatalf("trial %d: equal-timestamp events out of FIFO order: seq %d fired after %d at %v",
					trial, prev.seq, cur.seq, cur.at)
			}
		}
	}
}

// eventFunc adapts a func to Event for tests.
type eventFunc func()

func (f eventFunc) Fire() { f() }

func TestPeekTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue reported an event")
	}
	e.Schedule(3*time.Second, func() {})
	e.Schedule(time.Second, func() {})
	if at, ok := e.PeekTime(); !ok || at != time.Second {
		t.Fatalf("PeekTime = %v, %v, want 1s, true", at, ok)
	}
	// Peeking must not disturb the queue.
	if e.Pending() != 2 {
		t.Fatalf("pending = %d after peek, want 2", e.Pending())
	}
	e.Drain()
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime after drain reported an event")
	}
}

func TestAdvanceToExcludesHorizonEvents(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, at := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		at := at
		e.ScheduleAt(at, func() { fired = append(fired, at) })
	}
	if n := e.AdvanceTo(2 * time.Second); n != 1 {
		t.Fatalf("processed %d events, want 1 (event at the horizon must stay pending)", n)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	// The boundary event fires in the next window.
	if n := e.AdvanceTo(4 * time.Second); n != 2 {
		t.Fatalf("second window processed %d, want 2", n)
	}
	if len(fired) != 3 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("fired = %v", fired)
	}
	// A horizon in the past is a no-op that leaves the clock alone.
	if n := e.AdvanceTo(time.Second); n != 0 || e.Now() != 4*time.Second {
		t.Fatalf("past horizon: processed %d, Now %v", n, e.Now())
	}
}

// TestQuickAdvanceToWindowsMatchRunUntil is the FIFO-preservation property
// for the sharded loop's primitive: chopping a schedule into half-open
// AdvanceTo windows (plus a final inclusive RunUntil at the horizon) must
// fire exactly the same events in exactly the same order as one monolithic
// RunUntil, including equal-timestamp collisions.
func TestQuickAdvanceToWindowsMatchRunUntil(t *testing.T) {
	f := func(raw []uint8, windowRaw uint8) bool {
		horizon := 200 * time.Millisecond
		build := func() (*Engine, *[]int) {
			e := NewEngine()
			var order []int
			for i, r := range raw {
				// Few distinct timestamps -> many FIFO collisions.
				at := time.Duration(r%16) * 10 * time.Millisecond
				i := i
				e.ScheduleAt(at, func() { order = append(order, i) })
			}
			return e, &order
		}
		mono, monoOrder := build()
		mono.RunUntil(horizon)

		window := time.Duration(windowRaw%32+1) * 7 * time.Millisecond
		sharded, shardedOrder := build()
		for sharded.Now() < horizon {
			h := sharded.Now() + window
			if h > horizon {
				h = horizon
			}
			sharded.AdvanceTo(h)
		}
		sharded.RunUntil(horizon) // boundary events at the final horizon
		if len(*monoOrder) != len(*shardedOrder) {
			return false
		}
		for i := range *monoOrder {
			if (*monoOrder)[i] != (*shardedOrder)[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTakePendingPreservesOrder: TakePending surrenders events in (time,
// scheduling) order, so replaying them in slice order onto a fresh engine
// reproduces the original firing order — the re-homing invariant the
// sharded simulator relies on between epochs.
func TestTakePendingPreservesOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		at := time.Duration(i%4) * time.Second // heavy timestamp collisions
		if i%2 == 0 {
			e.ScheduleAt(at, func() { order = append(order, i) })
		} else {
			e.ScheduleEventAt(at, eventFunc(func() { order = append(order, i) }))
		}
	}
	taken := e.TakePending()
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after TakePending", e.Pending())
	}
	if len(taken) != 20 {
		t.Fatalf("took %d events, want 20", len(taken))
	}
	for i := 1; i < len(taken); i++ {
		if taken[i].At < taken[i-1].At {
			t.Fatalf("TakePending out of time order at %d: %v after %v", i, taken[i].At, taken[i-1].At)
		}
	}
	fresh := NewEngine()
	for _, pe := range taken {
		if pe.Ev != nil {
			fresh.ScheduleEventAt(pe.At, pe.Ev)
		} else {
			fresh.ScheduleAt(pe.At, pe.Fn)
		}
	}
	fresh.Drain()
	want := []int{0, 4, 8, 12, 16, 1, 5, 9, 13, 17, 2, 6, 10, 14, 18, 3, 7, 11, 15, 19}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("replayed order = %v, want %v", order, want)
		}
	}
}

func TestQuickClockNeverGoesBackwards(t *testing.T) {
	f := func(delays []int16) bool {
		e := NewEngine()
		last := time.Duration(-1)
		ok := true
		for _, d := range delays {
			delay := time.Duration(d) * time.Millisecond
			e.Schedule(delay, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Drain()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRunUntilProcessesExactlyHorizonEvents(t *testing.T) {
	f := func(raw []uint8) bool {
		e := NewEngine()
		within := 0
		for _, r := range raw {
			d := time.Duration(r) * time.Millisecond
			if d <= 100*time.Millisecond {
				within++
			}
			e.Schedule(d, func() {})
		}
		return e.RunUntil(100*time.Millisecond) == within
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
