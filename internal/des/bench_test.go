package des

import (
	"testing"
	"time"
)

// countEvent is the cheapest possible Event: one integer add.
type countEvent struct{ n int }

func (e *countEvent) Fire() { e.n++ }

// BenchmarkScheduleStep covers the engine's //rstorm:hotpath functions
// end to end — ScheduleEvent → push/siftUp, Step → pop/siftDown/before →
// Fire — against a standing event population, so sift depth matches a
// loaded simulation rather than an empty heap.
func BenchmarkScheduleStep(b *testing.B) {
	e := NewEngine()
	ev := &countEvent{}
	for i := 0; i < 1024; i++ {
		e.ScheduleEvent(time.Duration(i)*time.Millisecond, ev)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleEvent(time.Duration(i%1024)*time.Millisecond, ev)
		e.Step()
	}
}
