// Package des is a deterministic discrete-event simulation kernel: a
// priority queue of timestamped events and a virtual clock. Events at
// equal timestamps fire in scheduling order, so a simulation driven by a
// seeded RNG is fully reproducible.
//
// The queue is a hand-rolled 4-ary min-heap of event values stored inline
// in a single slice — no per-event boxing, no interface round-trips through
// container/heap, and no pointer chasing during sift operations. Popped
// slots are recycled in place (the slice keeps its capacity), so once the
// heap has grown to the simulation's peak event population, scheduling is
// allocation-free: the backing array is the free list.
package des

import (
	"time"
)

// Event is a typed simulation event. Hot paths schedule pooled Event
// records via ScheduleEvent instead of closures, keeping steady-state
// event dispatch allocation-free; Fire runs when the event's time comes.
type Event interface {
	Fire()
}

// Engine owns the virtual clock and the pending event queue. It is not
// safe for concurrent use: a simulation runs single-threaded, which is what
// makes it deterministic.
type Engine struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue.events) }

// Schedule queues fn to run after delay. Negative delays are clamped to
// zero (the event fires "now", after already-queued events at this time).
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn at an absolute virtual time. Times in the past are
// clamped to the current time.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.queue.push(event{at: at, seq: e.seq, fn: fn})
}

// ScheduleEvent queues a typed event after delay. Negative delays are
// clamped to zero. The Engine holds only the interface value; callers own
// the event's storage and may pool it once Fire has run.
//
//rstorm:hotpath
func (e *Engine) ScheduleEvent(delay time.Duration, ev Event) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleEventAt(e.now+delay, ev)
}

// ScheduleEventAt queues a typed event at an absolute virtual time. Times
// in the past are clamped to the current time.
//
//rstorm:hotpath
func (e *Engine) ScheduleEventAt(at time.Duration, ev Event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.queue.push(event{at: at, seq: e.seq, ev: ev})
}

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event ran.
//
//rstorm:hotpath
func (e *Engine) Step() bool {
	if len(e.queue.events) == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.at
	if ev.ev != nil {
		ev.ev.Fire()
	} else {
		ev.fn()
	}
	return true
}

// RunUntil processes events with timestamps <= until, then advances the
// clock to until. Events scheduled during processing are processed too if
// they fall within the horizon. It returns the number of events processed.
func (e *Engine) RunUntil(until time.Duration) int {
	processed := 0
	for len(e.queue.events) > 0 && e.queue.events[0].at <= until {
		e.Step()
		processed++
	}
	if e.now < until {
		e.now = until
	}
	return processed
}

// Drain processes every pending event regardless of time, returning the
// count. Useful in tests; simulations normally use RunUntil.
func (e *Engine) Drain() int {
	processed := 0
	for e.Step() {
		processed++
	}
	return processed
}

// PeekTime returns the timestamp of the earliest pending event without
// firing it, and whether any event is pending. A conservative parallel
// loop uses it to pick the next safe window without disturbing the queue.
//
//rstorm:hotpath
func (e *Engine) PeekTime() (time.Duration, bool) {
	if len(e.queue.events) == 0 {
		return 0, false
	}
	return e.queue.events[0].at, true
}

// AdvanceTo processes events with timestamps strictly before horizon, then
// advances the clock to horizon. It is the half-open-window complement of
// RunUntil (which is inclusive): a sharded engine advancing all shards
// through the safe window [now, horizon) leaves events at exactly horizon
// pending, so cross-shard messages timestamped at the window boundary are
// merged before any shard processes past it. Events scheduled during
// processing are processed too if they fall inside the window. Returns the
// number of events processed. A horizon at or before the current clock
// processes nothing and leaves the clock unchanged.
func (e *Engine) AdvanceTo(horizon time.Duration) int {
	processed := 0
	for len(e.queue.events) > 0 && e.queue.events[0].at < horizon {
		e.Step()
		processed++
	}
	if e.now < horizon {
		e.now = horizon
	}
	return processed
}

// PendingEvent is one queued event surrendered by TakePending. Exactly one
// of Ev and Fn is set, mirroring the two scheduling paths.
type PendingEvent struct {
	At time.Duration
	Ev Event
	Fn func()
}

// TakePending removes and returns every queued event in (time, scheduling)
// order, leaving the queue empty and the clock unchanged. A sharded
// simulator uses it between epochs to re-home pending events after task
// placements change; rescheduling the returned events in slice order onto
// any Engine preserves their relative firing order.
func (e *Engine) TakePending() []PendingEvent {
	out := make([]PendingEvent, 0, len(e.queue.events))
	for len(e.queue.events) > 0 {
		ev := e.queue.pop()
		out = append(out, PendingEvent{At: ev.at, Ev: ev.ev, Fn: ev.fn})
	}
	return out
}

// event is one scheduled callback or typed event, stored by value.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	ev  Event
}

// before reports strict heap order. seq strictly increases across
// Schedule* calls, so (at, seq) is a total order and equal-timestamp
// events pop in exact FIFO scheduling order regardless of heap shape.
//
//rstorm:hotpath
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is a 4-ary min-heap of event values ordered by (at, seq).
// 4-ary beats binary here: sift-down depth halves, and the four children
// sit in two adjacent cache lines.
type eventQueue struct {
	events []event
}

//rstorm:hotpath
func (q *eventQueue) push(ev event) {
	q.events = append(q.events, ev)
	q.siftUp(len(q.events) - 1)
}

//rstorm:hotpath
func (q *eventQueue) pop() event {
	es := q.events
	top := es[0]
	n := len(es) - 1
	es[0] = es[n]
	es[n] = event{} // release fn/ev references; capacity is retained
	q.events = es[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return top
}

//rstorm:hotpath
func (q *eventQueue) siftUp(i int) {
	es := q.events
	ev := es[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.before(&es[parent]) {
			break
		}
		es[i] = es[parent]
		i = parent
	}
	es[i] = ev
}

//rstorm:hotpath
func (q *eventQueue) siftDown(i int) {
	es := q.events
	n := len(es)
	ev := es[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if es[c].before(&es[best]) {
				best = c
			}
		}
		if !es[best].before(&ev) {
			break
		}
		es[i] = es[best]
		i = best
	}
	es[i] = ev
}
