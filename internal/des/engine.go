// Package des is a deterministic discrete-event simulation kernel: a
// priority queue of timestamped callbacks and a virtual clock. Events at
// equal timestamps fire in scheduling order, so a simulation driven by a
// seeded RNG is fully reproducible.
package des

import (
	"container/heap"
	"time"
)

// Engine owns the virtual clock and the pending event queue. It is not
// safe for concurrent use: a simulation runs single-threaded, which is what
// makes it deterministic.
type Engine struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run after delay. Negative delays are clamped to
// zero (the event fires "now", after already-queued events at this time).
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn at an absolute virtual time. Times in the past are
// clamped to the current time.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// RunUntil processes events with timestamps <= until, then advances the
// clock to until. Events scheduled during processing are processed too if
// they fall within the horizon. It returns the number of events processed.
func (e *Engine) RunUntil(until time.Duration) int {
	processed := 0
	for len(e.queue) > 0 && e.queue[0].at <= until {
		e.Step()
		processed++
	}
	if e.now < until {
		e.now = until
	}
	return processed
}

// Drain processes every pending event regardless of time, returning the
// count. Useful in tests; simulations normally use RunUntil.
func (e *Engine) Drain() int {
	processed := 0
	for e.Step() {
		processed++
	}
	return processed
}

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
