package metrics

import (
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanTail returns the mean of xs after dropping the first skip elements —
// the paper averages throughput after it "should have stabilized and
// converged" (§6.2), so harnesses drop warm-up windows.
func MeanTail(xs []float64, skip int) float64 {
	if skip < 0 {
		skip = 0
	}
	if skip >= len(xs) {
		return Mean(xs)
	}
	return Mean(xs[skip:])
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank, or 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// MinMax returns the smallest and largest values of xs, or zeros for empty
// input.
func MinMax(xs []float64) (minVal, maxVal float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	minVal, maxVal = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minVal {
			minVal = x
		}
		if x > maxVal {
			maxVal = x
		}
	}
	return minVal, maxVal
}

// ImprovementPct returns how much better `measured` is than `baseline`, in
// percent — the form the paper reports ("R-Storm achieves 30-47% higher
// throughput"). A zero baseline with positive measured returns +Inf.
func ImprovementPct(baseline, measured float64) float64 {
	if baseline == 0 {
		if measured == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (measured - baseline) / baseline * 100
}

// BusyTracker accumulates busy intervals for utilization accounting. Not
// safe for concurrent use; the simulator is single-threaded.
type BusyTracker struct {
	busy time.Duration
}

// AddBusy records d of busy time.
func (b *BusyTracker) AddBusy(d time.Duration) {
	if d > 0 {
		b.busy += d
	}
}

// Busy returns the accumulated busy time.
func (b *BusyTracker) Busy() time.Duration { return b.busy }

// Utilization returns busy/total clamped to [0, 1]; 0 if total <= 0.
func (b *BusyTracker) Utilization(total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	u := float64(b.busy) / float64(total)
	if u > 1 {
		u = 1
	}
	if u < 0 {
		u = 0
	}
	return u
}
