package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Add(5)
	c.Add(3)
	if got := c.Value(); got != 8 {
		t.Fatalf("Value = %d, want 8", got)
	}
}

func TestWindowedBucketsByTime(t *testing.T) {
	w, err := NewWindowed(10 * time.Second)
	if err != nil {
		t.Fatalf("NewWindowed: %v", err)
	}
	w.Record(1*time.Second, 1)
	w.Record(9*time.Second, 2)
	w.Record(10*time.Second, 4) // next bucket
	w.Record(25*time.Second, 8)
	got := w.Series(30 * time.Second)
	want := []float64{3, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("Series = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Series = %v, want %v", got, want)
		}
	}
	if w.Total() != 15 {
		t.Errorf("Total = %v", w.Total())
	}
}

func TestWindowedZeroFills(t *testing.T) {
	w, _ := NewWindowed(10 * time.Second)
	w.Record(5*time.Second, 1)
	got := w.Series(50 * time.Second)
	if len(got) != 5 {
		t.Fatalf("Series length = %d, want 5", len(got))
	}
	for i := 1; i < 5; i++ {
		if got[i] != 0 {
			t.Fatalf("bucket %d = %v, want 0", i, got[i])
		}
	}
}

func TestWindowedNegativeTimeClamped(t *testing.T) {
	w, _ := NewWindowed(time.Second)
	w.Record(-time.Hour, 7)
	if got := w.Series(time.Second); got[0] != 7 {
		t.Fatalf("Series = %v", got)
	}
}

func TestNewWindowedRejectsBadWindow(t *testing.T) {
	if _, err := NewWindowed(0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewWindowed(-time.Second); err == nil {
		t.Error("negative window accepted")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 1000
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < per; j++ {
				c.Add(1)
			}
		}()
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestSumSeries(t *testing.T) {
	got := SumSeries([]float64{1, 2, 3}, []float64{10, 20}, nil)
	want := []float64{11, 22, 3}
	if len(got) != len(want) {
		t.Fatalf("SumSeries = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SumSeries = %v, want %v", got, want)
		}
	}
	if out := SumSeries(); len(out) != 0 {
		t.Errorf("SumSeries() = %v", out)
	}
}

func TestMeanAndTail(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if got := MeanTail([]float64{100, 2, 4}, 1); got != 3 {
		t.Errorf("MeanTail = %v", got)
	}
	if got := MeanTail([]float64{1, 2}, 10); got != 1.5 {
		t.Errorf("MeanTail with oversized skip = %v", got)
	}
	if got := MeanTail([]float64{5, 1}, -3); got != 3 {
		t.Errorf("MeanTail negative skip = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {50, 5}, {100, 9}, {101, 9}, {-5, 1},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil)")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Errorf("MinMax(nil) = %v %v", lo, hi)
	}
}

func TestImprovementPct(t *testing.T) {
	if got := ImprovementPct(100, 150); got != 50 {
		t.Errorf("ImprovementPct = %v", got)
	}
	if got := ImprovementPct(200, 100); got != -50 {
		t.Errorf("ImprovementPct = %v", got)
	}
	if got := ImprovementPct(0, 5); !math.IsInf(got, 1) {
		t.Errorf("ImprovementPct(0, 5) = %v", got)
	}
	if got := ImprovementPct(0, 0); got != 0 {
		t.Errorf("ImprovementPct(0, 0) = %v", got)
	}
}

func TestBusyTracker(t *testing.T) {
	var b BusyTracker
	b.AddBusy(3 * time.Second)
	b.AddBusy(-time.Second) // ignored
	b.AddBusy(2 * time.Second)
	if b.Busy() != 5*time.Second {
		t.Errorf("Busy = %v", b.Busy())
	}
	if got := b.Utilization(10 * time.Second); got != 0.5 {
		t.Errorf("Utilization = %v", got)
	}
	if got := b.Utilization(time.Second); got != 1 {
		t.Errorf("Utilization clamp = %v", got)
	}
	if got := b.Utilization(0); got != 0 {
		t.Errorf("Utilization zero total = %v", got)
	}
}

func TestQuickWindowedTotalEqualsSeriesSum(t *testing.T) {
	f := func(raw []uint16) bool {
		w, err := NewWindowed(time.Second)
		if err != nil {
			return false
		}
		var maxAt time.Duration
		for _, r := range raw {
			at := time.Duration(r) * time.Millisecond
			if at > maxAt {
				maxAt = at
			}
			w.Record(at, 1)
		}
		series := w.Series(maxAt + time.Second)
		var sum float64
		for _, v := range series {
			sum += v
		}
		return sum == w.Total() && sum == float64(len(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(raw []int16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		p := float64(pRaw % 101)
		v := Percentile(xs, p)
		lo, hi := MinMax(xs)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
