package metrics

import (
	"sync"
	"testing"
)

// mutexCounter is the old Counter implementation, kept here as the
// benchmark baseline the atomic version is measured against.
type mutexCounter struct {
	mu sync.Mutex
	v  int64
}

func (c *mutexCounter) Add(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v += n
}

func (c *mutexCounter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// BenchmarkCounterContention compares the atomic Counter against the
// mutex-guarded implementation it replaced, under parallel writers —
// the access pattern the change targets.
func BenchmarkCounterContention(b *testing.B) {
	b.Run("atomic", func(b *testing.B) {
		var c Counter
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Add(1)
			}
		})
		if c.Value() != int64(b.N) {
			b.Fatalf("lost updates: %d != %d", c.Value(), b.N)
		}
	})
	b.Run("mutex", func(b *testing.B) {
		var c mutexCounter
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Add(1)
			}
		})
		if c.Value() != int64(b.N) {
			b.Fatalf("lost updates: %d != %d", c.Value(), b.N)
		}
	})
}

// BenchmarkWindowedRecord measures the per-tuple hot-path cost of the
// now-lockless Windowed.Record.
func BenchmarkWindowedRecord(b *testing.B) {
	w, err := NewWindowed(10)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Record(5, 1)
	}
}
