// Package metrics is the analogue of R-Storm's StatisticServer module
// (§5.1): it collects throughput at task, component, and topology level,
// plus node utilization accounting, over fixed windows of simulated time —
// the paper reports throughput as tuples per 10-second window.
package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing tally, safe for concurrent use.
// It is a bare atomic — no mutex — so concurrent writers never contend
// on a lock (see BenchmarkCounterContention).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
//
//rstorm:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current tally.
func (c *Counter) Value() int64 { return c.v.Load() }

// Windowed accumulates values into fixed-duration buckets of virtual
// time. It is NOT safe for concurrent use: every writer in the
// repository is the simulator's single-threaded event loop, and Record
// sits on its per-tuple hot path — a lock here would be paid millions of
// times per run to guard nothing.
type Windowed struct {
	window  time.Duration
	buckets []float64
}

// NewWindowed returns a Windowed series with the given bucket duration.
func NewWindowed(window time.Duration) (*Windowed, error) {
	if window <= 0 {
		return nil, fmt.Errorf("window %v, want > 0", window)
	}
	return &Windowed{window: window}, nil
}

// Record adds v into the bucket containing virtual time at.
//
//rstorm:hotpath
func (w *Windowed) Record(at time.Duration, v float64) {
	if at < 0 {
		at = 0
	}
	idx := int(at / w.window)
	for len(w.buckets) <= idx {
		w.buckets = append(w.buckets, 0)
	}
	w.buckets[idx] += v
}

// Window returns the bucket duration.
func (w *Windowed) Window() time.Duration { return w.window }

// Series returns a copy of the buckets, zero-filled through the bucket
// containing horizon (exclusive of a trailing partial bucket when horizon
// lands exactly on a boundary).
func (w *Windowed) Series(horizon time.Duration) []float64 {
	n := int(horizon / w.window)
	if n < 0 {
		n = 0
	}
	out := make([]float64, n)
	copy(out, w.buckets)
	return out
}

// Total returns the sum over all buckets.
func (w *Windowed) Total() float64 {
	var sum float64
	for _, b := range w.buckets {
		sum += b
	}
	return sum
}

// SumSeries adds series elementwise, zero-extending shorter inputs.
func SumSeries(series ...[]float64) []float64 {
	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	out := make([]float64, maxLen)
	for _, s := range series {
		for i, v := range s {
			out[i] += v
		}
	}
	return out
}
