// Package metrics is the analogue of R-Storm's StatisticServer module
// (§5.1): it collects throughput at task, component, and topology level,
// plus node utilization accounting, over fixed windows of simulated time —
// the paper reports throughput as tuples per 10-second window.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Counter is a monotonically increasing tally.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v += n
}

// Value returns the current tally.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Windowed accumulates values into fixed-duration buckets of virtual time.
type Windowed struct {
	mu      sync.Mutex
	window  time.Duration
	buckets []float64
}

// NewWindowed returns a Windowed series with the given bucket duration.
func NewWindowed(window time.Duration) (*Windowed, error) {
	if window <= 0 {
		return nil, fmt.Errorf("window %v, want > 0", window)
	}
	return &Windowed{window: window}, nil
}

// Record adds v into the bucket containing virtual time at.
func (w *Windowed) Record(at time.Duration, v float64) {
	if at < 0 {
		at = 0
	}
	idx := int(at / w.window)
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.buckets) <= idx {
		w.buckets = append(w.buckets, 0)
	}
	w.buckets[idx] += v
}

// Window returns the bucket duration.
func (w *Windowed) Window() time.Duration { return w.window }

// Series returns a copy of the buckets, zero-filled through the bucket
// containing horizon (exclusive of a trailing partial bucket when horizon
// lands exactly on a boundary).
func (w *Windowed) Series(horizon time.Duration) []float64 {
	n := int(horizon / w.window)
	if n < 0 {
		n = 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]float64, n)
	copy(out, w.buckets)
	return out
}

// Total returns the sum over all buckets.
func (w *Windowed) Total() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var sum float64
	for _, b := range w.buckets {
		sum += b
	}
	return sum
}

// Registry stores named windowed series and counters. Names are
// hierarchical by convention: "topology/component/task".
type Registry struct {
	mu       sync.Mutex
	window   time.Duration
	series   map[string]*Windowed
	counters map[string]*Counter
}

// NewRegistry returns a Registry whose series share one window duration.
func NewRegistry(window time.Duration) (*Registry, error) {
	if window <= 0 {
		return nil, fmt.Errorf("window %v, want > 0", window)
	}
	return &Registry{
		window:   window,
		series:   make(map[string]*Windowed),
		counters: make(map[string]*Counter),
	}, nil
}

// Window returns the registry's bucket duration.
func (r *Registry) Window() time.Duration { return r.window }

// Series returns (creating on demand) the named windowed series.
func (r *Registry) Series(name string) *Windowed {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &Windowed{window: r.window}
		r.series[name] = s
	}
	return s
}

// Counter returns (creating on demand) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// SeriesNames returns the registered series names, sorted.
func (r *Registry) SeriesNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.series))
	for name := range r.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SumSeries adds series elementwise, zero-extending shorter inputs.
func SumSeries(series ...[]float64) []float64 {
	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	out := make([]float64, maxLen)
	for _, s := range series {
		for i, v := range s {
			out[i] += v
		}
	}
	return out
}
