// Package workloads defines the benchmark topologies of the paper's
// evaluation (§6): the Linear, Diamond and Star micro-benchmarks in
// network-bound and computation-time-bound configurations (Fig. 7–10), and
// reconstructions of the Yahoo! PageLoad and Processing production
// topologies (Fig. 11–13). Parameters — parallelism, declared resource
// loads, and execution profiles — are calibrated so the simulated cluster
// reproduces the qualitative shapes the paper reports; EXPERIMENTS.md
// records paper-vs-measured per figure.
package workloads

import (
	"time"

	"rstorm/internal/topology"
)

// Bound selects the micro-benchmark configuration of §6.3: topologies are
// either bounded by network resources or by computation time.
type Bound int

const (
	// NetworkBound configures tiny per-tuple CPU cost and moderate tuple
	// sizes, so throughput is limited by the network (§6.3.1).
	NetworkBound Bound = iota + 1
	// ComputeBound configures heavy per-tuple CPU cost and declared CPU
	// loads that fill whole cores (§6.3.2).
	ComputeBound
)

// String implements fmt.Stringer.
func (b Bound) String() string {
	switch b {
	case NetworkBound:
		return "network-bound"
	case ComputeBound:
		return "compute-bound"
	default:
		return "unknown-bound"
	}
}

// Micro-benchmark profiles. Network-bound components do very little work
// per tuple ("very little processing at each component", §6.3.1);
// compute-bound components "conduct a significant amount of arbitrary
// processing" (§6.3.2). Memory loads are the user-declared hints that let
// R-Storm pack without violating the hard constraint: network-bound tasks
// fit 4 per 2048 MB node, compute-bound tasks 2 per node — which on the
// 100-point nodes aligns the memory cap with the CPU capacity.
// netProfile returns the network-bound execution profile: cheap per-tuple
// work and small payloads. In this regime throughput is governed by the
// network: default Storm's striding sends every hop across the inter-rack
// boundary, so its closed-loop (max-spout-pending) throughput is capped by
// network latency, while R-Storm's rack-local packing pushes the pipeline
// to its processing ceiling — exactly the paper's attribution ("minimizing
// network communication latency by colocating tasks", §6.3.1).
func netProfile() topology.ExecProfile {
	return topology.ExecProfile{
		CPUPerTuple: 200 * time.Microsecond,
		TupleBytes:  200,
	}
}

func computeProfile() topology.ExecProfile {
	return topology.ExecProfile{
		CPUPerTuple: 3 * time.Millisecond,
		TupleBytes:  128,
	}
}

type microLoads struct {
	cpu     float64
	mem     float64
	profile topology.ExecProfile
}

func loadsFor(b Bound) microLoads {
	if b == ComputeBound {
		return microLoads{cpu: 50, mem: 1024, profile: computeProfile()}
	}
	return microLoads{cpu: 10, mem: 512, profile: netProfile()}
}

// LinearTopology builds the Linear micro-benchmark (Fig. 7a): a chain
// spout → bolt1 → bolt2 → bolt3. Network-bound uses parallelism 6 per
// component (24 tasks); compute-bound uses 3 (12 tasks, filling exactly
// six 100-point nodes at 2 tasks x 50 points).
func LinearTopology(bound Bound) (*topology.Topology, error) {
	l := loadsFor(bound)
	par := 6
	if bound == ComputeBound {
		par = 3
	}
	b := topology.NewBuilder("linear-" + bound.String())
	if bound == NetworkBound {
		b.SetMaxSpoutPending(23)
	}
	b.SetSpout("spout", par).SetCPULoad(l.cpu).SetMemoryLoad(l.mem).SetProfile(l.profile)
	b.SetBolt("bolt1", par).ShuffleGrouping("spout").
		SetCPULoad(l.cpu).SetMemoryLoad(l.mem).SetProfile(l.profile)
	b.SetBolt("bolt2", par).ShuffleGrouping("bolt1").
		SetCPULoad(l.cpu).SetMemoryLoad(l.mem).SetProfile(l.profile)
	b.SetBolt("bolt3", par).ShuffleGrouping("bolt2").
		SetCPULoad(l.cpu).SetMemoryLoad(l.mem).SetProfile(l.profile)
	return b.Build()
}

// DiamondTopology builds the Diamond micro-benchmark (Fig. 7b): a spout
// fanning out to three middle bolts that all feed one sink bolt.
func DiamondTopology(bound Bound) (*topology.Topology, error) {
	l := loadsFor(bound)
	// The sink consumes three instances per root (one per middle bolt),
	// so it gets the same parallelism as each stage and becomes the
	// pipeline's tightest stage — the diamond's natural fan-in pressure.
	spoutPar, midPar, sinkPar := 6, 6, 6
	if bound == ComputeBound {
		// 2 + 3x3 + 2 = 13 tasks: R-Storm needs 7 nodes at 2 tasks
		// per node, reproducing the paper's "7 machines" (§6.3.2).
		spoutPar, midPar, sinkPar = 2, 3, 2
	}
	b := topology.NewBuilder("diamond-" + bound.String())
	if bound == NetworkBound {
		b.SetMaxSpoutPending(6)
	}
	b.SetSpout("spout", spoutPar).SetCPULoad(l.cpu).SetMemoryLoad(l.mem).SetProfile(l.profile)
	for _, mid := range []string{"left", "middle", "right"} {
		b.SetBolt(mid, midPar).ShuffleGrouping("spout").
			SetCPULoad(l.cpu).SetMemoryLoad(l.mem).SetProfile(l.profile)
	}
	b.SetBolt("sink", sinkPar).
		ShuffleGrouping("left").ShuffleGrouping("middle").ShuffleGrouping("right").
		SetCPULoad(l.cpu).SetMemoryLoad(l.mem).SetProfile(l.profile)
	return b.Build()
}

// StarTopology builds the Star micro-benchmark (Fig. 7c): two spouts
// feeding a central hub bolt that fans out to two sink bolts.
//
// The compute-bound variant reproduces the paper's §6.3.2 star scenario:
// the hub is heavy (85 points, 1500 MB — effectively one hub per node),
// and the topology requests fewer workers than machines, so default
// Storm's striding stacks two hub tasks onto one worker and over-utilizes
// that machine, bottlenecking the whole topology. R-Storm ignores the
// worker hint and packs each hub with one light task at exactly 100
// points per node.
func StarTopology(bound Bound) (*topology.Topology, error) {
	l := loadsFor(bound)
	b := topology.NewBuilder("star-" + bound.String())
	if bound == ComputeBound {
		hub := computeProfile()
		light := topology.ExecProfile{CPUPerTuple: 450 * time.Microsecond, TupleBytes: 128}
		b.SetNumWorkers(7)
		b.SetSpout("spout-a", 2).SetCPULoad(15).SetMemoryLoad(400).SetProfile(light)
		b.SetSpout("spout-b", 2).SetCPULoad(15).SetMemoryLoad(400).SetProfile(light)
		b.SetBolt("hub", 8).ShuffleGrouping("spout-a").ShuffleGrouping("spout-b").
			SetCPULoad(85).SetMemoryLoad(1500).SetProfile(hub)
		b.SetBolt("out-a", 2).ShuffleGrouping("hub").
			SetCPULoad(15).SetMemoryLoad(400).SetProfile(light)
		b.SetBolt("out-b", 2).ShuffleGrouping("hub").
			SetCPULoad(15).SetMemoryLoad(400).SetProfile(light)
		return b.Build()
	}
	b.SetMaxSpoutPending(11)
	b.SetSpout("spout-a", 4).SetCPULoad(l.cpu).SetMemoryLoad(l.mem).SetProfile(l.profile)
	b.SetSpout("spout-b", 4).SetCPULoad(l.cpu).SetMemoryLoad(l.mem).SetProfile(l.profile)
	b.SetBolt("hub", 6).ShuffleGrouping("spout-a").ShuffleGrouping("spout-b").
		SetCPULoad(l.cpu).SetMemoryLoad(l.mem).SetProfile(l.profile)
	b.SetBolt("out-a", 6).ShuffleGrouping("hub").
		SetCPULoad(l.cpu).SetMemoryLoad(l.mem).SetProfile(l.profile)
	b.SetBolt("out-b", 6).ShuffleGrouping("hub").
		SetCPULoad(l.cpu).SetMemoryLoad(l.mem).SetProfile(l.profile)
	return b.Build()
}
