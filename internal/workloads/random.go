package workloads

import (
	"fmt"
	"math/rand"
	"time"

	"rstorm/internal/topology"
)

// RandomParams bounds the shape of generated topologies.
type RandomParams struct {
	// MaxComponents caps the number of components (min 2). Default 8.
	MaxComponents int
	// MaxParallelism caps per-component parallelism. Default 6.
	MaxParallelism int
	// MaxCPULoad caps per-task CPU points. Default 60.
	MaxCPULoad float64
	// MaxMemoryMB caps per-task memory. Default 1024.
	MaxMemoryMB float64
	// FanInProb is the chance a bolt subscribes to an extra upstream
	// component beyond its first. Default 0.3.
	FanInProb float64
}

func (p RandomParams) withDefaults() RandomParams {
	if p.MaxComponents < 2 {
		p.MaxComponents = 8
	}
	if p.MaxParallelism < 1 {
		p.MaxParallelism = 6
	}
	if p.MaxCPULoad <= 0 {
		p.MaxCPULoad = 60
	}
	if p.MaxMemoryMB <= 0 {
		p.MaxMemoryMB = 1024
	}
	if p.FanInProb <= 0 {
		p.FanInProb = 0.3
	}
	return p
}

// RandomTopology generates a valid random DAG topology from the seed:
// layered components (spouts in layer zero), every bolt subscribed to at
// least one earlier component, mixed groupings, randomized loads and
// profiles. The same seed always yields the same topology, making it
// suitable for property-based scheduler tests.
func RandomTopology(seed int64, params RandomParams) (*topology.Topology, error) {
	p := params.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	nComponents := 2 + rng.Intn(p.MaxComponents-1)
	nSpouts := 1 + rng.Intn(2)
	if nSpouts >= nComponents {
		nSpouts = 1
	}

	b := topology.NewBuilder(fmt.Sprintf("random-%d", seed))
	names := make([]string, 0, nComponents)
	randLoads := func() (cpu, mem float64) {
		return 5 + rng.Float64()*(p.MaxCPULoad-5), 64 + rng.Float64()*(p.MaxMemoryMB-64)
	}
	randProfile := func() topology.ExecProfile {
		return topology.ExecProfile{
			CPUPerTuple:    time.Duration(50+rng.Intn(950)) * time.Microsecond,
			TupleBytes:     64 + rng.Intn(1024),
			OutRatio:       0.5 + rng.Float64(),
			KeyCardinality: 128 << rng.Intn(6),
		}
	}
	for i := 0; i < nSpouts; i++ {
		name := fmt.Sprintf("spout%d", i)
		cpu, mem := randLoads()
		b.SetSpout(name, 1+rng.Intn(p.MaxParallelism)).
			SetCPULoad(cpu).SetMemoryLoad(mem).SetProfile(randProfile())
		names = append(names, name)
	}
	for i := nSpouts; i < nComponents; i++ {
		name := fmt.Sprintf("bolt%d", i-nSpouts)
		cpu, mem := randLoads()
		d := b.SetBolt(name, 1+rng.Intn(p.MaxParallelism)).
			SetCPULoad(cpu).SetMemoryLoad(mem).SetProfile(randProfile())
		subscribe := func(src string) {
			switch rng.Intn(5) {
			case 0:
				d.FieldsGrouping(src, "key")
			case 1:
				d.GlobalGrouping(src)
			case 2:
				d.LocalOrShuffleGrouping(src)
			default:
				d.ShuffleGrouping(src)
			}
		}
		first := names[rng.Intn(len(names))]
		subscribe(first)
		if rng.Float64() < p.FanInProb && len(names) > 1 {
			second := names[rng.Intn(len(names))]
			if second != first {
				subscribe(second)
			}
		}
		names = append(names, name)
	}
	return b.Build()
}
