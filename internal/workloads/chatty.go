package workloads

import (
	"time"

	"rstorm/internal/topology"
)

// ChattyChain builds the traffic-consolidation scenario (DESIGN.md §5): a
// four-stage chain of cheap tasks shipping fat tuples, whose CPU demand is
// declared an order of magnitude too high.
//
// With honest=true the declarations match the truth (8 points per task),
// so R-Storm packs the whole chain onto one node and every hot edge is
// local — the already-consolidated control case.
//
// With honest=false every task declares 85 CPU points: a
// declaration-trusting R-Storm then spreads the chain one task per node
// (a second "85-point" task would overcommit, and the symmetric distance
// prefers the empty node next door), so every chain edge crosses the wire
// and throughput is NIC-bound at a small fraction of what the hardware
// allows. The true demand is tiny and latency-dominated, so every
// executor idles — the controller sees a *cold* topology, and only a
// traffic-aware consolidation objective can see that the placement, not
// the load, is what's wrong. Only the declarations differ between the
// variants; the execution profiles (the truth) are identical.
func ChattyChain(honest bool) (*topology.Topology, error) {
	const (
		truePoints = 8
		liedPoints = 85
		memMB      = 64
	)
	decl := float64(liedPoints)
	if honest {
		decl = truePoints
	}
	profile := topology.ExecProfile{
		CPUPerTuple: 50 * time.Microsecond,
		TupleBytes:  8192,
		CPUPoints:   truePoints,
	}
	b := topology.NewBuilder("chatty")
	b.SetSpout("source", 2).SetCPULoad(decl).SetMemoryLoad(memMB).SetProfile(profile)
	b.SetBolt("parse", 2).ShuffleGrouping("source").
		SetCPULoad(decl).SetMemoryLoad(memMB).SetProfile(profile)
	b.SetBolt("enrich", 2).ShuffleGrouping("parse").
		SetCPULoad(decl).SetMemoryLoad(memMB).SetProfile(profile)
	b.SetBolt("store", 2).ShuffleGrouping("enrich").
		SetCPULoad(decl).SetMemoryLoad(memMB).SetProfile(profile)
	return b.Build()
}
