package workloads

import (
	"time"

	"rstorm/internal/topology"
)

// PageLoadTopology reconstructs the Yahoo! PageLoad topology of Fig. 11a.
// The original processes event-level advertising data for near-real-time
// analytical reporting (§6.4); its exact code is proprietary, so this
// reconstruction keeps the published shape: an event spout feeding a
// mostly linear enrichment pipeline with a metrics side-branch and a
// keyed aggregation before the store stage.
//
//	event-spout → deserialize → filter → enrich → aggregate → store
//	                              └→ metrics
//
// 18 tasks, ~590 declared CPU points: comfortably inside one 12-node rack
// for R-Storm, while default Storm stripes it across both racks.
func PageLoadTopology() (*topology.Topology, error) {
	b := topology.NewBuilder("pageload")
	b.SetMaxSpoutPending(14)
	b.SetSpout("event-spout", 3).SetCPULoad(30).SetMemoryLoad(650).
		SetProfile(topology.ExecProfile{CPUPerTuple: 220 * time.Microsecond, TupleBytes: 900})
	b.SetBolt("deserialize", 3).ShuffleGrouping("event-spout").
		SetCPULoad(40).SetMemoryLoad(650).
		SetProfile(topology.ExecProfile{CPUPerTuple: 260 * time.Microsecond, TupleBytes: 700})
	b.SetBolt("filter", 3).ShuffleGrouping("deserialize").
		SetCPULoad(25).SetMemoryLoad(500).
		SetProfile(topology.ExecProfile{CPUPerTuple: 150 * time.Microsecond, TupleBytes: 700, OutRatio: 0.85})
	b.SetBolt("metrics", 2).ShuffleGrouping("deserialize").
		SetCPULoad(20).SetMemoryLoad(400).
		SetProfile(topology.ExecProfile{CPUPerTuple: 120 * time.Microsecond, TupleBytes: 200})
	b.SetBolt("enrich", 3).ShuffleGrouping("filter").
		SetCPULoad(45).SetMemoryLoad(650).
		SetProfile(topology.ExecProfile{CPUPerTuple: 300 * time.Microsecond, TupleBytes: 1000})
	b.SetBolt("aggregate", 2).FieldsGrouping("enrich", "pageKey").
		SetCPULoad(35).SetMemoryLoad(650).
		SetProfile(topology.ExecProfile{CPUPerTuple: 240 * time.Microsecond, TupleBytes: 400, KeyCardinality: 4096})
	b.SetBolt("store", 2).ShuffleGrouping("aggregate").
		SetCPULoad(30).SetMemoryLoad(600).
		SetProfile(topology.ExecProfile{CPUPerTuple: 200 * time.Microsecond, TupleBytes: 400})
	return b.Build()
}

// ProcessingTopology reconstructs the Yahoo! Processing topology of
// Fig. 11b: a deeper, computation-heavier pipeline (decode, sessionize,
// transform, dedupe, rank, persist) — each stage's per-tuple cost is
// several times PageLoad's. 14 tasks whose memory loads admit exactly two
// tasks per 2048 MB node, so R-Storm colocates adjacent pipeline stages
// (spout+decode, sessionize+transform, …) without exceeding 100 CPU
// points, while default Storm strides the stages across both racks.
func ProcessingTopology() (*topology.Topology, error) {
	return ProcessingTopologyScaled(1)
}

// ProcessingTopologyScaled builds the Processing topology with every
// component's parallelism multiplied by scale. The multi-topology
// experiment (Fig. 13) runs Processing at twice the Fig. 12b size: the
// paper's Fig. 13 reports Processing at 67k tuples/10s, far above the
// single-cluster runs, indicating a larger production deployment.
func ProcessingTopologyScaled(scale int) (*topology.Topology, error) {
	if scale < 1 {
		scale = 1
	}
	b := topology.NewBuilder("processing")
	b.SetMaxSpoutPending(6)
	b.SetSpout("feed-spout", 2*scale).SetCPULoad(25).SetMemoryLoad(650).
		SetProfile(topology.ExecProfile{CPUPerTuple: 350 * time.Microsecond, TupleBytes: 1200})
	b.SetBolt("decode", 2*scale).ShuffleGrouping("feed-spout").
		SetCPULoad(35).SetMemoryLoad(650).
		SetProfile(topology.ExecProfile{CPUPerTuple: 560 * time.Microsecond, TupleBytes: 1000})
	b.SetBolt("sessionize", 2*scale).FieldsGrouping("decode", "sessionId").
		SetCPULoad(40).SetMemoryLoad(650).
		SetProfile(topology.ExecProfile{CPUPerTuple: 630 * time.Microsecond, TupleBytes: 1000, KeyCardinality: 8192})
	b.SetBolt("transform", 2*scale).ShuffleGrouping("sessionize").
		SetCPULoad(45).SetMemoryLoad(650).
		SetProfile(topology.ExecProfile{CPUPerTuple: 700 * time.Microsecond, TupleBytes: 900})
	b.SetBolt("dedupe", 2*scale).FieldsGrouping("transform", "eventId").
		SetCPULoad(35).SetMemoryLoad(650).
		SetProfile(topology.ExecProfile{CPUPerTuple: 490 * time.Microsecond, TupleBytes: 800, KeyCardinality: 8192, OutRatio: 0.9})
	b.SetBolt("rank", 2*scale).ShuffleGrouping("dedupe").
		SetCPULoad(30).SetMemoryLoad(650).
		SetProfile(topology.ExecProfile{CPUPerTuple: 455 * time.Microsecond, TupleBytes: 600})
	b.SetBolt("db-sink", 2*scale).ShuffleGrouping("rank").
		SetCPULoad(25).SetMemoryLoad(650).
		SetProfile(topology.ExecProfile{CPUPerTuple: 385 * time.Microsecond, TupleBytes: 600})
	return b.Build()
}
