package workloads

import (
	"testing"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

func TestMicroTopologiesBuild(t *testing.T) {
	builders := []struct {
		name  string
		build func(Bound) (*topology.Topology, error)
	}{
		{"linear", LinearTopology},
		{"diamond", DiamondTopology},
		{"star", StarTopology},
	}
	for _, b := range builders {
		for _, bound := range []Bound{NetworkBound, ComputeBound} {
			t.Run(b.name+"/"+bound.String(), func(t *testing.T) {
				topo, err := b.build(bound)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				if topo.TotalTasks() == 0 {
					t.Fatal("no tasks")
				}
				if len(topo.Spouts()) == 0 || len(topo.Sinks()) == 0 {
					t.Fatal("missing spouts or sinks")
				}
			})
		}
	}
}

func TestLinearShape(t *testing.T) {
	topo, err := LinearTopology(NetworkBound)
	if err != nil {
		t.Fatal(err)
	}
	order := topo.BFSOrder()
	want := []string{"spout", "bolt1", "bolt2", "bolt3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("BFS order = %v", order)
		}
	}
	if got := topo.TotalTasks(); got != 24 {
		t.Errorf("network-bound linear tasks = %d, want 24", got)
	}
	compute, err := LinearTopology(ComputeBound)
	if err != nil {
		t.Fatal(err)
	}
	if got := compute.TotalTasks(); got != 12 {
		t.Errorf("compute-bound linear tasks = %d, want 12", got)
	}
}

func TestDiamondShape(t *testing.T) {
	topo, err := DiamondTopology(NetworkBound)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.Incoming("sink")); got != 3 {
		t.Errorf("sink fan-in = %d, want 3", got)
	}
	if got := len(topo.Outgoing("spout")); got != 3 {
		t.Errorf("spout fan-out = %d, want 3", got)
	}
}

func TestStarShape(t *testing.T) {
	topo, err := StarTopology(NetworkBound)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.Incoming("hub")); got != 2 {
		t.Errorf("hub fan-in = %d", got)
	}
	if got := len(topo.Outgoing("hub")); got != 2 {
		t.Errorf("hub fan-out = %d", got)
	}
	if got := len(topo.Sinks()); got != 2 {
		t.Errorf("sinks = %d", got)
	}
}

func TestComputeBoundLinearFillsSixNodesExactly(t *testing.T) {
	// The Fig. 9a property: 12 tasks x 50 points x 1024 MB pack two per
	// node on exactly 6 of 12 nodes with no CPU overcommit.
	topo, err := LinearTopology(ComputeBound)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, core.NewGlobalState(c))
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if got := len(a.NodesUsed()); got != 6 {
		t.Errorf("nodes used = %d, want 6: %s", got, a)
	}
	for node, used := range a.UsedPerNode(topo) {
		if used.CPU > 100 {
			t.Errorf("node %s CPU overcommitted: %v", node, used.CPU)
		}
	}
}

func TestComputeBoundDiamondUsesSevenNodes(t *testing.T) {
	topo, err := DiamondTopology(ComputeBound)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, core.NewGlobalState(c))
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if got := len(a.NodesUsed()); got != 7 {
		t.Errorf("nodes used = %d, want 7 (paper §6.3.2)", got)
	}
}

func TestComputeBoundStarDefaultOverloadsOneNode(t *testing.T) {
	// The Fig. 9c property: default Storm's striding with the topology's
	// requested workers stacks two hub tasks on one machine, exceeding
	// its CPU capacity; R-Storm never exceeds capacity.
	topo, err := StarTopology(ComputeBound)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatal(err)
	}
	ea, err := core.EvenScheduler{}.Schedule(topo, c, core.NewGlobalState(c))
	if err != nil {
		t.Fatalf("even: %v", err)
	}
	overloaded := 0
	for _, used := range ea.UsedPerNode(topo) {
		if used.CPU > 100 {
			overloaded++
		}
	}
	if overloaded == 0 {
		t.Error("default scheduler should over-utilize at least one node")
	}

	ra, err := core.NewResourceAwareScheduler().Schedule(topo, c, core.NewGlobalState(c))
	if err != nil {
		t.Fatalf("r-storm: %v", err)
	}
	for node, used := range ra.UsedPerNode(topo) {
		if used.CPU > 100 {
			t.Errorf("r-storm overcommitted node %s: %v", node, used.CPU)
		}
	}
}

func TestYahooTopologiesBuild(t *testing.T) {
	pl, err := PageLoadTopology()
	if err != nil {
		t.Fatalf("pageload: %v", err)
	}
	if pl.Name() != "pageload" || pl.TotalTasks() != 18 {
		t.Errorf("pageload: %q %d tasks", pl.Name(), pl.TotalTasks())
	}
	// metrics and store are the sinks.
	sinks := pl.Sinks()
	if len(sinks) != 2 {
		t.Errorf("pageload sinks = %v", sinks)
	}

	pr, err := ProcessingTopology()
	if err != nil {
		t.Fatalf("processing: %v", err)
	}
	if pr.TotalTasks() != 14 {
		t.Errorf("processing tasks = %d, want 14", pr.TotalTasks())
	}
	// Deep pipeline: BFS covers 7 components in chain order.
	if got := len(pr.BFSOrder()); got != 7 {
		t.Errorf("processing components = %d", got)
	}
}

func TestProcessingScaled(t *testing.T) {
	pr2, err := ProcessingTopologyScaled(2)
	if err != nil {
		t.Fatal(err)
	}
	if pr2.TotalTasks() != 28 {
		t.Errorf("scaled tasks = %d, want 28", pr2.TotalTasks())
	}
	pr0, err := ProcessingTopologyScaled(0) // clamps to 1
	if err != nil {
		t.Fatal(err)
	}
	if pr0.TotalTasks() != 14 {
		t.Errorf("clamped tasks = %d, want 14", pr0.TotalTasks())
	}
}

func TestBothYahooTopologiesFitTogetherOn24(t *testing.T) {
	// The Fig. 13 property: R-Storm schedules PageLoad and scaled
	// Processing together on the 24-node cluster, with no hard-
	// constraint violations across topologies.
	c, err := cluster.Emulab24()
	if err != nil {
		t.Fatal(err)
	}
	state := core.NewGlobalState(c)
	sched := core.NewResourceAwareScheduler()

	pl, err := PageLoadTopology()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := ProcessingTopologyScaled(2)
	if err != nil {
		t.Fatal(err)
	}
	memUsed := make(map[cluster.NodeID]float64)
	for _, topo := range []*topology.Topology{pl, pr} {
		a, err := sched.Schedule(topo, c, state)
		if err != nil {
			t.Fatalf("schedule %s: %v", topo.Name(), err)
		}
		if err := state.Apply(topo, a); err != nil {
			t.Fatalf("apply %s: %v", topo.Name(), err)
		}
		for node, used := range a.UsedPerNode(topo) {
			memUsed[node] += used.MemoryMB
		}
	}
	for node, mem := range memUsed {
		if mem > 2048 {
			t.Errorf("node %s memory %v exceeds capacity across topologies", node, mem)
		}
	}
}

func TestBoundString(t *testing.T) {
	if NetworkBound.String() != "network-bound" || ComputeBound.String() != "compute-bound" {
		t.Error("bound strings")
	}
	if Bound(9).String() != "unknown-bound" {
		t.Error("unknown bound string")
	}
}

func TestDemandsAreDeclared(t *testing.T) {
	// Every benchmark component declares non-zero CPU and memory, since
	// R-Storm schedules on declared demand.
	all := []func() (*topology.Topology, error){
		func() (*topology.Topology, error) { return LinearTopology(NetworkBound) },
		func() (*topology.Topology, error) { return DiamondTopology(ComputeBound) },
		func() (*topology.Topology, error) { return StarTopology(NetworkBound) },
		PageLoadTopology,
		ProcessingTopology,
	}
	for _, build := range all {
		topo, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for _, comp := range topo.Components() {
			d := comp.Demand()
			if d.CPU <= 0 || d.MemoryMB <= 0 {
				t.Errorf("%s/%s demand undeclared: %v", topo.Name(), comp.Name, d)
			}
			if err := d.Validate(); err != nil {
				t.Errorf("%s/%s: %v", topo.Name(), comp.Name, err)
			}
		}
		_ = resource.Vector{}
	}
}
