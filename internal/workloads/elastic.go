package workloads

import (
	"time"

	"rstorm/internal/topology"
)

// ElasticChain builds the elasticity scenario (DESIGN.md, adaptive loop):
// a three-stage chain whose middle "work" stage truly consumes 80 CPU
// points and ~1536 MB per task.
//
// With honest=true the declarations match that truth, so R-Storm spreads
// the work tasks one per node (the memory hard constraint permits only one
// 1536 MB task per 2048 MB node) and nothing is overcommitted — the oracle
// schedule the adaptive loop is judged against.
//
// With honest=false the user declares the work stage light (10 points,
// 256 MB), reproducing the mis-declaration the R-Storm paper itself warns
// about: a declaration-trusting scheduler packs most of the topology onto
// one node, whose true load then stretches every service time. Only the
// declarations differ — the execution profiles (the truth) are identical
// in both variants.
func ElasticChain(honest bool) (*topology.Topology, error) {
	const (
		trueWorkPoints = 80
		trueWorkMemMB  = 1536
		lightPoints    = 10
		lightMemMB     = 256
	)
	workCPU, workMem := float64(lightPoints), float64(lightMemMB)
	if honest {
		workCPU, workMem = trueWorkPoints, trueWorkMemMB
	}
	light := topology.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 128}
	heavy := topology.ExecProfile{
		CPUPerTuple: 2 * time.Millisecond,
		TupleBytes:  128,
		CPUPoints:   trueWorkPoints,
	}
	b := topology.NewBuilder("elastic")
	b.SetSpout("spout", 2).SetCPULoad(lightPoints).SetMemoryLoad(lightMemMB).SetProfile(light)
	b.SetBolt("work", 6).ShuffleGrouping("spout").
		SetCPULoad(workCPU).SetMemoryLoad(workMem).SetProfile(heavy)
	b.SetBolt("sink", 2).ShuffleGrouping("work").
		SetCPULoad(lightPoints).SetMemoryLoad(lightMemMB).SetProfile(light)
	return b.Build()
}
