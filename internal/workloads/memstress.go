package workloads

import (
	"time"

	"rstorm/internal/topology"
)

// MemStressChain builds the memory mis-declaration scenario (DESIGN.md §4,
// runtime memory model): a three-stage chain whose middle "cache" stage
// truly grows a ~1408 MB in-memory working set per task — ramping up as it
// processes tuples (ExecProfile.MemMB / MemGrowTuples) — while its CPU
// demand is honest and light, so memory is the only axis that is wrong.
//
// With honest=true the declarations match that truth: the memory hard
// constraint forces R-Storm to spread the cache tasks one per 2048 MB
// node, nothing ever nears capacity, and the run is the oracle the
// adaptive loop is judged against.
//
// With honest=false the cache stage declares 128 MB — the mis-declaration
// the R-Storm paper warns about, on the axis PR 2's loop could not fix. A
// declaration-trusting scheduler packs the whole topology onto one node;
// at runtime the working sets grow until the node's resident memory
// exceeds its capacity, and (under simulator.Config.MemoryModel) the OOM
// killer starts shooting cache tasks. Only the declarations differ — the
// execution profiles (the truth) are identical in both variants.
//
// The spout is the deliberate throughput bottleneck (its service time is
// 5x the cache stage's), so the cache tasks idle at low utilization: the
// CPU axis gives the adaptive controller nothing to react to, and any
// recovery is attributable to the memory measurements alone.
func MemStressChain(honest bool) (*topology.Topology, error) {
	const (
		trueCacheMemMB  = 1408
		liedCacheMemMB  = 128
		lightMemMB      = 128
		cacheGrowTuples = 20000
	)
	cacheDecl := float64(liedCacheMemMB)
	if honest {
		cacheDecl = trueCacheMemMB
	}
	light := topology.ExecProfile{CPUPerTuple: 500 * time.Microsecond, TupleBytes: 512}
	cache := topology.ExecProfile{
		CPUPerTuple:   100 * time.Microsecond,
		TupleBytes:    512,
		MemMB:         trueCacheMemMB,
		MemGrowTuples: cacheGrowTuples,
	}
	b := topology.NewBuilder("memstress")
	b.SetSpout("ingest", 2).SetCPULoad(10).SetMemoryLoad(lightMemMB).SetProfile(light)
	b.SetBolt("cache", 6).ShuffleGrouping("ingest").
		SetCPULoad(8).SetMemoryLoad(cacheDecl).SetProfile(cache)
	b.SetBolt("sink", 2).ShuffleGrouping("cache").
		SetCPULoad(10).SetMemoryLoad(lightMemMB).
		SetProfile(topology.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 512})
	return b.Build()
}
