package workloads

import (
	"time"

	"rstorm/internal/topology"
)

// Multi-tenant workload (DESIGN.md §6): background batch tenants that
// together nearly fill the 12-node testbed's memory (the hard axis), and
// a high-priority production tenant whose burst arrival on the loaded
// cluster is infeasible until the control plane evicts batch tenants.
// All declarations are honest — the scenario stresses admission and
// eviction, not demand estimation.

// BatchTenant builds one low-priority background tenant: a single spout
// feeding five 900 MB workers (~4.6 GB per tenant). Four of them occupy
// ~18.5 GB of the testbed's 24 GB.
func BatchTenant(name string) (*topology.Topology, error) {
	light := topology.ExecProfile{CPUPerTuple: 200 * time.Microsecond, TupleBytes: 256}
	work := topology.ExecProfile{CPUPerTuple: time.Millisecond, TupleBytes: 256}
	b := topology.NewBuilder(name)
	b.SetSpout("feed", 1).SetCPULoad(10).SetMemoryLoad(128).SetProfile(light)
	b.SetBolt("crunch", 5).ShuffleGrouping("feed").
		SetCPULoad(30).SetMemoryLoad(900).SetProfile(work)
	return b.Build()
}

// ProdTenant builds the high-priority production tenant at the given
// priority: a spout feeding eleven 1000 MB workers (~11.1 GB) — far more
// than the loaded cluster's free memory, so admission requires eviction.
// With priority zero it is the same topology minus the privilege: FIFO
// admission leaves it starved behind the batch tenants.
func ProdTenant(priority int) (*topology.Topology, error) {
	light := topology.ExecProfile{CPUPerTuple: 200 * time.Microsecond, TupleBytes: 256}
	work := topology.ExecProfile{CPUPerTuple: time.Millisecond, TupleBytes: 256}
	b := topology.NewBuilder("prod").SetPriority(priority)
	b.SetSpout("ingest", 1).SetCPULoad(10).SetMemoryLoad(128).SetProfile(light)
	b.SetBolt("serve", 11).ShuffleGrouping("ingest").
		SetCPULoad(40).SetMemoryLoad(1000).SetProfile(work)
	return b.Build()
}
