package workloads

import (
	"errors"
	"testing"
	"testing/quick"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/resource"
)

func TestRandomTopologyDeterministic(t *testing.T) {
	a, err := RandomTopology(7, RandomParams{})
	if err != nil {
		t.Fatalf("RandomTopology: %v", err)
	}
	b, err := RandomTopology(7, RandomParams{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTasks() != b.TotalTasks() || len(a.Streams()) != len(b.Streams()) {
		t.Errorf("same seed produced different topologies: %d/%d tasks, %d/%d streams",
			a.TotalTasks(), b.TotalTasks(), len(a.Streams()), len(b.Streams()))
	}
	c, err := RandomTopology(8, RandomParams{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTasks() == c.TotalTasks() && len(a.Streams()) == len(c.Streams()) &&
		a.TotalDemand() == c.TotalDemand() {
		t.Error("different seeds produced identical topologies (suspicious)")
	}
}

func TestQuickRandomTopologiesAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		topo, err := RandomTopology(seed, RandomParams{})
		if err != nil {
			return false
		}
		return topo.TotalTasks() > 0 &&
			len(topo.Spouts()) >= 1 &&
			len(topo.BFSOrder()) == len(topo.Components())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickRStormPropertiesOnRandomTopologies is the repository's broadest
// scheduler property test: across random DAGs, R-Storm either reports
// ErrInsufficientResources or produces a complete, deterministic
// assignment that never violates the hard memory constraint and never
// spreads wider than default Storm.
//
// Deliberately NOT asserted: network-cost dominance over the even
// scheduler. The greedy heuristic does not provide that guarantee on
// arbitrary DAGs — e.g. a topology with a dead-end spout lets Algorithm
// 3's interleaved draw pair non-communicating tasks, wasting colocation
// slots (found by this very test; seed -1980367436722194076). The paper's
// benchmark topologies, where every component communicates, are covered by
// the cost assertions in integration_test.go.
func TestQuickRStormPropertiesOnRandomTopologies(t *testing.T) {
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatal(err)
	}
	classes := resource.DefaultClasses()
	f := func(seed int64) bool {
		topo, err := RandomTopology(seed, RandomParams{MaxMemoryMB: 900})
		if err != nil {
			return false
		}
		ra, err := core.NewResourceAwareScheduler().Schedule(topo, c, core.NewGlobalState(c))
		if err != nil {
			return errors.Is(err, core.ErrInsufficientResources)
		}
		if !ra.Complete(topo) {
			return false
		}
		for node, used := range ra.UsedPerNode(topo) {
			if !resource.SatisfiesHard(c.Node(node).Spec.Capacity, used, classes) {
				return false
			}
		}
		// Determinism: same seed, same schedule.
		again, err := core.NewResourceAwareScheduler().Schedule(topo, c, core.NewGlobalState(c))
		if err != nil {
			return false
		}
		for id, p := range ra.Placements {
			if again.Placements[id] != p {
				return false
			}
		}
		ea, err := core.EvenScheduler{}.Schedule(topo, c, core.NewGlobalState(c))
		if err != nil {
			return false
		}
		return len(ra.NodesUsed()) <= len(ea.NodesUsed())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomParamsDefaults(t *testing.T) {
	p := RandomParams{}.withDefaults()
	if p.MaxComponents < 2 || p.MaxParallelism < 1 || p.MaxCPULoad <= 0 ||
		p.MaxMemoryMB <= 0 || p.FanInProb <= 0 {
		t.Errorf("defaults not filled: %+v", p)
	}
}
