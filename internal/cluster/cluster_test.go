package cluster

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"rstorm/internal/resource"
)

func mustEmulab12(t *testing.T) *Cluster {
	t.Helper()
	c, err := Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	return c
}

func TestEmulab12Shape(t *testing.T) {
	c := mustEmulab12(t)
	if c.Size() != 12 {
		t.Errorf("size = %d, want 12", c.Size())
	}
	racks := c.Racks()
	if len(racks) != 2 {
		t.Fatalf("racks = %v", racks)
	}
	for _, r := range racks {
		if got := len(c.NodesInRack(r)); got != 6 {
			t.Errorf("rack %s has %d nodes, want 6", r, got)
		}
	}
	n := c.Nodes()[0]
	if n.Spec.Capacity.CPU != 100 || n.Spec.Capacity.MemoryMB != 2048 {
		t.Errorf("node spec = %v", n.Spec.Capacity)
	}
	if n.Spec.Slots != 4 || n.Spec.NICMbps != 100 {
		t.Errorf("defaults not applied: %+v", n.Spec)
	}
}

func TestEmulab24Shape(t *testing.T) {
	c, err := Emulab24()
	if err != nil {
		t.Fatalf("Emulab24: %v", err)
	}
	if c.Size() != 24 || len(c.Racks()) != 2 {
		t.Errorf("size=%d racks=%d", c.Size(), len(c.Racks()))
	}
}

func TestNetworkDistance(t *testing.T) {
	c := mustEmulab12(t)
	ids := c.NodeIDs()
	sameRackA, sameRackB := ids[0], ids[1] // node-0-0, node-0-1
	otherRack := ids[6]                    // node-1-0

	if d := c.NetworkDistance(sameRackA, sameRackA); d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
	if d := c.NetworkDistance(sameRackA, sameRackB); d != 1 {
		t.Errorf("intra-rack distance = %v, want 1", d)
	}
	if d := c.NetworkDistance(sameRackA, otherRack); d != 2 {
		t.Errorf("inter-rack distance = %v, want 2", d)
	}
	if d := c.NetworkDistance(sameRackA, "ghost"); d != 2 {
		t.Errorf("unknown node distance = %v, want max", d)
	}
}

func TestPathBetween(t *testing.T) {
	c := mustEmulab12(t)
	ids := c.NodeIDs()
	tests := []struct {
		name       string
		a, b       NodeID
		sameWorker bool
		want       PathLevel
	}{
		{"same worker", ids[0], ids[0], true, PathIntraProcess},
		{"same node different worker", ids[0], ids[0], false, PathInterProcess},
		{"same rack", ids[0], ids[1], false, PathInterNode},
		{"other rack", ids[0], ids[6], false, PathInterRack},
		{"unknown node treated as far", ids[0], "ghost", false, PathInterRack},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.PathBetween(tt.a, tt.b, tt.sameWorker); got != tt.want {
				t.Errorf("PathBetween = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPathLevelOrderingMatchesPaperInsight(t *testing.T) {
	// §4: inter-rack slowest, then inter-node, inter-process, and
	// intra-process fastest.
	m := DefaultNetworkModel()
	if !(m.Latency(PathIntraProcess) < m.Latency(PathInterProcess) &&
		m.Latency(PathInterProcess) < m.Latency(PathInterNode) &&
		m.Latency(PathInterNode) < m.Latency(PathInterRack)) {
		t.Fatalf("latency hierarchy violated: %+v", m)
	}
	if PathIntraProcess.CrossesNetwork() || PathInterProcess.CrossesNetwork() {
		t.Error("local paths must not consume NIC bandwidth")
	}
	if !PathInterNode.CrossesNetwork() || !PathInterRack.CrossesNetwork() {
		t.Error("remote paths must consume NIC bandwidth")
	}
}

func TestCapacities(t *testing.T) {
	c := mustEmulab12(t)
	total := c.TotalCapacity()
	if total.CPU != 1200 || total.MemoryMB != 12*2048 {
		t.Errorf("total capacity = %v", total)
	}
	rack := c.RackCapacity(c.Racks()[0])
	if rack.CPU != 600 {
		t.Errorf("rack capacity = %v", rack)
	}
	if got := c.RackCapacity("ghost"); !got.IsZero() {
		t.Errorf("unknown rack capacity = %v, want zero", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name    string
		build   func() (*Cluster, error)
		wantSub string
	}{
		{
			name: "empty cluster",
			build: func() (*Cluster, error) {
				return NewBuilder().Build()
			},
			wantSub: "no nodes",
		},
		{
			name: "duplicate node",
			build: func() (*Cluster, error) {
				return NewBuilder().
					AddNode("a", "r", NodeSpec{Capacity: resource.Vector{CPU: 1}}).
					AddNode("a", "r", NodeSpec{Capacity: resource.Vector{CPU: 1}}).
					Build()
			},
			wantSub: "declared twice",
		},
		{
			name: "empty node id",
			build: func() (*Cluster, error) {
				return NewBuilder().AddNode("", "r", NodeSpec{}).Build()
			},
			wantSub: "empty ID",
		},
		{
			name: "empty rack",
			build: func() (*Cluster, error) {
				return NewBuilder().AddNode("a", "", NodeSpec{}).Build()
			},
			wantSub: "empty rack",
		},
		{
			name: "negative capacity",
			build: func() (*Cluster, error) {
				return NewBuilder().
					AddNode("a", "r", NodeSpec{Capacity: resource.Vector{CPU: -5}}).
					Build()
			},
			wantSub: "negative",
		},
		{
			name: "bad network model",
			build: func() (*Cluster, error) {
				m := DefaultNetworkModel()
				m.DistanceIntraRack = 5
				m.DistanceInterRack = 1
				return NewBuilder().
					SetNetworkModel(m).
					AddNode("a", "r", NodeSpec{}).
					Build()
			},
			wantSub: "exceeds inter-rack",
		},
		{
			name: "zero racks preset",
			build: func() (*Cluster, error) {
				return TwoRack(0, 5, EmulabNodeSpec())
			},
			wantSub: "at least one rack",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.build()
			if err == nil {
				t.Fatal("Build succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestNegativeLatencyRejected(t *testing.T) {
	m := DefaultNetworkModel()
	m.LatencyInterRack = -time.Millisecond
	_, err := NewBuilder().SetNetworkModel(m).AddNode("a", "r", NodeSpec{}).Build()
	if err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestQuickNetworkDistanceSymmetric(t *testing.T) {
	c := mustEmulab12(t)
	ids := c.NodeIDs()
	f := func(i, j uint8) bool {
		a := ids[int(i)%len(ids)]
		b := ids[int(j)%len(ids)]
		return c.NetworkDistance(a, b) == c.NetworkDistance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDistanceTriangleOverRacks(t *testing.T) {
	// With the two-level hierarchy, distance satisfies the triangle
	// inequality: d(a,c) <= d(a,b) + d(b,c).
	c := mustEmulab12(t)
	ids := c.NodeIDs()
	f := func(i, j, k uint8) bool {
		a := ids[int(i)%len(ids)]
		b := ids[int(j)%len(ids)]
		cc := ids[int(k)%len(ids)]
		return c.NetworkDistance(a, cc) <= c.NetworkDistance(a, b)+c.NetworkDistance(b, cc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessorsCopy(t *testing.T) {
	c := mustEmulab12(t)
	ids := c.NodeIDs()
	ids[0] = "mutated"
	if c.NodeIDs()[0] == "mutated" {
		t.Error("NodeIDs returned aliased slice")
	}
	racks := c.Racks()
	racks[0] = "mutated"
	if c.Racks()[0] == "mutated" {
		t.Error("Racks returned aliased slice")
	}
	inRack := c.NodesInRack(c.Racks()[0])
	inRack[0] = "mutated"
	if c.NodesInRack(c.Racks()[0])[0] == "mutated" {
		t.Error("NodesInRack returned aliased slice")
	}
}

func TestStringers(t *testing.T) {
	c := mustEmulab12(t)
	n := c.Nodes()[0]
	if !strings.Contains(n.String(), string(n.ID)) {
		t.Errorf("node string = %q", n.String())
	}
	for _, p := range []PathLevel{PathIntraProcess, PathInterProcess, PathInterNode, PathInterRack, PathLevel(99)} {
		if p.String() == "" {
			t.Errorf("empty string for %d", int(p))
		}
	}
}

func TestNodeLookup(t *testing.T) {
	c := mustEmulab12(t)
	id := c.NodeIDs()[3]
	if n := c.Node(id); n == nil || n.ID != id {
		t.Errorf("Node(%s) = %v", id, n)
	}
	if n := c.Node("ghost"); n != nil {
		t.Errorf("Node(ghost) = %v, want nil", n)
	}
}
