package cluster

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rstorm/internal/stormyaml"
)

// FromYAML builds a Cluster from a storm.yaml-style document:
//
//	network.interrack.mbps: 300
//	network.interrack.latency.ms: 2
//	defaults:
//	  supervisor.cpu.capacity: 100.0
//	  supervisor.memory.capacity.mb: 2048.0
//	  supervisor.slots: 4
//	  supervisor.nic.mbps: 100
//	racks:
//	  rack-0:
//	    nodes:
//	      - node-0-0
//	      - node-0-1
//	  rack-1:
//	    nodes:
//	      - node-1-0
//
// Per-node overrides may appear as nested maps under a node name instead of
// a bare list entry; this loader keeps to the flat common case.
func FromYAML(r io.Reader) (*Cluster, error) {
	cfg, err := stormyaml.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("cluster config: %w", err)
	}
	return FromConfig(cfg)
}

// FromConfig builds a Cluster from a parsed configuration document.
func FromConfig(cfg stormyaml.Config) (*Cluster, error) {
	spec := EmulabNodeSpec()
	if defaults, ok := cfg.Map("defaults"); ok {
		if v, ok := defaults.Float("supervisor.cpu.capacity"); ok {
			spec.Capacity.CPU = v
		}
		if v, ok := defaults.Float("supervisor.memory.capacity.mb"); ok {
			spec.Capacity.MemoryMB = v
		}
		if v, ok := defaults.Float("supervisor.bandwidth.capacity"); ok {
			spec.Capacity.Bandwidth = v
		}
		if v, ok := defaults.Int("supervisor.slots"); ok {
			spec.Slots = int(v)
		}
		if v, ok := defaults.Float("supervisor.nic.mbps"); ok {
			spec.NICMbps = v
		}
	}
	if err := spec.Capacity.Validate(); err != nil {
		return nil, fmt.Errorf("cluster config defaults: %w", err)
	}

	network := DefaultNetworkModel()
	if v, ok := cfg.Float("network.interrack.mbps"); ok {
		network.InterRackMbps = v
	}
	if v, ok := cfg.Float("network.interrack.latency.ms"); ok {
		network.LatencyInterRack = time.Duration(v * float64(time.Millisecond))
	}
	if v, ok := cfg.Float("network.internode.latency.ms"); ok {
		network.LatencyInterNode = time.Duration(v * float64(time.Millisecond))
	}

	racks, ok := cfg.Map("racks")
	if !ok {
		return nil, fmt.Errorf("cluster config: missing racks section")
	}
	b := NewBuilder().SetNetworkModel(network)
	// stormyaml maps are unordered; iterate rack names sorted for
	// deterministic node ordering.
	for _, rackName := range sortedKeys(racks) {
		rackCfg, ok := racks.Map(rackName)
		if !ok {
			return nil, fmt.Errorf("cluster config: rack %q is not a mapping", rackName)
		}
		nodes, ok := rackCfg.List("nodes")
		if !ok {
			return nil, fmt.Errorf("cluster config: rack %q has no nodes list", rackName)
		}
		for _, n := range nodes {
			name, ok := n.(string)
			if !ok {
				return nil, fmt.Errorf("cluster config: rack %q has non-string node %v", rackName, n)
			}
			b.AddNode(NodeID(name), RackID(rackName), spec)
		}
	}
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("cluster config: %w", err)
	}
	return c, nil
}

func sortedKeys(m stormyaml.Config) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
