package cluster

import (
	"fmt"

	"rstorm/internal/resource"
)

// EmulabNodeSpec mirrors one worker of the paper's testbed (§6.1): a single
// 3 GHz core (100 CPU points), 2 GB of RAM, and a 100 Mbps NIC. The
// bandwidth budget mirrors the NIC in abstract units.
func EmulabNodeSpec() NodeSpec {
	return NodeSpec{
		Capacity: resource.Vector{CPU: 100, MemoryMB: 2048, Bandwidth: 100},
		Slots:    4,
		NICMbps:  100,
	}
}

// TwoRack builds a cluster of `racks` racks with `nodesPerRack` identical
// nodes each. Node IDs are "node-<rack>-<i>", rack IDs "rack-<r>".
func TwoRack(racks, nodesPerRack int, spec NodeSpec) (*Cluster, error) {
	if racks < 1 || nodesPerRack < 1 {
		return nil, fmt.Errorf("need at least one rack and one node, got %d racks x %d nodes",
			racks, nodesPerRack)
	}
	b := NewBuilder()
	for r := 0; r < racks; r++ {
		rack := RackID(fmt.Sprintf("rack-%d", r))
		for i := 0; i < nodesPerRack; i++ {
			id := NodeID(fmt.Sprintf("node-%d-%d", r, i))
			b.AddNode(id, rack, spec)
		}
	}
	return b.Build()
}

// Emulab12 reproduces the paper's main evaluation cluster: 12 worker nodes
// split across two racks (VLANs) of 6 (§6.1).
func Emulab12() (*Cluster, error) {
	return TwoRack(2, 6, EmulabNodeSpec())
}

// Emulab24 reproduces the multi-topology cluster: 24 machines separated
// into two 12-machine subclusters (§6.5).
func Emulab24() (*Cluster, error) {
	return TwoRack(2, 12, EmulabNodeSpec())
}
