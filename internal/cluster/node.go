// Package cluster models the physical substrate R-Storm schedules onto:
// racks of worker nodes with declared resource capacities, worker slots,
// and a network whose cost hierarchy follows the paper's insight (§4):
// inter-rack is the slowest, then inter-node, then inter-process, and
// intra-process is the fastest.
package cluster

import (
	"fmt"

	"rstorm/internal/resource"
)

// NodeID identifies a worker node.
type NodeID string

// RackID identifies a server rack (the paper emulates racks with VLANs).
type RackID string

// NodeSpec declares a node's capacity, mirroring the storm.yaml settings
// supervisor.cpu.capacity and supervisor.memory.capacity.mb (paper §5.2).
type NodeSpec struct {
	// Capacity is the node's total resource availability: CPU points
	// (100 per core), memory MB, and bandwidth budget.
	Capacity resource.Vector
	// Slots is the number of worker processes the supervisor can host
	// (Storm's supervisor.slots.ports). Defaults to 4.
	Slots int
	// NICMbps is the network interface bandwidth in megabits per second
	// used by the simulator. Defaults to 100 (the paper's testbed).
	NICMbps float64
}

// withDefaults fills unset spec fields.
func (s NodeSpec) withDefaults() NodeSpec {
	if s.Slots == 0 {
		s.Slots = 4
	}
	if s.NICMbps == 0 {
		s.NICMbps = 100
	}
	return s
}

// validate rejects malformed specs.
func (s NodeSpec) validate() error {
	if err := s.Capacity.Validate(); err != nil {
		return err
	}
	if s.Slots < 1 {
		return fmt.Errorf("slots %d, want >= 1", s.Slots)
	}
	if s.NICMbps <= 0 {
		return fmt.Errorf("NIC bandwidth %v Mbps, want > 0", s.NICMbps)
	}
	return nil
}

// Node is one worker machine.
type Node struct {
	// ID is the node's unique identifier.
	ID NodeID
	// Rack is the rack holding this node.
	Rack RackID
	// Spec is the node's declared capacity.
	Spec NodeSpec
}

// String implements fmt.Stringer.
func (n *Node) String() string {
	return fmt.Sprintf("%s@%s%s", n.ID, n.Rack, n.Spec.Capacity)
}
