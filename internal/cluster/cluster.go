package cluster

import (
	"fmt"

	"rstorm/internal/resource"
)

// Cluster is an immutable description of racks, nodes, and the network
// model. Build one with a Builder or a preset.
type Cluster struct {
	nodes     map[NodeID]*Node
	order     []NodeID
	racks     []RackID
	rackNodes map[RackID][]NodeID
	network   NetworkModel
}

// Builder assembles a Cluster.
type Builder struct {
	nodes   []*Node
	network NetworkModel
	errs    []error
}

// NewBuilder returns a Builder using the default network model.
func NewBuilder() *Builder {
	return &Builder{network: DefaultNetworkModel()}
}

// SetNetworkModel overrides the network model.
func (b *Builder) SetNetworkModel(m NetworkModel) *Builder {
	b.network = m
	return b
}

// AddNode declares a node on a rack.
func (b *Builder) AddNode(id NodeID, rack RackID, spec NodeSpec) *Builder {
	if id == "" {
		b.errs = append(b.errs, fmt.Errorf("node with empty ID"))
		return b
	}
	if rack == "" {
		b.errs = append(b.errs, fmt.Errorf("node %q has empty rack", id))
		return b
	}
	b.nodes = append(b.nodes, &Node{ID: id, Rack: rack, Spec: spec.withDefaults()})
	return b
}

// Build validates the declarations and returns the Cluster.
func (b *Builder) Build() (*Cluster, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("cluster has no nodes")
	}
	if err := b.network.validate(); err != nil {
		return nil, fmt.Errorf("network model: %w", err)
	}
	c := &Cluster{
		nodes:     make(map[NodeID]*Node, len(b.nodes)),
		rackNodes: make(map[RackID][]NodeID),
		network:   b.network,
	}
	for _, n := range b.nodes {
		if _, dup := c.nodes[n.ID]; dup {
			return nil, fmt.Errorf("node %q declared twice", n.ID)
		}
		if err := n.Spec.validate(); err != nil {
			return nil, fmt.Errorf("node %q: %w", n.ID, err)
		}
		nn := *n
		c.nodes[n.ID] = &nn
		c.order = append(c.order, n.ID)
		if _, seen := c.rackNodes[n.Rack]; !seen {
			c.racks = append(c.racks, n.Rack)
		}
		c.rackNodes[n.Rack] = append(c.rackNodes[n.Rack], n.ID)
	}
	return c, nil
}

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id NodeID) *Node { return c.nodes[id] }

// Nodes returns every node in declaration order. Node values are shared
// and must be treated as read-only.
func (c *Cluster) Nodes() []*Node {
	out := make([]*Node, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.nodes[id])
	}
	return out
}

// NodeIDs returns node IDs in declaration order.
func (c *Cluster) NodeIDs() []NodeID {
	out := make([]NodeID, len(c.order))
	copy(out, c.order)
	return out
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.order) }

// Racks returns rack IDs in first-seen order.
func (c *Cluster) Racks() []RackID {
	out := make([]RackID, len(c.racks))
	copy(out, c.racks)
	return out
}

// NodesInRack returns the node IDs on a rack, in declaration order.
func (c *Cluster) NodesInRack(rack RackID) []NodeID {
	src := c.rackNodes[rack]
	out := make([]NodeID, len(src))
	copy(out, src)
	return out
}

// Network returns the cluster's network model.
func (c *Cluster) Network() NetworkModel { return c.network }

// NetworkDistance returns the scheduler-visible distance between two nodes:
// 0 for the same node, the intra-rack distance within a rack, and the
// inter-rack distance across racks. Unknown nodes are treated as maximally
// distant.
func (c *Cluster) NetworkDistance(a, b NodeID) float64 {
	if a == b {
		return c.network.DistanceIntraNode
	}
	na, nb := c.nodes[a], c.nodes[b]
	if na == nil || nb == nil {
		return c.network.DistanceInterRack
	}
	if na.Rack == nb.Rack {
		return c.network.DistanceIntraRack
	}
	return c.network.DistanceInterRack
}

// PathBetween classifies the network path between two placements.
// sameWorker matters only when both tasks share a node.
func (c *Cluster) PathBetween(a, b NodeID, sameWorker bool) PathLevel {
	if a == b {
		if sameWorker {
			return PathIntraProcess
		}
		return PathInterProcess
	}
	na, nb := c.nodes[a], c.nodes[b]
	if na != nil && nb != nil && na.Rack == nb.Rack {
		return PathInterNode
	}
	return PathInterRack
}

// TotalCapacity sums the capacity of every node.
func (c *Cluster) TotalCapacity() resource.Vector {
	var total resource.Vector
	for _, id := range c.order {
		total = total.Add(c.nodes[id].Spec.Capacity)
	}
	return total
}

// RackCapacity sums the capacity of every node on a rack.
func (c *Cluster) RackCapacity(rack RackID) resource.Vector {
	var total resource.Vector
	for _, id := range c.rackNodes[rack] {
		total = total.Add(c.nodes[id].Spec.Capacity)
	}
	return total
}
