package cluster

import (
	"strings"
	"testing"
	"time"
)

const sampleClusterYAML = `
# testbed description
network.interrack.mbps: 250
network.interrack.latency.ms: 3
network.internode.latency.ms: 0.7
defaults:
  supervisor.cpu.capacity: 200.0
  supervisor.memory.capacity.mb: 4096.0
  supervisor.slots: 2
  supervisor.nic.mbps: 1000
racks:
  rack-a:
    nodes:
      - a1
      - a2
  rack-b:
    nodes:
      - b1
`

func TestFromYAML(t *testing.T) {
	c, err := FromYAML(strings.NewReader(sampleClusterYAML))
	if err != nil {
		t.Fatalf("FromYAML: %v", err)
	}
	if c.Size() != 3 {
		t.Fatalf("size = %d", c.Size())
	}
	if len(c.Racks()) != 2 {
		t.Fatalf("racks = %v", c.Racks())
	}
	n := c.Node("a1")
	if n == nil {
		t.Fatal("a1 missing")
	}
	if n.Spec.Capacity.CPU != 200 || n.Spec.Capacity.MemoryMB != 4096 {
		t.Errorf("capacity = %v", n.Spec.Capacity)
	}
	if n.Spec.Slots != 2 || n.Spec.NICMbps != 1000 {
		t.Errorf("spec = %+v", n.Spec)
	}
	net := c.Network()
	if net.InterRackMbps != 250 {
		t.Errorf("uplink = %v", net.InterRackMbps)
	}
	if net.LatencyInterRack != 3*time.Millisecond {
		t.Errorf("inter-rack latency = %v", net.LatencyInterRack)
	}
	if net.LatencyInterNode != 700*time.Microsecond {
		t.Errorf("inter-node latency = %v", net.LatencyInterNode)
	}
	if d := c.NetworkDistance("a1", "b1"); d != 2 {
		t.Errorf("cross-rack distance = %v", d)
	}
}

func TestFromYAMLDefaultsApplied(t *testing.T) {
	doc := `
racks:
  r:
    nodes:
      - only
`
	c, err := FromYAML(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("FromYAML: %v", err)
	}
	n := c.Node("only")
	if n.Spec.Capacity != EmulabNodeSpec().Capacity {
		t.Errorf("defaults not applied: %v", n.Spec.Capacity)
	}
}

func TestFromYAMLErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
		sub  string
	}{
		{"no racks", "defaults:\n  supervisor.slots: 2\n", "missing racks"},
		{"rack not map", "racks:\n  r: 5\n", "not a mapping"},
		{"rack without nodes", "racks:\n  r:\n    other: 1\n", "no nodes list"},
		{"non-string node", "racks:\n  r:\n    nodes:\n      - 42\n", "non-string node"},
		{"bad yaml", "racks\n", "expected 'key: value'"},
		{"negative capacity", "defaults:\n  supervisor.cpu.capacity: -5\nracks:\n  r:\n    nodes:\n      - a\n", "negative"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := FromYAML(strings.NewReader(tt.doc))
			if err == nil || !strings.Contains(err.Error(), tt.sub) {
				t.Fatalf("err = %v, want %q", err, tt.sub)
			}
		})
	}
}

func TestFromYAMLDeterministicNodeOrder(t *testing.T) {
	c1, err := FromYAML(strings.NewReader(sampleClusterYAML))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := FromYAML(strings.NewReader(sampleClusterYAML))
	if err != nil {
		t.Fatal(err)
	}
	ids1, ids2 := c1.NodeIDs(), c2.NodeIDs()
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("node order nondeterministic: %v vs %v", ids1, ids2)
		}
	}
}
