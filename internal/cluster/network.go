package cluster

import (
	"fmt"
	"time"
)

// PathLevel classifies the network path between two tasks, ordered from
// fastest to slowest per the paper's §4 insight.
type PathLevel int

const (
	// PathIntraProcess: both tasks in the same worker process.
	PathIntraProcess PathLevel = iota + 1
	// PathInterProcess: same node, different worker processes.
	PathInterProcess
	// PathInterNode: different nodes on the same rack.
	PathInterNode
	// PathInterRack: different racks.
	PathInterRack
)

// String implements fmt.Stringer.
func (p PathLevel) String() string {
	switch p {
	case PathIntraProcess:
		return "intra-process"
	case PathInterProcess:
		return "inter-process"
	case PathInterNode:
		return "inter-node"
	case PathInterRack:
		return "inter-rack"
	default:
		return fmt.Sprintf("PathLevel(%d)", int(p))
	}
}

// CrossesNetwork reports whether the path leaves the node, consuming NIC
// bandwidth.
func (p PathLevel) CrossesNetwork() bool {
	return p == PathInterNode || p == PathInterRack
}

// NetworkModel captures latency per path level and the abstract network
// distances fed to the scheduler's Distance procedure.
type NetworkModel struct {
	// LatencyIntraProcess is the in-memory hand-off delay.
	LatencyIntraProcess time.Duration
	// LatencyInterProcess is the local-socket delay between worker
	// processes on one node.
	LatencyInterProcess time.Duration
	// LatencyInterNode is the one-way delay between nodes on a rack.
	LatencyInterNode time.Duration
	// LatencyInterRack is the one-way delay across the aggregation
	// switch (the paper's testbed has a 4 ms inter-rack RTT, i.e. 2 ms
	// one-way).
	LatencyInterRack time.Duration

	// InterRackMbps is the bandwidth of each rack's uplink to the
	// aggregation switch (Fig. 4: top-of-rack switches connected by a
	// shared switch). All inter-rack traffic leaving a rack shares this
	// pipe. Zero means unlimited.
	InterRackMbps float64

	// DistanceIntraNode is the scheduler-visible network distance
	// between a node and itself.
	DistanceIntraNode float64
	// DistanceIntraRack is the distance between two nodes on one rack.
	DistanceIntraRack float64
	// DistanceInterRack is the distance between nodes on different
	// racks.
	DistanceInterRack float64
}

// DefaultNetworkModel returns the model calibrated to the paper's Emulab
// setup: 100 Mbps NICs, 4 ms inter-rack RTT, and unit rack distances.
func DefaultNetworkModel() NetworkModel {
	return NetworkModel{
		LatencyIntraProcess: 1 * time.Microsecond,
		LatencyInterProcess: 25 * time.Microsecond,
		LatencyInterNode:    500 * time.Microsecond,
		LatencyInterRack:    2 * time.Millisecond,
		InterRackMbps:       300,
		DistanceIntraNode:   0,
		DistanceIntraRack:   1,
		DistanceInterRack:   2,
	}
}

// Latency returns the one-way delay for a path level.
func (m NetworkModel) Latency(p PathLevel) time.Duration {
	switch p {
	case PathIntraProcess:
		return m.LatencyIntraProcess
	case PathInterProcess:
		return m.LatencyInterProcess
	case PathInterNode:
		return m.LatencyInterNode
	case PathInterRack:
		return m.LatencyInterRack
	default:
		return m.LatencyInterRack
	}
}

// validate rejects nonsensical models.
func (m NetworkModel) validate() error {
	if m.LatencyIntraProcess < 0 || m.LatencyInterProcess < 0 ||
		m.LatencyInterNode < 0 || m.LatencyInterRack < 0 {
		return fmt.Errorf("network latencies must be non-negative: %+v", m)
	}
	if m.DistanceIntraNode < 0 || m.DistanceIntraRack < 0 || m.DistanceInterRack < 0 {
		return fmt.Errorf("network distances must be non-negative: %+v", m)
	}
	if m.InterRackMbps < 0 {
		return fmt.Errorf("inter-rack bandwidth %v Mbps must be non-negative", m.InterRackMbps)
	}
	if m.DistanceIntraRack > m.DistanceInterRack {
		return fmt.Errorf("intra-rack distance %v exceeds inter-rack distance %v",
			m.DistanceIntraRack, m.DistanceInterRack)
	}
	return nil
}
