package knapsack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolve01Known(t *testing.T) {
	items := []Item{
		{Weight: 2, Value: 3},
		{Weight: 3, Value: 4},
		{Weight: 4, Value: 5},
		{Weight: 5, Value: 6},
	}
	value, chosen, err := Solve01(items, 5)
	if err != nil {
		t.Fatalf("Solve01: %v", err)
	}
	if value != 7 {
		t.Errorf("value = %v, want 7 (items 0+1)", value)
	}
	if len(chosen) != 2 || chosen[0] != 0 || chosen[1] != 1 {
		t.Errorf("chosen = %v, want [0 1]", chosen)
	}
}

func TestSolve01Edges(t *testing.T) {
	if v, chosen, err := Solve01(nil, 10); err != nil || v != 0 || len(chosen) != 0 {
		t.Errorf("empty items: %v %v %v", v, chosen, err)
	}
	if v, _, err := Solve01([]Item{{Weight: 5, Value: 9}}, 0); err != nil || v != 0 {
		t.Errorf("zero capacity: %v %v", v, err)
	}
	if _, _, err := Solve01([]Item{{Weight: -1, Value: 1}}, 5); err == nil {
		t.Error("negative weight accepted")
	}
	if _, _, err := Solve01([]Item{{Weight: 1, Value: math.NaN()}}, 5); err == nil {
		t.Error("NaN value accepted")
	}
	if _, _, err := Solve01(nil, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	// Zero-weight item with positive value is always taken.
	v, chosen, err := Solve01([]Item{{Weight: 0, Value: 2}}, 0)
	if err != nil || v != 2 || len(chosen) != 1 {
		t.Errorf("zero-weight item: %v %v %v", v, chosen, err)
	}
}

// bruteForce01 enumerates all subsets; ground truth for small instances.
func bruteForce01(items []Item, capacity int) float64 {
	best := 0.0
	for mask := 0; mask < 1<<len(items); mask++ {
		weight, value := 0, 0.0
		for i := range items {
			if mask&(1<<i) != 0 {
				weight += items[i].Weight
				value += items[i].Value
			}
		}
		if weight <= capacity && value > best {
			best = value
		}
	}
	return best
}

func TestQuickSolve01MatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Weight: rng.Intn(8), Value: float64(rng.Intn(20))}
		}
		capacity := rng.Intn(20)
		got, chosen, err := Solve01(items, capacity)
		if err != nil {
			return false
		}
		// Chosen set must be feasible and worth the reported value.
		weight, value := 0, 0.0
		for _, i := range chosen {
			weight += items[i].Weight
			value += items[i].Value
		}
		if weight > capacity || math.Abs(value-got) > 1e-9 {
			return false
		}
		return math.Abs(got-bruteForce01(items, capacity)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMultipleGreedyFeasible(t *testing.T) {
	items := []Item{
		{Weight: 4, Value: 8},
		{Weight: 4, Value: 7},
		{Weight: 4, Value: 6},
		{Weight: 9, Value: 2},
	}
	capacities := []int{8, 4}
	assign, value := MultipleGreedy(items, capacities)
	residual := append([]int(nil), capacities...)
	var packed float64
	for i, bin := range assign {
		if bin < 0 {
			continue
		}
		residual[bin] -= items[i].Weight
		if residual[bin] < 0 {
			t.Fatalf("bin %d overfilled", bin)
		}
		packed += items[i].Value
	}
	if packed != value {
		t.Errorf("reported value %v != packed %v", value, packed)
	}
	// The three density-8/7/6 items fit (8+4 capacity); the heavy dud
	// stays out.
	if assign[3] != -1 {
		t.Errorf("oversized item assigned to bin %d", assign[3])
	}
	if value != 21 {
		t.Errorf("value = %v, want 21", value)
	}
}

func TestQuickMultipleGreedyNeverBeatsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Weight: 1 + rng.Intn(6), Value: 1 + float64(rng.Intn(12))}
		}
		capacities := []int{4 + rng.Intn(8), 4 + rng.Intn(8)}
		_, greedy := MultipleGreedy(items, capacities)
		_, exact, err := MultipleExact(items, capacities)
		if err != nil {
			return false
		}
		return greedy <= exact+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMultipleExactRefusesLarge(t *testing.T) {
	items := make([]Item, 17)
	if _, _, err := MultipleExact(items, []int{10}); err == nil {
		t.Error("oversized instance accepted")
	}
}

func TestQuadraticValue(t *testing.T) {
	// Items 0,1 share bin 0; item 2 alone in bin 1; item 3 unassigned.
	assign := Assignment{0, 0, 1, -1}
	profit := func(i, j int) float64 { return float64((i + 1) * (j + 1)) }
	// Only pair (0,1) colocated: profit 1*2 = 2.
	if got := QuadraticValue(assign, profit); got != 2 {
		t.Errorf("QuadraticValue = %v, want 2", got)
	}
	if got := QuadraticValue(Assignment{-1, -1}, profit); got != 0 {
		t.Errorf("all unassigned = %v", got)
	}
}
