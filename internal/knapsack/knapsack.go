// Package knapsack provides reference solvers for the knapsack variants
// the paper's problem formulation builds on (§3): the 0/1 knapsack
// (dynamic programming), the multiple knapsack (greedy with exact
// verification for small instances), and the quadratic profit evaluation
// underlying the QM3DKP view of task scheduling.
//
// R-Storm's production path never solves these exactly — §3 argues exact
// methods are too slow for a live scheduler — but the reference solvers
// ground the ablations: they verify the greedy heuristic's optimality gap
// on instances small enough to solve, and they document the problem the
// heuristic approximates.
package knapsack

import (
	"fmt"
	"math"
)

// Item is one indivisible item with a weight and a value.
type Item struct {
	Weight int
	Value  float64
}

// Solve01 solves the 0/1 knapsack exactly by dynamic programming in
// O(n·capacity) time: choose a subset of items maximizing total value with
// total weight <= capacity. It returns the best value and the chosen item
// indexes in ascending order.
func Solve01(items []Item, capacity int) (float64, []int, error) {
	if capacity < 0 {
		return 0, nil, fmt.Errorf("capacity %d, want >= 0", capacity)
	}
	for i, it := range items {
		if it.Weight < 0 {
			return 0, nil, fmt.Errorf("item %d has negative weight %d", i, it.Weight)
		}
		if math.IsNaN(it.Value) || math.IsInf(it.Value, 0) {
			return 0, nil, fmt.Errorf("item %d has non-finite value", i)
		}
	}
	n := len(items)
	// best[w] = max value at weight w; keep[i][w] records choices.
	best := make([]float64, capacity+1)
	keep := make([][]bool, n)
	for i := 0; i < n; i++ {
		keep[i] = make([]bool, capacity+1)
		it := items[i]
		for w := capacity; w >= it.Weight; w-- {
			if cand := best[w-it.Weight] + it.Value; cand > best[w] {
				best[w] = cand
				keep[i][w] = true
			}
		}
	}
	// Walk back the choices.
	var chosen []int
	w := capacity
	for i := n - 1; i >= 0; i-- {
		if keep[i][w] {
			chosen = append(chosen, i)
			w -= items[i].Weight
		}
	}
	// Reverse to ascending order.
	for i, j := 0, len(chosen)-1; i < j; i, j = i+1, j-1 {
		chosen[i], chosen[j] = chosen[j], chosen[i]
	}
	return best[capacity], chosen, nil
}

// Assignment maps item index -> bin index (-1 = unassigned).
type Assignment []int

// MultipleGreedy assigns items to bins greedily by value density
// (value/weight), best-fit on residual capacity — the flavour of heuristic
// §3 cites from Operations Research loading problems. Items that fit
// nowhere stay unassigned. Returns the assignment and the packed value.
func MultipleGreedy(items []Item, capacities []int) (Assignment, float64) {
	type ranked struct {
		idx     int
		density float64
	}
	order := make([]ranked, len(items))
	for i, it := range items {
		d := it.Value
		if it.Weight > 0 {
			d = it.Value / float64(it.Weight)
		}
		order[i] = ranked{idx: i, density: d}
	}
	// Insertion sort by density descending (stable, no deps).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].density > order[j-1].density; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	residual := append([]int(nil), capacities...)
	assign := make(Assignment, len(items))
	for i := range assign {
		assign[i] = -1
	}
	var total float64
	for _, r := range order {
		it := items[r.idx]
		bestBin, bestResidual := -1, math.MaxInt
		for b, res := range residual {
			if it.Weight <= res && res < bestResidual {
				bestBin, bestResidual = b, res
			}
		}
		if bestBin >= 0 {
			assign[r.idx] = bestBin
			residual[bestBin] -= it.Weight
			total += it.Value
		}
	}
	return assign, total
}

// MultipleExact solves the multiple knapsack exactly by exhaustive search
// with pruning; exponential, intended only to verify MultipleGreedy on
// small instances (items x bins up to ~20x4).
func MultipleExact(items []Item, capacities []int) (Assignment, float64, error) {
	if len(items) > 16 {
		return nil, 0, fmt.Errorf("exact solver limited to 16 items, got %d", len(items))
	}
	residual := append([]int(nil), capacities...)
	assign := make(Assignment, len(items))
	bestAssign := make(Assignment, len(items))
	for i := range assign {
		assign[i] = -1
		bestAssign[i] = -1
	}
	var bestValue float64
	// Upper bound: sum of remaining values.
	suffix := make([]float64, len(items)+1)
	for i := len(items) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + items[i].Value
	}
	var dfs func(i int, value float64)
	dfs = func(i int, value float64) {
		if value+suffix[i] <= bestValue {
			return // cannot beat the incumbent
		}
		if i == len(items) {
			if value > bestValue {
				bestValue = value
				copy(bestAssign, assign)
			}
			return
		}
		for b := range residual {
			if items[i].Weight <= residual[b] {
				residual[b] -= items[i].Weight
				assign[i] = b
				dfs(i+1, value+items[i].Value)
				assign[i] = -1
				residual[b] += items[i].Weight
			}
		}
		dfs(i+1, value) // leave item i out
	}
	dfs(0, 0)
	return bestAssign, bestValue, nil
}

// QuadraticValue evaluates a QKP-style objective for an assignment:
// the sum of pair profits for item pairs placed in the same bin. This is
// the "quadratic profit" of §3's QKP citation — in scheduling terms, the
// benefit of colocating communicating tasks.
func QuadraticValue(assign Assignment, pairProfit func(i, j int) float64) float64 {
	var total float64
	for i := 0; i < len(assign); i++ {
		if assign[i] < 0 {
			continue
		}
		for j := i + 1; j < len(assign); j++ {
			if assign[j] == assign[i] {
				total += pairProfit(i, j)
			}
		}
	}
	return total
}
