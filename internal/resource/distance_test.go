package resource

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceZeroAtPerfectFit(t *testing.T) {
	demand := Vector{CPU: 50, MemoryMB: 1024}
	avail := Vector{CPU: 50, MemoryMB: 1024}
	if d := Distance(demand, avail, 0, DefaultWeights()); d != 0 {
		t.Fatalf("Distance at perfect fit with zero network distance = %v, want 0", d)
	}
}

func TestDistanceGrowsWithNetworkDistance(t *testing.T) {
	demand := Vector{CPU: 50, MemoryMB: 1024}
	avail := Vector{CPU: 80, MemoryMB: 2048}
	w := DefaultWeights()
	near := Distance(demand, avail, 0, w)
	sameRack := Distance(demand, avail, 1, w)
	otherRack := Distance(demand, avail, 2, w)
	if !(near < sameRack && sameRack < otherRack) {
		t.Fatalf("distance not monotone in network distance: %v %v %v", near, sameRack, otherRack)
	}
}

func TestDistancePrefersTighterFit(t *testing.T) {
	// With equal network distance, the node whose availability is closer
	// to the demand wins, which is how R-Storm minimizes resource waste.
	demand := Vector{CPU: 50, MemoryMB: 512}
	tight := Vector{CPU: 55, MemoryMB: 600}
	loose := Vector{CPU: 100, MemoryMB: 2048}
	w := DefaultWeights()
	if dt, dl := Distance(demand, tight, 1, w), Distance(demand, loose, 1, w); dt >= dl {
		t.Fatalf("tight fit %v should beat loose fit %v", dt, dl)
	}
}

func TestDistanceWeightsSelectAxes(t *testing.T) {
	demand := Vector{CPU: 10, MemoryMB: 10}
	availA := Vector{CPU: 10, MemoryMB: 1000} // bad on memory only
	availB := Vector{CPU: 1000, MemoryMB: 10} // bad on cpu only
	cpuOnly := Weights{CPU: 1, Memory: 0, Bandwidth: 0}
	memOnly := Weights{CPU: 0, Memory: 1, Bandwidth: 0}
	if d := Distance(demand, availA, 5, cpuOnly); d != 0 {
		t.Errorf("cpu-only weights should ignore memory and network: got %v", d)
	}
	if d := Distance(demand, availB, 5, memOnly); d != 0 {
		t.Errorf("memory-only weights should ignore cpu and network: got %v", d)
	}
}

func TestWeightsValidate(t *testing.T) {
	tests := []struct {
		name    string
		w       Weights
		wantErr bool
	}{
		{"defaults", DefaultWeights(), false},
		{"zero weights allowed", Weights{}, false},
		{"negative", Weights{CPU: -1}, true},
		{"nan", Weights{Memory: math.NaN()}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.w.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestQuickDistanceNonNegativeSymmetricInResources(t *testing.T) {
	f := func(d1, d2, a1, a2, nd float64) bool {
		demand := boundedVector(d1, d2, 0)
		avail := boundedVector(a1, a2, 0)
		netDist := math.Mod(math.Abs(nd), 10)
		if math.IsNaN(netDist) {
			netDist = 0
		}
		w := DefaultWeights()
		fwd := Distance(demand, avail, netDist, w)
		rev := Distance(avail, demand, netDist, w)
		// Squared differences make the resource part symmetric.
		return fwd >= 0 && math.Abs(fwd-rev) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSatisfiesHard(t *testing.T) {
	classes := DefaultClasses()
	tests := []struct {
		name   string
		avail  Vector
		demand Vector
		want   bool
	}{
		{
			name:   "memory covered",
			avail:  Vector{CPU: 0, MemoryMB: 1024, Bandwidth: 0},
			demand: Vector{CPU: 500, MemoryMB: 1024, Bandwidth: 500},
			want:   true, // CPU/bandwidth are soft; only memory is checked
		},
		{
			name:   "memory exceeded",
			avail:  Vector{CPU: 1000, MemoryMB: 100, Bandwidth: 1000},
			demand: Vector{CPU: 1, MemoryMB: 101, Bandwidth: 1},
			want:   false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SatisfiesHard(tt.avail, tt.demand, classes); got != tt.want {
				t.Errorf("SatisfiesHard = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestViolatedSoft(t *testing.T) {
	classes := DefaultClasses()
	avail := Vector{CPU: 30, MemoryMB: 1024, Bandwidth: 2}
	demand := Vector{CPU: 50, MemoryMB: 512, Bandwidth: 1}
	v := ViolatedSoft(avail, demand, classes)
	if len(v) != 1 {
		t.Fatalf("want exactly one violated soft axis, got %v", v)
	}
	if got := v[AxisCPU]; math.Abs(got-20) > 1e-9 {
		t.Errorf("cpu overcommit = %v, want 20", got)
	}
	if v2 := ViolatedSoft(Vector{CPU: 100, MemoryMB: 1, Bandwidth: 100}, Vector{CPU: 1, MemoryMB: 100, Bandwidth: 1}, classes); v2 != nil {
		t.Errorf("memory is hard, not soft: got %v", v2)
	}
}

func TestClassesValidate(t *testing.T) {
	if err := DefaultClasses().Validate(); err != nil {
		t.Fatalf("default classes invalid: %v", err)
	}
	bad := Classes{AxisCPU: Soft}
	if err := bad.Validate(); err == nil {
		t.Fatal("incomplete classes should be invalid")
	}
	if err := (Classes{}).Validate(); err == nil {
		t.Fatal("empty classes should be invalid")
	}
	worse := Classes{AxisCPU: Class(99), AxisMemory: Hard, AxisBandwidth: Soft}
	if err := worse.Validate(); err == nil {
		t.Fatal("unknown class should be invalid")
	}
}

func TestClassAndAxisStrings(t *testing.T) {
	if Hard.String() != "hard" || Soft.String() != "soft" {
		t.Error("class strings wrong")
	}
	if Class(42).String() == "" || Axis(42).String() == "" {
		t.Error("unknown enums should still render")
	}
	if AxisCPU.String() != "cpu" || AxisMemory.String() != "memory" || AxisBandwidth.String() != "bandwidth" {
		t.Error("axis strings wrong")
	}
}
