package resource

import (
	"errors"
	"fmt"
)

// Class distinguishes hard constraints, which must never be violated, from
// soft constraints, which the scheduler may overcommit (paper §3).
type Class int

const (
	// Hard constraints must be satisfied in full. In R-Storm memory is
	// hard: exceeding physical memory is catastrophic.
	Hard Class = iota + 1
	// Soft constraints degrade gracefully under overcommit. In R-Storm
	// CPU and bandwidth are soft.
	Soft
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Hard:
		return "hard"
	case Soft:
		return "soft"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Axis identifies one dimension of the resource space.
type Axis int

const (
	AxisCPU Axis = iota + 1
	AxisMemory
	AxisBandwidth
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	switch a {
	case AxisCPU:
		return "cpu"
	case AxisMemory:
		return "memory"
	case AxisBandwidth:
		return "bandwidth"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// Axes lists every axis in canonical order. It returns a fixed-size
// array by value — no shared backing slice a caller could mutate, no
// heap allocation in the scheduler inner loops that range over it.
func Axes() [3]Axis {
	return [...]Axis{AxisCPU, AxisMemory, AxisBandwidth}
}

// Component extracts the named axis from v.
func Component(v Vector, a Axis) float64 {
	switch a {
	case AxisCPU:
		return v.CPU
	case AxisMemory:
		return v.MemoryMB
	case AxisBandwidth:
		return v.Bandwidth
	default:
		return 0
	}
}

// Classes maps each axis to its constraint class. The R-Storm default
// (memory hard; CPU and bandwidth soft) is DefaultClasses; users may
// override per the paper ("whether a constraint is soft or hard is
// specified by the user", §3).
type Classes map[Axis]Class

// DefaultClasses returns the paper's constraint classification.
func DefaultClasses() Classes {
	return Classes{
		AxisCPU:       Soft,
		AxisMemory:    Hard,
		AxisBandwidth: Soft,
	}
}

// HardAxes returns the axes classified as hard, in canonical order.
func (c Classes) HardAxes() []Axis {
	var out []Axis
	for _, a := range Axes() {
		if c[a] == Hard {
			out = append(out, a)
		}
	}
	return out
}

// SoftAxes returns the axes classified as soft, in canonical order.
func (c Classes) SoftAxes() []Axis {
	var out []Axis
	for _, a := range Axes() {
		if c[a] == Soft {
			out = append(out, a)
		}
	}
	return out
}

// Validate checks that every axis is classified and every class is known.
func (c Classes) Validate() error {
	if len(c) == 0 {
		return errors.New("constraint classes are empty")
	}
	for _, a := range Axes() {
		cl, ok := c[a]
		if !ok {
			return fmt.Errorf("axis %s has no constraint class", a)
		}
		if cl != Hard && cl != Soft {
			return fmt.Errorf("axis %s has invalid class %d", a, int(cl))
		}
	}
	return nil
}

// SatisfiesHard reports whether availability covers demand on every hard
// axis. This is the H_θ > H_τ check of Algorithm 4: a node is eligible only
// if no hard constraint would be violated. It runs in scheduler inner loops
// (every candidate node, every task), so it filters axes in place rather
// than materializing a HardAxes slice per call.
func SatisfiesHard(avail, demand Vector, classes Classes) bool {
	for _, a := range Axes() {
		if classes[a] == Hard && Component(avail, a) < Component(demand, a) {
			return false
		}
	}
	return true
}

// ViolatedSoft returns the soft axes on which demand exceeds availability,
// along with the overcommit amount per axis. The scheduler aims to minimize
// these but may accept them.
func ViolatedSoft(avail, demand Vector, classes Classes) map[Axis]float64 {
	var out map[Axis]float64
	for _, a := range classes.SoftAxes() {
		if d, av := Component(demand, a), Component(avail, a); d > av {
			if out == nil {
				out = make(map[Axis]float64, 2)
			}
			out[a] = d - av
		}
	}
	return out
}
