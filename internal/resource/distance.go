package resource

import (
	"fmt"
	"math"
)

// Weights attach a multiplier to each axis of the resource space. The paper
// (§4) allows soft constraints to be weighted "so that values can be
// normalized for comparison, as well as for allowing users to decide which
// constraints are more valued".
type Weights struct {
	CPU       float64
	Memory    float64
	Bandwidth float64
}

// DefaultWeights normalizes the axes so that one full node of each resource
// contributes comparably to the distance: CPU is measured against 100
// points, memory against 2048 MB (the evaluation cluster's node size), and
// network distance against the inter-rack distance.
func DefaultWeights() Weights {
	return Weights{
		CPU:       1.0 / 100.0,
		Memory:    1.0 / 2048.0,
		Bandwidth: 1.0 / 2.0,
	}
}

// Validate rejects non-finite or negative weights.
func (w Weights) Validate() error {
	for _, c := range []struct {
		name string
		val  float64
	}{
		{"cpu", w.CPU},
		{"memory", w.Memory},
		{"bandwidth", w.Bandwidth},
	} {
		if math.IsNaN(c.val) || math.IsInf(c.val, 0) {
			return fmt.Errorf("weight %s is not finite: %v", c.name, c.val)
		}
		if c.val < 0 {
			return fmt.Errorf("weight %s is negative: %v", c.name, c.val)
		}
	}
	return nil
}

// Apply scales v componentwise by the weights (the paper's S' = Weights·S).
func (w Weights) Apply(v Vector) Vector {
	return Vector{
		CPU:       v.CPU * w.CPU,
		MemoryMB:  v.MemoryMB * w.Memory,
		Bandwidth: v.Bandwidth * w.Bandwidth,
	}
}

// Distance implements the Distance procedure of Algorithm 4:
//
//	distance ← weight_m·(mτ−mθ)² + weight_c·(cτ−cθ)² + weight_b·netdist²
//	return sqrt(distance)
//
// demand is the task's resource demand vector A_τ; avail is the node's
// remaining availability A_θ on the CPU and memory axes; networkDistance is
// the network distance from the ref node to the candidate node, which the
// algorithm substitutes for the bandwidth axis.
//
// Weights are applied to the squared per-axis differences, matching the
// pseudo-code (weight·(Δ)²), so weights trade off axes in squared space.
func Distance(demand, avail Vector, networkDistance float64, w Weights) float64 {
	dm := demand.MemoryMB - avail.MemoryMB
	dc := demand.CPU - avail.CPU
	sum := w.Memory*dm*dm + w.CPU*dc*dc + w.Bandwidth*networkDistance*networkDistance
	return math.Sqrt(sum)
}
