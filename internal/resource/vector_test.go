package resource

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorAddSub(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		add  Vector
		sub  Vector
	}{
		{
			name: "zero identity",
			a:    Vector{CPU: 10, MemoryMB: 20, Bandwidth: 30},
			b:    Vector{},
			add:  Vector{CPU: 10, MemoryMB: 20, Bandwidth: 30},
			sub:  Vector{CPU: 10, MemoryMB: 20, Bandwidth: 30},
		},
		{
			name: "componentwise",
			a:    Vector{CPU: 50, MemoryMB: 1024, Bandwidth: 1},
			b:    Vector{CPU: 25, MemoryMB: 512, Bandwidth: 0.5},
			add:  Vector{CPU: 75, MemoryMB: 1536, Bandwidth: 1.5},
			sub:  Vector{CPU: 25, MemoryMB: 512, Bandwidth: 0.5},
		},
		{
			name: "negative result allowed by Sub",
			a:    Vector{CPU: 10},
			b:    Vector{CPU: 30},
			add:  Vector{CPU: 40},
			sub:  Vector{CPU: -20},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Add(tt.b); got != tt.add {
				t.Errorf("Add = %v, want %v", got, tt.add)
			}
			if got := tt.a.Sub(tt.b); got != tt.sub {
				t.Errorf("Sub = %v, want %v", got, tt.sub)
			}
		})
	}
}

func TestVectorScale(t *testing.T) {
	v := Vector{CPU: 10, MemoryMB: 100, Bandwidth: 2}
	got := v.Scale(2.5)
	want := Vector{CPU: 25, MemoryMB: 250, Bandwidth: 5}
	if got != want {
		t.Fatalf("Scale = %v, want %v", got, want)
	}
}

func TestVectorDominates(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		want bool
	}{
		{"equal", Vector{CPU: 1, MemoryMB: 1, Bandwidth: 1}, Vector{CPU: 1, MemoryMB: 1, Bandwidth: 1}, true},
		{"strictly greater", Vector{CPU: 2, MemoryMB: 2, Bandwidth: 2}, Vector{CPU: 1, MemoryMB: 1, Bandwidth: 1}, true},
		{"one axis smaller", Vector{CPU: 2, MemoryMB: 0.5, Bandwidth: 2}, Vector{CPU: 1, MemoryMB: 1, Bandwidth: 1}, false},
		{"all smaller", Vector{}, Vector{CPU: 1, MemoryMB: 1, Bandwidth: 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Dominates(tt.b); got != tt.want {
				t.Errorf("Dominates = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVectorValidate(t *testing.T) {
	tests := []struct {
		name    string
		v       Vector
		wantErr bool
	}{
		{"zero is valid", Vector{}, false},
		{"positive is valid", Vector{CPU: 50, MemoryMB: 512, Bandwidth: 1}, false},
		{"negative cpu", Vector{CPU: -1}, true},
		{"negative memory", Vector{MemoryMB: -0.5}, true},
		{"NaN bandwidth", Vector{Bandwidth: math.NaN()}, true},
		{"infinite cpu", Vector{CPU: math.Inf(1)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.v.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSumAndMax(t *testing.T) {
	a := Vector{CPU: 1, MemoryMB: 10, Bandwidth: 5}
	b := Vector{CPU: 2, MemoryMB: 5, Bandwidth: 7}
	if got := Sum(a, b); got != (Vector{CPU: 3, MemoryMB: 15, Bandwidth: 12}) {
		t.Errorf("Sum = %v", got)
	}
	if got := Max(a, b); got != (Vector{CPU: 2, MemoryMB: 10, Bandwidth: 7}) {
		t.Errorf("Max = %v", got)
	}
	if got := Sum(); !got.IsZero() {
		t.Errorf("Sum() of nothing = %v, want zero", got)
	}
}

// boundedVector produces a vector with finite non-negative components so
// algebraic properties hold exactly enough for comparison.
func boundedVector(cpu, mem, bw float64) Vector {
	abs := func(f float64) float64 {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 1
		}
		return math.Mod(math.Abs(f), 1e6)
	}
	return Vector{CPU: abs(cpu), MemoryMB: abs(mem), Bandwidth: abs(bw)}
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 float64) bool {
		a := boundedVector(a1, a2, a3)
		b := boundedVector(b1, b2, b3)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubInvertsAdd(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 float64) bool {
		a := boundedVector(a1, a2, a3)
		b := boundedVector(b1, b2, b3)
		got := a.Add(b).Sub(b)
		const eps = 1e-6
		return math.Abs(got.CPU-a.CPU) < eps &&
			math.Abs(got.MemoryMB-a.MemoryMB) < eps &&
			math.Abs(got.Bandwidth-a.Bandwidth) < eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDominatesReflexiveAndAntisymmetricOnSum(t *testing.T) {
	f := func(a1, a2, a3 float64) bool {
		a := boundedVector(a1, a2, a3)
		if !a.Dominates(a) {
			return false
		}
		bigger := a.Add(Vector{CPU: 1, MemoryMB: 1, Bandwidth: 1})
		return bigger.Dominates(a) && !a.Dominates(bigger)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNormNonNegativeAndTriangle(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 float64) bool {
		a := boundedVector(a1, a2, a3)
		b := boundedVector(b1, b2, b3)
		// Norm is non-negative and satisfies the triangle inequality.
		const eps = 1e-6
		return a.Norm() >= 0 && a.Add(b).Norm() <= a.Norm()+b.Norm()+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
