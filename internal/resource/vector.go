// Package resource models the n-dimensional resource vectors used by
// R-Storm's scheduling algorithm (paper §3–4).
//
// A task's demand and a node's availability are both points in a
// 3-dimensional space with axes CPU (points, where 100 points ≈ one core),
// memory (megabytes) and bandwidth (an abstract budget; during node
// selection R-Storm substitutes the network distance from the reference
// node on this axis). Memory is a hard constraint; CPU and bandwidth are
// soft constraints that may be overcommitted.
package resource

import (
	"fmt"
	"math"
)

// Vector is a point in the 3-dimensional resource space.
//
// The zero value is a valid "no resources" vector.
type Vector struct {
	// CPU is measured in points: 100 points ≈ 100% of one core
	// (paper §5.2's point system).
	CPU float64
	// MemoryMB is measured in megabytes.
	MemoryMB float64
	// Bandwidth is an abstract budget. For node availability it is the
	// nominal network budget; during node selection the scheduler
	// overwrites this axis with the network distance to the ref node.
	Bandwidth float64
}

// Add returns v + o componentwise.
func (v Vector) Add(o Vector) Vector {
	return Vector{
		CPU:       v.CPU + o.CPU,
		MemoryMB:  v.MemoryMB + o.MemoryMB,
		Bandwidth: v.Bandwidth + o.Bandwidth,
	}
}

// Sub returns v - o componentwise.
func (v Vector) Sub(o Vector) Vector {
	return Vector{
		CPU:       v.CPU - o.CPU,
		MemoryMB:  v.MemoryMB - o.MemoryMB,
		Bandwidth: v.Bandwidth - o.Bandwidth,
	}
}

// Scale returns v scaled by f componentwise.
func (v Vector) Scale(f float64) Vector {
	return Vector{
		CPU:       v.CPU * f,
		MemoryMB:  v.MemoryMB * f,
		Bandwidth: v.Bandwidth * f,
	}
}

// Dominates reports whether every component of v is >= the corresponding
// component of o.
func (v Vector) Dominates(o Vector) bool {
	return v.CPU >= o.CPU && v.MemoryMB >= o.MemoryMB && v.Bandwidth >= o.Bandwidth
}

// IsNonNegative reports whether every component of v is >= 0.
func (v Vector) IsNonNegative() bool {
	return v.CPU >= 0 && v.MemoryMB >= 0 && v.Bandwidth >= 0
}

// IsZero reports whether v is the zero vector.
func (v Vector) IsZero() bool {
	return v == Vector{}
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	return math.Sqrt(v.CPU*v.CPU + v.MemoryMB*v.MemoryMB + v.Bandwidth*v.Bandwidth)
}

// Total returns the sum of the components. It is the scalar "amount of
// resources" used when R-Storm picks the rack and node with the most
// resources for the ref node (Algorithm 4, lines 6–9). Components should be
// normalized (see Weights.Apply) before Total is meaningful across axes.
func (v Vector) Total() float64 {
	return v.CPU + v.MemoryMB + v.Bandwidth
}

// String renders the vector for logs and error messages.
func (v Vector) String() string {
	return fmt.Sprintf("{cpu:%.1f mem:%.1fMB bw:%.1f}", v.CPU, v.MemoryMB, v.Bandwidth)
}

// Validate returns an error if any component is negative or non-finite.
func (v Vector) Validate() error {
	for _, c := range []struct {
		name string
		val  float64
	}{
		{"cpu", v.CPU},
		{"memory", v.MemoryMB},
		{"bandwidth", v.Bandwidth},
	} {
		if math.IsNaN(c.val) || math.IsInf(c.val, 0) {
			return fmt.Errorf("resource %s is not finite: %v", c.name, c.val)
		}
		if c.val < 0 {
			return fmt.Errorf("resource %s is negative: %v", c.name, c.val)
		}
	}
	return nil
}

// Sum adds a series of vectors.
func Sum(vs ...Vector) Vector {
	var total Vector
	for _, v := range vs {
		total = total.Add(v)
	}
	return total
}

// Max returns the componentwise maximum of a and b.
func Max(a, b Vector) Vector {
	return Vector{
		CPU:       math.Max(a.CPU, b.CPU),
		MemoryMB:  math.Max(a.MemoryMB, b.MemoryMB),
		Bandwidth: math.Max(a.Bandwidth, b.Bandwidth),
	}
}
