package adaptive

import (
	"sort"

	"rstorm/internal/cluster"
)

// FlapGuard dampens placement flapping around node recovery. A node that
// just returned from the dead is the least trustworthy capacity in the
// cluster — hardware that crashed once tends to crash again, and a
// detector can bounce a node through dead/live several times during one
// real incident. Re-placing tasks onto it immediately turns each bounce
// into a fresh round of crash-kills and restarts. The guard therefore
// embargoes a recovered node for a configured number of control epochs:
// while embargoed, the node reads as zero availability to every planner
// (exactly like a dead node), so neither failover restarts nor
// improvement moves land there. Re-dying during the embargo clears it;
// the node re-earns a full hold on its next recovery.
//
// The guard is epoch-driven and deterministic: feed it the simulator's
// dead-node set once per control epoch via Observe, in the same order the
// loop makes decisions.
type FlapGuard struct {
	hold    int
	dead    map[cluster.NodeID]bool
	embargo map[cluster.NodeID]int
}

// NewFlapGuard returns a guard holding recovered nodes out of service for
// hold epochs. hold <= 0 disables damping: Observe and Embargoed become
// no-ops, so wiring the guard unconditionally costs nothing.
func NewFlapGuard(hold int) *FlapGuard {
	return &FlapGuard{
		hold:    hold,
		dead:    make(map[cluster.NodeID]bool),
		embargo: make(map[cluster.NodeID]int),
	}
}

// Observe folds one control epoch's dead-node set. Call it exactly once
// per epoch, before planning: embargoes tick down per call, so the hold
// is measured in epochs, not wall time.
func (g *FlapGuard) Observe(dead []cluster.NodeID) {
	if g == nil || g.hold <= 0 {
		return
	}
	isDead := make(map[cluster.NodeID]bool, len(dead))
	for _, id := range dead {
		isDead[id] = true
	}
	// Tick existing embargoes. A node that re-dies mid-embargo leaves the
	// embargo set (dead outranks embargoed — availability is zero either
	// way) and restarts a full hold at its next recovery.
	for id, left := range g.embargo {
		if isDead[id] || left <= 1 {
			delete(g.embargo, id)
			continue
		}
		g.embargo[id] = left - 1
	}
	// Dead→live transitions start a fresh hold, embargoing the node for
	// this epoch and the hold-1 that follow.
	for id := range g.dead {
		if !isDead[id] {
			g.embargo[id] = g.hold
		}
	}
	g.dead = isDead
}

// Embargoed returns the nodes currently held out of service, sorted.
// Planners zero these out of availability exactly like dead nodes.
func (g *FlapGuard) Embargoed() []cluster.NodeID {
	if g == nil || len(g.embargo) == 0 {
		return nil
	}
	out := make([]cluster.NodeID, 0, len(g.embargo))
	for id := range g.embargo {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Holding reports whether the named node is currently embargoed.
func (g *FlapGuard) Holding(id cluster.NodeID) bool {
	if g == nil {
		return false
	}
	return g.embargo[id] > 0
}
