package adaptive

import (
	"strings"
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
	"rstorm/internal/workloads"
)

// chattySamples synthesizes one window of task samples for a two-task
// chain a→b with the given edge count, split across two nodes.
func chattySamples(window time.Duration, tuples int64, remote bool) []simulator.TaskSample {
	return []simulator.TaskSample{
		{
			Topology: "t", Component: "a", TaskID: 0, Node: "n0", Spout: true,
			WindowStart: 0, WindowEnd: window,
			NodeCPUCapacity: 100, Slowdown: 1,
			Edges: []simulator.EdgeRate{
				{DestTaskID: 1, DestComponent: "b", Tuples: tuples, Remote: remote},
			},
		},
		{
			Topology: "t", Component: "b", TaskID: 1, Node: "n1", Sink: true,
			WindowStart: 0, WindowEnd: window,
			NodeCPUCapacity: 100, Slowdown: 1,
		},
	}
}

// TestProfilerFoldsEdgeRates: per-edge window counts become an EWMA
// component-pair rate, cumulative totals track remote traffic, and the
// materialized TrafficMatrix carries the rate.
func TestProfilerFoldsEdgeRates(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Alpha: 0.5})
	p.OnWindow(chattySamples(time.Second, 1000, true))
	edges := p.EdgeStats("t")
	if len(edges) != 1 {
		t.Fatalf("edges = %+v, want 1", edges)
	}
	e := edges[0]
	if e.From != "a" || e.To != "b" {
		t.Errorf("edge pair = %s->%s", e.From, e.To)
	}
	if e.RatePerSec != 1000 {
		t.Errorf("first-window rate = %v, want 1000", e.RatePerSec)
	}
	if e.Tuples != 1000 || e.RemoteTuples != 1000 {
		t.Errorf("totals = %d/%d, want 1000/1000", e.Tuples, e.RemoteTuples)
	}

	// Second window at half the rate, now local: EWMA folds, totals add,
	// remote stays at the first window's count.
	p.OnWindow(chattySamples(time.Second, 500, false))
	e = p.EdgeStats("t")[0]
	if e.RatePerSec != 750 { // 0.5*500 + 0.5*1000
		t.Errorf("EWMA rate = %v, want 750", e.RatePerSec)
	}
	if e.Tuples != 1500 || e.RemoteTuples != 1000 {
		t.Errorf("totals = %d/%d, want 1500/1000", e.Tuples, e.RemoteTuples)
	}
	if got := e.InterNodeFraction(); got != 1000.0/1500.0 {
		t.Errorf("fraction = %v", got)
	}

	m := p.TrafficMatrix("t")
	if m == nil || m.Rate("a", "b") != 750 {
		t.Fatalf("matrix = %v, want a->b at 750/s", m)
	}
	if p.TrafficMatrix("other") != nil {
		t.Error("unknown topology should have a nil matrix")
	}
}

// runChatty drives the adaptive loop over a ChattyChain placement and
// returns the result. trafficObjective toggles the tentpole: the
// consolidation objective on the imbalance trigger.
func runChatty(t *testing.T, topo *topology.Topology, trafficObjective bool) *LoopResult {
	t.Helper()
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	sched := core.NewResourceAwareScheduler()
	state := core.NewGlobalState(c)
	a, err := sched.Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	sim, err := simulator.New(c, simulator.Config{
		Duration:      8 * time.Second,
		MetricsWindow: 500 * time.Millisecond,
		Seed:          1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	loop := NewLoop(sim, c, sched, LoopConfig{
		Controller: ControllerConfig{TrafficObjective: trafficObjective},
	})
	if err := loop.Manage(topo, a); err != nil {
		t.Fatalf("Manage: %v", err)
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestImbalanceTriggerConsolidates is the controller-path regression the
// tentpole exists for: on the spread-out chatty chain the cold-topology
// (imbalance) trigger fires, and with the traffic objective it now
// produces moves that cut the inter-node tuple fraction. Without the
// objective the same trigger fires and still produces nothing — the
// pre-tentpole behavior, kept as the control.
func TestImbalanceTriggerConsolidates(t *testing.T) {
	spread, err := workloads.ChattyChain(false)
	if err != nil {
		t.Fatal(err)
	}
	res := runChatty(t, spread, true)
	if len(res.Events) == 0 {
		t.Fatal("traffic objective produced no rebalances on the spread chain")
	}
	for _, e := range res.Events {
		if e.Trigger != TriggerImbalance {
			t.Errorf("unexpected trigger %q (moves=%d)", e.Trigger, e.Moves)
		}
	}
	if res.TotalMoves() == 0 || res.TotalMoves() >= spread.TotalTasks() {
		t.Errorf("moves = %d, want within (0, %d)", res.TotalMoves(), spread.TotalTasks())
	}
	if frac := res.Result.Topology("chatty").InterNodeFraction(); frac > 0.4 {
		t.Errorf("inter-node fraction %.2f after consolidation, want well below the spread ~0.67", frac)
	}

	// Control: the distance objective on the identical scenario. The
	// trigger fires (the topology is cold) but the symmetric distance
	// finds nothing to improve — no moves, which is exactly the gap the
	// traffic objective closes.
	spread2, err := workloads.ChattyChain(false)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := runChatty(t, spread2, false)
	if n := ctrl.TotalMoves(); n != 0 {
		t.Errorf("distance objective moved %d tasks on the cold chain; expected none", n)
	}
	status := ctrl.Status.Topologies
	if len(status) != 1 || !strings.Contains(status[0].LastAction, TriggerImbalance) {
		t.Errorf("imbalance trigger never fired without the objective: %+v", status)
	}
}

// TestImbalanceTriggerQuietWhenPacked: on an honestly-declared chain
// R-Storm already packs the chatty edges locally; the traffic objective
// must not manufacture moves for a placement with nothing to improve.
func TestImbalanceTriggerQuietWhenPacked(t *testing.T) {
	packed, err := workloads.ChattyChain(true)
	if err != nil {
		t.Fatal(err)
	}
	res := runChatty(t, packed, true)
	if n := res.TotalMoves(); n != 0 {
		t.Errorf("traffic objective moved %d tasks on the packed chain; want 0", n)
	}
	if frac := res.Result.Topology("chatty").InterNodeFraction(); frac > 0.05 {
		t.Errorf("packed chain inter-node fraction %.2f, want ~0", frac)
	}
}

// TestEdgeRateDecaysWhenSourceDies: an edge whose source component has no
// live tasks left must snap its rate to zero (matching the component
// decay) instead of serving its last hot value forever; cumulative totals
// stay as history.
func TestEdgeRateDecaysWhenSourceDies(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Alpha: 0.5})
	p.OnWindow(chattySamples(time.Second, 1000, true))
	if got := p.EdgeStats("t")[0].RatePerSec; got != 1000 {
		t.Fatalf("rate = %v, want 1000", got)
	}
	// The source task dies mid-window after delivering 200 tuples: that
	// death-window traffic is real (the simulator counted it in
	// TuplesSent) and must reach the cumulative totals and the rate fold.
	dying := chattySamples(time.Second, 200, true)
	dying[0].Dead = true
	p.OnWindow(dying)
	e := p.EdgeStats("t")[0]
	if e.RatePerSec != 600 { // 0.5*200 + 0.5*1000
		t.Errorf("death-window rate = %v, want 600", e.RatePerSec)
	}
	if e.Tuples != 1200 || e.RemoteTuples != 1200 {
		t.Errorf("death-window totals = %d/%d, want 1200/1200", e.Tuples, e.RemoteTuples)
	}
	// Later windows: the dead task's edges are all zero and must not hold
	// the pair live — the rate snaps to zero, totals stay as history.
	dead := chattySamples(time.Second, 0, false)
	dead[0].Dead = true
	p.OnWindow(dead)
	e = p.EdgeStats("t")[0]
	if e.RatePerSec != 0 {
		t.Errorf("dead source edge rate = %v, want 0", e.RatePerSec)
	}
	if e.Tuples != 1200 || e.RemoteTuples != 1200 {
		t.Errorf("cumulative totals changed: %d/%d, want 1200/1200", e.Tuples, e.RemoteTuples)
	}
	if m := p.TrafficMatrix("t"); m.Rate("a", "b") != 0 {
		t.Errorf("matrix still carries phantom rate %v", m.Rate("a", "b"))
	}
}
