package adaptive

import (
	"testing"
	"time"

	"rstorm/internal/simulator"
)

func hotWindow() []simulator.TaskSample {
	return []simulator.TaskSample{
		sample("t", "work", 0, "n0", 1.0, 2),
		sample("t", "s", 1, "n1", 0.2, 1),
	}
}

func coldWindow() []simulator.TaskSample {
	return []simulator.TaskSample{
		sample("t", "work", 0, "n0", 0.05, 1),
		sample("t", "s", 1, "n1", 0.05, 1),
	}
}

func newTestController() *Controller {
	return NewController(NewProfiler(ProfilerConfig{Alpha: 1}), nil, ControllerConfig{
		Hysteresis: 2,
		Cooldown:   3,
		MinWindows: 2,
	})
}

func TestHotspotRequiresHysteresis(t *testing.T) {
	c := newTestController()
	c.OnWindow(hotWindow())
	if _, ok := c.ShouldRebalance("t"); ok {
		t.Error("rebalance after one hot window (hysteresis 2)")
	}
	c.OnWindow(hotWindow())
	trigger, ok := c.ShouldRebalance("t")
	if !ok || trigger != TriggerHotspot {
		t.Fatalf("ShouldRebalance = %q, %v; want hotspot", trigger, ok)
	}
}

func TestCooldownSilencesController(t *testing.T) {
	c := newTestController()
	c.OnWindow(hotWindow())
	c.OnWindow(hotWindow())
	c.NotifyRebalanced("t", 3, TriggerHotspot)
	// Still hot, but the cooldown must hold for 3 windows.
	for i := 0; i < 3; i++ {
		c.OnWindow(hotWindow())
		if _, ok := c.ShouldRebalance("t"); ok {
			t.Fatalf("rebalance during cooldown window %d", i)
		}
	}
	// Cooldown over; the streak rebuilt during it satisfies hysteresis.
	c.OnWindow(hotWindow())
	if _, ok := c.ShouldRebalance("t"); !ok {
		t.Error("no rebalance after cooldown expired")
	}
}

func TestImbalanceDetection(t *testing.T) {
	c := newTestController()
	c.OnWindow(coldWindow())
	c.OnWindow(coldWindow())
	trigger, ok := c.ShouldRebalance("t")
	if !ok || trigger != TriggerImbalance {
		t.Fatalf("ShouldRebalance = %q, %v; want imbalance", trigger, ok)
	}
	// A hot component breaks the cold streak.
	c.OnWindow(hotWindow())
	if trigger, _ := c.ShouldRebalance("t"); trigger == TriggerImbalance {
		t.Error("imbalance still reported after a hot window")
	}
}

func TestMinWindowsWarmup(t *testing.T) {
	c := NewController(nil, nil, ControllerConfig{Hysteresis: 1, MinWindows: 3})
	c.OnWindow(hotWindow())
	if _, ok := c.ShouldRebalance("t"); ok {
		t.Error("rebalance before MinWindows of profiling")
	}
	c.OnWindow(hotWindow())
	c.OnWindow(hotWindow())
	if _, ok := c.ShouldRebalance("t"); !ok {
		t.Error("no rebalance after warmup")
	}
}

func TestStatusSnapshot(t *testing.T) {
	c := newTestController()
	c.OnWindow(hotWindow())
	c.OnWindow(hotWindow())
	c.NotifyRebalanced("t", 4, TriggerHotspot)
	st := c.Status()
	if st.Windows != 2 {
		t.Errorf("Windows = %d", st.Windows)
	}
	if len(st.Topologies) != 1 {
		t.Fatalf("Topologies = %+v", st.Topologies)
	}
	ts := st.Topologies[0]
	if ts.Name != "t" || ts.Rebalances != 1 || ts.TotalMoves != 4 || ts.Cooldown != 3 {
		t.Errorf("status = %+v", ts)
	}
	if len(ts.Components) != 2 {
		t.Errorf("components = %+v", ts.Components)
	}
	if ts.LastAction == "" {
		t.Error("LastAction empty")
	}
}

// TestMemoryTriggerFiresOnFillingNode: a node whose summed residents pass
// MemHigh must build a memory streak for every topology hosted there and
// fire the memory trigger after the hysteresis, with no contention gate.
func TestMemoryTriggerFiresOnFillingNode(t *testing.T) {
	ctrl := NewController(nil, nil, ControllerConfig{
		Hysteresis: 2, MinWindows: 1, MemHigh: 0.8,
	})
	hot := func(residentMB float64) []simulator.TaskSample {
		s1 := sample("t", "cache", 0, "n0", 0.2, 1)
		s1.ResidentMemMB, s1.NodeMemCapacityMB = residentMB, 2048
		s2 := sample("t", "cache", 1, "n0", 0.2, 1)
		s2.ResidentMemMB, s2.NodeMemCapacityMB = residentMB, 2048
		return []simulator.TaskSample{s1, s2}
	}
	// 2 x 700 = 1400 < 0.8 * 2048: below the line, no streak.
	ctrl.OnWindow(hot(700))
	if trigger, ok := ctrl.ShouldRebalance("t"); ok {
		t.Fatalf("below MemHigh triggered %q", trigger)
	}
	// 2 x 900 = 1800 >= 1638: two windows of pressure satisfy hysteresis.
	ctrl.OnWindow(hot(900))
	if _, ok := ctrl.ShouldRebalance("t"); ok {
		t.Fatal("one hot window must not satisfy hysteresis 2")
	}
	ctrl.OnWindow(hot(900))
	trigger, ok := ctrl.ShouldRebalance("t")
	if !ok || trigger != TriggerMemory {
		t.Fatalf("trigger = %q, %v; want memory trigger", trigger, ok)
	}
	// The rebalance resets the streak and starts the cooldown.
	ctrl.NotifyRebalanced("t", 1, trigger)
	if _, ok := ctrl.ShouldRebalance("t"); ok {
		t.Error("cooldown ignored after memory rebalance")
	}
	if st := ctrl.Status(); st.Topologies[0].MemStreak != 0 {
		t.Errorf("memStreak = %d after rebalance, want 0", st.Topologies[0].MemStreak)
	}
}

// TestMemoryTriggerInertWithoutModel: memory-blind samples (zero capacity)
// must never produce a memory streak, whatever the fill thresholds.
func TestMemoryTriggerInertWithoutModel(t *testing.T) {
	ctrl := NewController(nil, nil, ControllerConfig{Hysteresis: 1, MinWindows: 1, MemHigh: 0.01})
	for i := 0; i < 3; i++ {
		ctrl.OnWindow([]simulator.TaskSample{sample("t", "cache", 0, "n0", 0.3, 1)})
	}
	if trigger, ok := ctrl.ShouldRebalance("t"); ok && trigger == TriggerMemory {
		t.Error("memory trigger fired without the runtime memory model")
	}
}

// TestPartialWindowsDoNotAdvanceDecisionClocks: a mid-window partial
// flush folds into the profiler but must not count toward hysteresis or
// consume cooldown — a 250ms slice is not a window of evidence.
func TestPartialWindowsDoNotAdvanceDecisionClocks(t *testing.T) {
	ctrl := NewController(nil, nil, ControllerConfig{
		Hysteresis: 2, MinWindows: 1, MemHigh: 0.5,
	})
	full := func() []simulator.TaskSample {
		s := sample("t", "cache", 0, "n0", 0.2, 1)
		s.ResidentMemMB, s.NodeMemCapacityMB = 1500, 2048
		return []simulator.TaskSample{s}
	}
	partial := func() []simulator.TaskSample {
		ss := full()
		ss[0].WindowStart = time.Second
		ss[0].WindowEnd = 1250 * time.Millisecond
		return ss
	}
	ctrl.OnWindow(full()) // memStreak 1
	// Two hot partial slices must not complete the hysteresis...
	ctrl.OnWindow(partial())
	ctrl.OnWindow(partial())
	if trigger, ok := ctrl.ShouldRebalance("t"); ok {
		t.Fatalf("partial windows satisfied hysteresis: %q", trigger)
	}
	// ...but the next full window does.
	ctrl.OnWindow(full())
	if trigger, ok := ctrl.ShouldRebalance("t"); !ok || trigger != TriggerMemory {
		t.Fatalf("trigger = %q, %v after two full hot windows", trigger, ok)
	}
}
