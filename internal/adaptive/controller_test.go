package adaptive

import (
	"testing"

	"rstorm/internal/simulator"
)

func hotWindow() []simulator.TaskSample {
	return []simulator.TaskSample{
		sample("t", "work", 0, "n0", 1.0, 2),
		sample("t", "s", 1, "n1", 0.2, 1),
	}
}

func coldWindow() []simulator.TaskSample {
	return []simulator.TaskSample{
		sample("t", "work", 0, "n0", 0.05, 1),
		sample("t", "s", 1, "n1", 0.05, 1),
	}
}

func newTestController() *Controller {
	return NewController(NewProfiler(ProfilerConfig{Alpha: 1}), nil, ControllerConfig{
		Hysteresis: 2,
		Cooldown:   3,
		MinWindows: 2,
	})
}

func TestHotspotRequiresHysteresis(t *testing.T) {
	c := newTestController()
	c.OnWindow(hotWindow())
	if _, ok := c.ShouldRebalance("t"); ok {
		t.Error("rebalance after one hot window (hysteresis 2)")
	}
	c.OnWindow(hotWindow())
	trigger, ok := c.ShouldRebalance("t")
	if !ok || trigger != TriggerHotspot {
		t.Fatalf("ShouldRebalance = %q, %v; want hotspot", trigger, ok)
	}
}

func TestCooldownSilencesController(t *testing.T) {
	c := newTestController()
	c.OnWindow(hotWindow())
	c.OnWindow(hotWindow())
	c.NotifyRebalanced("t", 3, TriggerHotspot)
	// Still hot, but the cooldown must hold for 3 windows.
	for i := 0; i < 3; i++ {
		c.OnWindow(hotWindow())
		if _, ok := c.ShouldRebalance("t"); ok {
			t.Fatalf("rebalance during cooldown window %d", i)
		}
	}
	// Cooldown over; the streak rebuilt during it satisfies hysteresis.
	c.OnWindow(hotWindow())
	if _, ok := c.ShouldRebalance("t"); !ok {
		t.Error("no rebalance after cooldown expired")
	}
}

func TestImbalanceDetection(t *testing.T) {
	c := newTestController()
	c.OnWindow(coldWindow())
	c.OnWindow(coldWindow())
	trigger, ok := c.ShouldRebalance("t")
	if !ok || trigger != TriggerImbalance {
		t.Fatalf("ShouldRebalance = %q, %v; want imbalance", trigger, ok)
	}
	// A hot component breaks the cold streak.
	c.OnWindow(hotWindow())
	if trigger, _ := c.ShouldRebalance("t"); trigger == TriggerImbalance {
		t.Error("imbalance still reported after a hot window")
	}
}

func TestMinWindowsWarmup(t *testing.T) {
	c := NewController(nil, nil, ControllerConfig{Hysteresis: 1, MinWindows: 3})
	c.OnWindow(hotWindow())
	if _, ok := c.ShouldRebalance("t"); ok {
		t.Error("rebalance before MinWindows of profiling")
	}
	c.OnWindow(hotWindow())
	c.OnWindow(hotWindow())
	if _, ok := c.ShouldRebalance("t"); !ok {
		t.Error("no rebalance after warmup")
	}
}

func TestStatusSnapshot(t *testing.T) {
	c := newTestController()
	c.OnWindow(hotWindow())
	c.OnWindow(hotWindow())
	c.NotifyRebalanced("t", 4, TriggerHotspot)
	st := c.Status()
	if st.Windows != 2 {
		t.Errorf("Windows = %d", st.Windows)
	}
	if len(st.Topologies) != 1 {
		t.Fatalf("Topologies = %+v", st.Topologies)
	}
	ts := st.Topologies[0]
	if ts.Name != "t" || ts.Rebalances != 1 || ts.TotalMoves != 4 || ts.Cooldown != 3 {
		t.Errorf("status = %+v", ts)
	}
	if len(ts.Components) != 2 {
		t.Errorf("components = %+v", ts.Components)
	}
	if ts.LastAction == "" {
		t.Error("LastAction empty")
	}
}
