package adaptive

import (
	"fmt"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/resource"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
)

// LoopConfig tunes the epoch driver.
type LoopConfig struct {
	// Interval is the control epoch: how much virtual time passes between
	// controller evaluations. Zero defaults to the simulator's metrics
	// window (every flushed window is a decision point).
	Interval time.Duration
	// Profiler and Controller configure the estimation and policy halves.
	Profiler   ProfilerConfig
	Controller ControllerConfig
}

// RebalanceEvent records one applied mid-run rebalance.
type RebalanceEvent struct {
	At       time.Duration `json:"at"`
	Topology string        `json:"topology"`
	Trigger  string        `json:"trigger"`
	Moves    int           `json:"moves"`
}

// LoopResult bundles a finished adaptive run.
type LoopResult struct {
	// Result is the simulation's output.
	Result *simulator.Result
	// Events are the rebalances applied, in virtual-time order.
	Events []RebalanceEvent
	// Assignments are the final placements per topology.
	Assignments map[string]*core.Assignment
	// Status is the controller's end-of-run snapshot.
	Status ControllerStatus
}

// TotalMoves sums migrations across all rebalances.
func (r *LoopResult) TotalMoves() int {
	var n int
	for _, e := range r.Events {
		n += e.Moves
	}
	return n
}

// Loop drives a simulation in pause/reassign/resume epochs: it runs the
// simulator one control interval at a time, lets the controller judge the
// freshly profiled window, and applies incremental rebalances between
// epochs. The whole loop is deterministic for a fixed simulator seed.
type Loop struct {
	sim     *simulator.Simulation
	cluster *cluster.Cluster
	ctrl    *Controller
	cfg     LoopConfig

	names   []string
	topos   map[string]*topology.Topology
	current map[string]*core.Assignment
}

// NewLoop builds a Loop over a prepared (not yet started) simulation.
// sched is the scheduler used for incremental replanning; nil defaults to
// a fresh R-Storm scheduler.
func NewLoop(
	sim *simulator.Simulation,
	clu *cluster.Cluster,
	sched *core.ResourceAwareScheduler,
	cfg LoopConfig,
) *Loop {
	if cfg.Interval <= 0 {
		cfg.Interval = sim.Config().MetricsWindow
	}
	ctrl := NewController(NewProfiler(cfg.Profiler), sched, cfg.Controller)
	return &Loop{
		sim:     sim,
		cluster: clu,
		ctrl:    ctrl,
		cfg:     cfg,
		topos:   make(map[string]*topology.Topology),
		current: make(map[string]*core.Assignment),
	}
}

// Controller exposes the loop's controller (for status endpoints).
func (l *Loop) Controller() *Controller { return l.ctrl }

// Manage registers a topology the loop may rebalance. The topology must
// already be added to the simulation with the same assignment.
func (l *Loop) Manage(topo *topology.Topology, a *core.Assignment) error {
	name := topo.Name()
	if _, dup := l.topos[name]; dup {
		return fmt.Errorf("topology %q already managed", name)
	}
	if a == nil || !a.Complete(topo) {
		return fmt.Errorf("topology %q needs a complete assignment", name)
	}
	l.names = append(l.names, name)
	l.topos[name] = topo
	l.current[name] = a
	return nil
}

// Run executes the adaptive loop to the simulation's configured duration.
func (l *Loop) Run() (*LoopResult, error) {
	if len(l.names) == 0 {
		return nil, fmt.Errorf("no topologies managed")
	}
	if err := l.sim.SetObserver(l.ctrl); err != nil {
		return nil, err
	}
	if err := l.sim.Start(); err != nil {
		return nil, err
	}
	duration := l.sim.Config().Duration
	var events []RebalanceEvent
	for t := l.cfg.Interval; t < duration; t += l.cfg.Interval {
		if err := l.sim.RunTo(t); err != nil {
			return nil, err
		}
		for _, name := range l.names {
			trigger, ok := l.ctrl.ShouldRebalance(name)
			if !ok {
				continue
			}
			topo := l.topos[name]
			next, moves, err := l.ctrl.Plan(topo, l.cluster, l.current[name], l.availabilityFor(name), trigger)
			if err != nil {
				return nil, fmt.Errorf("planning rebalance of %q: %w", name, err)
			}
			migrated := 0
			if len(moves) > 0 {
				// Reassign reports how many tasks actually moved (a plan
				// may relocate dead tasks, which have nothing to migrate)
				// and normalizes the assignment to what it applied.
				migrated, err = l.sim.Reassign(name, next)
				if err != nil {
					return nil, fmt.Errorf("applying rebalance of %q: %w", name, err)
				}
				l.current[name] = next
				if migrated > 0 {
					events = append(events, RebalanceEvent{
						At:       t,
						Topology: name,
						Trigger:  trigger,
						Moves:    migrated,
					})
				}
			}
			// Cooldown starts either way: a plan with no moves means the
			// current placement is the best the measured demands allow,
			// and re-planning every window would be churn.
			l.ctrl.NotifyRebalanced(name, migrated, trigger)
		}
	}
	res, err := l.sim.Finish()
	if err != nil {
		return nil, err
	}
	return l.buildResult(res, events), nil
}

// availabilityFor builds the replanner's base availability for one
// topology: full node capacities, minus every *other* managed topology's
// load at its measured (falling back to declared) demands, with nodes
// killed by failure injection zeroed out so no migration targets them.
// The planned topology's own usage is subtracted by the incremental pass
// itself.
func (l *Loop) availabilityFor(excl string) map[cluster.NodeID]resource.Vector {
	avail := make(map[cluster.NodeID]resource.Vector, l.cluster.Size())
	for _, n := range l.cluster.Nodes() {
		avail[n.ID] = n.Spec.Capacity
	}
	for _, id := range l.sim.DeadNodes() {
		avail[id] = resource.Vector{}
	}
	for _, name := range l.names {
		if name == excl {
			continue
		}
		topo := l.topos[name]
		cur := l.current[name]
		demands := l.ctrl.Profiler().MeasuredDemands(topo)
		dead := l.ctrl.Profiler().DeadTasks(name)
		for _, task := range topo.Tasks() {
			// A dead task consumes nothing on its node: OOM kills free the
			// working set and the node's contention is refrozen without it,
			// so subtracting its component's (live-task) demand would
			// understate the node to every other topology's replan.
			if dead[task.ID] {
				continue
			}
			d, ok := demands[task.Component]
			if !ok {
				d = topo.TaskDemand(task)
			}
			if p, ok := cur.PlacementOf(task.ID); ok {
				avail[p.Node] = avail[p.Node].Sub(d)
			}
		}
	}
	return avail
}

func (l *Loop) buildResult(res *simulator.Result, events []RebalanceEvent) *LoopResult {
	return &LoopResult{
		Result:      res,
		Events:      events,
		Assignments: l.current,
		Status:      l.ctrl.Status(),
	}
}
