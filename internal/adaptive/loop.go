package adaptive

import (
	"fmt"
	"sort"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/resource"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
	"rstorm/internal/trace"
)

// LoopConfig tunes the epoch driver.
type LoopConfig struct {
	// Interval is the control epoch: how much virtual time passes between
	// controller evaluations. Zero defaults to the simulator's metrics
	// window (every flushed window is a decision point).
	Interval time.Duration
	// MoveBudget is the cluster-wide migration budget per epoch — the
	// arbiter's disruption cap across every managed topology, arbitrated
	// priority-weighted: triggered topologies are served in descending
	// priority, each granted a share proportional to priority+1 (unused
	// share flows down to the next). Zero disables the global budget:
	// each topology is bounded only by Controller.MaxMoves, and with all
	// priorities equal the loop behaves exactly as the per-topology loops
	// it replaced.
	MoveBudget int
	// FlapDamping embargoes a recovered node for this many control epochs
	// after it transitions dead→live: its availability keeps reading zero,
	// so neither failover restarts nor improvement moves land on hardware
	// that may still be flapping. Zero disables damping (a recovered node
	// is eligible immediately), preserving prior behaviour.
	FlapDamping int
	// Profiler and Controller configure the estimation and policy halves.
	Profiler   ProfilerConfig
	Controller ControllerConfig
	// Journal, when set, receives the loop's decision events
	// (trigger-fired, plan-computed, rebalance-applied) at epoch virtual
	// time — one causally-ordered stream with the simulator's and
	// Nimbus's events when they share the journal (DESIGN.md §8). Nil
	// disables journaling with no other behavior change.
	Journal *trace.Journal
}

// RebalanceEvent records one applied mid-run rebalance.
type RebalanceEvent struct {
	At       time.Duration `json:"at"`
	Topology string        `json:"topology"`
	Trigger  string        `json:"trigger"`
	Moves    int           `json:"moves"`
	// Priority is the topology's tenant priority at the time of the
	// rebalance (the arbiter serves higher priorities first).
	Priority int `json:"priority"`
}

// LoopResult bundles a finished adaptive run.
type LoopResult struct {
	// Result is the simulation's output.
	Result *simulator.Result
	// Events are the rebalances applied, in virtual-time order.
	Events []RebalanceEvent
	// Assignments are the final placements per topology.
	Assignments map[string]*core.Assignment
	// Status is the controller's end-of-run snapshot.
	Status ControllerStatus
}

// TotalMoves sums migrations across all rebalances.
func (r *LoopResult) TotalMoves() int {
	var n int
	for _, e := range r.Events {
		n += e.Moves
	}
	return n
}

// Loop drives a simulation in pause/reassign/resume epochs: it runs the
// simulator one control interval at a time, lets the controller judge the
// freshly profiled window, and applies incremental rebalances between
// epochs. Across topologies it is the cluster arbiter (DESIGN.md §6):
// instead of independent per-topology control loops racing for the same
// nodes, one epoch evaluation collects every triggered topology, serves
// them in descending tenant priority, and — when MoveBudget is set —
// splits a global migration budget priority-weighted among them. The
// whole loop is deterministic for a fixed simulator seed.
type Loop struct {
	sim     *simulator.Simulation
	cluster *cluster.Cluster
	ctrl    *Controller
	cfg     LoopConfig
	guard   *FlapGuard

	names    []string
	topos    map[string]*topology.Topology
	current  map[string]*core.Assignment
	priority map[string]int
}

// NewLoop builds a Loop over a prepared (not yet started) simulation.
// sched is the scheduler used for incremental replanning; nil defaults to
// a fresh R-Storm scheduler.
func NewLoop(
	sim *simulator.Simulation,
	clu *cluster.Cluster,
	sched *core.ResourceAwareScheduler,
	cfg LoopConfig,
) *Loop {
	if cfg.Interval <= 0 {
		cfg.Interval = sim.Config().MetricsWindow
	}
	if cfg.Profiler.MetricsWindow <= 0 {
		// Thread the simulator's configured window into the profiler so
		// flush classification never has to infer it (the LastFlushFull
		// fix: a sub-window first flush must not count as evidence).
		cfg.Profiler.MetricsWindow = sim.Config().MetricsWindow
	}
	ctrl := NewController(NewProfiler(cfg.Profiler), sched, cfg.Controller)
	return &Loop{
		sim:      sim,
		cluster:  clu,
		ctrl:     ctrl,
		cfg:      cfg,
		guard:    NewFlapGuard(cfg.FlapDamping),
		topos:    make(map[string]*topology.Topology),
		current:  make(map[string]*core.Assignment),
		priority: make(map[string]int),
	}
}

// Controller exposes the loop's controller (for status endpoints).
func (l *Loop) Controller() *Controller { return l.ctrl }

// Manage registers a topology the loop may rebalance, at the priority the
// topology itself declares. The topology must already be added to the
// simulation with the same assignment.
func (l *Loop) Manage(topo *topology.Topology, a *core.Assignment) error {
	return l.ManageWithPriority(topo, a, topo.Priority())
}

// ManageWithPriority registers a topology at an explicit tenant priority,
// overriding the topology's own declaration. The arbiter serves triggered
// topologies in descending priority and weights the global move budget by
// priority+1.
func (l *Loop) ManageWithPriority(topo *topology.Topology, a *core.Assignment, priority int) error {
	name := topo.Name()
	if _, dup := l.topos[name]; dup {
		return fmt.Errorf("topology %q already managed", name)
	}
	if a == nil || !a.Complete(topo) {
		return fmt.Errorf("topology %q needs a complete assignment", name)
	}
	if priority < 0 {
		return fmt.Errorf("topology %q: priority %d is negative", name, priority)
	}
	l.names = append(l.names, name)
	l.topos[name] = topo
	l.current[name] = a
	l.priority[name] = priority
	l.ctrl.SetPriority(name, priority)
	return nil
}

// Run executes the adaptive loop to the simulation's configured duration.
func (l *Loop) Run() (*LoopResult, error) {
	if len(l.names) == 0 {
		return nil, fmt.Errorf("no topologies managed")
	}
	if err := l.sim.SetObserver(l.ctrl); err != nil {
		return nil, err
	}
	if err := l.sim.Start(); err != nil {
		return nil, err
	}
	duration := l.sim.Config().Duration
	var events []RebalanceEvent
	for t := l.cfg.Interval; t < duration; t += l.cfg.Interval {
		if err := l.sim.RunTo(t); err != nil {
			return nil, err
		}
		applied, err := l.arbitrate(t)
		if err != nil {
			return nil, err
		}
		events = append(events, applied...)
	}
	res, err := l.sim.Finish()
	if err != nil {
		return nil, err
	}
	return l.buildResult(res, events), nil
}

// arbitrate is one cluster-level control decision: collect every
// triggered topology, order by descending tenant priority (managed order
// within a priority), and apply their rebalances under the global move
// budget. With MoveBudget set, each triggered topology's share is
// proportional to priority+1 over the triggered set, granted in priority
// order with any unused share flowing down — so a high-priority tenant's
// repair is never starved by a low-priority tenant's churn, and total
// per-epoch disruption is bounded cluster-wide.
func (l *Loop) arbitrate(t time.Duration) ([]RebalanceEvent, error) {
	// One guard tick per epoch, before any planning: dead→live
	// transitions observed here open this epoch's embargo window.
	l.guard.Observe(l.sim.DeadNodes())
	type claim struct {
		name     string
		trigger  string
		priority int
	}
	var claims []claim
	weight := 0
	for _, name := range l.names {
		trigger, ok := l.ctrl.ShouldRebalance(name)
		if !ok {
			continue
		}
		claims = append(claims, claim{name: name, trigger: trigger, priority: l.priority[name]})
		weight += l.priority[name] + 1
		l.journalRecord(t, trace.CodeTriggerFired, name, trigger)
	}
	if len(claims) == 0 {
		return nil, nil
	}
	sort.SliceStable(claims, func(i, j int) bool {
		return claims[i].priority > claims[j].priority
	})

	remaining := l.cfg.MoveBudget
	var events []RebalanceEvent
	for _, cl := range claims {
		moveCap := 0
		if l.cfg.MoveBudget > 0 {
			if remaining <= 0 {
				// Budget exhausted: the trigger stays armed (streaks are
				// not reset), so the starved topology contends again next
				// epoch instead of silently burning a cooldown.
				continue
			}
			// Priority-weighted share of the epoch budget, at least one
			// move, never more than what is left.
			share := (l.cfg.MoveBudget*(cl.priority+1) + weight - 1) / weight
			if share < 1 {
				share = 1
			}
			if share > remaining {
				share = remaining
			}
			moveCap = share
		}
		topo := l.topos[cl.name]
		next, moves, err := l.ctrl.PlanWithCap(topo, l.cluster, l.current[cl.name],
			l.availabilityFor(cl.name), cl.trigger, moveCap)
		if err != nil {
			return nil, fmt.Errorf("planning rebalance of %q: %w", cl.name, err)
		}
		l.journalRecord(t, trace.CodePlanComputed, cl.name,
			fmt.Sprintf("trigger=%s planned=%d cap=%d", cl.trigger, len(moves), moveCap))
		migrated := 0
		if len(moves) > 0 {
			// Reassign reports how many tasks actually moved (a plan
			// may relocate dead tasks, which have nothing to migrate)
			// and normalizes the assignment to what it applied. A
			// failover plan instead goes through ReassignRestarting:
			// crash-dead tasks that received a forced placement (a Move
			// — its absence means no live node could fit the task, which
			// then stays dead and re-arms the trigger) are revived there.
			if cl.trigger == TriggerFailover {
				crashed := l.ctrl.Profiler().CrashedTasks(cl.name)
				restart := make(map[int]bool, len(moves))
				for _, m := range moves {
					if crashed[m.TaskID] {
						restart[m.TaskID] = true
					}
				}
				migrated, err = l.sim.ReassignRestarting(cl.name, next, restart)
			} else {
				migrated, err = l.sim.Reassign(cl.name, next)
			}
			if err != nil {
				return nil, fmt.Errorf("applying rebalance of %q: %w", cl.name, err)
			}
			l.current[cl.name] = next
			if migrated > 0 {
				events = append(events, RebalanceEvent{
					At:       t,
					Topology: cl.name,
					Trigger:  cl.trigger,
					Moves:    migrated,
					Priority: cl.priority,
				})
				l.journalRecord(t, trace.CodeRebalanceApplied, cl.name,
					fmt.Sprintf("trigger=%s moves=%d", cl.trigger, migrated))
			}
		}
		if l.cfg.MoveBudget > 0 {
			// The budget bounds real disruption: debit what actually
			// migrated (Reassign may normalize away planned relocations of
			// tasks that turn out dead, which cost nothing).
			remaining -= migrated
		}
		// Cooldown starts either way: a plan with no moves means the
		// current placement is the best the measured demands allow,
		// and re-planning every window would be churn.
		l.ctrl.NotifyRebalanced(cl.name, migrated, cl.trigger)
	}
	return events, nil
}

// journalRecord appends a loop decision event at epoch virtual time if a
// journal is configured.
func (l *Loop) journalRecord(at time.Duration, code, topo, detail string) {
	if l.cfg.Journal != nil {
		l.cfg.Journal.Record(at, code, topo, "", -1, detail)
	}
}

// availabilityFor builds the replanner's base availability for one
// topology: full node capacities, minus every *other* managed topology's
// load at its measured (falling back to declared) demands, with nodes
// killed by failure injection zeroed out so no migration targets them.
// The planned topology's own usage is subtracted by the incremental pass
// itself.
func (l *Loop) availabilityFor(excl string) map[cluster.NodeID]resource.Vector {
	avail := make(map[cluster.NodeID]resource.Vector, l.cluster.Size())
	for _, n := range l.cluster.Nodes() {
		avail[n.ID] = n.Spec.Capacity
	}
	for _, id := range l.sim.DeadNodes() {
		avail[id] = resource.Vector{}
	}
	// Recovered-but-embargoed nodes read as dead until the flap-damping
	// hold expires: capacity a flapping node offers is not capacity.
	for _, id := range l.guard.Embargoed() {
		avail[id] = resource.Vector{}
	}
	for _, name := range l.names {
		if name == excl {
			continue
		}
		topo := l.topos[name]
		cur := l.current[name]
		demands := l.ctrl.Profiler().MeasuredDemands(topo)
		dead := l.ctrl.Profiler().DeadTasks(name)
		for _, task := range topo.Tasks() {
			// A dead task consumes nothing on its node: OOM kills free the
			// working set and the node's contention is refrozen without it,
			// so subtracting its component's (live-task) demand would
			// understate the node to every other topology's replan.
			if dead[task.ID] {
				continue
			}
			d, ok := demands[task.Component]
			if !ok {
				d = topo.TaskDemand(task)
			}
			if p, ok := cur.PlacementOf(task.ID); ok {
				avail[p.Node] = avail[p.Node].Sub(d)
			}
		}
	}
	return avail
}

func (l *Loop) buildResult(res *simulator.Result, events []RebalanceEvent) *LoopResult {
	return &LoopResult{
		Result:      res,
		Events:      events,
		Assignments: l.current,
		Status:      l.ctrl.Status(),
	}
}
