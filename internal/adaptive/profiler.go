// Package adaptive closes R-Storm's scheduling loop. The paper schedules
// from user-declared resource demands and never looks back; this package
// adds the feedback path the follow-on literature (DRS, Fu et al.;
// A2C-based Storm scheduling, Dong et al.) shows is where further wins
// live: a runtime metrics tap on the simulator feeds a demand profiler
// that replaces declared CPU/bandwidth (and, under the runtime memory
// model, memory) demands with measured ones, a feedback controller
// detects hotspots, memory pressure, and imbalance with hysteresis, and
// an incremental reschedule (internal/core) migrates only the offending
// tasks. DESIGN.md documents the estimator and the control policy.
package adaptive

import (
	"sort"
	"sync"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/resource"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
)

// ProfilerConfig tunes demand estimation.
type ProfilerConfig struct {
	// Alpha is the EWMA smoothing factor applied to each new window
	// (1 = latest window only). Default 0.5.
	Alpha float64
	// MemLookaheadWindows projects the measured memory demand forward by
	// this many (full metrics) windows of EWMA growth: a task whose state
	// is still growing at plan time must be placed for where it is
	// heading, not where it was sampled, or the hard axis is re-violated
	// one growth window after the migration. Default 4.
	//
	// Memory measurement itself needs no switch: samples carry resident
	// memory exactly when the simulator's runtime memory model is on, and
	// the profiler replaces declared memory with measurements as soon as
	// it has seen any — a memory trigger must never replan against the
	// very declarations it just caught lying. Without the model, samples
	// are memory-blind and declarations stay authoritative.
	MemLookaheadWindows int
	// MetricsWindow is the simulator's configured metrics window. When
	// set, flush classification (full window of evidence vs partial
	// slice) and growth-slope scaling measure against it directly. When
	// zero the profiler falls back to inferring the window from the
	// largest span seen so far — which misclassifies the first flush of
	// an external driver that Reassigns mid-window as full, letting
	// hysteresis/cooldown clocks advance on partial evidence. Loop and
	// rstorm-sim thread the configured window; standalone constructions
	// should too.
	MetricsWindow time.Duration
}

func (c ProfilerConfig) withDefaults() ProfilerConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.MemLookaheadWindows <= 0 {
		c.MemLookaheadWindows = 4
	}
	if c.MetricsWindow < 0 {
		c.MetricsWindow = 0
	}
	return c
}

// ComponentStats is the profiler's rolling estimate for one component.
// All per-task quantities are means over the component's live tasks.
type ComponentStats struct {
	Topology  string `json:"topology"`
	Component string `json:"component"`
	Tasks     int    `json:"tasks"`
	// Windows counts flushes folded into the estimates.
	Windows int `json:"windows"`
	// Utilization is the EWMA mean executor busy fraction in [0,1];
	// MaxUtilization tracks the busiest task, which is what hotspot
	// detection keys on (one saturated task bottlenecks the pipeline
	// even when its siblings idle).
	Utilization    float64 `json:"utilization"`
	MaxUtilization float64 `json:"maxUtilization"`
	// CPUPoints is the EWMA measured per-task CPU demand in points. On an
	// overcommitted node the per-task shares are attributed from the
	// node's stretch factor, so a saturated component's true demand is
	// recovered exactly (DESIGN.md).
	CPUPoints float64 `json:"cpuPoints"`
	// MaxSlowdown is the worst CPU overcommit stretch among the
	// component's host nodes in the latest window (not smoothed: the
	// stretch is constant between rebalances). 1 means no contention —
	// and a saturated component on uncontended nodes is pipeline-bound,
	// not placement-bound, so migration cannot help it.
	MaxSlowdown float64 `json:"maxSlowdown"`
	// EgressMbps is the EWMA per-task NIC egress rate.
	EgressMbps float64 `json:"egressMbps"`
	// MemResidentMB is the EWMA *max* per-task resident memory in MB as
	// measured by the simulator's runtime memory model — max rather than
	// mean because memory is the hard axis, and a placement must fit the
	// component's worst task. Zero when the memory model is off.
	MemResidentMB float64 `json:"memResidentMb"`
	// MemGrowthMB is the EWMA per-window increase of the max resident
	// memory — the state-growth slope used to project demand forward.
	MemGrowthMB float64 `json:"memGrowthMb"`
	// QueueFill is the EWMA input-queue fill fraction at window ends.
	QueueFill float64 `json:"queueFill"`
	// Overflows is the cumulative count of enqueue attempts that hit a
	// full queue (backpressure events).
	Overflows int64 `json:"overflows"`
	// MeanLatency is the EWMA spout-to-sink latency (sink components).
	MeanLatency time.Duration `json:"meanLatencyNs"`
}

type compKey struct{ topo, comp string }

// edgeKey identifies one directed component pair of one topology.
type edgeKey struct{ topo, from, to string }

// EdgeStats is the profiler's rolling traffic estimate for one directed
// component pair — the component-pair traffic matrix entry the
// network-cost objective consumes. Rates come from the simulator's
// per-wire tuple counters (TaskSample.Edges), folded per window.
type EdgeStats struct {
	Topology string `json:"topology"`
	From     string `json:"from"`
	To       string `json:"to"`
	// RatePerSec is the EWMA tuples/sec summed across every task pair of
	// the component pair.
	RatePerSec float64 `json:"ratePerSec"`
	// Tuples / RemoteTuples are cumulative delivery counts over the run,
	// and the subset whose edge crossed nodes at flush time. Their ratio
	// is the edge's inter-node tuple fraction.
	Tuples       int64 `json:"tuples"`
	RemoteTuples int64 `json:"remoteTuples"`
	// Windows counts flushes folded into the rate.
	Windows int `json:"windows"`
}

// InterNodeFraction returns the share of this edge's tuples that crossed
// between nodes, in [0,1].
func (e EdgeStats) InterNodeFraction() float64 {
	if e.Tuples == 0 {
		return 0
	}
	return float64(e.RemoteTuples) / float64(e.Tuples)
}

// edgesInterNodeFraction aggregates a topology's edges into its overall
// inter-node tuple fraction — the /adaptive counterpart of
// TopologyResult.InterNodeFraction, computed from the profiler's view.
func edgesInterNodeFraction(edges []EdgeStats) float64 {
	var sent, remote int64
	for _, e := range edges {
		sent += e.Tuples
		remote += e.RemoteTuples
	}
	if sent == 0 {
		return 0
	}
	return float64(remote) / float64(sent)
}

// Profiler folds per-window task samples into per-component demand
// estimates. It implements simulator.Observer; the simulation feeding
// OnWindow is single-threaded, but estimates are also read from other
// goroutines (the StatisticServer's /adaptive route), so state access is
// mutex-guarded.
type Profiler struct {
	mu      sync.Mutex
	cfg     ProfilerConfig
	stats   map[compKey]*ComponentStats
	order   []compKey // first-seen order, for deterministic iteration
	windows int

	// dead records tasks observed dead (node failures), per topology —
	// the replanner freezes these in place, since there is no executor
	// left to migrate.
	dead map[string]map[int]bool

	// crashed is the subset of dead tasks whose host node was itself dead
	// when the task was sampled — killed by a node crash rather than the
	// OOM killer. These are restartable: the failover trigger re-places
	// them on live capacity. Marks persist through node recovery (the
	// executor stays gone until a failover round restarts it) and clear
	// on the task's next live sample.
	crashed map[string]map[int]bool

	// edges is the EWMA component-pair traffic matrix, fed by the
	// simulator's per-wire counters; edgeOrder is first-seen order for
	// deterministic iteration.
	edges     map[edgeKey]*EdgeStats
	edgeOrder []edgeKey

	// nodeBusy is scratch for per-node busy aggregation, reused across
	// flushes.
	nodeBusy map[cluster.NodeID]time.Duration

	// prevMaxMem is each component's unsmoothed max resident memory from
	// the previous window, the finite difference behind MemGrowthMB.
	prevMaxMem map[compKey]float64
	// sawMemory records that samples have carried resident-memory
	// measurements (the runtime memory model is on): MeasuredDemands then
	// replaces declared memory with the measured projection.
	sawMemory bool
	// fullWindow is the configured metrics window when
	// ProfilerConfig.MetricsWindow is set; otherwise the longest flush
	// interval seen — the configured window, once one full window has
	// flushed. Partial flushes (mid-window Reassign, trailing Finish)
	// scale their growth deltas up to this length so MemGrowthMB stays a
	// per-full-window slope, and are excluded from the Windows() count: a
	// 250 ms slice is not a window of evidence. lastFlushFull is the
	// classification of the most recent flush, shared with the
	// controller's decision clocks.
	fullWindow    time.Duration
	lastFlushFull bool
}

// NewProfiler returns a Profiler with the given configuration.
func NewProfiler(cfg ProfilerConfig) *Profiler {
	p := &Profiler{
		cfg:        cfg.withDefaults(),
		stats:      make(map[compKey]*ComponentStats),
		dead:       make(map[string]map[int]bool),
		crashed:    make(map[string]map[int]bool),
		edges:      make(map[edgeKey]*EdgeStats),
		nodeBusy:   make(map[cluster.NodeID]time.Duration),
		prevMaxMem: make(map[compKey]float64),
	}
	if p.cfg.MetricsWindow > 0 {
		p.fullWindow = p.cfg.MetricsWindow
	}
	return p
}

// Windows returns the number of full metrics windows observed. Partial
// flushes (mid-window Reassign, trailing Finish) fold into the estimates
// but do not count as windows of evidence.
func (p *Profiler) Windows() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.windows
}

// LastFlushFull reports whether the most recent OnWindow covered a full
// metrics window. The controller keys its hysteresis/cooldown clocks on
// this, so partial flushes cannot satisfy hysteresis early or burn
// cooldown in less real time than configured.
func (p *Profiler) LastFlushFull() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastFlushFull
}

// OnWindow implements simulator.Observer.
func (p *Profiler) OnWindow(samples []simulator.TaskSample) {
	p.mu.Lock()
	defer p.mu.Unlock()
	window := time.Duration(0)
	if len(samples) > 0 {
		window = samples[0].WindowEnd - samples[0].WindowStart
	}
	p.lastFlushFull = false
	if window <= 0 {
		return
	}
	// With a configured MetricsWindow the reference is fixed; otherwise it
	// is inferred as the largest span seen so far (legacy behaviour, which
	// over-trusts a sub-window first flush).
	if p.cfg.MetricsWindow <= 0 && window > p.fullWindow {
		p.fullWindow = window
	}
	p.lastFlushFull = window >= p.fullWindow
	if p.lastFlushFull {
		p.windows++
	}
	// First pass: per-node busy totals, needed to attribute an
	// overcommitted node's capacity across its tasks.
	for k := range p.nodeBusy {
		delete(p.nodeBusy, k)
	}
	for i := range samples {
		if !samples[i].Dead {
			p.nodeBusy[samples[i].Node] += samples[i].Busy
		}
	}
	// Second pass: per-component accumulation of this window.
	type acc struct {
		tasks    int
		util     float64
		maxUtil  float64
		maxSlow  float64
		points   float64
		mbps     float64
		fill     float64
		maxMem   float64
		overflow int64
		latSum   time.Duration
		latN     int64
	}
	type eacc struct {
		tuples int64
		remote int64
	}
	eaccs := make(map[edgeKey]*eacc, len(p.edges))
	var ekeys []edgeKey
	foldEdge := func(topo, comp string, e *simulator.EdgeRate) {
		ek := edgeKey{topo, comp, e.DestComponent}
		ea := eaccs[ek]
		if ea == nil {
			ea = &eacc{}
			eaccs[ek] = ea
			ekeys = append(ekeys, ek)
		}
		ea.tuples += e.Tuples
		if e.Remote {
			ea.remote += e.Tuples
		}
	}
	accs := make(map[compKey]*acc, len(p.stats))
	var keys []compKey
	for i := range samples {
		s := &samples[i]
		if s.Dead {
			d := p.dead[s.Topology]
			if d == nil {
				d = make(map[int]bool)
				p.dead[s.Topology] = d
			}
			d[s.TaskID] = true
			if s.NodeDead {
				cr := p.crashed[s.Topology]
				if cr == nil {
					cr = make(map[int]bool)
					p.crashed[s.Topology] = cr
				}
				cr[s.TaskID] = true
			}
			// Traffic the task delivered before dying this window is real
			// and must reach the cumulative edge totals (the simulator's
			// TuplesSent counted it). Only non-zero counts fold: a
			// long-dead task's all-zero edges must not hold the pair live
			// against the decay below.
			for j := range s.Edges {
				if s.Edges[j].Tuples != 0 {
					foldEdge(s.Topology, s.Component, &s.Edges[j])
				}
			}
			continue
		}
		// A live sample for a task marked dead means the control plane
		// revived it (an evicted tenant readmitted): clear the mark so the
		// replanner stops pinning an executor that is running again.
		if d := p.dead[s.Topology]; d != nil {
			delete(d, s.TaskID)
		}
		if cr := p.crashed[s.Topology]; cr != nil {
			delete(cr, s.TaskID)
		}
		k := compKey{s.Topology, s.Component}
		a := accs[k]
		if a == nil {
			a = &acc{}
			accs[k] = a
			keys = append(keys, k)
		}
		a.tasks++
		a.util += s.Utilization()
		if u := s.Utilization(); u > a.maxUtil {
			a.maxUtil = u
		}
		if s.Slowdown > a.maxSlow {
			a.maxSlow = s.Slowdown
		}
		a.points += p.taskPoints(s, window)
		a.mbps += float64(s.BytesOut) * 8 / 1e6 / window.Seconds()
		a.fill += s.QueueFill()
		if s.NodeMemCapacityMB > 0 {
			p.sawMemory = true
		}
		if s.ResidentMemMB > a.maxMem {
			a.maxMem = s.ResidentMemMB
		}
		a.overflow += s.Overflows
		a.latSum += s.LatencySum
		a.latN += s.LatencyN
		// Edge traffic: sum each (component, dest component) pair's tuple
		// counts across the source component's tasks. Task-level edges
		// (TaskSample.Edges) arrive in deterministic order, so the
		// first-seen pair order is deterministic too.
		for j := range s.Edges {
			foldEdge(s.Topology, s.Component, &s.Edges[j])
		}
	}
	alpha := p.cfg.Alpha
	for _, k := range keys {
		a := accs[k]
		st := p.stats[k]
		if st == nil {
			st = &ComponentStats{Topology: k.topo, Component: k.comp}
			p.stats[k] = st
			p.order = append(p.order, k)
		}
		n := float64(a.tasks)
		st.Tasks = a.tasks
		st.Windows++
		st.Overflows += a.overflow
		ew := func(prev, sample float64) float64 {
			if st.Windows == 1 {
				return sample
			}
			return alpha*sample + (1-alpha)*prev
		}
		st.Utilization = ew(st.Utilization, a.util/n)
		st.MaxUtilization = ew(st.MaxUtilization, a.maxUtil)
		st.MaxSlowdown = a.maxSlow
		st.CPUPoints = ew(st.CPUPoints, a.points/n)
		st.EgressMbps = ew(st.EgressMbps, a.mbps/n)
		st.QueueFill = ew(st.QueueFill, a.fill/n)
		st.MemResidentMB = ew(st.MemResidentMB, a.maxMem)
		if growth := a.maxMem - p.prevMaxMem[k]; st.Windows > 1 && growth > 0 {
			// A partial flush (mid-window Reassign, trailing Finish) spans
			// less than a full metrics window; its delta is scaled up so
			// the EWMA stays a per-full-window slope.
			if window < p.fullWindow {
				growth *= float64(p.fullWindow) / float64(window)
			}
			st.MemGrowthMB = ew(st.MemGrowthMB, growth)
		} else if st.Windows > 1 {
			// Flat or shrinking resident decays the slope toward zero so a
			// plateaued working set stops being projected upward forever.
			st.MemGrowthMB = ew(st.MemGrowthMB, 0)
		}
		p.prevMaxMem[k] = a.maxMem
		if a.latN > 0 {
			st.MeanLatency = time.Duration(ew(float64(st.MeanLatency),
				float64(a.latSum)/float64(a.latN)))
		}
	}
	// Fold the window's edge traffic into the EWMA matrix. Rates are
	// normalized by the flushed interval, so partial flushes (mid-window
	// Reassign, trailing Finish) fold at their true per-second rate just
	// like the egress estimate above.
	for _, ek := range ekeys {
		ea := eaccs[ek]
		st := p.edges[ek]
		if st == nil {
			st = &EdgeStats{Topology: ek.topo, From: ek.from, To: ek.to}
			p.edges[ek] = st
			p.edgeOrder = append(p.edgeOrder, ek)
		}
		st.Windows++
		st.Tuples += ea.tuples
		st.RemoteTuples += ea.remote
		rate := float64(ea.tuples) / window.Seconds()
		if st.Windows == 1 {
			st.RatePerSec = rate
		} else {
			st.RatePerSec = alpha*rate + (1-alpha)*st.RatePerSec
		}
	}
	// Edges that folded nothing this window have no live source tasks
	// left (a live task materializes all its edges every flush, zero
	// counts included, and a dead task's edges fold only while they still
	// carry death-window traffic): like the component decay below, the
	// rate snaps to zero instead of freezing at its last — possibly hot —
	// value, so a dead component's edges stop pulling traffic plans and
	// stop reading as live flow on /adaptive. Cumulative totals are
	// history and stay.
	for _, ek := range p.edgeOrder {
		if _, live := eaccs[ek]; live {
			continue
		}
		st := p.edges[ek]
		st.Windows++
		st.RatePerSec = 0
	}
	// Components with no live tasks left this window decay to zero load
	// instead of freezing at their last (possibly hot) estimate — a fully
	// failed component must not read as a perpetual hotspot.
	for _, k := range p.order {
		if _, live := accs[k]; live {
			continue
		}
		st := p.stats[k]
		st.Tasks = 0
		st.Windows++
		st.Utilization = 0
		st.MaxUtilization = 0
		st.MaxSlowdown = 1
		st.CPUPoints = 0
		st.EgressMbps = 0
		st.QueueFill = 0
		st.MemResidentMB = 0
		st.MemGrowthMB = 0
		p.prevMaxMem[k] = 0
	}
}

// DeadTasks returns the IDs of a topology's tasks observed dead so far.
// The returned map is live profiler state: callers must not mutate it and
// should treat it as read-only under the profiler's single observation
// stream.
func (p *Profiler) DeadTasks(topo string) map[int]bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead[topo]
}

// CrashedTasks returns a copy of the IDs of topo's tasks lost to node
// crashes — dead tasks whose host was dead when last sampled dead. This
// is the failover trigger's restart set: unlike OOM-killed tasks (whose
// node is healthy and whose death was a resource verdict), crash victims
// have capacity waiting for them elsewhere. Nil when none. A copy,
// because callers hand it to the incremental pass and mutate plans
// around it across epochs.
func (p *Profiler) CrashedTasks(topo string) map[int]bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	src := p.crashed[topo]
	if len(src) == 0 {
		return nil
	}
	out := make(map[int]bool, len(src))
	for id := range src {
		out[id] = true
	}
	return out
}

// crashedCount is the controller's per-window probe: how many of topo's
// tasks are currently crash-dead and awaiting restart.
func (p *Profiler) crashedCount(topo string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.crashed[topo])
}

// taskPoints estimates one task's CPU demand in points for this window.
//
// The simulator's contention model stretches service times by
// f = max(1, D/C) where D is the node's true aggregate demand and C its
// capacity. When f > 1 the node is saturated and D = f·C exactly, so the
// node's true demand is attributed across its tasks in proportion to their
// busy time — recovering each saturated task's true points. When f == 1
// the executor's un-stretched busy fraction bounds its demand: one fully
// busy executor thread consumes at most a node's worth of points, so the
// estimate is busyFrac·C (capped at C).
func (p *Profiler) taskPoints(s *simulator.TaskSample, window time.Duration) float64 {
	c := s.NodeCPUCapacity
	if c <= 0 {
		return 0
	}
	if s.Slowdown > 1 {
		total := p.nodeBusy[s.Node]
		if total <= 0 {
			return 0
		}
		return s.Slowdown * c * float64(s.Busy) / float64(total)
	}
	points := c * s.Utilization()
	if points > c {
		points = c
	}
	return points
}

// eachComponent visits every component's live estimate in first-seen
// order without copying — the controller's per-window evaluation path.
// The *ComponentStats must not be retained or mutated by fn.
func (p *Profiler) eachComponent(fn func(topo string, st *ComponentStats)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, k := range p.order {
		fn(k.topo, p.stats[k])
	}
}

// Stats returns the named topology's component estimates in first-seen
// (topology registration) order.
func (p *Profiler) Stats(topo string) []ComponentStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []ComponentStats
	for _, k := range p.order {
		if k.topo == topo {
			out = append(out, *p.stats[k])
		}
	}
	return out
}

// Topologies returns the topology names seen so far, sorted.
func (p *Profiler) Topologies() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, k := range p.order {
		if !seen[k.topo] {
			seen[k.topo] = true
			out = append(out, k.topo)
		}
	}
	sort.Strings(out)
	return out
}

// EdgeStats returns the named topology's component-pair traffic estimates
// in first-seen order — the measured edge-rate matrix served by /adaptive
// and rendered by rstorm-sim -traffic.
func (p *Profiler) EdgeStats(topo string) []EdgeStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []EdgeStats
	for _, k := range p.edgeOrder {
		if k.topo == topo {
			out = append(out, *p.edges[k])
		}
	}
	return out
}

// TrafficMatrix materializes the named topology's measured component-pair
// rates for the incremental pass's network-cost objective. Nil when no
// traffic has been measured yet (the pass then keeps the distance
// objective rather than planning on an all-zero matrix).
func (p *Profiler) TrafficMatrix(topo string) *core.TrafficMatrix {
	p.mu.Lock()
	defer p.mu.Unlock()
	var m *core.TrafficMatrix
	for _, k := range p.edgeOrder {
		if k.topo != topo {
			continue
		}
		if m == nil {
			m = core.NewTrafficMatrix()
		}
		m.Set(k.from, k.to, p.edges[k].RatePerSec)
	}
	return m
}

// MeasuredDemands returns per-component, per-task demand vectors with the
// declared CPU (and bandwidth) axes replaced by measured estimates. The
// memory axis stays declared on memory-blind runs — memory is the hard
// axis the measured reschedule must still respect, and without the
// simulator's runtime memory model there is nothing to measure it with —
// but once samples have carried resident-memory measurements it becomes
// the measured max resident projected forward by MemLookaheadWindows of
// EWMA growth, which is what lets the control loop correct memory
// mis-declarations in both directions. Components with no samples yet are
// omitted, falling back to declarations.
func (p *Profiler) MeasuredDemands(topo *topology.Topology) map[string]resource.Vector {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]resource.Vector)
	name := topo.Name()
	for _, k := range p.order {
		if k.topo != name {
			continue
		}
		comp := topo.Component(k.comp)
		if comp == nil {
			continue
		}
		st := p.stats[k]
		if st.Windows == 0 {
			continue
		}
		mem := comp.MemoryLoad
		if p.sawMemory {
			mem = st.MemResidentMB + float64(p.cfg.MemLookaheadWindows)*st.MemGrowthMB
		}
		out[k.comp] = resource.Vector{
			CPU:       st.CPUPoints,
			MemoryMB:  mem,
			Bandwidth: st.EgressMbps,
		}
	}
	return out
}
