package adaptive

import (
	"math"
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
)

// sampleSpan builds a TaskSample over an explicit window span.
func sampleSpan(topo, comp string, id int, node cluster.NodeID, start, end time.Duration, busyFrac, slowdown float64) simulator.TaskSample {
	return simulator.TaskSample{
		Topology:        topo,
		Component:       comp,
		TaskID:          id,
		Node:            node,
		WindowStart:     start,
		WindowEnd:       end,
		Busy:            time.Duration(busyFrac * float64(end-start)),
		Slowdown:        slowdown,
		NodeCPUCapacity: 100,
		QueueCap:        128,
	}
}

// TestConfiguredWindowClassifiesSubWindowFirstFlushPartial is the
// regression test for the LastFlushFull bug (ROADMAP open item): with the
// configured MetricsWindow threaded in, an external driver's sub-window
// first flush must NOT count as a full window of evidence — before the
// fix it was the "largest span seen", so it did, and the next boundary's
// remainder did too.
func TestConfiguredWindowClassifiesSubWindowFirstFlushPartial(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Alpha: 1, MetricsWindow: time.Second})
	// External driver Reassigns 250ms into the first window.
	p.OnWindow([]simulator.TaskSample{sampleSpan("t", "c", 0, "n0", 0, 250*time.Millisecond, 1, 1)})
	if p.LastFlushFull() {
		t.Error("sub-window first flush classified as full")
	}
	if p.Windows() != 0 {
		t.Errorf("Windows = %d after a partial flush, want 0", p.Windows())
	}
	// The remainder up to the window boundary is partial too.
	p.OnWindow([]simulator.TaskSample{sampleSpan("t", "c", 0, "n0", 250*time.Millisecond, time.Second, 1, 1)})
	if p.LastFlushFull() {
		t.Error("750ms remainder classified as full")
	}
	if p.Windows() != 0 {
		t.Errorf("Windows = %d, want 0", p.Windows())
	}
	// A true full window counts.
	p.OnWindow([]simulator.TaskSample{sampleSpan("t", "c", 0, "n0", time.Second, 2*time.Second, 1, 1)})
	if !p.LastFlushFull() {
		t.Error("full window classified as partial")
	}
	if p.Windows() != 1 {
		t.Errorf("Windows = %d, want 1", p.Windows())
	}
}

// TestInferredWindowLegacyBehaviour pins the fallback: without a
// configured window the largest-span inference still applies (standalone
// profilers keep working), including its known first-flush optimism.
func TestInferredWindowLegacyBehaviour(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Alpha: 1})
	p.OnWindow([]simulator.TaskSample{sampleSpan("t", "c", 0, "n0", 0, 250*time.Millisecond, 1, 1)})
	if !p.LastFlushFull() {
		t.Error("inference mode: first flush is by definition the largest span")
	}
	p.OnWindow([]simulator.TaskSample{sampleSpan("t", "c", 0, "n0", 250*time.Millisecond, 1250*time.Millisecond, 1, 1)})
	if !p.LastFlushFull() {
		t.Error("full window classified as partial")
	}
	p.OnWindow([]simulator.TaskSample{sampleSpan("t", "c", 0, "n0", 1250*time.Millisecond, 1500*time.Millisecond, 1, 1)})
	if p.LastFlushFull() {
		t.Error("later partial classified as full")
	}
}

// TestAttributionSplitsAcrossCoLocatedTopologies: a saturated node hosting
// two tenants must split its f·C true demand across BOTH topologies'
// tasks by busy share — per-tenant demand comes out exact, not inflated
// as if each tenant owned the node.
func TestAttributionSplitsAcrossCoLocatedTopologies(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Alpha: 1, MetricsWindow: time.Second})
	// Node n0: capacity 100, true demand 160 (f = 1.6): tenant A's task
	// and tenant B's task are both saturated (busy the whole stretched
	// window), so busy shares are equal and each recovers 80 points.
	p.OnWindow([]simulator.TaskSample{
		sampleSpan("tenant-a", "work", 0, "n0", 0, time.Second, 1, 1.6),
		sampleSpan("tenant-b", "work", 0, "n0", 0, time.Second, 1, 1.6),
	})
	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		stats := p.Stats(tenant)
		if len(stats) != 1 {
			t.Fatalf("%s stats = %+v", tenant, stats)
		}
		if got := stats[0].CPUPoints; math.Abs(got-80) > 1e-9 {
			t.Errorf("%s CPUPoints = %v, want 80 (f·C split across tenants)", tenant, got)
		}
	}
}

// TestAttributionSplitUnevenBusyShares: co-located tenants with different
// busy times split the node's true demand proportionally.
func TestAttributionSplitUnevenBusyShares(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Alpha: 1, MetricsWindow: time.Second})
	// f = 1.5, C = 100 → node true demand 150. Busy 1.0 vs 0.5 → shares
	// 2/3 and 1/3 → 100 and 50 points.
	p.OnWindow([]simulator.TaskSample{
		sampleSpan("big", "w", 0, "n0", 0, time.Second, 1.0, 1.5),
		sampleSpan("small", "w", 0, "n0", 0, time.Second, 0.5, 1.5),
	})
	if got := p.Stats("big")[0].CPUPoints; math.Abs(got-100) > 1e-9 {
		t.Errorf("big CPUPoints = %v, want 100", got)
	}
	if got := p.Stats("small")[0].CPUPoints; math.Abs(got-50) > 1e-9 {
		t.Errorf("small CPUPoints = %v, want 50", got)
	}
}

// TestLiveSampleClearsDeadMark: a task marked dead (node failure, OOM,
// eviction) that samples live again — an evicted tenant revived by the
// control plane — must stop being pinned by the replanner.
func TestLiveSampleClearsDeadMark(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Alpha: 1, MetricsWindow: time.Second})
	dead := sampleSpan("t", "c", 3, "n0", 0, time.Second, 0, 1)
	dead.Dead = true
	p.OnWindow([]simulator.TaskSample{dead})
	if !p.DeadTasks("t")[3] {
		t.Fatal("dead mark not recorded")
	}
	p.OnWindow([]simulator.TaskSample{sampleSpan("t", "c", 3, "n1", time.Second, 2*time.Second, 0.5, 1)})
	if p.DeadTasks("t")[3] {
		t.Error("revived task still marked dead")
	}
}

// arbiterHarness builds a two-tenant stacked scenario where both
// topologies are hot (shared overcommitted nodes) and the loop must
// arbitrate: two chains stacked on the same two nodes, each truly needing
// 80 points per stage but declaring 10, with free nodes to escape to.
func arbiterHarness(t *testing.T, budget int, prioA, prioB int) (*LoopResult, error) {
	t.Helper()
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatal(err)
	}
	ids := c.NodeIDs()
	build := func(name string, prio int) *topology.Topology {
		b := topology.NewBuilder(name).SetPriority(prio)
		prof := topology.ExecProfile{CPUPerTuple: 500 * time.Microsecond, TupleBytes: 128, CPUPoints: 80}
		b.SetSpout("s", 2).SetCPULoad(10).SetMemoryLoad(128).SetProfile(prof)
		b.SetBolt("w", 2).ShuffleGrouping("s").SetCPULoad(10).SetMemoryLoad(128).SetProfile(prof)
		topo, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return topo
	}
	place := func(topo *topology.Topology) *core.Assignment {
		a := core.NewAssignment(topo.Name(), "manual")
		// All four tasks of each topology packed onto two nodes: 320 true
		// points per 100-point node once both tenants stack.
		a.Place(0, core.Placement{Node: ids[0], Slot: 0})
		a.Place(1, core.Placement{Node: ids[0], Slot: 1})
		a.Place(2, core.Placement{Node: ids[1], Slot: 0})
		a.Place(3, core.Placement{Node: ids[1], Slot: 1})
		return a
	}
	sim, err := simulator.New(c, simulator.Config{
		Duration:      12 * time.Second,
		MetricsWindow: time.Second,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := build("tenant-a", prioA), build("tenant-b", prioB)
	aa, ab := place(ta), place(tb)
	if err := sim.AddTopology(ta, aa); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddTopology(tb, ab); err != nil {
		t.Fatal(err)
	}
	loop := NewLoop(sim, c, core.NewResourceAwareScheduler(), LoopConfig{MoveBudget: budget})
	if err := loop.Manage(ta, aa); err != nil {
		t.Fatal(err)
	}
	if err := loop.Manage(tb, ab); err != nil {
		t.Fatal(err)
	}
	return loop.Run()
}

// TestArbiterServesHigherPriorityFirst: when both tenants trigger in the
// same epoch, the higher-priority tenant's rebalance is applied first —
// it escapes to the emptiest nodes while the low-priority tenant plans
// against what is left.
func TestArbiterServesHigherPriorityFirst(t *testing.T) {
	lr, err := arbiterHarness(t, 0, 1, 7)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(lr.Events) == 0 {
		t.Fatal("no rebalances")
	}
	// Find the first epoch where both acted; tenant-b (priority 7) must
	// precede tenant-a (priority 1) in the applied order.
	firstA, firstB := -1, -1
	for i, e := range lr.Events {
		if e.Topology == "tenant-a" && firstA < 0 {
			firstA = i
		}
		if e.Topology == "tenant-b" && firstB < 0 {
			firstB = i
		}
	}
	if firstB < 0 {
		t.Fatal("high-priority tenant never rebalanced")
	}
	if firstA >= 0 && firstB > firstA {
		t.Errorf("low-priority tenant served before high-priority: events %+v", lr.Events)
	}
	for _, e := range lr.Events {
		want := map[string]int{"tenant-a": 1, "tenant-b": 7}[e.Topology]
		if e.Priority != want {
			t.Errorf("event %+v carries priority %d, want %d", e, e.Priority, want)
		}
	}
	if got := lr.Status.Topologies; len(got) > 0 {
		for _, ts := range got {
			want := map[string]int{"tenant-a": 1, "tenant-b": 7}[ts.Name]
			if ts.Priority != want {
				t.Errorf("status priority for %s = %d, want %d", ts.Name, ts.Priority, want)
			}
		}
	}
}

// TestArbiterMoveBudgetCapsEpochDisruption: a global budget bounds the
// total migrations applied in any single epoch.
func TestArbiterMoveBudgetCapsEpochDisruption(t *testing.T) {
	lr, err := arbiterHarness(t, 2, 0, 5)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(lr.Events) == 0 {
		t.Fatal("no rebalances at all under budget")
	}
	perEpoch := make(map[time.Duration]int)
	for _, e := range lr.Events {
		perEpoch[e.At] += e.Moves
	}
	for at, moves := range perEpoch {
		if moves > 2 {
			t.Errorf("epoch %v applied %d moves, budget 2", at, moves)
		}
	}
	// The high-priority tenant still converges: it keeps winning budget.
	var bMoves int
	for _, e := range lr.Events {
		if e.Topology == "tenant-b" {
			bMoves += e.Moves
		}
	}
	if bMoves == 0 {
		t.Error("high-priority tenant got no budget")
	}
}

// TestArbiterUnsetBudgetEqualPrioritiesMatchesLegacy: with priorities
// unset and no budget, the arbiter must behave exactly like the old
// per-topology loop — same events in the same order.
func TestArbiterUnsetBudgetEqualPrioritiesMatchesLegacy(t *testing.T) {
	first, err := arbiterHarness(t, 0, 0, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	second, err := arbiterHarness(t, 0, 0, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(first.Events) == 0 {
		t.Fatal("scenario produced no rebalances")
	}
	if len(first.Events) != len(second.Events) {
		t.Fatalf("event counts diverged: %d vs %d", len(first.Events), len(second.Events))
	}
	for i := range first.Events {
		if first.Events[i] != second.Events[i] {
			t.Errorf("event %d diverged: %+v vs %+v", i, first.Events[i], second.Events[i])
		}
	}
	// Managed order is the tie-break: tenant-a (managed first) acts first
	// within any shared epoch.
	for i := 1; i < len(first.Events); i++ {
		a, b := first.Events[i-1], first.Events[i]
		if a.At == b.At && a.Topology == "tenant-b" && b.Topology == "tenant-a" {
			t.Errorf("equal priorities broke managed order at %v", a.At)
		}
	}
}
