package adaptive

import (
	"reflect"
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/metrics"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
)

// liarTopo is a chain whose middle stage truly needs 80 CPU points per
// task but declares 10, so a declaration-trusting scheduler packs it onto
// far too few nodes.
func liarTopo(t *testing.T) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder("liar")
	b.SetSpout("s", 2).SetCPULoad(10).SetMemoryLoad(256).
		SetProfile(topology.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 128})
	b.SetBolt("work", 6).ShuffleGrouping("s").SetCPULoad(10).SetMemoryLoad(256).
		SetProfile(topology.ExecProfile{CPUPerTuple: 2 * time.Millisecond, TupleBytes: 128, CPUPoints: 80})
	b.SetBolt("z", 2).ShuffleGrouping("work").SetCPULoad(10).SetMemoryLoad(256).
		SetProfile(topology.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 128})
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func runAdaptive(t *testing.T, seed int64) *LoopResult {
	t.Helper()
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	topo := liarTopo(t)
	sched := core.NewResourceAwareScheduler()
	state := core.NewGlobalState(c)
	a, err := sched.Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	sim, err := simulator.New(c, simulator.Config{
		Duration:      12 * time.Second,
		MetricsWindow: 500 * time.Millisecond,
		Seed:          seed,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	loop := NewLoop(sim, c, sched, LoopConfig{})
	if err := loop.Manage(topo, a); err != nil {
		t.Fatalf("Manage: %v", err)
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestLoopClosesOnMisdeclaredDemand is the subsystem's end-to-end check:
// profiling detects the packed hotspot, the controller triggers, the
// incremental reschedule spreads the truly-heavy tasks, and post-rebalance
// throughput clearly beats the pre-rebalance windows.
func TestLoopClosesOnMisdeclaredDemand(t *testing.T) {
	res := runAdaptive(t, 1)
	if len(res.Events) == 0 {
		t.Fatal("controller never rebalanced the mis-declared topology")
	}
	first := res.Events[0]
	if first.Trigger != TriggerHotspot {
		t.Errorf("first trigger = %q, want hotspot", first.Trigger)
	}
	topo := res.Result.Topology("liar")
	series := topo.SinkSeries
	n := len(series)
	early := metrics.Mean(series[:2]) // packed, overcommitted phase
	late := metrics.Mean(series[n-4 : n])
	if late < 2*early {
		t.Errorf("loop did not recover throughput: early=%v late=%v series=%v",
			early, late, series)
	}
	// Incremental: strictly fewer migrations than a full teardown (which
	// restarts all 10 tasks).
	if moves := res.TotalMoves(); moves == 0 || moves >= 10 {
		t.Errorf("total moves = %d, want within (0, 10)", moves)
	}
	// The final placement must spread the heavy component: no node hosts
	// more than one 80-point work task.
	final := res.Assignments["liar"]
	perNode := map[string]int{}
	for id, p := range final.Placements {
		if id >= 2 && id < 8 { // work task IDs (spout 0-1, work 2-7)
			perNode[string(p.Node)]++
		}
	}
	for node, cnt := range perNode {
		if cnt > 1 {
			t.Errorf("node %s still hosts %d heavy work tasks", node, cnt)
		}
	}
	if res.Status.Windows == 0 || len(res.Status.Topologies) != 1 {
		t.Errorf("status = %+v", res.Status)
	}
}

// TestLoopIsDeterministic: identical seeds must produce identical results,
// events and placements — the control loop sits inside the DES clock.
func TestLoopIsDeterministic(t *testing.T) {
	a := runAdaptive(t, 7)
	b := runAdaptive(t, 7)
	if !reflect.DeepEqual(a.Result, b.Result) {
		t.Error("results diverged across identical seeds")
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Errorf("rebalance events diverged: %v vs %v", a.Events, b.Events)
	}
	if !reflect.DeepEqual(a.Assignments, b.Assignments) {
		t.Error("final assignments diverged")
	}
}

// TestLoopSurvivesNodeFailure combines failure injection with adaptive
// replanning: the dead node must be zeroed out of the availability
// picture (never a migration target) and its dead tasks skipped, not
// fatal errors.
func TestLoopSurvivesNodeFailure(t *testing.T) {
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatal(err)
	}
	topo := liarTopo(t)
	sched := core.NewResourceAwareScheduler()
	state := core.NewGlobalState(c)
	a, err := sched.Schedule(topo, c, state)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := simulator.New(c, simulator.Config{
		Duration:      12 * time.Second,
		MetricsWindow: 500 * time.Millisecond,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatal(err)
	}
	// Kill a node hosting part of the overloaded topology before the
	// controller's first decision, so replanning happens with a corpse in
	// the cluster.
	nodes := a.NodesUsed()
	victim := nodes[len(nodes)-1]
	if err := sim.FailNodeAt(victim, 700*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	loop := NewLoop(sim, c, sched, LoopConfig{})
	if err := loop.Manage(topo, a); err != nil {
		t.Fatal(err)
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatalf("adaptive run with node failure: %v", err)
	}
	if len(res.Events) == 0 {
		t.Error("hotspot on the surviving packed node never triggered")
	}
	// No migration may have targeted the dead node.
	final := res.Assignments["liar"]
	for id, p := range final.Placements {
		if p.Node == victim && a.Placements[id] != p {
			t.Errorf("task %d migrated onto dead node %s", id, victim)
		}
	}
}

func TestLoopValidation(t *testing.T) {
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := simulator.New(c, simulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	loop := NewLoop(sim, c, nil, LoopConfig{})
	if _, err := loop.Run(); err == nil {
		t.Error("Run with no managed topologies accepted")
	}
	topo := liarTopo(t)
	if err := loop.Manage(topo, core.NewAssignment("liar", "x")); err == nil {
		t.Error("incomplete assignment accepted")
	}
	state := core.NewGlobalState(c)
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatal(err)
	}
	if err := loop.Manage(topo, a); err != nil {
		t.Fatalf("Manage: %v", err)
	}
	if err := loop.Manage(topo, a); err == nil {
		t.Error("duplicate Manage accepted")
	}
}
