package adaptive

import (
	"math"
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
)

// sample builds a TaskSample over a 1s window.
func sample(topo, comp string, id int, node cluster.NodeID, busyFrac, slowdown float64) simulator.TaskSample {
	const window = time.Second
	return simulator.TaskSample{
		Topology:        topo,
		Component:       comp,
		TaskID:          id,
		Node:            node,
		WindowStart:     0,
		WindowEnd:       window,
		Busy:            time.Duration(busyFrac * float64(window)),
		Slowdown:        slowdown,
		NodeCPUCapacity: 100,
		QueueCap:        128,
	}
}

// TestSaturatedAttributionRecoversTruePoints: on an overcommitted node the
// stretch factor pins the node's aggregate true demand at f*C, so equal
// shares must come out exact: 4 fully-busy tasks under f=3.2 on 100 points
// truly need 80 points each.
func TestSaturatedAttributionRecoversTruePoints(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Alpha: 1})
	var samples []simulator.TaskSample
	for i := 0; i < 4; i++ {
		samples = append(samples, sample("t", "work", i, "n0", 1.0, 3.2))
	}
	p.OnWindow(samples)
	stats := p.Stats("t")
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if got := stats[0].CPUPoints; math.Abs(got-80) > 1e-9 {
		t.Errorf("CPUPoints = %v, want 80", got)
	}
	if got := stats[0].Utilization; math.Abs(got-1) > 1e-9 {
		t.Errorf("Utilization = %v, want 1", got)
	}
}

// TestUnsaturatedEstimateIsThreadFraction: with no contention the busy
// fraction of one executor bounds its demand.
func TestUnsaturatedEstimateIsThreadFraction(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Alpha: 1})
	p.OnWindow([]simulator.TaskSample{
		sample("t", "light", 0, "n0", 0.3, 1),
		sample("t", "light", 1, "n1", 0.1, 1),
	})
	stats := p.Stats("t")
	if got := stats[0].CPUPoints; math.Abs(got-20) > 1e-9 { // mean of 30 and 10
		t.Errorf("CPUPoints = %v, want 20", got)
	}
}

func TestEWMASmoothsWindows(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Alpha: 0.5})
	p.OnWindow([]simulator.TaskSample{sample("t", "c", 0, "n0", 0.8, 1)})
	p.OnWindow([]simulator.TaskSample{sample("t", "c", 0, "n0", 0.4, 1)})
	stats := p.Stats("t")
	// First window seeds (80), second folds: 0.5*40 + 0.5*80 = 60.
	if got := stats[0].CPUPoints; math.Abs(got-60) > 1e-9 {
		t.Errorf("CPUPoints = %v, want 60", got)
	}
	if p.Windows() != 2 {
		t.Errorf("Windows = %d", p.Windows())
	}
}

func TestDeadTasksExcluded(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Alpha: 1})
	dead := sample("t", "c", 1, "n0", 0.9, 1)
	dead.Dead = true
	p.OnWindow([]simulator.TaskSample{
		sample("t", "c", 0, "n0", 0.5, 1),
		dead,
	})
	stats := p.Stats("t")
	if stats[0].Tasks != 1 {
		t.Errorf("live tasks = %d, want 1", stats[0].Tasks)
	}
	if got := stats[0].CPUPoints; math.Abs(got-50) > 1e-9 {
		t.Errorf("CPUPoints = %v, want 50 (dead task excluded)", got)
	}
}

// TestFullyDeadComponentDecaysToIdle: once every task of a component is
// dead, its stats must drop to zero load instead of freezing at the last
// hot estimate — otherwise the controller chases a phantom hotspot
// forever. The dead tasks are also recorded for the planner to freeze.
func TestFullyDeadComponentDecaysToIdle(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Alpha: 1})
	p.OnWindow([]simulator.TaskSample{sample("t", "work", 3, "n0", 1.0, 2)})
	if got := p.Stats("t")[0].MaxUtilization; got != 1 {
		t.Fatalf("pre-death MaxUtilization = %v", got)
	}
	dead := sample("t", "work", 3, "n0", 0, 2)
	dead.Dead = true
	p.OnWindow([]simulator.TaskSample{dead})
	st := p.Stats("t")[0]
	if st.MaxUtilization != 0 || st.Utilization != 0 || st.MaxSlowdown != 1 || st.Tasks != 0 {
		t.Errorf("dead component did not decay: %+v", st)
	}
	if st.Windows != 2 {
		t.Errorf("Windows = %d", st.Windows)
	}
	if !p.DeadTasks("t")[3] {
		t.Error("dead task 3 not recorded")
	}
	if p.DeadTasks("other") != nil {
		t.Error("unknown topology has dead tasks")
	}
}

func TestMeasuredDemandsReplaceDeclaredCPU(t *testing.T) {
	b := topology.NewBuilder("t")
	b.SetSpout("s", 1).SetCPULoad(10).SetMemoryLoad(256)
	b.SetBolt("work", 1).ShuffleGrouping("s").SetCPULoad(10).SetMemoryLoad(512)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p := NewProfiler(ProfilerConfig{Alpha: 1})
	p.OnWindow([]simulator.TaskSample{
		sample("t", "s", 0, "n0", 0.1, 1),
		sample("t", "work", 1, "n1", 1.0, 2),
	})
	d := p.MeasuredDemands(topo)
	if got := d["work"].CPU; math.Abs(got-200) > 1e-9 {
		// Sole busy task on a 2x-stretched node: attributed the whole f*C.
		t.Errorf("work CPU = %v, want 200", got)
	}
	if got := d["work"].MemoryMB; got != 512 {
		t.Errorf("work memory = %v, want declared 512", got)
	}
	if got := d["s"].CPU; math.Abs(got-10) > 1e-9 {
		t.Errorf("spout CPU = %v, want 10", got)
	}
}

// memSample is sample() plus the runtime memory model's fields.
func memSample(topo, comp string, id int, node cluster.NodeID, residentMB float64) simulator.TaskSample {
	s := sample(topo, comp, id, node, 0.2, 1)
	s.ResidentMemMB = residentMB
	s.NodeMemCapacityMB = 2048
	return s
}

// TestMeasuredDemandsProjectMemoryGrowth: once samples carry resident
// memory (the runtime memory model is on), the memory axis must become
// the measured max resident plus the lookahead projection of its growth
// slope — and on memory-blind samples, declarations stay authoritative.
func TestMeasuredDemandsProjectMemoryGrowth(t *testing.T) {
	b := topology.NewBuilder("t")
	b.SetSpout("s", 1).SetCPULoad(10).SetMemoryLoad(256)
	b.SetBolt("cache", 2).ShuffleGrouping("s").SetCPULoad(10).SetMemoryLoad(128)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p := NewProfiler(ProfilerConfig{Alpha: 1, MemLookaheadWindows: 4})
	// Two windows: the cache stage's max resident grows 300 -> 400.
	p.OnWindow([]simulator.TaskSample{
		memSample("t", "s", 0, "n0", 64),
		memSample("t", "cache", 1, "n1", 250),
		memSample("t", "cache", 2, "n1", 300),
	})
	p.OnWindow([]simulator.TaskSample{
		memSample("t", "s", 0, "n0", 64),
		memSample("t", "cache", 1, "n1", 350),
		memSample("t", "cache", 2, "n1", 400),
	})
	d := p.MeasuredDemands(topo)
	// Alpha 1: MemResidentMB = 400, MemGrowthMB = 100, projected 4 ahead.
	if got, want := d["cache"].MemoryMB, 400.0+4*100.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("cache memory = %v, want %v (max resident + 4 windows of growth)", got, want)
	}
	// The honest flat component projects no growth.
	if got := d["s"].MemoryMB; math.Abs(got-64) > 1e-9 {
		t.Errorf("spout memory = %v, want measured 64", got)
	}

	// Memory-blind samples (the runtime memory model is off, so no sample
	// ever carries a node memory capacity): declarations must survive.
	off := NewProfiler(ProfilerConfig{Alpha: 1})
	off.OnWindow([]simulator.TaskSample{
		sample("t", "s", 0, "n0", 0.2, 1),
		sample("t", "cache", 1, "n1", 0.2, 1),
	})
	if got := off.MeasuredDemands(topo)["cache"].MemoryMB; got != 128 {
		t.Errorf("memory-blind run: cache memory = %v, want declared 128", got)
	}
}

// TestMemGrowthNormalizesPartialWindows: a partial flush (mid-window
// Reassign, trailing Finish) spans less than a full metrics window; its
// resident delta must be scaled up so MemGrowthMB stays a per-full-window
// slope and the lookahead projection does not undersize the demand.
func TestMemGrowthNormalizesPartialWindows(t *testing.T) {
	at := func(start, end time.Duration, residentMB float64) []simulator.TaskSample {
		s := memSample("t", "cache", 0, "n0", residentMB)
		s.WindowStart, s.WindowEnd = start, end
		return []simulator.TaskSample{s}
	}
	p := NewProfiler(ProfilerConfig{Alpha: 1, MemLookaheadWindows: 1})
	// One full 1s window, then a half-window partial flush over which the
	// resident grew 50 MB — i.e. a 100 MB/full-window slope.
	p.OnWindow(at(0, time.Second, 100))
	p.OnWindow(at(time.Second, 1500*time.Millisecond, 150))
	st := p.Stats("t")
	if len(st) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st[0].MemGrowthMB; math.Abs(got-100) > 1e-9 {
		t.Errorf("MemGrowthMB = %v, want 100 (50 MB over half a window)", got)
	}
}
