package adaptive

import (
	"fmt"
	"sync"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/resource"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
)

// Trigger names why the controller decided to rebalance.
const (
	TriggerHotspot   = "hotspot"   // a component saturated or overflowing
	TriggerImbalance = "imbalance" // everything idle: consolidation pass
	TriggerMemory    = "memory"    // a node's resident memory nears capacity
	TriggerFailover  = "failover"  // tasks lost to a node crash need restarting
)

// ControllerConfig tunes hotspot detection and the rebalance policy.
type ControllerConfig struct {
	// HighUtil marks a component hot when its EWMA utilization reaches
	// this fraction. Default 0.9.
	HighUtil float64
	// QueueHigh marks a component hot when its EWMA queue fill reaches
	// this fraction (overflow pressure shows up here before utilization
	// does for bursty stages). Default 0.7.
	QueueHigh float64
	// LowUtil marks a topology imbalanced (over-provisioned) when every
	// component's EWMA utilization is at or below it. Default 0.2.
	LowUtil float64
	// Hysteresis is the number of consecutive windows a condition must
	// hold before the controller acts — the anti-flap guard. Default 2.
	Hysteresis int
	// Cooldown is the number of windows after a rebalance during which
	// the controller stays quiet, letting estimates re-converge on the
	// new placement before judging it. Default 3.
	Cooldown int
	// MinWindows is the number of windows the profiler must have seen
	// before any decision (warm-up). Default 2.
	MinWindows int
	// MaxMoves caps migrations per rebalance (0 = no cap).
	MaxMoves int
	// Margin is the stickiness passed to the incremental reschedule.
	// Default 0.15.
	Margin float64
	// MemHigh marks a topology memory-hot when any node hosting its live
	// tasks has resident memory at or above this fraction of capacity —
	// the early-warning threshold that gets tasks off a filling node
	// before the simulator's OOM killer fires at 1.0. Requires the
	// runtime memory model (samples read zero fill without it, so the
	// trigger is inert on memory-blind runs). Default 0.85.
	MemHigh float64
	// MemHeadroom is passed to the incremental reschedule
	// (IncrementalOptions.MemHeadroom): candidates that keep memory fill
	// under this fraction outrank tight fits. Zero disables the tier —
	// the default, so declared-memory replans are unchanged.
	MemHeadroom float64
	// TrafficObjective, when set, hands the profiler's measured
	// component-pair traffic matrix to imbalance-triggered (consolidation)
	// rebalances: the incremental pass then minimizes measured network
	// cost — Σ rate(a,b)·NetworkDistance(node(a),node(b)) — instead of
	// ref-node distance, which is what lets a cold, spread-out topology
	// consolidate its chatty edges onto shared nodes. Hotspot and memory
	// triggers keep the distance objective: they are escaping overload,
	// not chasing locality. Off by default — plans are byte-identical
	// with the objective unset.
	TrafficObjective bool
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.HighUtil <= 0 {
		c.HighUtil = 0.9
	}
	if c.QueueHigh <= 0 {
		c.QueueHigh = 0.7
	}
	if c.LowUtil <= 0 {
		c.LowUtil = 0.2
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3
	}
	if c.MinWindows <= 0 {
		c.MinWindows = 2
	}
	if c.Margin <= 0 {
		c.Margin = 0.15
	}
	if c.MemHigh <= 0 {
		c.MemHigh = 0.85
	}
	return c
}

// topoState is the controller's per-topology decision state.
type topoState struct {
	priority   int // tenant priority (cluster arbiter ordering/weighting)
	hotStreak  int
	coldStreak int
	memStreak  int
	failStreak int
	cooldown   int  // remaining quiet windows
	quiet      bool // this window falls inside the cooldown
	rebalances int
	totalMoves int
	lastAction string

	// Per-window evaluation scratch, valid only inside OnWindow.
	winSeen    bool
	winHot     bool
	winAllCold bool
	winMemHot  bool
}

// Controller is the feedback half of the adaptive loop: it watches the
// profiler's estimates, applies hysteresis and cooldown, and plans
// incremental rebalances through the R-Storm scheduler. It implements
// simulator.Observer by chaining through its Profiler.
//
// The simulation feeding OnWindow is single-threaded, but controller
// state is also read from other goroutines (the StatisticServer's
// /adaptive route), so all state access is mutex-guarded.
type Controller struct {
	mu       sync.Mutex
	cfg      ControllerConfig
	profiler *Profiler
	sched    *core.ResourceAwareScheduler
	topos    map[string]*topoState
	order    []string

	// nodeMem / nodeMemCap are per-window scratch for node-level resident
	// memory aggregation (the memory-hotspot trigger), reused across
	// flushes. Empty on memory-blind runs: samples carry zero capacity.
	nodeMem    map[cluster.NodeID]float64
	nodeMemCap map[cluster.NodeID]float64
}

// NewController wires a controller over a profiler and scheduler. A nil
// profiler or scheduler gets a default instance.
func NewController(p *Profiler, sched *core.ResourceAwareScheduler, cfg ControllerConfig) *Controller {
	if p == nil {
		p = NewProfiler(ProfilerConfig{})
	}
	if sched == nil {
		sched = core.NewResourceAwareScheduler()
	}
	return &Controller{
		cfg:        cfg.withDefaults(),
		profiler:   p,
		sched:      sched,
		topos:      make(map[string]*topoState),
		nodeMem:    make(map[cluster.NodeID]float64),
		nodeMemCap: make(map[cluster.NodeID]float64),
	}
}

// Profiler exposes the underlying demand profiler.
func (c *Controller) Profiler() *Profiler { return c.profiler }

// SetPriority records a topology's tenant priority for status reporting
// and the cluster arbiter's ordering (the Loop calls this at Manage time).
func (c *Controller) SetPriority(name string, priority int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.topos[name]
	if ts == nil {
		ts = &topoState{}
		c.topos[name] = ts
		c.order = append(c.order, name)
	}
	ts.priority = priority
}

// OnWindow implements simulator.Observer: fold the window into the
// profiler, then update each topology's hot/cold streaks. It runs inside
// the simulator's event loop every metrics window, so it evaluates the
// profiler's estimates in place rather than through the copying accessors.
func (c *Controller) OnWindow(samples []simulator.TaskSample) {
	c.profiler.OnWindow(samples)
	// Partial flushes (mid-window Reassign, trailing Finish) update the
	// estimates but not the decision clocks: a slice of a window is not a
	// window of evidence, and counting it would let hysteresis fire early
	// and cooldowns expire in less real time than configured.
	if !c.profiler.LastFlushFull() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ts := range c.topos {
		ts.winSeen = false
	}
	c.profiler.eachComponent(func(name string, st *ComponentStats) {
		ts := c.topos[name]
		if ts == nil {
			ts = &topoState{}
			c.topos[name] = ts
			c.order = append(c.order, name)
		}
		if !ts.winSeen {
			ts.winSeen = true
			ts.winHot = false
			ts.winAllCold = true
			ts.winMemHot = false
		}
		// Saturation alone is not a hotspot: a fully busy executor on an
		// uncontended node is the pipeline's natural bottleneck and
		// migration cannot speed it up. Placement is at fault — and
		// fixable — only when the host is overcommitted.
		contended := st.MaxSlowdown > 1.001
		if contended && (st.MaxUtilization >= c.cfg.HighUtil || st.QueueFill >= c.cfg.QueueHigh) {
			ts.winHot = true
		}
		if st.MaxUtilization > c.cfg.LowUtil {
			ts.winAllCold = false
		}
	})
	// Memory pass (runtime memory model only): aggregate each node's
	// resident memory across every topology's live tasks, then flag every
	// topology with live tasks on a node filling past MemHigh. Unlike the
	// CPU hotspot, no contention gate applies: memory is the hard axis,
	// and a filling node is placement-fixable (and OOM-bound) regardless
	// of whether anything is slowed down yet.
	for k := range c.nodeMem {
		delete(c.nodeMem, k)
	}
	for k := range c.nodeMemCap {
		delete(c.nodeMemCap, k)
	}
	for i := range samples {
		s := &samples[i]
		if s.Dead || s.NodeMemCapacityMB <= 0 {
			continue
		}
		c.nodeMem[s.Node] += s.ResidentMemMB
		c.nodeMemCap[s.Node] = s.NodeMemCapacityMB
	}
	if len(c.nodeMem) > 0 {
		for i := range samples {
			s := &samples[i]
			if s.Dead || s.NodeMemCapacityMB <= 0 {
				continue
			}
			if c.nodeMem[s.Node] >= c.cfg.MemHigh*c.nodeMemCap[s.Node] {
				if ts := c.topos[s.Topology]; ts != nil {
					ts.winMemHot = true
				}
			}
		}
	}
	for _, name := range c.order {
		ts := c.topos[name]
		if !ts.winSeen {
			continue
		}
		ts.quiet = ts.cooldown > 0
		if ts.cooldown > 0 {
			ts.cooldown--
		}
		if ts.winHot {
			ts.hotStreak++
		} else {
			ts.hotStreak = 0
		}
		if ts.winMemHot {
			ts.memStreak++
		} else {
			ts.memStreak = 0
		}
		if ts.winAllCold && !ts.winHot && !ts.winMemHot {
			ts.coldStreak++
		} else {
			ts.coldStreak = 0
		}
		// Failover has no hysteresis to build: the profiler's crash marks
		// persist until the tasks are restarted, so one window carrying
		// them is a confirmed loss, not a blip to be debounced.
		if c.profiler.crashedCount(name) > 0 {
			ts.failStreak++
		} else {
			ts.failStreak = 0
		}
	}
}

// ShouldRebalance reports whether the named topology has earned a
// rebalance this window, and why.
func (c *Controller) ShouldRebalance(name string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.topos[name]
	if ts == nil {
		return "", false
	}
	// Failover outranks everything and bypasses the quiet/warm-up gates:
	// crashed tasks process nothing until restarted, so every window spent
	// debouncing or cooling down is pure lost throughput — and the trigger
	// disarms itself once the restarts land (live samples clear the crash
	// marks), so it cannot flap the way load triggers can.
	if ts.failStreak >= 1 {
		return TriggerFailover, true
	}
	if ts.quiet || c.profiler.Windows() < c.cfg.MinWindows {
		return "", false
	}
	// Memory outranks the CPU hotspot: the hard axis ends in OOM kills,
	// not slowdown, so a filling node is always the most urgent repair.
	if ts.memStreak >= c.cfg.Hysteresis {
		return TriggerMemory, true
	}
	if ts.hotStreak >= c.cfg.Hysteresis {
		return TriggerHotspot, true
	}
	if ts.coldStreak >= c.cfg.Hysteresis {
		return TriggerImbalance, true
	}
	return "", false
}

// Plan computes the incremental rebalance for a topology from the
// profiler's measured demands. available is the per-node availability
// *excluding* this topology's own usage (dead nodes zeroed, co-resident
// topologies' load subtracted — see Loop.availabilityFor); nil means the
// topology has the whole cluster to itself. trigger is the
// ShouldRebalance verdict being acted on: an imbalance trigger under
// TrafficObjective plans against the measured traffic matrix. Plan does
// not mutate controller state; call NotifyRebalanced once the plan has
// been applied (or discarded) so the cooldown starts.
func (c *Controller) Plan(
	topo *topology.Topology,
	clu *cluster.Cluster,
	current *core.Assignment,
	available map[cluster.NodeID]resource.Vector,
	trigger string,
) (*core.Assignment, []core.Move, error) {
	return c.PlanWithCap(topo, clu, current, available, trigger, 0)
}

// PlanWithCap is Plan under an additional migration cap — the cluster
// arbiter's per-topology share of the global move budget. A positive cap
// bounds this plan's moves on top of (never loosening) the configured
// MaxMoves; zero applies MaxMoves alone, making it exactly Plan.
func (c *Controller) PlanWithCap(
	topo *topology.Topology,
	clu *cluster.Cluster,
	current *core.Assignment,
	available map[cluster.NodeID]resource.Vector,
	trigger string,
	moveCap int,
) (*core.Assignment, []core.Move, error) {
	if current == nil {
		return nil, nil, fmt.Errorf("topology %q has no current assignment", topo.Name())
	}
	maxMoves := c.cfg.MaxMoves
	if moveCap > 0 && (maxMoves <= 0 || moveCap < maxMoves) {
		maxMoves = moveCap
	}
	opts := core.IncrementalOptions{
		Demands:     c.profiler.MeasuredDemands(topo),
		Available:   available,
		MaxMoves:    maxMoves,
		Margin:      c.cfg.Margin,
		MemHeadroom: c.cfg.MemHeadroom,
		// Tasks killed by node failures or the OOM killer are dead:
		// pinned in place (nothing is left to migrate) and no longer
		// consuming their node's resources.
		Dead: c.profiler.DeadTasks(topo.Name()),
	}
	if c.cfg.TrafficObjective && trigger == TriggerImbalance {
		opts.Traffic = c.profiler.TrafficMatrix(topo.Name())
	}
	// A failover plan splits the dead set: crash victims become forced
	// restarts (re-placed on live capacity, exempt from the move budget),
	// while OOM-killed tasks — whose death was a resource verdict, not an
	// infrastructure loss — stay pinned dead as on every other trigger.
	if trigger == TriggerFailover {
		if crashed := c.profiler.CrashedTasks(topo.Name()); len(crashed) > 0 {
			opts.Restart = crashed
			still := make(map[int]bool)
			for id := range opts.Dead {
				if !crashed[id] {
					still[id] = true
				}
			}
			opts.Dead = still
		}
	}
	return c.sched.IncrementalReschedule(topo, clu, current, opts)
}

// NotifyRebalanced records an applied (or deliberately empty) rebalance
// and starts the cooldown, resetting the streaks that triggered it.
func (c *Controller) NotifyRebalanced(name string, moves int, trigger string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.topos[name]
	if ts == nil {
		ts = &topoState{}
		c.topos[name] = ts
		c.order = append(c.order, name)
	}
	ts.cooldown = c.cfg.Cooldown
	ts.quiet = true
	ts.hotStreak = 0
	ts.coldStreak = 0
	ts.memStreak = 0
	ts.failStreak = 0
	if moves > 0 {
		ts.rebalances++
		ts.totalMoves += moves
	}
	ts.lastAction = fmt.Sprintf("%s: %d moves", trigger, moves)
}

// TopologyStatus is one topology's controller state snapshot.
type TopologyStatus struct {
	Name       string           `json:"name"`
	Priority   int              `json:"priority"`
	HotStreak  int              `json:"hotStreak"`
	ColdStreak int              `json:"coldStreak"`
	MemStreak  int              `json:"memStreak"`
	FailStreak int              `json:"failStreak"`
	Cooldown   int              `json:"cooldown"`
	Rebalances int              `json:"rebalances"`
	TotalMoves int              `json:"totalMoves"`
	LastAction string           `json:"lastAction,omitempty"`
	Components []ComponentStats `json:"components"`
	// Traffic is the measured component-pair edge-rate matrix;
	// InterNodeFraction is the cumulative share of the topology's tuple
	// deliveries that crossed between nodes.
	Traffic           []EdgeStats `json:"traffic,omitempty"`
	InterNodeFraction float64     `json:"interNodeFraction"`
}

// ControllerStatus is the JSON-friendly snapshot served by the
// StatisticServer's /adaptive route.
type ControllerStatus struct {
	Windows    int              `json:"windows"`
	HighUtil   float64          `json:"highUtil"`
	LowUtil    float64          `json:"lowUtil"`
	QueueHigh  float64          `json:"queueHigh"`
	MemHigh    float64          `json:"memHigh"`
	Hysteresis int              `json:"hysteresis"`
	Cooldown   int              `json:"cooldown"`
	Topologies []TopologyStatus `json:"topologies"`
}

// Status snapshots the controller for operator tooling. Safe to call from
// other goroutines (the StatisticServer's /adaptive route).
func (c *Controller) Status() ControllerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := ControllerStatus{
		Windows:    c.profiler.Windows(),
		HighUtil:   c.cfg.HighUtil,
		LowUtil:    c.cfg.LowUtil,
		QueueHigh:  c.cfg.QueueHigh,
		MemHigh:    c.cfg.MemHigh,
		Hysteresis: c.cfg.Hysteresis,
		Cooldown:   c.cfg.Cooldown,
	}
	for _, name := range c.order {
		ts := c.topos[name]
		traffic := c.profiler.EdgeStats(name)
		out.Topologies = append(out.Topologies, TopologyStatus{
			Name:              name,
			Priority:          ts.priority,
			HotStreak:         ts.hotStreak,
			ColdStreak:        ts.coldStreak,
			MemStreak:         ts.memStreak,
			FailStreak:        ts.failStreak,
			Cooldown:          ts.cooldown,
			Rebalances:        ts.rebalances,
			TotalMoves:        ts.totalMoves,
			LastAction:        ts.lastAction,
			Components:        c.profiler.Stats(name),
			Traffic:           traffic,
			InterNodeFraction: edgesInterNodeFraction(traffic),
		})
	}
	return out
}

var _ simulator.Observer = (*Controller)(nil)
