package adaptive

import (
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/faults"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
)

// crashSample builds a dead sample whose host node is itself dead — a
// crash victim, as opposed to an OOM kill on healthy hardware.
func crashSample(topo, comp string, id int, node cluster.NodeID) simulator.TaskSample {
	s := sample(topo, comp, id, node, 0, 1)
	s.Dead = true
	s.NodeDead = true
	return s
}

// honestTopo is a chain whose declared demands match reality — failover
// tests want placement churn to come from faults, not mis-declaration.
func honestTopo(t *testing.T) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder("chain")
	b.SetSpout("s", 2).SetCPULoad(20).SetMemoryLoad(128).
		SetProfile(topology.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 128})
	b.SetBolt("work", 4).ShuffleGrouping("s").SetCPULoad(25).SetMemoryLoad(128).
		SetProfile(topology.ExecProfile{CPUPerTuple: 300 * time.Microsecond, TupleBytes: 128})
	b.SetBolt("z", 2).ShuffleGrouping("work").SetCPULoad(10).SetMemoryLoad(128).
		SetProfile(topology.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 128})
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

// spreadAssignment pins the chain across three distinct nodes so a single
// node crash takes out exactly one stage.
func spreadAssignment(topo *topology.Topology, ids []cluster.NodeID) *core.Assignment {
	a := core.NewAssignment(topo.Name(), "manual")
	nodeFor := map[string]cluster.NodeID{"s": ids[0], "work": ids[1], "z": ids[2]}
	for _, task := range topo.Tasks() {
		a.Place(task.ID, core.Placement{Node: nodeFor[task.Component], Slot: 0})
	}
	return a
}

// TestProfilerCrashMarksPersistThroughNodeRecovery: a crash-killed task
// stays in the restart set while its node bounces back (the executor is
// still gone), and leaves it only when the task itself is sampled live.
func TestProfilerCrashMarksPersistThroughNodeRecovery(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Alpha: 1})
	p.OnWindow([]simulator.TaskSample{crashSample("t", "work", 3, "n0")})
	if !p.CrashedTasks("t")[3] {
		t.Fatal("crash-killed task not recorded")
	}
	// Node recovered, executor still dead: Dead without NodeDead.
	stillDead := sample("t", "work", 3, "n0", 0, 1)
	stillDead.Dead = true
	p.OnWindow([]simulator.TaskSample{stillDead})
	if !p.CrashedTasks("t")[3] {
		t.Error("crash mark dropped when the node recovered but the task did not")
	}
	// Restarted: a live sample clears both the dead and crashed marks.
	p.OnWindow([]simulator.TaskSample{sample("t", "work", 3, "n2", 0.4, 1)})
	if p.CrashedTasks("t") != nil {
		t.Error("crash mark survived a live sample")
	}
	if p.DeadTasks("t")[3] {
		t.Error("dead mark survived a live sample")
	}
}

// TestOOMDeathIsNotACrash: a task killed on a healthy node (the OOM
// killer's verdict) must not enter the failover restart set.
func TestOOMDeathIsNotACrash(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Alpha: 1})
	oom := sample("t", "work", 2, "n0", 0, 1)
	oom.Dead = true // NodeDead stays false
	p.OnWindow([]simulator.TaskSample{oom})
	if p.CrashedTasks("t") != nil {
		t.Error("OOM-killed task entered the crash set")
	}
	if !p.DeadTasks("t")[2] {
		t.Error("OOM-killed task not recorded dead")
	}
}

// TestFailoverTriggerBypassesGates: failover fires on the first window of
// evidence (no hysteresis, before MinWindows warm-up) and straight through
// an active cooldown — and outranks a simultaneous hotspot.
func TestFailoverTriggerBypassesGates(t *testing.T) {
	c := newTestController() // Hysteresis 2, Cooldown 3, MinWindows 2
	win := []simulator.TaskSample{
		crashSample("t", "work", 0, "n0"),
		sample("t", "s", 1, "n1", 0.5, 1),
	}
	c.OnWindow(win)
	trigger, ok := c.ShouldRebalance("t")
	if !ok || trigger != TriggerFailover {
		t.Fatalf("first crash window: ShouldRebalance = %q, %v; want failover", trigger, ok)
	}
	// A failover round was applied but the restart failed (no capacity):
	// the trigger must re-arm through the cooldown it just started.
	c.NotifyRebalanced("t", 0, TriggerFailover)
	c.OnWindow(win)
	trigger, ok = c.ShouldRebalance("t")
	if !ok || trigger != TriggerFailover {
		t.Fatalf("during cooldown: ShouldRebalance = %q, %v; want failover", trigger, ok)
	}
	// Restart landed: live samples clear the marks, and the cooldown is
	// back in charge.
	c.OnWindow([]simulator.TaskSample{
		sample("t", "work", 0, "n2", 0.5, 1),
		sample("t", "s", 1, "n1", 0.5, 1),
	})
	if trigger, ok := c.ShouldRebalance("t"); ok {
		t.Errorf("after restart landed: ShouldRebalance = %q, true; want quiet", trigger)
	}

	// Outranks a hotspot built over the same windows.
	c2 := newTestController()
	hot := append(hotWindow(), crashSample("t", "work", 9, "n3"))
	c2.OnWindow(hot)
	c2.OnWindow(hot)
	if trigger, _ := c2.ShouldRebalance("t"); trigger != TriggerFailover {
		t.Errorf("crash + hotspot: trigger = %q, want failover first", trigger)
	}
}

// TestFlapGuardHoldsRecoveredNode exercises the embargo state machine:
// dead→live starts a hold measured in Observe calls, re-dying clears it,
// and hold 0 (or a nil guard) disables everything.
func TestFlapGuardHoldsRecoveredNode(t *testing.T) {
	g := NewFlapGuard(2)
	g.Observe([]cluster.NodeID{"n1"})
	if g.Holding("n1") {
		t.Error("dead node embargoed (dead outranks embargo)")
	}
	g.Observe(nil) // recovered: hold 2 starts
	if !g.Holding("n1") {
		t.Fatal("recovered node not embargoed")
	}
	if e := g.Embargoed(); len(e) != 1 || e[0] != "n1" {
		t.Fatalf("Embargoed = %v", e)
	}
	g.Observe(nil) // second and last hold epoch
	if !g.Holding("n1") {
		t.Error("embargo released one epoch early")
	}
	g.Observe(nil)
	if g.Holding("n1") || g.Embargoed() != nil {
		t.Error("embargo not released after the hold expired")
	}

	// Re-dying mid-embargo clears the hold; the next recovery re-earns a
	// full one.
	g.Observe([]cluster.NodeID{"n1"})
	g.Observe(nil)
	if !g.Holding("n1") {
		t.Fatal("second recovery not embargoed")
	}
	g.Observe([]cluster.NodeID{"n1"})
	if g.Holding("n1") {
		t.Error("node re-died but is still counted embargoed")
	}
	g.Observe(nil)
	g.Observe(nil)
	if !g.Holding("n1") {
		t.Error("flapping node did not re-earn a full hold")
	}

	// Disabled and nil guards are inert.
	g0 := NewFlapGuard(0)
	g0.Observe([]cluster.NodeID{"n1"})
	g0.Observe(nil)
	if g0.Holding("n1") || g0.Embargoed() != nil {
		t.Error("hold 0 guard embargoed a node")
	}
	var gn *FlapGuard
	gn.Observe(nil)
	if gn.Holding("n1") || gn.Embargoed() != nil {
		t.Error("nil guard not inert")
	}
}

// TestFailoverRestartsCrashedTasks is the adaptive layer's end-to-end
// failover check: a node crash mid-run fires the failover trigger at the
// next epoch, the crashed stage is restarted on surviving capacity, and
// throughput recovers to ≥90% of its pre-crash baseline (a measured,
// positive RecoveryTime).
func TestFailoverRestartsCrashedTasks(t *testing.T) {
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatal(err)
	}
	topo := honestTopo(t)
	ids := c.NodeIDs()
	a := spreadAssignment(topo, ids)
	victim := ids[1]
	sim, err := simulator.New(c, simulator.Config{
		Duration:      10 * time.Second,
		MetricsWindow: 500 * time.Millisecond,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatal(err)
	}
	if err := sim.FailNodeAt(victim, 2200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	loop := NewLoop(sim, c, core.NewResourceAwareScheduler(), LoopConfig{})
	if err := loop.Manage(topo, a); err != nil {
		t.Fatal(err)
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var failover *RebalanceEvent
	for i := range res.Events {
		if res.Events[i].Trigger == TriggerFailover {
			failover = &res.Events[i]
			break
		}
	}
	if failover == nil {
		t.Fatalf("no failover event; events = %+v", res.Events)
	}
	// Crash at 2.2s lands in the [2s, 2.5s) window: the 2.5s epoch is the
	// first decision point that can see it, and must act immediately.
	if failover.At != 2500*time.Millisecond {
		t.Errorf("failover fired at %v, want 2.5s (first epoch after the crash)", failover.At)
	}
	if failover.Moves < 4 {
		t.Errorf("failover restarted %d tasks, want all 4 of the crashed stage", failover.Moves)
	}
	final := res.Assignments["chain"]
	for id, p := range final.Placements {
		if p.Node == victim {
			t.Errorf("task %d left on the dead node %s", id, victim)
		}
	}
	// Every crash mark must have been cleared by post-restart live samples.
	if crashed := loop.Controller().Profiler().CrashedTasks("chain"); crashed != nil {
		t.Errorf("crashed tasks still pending at end of run: %v", crashed)
	}
	tr := res.Result.Topology("chain")
	if tr.RecoveryTime <= 0 {
		t.Errorf("RecoveryTime = %v, want positive (throughput back to ≥90%% of baseline)",
			tr.RecoveryTime)
	}
}

// TestFlapDampingEmbargoesRecoveredNode drives the loop's epochs by hand
// around a crash→recover schedule: after the node returns, availability
// must keep reading zero for it until FlapDamping epochs have passed, so
// nothing is re-placed onto hardware that may still be flapping.
func TestFlapDampingEmbargoesRecoveredNode(t *testing.T) {
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatal(err)
	}
	topo := honestTopo(t)
	ids := c.NodeIDs()
	a := spreadAssignment(topo, ids)
	victim := ids[1]
	sim, err := simulator.New(c, simulator.Config{
		Duration:      10 * time.Second,
		MetricsWindow: 500 * time.Millisecond,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatal(err)
	}
	sched := faults.Schedule{
		{Kind: faults.Crash, Node: victim, At: 1 * time.Second},
		{Kind: faults.Recover, Node: victim, At: 2200 * time.Millisecond},
	}
	if err := sched.Apply(sim); err != nil {
		t.Fatal(err)
	}
	loop := NewLoop(sim, c, core.NewResourceAwareScheduler(), LoopConfig{FlapDamping: 3})
	if err := loop.Manage(topo, a); err != nil {
		t.Fatal(err)
	}
	if err := sim.SetObserver(loop.Controller()); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	step := func(at time.Duration) {
		t.Helper()
		if err := sim.RunTo(at); err != nil {
			t.Fatal(err)
		}
		if _, err := loop.arbitrate(at); err != nil {
			t.Fatal(err)
		}
	}
	// Node dead at the 1.5s and 2s epochs: dead, not embargoed.
	step(1500 * time.Millisecond)
	step(2 * time.Second)
	if loop.guard.Holding(victim) {
		t.Error("dead node embargoed")
	}
	// Recovered at 2.2s: the 2.5s epoch opens a 3-epoch embargo.
	for _, at := range []time.Duration{2500, 3000, 3500} {
		step(at * time.Millisecond)
		if !loop.guard.Holding(victim) {
			t.Fatalf("epoch %v: recovered node not embargoed", at*time.Millisecond)
		}
		if got := loop.availabilityFor("chain")[victim]; got.CPU != 0 || got.MemoryMB != 0 {
			t.Fatalf("epoch %v: embargoed node still offers capacity %v", at*time.Millisecond, got)
		}
	}
	// Hold expired: the node is capacity again.
	step(4 * time.Second)
	if loop.guard.Holding(victim) {
		t.Error("embargo outlived its hold")
	}
	if got := loop.availabilityFor("chain")[victim]; got.CPU == 0 {
		t.Error("recovered node still reads zero capacity after the hold")
	}
}
