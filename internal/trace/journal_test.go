package trace

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJournalOrderAndSeq(t *testing.T) {
	j := NewJournal(16)
	j.Record(1*time.Second, CodeTriggerFired, "topo", "", -1, "hotspot")
	j.Record(1*time.Second, CodePlanComputed, "topo", "", -1, "moves=2")
	j.Record(2*time.Second, CodeOOMKill, "topo", "node-1", 5, "")
	evs := j.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
	}
	if evs[2].Code != CodeOOMKill || evs[2].Task != 5 || evs[2].Node != "node-1" {
		t.Fatalf("event fields lost: %+v", evs[2])
	}
	if j.Len() != 3 || j.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d", j.Len(), j.Dropped())
	}
}

func TestJournalRingOverwrite(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record(time.Duration(i), CodeFaultInjected, "", "n", -1, "")
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	// Oldest retained must be Seq 7 (events 1..6 overwritten).
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d: Seq %d, want %d", i, e.Seq, want)
		}
	}
	if j.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", j.Dropped())
	}
}

func TestJournalDefaultCap(t *testing.T) {
	j := NewJournal(0)
	if j.max != DefaultJournalCap {
		t.Fatalf("max = %d", j.max)
	}
}

func TestJournalWriteJSONL(t *testing.T) {
	j := NewJournal(8)
	j.Record(500*time.Millisecond, CodeEviction, "lowpri", "", -1, "victim of highpri")
	j.Record(0, CodeFailoverRound, "", "node-3", -1, "moved=4")
	var b strings.Builder
	if err := j.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0].Code != CodeEviction || lines[0].At != 500*time.Millisecond {
		t.Fatalf("round-trip lost fields: %+v", lines[0])
	}
	if lines[1].Seq != 2 {
		t.Fatalf("Seq = %d", lines[1].Seq)
	}
}

// TestJournalConcurrentAppend drives appends from many goroutines while
// readers snapshot — run under -race by the CI race job alongside the
// /metrics scrape test in nimbus.
func TestJournalConcurrentAppend(t *testing.T) {
	j := NewJournal(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				j.Record(0, CodeTriggerFired, "t", "", -1, "")
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = j.Events()
				_ = j.Len()
			}
		}()
	}
	wg.Wait()
	evs := j.Events()
	if len(evs) != 256 {
		t.Fatalf("retained %d, want 256", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("Seq not strictly increasing at %d: %d <= %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}
	if got := j.Dropped() + uint64(j.Len()); got != 4000 {
		t.Fatalf("dropped+retained = %d, want 4000", got)
	}
}
