package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

func buildExposition() string {
	var w PromWriter
	w.Header("rstorm_tuples_total", "Tuples processed per task.", "counter")
	w.Sample("rstorm_tuples_total", []Label{{"topology", "chain"}, {"task", "0"}}, 12345)
	w.Sample("rstorm_tuples_total", []Label{{"topology", "chain"}, {"task", "1"}}, 678)
	w.Header("rstorm_queue_depth", "Instantaneous queue depth.", "gauge")
	w.Sample("rstorm_queue_depth", nil, 42)
	w.Header("rstorm_latency_seconds", "Complete-tree tuple latency.", "histogram")
	labels := []Label{{"topology", "chain"}}
	cum := int64(0)
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	h.EachBucket(func(upper time.Duration, count int64) {
		cum += count
		w.Sample("rstorm_latency_seconds_bucket",
			append(labels[:1:1], Label{"le", formatValue(upper.Seconds())}), float64(cum))
	})
	w.Sample("rstorm_latency_seconds_bucket", append(labels[:1:1], Label{"le", "+Inf"}), float64(cum))
	w.Sample("rstorm_latency_seconds_sum", labels, 500.5)
	w.Sample("rstorm_latency_seconds_count", labels, float64(cum))
	return w.String()
}

// TestExpositionRoundTrip is the promtool-free lint: everything the
// writer emits must parse under the strict parser with families,
// samples, and histogram invariants intact.
func TestExpositionRoundTrip(t *testing.T) {
	text := buildExposition()
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not lint: %v\n%s", err, text)
	}
	if len(fams) != 3 {
		t.Fatalf("families = %d", len(fams))
	}
	if fams[0].Name != "rstorm_tuples_total" || fams[0].Type != "counter" || len(fams[0].Samples) != 2 {
		t.Fatalf("counter family: %+v", fams[0])
	}
	if fams[0].Samples[0].Value != 12345 {
		t.Fatalf("value: %v", fams[0].Samples[0].Value)
	}
	if got := labelValue(fams[0].Samples[1].Labels, "task"); got != "1" {
		t.Fatalf("label: %q", got)
	}
	if fams[1].Type != "gauge" || fams[1].Samples[0].Value != 42 {
		t.Fatalf("gauge family: %+v", fams[1])
	}
	if fams[2].Type != "histogram" {
		t.Fatalf("histogram family: %+v", fams[2])
	}
}

func TestEscapingRoundTrip(t *testing.T) {
	var w PromWriter
	w.Header("m", `help with \ backslash and
newline`, "gauge")
	w.Sample("m", []Label{{"l", "quote\" back\\ nl\n end"}}, 1)
	fams, err := ParseExposition(strings.NewReader(w.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := labelValue(fams[0].Samples[0].Labels, "l"); got != "quote\" back\\ nl\n end" {
		t.Fatalf("label escape round-trip: %q", got)
	}
}

func TestFormatValueSpecials(t *testing.T) {
	if formatValue(math.NaN()) != "NaN" ||
		formatValue(math.Inf(1)) != "+Inf" ||
		formatValue(math.Inf(-1)) != "-Inf" {
		t.Fatal("special float spellings")
	}
	if formatValue(0.5) != "0.5" || formatValue(3) != "3" {
		t.Fatal("plain float spellings")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad TYPE value":      "# HELP m h\n# TYPE m widget\nm 1\n",
		"sample before TYPE":  "m 1\n",
		"foreign sample":      "# HELP m h\n# TYPE m gauge\nother 1\n",
		"bad metric name":     "# HELP 9m h\n# TYPE 9m gauge\n9m 1\n",
		"bad value":           "# HELP m h\n# TYPE m gauge\nm pancake\n",
		"unterminated labels": "# HELP m h\n# TYPE m gauge\nm{l=\"x\" 1\n",
		"bad escape":          "# HELP m h\n# TYPE m gauge\nm{l=\"\\x\"} 1\n",
		"help/type mismatch":  "# HELP m h\n# TYPE other gauge\nother 1\n",
		"label missing quote": "# HELP m h\n# TYPE m gauge\nm{l=x} 1\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, text)
		}
	}
}

func TestParseRejectsBadHistogram(t *testing.T) {
	cases := map[string]string{
		"missing +Inf": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_count 5\nh_sum 2\n",
		"non-cumulative": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n",
		"le not ascending": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\n",
		"count mismatch": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_count 7\n",
		"bucket missing le": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{x=\"1\"} 5\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestParseAcceptsCommentsAndBlanks(t *testing.T) {
	text := "# a free comment\n\n# HELP m h\n# TYPE m gauge\n\nm{a=\"1\",b=\"2\"} 3.5\n# trailing\n"
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || len(fams[0].Samples) != 1 {
		t.Fatalf("parsed: %+v", fams)
	}
	s := fams[0].Samples[0]
	if len(s.Labels) != 2 || s.Labels[1].Value != "2" || s.Value != 3.5 {
		t.Fatalf("sample: %+v", s)
	}
}

func TestParseInfValues(t *testing.T) {
	text := "# HELP m h\n# TYPE m gauge\nm{s=\"p\"} +Inf\nm{s=\"n\"} -Inf\nm{s=\"nan\"} NaN\n"
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	ss := fams[0].Samples
	if !math.IsInf(ss[0].Value, 1) || !math.IsInf(ss[1].Value, -1) || !math.IsNaN(ss[2].Value) {
		t.Fatalf("special values: %+v", ss)
	}
}

func TestWriteTo(t *testing.T) {
	var w PromWriter
	w.Header("m", "h", "gauge")
	w.Sample("m", nil, 1)
	var sb strings.Builder
	n, err := w.WriteTo(&sb)
	if err != nil || n != int64(len(w.String())) || sb.String() != w.String() {
		t.Fatalf("WriteTo: n=%d err=%v", n, err)
	}
}
