package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SpanKind classifies one hop of a traced tuple tree.
type SpanKind uint8

const (
	// SpanRoot is the spout emission that started the trace.
	SpanRoot SpanKind = iota
	// SpanHop is a downstream task processing one tuple of the tree.
	SpanHop
	// SpanDrop is a tuple of the tree discarded before processing
	// (dead destination node).
	SpanDrop
)

func (k SpanKind) String() string {
	switch k {
	case SpanRoot:
		return "emit"
	case SpanHop:
		return "hop"
	case SpanDrop:
		return "drop"
	}
	return "?"
}

// Span is one recorded hop. From is the upstream task that sent the
// tuple (-1 for the root). Wait is queue wait at the receiving task,
// Service its processing time, Net the wire transfer time — the three
// components of per-hop latency the windowed averages can't separate.
type Span struct {
	Trace     uint64        `json:"trace"`
	Kind      SpanKind      `json:"kind"`
	Topology  string        `json:"topology"`
	Component string        `json:"component"`
	Task      int           `json:"task"`
	From      int           `json:"from"`
	At        time.Duration `json:"at"`
	Wait      time.Duration `json:"wait"`
	Service   time.Duration `json:"service"`
	Net       time.Duration `json:"net"`
}

// Tracer samples every Nth root emission deterministically (a plain
// counter, no RNG — the same seed and sample rate always pick the same
// tuples, which is what lets the golden-diff harness cover tracing) and
// records spans into a bounded preallocated ring. Not safe for
// concurrent use: owned by the single-threaded simulator loop.
type Tracer struct {
	every    uint64
	emits    uint64
	nextID   uint64
	spans    []Span
	head     int
	full     bool
	recorded uint64
}

// DefaultMaxSpans bounds a tracer nobody sized explicitly.
const DefaultMaxSpans = 8192

// NewTracer samples one of every `every` root emissions (minimum 1) into
// a ring of at most maxSpans spans (DefaultMaxSpans if <= 0). The ring
// is allocated up front so recording never allocates.
func NewTracer(every int, maxSpans int) *Tracer {
	if every < 1 {
		every = 1
	}
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Tracer{every: uint64(every), spans: make([]Span, 0, maxSpans)}
}

// SampleRoot decides whether the next root emission is traced. Returns
// the assigned trace ID (> 0) when sampled, 0 otherwise. Call exactly
// once per root emission to keep sampling deterministic.
func (t *Tracer) SampleRoot() uint64 {
	t.emits++
	if t.emits%t.every != 0 {
		return 0
	}
	t.nextID++
	return t.nextID
}

// Record appends a span, overwriting the oldest when the ring is full.
func (t *Tracer) Record(s Span) {
	t.recorded++
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, s)
		return
	}
	t.spans[t.head] = s
	t.head = (t.head + 1) % cap(t.spans)
	t.full = true
}

// Recorded returns the total spans recorded, including any overwritten.
func (t *Tracer) Recorded() uint64 { return t.recorded }

// Spans returns the retained spans in record order.
func (t *Tracer) Spans() []Span {
	out := make([]Span, 0, len(t.spans))
	if t.full {
		out = append(out, t.spans[t.head:]...)
		out = append(out, t.spans[:t.head]...)
		return out
	}
	return append(out, t.spans...)
}

// SpanTree is one reconstructed trace: the root emission plus its
// downstream hops in causal order.
type SpanTree struct {
	Trace uint64
	Spans []Span // root first, then hops ordered by (At, Task)
}

// Trees groups the retained spans into per-trace trees, ordered by trace
// ID. Traces whose root span was overwritten in the ring are dropped —
// a partial tree with no anchor renders misleadingly.
func (t *Tracer) Trees() []SpanTree {
	byTrace := make(map[uint64][]Span)
	for _, s := range t.Spans() {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	ids := make([]uint64, 0, len(byTrace))
	for id, spans := range byTrace {
		hasRoot := false
		for _, s := range spans {
			if s.Kind == SpanRoot {
				hasRoot = true
				break
			}
		}
		if hasRoot {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	trees := make([]SpanTree, 0, len(ids))
	for _, id := range ids {
		spans := byTrace[id]
		sort.SliceStable(spans, func(i, j int) bool {
			si, sj := spans[i], spans[j]
			if (si.Kind == SpanRoot) != (sj.Kind == SpanRoot) {
				return si.Kind == SpanRoot
			}
			if si.At != sj.At {
				return si.At < sj.At
			}
			return si.Task < sj.Task
		})
		trees = append(trees, SpanTree{Trace: id, Spans: spans})
	}
	return trees
}

// RenderTrees renders the trees as an indented text diagram — hops
// indent under the span that sent them their tuple, so a fan-out tree
// reads as a tree. The output is deterministic for a deterministic
// span stream (the -trace CLI section and determinism tests rely on
// byte-identity).
func RenderTrees(trees []SpanTree) string {
	var b strings.Builder
	for _, tree := range trees {
		renderTree(&b, tree)
	}
	return b.String()
}

func renderTree(b *strings.Builder, tree SpanTree) {
	depth := make(map[int]int) // task -> indent depth of its span
	for i, s := range tree.Spans {
		d := 0
		if s.Kind != SpanRoot {
			if pd, ok := depth[s.From]; ok {
				d = pd + 1
			} else {
				d = 1
			}
		}
		depth[s.Task] = d
		if i == 0 {
			fmt.Fprintf(b, "trace %d %s @%v\n", tree.Trace, s.Topology, s.At)
		}
		b.WriteString(strings.Repeat("  ", d+1))
		switch s.Kind {
		case SpanRoot:
			fmt.Fprintf(b, "%s/%d emit @%v\n", s.Component, s.Task, s.At)
		case SpanHop:
			fmt.Fprintf(b, "%s/%d <- %d wait=%v service=%v net=%v @%v\n",
				s.Component, s.Task, s.From, s.Wait, s.Service, s.Net, s.At)
		case SpanDrop:
			fmt.Fprintf(b, "%s/%d <- %d dropped @%v\n", s.Component, s.Task, s.From, s.At)
		}
	}
}
