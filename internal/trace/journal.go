package trace

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Journal event codes — the unified decision-event taxonomy (DESIGN.md
// §8.3). One flat stream replaces the per-feature event lists that PRs
// 2-6 accumulated (RebalanceEvent, FailoverEvents, eviction history,
// fault log): every control-plane decision lands here with a reason code
// and enough identity (topology/node/task) to correlate across layers.
const (
	// Adaptive loop.
	CodeTriggerFired     = "trigger-fired"     // controller demanded a rebalance
	CodePlanComputed     = "plan-computed"     // incremental plan built (detail: moves)
	CodeRebalanceApplied = "rebalance-applied" // plan applied to the running simulator
	// Cluster arbitration (Nimbus).
	CodeEviction        = "eviction"         // topology evicted for a higher priority
	CodeReadmission     = "readmission"      // evicted topology re-admitted
	CodeSchedulingRound = "scheduling-round" // cluster arbitration round completed
	// Simulator runtime.
	CodeTopologySubmitted = "topology-submitted" // runtime submit epoch
	CodeTopologyKilled    = "topology-killed"    // runtime kill epoch
	CodeOOMKill           = "oom-kill"           // memory model killed a task
	CodeFaultInjected     = "fault-injected"     // crash/recover/slow applied mid-run
	// Failure detection (Nimbus heartbeat detector).
	CodeNodeSuspect   = "node-suspect"   // missed-heartbeat threshold crossed
	CodeNodeDead      = "node-dead"      // declared dead, failover eligible
	CodeFailoverRound = "failover-round" // forced re-placement of dead tasks
	CodeNodeRejoin    = "node-rejoin"    // node heartbeating again after hold-down
)

// Event is one journal entry. Seq is a journal-assigned monotonic
// sequence number providing total causal order even for control-plane
// events recorded outside simulated time (At = 0 for those). Task is -1
// when the event is not about a specific task.
type Event struct {
	Seq      uint64        `json:"seq"`
	At       time.Duration `json:"at"`
	Code     string        `json:"code"`
	Topology string        `json:"topology,omitempty"`
	Node     string        `json:"node,omitempty"`
	Task     int           `json:"task"`
	Detail   string        `json:"detail,omitempty"`
}

// Journal is a bounded, concurrency-safe decision-event ring. Appends
// from the simulator event loop, the adaptive loop, and Nimbus handlers
// interleave under one mutex, so Seq defines a single causal order
// across all three. When full, the oldest events are overwritten.
type Journal struct {
	mu      sync.Mutex
	max     int
	seq     uint64
	head    int
	events  []Event
	dropped uint64
}

// DefaultJournalCap bounds a journal nobody sized explicitly.
const DefaultJournalCap = 4096

// NewJournal returns a journal holding at most max events (DefaultJournalCap
// if max <= 0).
func NewJournal(max int) *Journal {
	if max <= 0 {
		max = DefaultJournalCap
	}
	return &Journal{max: max}
}

// Record appends an event, assigning its sequence number. The zero-field
// helper signature keeps call sites one line; Task -1 means "no task".
func (j *Journal) Record(at time.Duration, code, topo, node string, task int, detail string) {
	j.Append(Event{At: at, Code: code, Topology: topo, Node: node, Task: task, Detail: detail})
}

// Append appends e, assigning Seq. Overwrites the oldest event when full.
func (j *Journal) Append(e Event) {
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	if len(j.events) < j.max {
		j.events = append(j.events, e)
	} else {
		j.events[j.head] = e
		j.head = (j.head + 1) % j.max
		j.dropped++
	}
	j.mu.Unlock()
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// Dropped returns how many events were overwritten after the ring filled.
func (j *Journal) Dropped() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Events returns the retained events in causal (Seq) order.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.events))
	out = append(out, j.events[j.head:]...)
	out = append(out, j.events[:j.head]...)
	return out
}

// WriteJSONL writes the retained events as JSON Lines, one event per
// line in causal order — the /journal route body and the -journal CLI
// section.
func (j *Journal) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range j.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
