package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Hand-rolled Prometheus text exposition (format version 0.0.4) — the
// /metrics route's writer and, for CI lint, a validating parser that
// round-trips the output without needing promtool in the container.

// PromContentType is the Content-Type a 0.0.4 text exposition declares.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair.
type Label struct {
	Name  string
	Value string
}

// PromWriter accumulates a text exposition. Metrics must be written
// family by family: Header then every sample of that family.
type PromWriter struct {
	b strings.Builder
}

// Header writes the # HELP and # TYPE lines for a metric family. typ
// must be one of counter, gauge, histogram, summary, untyped.
func (w *PromWriter) Header(name, help, typ string) {
	w.b.WriteString("# HELP ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(escapeHelp(help))
	w.b.WriteByte('\n')
	w.b.WriteString("# TYPE ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(typ)
	w.b.WriteByte('\n')
}

// Sample writes one sample line: name{labels} value.
func (w *PromWriter) Sample(name string, labels []Label, value float64) {
	w.b.WriteString(name)
	if len(labels) > 0 {
		w.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.b.WriteByte(',')
			}
			w.b.WriteString(l.Name)
			w.b.WriteString(`="`)
			w.b.WriteString(escapeLabel(l.Value))
			w.b.WriteByte('"')
		}
		w.b.WriteByte('}')
	}
	w.b.WriteByte(' ')
	w.b.WriteString(formatValue(value))
	w.b.WriteByte('\n')
}

// String returns the exposition accumulated so far.
func (w *PromWriter) String() string { return w.b.String() }

// WriteTo writes the exposition to w.
func (w *PromWriter) WriteTo(dst io.Writer) (int64, error) {
	n, err := io.WriteString(dst, w.b.String())
	return int64(n), err
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a float the exposition format accepts: shortest
// round-trippable representation, with +Inf/-Inf/NaN spelled the
// Prometheus way.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels []Label
	Value  float64
}

// PromFamily is one parsed metric family: HELP/TYPE header plus samples.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// validPromType reports whether typ is a legal TYPE value in the text
// exposition format.
func validPromType(typ string) bool {
	switch typ {
	case "counter", "gauge", "histogram", "summary", "untyped":
		return true
	}
	return false
}

// ParseExposition parses and validates a text exposition: metric and
// label name charsets, TYPE values, label-value escaping, float syntax,
// samples preceded by their family header, histogram families carrying
// _bucket/_sum/_count with a cumulative le sequence ending at +Inf.
// It is deliberately strict — it lints our own writer, not arbitrary
// input.
func ParseExposition(r io.Reader) ([]PromFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var fams []PromFamily
	var cur *PromFamily
	pendingHelp := ""
	pendingHelpName := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				return nil, fmt.Errorf("line %d: malformed HELP: %q", lineNo, line)
			}
			pendingHelpName, pendingHelp = name, help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) || !validPromType(typ) {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
			}
			if pendingHelpName != "" && pendingHelpName != name {
				return nil, fmt.Errorf("line %d: TYPE for %q follows HELP for %q", lineNo, name, pendingHelpName)
			}
			fams = append(fams, PromFamily{Name: name, Help: pendingHelp, Type: typ})
			cur = &fams[len(fams)-1]
			pendingHelp, pendingHelpName = "", ""
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if cur == nil || !sampleBelongs(cur, s.Name) {
			return nil, fmt.Errorf("line %d: sample %q not preceded by its family header", lineNo, s.Name)
		}
		cur.Samples = append(cur.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range fams {
		if fams[i].Type == "histogram" {
			if err := validateHistogram(&fams[i]); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// sampleBelongs reports whether a sample name belongs to family f —
// exact match, or the histogram/summary suffixed series.
func sampleBelongs(f *PromFamily, name string) bool {
	if name == f.Name {
		return true
	}
	if f.Type == "histogram" || f.Type == "summary" {
		return name == f.Name+"_bucket" || name == f.Name+"_sum" || name == f.Name+"_count"
	}
	return false
}

func parseSample(line string) (PromSample, error) {
	var s PromSample
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample: %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++ // skip escaped char
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set: %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	// An optional timestamp may follow the value; our writer never emits
	// one, so reject extra fields outright.
	val := rest
	switch val {
	case "+Inf":
		s.Value = math.Inf(1)
		return s, nil
	case "-Inf":
		s.Value = math.Inf(-1)
		return s, nil
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", val, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(s string) ([]Label, error) {
	var out []Label
	i := 0
	for i < len(s) {
		start := i
		for i < len(s) && isLabelNameChar(s[i], i == start) {
			i++
		}
		if i == start {
			return nil, fmt.Errorf("bad label name in %q", s)
		}
		name := s[start:i]
		if !strings.HasPrefix(s[i:], `="`) {
			return nil, fmt.Errorf("label %q missing =\"", name)
		}
		i += 2
		var val strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("dangling escape in label %q", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %q", name)
		}
		out = append(out, Label{Name: name, Value: val.String()})
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("expected ',' after label %q", name)
			}
			i++
		}
	}
	return out, nil
}

// validateHistogram checks the conventional series of a histogram
// family: cumulative non-decreasing buckets per label set, a final
// le="+Inf" bucket agreeing with _count.
func validateHistogram(f *PromFamily) error {
	type key string
	buckets := make(map[key][]PromSample)
	counts := make(map[key]float64)
	for _, s := range f.Samples {
		k := key(labelKeyExcept(s.Labels, "le"))
		switch s.Name {
		case f.Name + "_bucket":
			buckets[k] = append(buckets[k], s)
		case f.Name + "_count":
			counts[k] = s.Value
		}
	}
	for k, bs := range buckets {
		prevLe := math.Inf(-1)
		prev := -1.0
		sawInf := false
		for _, b := range bs {
			leStr := labelValue(b.Labels, "le")
			if leStr == "" {
				return fmt.Errorf("%s: bucket missing le label", f.Name)
			}
			var le float64
			if leStr == "+Inf" {
				le = math.Inf(1)
				sawInf = true
			} else {
				v, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("%s: bad le %q", f.Name, leStr)
				}
				le = v
			}
			if le < prevLe {
				return fmt.Errorf("%s: le values not ascending", f.Name)
			}
			if b.Value < prev {
				return fmt.Errorf("%s: bucket counts not cumulative", f.Name)
			}
			prevLe, prev = le, b.Value
		}
		if !sawInf {
			return fmt.Errorf("%s: histogram missing le=\"+Inf\" bucket", f.Name)
		}
		if c, ok := counts[k]; ok && c != prev {
			return fmt.Errorf("%s: _count %v != +Inf bucket %v", f.Name, c, prev)
		}
	}
	return nil
}

func labelValue(labels []Label, name string) string {
	for _, l := range labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// labelKeyExcept renders a label set minus one label as a canonical
// string key.
func labelKeyExcept(labels []Label, except string) string {
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		if l.Name != except {
			parts = append(parts, l.Name+"="+l.Value)
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func isLabelNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}
