package trace

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestBucketOfMonotonicAndBounded(t *testing.T) {
	// Exhaustive over the exact range, then spot checks across octaves:
	// indices must be monotone non-decreasing, within range, and
	// bucketUpper must bound the value with <= 1/subBuckets relative
	// error.
	prev := -1
	vals := []int64{}
	for v := int64(0); v < 4*subBuckets; v++ {
		vals = append(vals, v)
	}
	for shift := uint(6); shift < 62; shift++ {
		base := int64(1) << shift
		vals = append(vals, base-1, base, base+1, base+base/3)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, v := range vals {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf not monotonic at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, idx)
		}
		upper := bucketUpper(idx)
		if upper < v {
			t.Fatalf("bucketUpper(%d)=%d < value %d", idx, upper, v)
		}
		if v >= 2*subBuckets {
			if err := float64(upper-v) / float64(v); err > 1.0/subBuckets {
				t.Fatalf("quantization error %f > %f at %d", err, 1.0/subBuckets, v)
			}
		}
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 10; v++ {
		h.Observe(time.Duration(v))
	}
	if got := h.Count(); got != 10 {
		t.Fatalf("Count = %d, want 10", got)
	}
	if got := h.Quantile(0.5); got != 6 {
		t.Fatalf("p50 = %v, want 6", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
	if got := h.Max(); got != 10 {
		t.Fatalf("Max = %v, want 10", got)
	}
	if got := h.Mean(); got != 5 { // 55/10 truncated
		t.Fatalf("Mean = %v, want 5", got)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Random latencies across five orders of magnitude: reported
	// quantiles must be within the bucketing error of the exact ones.
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	exact := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * float64(5*time.Millisecond))
		exact = append(exact, v)
		h.Observe(time.Duration(v))
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		want := exact[int(q*float64(len(exact)))]
		got := int64(h.Quantile(q))
		if got < want {
			t.Fatalf("q%.3f = %d below exact %d", q, got, want)
		}
		if relErr := float64(got-want) / float64(want); relErr > 1.0/subBuckets {
			t.Fatalf("q%.3f = %d, exact %d, rel err %f", q, got, want, relErr)
		}
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-time.Second) // clamps to 0
	if h.Count() != 1 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative observation should clamp to 0: count=%d p50=%v", h.Count(), h.Quantile(0.5))
	}
	h.Observe(time.Second)
	if got := h.Quantile(-1); got != 0 {
		t.Fatalf("q<0 should clamp: %v", got)
	}
	if got := h.Quantile(2); got != time.Second {
		t.Fatalf("q>1 should clamp to max: %v", got)
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Observe(time.Duration(i) * time.Microsecond)
	}
	for i := 101; i <= 200; i++ {
		b.Observe(time.Duration(i) * time.Microsecond)
	}
	merged := NewHistogram()
	merged.Merge(a)
	merged.Merge(b)
	merged.Merge(nil)
	merged.Merge(NewHistogram())
	if merged.Count() != 200 {
		t.Fatalf("merged count = %d", merged.Count())
	}
	if merged.Max() != 200*time.Microsecond {
		t.Fatalf("merged max = %v", merged.Max())
	}
	all := NewHistogram()
	for i := 1; i <= 200; i++ {
		all.Observe(time.Duration(i) * time.Microsecond)
	}
	if merged.Summarize() != all.Summarize() {
		t.Fatalf("merge mismatch: %+v vs %+v", merged.Summarize(), all.Summarize())
	}
	merged.Reset()
	if merged.Count() != 0 || merged.Quantile(0.5) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestHistogramEachBucketCumulative(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * 10 * time.Microsecond)
	}
	var total int64
	prevUpper := time.Duration(-1)
	h.EachBucket(func(upper time.Duration, count int64) {
		if upper <= prevUpper {
			t.Fatalf("EachBucket uppers not ascending: %v after %v", upper, prevUpper)
		}
		prevUpper = upper
		total += count
	})
	if total != h.Count() {
		t.Fatalf("EachBucket total %d != count %d", total, h.Count())
	}
}

func TestHistogramSummarize(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Summarize()
	if s.Count != 1000 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Max != 1000*time.Millisecond {
		t.Fatalf("Max = %v", s.Max)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Fatalf("percentiles not ordered: %+v", s)
	}
	// p99 of 1..1000ms is 991ms exact; allow bucket quantization.
	if s.P99 < 991*time.Millisecond || s.P99 > 1060*time.Millisecond {
		t.Fatalf("P99 = %v out of tolerance", s.P99)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000000) * time.Nanosecond)
	}
}
