package trace

import (
	"strings"
	"testing"
	"time"
)

func TestTracerSamplingDeterministic(t *testing.T) {
	tr := NewTracer(3, 64)
	var ids []uint64
	for i := 0; i < 10; i++ {
		ids = append(ids, tr.SampleRoot())
	}
	want := []uint64{0, 0, 1, 0, 0, 2, 0, 0, 3, 0}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("emission %d: id %d, want %d", i, ids[i], want[i])
		}
	}
	// A second tracer with the same rate must sample identically.
	tr2 := NewTracer(3, 64)
	for i := 0; i < 10; i++ {
		if tr2.SampleRoot() != ids[i] {
			t.Fatalf("tracers diverge at emission %d", i)
		}
	}
}

func TestTracerEveryOneAndClamp(t *testing.T) {
	tr := NewTracer(0, 4) // clamps to every=1
	for i := 1; i <= 3; i++ {
		if id := tr.SampleRoot(); id != uint64(i) {
			t.Fatalf("every=1 emission %d: id %d", i, id)
		}
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(1, 3)
	for i := 0; i < 5; i++ {
		tr.Record(Span{Trace: uint64(i + 1), Kind: SpanRoot, Task: i})
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d", len(spans))
	}
	for i, s := range spans {
		if want := uint64(i + 3); s.Trace != want {
			t.Fatalf("span %d: trace %d, want %d", i, s.Trace, want)
		}
	}
	if tr.Recorded() != 5 {
		t.Fatalf("Recorded = %d", tr.Recorded())
	}
}

func traced(tr *Tracer) {
	id := uint64(1)
	tr.Record(Span{Trace: id, Kind: SpanRoot, Topology: "chain", Component: "s", Task: 0, From: -1, At: time.Second})
	tr.Record(Span{Trace: id, Kind: SpanHop, Topology: "chain", Component: "work", Task: 2, From: 0,
		At: time.Second + 400*time.Microsecond, Wait: 50 * time.Microsecond, Service: 300 * time.Microsecond, Net: 50 * time.Microsecond})
	tr.Record(Span{Trace: id, Kind: SpanHop, Topology: "chain", Component: "z", Task: 6, From: 2,
		At: time.Second + 900*time.Microsecond, Wait: 100 * time.Microsecond, Service: 100 * time.Microsecond})
	tr.Record(Span{Trace: id, Kind: SpanDrop, Topology: "chain", Component: "z", Task: 7, From: 2,
		At: time.Second + 950*time.Microsecond})
}

func TestTreesReconstruction(t *testing.T) {
	tr := NewTracer(1, 64)
	traced(tr)
	// A second trace interleaved out of order.
	tr.Record(Span{Trace: 2, Kind: SpanRoot, Topology: "chain", Component: "s", Task: 1, From: -1, At: 2 * time.Second})
	trees := tr.Trees()
	if len(trees) != 2 {
		t.Fatalf("trees = %d", len(trees))
	}
	if trees[0].Trace != 1 || trees[1].Trace != 2 {
		t.Fatalf("tree order: %d, %d", trees[0].Trace, trees[1].Trace)
	}
	spans := trees[0].Spans
	if spans[0].Kind != SpanRoot {
		t.Fatal("root not first")
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].At < spans[i-1].At {
			t.Fatalf("hops not time-ordered at %d", i)
		}
	}
}

func TestTreesDropRootlessTraces(t *testing.T) {
	tr := NewTracer(1, 64)
	tr.Record(Span{Trace: 9, Kind: SpanHop, Component: "work", Task: 3, From: 0})
	if trees := tr.Trees(); len(trees) != 0 {
		t.Fatalf("rootless trace retained: %d trees", len(trees))
	}
}

func TestRenderTreesDeterministicAndShaped(t *testing.T) {
	tr1, tr2 := NewTracer(1, 64), NewTracer(1, 64)
	traced(tr1)
	traced(tr2)
	r1 := RenderTrees(tr1.Trees())
	r2 := RenderTrees(tr2.Trees())
	if r1 != r2 {
		t.Fatal("identical span streams rendered differently")
	}
	// Structural checks: hop under root indents deeper, drop marked.
	lines := strings.Split(strings.TrimRight(r1, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), r1)
	}
	if !strings.HasPrefix(lines[0], "trace 1 chain @1s") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "s/0 emit") {
		t.Fatalf("root line: %q", lines[1])
	}
	rootIndent := len(lines[1]) - len(strings.TrimLeft(lines[1], " "))
	hopIndent := len(lines[2]) - len(strings.TrimLeft(lines[2], " "))
	leafIndent := len(lines[3]) - len(strings.TrimLeft(lines[3], " "))
	if hopIndent <= rootIndent || leafIndent <= hopIndent {
		t.Fatalf("indentation not tree-shaped:\n%s", r1)
	}
	if !strings.Contains(lines[2], "wait=50µs") || !strings.Contains(lines[2], "service=300µs") {
		t.Fatalf("hop spans missing: %q", lines[2])
	}
	if !strings.Contains(lines[4], "dropped") {
		t.Fatalf("drop not rendered: %q", lines[4])
	}
}

func TestSpanKindString(t *testing.T) {
	if SpanRoot.String() != "emit" || SpanHop.String() != "hop" || SpanDrop.String() != "drop" {
		t.Fatal("SpanKind strings")
	}
	if SpanKind(99).String() != "?" {
		t.Fatal("unknown kind")
	}
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(1, 8192)
	s := Span{Trace: 1, Kind: SpanHop, Topology: "chain", Component: "work", Task: 2, From: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(s)
	}
}
