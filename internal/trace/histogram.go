// Package trace is the unified observability layer (DESIGN.md §8): fixed
// log-bucketed latency histograms cheap enough for the simulator's tuple
// hot path, deterministic sampled tuple tracing with per-hop spans, a
// causally-ordered decision journal unifying the control planes' event
// streams, and a hand-rolled Prometheus text-format exposition with a
// round-trip lint parser. Everything here is opt-in from the callers'
// side: the simulator, adaptive loop, and Nimbus behave byte-identically
// when no histogram, tracer, or journal is attached.
package trace

import (
	"math/bits"
	"time"
)

// Histogram bucketing: HDR-style base-2 buckets with 2^subBits linear
// sub-buckets per power of two. Values are durations in nanoseconds;
// recording is a handful of integer operations (no floating point, no
// allocation), so a histogram can sit directly on the simulator's
// complete-tree latency path.
const (
	// subBits sets the per-octave resolution: 16 sub-buckets bound the
	// relative quantization error at 1/16 = 6.25%, plenty for p99
	// reporting while keeping a histogram under 8 KB.
	subBits    = 4
	subBuckets = 1 << subBits
	// numBuckets covers the full non-negative int64 range: values below
	// 2*subBuckets index exactly; above, index = exp*subBuckets + mantissa
	// with exp <= 63-subBits.
	numBuckets = (64 - subBits) * subBuckets
)

// bucketOf maps a non-negative nanosecond value to its bucket index.
// Monotonic and contiguous: small values (< 2^(subBits+1)) are exact,
// larger ones land in [value, value*(1+1/subBuckets)).
//
//rstorm:hotpath
func bucketOf(v int64) int {
	u := uint64(v)
	if u < 2*subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - (subBits + 1)
	return exp<<subBits + int(u>>uint(exp))
}

// bucketUpper returns the largest value mapping to bucket idx — the value
// a quantile query reports for the bucket.
func bucketUpper(idx int) int64 {
	if idx < 2*subBuckets {
		return int64(idx)
	}
	exp := uint(idx>>subBits - 1)
	mantissa := int64(idx&(subBuckets-1) | subBuckets)
	return (mantissa+1)<<exp - 1
}

// Histogram is a fixed-size log-bucketed latency histogram. Recording is
// allocation-free integer arithmetic; quantiles are computed on demand by
// scanning the bucket array. Not safe for concurrent use: each histogram
// is owned by one single-threaded recorder (the simulator event loop) and
// read at window boundaries.
type Histogram struct {
	count   int64
	sum     int64
	maxSeen int64
	buckets [numBuckets]int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration. Negative values clamp to zero.
//
//rstorm:hotpath
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += v
	if v > h.maxSeen {
		h.maxSeen = v
	}
	h.buckets[bucketOf(v)]++
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Max returns the largest recorded value (exact, not quantized).
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxSeen) }

// Mean returns the arithmetic mean of recorded values.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Quantile returns the q-th quantile (0 <= q <= 1) by nearest rank over
// the buckets, reported as the containing bucket's upper bound (within
// 6.25% of the true value). Zero observations yield zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += h.buckets[i]
		if seen > rank {
			upper := bucketUpper(i)
			if upper > h.maxSeen {
				// The top bucket's bound can overshoot the true maximum;
				// the exact max is tracked, so report it instead.
				upper = h.maxSeen
			}
			return time.Duration(upper)
		}
	}
	return time.Duration(h.maxSeen)
}

// Merge folds o's observations into h. Nil or empty o is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	h.count += o.count
	h.sum += o.sum
	if o.maxSeen > h.maxSeen {
		h.maxSeen = o.maxSeen
	}
	for i := range o.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Reset clears the histogram for the next window.
func (h *Histogram) Reset() { *h = Histogram{} }

// EachBucket calls fn for every non-empty bucket in ascending value order
// with the bucket's inclusive upper bound and count — the iteration a
// Prometheus histogram exposition needs to build cumulative le buckets.
func (h *Histogram) EachBucket(fn func(upper time.Duration, count int64)) {
	for i := 0; i < numBuckets; i++ {
		if h.buckets[i] > 0 {
			fn(time.Duration(bucketUpper(i)), h.buckets[i])
		}
	}
}

// Summary is a histogram's value-typed digest: safe to copy into a
// TaskSample whose backing histogram is about to be reset.
type Summary struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean"`
	P50   time.Duration `json:"p50"`
	P95   time.Duration `json:"p95"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

// Summarize computes the standard percentile digest.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}
