package nimbus

import (
	"fmt"
	"sort"
)

// RebalanceTopology tears down a topology's current assignment and
// schedules it afresh at the next round — Storm's `rebalance` command.
// Useful after cluster membership grows: a topology squeezed onto few
// nodes can spread back out.
func (n *Nimbus) RebalanceTopology(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.topologies[name]; !ok {
		return fmt.Errorf("topology %q is not submitted", name)
	}
	n.state.Remove(name)
	_ = n.store.Delete(assignmentsPath + "/" + name)
	n.dropPendingLocked(name)
	n.pending = append(n.pending, name)
	n.logf("rebalance requested for %q", name)
	return nil
}

// ClusterSummary is a point-in-time view of scheduling state, served by
// the StatisticServer and useful for operator tooling.
type ClusterSummary struct {
	AliveSupervisors int                 `json:"aliveSupervisors"`
	Topologies       []TopologySummary   `json:"topologies"`
	Pending          []string            `json:"pending"`
	NodeAvailable    map[string]Capacity `json:"nodeAvailable"`
}

// TopologySummary summarizes one scheduled topology.
type TopologySummary struct {
	Name      string `json:"name"`
	Scheduler string `json:"scheduler"`
	Tasks     int    `json:"tasks"`
	Nodes     int    `json:"nodes"`
	Workers   int    `json:"workers"`
}

// Capacity is the JSON form of a resource vector.
type Capacity struct {
	CPU       float64 `json:"cpu"`
	MemoryMB  float64 `json:"memoryMb"`
	Bandwidth float64 `json:"bandwidth"`
}

// Summary builds the current cluster summary.
func (n *Nimbus) Summary() ClusterSummary {
	out := ClusterSummary{
		AliveSupervisors: len(n.AliveSupervisors()),
		Pending:          n.Pending(),
		NodeAvailable:    make(map[string]Capacity, n.cluster.Size()),
	}
	for id, v := range n.state.AvailableAll() {
		out.NodeAvailable[string(id)] = Capacity{
			CPU:       v.CPU,
			MemoryMB:  v.MemoryMB,
			Bandwidth: v.Bandwidth,
		}
	}
	n.mu.Lock()
	names := make([]string, 0, len(n.topologies))
	for name := range n.topologies {
		names = append(names, name)
	}
	n.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		a := n.state.Assignment(name)
		if a == nil {
			continue
		}
		n.mu.Lock()
		topo := n.topologies[name]
		n.mu.Unlock()
		if topo == nil {
			continue
		}
		out.Topologies = append(out.Topologies, TopologySummary{
			Name:      name,
			Scheduler: a.Scheduler,
			Tasks:     topo.TotalTasks(),
			Nodes:     len(a.NodesUsed()),
			Workers:   a.WorkersUsed(),
		})
	}
	return out
}
