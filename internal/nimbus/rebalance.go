package nimbus

import (
	"fmt"
	"sort"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
)

// RebalanceTopology tears down a topology's current assignment and
// schedules it afresh at the next round — Storm's `rebalance` command.
// Useful after cluster membership grows: a topology squeezed onto few
// nodes can spread back out.
func (n *Nimbus) RebalanceTopology(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.topologies[name]; !ok {
		return fmt.Errorf("topology %q is not submitted", name)
	}
	n.state.Remove(name)
	_ = n.store.Delete(assignmentsPath + "/" + name)
	n.dropPendingLocked(name)
	n.pending = append(n.pending, name)
	n.logf("rebalance requested for %q", name)
	return nil
}

// AdaptiveRebalance applies an incremental, measured-demand reschedule of
// a scheduled topology — the adaptive control loop's alternative to
// RebalanceTopology, which tears every placement down and restarts all
// workers. The caller provides opts.Demands (typically the adaptive
// profiler's measured per-component vectors) plus MaxMoves/Margin policy;
// Nimbus supplies the cluster availability (other topologies' reservations
// respected) and worker-slot resolution, and applies the new assignment
// atomically, rolling back on failure. It returns the migrations applied —
// strictly fewer tasks than a teardown whenever the placement is partially
// healthy.
//
// It requires the configured scheduler to be the resource-aware scheduler,
// whose distance machinery the incremental pass reuses.
func (n *Nimbus) AdaptiveRebalance(name string, opts core.IncrementalOptions) ([]core.Move, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	topo := n.topologies[name]
	if topo == nil {
		return nil, fmt.Errorf("topology %q is not submitted", name)
	}
	ras, ok := n.scheduler.(*core.ResourceAwareScheduler)
	if !ok {
		return nil, fmt.Errorf("adaptive rebalance requires the r-storm scheduler (configured: %s)",
			n.scheduler.Name())
	}
	current := n.state.Assignment(name)
	if current == nil {
		return nil, fmt.Errorf("topology %q has no assignment to rebalance", name)
	}
	// Plan against availability with this topology's own reservation
	// lifted; on any failure the original assignment is restored.
	n.state.Remove(name)
	rollback := func() {
		_ = n.state.Apply(topo, current)
	}
	opts.Available = n.state.AvailableAll()
	opts.SlotFor = func(id cluster.NodeID) (int, bool) {
		return n.state.FirstFreeSlot(id)
	}
	next, moves, err := ras.IncrementalReschedule(topo, n.cluster, current, opts)
	if err != nil {
		rollback()
		return nil, fmt.Errorf("incremental reschedule of %q: %w", name, err)
	}
	if err := n.state.Apply(topo, next); err != nil {
		rollback()
		return nil, fmt.Errorf("applying incremental assignment for %q: %w", name, err)
	}
	n.persistAssignment(name, next)
	n.logf("adaptive rebalance of %q migrated %d of %d tasks", name, len(moves), topo.TotalTasks())
	return moves, nil
}

// ClusterSummary is a point-in-time view of scheduling state, served by
// the StatisticServer and useful for operator tooling.
type ClusterSummary struct {
	AliveSupervisors int                 `json:"aliveSupervisors"`
	Topologies       []TopologySummary   `json:"topologies"`
	Pending          []string            `json:"pending"`
	NodeAvailable    map[string]Capacity `json:"nodeAvailable"`
	// Evictions is the master's eviction history, oldest first.
	Evictions []EvictionEvent `json:"evictions,omitempty"`
}

// TopologySummary summarizes one scheduled topology.
type TopologySummary struct {
	Name      string `json:"name"`
	Scheduler string `json:"scheduler"`
	Tasks     int    `json:"tasks"`
	Nodes     int    `json:"nodes"`
	Workers   int    `json:"workers"`
	// Priority is the tenant's scheduling priority (zero = none).
	Priority int `json:"priority"`
}

// Capacity is the JSON form of a resource vector.
type Capacity struct {
	CPU       float64 `json:"cpu"`
	MemoryMB  float64 `json:"memoryMb"`
	Bandwidth float64 `json:"bandwidth"`
}

// Summary builds the current cluster summary.
func (n *Nimbus) Summary() ClusterSummary {
	out := ClusterSummary{
		AliveSupervisors: len(n.AliveSupervisors()),
		Pending:          n.Pending(),
		NodeAvailable:    make(map[string]Capacity, n.cluster.Size()),
		Evictions:        n.Evictions(),
	}
	for id, v := range n.state.AvailableAll() {
		out.NodeAvailable[string(id)] = Capacity{
			CPU:       v.CPU,
			MemoryMB:  v.MemoryMB,
			Bandwidth: v.Bandwidth,
		}
	}
	n.mu.Lock()
	names := make([]string, 0, len(n.topologies))
	for name := range n.topologies {
		names = append(names, name)
	}
	n.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		a := n.state.Assignment(name)
		if a == nil {
			continue
		}
		n.mu.Lock()
		topo := n.topologies[name]
		n.mu.Unlock()
		if topo == nil {
			continue
		}
		out.Topologies = append(out.Topologies, TopologySummary{
			Name:      name,
			Scheduler: a.Scheduler,
			Tasks:     topo.TotalTasks(),
			Nodes:     len(a.NodesUsed()),
			Workers:   a.WorkersUsed(),
			Priority:  n.TopologyPriority(name),
		})
	}
	return out
}
