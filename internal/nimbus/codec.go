package nimbus

import (
	"encoding/json"
	"fmt"
	"strconv"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
)

// wireAssignment is the JSON shape stored under /assignments/<topology>.
type wireAssignment struct {
	Topology   string                   `json:"topology"`
	Scheduler  string                   `json:"scheduler"`
	Placements map[string]wirePlacement `json:"placements"`
}

type wirePlacement struct {
	Node string `json:"node"`
	Slot int    `json:"slot"`
}

// EncodeAssignment serializes an assignment for the state store.
func EncodeAssignment(a *core.Assignment) ([]byte, error) {
	w := wireAssignment{
		Topology:   a.Topology,
		Scheduler:  a.Scheduler,
		Placements: make(map[string]wirePlacement, len(a.Placements)),
	}
	for id, p := range a.Placements {
		w.Placements[strconv.Itoa(id)] = wirePlacement{Node: string(p.Node), Slot: p.Slot}
	}
	return json.Marshal(w)
}

// DecodeAssignment parses what EncodeAssignment produced.
func DecodeAssignment(data []byte) (*core.Assignment, error) {
	var w wireAssignment
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("decode assignment: %w", err)
	}
	a := core.NewAssignment(w.Topology, w.Scheduler)
	for idStr, p := range w.Placements {
		id, err := strconv.Atoi(idStr)
		if err != nil {
			return nil, fmt.Errorf("decode assignment: bad task id %q", idStr)
		}
		a.Place(id, core.Placement{Node: cluster.NodeID(p.Node), Slot: p.Slot})
	}
	return a, nil
}
