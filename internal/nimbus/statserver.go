package nimbus

import (
	"encoding/json"
	"net/http"
	"strings"

	"rstorm/internal/adaptive"
)

// StatisticServer exposes the master's state over HTTP — the analogue of
// R-Storm's StatisticServer module (§5.1), which "is responsible for
// collecting statistics in the Storm cluster ... for evaluative purposes".
//
// Routes:
//
//	GET /summary                cluster summary (supervisors, topologies,
//	                            per-topology priority, eviction history)
//	GET /assignments            every assignment, keyed by topology
//	GET /assignments/{name}     one topology's assignment
//	GET /events                 the master's action log
//	GET /evictions              the master's eviction history
//	GET /adaptive               adaptive-controller state (when attached)
//	GET /faults                 failure-detector state and failover history
//	                            (when the detector is enabled)
//
// Mount it on any mux or serve it directly:
//
//	srv := nimbus.NewStatisticServer(n)
//	http.ListenAndServe(":8080", srv)
type StatisticServer struct {
	nimbus   *Nimbus
	mux      *http.ServeMux
	adaptive func() adaptive.ControllerStatus
}

var _ http.Handler = (*StatisticServer)(nil)

// StatServerOption configures a StatisticServer.
type StatServerOption func(*StatisticServer)

// WithAdaptiveStatus attaches an adaptive controller's status snapshot to
// the /adaptive route (typically adaptive.Controller.Status).
func WithAdaptiveStatus(fn func() adaptive.ControllerStatus) StatServerOption {
	return func(s *StatisticServer) { s.adaptive = fn }
}

// NewStatisticServer returns the HTTP facade over a Nimbus.
func NewStatisticServer(n *Nimbus, opts ...StatServerOption) *StatisticServer {
	s := &StatisticServer{nimbus: n, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("/summary", s.handleSummary)
	s.mux.HandleFunc("/assignments", s.handleAssignments)
	s.mux.HandleFunc("/assignments/", s.handleAssignment)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/evictions", s.handleEvictions)
	s.mux.HandleFunc("/adaptive", s.handleAdaptive)
	s.mux.HandleFunc("/faults", s.handleFaults)
	return s
}

// ServeHTTP implements http.Handler.
func (s *StatisticServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *StatisticServer) handleSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.nimbus.Summary())
}

func (s *StatisticServer) handleAssignments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	assignments := s.nimbus.state.Assignments()
	out := make(map[string]json.RawMessage, len(assignments))
	for name, a := range assignments {
		data, err := EncodeAssignment(a)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out[name] = data
	}
	writeJSON(w, out)
}

func (s *StatisticServer) handleAssignment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/assignments/")
	a := s.nimbus.Assignment(name)
	if a == nil {
		http.Error(w, "unknown topology", http.StatusNotFound)
		return
	}
	data, err := EncodeAssignment(a)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (s *StatisticServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.nimbus.Events())
}

func (s *StatisticServer) handleEvictions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.nimbus.Evictions())
}

func (s *StatisticServer) handleAdaptive(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.adaptive == nil {
		http.Error(w, "adaptive controller not attached", http.StatusNotFound)
		return
	}
	writeJSON(w, s.adaptive())
}

func (s *StatisticServer) handleFaults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	status := s.nimbus.DetectorStatus()
	if !status.Enabled {
		http.Error(w, "failure detector not enabled", http.StatusNotFound)
		return
	}
	writeJSON(w, status)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
