package nimbus

import (
	"encoding/json"
	"net/http"
	"strings"
)

// StatisticServer exposes the master's state over HTTP — the analogue of
// R-Storm's StatisticServer module (§5.1), which "is responsible for
// collecting statistics in the Storm cluster ... for evaluative purposes".
//
// Routes:
//
//	GET /summary                cluster summary (supervisors, topologies)
//	GET /assignments            every assignment, keyed by topology
//	GET /assignments/{name}     one topology's assignment
//	GET /events                 the master's action log
//
// Mount it on any mux or serve it directly:
//
//	srv := nimbus.NewStatisticServer(n)
//	http.ListenAndServe(":8080", srv)
type StatisticServer struct {
	nimbus *Nimbus
	mux    *http.ServeMux
}

var _ http.Handler = (*StatisticServer)(nil)

// NewStatisticServer returns the HTTP facade over a Nimbus.
func NewStatisticServer(n *Nimbus) *StatisticServer {
	s := &StatisticServer{nimbus: n, mux: http.NewServeMux()}
	s.mux.HandleFunc("/summary", s.handleSummary)
	s.mux.HandleFunc("/assignments", s.handleAssignments)
	s.mux.HandleFunc("/assignments/", s.handleAssignment)
	s.mux.HandleFunc("/events", s.handleEvents)
	return s
}

// ServeHTTP implements http.Handler.
func (s *StatisticServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *StatisticServer) handleSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.nimbus.Summary())
}

func (s *StatisticServer) handleAssignments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	assignments := s.nimbus.state.Assignments()
	out := make(map[string]json.RawMessage, len(assignments))
	for name, a := range assignments {
		data, err := EncodeAssignment(a)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out[name] = data
	}
	writeJSON(w, out)
}

func (s *StatisticServer) handleAssignment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/assignments/")
	a := s.nimbus.Assignment(name)
	if a == nil {
		http.Error(w, "unknown topology", http.StatusNotFound)
		return
	}
	data, err := EncodeAssignment(a)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (s *StatisticServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.nimbus.Events())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
