package nimbus

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"rstorm/internal/adaptive"
	"rstorm/internal/trace"
)

// StatisticServer exposes the master's state over HTTP — the analogue of
// R-Storm's StatisticServer module (§5.1), which "is responsible for
// collecting statistics in the Storm cluster ... for evaluative purposes".
//
// Routes:
//
//	GET /summary                cluster summary (supervisors, topologies,
//	                            per-topology priority, eviction history)
//	GET /assignments            every assignment, keyed by topology
//	GET /assignments/{name}     one topology's assignment
//	GET /events                 the master's action log
//	GET /evictions              the master's eviction history
//	GET /adaptive               adaptive-controller state (when attached)
//	GET /faults                 failure-detector state and failover history
//	                            (when the detector is enabled)
//	GET /metrics                Prometheus text exposition (DESIGN.md §8)
//	GET /journal                decision journal as JSONL (when attached)
//	GET /latency                per-topology latency summaries (when
//	                            attached)
//	GET /debug/pprof/...        runtime profiles (with WithPprof only)
//
// Every route is GET-only (405 with an Allow header otherwise) and every
// response body — success or error — is JSON, except /metrics
// (Prometheus text format) and /journal (JSON lines).
//
// Mount it on any mux or serve it directly:
//
//	srv := nimbus.NewStatisticServer(n)
//	http.ListenAndServe(":8080", srv)
type StatisticServer struct {
	nimbus   *Nimbus
	mux      *http.ServeMux
	adaptive func() adaptive.ControllerStatus
	journal  func() *trace.Journal
	latency  func() map[string]trace.Summary
	pprof    bool
}

var _ http.Handler = (*StatisticServer)(nil)

// StatServerOption configures a StatisticServer.
type StatServerOption func(*StatisticServer)

// WithAdaptiveStatus attaches an adaptive controller's status snapshot to
// the /adaptive route (typically adaptive.Controller.Status).
func WithAdaptiveStatus(fn func() adaptive.ControllerStatus) StatServerOption {
	return func(s *StatisticServer) { s.adaptive = fn }
}

// WithJournal attaches a decision-journal source to the /journal route
// and the journal counters of /metrics. The callback may return nil
// (journal not yet attached), which serves 404.
func WithJournal(fn func() *trace.Journal) StatServerOption {
	return func(s *StatisticServer) { s.journal = fn }
}

// WithLatency attaches a latency-summary source (typically the
// simulator's Simulation.LatencySummaries) to the /latency route and the
// latency summaries of /metrics. The callback may return nil (histograms
// off), which serves 404 on /latency.
func WithLatency(fn func() map[string]trace.Summary) StatServerOption {
	return func(s *StatisticServer) { s.latency = fn }
}

// WithPprof mounts net/http/pprof's handlers under /debug/pprof/ —
// opt-in, since profiles expose process internals.
func WithPprof() StatServerOption {
	return func(s *StatisticServer) { s.pprof = true }
}

// NewStatisticServer returns the HTTP facade over a Nimbus.
func NewStatisticServer(n *Nimbus, opts ...StatServerOption) *StatisticServer {
	s := &StatisticServer{nimbus: n, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("/summary", get(s.handleSummary))
	s.mux.HandleFunc("/assignments", get(s.handleAssignments))
	s.mux.HandleFunc("/assignments/", get(s.handleAssignment))
	s.mux.HandleFunc("/events", get(s.handleEvents))
	s.mux.HandleFunc("/evictions", get(s.handleEvictions))
	s.mux.HandleFunc("/adaptive", get(s.handleAdaptive))
	s.mux.HandleFunc("/faults", get(s.handleFaults))
	s.mux.HandleFunc("/metrics", get(s.handleMetrics))
	s.mux.HandleFunc("/journal", get(s.handleJournal))
	s.mux.HandleFunc("/latency", get(s.handleLatency))
	if s.pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)          //rstorm:route-ok net/http/pprof handlers set their own Content-Type and answer GET only by construction
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline) //rstorm:route-ok net/http/pprof handlers set their own Content-Type and answer GET only by construction
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile) //rstorm:route-ok net/http/pprof handlers set their own Content-Type and answer GET only by construction
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)   //rstorm:route-ok pprof symbol lookup accepts POST by design; wrapping it in the GET guard would break the pprof tool
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)     //rstorm:route-ok net/http/pprof handlers set their own Content-Type and answer GET only by construction
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *StatisticServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// get wraps a handler with the server's uniform method discipline: only
// GET is served, anything else gets 405 with an Allow header.
func get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			jsonError(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func (s *StatisticServer) handleSummary(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.nimbus.Summary())
}

func (s *StatisticServer) handleAssignments(w http.ResponseWriter, r *http.Request) {
	assignments := s.nimbus.state.Assignments()
	out := make(map[string]json.RawMessage, len(assignments))
	for name, a := range assignments {
		data, err := EncodeAssignment(a)
		if err != nil {
			jsonError(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out[name] = data
	}
	writeJSON(w, out)
}

func (s *StatisticServer) handleAssignment(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/assignments/")
	a := s.nimbus.Assignment(name)
	if a == nil {
		jsonError(w, "unknown topology", http.StatusNotFound)
		return
	}
	data, err := EncodeAssignment(a)
	if err != nil {
		jsonError(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (s *StatisticServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.nimbus.Events())
}

func (s *StatisticServer) handleEvictions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.nimbus.Evictions())
}

func (s *StatisticServer) handleAdaptive(w http.ResponseWriter, r *http.Request) {
	if s.adaptive == nil {
		jsonError(w, "adaptive controller not attached", http.StatusNotFound)
		return
	}
	writeJSON(w, s.adaptive())
}

func (s *StatisticServer) handleFaults(w http.ResponseWriter, r *http.Request) {
	status := s.nimbus.DetectorStatus()
	if !status.Enabled {
		jsonError(w, "failure detector not enabled", http.StatusNotFound)
		return
	}
	writeJSON(w, status)
}

// handleJournal streams the decision journal in JSONL, one event per
// line — the exposition format of DESIGN.md §8.
func (s *StatisticServer) handleJournal(w http.ResponseWriter, r *http.Request) {
	var j *trace.Journal
	if s.journal != nil {
		j = s.journal()
	}
	if j == nil {
		jsonError(w, "journal not attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = j.WriteJSONL(w)
}

// handleLatency serves per-topology complete-tree latency summaries.
func (s *StatisticServer) handleLatency(w http.ResponseWriter, r *http.Request) {
	var sums map[string]trace.Summary
	if s.latency != nil {
		sums = s.latency()
	}
	if sums == nil {
		jsonError(w, "latency source not attached", http.StatusNotFound)
		return
	}
	writeJSON(w, sums)
}

// handleMetrics renders the master's state in Prometheus text exposition
// format 0.0.4 — always available, with journal counters and latency
// summaries folded in when their sources are attached.
func (s *StatisticServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	n := s.nimbus
	n.mu.Lock()
	supervisors := len(n.alive)
	running := 0
	for name := range n.topologies {
		if n.state.Assignment(name) != nil {
			running++
		}
	}
	pending := len(n.pending)
	rounds := n.rounds
	evictions := len(n.evictions)
	failovers := 0
	if n.detector != nil {
		failovers = len(n.detector.events)
	}
	n.mu.Unlock()

	var pw trace.PromWriter
	pw.Header("rstorm_supervisors_alive", "Registered supervisors with restored capacity.", "gauge")
	pw.Sample("rstorm_supervisors_alive", nil, float64(supervisors))
	pw.Header("rstorm_topologies", "Topologies known to the master, by state.", "gauge")
	pw.Sample("rstorm_topologies", []trace.Label{{Name: "state", Value: "running"}}, float64(running))
	pw.Sample("rstorm_topologies", []trace.Label{{Name: "state", Value: "pending"}}, float64(pending))
	pw.Header("rstorm_scheduling_rounds_total", "Cluster scheduling rounds run.", "counter")
	pw.Sample("rstorm_scheduling_rounds_total", nil, float64(rounds))
	pw.Header("rstorm_evictions_total", "Tenants evicted by priority admission.", "counter")
	pw.Sample("rstorm_evictions_total", nil, float64(evictions))
	pw.Header("rstorm_failovers_total", "Topology repairs after detector-declared node deaths.", "counter")
	pw.Sample("rstorm_failovers_total", nil, float64(failovers))

	if status := n.DetectorStatus(); status.Enabled {
		pw.Header("rstorm_node_health", "Failure-detector state per node (1 = current state).", "gauge")
		for _, nh := range status.Nodes {
			pw.Sample("rstorm_node_health", []trace.Label{
				{Name: "node", Value: nh.Node},
				{Name: "state", Value: nh.State},
			}, 1)
		}
	}

	if s.journal != nil {
		if j := s.journal(); j != nil {
			pw.Header("rstorm_journal_events_total", "Decision-journal events recorded.", "counter")
			pw.Sample("rstorm_journal_events_total", nil, float64(uint64(j.Len())+j.Dropped()))
			pw.Header("rstorm_journal_dropped_total", "Decision-journal events overwritten by the bounded ring.", "counter")
			pw.Sample("rstorm_journal_dropped_total", nil, float64(j.Dropped()))
		}
	}

	if s.latency != nil {
		if sums := s.latency(); len(sums) > 0 {
			names := make([]string, 0, len(sums))
			for name := range sums {
				names = append(names, name)
			}
			sort.Strings(names)
			pw.Header("rstorm_tuple_latency_seconds", "Complete-tree tuple latency per topology.", "summary")
			for _, name := range names {
				sum := sums[name]
				topo := trace.Label{Name: "topology", Value: name}
				for _, q := range []struct {
					q string
					v time.Duration
				}{{"0.5", sum.P50}, {"0.95", sum.P95}, {"0.99", sum.P99}} {
					pw.Sample("rstorm_tuple_latency_seconds", []trace.Label{
						topo, {Name: "quantile", Value: q.q},
					}, q.v.Seconds())
				}
				pw.Sample("rstorm_tuple_latency_seconds_sum", []trace.Label{topo},
					sum.Mean.Seconds()*float64(sum.Count))
				pw.Sample("rstorm_tuple_latency_seconds_count", []trace.Label{topo},
					float64(sum.Count))
			}
		}
	}

	w.Header().Set("Content-Type", trace.PromContentType)
	_, _ = pw.WriteTo(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// jsonError is http.Error with the server's uniform JSON body.
func jsonError(w http.ResponseWriter, msg string, code int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{%q: %q}\n", "error", msg)
}
