package nimbus

import (
	"testing"

	"rstorm/internal/core"
)

// TestEvictionVictimsStableAcrossRuns is the regression test for the
// rstorm-lint determinism finding in RunSchedulingRound (PR 8): the
// active-tenant list handed to core.ClusterSchedule used to be built in
// map-iteration order. ClusterSchedule itself sorts victims by
// (priority, seq), so the observable contract is that repeated fresh
// runs of the identical eviction scenario pick the identical victim
// sequence.
func TestEvictionVictimsStableAcrossRuns(t *testing.T) {
	var ref []string
	for run := 0; run < 10; run++ {
		c := testCluster(t)
		n, err := New(c, core.NewResourceAwareScheduler())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		startAll(t, n, c)
		fillCluster(t, n)
		if err := n.SubmitTopology(tenantTopo(t, "prod", 7, 1000, 8)); err != nil {
			t.Fatal(err)
		}
		if got := n.RunSchedulingRound(); len(got) != 1 || got[0] != "prod" {
			t.Fatalf("run %d: round scheduled %v, want [prod]", run, got)
		}
		var victims []string
		for _, e := range n.Evictions() {
			victims = append(victims, e.Victim)
		}
		if len(victims) == 0 {
			t.Fatalf("run %d: no evictions recorded", run)
		}
		if ref == nil {
			ref = victims
			continue
		}
		if len(victims) != len(ref) {
			t.Fatalf("run %d: victims %v, want %v", run, victims, ref)
		}
		for i := range ref {
			if victims[i] != ref[i] {
				t.Fatalf("run %d: victims %v, want %v", run, victims, ref)
			}
		}
	}
}
