package nimbus

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"rstorm/internal/core"
	"rstorm/internal/topology"
)

// tenantTopo builds a memory-heavy topology (memory is the hard axis, so
// it is what admission and eviction bind on) at the given priority.
func tenantTopo(t *testing.T, name string, par int, memMB float64, priority int) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder(name).SetPriority(priority)
	b.SetSpout("s", 1).SetCPULoad(10).SetMemoryLoad(128)
	b.SetBolt("w", par).ShuffleGrouping("s").SetCPULoad(20).SetMemoryLoad(memMB)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return topo
}

func TestRunSchedulingRoundOrdersByPriority(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	startAll(t, n, c)
	for _, topo := range []*topology.Topology{
		tenantTopo(t, "low", 3, 600, 1),
		tenantTopo(t, "high", 3, 600, 9),
		tenantTopo(t, "mid", 3, 600, 5),
	} {
		if err := n.SubmitTopology(topo); err != nil {
			t.Fatal(err)
		}
	}
	got := n.RunSchedulingRound()
	want := []string{"high", "mid", "low"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("scheduled order = %v, want %v", got, want)
	}
	if p := n.TopologyPriority("high"); p != 9 {
		t.Errorf("TopologyPriority(high) = %d, want 9", p)
	}
}

func TestPriorityOverrideOnSubmit(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	topo := tenantTopo(t, "plain", 2, 400, 3)
	if err := n.SubmitTopologyWithPriority(topo, 7); err != nil {
		t.Fatal(err)
	}
	if p := n.TopologyPriority("plain"); p != 7 {
		t.Errorf("override priority = %d, want 7", p)
	}
	if err := n.SubmitTopologyWithPriority(tenantTopo(t, "neg", 1, 100, 0), -1); err == nil {
		t.Error("negative priority accepted")
	}
}

// fillCluster submits and schedules four low-priority tenants that
// together consume ~20.6 GB of the 12-node testbed's 24 GB.
func fillCluster(t *testing.T, n *Nimbus) []string {
	t.Helper()
	names := []string{"batch-a", "batch-b", "batch-c", "batch-d"}
	for _, name := range names {
		if err := n.SubmitTopology(tenantTopo(t, name, 5, 1000, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.RunSchedulingRound(); len(got) != 4 {
		t.Fatalf("fill round scheduled %v", got)
	}
	return names
}

func TestEvictionAdmitsHighPriorityAndRequeuesVictims(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	startAll(t, n, c)
	fillCluster(t, n)

	// High-priority arrival needing ~7.1 GB: free memory is ~3.4 GB, so
	// victims must fall.
	if err := n.SubmitTopology(tenantTopo(t, "prod", 7, 1000, 8)); err != nil {
		t.Fatal(err)
	}
	got := n.RunSchedulingRound()
	if len(got) != 1 || got[0] != "prod" {
		t.Fatalf("round scheduled %v, want [prod]", got)
	}
	evs := n.Evictions()
	if len(evs) == 0 {
		t.Fatal("no evictions recorded")
	}
	for _, e := range evs {
		if e.For != "prod" || e.ForPriority != 8 {
			t.Errorf("eviction %+v not attributed to prod@8", e)
		}
		if n.Assignment(e.Victim) != nil {
			t.Errorf("victim %s still has an assignment", e.Victim)
		}
		if n.Store().Exists("/assignments/" + e.Victim) {
			t.Errorf("victim %s assignment still in store", e.Victim)
		}
	}
	// Victims are re-queued as pending, full topologies awaiting capacity.
	pending := n.Pending()
	if len(pending) != len(evs) {
		t.Fatalf("pending = %v, want the %d victims", pending, len(evs))
	}
	// The cluster is still full: a retry round admits nothing new and
	// must not thrash (no further evictions — victims are the lowest
	// priority around).
	if got := n.RunSchedulingRound(); len(got) != 0 {
		t.Fatalf("retry round scheduled %v on a full cluster", got)
	}
	if len(n.Evictions()) != len(evs) {
		t.Fatalf("retry round evicted more: %v", n.Evictions())
	}
}

func TestEvictedTopologyReadmittedOnCapacityRecovery(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	startAll(t, n, c)
	fillCluster(t, n)
	if err := n.SubmitTopology(tenantTopo(t, "prod", 7, 1000, 8)); err != nil {
		t.Fatal(err)
	}
	n.RunSchedulingRound()
	victims := n.Pending()
	if len(victims) == 0 {
		t.Fatal("no victims pending")
	}

	// Capacity recovers: a surviving batch tenant finishes. The next
	// round readmits the evicted victim in full.
	var survivor string
	for _, name := range []string{"batch-a", "batch-b", "batch-c", "batch-d"} {
		if n.Assignment(name) != nil {
			survivor = name
			break
		}
	}
	if survivor == "" {
		t.Fatal("no surviving batch tenant")
	}
	if err := n.KillTopology(survivor); err != nil {
		t.Fatalf("Kill(%s): %v", survivor, err)
	}
	got := n.RunSchedulingRound()
	if len(got) == 0 {
		t.Fatalf("no victim readmitted after capacity recovery; pending %v", n.Pending())
	}
	readmitted := got[0]
	if readmitted != victims[0] {
		t.Errorf("readmitted %s, want first-queued victim %s", readmitted, victims[0])
	}
	a := n.Assignment(readmitted)
	if a == nil {
		t.Fatalf("%s has no assignment after readmission", readmitted)
	}
	topo := tenantTopo(t, readmitted, 5, 1000, 0)
	if !a.Complete(topo) {
		t.Errorf("%s readmitted with a partial assignment", readmitted)
	}
}

func TestStatServerServesPriorityAndEvictions(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	startAll(t, n, c)
	fillCluster(t, n)
	if err := n.SubmitTopology(tenantTopo(t, "prod", 7, 1000, 8)); err != nil {
		t.Fatal(err)
	}
	n.RunSchedulingRound()
	srv := NewStatisticServer(n)

	// /summary: per-topology priority plus the eviction history.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/summary", nil))
	if rec.Code != 200 {
		t.Fatalf("/summary status %d", rec.Code)
	}
	var sum ClusterSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatalf("decode summary: %v", err)
	}
	var prodSeen bool
	for _, ts := range sum.Topologies {
		if ts.Name == "prod" {
			prodSeen = true
			if ts.Priority != 8 {
				t.Errorf("summary priority for prod = %d, want 8", ts.Priority)
			}
		}
	}
	if !prodSeen {
		t.Error("prod missing from summary")
	}
	if len(sum.Evictions) == 0 {
		t.Error("summary carries no eviction history")
	}

	// /evictions: the dedicated history route round-trips.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/evictions", nil))
	if rec.Code != 200 {
		t.Fatalf("/evictions status %d", rec.Code)
	}
	var evs []EvictionEvent
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatalf("decode evictions: %v", err)
	}
	if len(evs) != len(n.Evictions()) {
		t.Errorf("/evictions served %d events, master has %d", len(evs), len(n.Evictions()))
	}
	for _, e := range evs {
		if e.For != "prod" {
			t.Errorf("eviction %+v not attributed to prod", e)
		}
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/evictions", nil))
	if rec.Code != 405 {
		t.Errorf("POST /evictions status %d, want 405", rec.Code)
	}
}

// TestRoundLogsInterleaveInConsiderationOrder pins /events parity with
// the FIFO round the cluster pass replaced: with every priority zero, a
// round over [fits, infeasible, fits] logs scheduled/failed lines in
// submission order, not grouped by outcome.
func TestRoundLogsInterleaveInConsiderationOrder(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	startAll(t, n, c)
	for _, topo := range []*topology.Topology{
		tenantTopo(t, "first", 2, 400, 0),
		tenantTopo(t, "huge", 1, 3000, 0), // no node can ever host it
		tenantTopo(t, "last", 2, 400, 0),
	} {
		if err := n.SubmitTopology(topo); err != nil {
			t.Fatal(err)
		}
	}
	n.RunSchedulingRound()
	var outcomes []string
	for _, e := range n.Events() {
		if strings.Contains(e, `scheduled "first"`) || strings.Contains(e, `scheduling "huge" failed`) ||
			strings.Contains(e, `scheduled "last"`) {
			outcomes = append(outcomes, e)
		}
	}
	if len(outcomes) != 3 {
		t.Fatalf("outcome lines = %v", outcomes)
	}
	if !strings.Contains(outcomes[0], `"first"`) || !strings.Contains(outcomes[1], `"huge"`) ||
		!strings.Contains(outcomes[2], `"last"`) {
		t.Errorf("outcome lines out of submission order: %v", outcomes)
	}
}
