// Package nimbus models Storm's master daemon (§2): it tracks supervisor
// membership through the state store (the Zookeeper analogue), accepts
// topology submissions, periodically invokes the configured scheduler
// (§5: "The Storm scheduler is invoked by Nimbus periodically"), and
// reschedules topologies when supervisors fail.
package nimbus

import (
	"fmt"
	"sort"
	"sync"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/statestore"
	"rstorm/internal/topology"
	"rstorm/internal/trace"
)

// State-store layout.
const (
	supervisorsPath = "/supervisors"
	topologiesPath  = "/topologies"
	assignmentsPath = "/assignments"
)

// EvictionEvent is one entry of the master's eviction history: a tenant
// unassigned by a scheduling round to admit a higher-priority arrival.
type EvictionEvent struct {
	// Victim is the evicted topology; Priority its priority at eviction.
	Victim   string `json:"victim"`
	Priority int    `json:"priority"`
	// For is the admitted topology the eviction made room for, and
	// ForPriority its priority.
	For         string `json:"for"`
	ForPriority int    `json:"forPriority"`
	// Round is the scheduling round (0-based) the eviction happened in.
	Round int `json:"round"`
}

// Nimbus is the master daemon. It is safe for concurrent use.
type Nimbus struct {
	mu         sync.Mutex
	cluster    *cluster.Cluster
	store      *statestore.Store
	state      *core.GlobalState
	scheduler  core.Scheduler
	topologies map[string]*topology.Topology
	pending    []string
	alive      map[cluster.NodeID]bool
	events     []string

	// Multi-tenant metadata: per-topology priority and admission sequence
	// (FIFO tie-break and deterministic eviction order), the monotonically
	// increasing submission counter, the round counter, and the eviction
	// history.
	priorities map[string]int
	seqs       map[string]int
	nextSeq    int
	rounds     int
	evictions  []EvictionEvent

	// detector is the heartbeat failure detector (detector.go); nil until
	// EnableFailureDetector.
	detector *detector

	// journal is the shared decision journal (nil until SetJournal). The
	// master has no virtual clock, so its events carry At 0 — the
	// journal's sequence number is their causal order. evictedSet tracks
	// evicted-and-still-pending tenants so their eventual re-admission is
	// journaled as such.
	journal    *trace.Journal
	evictedSet map[string]bool
}

// New returns a Nimbus over the cluster using the given scheduler. Nodes
// contribute resources only after their supervisor registers (§5: machines
// "send their resource availability to Nimbus").
func New(c *cluster.Cluster, sched core.Scheduler) (*Nimbus, error) {
	store := statestore.New()
	for _, p := range []string{supervisorsPath, topologiesPath, assignmentsPath} {
		if err := store.Create(p, nil, 0); err != nil {
			return nil, fmt.Errorf("init store: %w", err)
		}
	}
	state := core.NewGlobalState(c)
	for _, id := range c.NodeIDs() {
		state.ReleaseNode(id) // unavailable until its supervisor joins
	}
	return &Nimbus{
		cluster:    c,
		store:      store,
		state:      state,
		scheduler:  sched,
		topologies: make(map[string]*topology.Topology),
		alive:      make(map[cluster.NodeID]bool),
		priorities: make(map[string]int),
		seqs:       make(map[string]int),
	}, nil
}

// SetJournal attaches a decision journal: scheduling rounds, evictions,
// re-admissions, node health transitions, and failover repairs are
// recorded as reason-coded trace.Events alongside the human-readable
// Events() log. Pass the same journal to the simulator and adaptive loop
// to get one causally-ordered stream across all three layers. Nil
// detaches. Safe to call at any time.
func (n *Nimbus) SetJournal(j *trace.Journal) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.journal = j
}

// Journal returns the attached decision journal, or nil.
func (n *Nimbus) Journal() *trace.Journal {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.journal
}

// journalRecord appends one master event to the attached journal (no-op
// without one). Caller holds n.mu.
func (n *Nimbus) journalRecord(code, topo, node, detail string) {
	if n.journal != nil {
		n.journal.Record(0, code, topo, node, -1, detail)
	}
}

// Store exposes the coordination store (for supervisors and tests).
func (n *Nimbus) Store() *statestore.Store { return n.store }

// State exposes the global scheduling state.
func (n *Nimbus) State() *core.GlobalState { return n.state }

// Scheduler returns the configured scheduler.
func (n *Nimbus) Scheduler() core.Scheduler { return n.scheduler }

// AliveSupervisors returns the registered supervisor node IDs, sorted.
func (n *Nimbus) AliveSupervisors() []cluster.NodeID {
	names, err := n.store.Children(supervisorsPath)
	if err != nil {
		return nil
	}
	out := make([]cluster.NodeID, 0, len(names))
	for _, name := range names {
		out = append(out, cluster.NodeID(name))
	}
	return out
}

// SubmitTopology queues a topology for scheduling at the next round, at
// the priority the topology itself declares (Builder.SetPriority; zero
// means none — plain FIFO admission).
func (n *Nimbus) SubmitTopology(topo *topology.Topology) error {
	return n.SubmitTopologyWithPriority(topo, topo.Priority())
}

// SubmitTopologyWithPriority queues a topology at an explicit priority,
// overriding the topology's own declaration — the operator-facing knob
// (Storm's topology.priority, inverted: higher wins here). A
// higher-priority submission is admitted before lower-priority pending
// work and may evict lower-priority running tenants when the cluster is
// full.
func (n *Nimbus) SubmitTopologyWithPriority(topo *topology.Topology, priority int) error {
	if priority < 0 {
		return fmt.Errorf("priority %d is negative", priority)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	name := topo.Name()
	if _, dup := n.topologies[name]; dup {
		return fmt.Errorf("topology %q already submitted", name)
	}
	if err := n.store.Create(topologiesPath+"/"+name, []byte(name), 0); err != nil {
		return fmt.Errorf("register topology: %w", err)
	}
	n.topologies[name] = topo
	n.priorities[name] = priority
	n.seqs[name] = n.nextSeq
	n.nextSeq++
	n.pending = append(n.pending, name)
	if priority > 0 {
		n.logf("submitted topology %q (%d tasks, priority %d)", name, topo.TotalTasks(), priority)
	} else {
		n.logf("submitted topology %q (%d tasks)", name, topo.TotalTasks())
	}
	return nil
}

// TopologyPriority returns a submitted topology's priority (zero when
// unset or unknown).
func (n *Nimbus) TopologyPriority(name string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.priorities[name]
}

// Evictions returns the master's eviction history, oldest first.
func (n *Nimbus) Evictions() []EvictionEvent {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]EvictionEvent, len(n.evictions))
	copy(out, n.evictions)
	return out
}

// KillTopology releases a topology's resources and forgets it.
func (n *Nimbus) KillTopology(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.topologies[name]; !ok {
		return fmt.Errorf("topology %q is not submitted", name)
	}
	n.state.Remove(name)
	delete(n.topologies, name)
	delete(n.priorities, name)
	delete(n.seqs, name)
	delete(n.evictedSet, name)
	n.dropPendingLocked(name)
	_ = n.store.Delete(assignmentsPath + "/" + name)
	_ = n.store.Delete(topologiesPath + "/" + name)
	n.logf("killed topology %q", name)
	return nil
}

// Assignment returns the recorded assignment of a topology, or nil.
func (n *Nimbus) Assignment(name string) *core.Assignment {
	return n.state.Assignment(name)
}

// Pending returns the names of unscheduled topologies, in submission order.
func (n *Nimbus) Pending() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.pending))
	copy(out, n.pending)
	return out
}

// RunSchedulingRound runs one cluster-level scheduling pass
// (core.ClusterSchedule): pending topologies are admitted in descending
// priority (FIFO within a priority), and an infeasible higher-priority
// arrival may evict lower-priority running tenants — each victim's
// complete assignment is torn down and the victim re-queued as pending,
// so it is rescheduled in full once capacity recovers. It returns the
// names scheduled this round; topologies that cannot be placed (even
// after permissible evictions) stay pending with the error logged,
// matching Nimbus's periodic retry behaviour. With every priority zero
// this is exactly the old FIFO round.
func (n *Nimbus) RunSchedulingRound() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	round := n.rounds
	n.rounds++

	var pending []core.Tenant
	for _, name := range n.pending {
		topo := n.topologies[name]
		if topo == nil {
			continue
		}
		pending = append(pending, core.Tenant{
			Topo:     topo,
			Priority: n.priorities[name],
			Seq:      n.seqs[name],
		})
	}
	if len(pending) == 0 {
		n.pending = nil
		return nil
	}
	// Build the active-tenant list in sorted name order: it feeds
	// eviction-victim selection inside ClusterSchedule, so map-iteration
	// order here would make placement decisions run-dependent.
	names := make([]string, 0, len(n.topologies))
	for name := range n.topologies {
		names = append(names, name)
	}
	sort.Strings(names)
	var active []core.Tenant
	for _, name := range names {
		if n.state.Assignment(name) == nil {
			continue
		}
		active = append(active, core.Tenant{
			Topo:     n.topologies[name],
			Priority: n.priorities[name],
			Seq:      n.seqs[name],
		})
	}

	res := core.ClusterSchedule(n.scheduler, n.cluster, n.state, pending, active)

	// Tear down evicted store state and record the history, in eviction
	// order.
	var requeued []string
	for _, e := range res.Evicted {
		_ = n.store.Delete(assignmentsPath + "/" + e.Victim)
		n.evictions = append(n.evictions, EvictionEvent{
			Victim:      e.Victim,
			Priority:    e.Priority,
			For:         e.For,
			ForPriority: n.priorities[e.For],
			Round:       round,
		})
		requeued = append(requeued, e.Victim)
		if n.evictedSet == nil {
			n.evictedSet = make(map[string]bool)
		}
		n.evictedSet[e.Victim] = true
		n.journalRecord(trace.CodeEviction, e.Victim, "",
			fmt.Sprintf("priority=%d for=%s round=%d", e.Priority, e.For, round))
	}
	// Log per-tenant outcomes in the pass's consideration order — with
	// every priority zero this interleaves scheduled and failed lines
	// exactly as the FIFO round it replaced did. An admission's evictions
	// log immediately before its scheduled line.
	considered := append([]string(nil), res.ScheduledOrder...)
	considered = append(considered, res.FailedOrder...)
	sort.SliceStable(considered, func(i, j int) bool {
		if n.priorities[considered[i]] != n.priorities[considered[j]] {
			return n.priorities[considered[i]] > n.priorities[considered[j]]
		}
		return n.seqs[considered[i]] < n.seqs[considered[j]]
	})
	for _, name := range considered {
		if a, ok := res.Scheduled[name]; ok {
			for _, e := range res.Evicted {
				if e.For == name {
					n.logf("evicted topology %q (priority %d) to admit %q (priority %d); re-queued",
						e.Victim, e.Priority, e.For, n.priorities[e.For])
				}
			}
			n.persistAssignment(name, a)
			n.logf("scheduled %q on %d nodes via %s", name, len(a.NodesUsed()), a.Scheduler)
			if n.evictedSet[name] {
				delete(n.evictedSet, name)
				n.journalRecord(trace.CodeReadmission, name, "",
					fmt.Sprintf("round=%d", round))
			}
			continue
		}
		n.logf("scheduling %q failed: %v", name, res.Failed[name])
	}

	// Pending set for the next round. The list order is cosmetic
	// (admission order is always priority, then submission sequence):
	// an evicted victim keeps its original sequence, so within its
	// priority it retains submission seniority over later arrivals —
	// losing its slot to a higher priority does not also forfeit its
	// place in line.
	var still []string
	for _, name := range n.pending {
		if _, ok := res.Scheduled[name]; !ok && n.topologies[name] != nil {
			still = append(still, name)
		}
	}
	n.pending = append(still, requeued...)
	n.journalRecord(trace.CodeSchedulingRound, "", "",
		fmt.Sprintf("round=%d scheduled=%d failed=%d evicted=%d pending=%d",
			round, len(res.ScheduledOrder), len(res.FailedOrder),
			len(res.Evicted), len(n.pending)))
	return res.ScheduledOrder
}

// Tick is one periodic master cycle: detect membership changes, then run a
// scheduling round.
func (n *Nimbus) Tick() []string {
	n.DetectFailures()
	return n.RunSchedulingRound()
}

// DetectFailures reconciles the alive set against the store's supervisor
// membership. Topologies with tasks on vanished nodes are torn down and
// requeued for a full reschedule.
func (n *Nimbus) DetectFailures() []cluster.NodeID {
	registered := make(map[cluster.NodeID]bool)
	for _, id := range n.AliveSupervisors() {
		registered[id] = true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	var lost []cluster.NodeID
	for id := range n.alive {
		if !registered[id] {
			lost = append(lost, id)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	for _, id := range lost {
		delete(n.alive, id)
		affected := n.state.ReleaseNode(id)
		n.logf("supervisor %s lost; %d topologies affected", id, len(affected))
		for _, name := range affected {
			n.state.Remove(name)
			_ = n.store.Delete(assignmentsPath + "/" + name)
			if _, known := n.topologies[name]; known {
				n.dropPendingLocked(name)
				n.pending = append(n.pending, name)
				n.logf("requeued topology %q after failure of %s", name, id)
			}
		}
	}
	return lost
}

// Events returns the master's action log.
func (n *Nimbus) Events() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.events))
	copy(out, n.events)
	return out
}

// registerSupervisor is called by Supervisor on join.
func (n *Nimbus) registerSupervisor(id cluster.NodeID) error {
	if n.cluster.Node(id) == nil {
		return fmt.Errorf("unknown node %q", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.alive[id] {
		return fmt.Errorf("supervisor %q already registered", id)
	}
	if d := n.detector; d != nil {
		if h := d.nodes[id]; h != nil && (h.state == HealthDead || h.state == HealthRecovering) {
			// Flap-damping hold-down: a node the detector saw die rejoins
			// without capacity. lastSeq -1 makes the registration payload's
			// seq 0 count as the first fresh beat; HeartbeatTick restores
			// capacity once FlapDamping beats accumulate.
			h.state = HealthRecovering
			h.lastSeq = -1
			h.healthy = 0
			n.alive[id] = true
			n.logf("supervisor %s rejoined; held down for flap damping", id)
			return nil
		}
	}
	if err := n.state.RestoreNode(id); err != nil {
		return err
	}
	n.alive[id] = true
	n.logf("supervisor %s joined", id)
	return nil
}

// persistAssignment writes an assignment to the coordination store,
// creating or overwriting its node.
func (n *Nimbus) persistAssignment(name string, a *core.Assignment) {
	data, err := EncodeAssignment(a)
	if err != nil {
		return
	}
	path := assignmentsPath + "/" + name
	if n.store.Exists(path) {
		_ = n.store.Set(path, data)
	} else {
		_ = n.store.Create(path, data, 0)
	}
}

func (n *Nimbus) dropPendingLocked(name string) {
	out := n.pending[:0]
	for _, p := range n.pending {
		if p != name {
			out = append(out, p)
		}
	}
	n.pending = out
}

func (n *Nimbus) logf(format string, args ...any) {
	n.events = append(n.events, fmt.Sprintf(format, args...))
}
