// Package nimbus models Storm's master daemon (§2): it tracks supervisor
// membership through the state store (the Zookeeper analogue), accepts
// topology submissions, periodically invokes the configured scheduler
// (§5: "The Storm scheduler is invoked by Nimbus periodically"), and
// reschedules topologies when supervisors fail.
package nimbus

import (
	"fmt"
	"sort"
	"sync"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/statestore"
	"rstorm/internal/topology"
)

// State-store layout.
const (
	supervisorsPath = "/supervisors"
	topologiesPath  = "/topologies"
	assignmentsPath = "/assignments"
)

// Nimbus is the master daemon. It is safe for concurrent use.
type Nimbus struct {
	mu         sync.Mutex
	cluster    *cluster.Cluster
	store      *statestore.Store
	state      *core.GlobalState
	scheduler  core.Scheduler
	topologies map[string]*topology.Topology
	pending    []string
	alive      map[cluster.NodeID]bool
	events     []string
}

// New returns a Nimbus over the cluster using the given scheduler. Nodes
// contribute resources only after their supervisor registers (§5: machines
// "send their resource availability to Nimbus").
func New(c *cluster.Cluster, sched core.Scheduler) (*Nimbus, error) {
	store := statestore.New()
	for _, p := range []string{supervisorsPath, topologiesPath, assignmentsPath} {
		if err := store.Create(p, nil, 0); err != nil {
			return nil, fmt.Errorf("init store: %w", err)
		}
	}
	state := core.NewGlobalState(c)
	for _, id := range c.NodeIDs() {
		state.ReleaseNode(id) // unavailable until its supervisor joins
	}
	return &Nimbus{
		cluster:    c,
		store:      store,
		state:      state,
		scheduler:  sched,
		topologies: make(map[string]*topology.Topology),
		alive:      make(map[cluster.NodeID]bool),
	}, nil
}

// Store exposes the coordination store (for supervisors and tests).
func (n *Nimbus) Store() *statestore.Store { return n.store }

// State exposes the global scheduling state.
func (n *Nimbus) State() *core.GlobalState { return n.state }

// Scheduler returns the configured scheduler.
func (n *Nimbus) Scheduler() core.Scheduler { return n.scheduler }

// AliveSupervisors returns the registered supervisor node IDs, sorted.
func (n *Nimbus) AliveSupervisors() []cluster.NodeID {
	names, err := n.store.Children(supervisorsPath)
	if err != nil {
		return nil
	}
	out := make([]cluster.NodeID, 0, len(names))
	for _, name := range names {
		out = append(out, cluster.NodeID(name))
	}
	return out
}

// SubmitTopology queues a topology for scheduling at the next round.
func (n *Nimbus) SubmitTopology(topo *topology.Topology) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	name := topo.Name()
	if _, dup := n.topologies[name]; dup {
		return fmt.Errorf("topology %q already submitted", name)
	}
	if err := n.store.Create(topologiesPath+"/"+name, []byte(name), 0); err != nil {
		return fmt.Errorf("register topology: %w", err)
	}
	n.topologies[name] = topo
	n.pending = append(n.pending, name)
	n.logf("submitted topology %q (%d tasks)", name, topo.TotalTasks())
	return nil
}

// KillTopology releases a topology's resources and forgets it.
func (n *Nimbus) KillTopology(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.topologies[name]; !ok {
		return fmt.Errorf("topology %q is not submitted", name)
	}
	n.state.Remove(name)
	delete(n.topologies, name)
	n.dropPendingLocked(name)
	_ = n.store.Delete(assignmentsPath + "/" + name)
	_ = n.store.Delete(topologiesPath + "/" + name)
	n.logf("killed topology %q", name)
	return nil
}

// Assignment returns the recorded assignment of a topology, or nil.
func (n *Nimbus) Assignment(name string) *core.Assignment {
	return n.state.Assignment(name)
}

// Pending returns the names of unscheduled topologies, in submission order.
func (n *Nimbus) Pending() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.pending))
	copy(out, n.pending)
	return out
}

// RunSchedulingRound schedules every pending topology, applying successful
// assignments atomically. It returns the names scheduled this round;
// topologies that cannot be placed stay pending (with the error logged),
// matching Nimbus's periodic retry behaviour.
func (n *Nimbus) RunSchedulingRound() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	var scheduled []string
	var still []string
	for _, name := range n.pending {
		topo := n.topologies[name]
		if topo == nil {
			continue
		}
		a, err := n.scheduler.Schedule(topo, n.cluster, n.state)
		if err != nil {
			n.logf("scheduling %q failed: %v", name, err)
			still = append(still, name)
			continue
		}
		if err := n.state.Apply(topo, a); err != nil {
			n.logf("applying assignment for %q failed: %v", name, err)
			still = append(still, name)
			continue
		}
		n.persistAssignment(name, a)
		n.logf("scheduled %q on %d nodes via %s", name, len(a.NodesUsed()), a.Scheduler)
		scheduled = append(scheduled, name)
	}
	n.pending = still
	return scheduled
}

// Tick is one periodic master cycle: detect membership changes, then run a
// scheduling round.
func (n *Nimbus) Tick() []string {
	n.DetectFailures()
	return n.RunSchedulingRound()
}

// DetectFailures reconciles the alive set against the store's supervisor
// membership. Topologies with tasks on vanished nodes are torn down and
// requeued for a full reschedule.
func (n *Nimbus) DetectFailures() []cluster.NodeID {
	registered := make(map[cluster.NodeID]bool)
	for _, id := range n.AliveSupervisors() {
		registered[id] = true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	var lost []cluster.NodeID
	for id := range n.alive {
		if !registered[id] {
			lost = append(lost, id)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	for _, id := range lost {
		delete(n.alive, id)
		affected := n.state.ReleaseNode(id)
		n.logf("supervisor %s lost; %d topologies affected", id, len(affected))
		for _, name := range affected {
			n.state.Remove(name)
			_ = n.store.Delete(assignmentsPath + "/" + name)
			if _, known := n.topologies[name]; known {
				n.dropPendingLocked(name)
				n.pending = append(n.pending, name)
				n.logf("requeued topology %q after failure of %s", name, id)
			}
		}
	}
	return lost
}

// Events returns the master's action log.
func (n *Nimbus) Events() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.events))
	copy(out, n.events)
	return out
}

// registerSupervisor is called by Supervisor on join.
func (n *Nimbus) registerSupervisor(id cluster.NodeID) error {
	if n.cluster.Node(id) == nil {
		return fmt.Errorf("unknown node %q", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.alive[id] {
		return fmt.Errorf("supervisor %q already registered", id)
	}
	if err := n.state.RestoreNode(id); err != nil {
		return err
	}
	n.alive[id] = true
	n.logf("supervisor %s joined", id)
	return nil
}

// persistAssignment writes an assignment to the coordination store,
// creating or overwriting its node.
func (n *Nimbus) persistAssignment(name string, a *core.Assignment) {
	data, err := EncodeAssignment(a)
	if err != nil {
		return
	}
	path := assignmentsPath + "/" + name
	if n.store.Exists(path) {
		_ = n.store.Set(path, data)
	} else {
		_ = n.store.Create(path, data, 0)
	}
}

func (n *Nimbus) dropPendingLocked(name string) {
	out := n.pending[:0]
	for _, p := range n.pending {
		if p != name {
			out = append(out, p)
		}
	}
	n.pending = out
}

func (n *Nimbus) logf(format string, args ...any) {
	n.events = append(n.events, fmt.Sprintf(format, args...))
}
