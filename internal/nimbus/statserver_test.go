package nimbus

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rstorm/internal/core"
)

// statServerFixture builds a Nimbus with one scheduled topology and its
// StatisticServer.
func statServerFixture(t *testing.T) (*Nimbus, *httptest.Server) {
	t.Helper()
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	startAll(t, n, c)
	if err := n.SubmitTopology(testTopo(t, "served", 4)); err != nil {
		t.Fatal(err)
	}
	if got := n.RunSchedulingRound(); len(got) != 1 {
		t.Fatalf("scheduled %v", got)
	}
	srv := httptest.NewServer(NewStatisticServer(n))
	t.Cleanup(srv.Close)
	return n, srv
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

func TestStatServerSummary(t *testing.T) {
	_, srv := statServerFixture(t)
	var summary ClusterSummary
	getJSON(t, srv.URL+"/summary", &summary)
	if summary.AliveSupervisors != 12 {
		t.Errorf("supervisors = %d", summary.AliveSupervisors)
	}
	if len(summary.Topologies) != 1 || summary.Topologies[0].Name != "served" {
		t.Errorf("topologies = %+v", summary.Topologies)
	}
	if summary.Topologies[0].Tasks != 8 {
		t.Errorf("tasks = %d", summary.Topologies[0].Tasks)
	}
	if len(summary.NodeAvailable) != 12 {
		t.Errorf("nodes = %d", len(summary.NodeAvailable))
	}
}

func TestStatServerAssignments(t *testing.T) {
	n, srv := statServerFixture(t)
	var all map[string]json.RawMessage
	getJSON(t, srv.URL+"/assignments", &all)
	if len(all) != 1 {
		t.Fatalf("assignments = %v", all)
	}
	decoded, err := DecodeAssignment(all["served"])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(decoded.Placements) != len(n.Assignment("served").Placements) {
		t.Error("assignment mismatch over HTTP")
	}

	var one map[string]any
	getJSON(t, srv.URL+"/assignments/served", &one)
	if one["topology"] != "served" {
		t.Errorf("single assignment = %v", one)
	}

	resp, err := http.Get(srv.URL + "/assignments/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ghost status = %d", resp.StatusCode)
	}
}

func TestStatServerEvents(t *testing.T) {
	_, srv := statServerFixture(t)
	var events []string
	getJSON(t, srv.URL+"/events", &events)
	joined := strings.Join(events, "\n")
	if !strings.Contains(joined, "scheduled") {
		t.Errorf("events = %v", events)
	}
}

func TestStatServerMethodNotAllowed(t *testing.T) {
	_, srv := statServerFixture(t)
	for _, path := range []string{"/summary", "/assignments", "/assignments/served", "/events"} {
		resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s status = %d", path, resp.StatusCode)
		}
	}
}

func TestRebalance(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatal(err)
	}
	// Start only half the supervisors: the topology packs onto rack-0.
	for _, id := range c.NodeIDs()[:6] {
		if _, err := n.StartSupervisor(id); err != nil {
			t.Fatal(err)
		}
	}
	topo := testTopo(t, "growing", 6)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatal(err)
	}
	if got := n.RunSchedulingRound(); len(got) != 1 {
		t.Fatalf("scheduled %v", got)
	}
	before := n.Assignment("growing")

	// The other rack joins; rebalance reschedules with the new capacity.
	for _, id := range c.NodeIDs()[6:] {
		if _, err := n.StartSupervisor(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.RebalanceTopology("growing"); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if n.Assignment("growing") != nil {
		t.Error("assignment should be torn down until the next round")
	}
	if got := n.RunSchedulingRound(); len(got) != 1 {
		t.Fatalf("reschedule round = %v", got)
	}
	after := n.Assignment("growing")
	if after == nil || after == before {
		t.Fatal("no fresh assignment after rebalance")
	}
	if err := n.RebalanceTopology("ghost"); err == nil {
		t.Error("rebalancing unknown topology accepted")
	}
}
