package nimbus

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// beatExcept heartbeats every supervisor except the listed victims.
func beatExcept(t *testing.T, sups map[cluster.NodeID]*Supervisor, victims ...cluster.NodeID) {
	t.Helper()
	skip := make(map[cluster.NodeID]bool, len(victims))
	for _, v := range victims {
		skip[v] = true
	}
	for id, sv := range sups {
		if skip[id] {
			continue
		}
		if err := sv.Heartbeat(); err != nil {
			t.Fatalf("Heartbeat(%s): %v", id, err)
		}
	}
}

// victimNode picks a node hosting tasks of the named topology.
func victimNode(t *testing.T, n *Nimbus, name string) cluster.NodeID {
	t.Helper()
	a := n.Assignment(name)
	if a == nil {
		t.Fatalf("no assignment for %q", name)
	}
	used := a.NodesUsed()
	if len(used) == 0 {
		t.Fatalf("assignment for %q uses no nodes", name)
	}
	return used[0]
}

func nodeState(t *testing.T, n *Nimbus, id cluster.NodeID) NodeHealthStatus {
	t.Helper()
	for _, ns := range n.DetectorStatus().Nodes {
		if ns.Node == string(id) {
			return ns
		}
	}
	t.Fatalf("node %s not tracked by detector", id)
	return NodeHealthStatus{}
}

func TestDetectorSuspectThenDead(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n.EnableFailureDetector(DetectorConfig{SuspectAfter: 2, DeadAfter: 3})
	sups := startAll(t, n, c)
	topo := testTopo(t, "wordcount", 4)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	n.RunSchedulingRound()
	before := n.Assignment("wordcount")
	victim := victimNode(t, n, "wordcount")

	n.HeartbeatTick() // first sight: every node tracked healthy
	if got := nodeState(t, n, victim).State; got != "healthy" {
		t.Fatalf("victim state = %s, want healthy", got)
	}

	// The victim's heartbeat wedges while its session stays alive; everyone
	// else keeps beating.
	beatExcept(t, sups, victim)
	if dead := n.HeartbeatTick(); len(dead) != 0 {
		t.Fatalf("dead after 1 missed beat: %v", dead)
	}
	if got := nodeState(t, n, victim).State; got != "healthy" {
		t.Fatalf("after 1 miss: state = %s, want healthy", got)
	}
	beatExcept(t, sups, victim)
	if dead := n.HeartbeatTick(); len(dead) != 0 {
		t.Fatalf("dead after 2 missed beats: %v", dead)
	}
	if got := nodeState(t, n, victim).State; got != "suspect" {
		t.Fatalf("after 2 misses: state = %s, want suspect", got)
	}
	// Suspicion is advisory: nothing moved yet.
	if len(n.Failovers()) != 0 {
		t.Fatalf("failovers while merely suspect: %v", n.Failovers())
	}

	beatExcept(t, sups, victim)
	dead := n.HeartbeatTick()
	if len(dead) != 1 || dead[0] != victim {
		t.Fatalf("dead after 3 missed beats = %v, want [%s]", dead, victim)
	}
	if got := nodeState(t, n, victim).State; got != "dead" {
		t.Fatalf("state = %s, want dead", got)
	}

	// The failover re-placed only the victim's tasks.
	events := n.Failovers()
	if len(events) != 1 {
		t.Fatalf("failover events = %v, want 1", events)
	}
	ev := events[0]
	if ev.Node != string(victim) || ev.Topology != "wordcount" || ev.Requeued {
		t.Fatalf("unexpected event %+v", ev)
	}
	after := n.Assignment("wordcount")
	if after == nil || !after.Complete(topo) {
		t.Fatal("assignment missing or incomplete after failover")
	}
	restarted := 0
	for _, task := range topo.Tasks() {
		was, now := before.Placements[task.ID], after.Placements[task.ID]
		if now.Node == victim {
			t.Fatalf("task %d still on dead node %s", task.ID, victim)
		}
		if was.Node == victim {
			restarted++
		} else if now != was {
			t.Fatalf("survivor task %d moved %v -> %v", task.ID, was, now)
		}
	}
	if restarted == 0 {
		t.Fatal("victim hosted no tasks; test is vacuous")
	}
	if ev.Moves < restarted {
		t.Fatalf("event moves = %d, want >= %d", ev.Moves, restarted)
	}
	// Dead capacity stays off the books for future rounds.
	if avail := n.State().AvailableAll()[victim]; avail != (resource.Vector{}) {
		t.Fatalf("dead node still has availability %+v", avail)
	}
	// Later ticks do not re-fire the failover.
	beatExcept(t, sups, victim)
	if dead := n.HeartbeatTick(); len(dead) != 0 {
		t.Fatalf("re-declared dead: %v", dead)
	}
	if len(n.Failovers()) != 1 {
		t.Fatalf("failover fired twice: %v", n.Failovers())
	}
}

func TestHeartbeatLossFailover(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n.EnableFailureDetector(DetectorConfig{})
	sups := startAll(t, n, c)
	topo := testTopo(t, "wordcount", 4)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	n.RunSchedulingRound()
	victim := victimNode(t, n, "wordcount")

	n.HeartbeatTick()
	// Session expiry: the supervisor's ephemeral presence vanishes. Death
	// is immediate — no missed-beat patience.
	if err := sups[victim].Fail(); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	dead := n.HeartbeatTick()
	if len(dead) != 1 || dead[0] != victim {
		t.Fatalf("dead = %v, want [%s]", dead, victim)
	}
	events := n.Failovers()
	if len(events) != 1 || events[0].Requeued {
		t.Fatalf("failovers = %v, want one incremental repair", events)
	}
	// The repaired assignment reached the coordination store.
	data, err := n.Store().Get(assignmentsPath + "/wordcount")
	if err != nil {
		t.Fatalf("stored assignment: %v", err)
	}
	stored, err := DecodeAssignment(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for _, task := range topo.Tasks() {
		if stored.Placements[task.ID].Node == victim {
			t.Fatalf("stored assignment leaves task %d on dead node", task.ID)
		}
	}
	// Legacy DetectFailures sees nothing left to do: the detector already
	// owned the death.
	if lost := n.DetectFailures(); len(lost) != 0 {
		t.Fatalf("DetectFailures double-handled: %v", lost)
	}
	if got := n.Assignment("wordcount"); got == nil {
		t.Fatal("DetectFailures tore down the repaired assignment")
	}
}

func TestFlapDampingHoldsRejoinedNode(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const hold = 3
	n.EnableFailureDetector(DetectorConfig{FlapDamping: hold})
	sups := startAll(t, n, c)
	topo := testTopo(t, "wordcount", 4)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	n.RunSchedulingRound()
	victim := victimNode(t, n, "wordcount")

	n.HeartbeatTick()
	if err := sups[victim].Fail(); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	n.HeartbeatTick()
	if got := nodeState(t, n, victim).State; got != "dead" {
		t.Fatalf("state = %s, want dead", got)
	}

	// The node rejoins, but its history makes it untrustworthy: it is held
	// down with zero capacity until it proves itself.
	sv, err := n.StartSupervisor(victim)
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	sups[victim] = sv
	if got := nodeState(t, n, victim).State; got != "recovering" {
		t.Fatalf("after rejoin: state = %s, want recovering", got)
	}
	if avail := n.State().AvailableAll()[victim]; avail != (resource.Vector{}) {
		t.Fatalf("held-down node has availability %+v", avail)
	}
	// New work must not land on it while held down.
	extra := testTopo(t, "extra", 2)
	if err := n.SubmitTopology(extra); err != nil {
		t.Fatalf("Submit extra: %v", err)
	}
	n.RunSchedulingRound()
	if a := n.Assignment("extra"); a != nil {
		for _, task := range extra.Tasks() {
			if a.Placements[task.ID].Node == victim {
				t.Fatalf("task placed on held-down node %s", victim)
			}
		}
	}

	// hold fresh beats re-earn trust. The registration payload itself
	// counts as the first.
	for i := 0; i < hold; i++ {
		if got := nodeState(t, n, victim).State; got != "recovering" {
			t.Fatalf("beat %d: state = %s, want recovering", i, got)
		}
		if i > 0 {
			if err := sv.Heartbeat(); err != nil {
				t.Fatalf("Heartbeat: %v", err)
			}
		}
		beatExcept(t, sups, victim)
		if dead := n.HeartbeatTick(); len(dead) != 0 {
			t.Fatalf("beat %d: died during recovery: %v", i, dead)
		}
	}
	if got := nodeState(t, n, victim).State; got != "healthy" {
		t.Fatalf("after %d fresh beats: state = %s, want healthy", hold, got)
	}
	want := c.Node(victim).Spec.Capacity
	if avail := n.State().AvailableAll()[victim]; avail != want {
		t.Fatalf("restored availability = %+v, want %+v", avail, want)
	}
}

func TestRecoveryStallReturnsNodeToDead(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n.EnableFailureDetector(DetectorConfig{FlapDamping: 5})
	sups := startAll(t, n, c)
	topo := testTopo(t, "wordcount", 4)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	n.RunSchedulingRound()
	victim := victimNode(t, n, "wordcount")

	n.HeartbeatTick()
	if err := sups[victim].Fail(); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	n.HeartbeatTick()
	sv, err := n.StartSupervisor(victim)
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	beatExcept(t, sups, victim)
	n.HeartbeatTick() // registration seq counts: recovering, 1 fresh beat
	if err := sv.Heartbeat(); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	beatExcept(t, sups, victim)
	n.HeartbeatTick()
	if got := nodeState(t, n, victim); got.State != "recovering" || got.Healthy != 2 {
		t.Fatalf("mid-recovery: %+v", got)
	}
	// It wedges again mid-recovery: straight back to dead, progress
	// forfeited, and no second failover (its tasks already moved).
	beatExcept(t, sups, victim)
	if dead := n.HeartbeatTick(); len(dead) != 0 {
		t.Fatalf("re-death of drained node fired failover: %v", dead)
	}
	got := nodeState(t, n, victim)
	if got.State != "dead" || got.Healthy != 0 {
		t.Fatalf("after stall: %+v, want dead with progress forfeited", got)
	}
	if len(n.Failovers()) != 1 {
		t.Fatalf("failovers = %v, want exactly the original one", n.Failovers())
	}
}

func TestFailoverRequeuesWhenNoCapacity(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n.EnableFailureDetector(DetectorConfig{})
	// Only two supervisors join: the topology must straddle both, and when
	// one dies the survivor cannot absorb its share.
	ids := c.NodeIDs()
	sups := make(map[cluster.NodeID]*Supervisor, 2)
	for _, id := range ids[:2] {
		sv, err := n.StartSupervisor(id)
		if err != nil {
			t.Fatalf("StartSupervisor(%s): %v", id, err)
		}
		sups[id] = sv
	}
	// Memory is the hard constraint (CPU is soft in R-Storm): 6 tasks of
	// 512 MB need 3072 MB, so the topology must straddle both 2048 MB
	// nodes, and no single survivor can absorb the other's share.
	bt := topology.NewBuilder("wordcount")
	bt.SetSpout("s", 3).SetCPULoad(20).SetMemoryLoad(512)
	bt.SetBolt("b", 3).ShuffleGrouping("s").SetCPULoad(30).SetMemoryLoad(512)
	topo, err := bt.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := n.RunSchedulingRound(); len(got) != 1 {
		t.Fatalf("initial schedule failed: %v", got)
	}
	victim := victimNode(t, n, "wordcount")

	n.HeartbeatTick()
	if err := sups[victim].Fail(); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	dead := n.HeartbeatTick()
	if len(dead) != 1 || dead[0] != victim {
		t.Fatalf("dead = %v, want [%s]", dead, victim)
	}
	events := n.Failovers()
	if len(events) != 1 || !events[0].Requeued {
		t.Fatalf("failovers = %v, want one requeue fallback", events)
	}
	if n.Assignment("wordcount") != nil {
		t.Fatal("infeasible topology kept a partial assignment")
	}
	if n.Store().Exists(assignmentsPath + "/wordcount") {
		t.Fatal("stale assignment left in store")
	}
	if got := n.Pending(); len(got) != 1 || got[0] != "wordcount" {
		t.Fatalf("pending = %v, want [wordcount]", got)
	}
	// Capacity returns: the pending topology schedules in full again.
	for _, id := range ids[2:4] {
		if _, err := n.StartSupervisor(id); err != nil {
			t.Fatalf("StartSupervisor(%s): %v", id, err)
		}
	}
	if got := n.RunSchedulingRound(); len(got) != 1 || got[0] != "wordcount" {
		t.Fatalf("reschedule = %v", got)
	}
	a := n.Assignment("wordcount")
	for _, task := range topo.Tasks() {
		if a.Placements[task.ID].Node == victim {
			t.Fatalf("rescheduled task %d on dead node", task.ID)
		}
	}
}

func TestFaultsRouteServesDetectorStatus(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := NewStatisticServer(n)

	// Disabled detector: the route 404s, like /adaptive when unattached.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/faults", nil))
	if rec.Code != 404 {
		t.Fatalf("/faults with detector off = %d, want 404", rec.Code)
	}

	n.EnableFailureDetector(DetectorConfig{})
	sups := startAll(t, n, c)
	topo := testTopo(t, "wordcount", 4)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	n.RunSchedulingRound()
	victim := victimNode(t, n, "wordcount")
	n.HeartbeatTick()
	if err := sups[victim].Fail(); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	n.HeartbeatTick()

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/faults", nil))
	if rec.Code != 200 {
		t.Fatalf("/faults = %d, want 200", rec.Code)
	}
	var status DetectorStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
		t.Fatalf("decode /faults: %v", err)
	}
	if !status.Enabled || status.SuspectAfter != 2 || status.DeadAfter != 4 || status.FlapDamping != 3 {
		t.Fatalf("status = %+v, want defaults reported", status)
	}
	if len(status.Events) != 1 || status.Events[0].Node != string(victim) {
		t.Fatalf("events = %+v", status.Events)
	}
	var deadReported bool
	for _, ns := range status.Nodes {
		if ns.Node == string(victim) && ns.State == "dead" {
			deadReported = true
		}
	}
	if !deadReported {
		t.Fatalf("victim not reported dead: %+v", status.Nodes)
	}
}

// TestDetectorConcurrentAccess exercises the detector under -race:
// heartbeat ticks, supervisor beats, status snapshots, and summaries all
// run at once.
func TestDetectorConcurrentAccess(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n.EnableFailureDetector(DetectorConfig{})
	sups := startAll(t, n, c)
	topo := testTopo(t, "wordcount", 4)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	n.RunSchedulingRound()

	const iters = 50
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			n.HeartbeatTick()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			for _, sv := range sups {
				_ = sv.Heartbeat()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = n.DetectorStatus()
			_ = n.Failovers()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = n.Summary()
		}
	}()
	wg.Wait()
}

// BenchmarkFailoverRound measures one detector tick that declares a node
// dead and incrementally re-places its tasks.
func BenchmarkFailoverRound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := cluster.Emulab12()
		if err != nil {
			b.Fatalf("Emulab12: %v", err)
		}
		n, err := New(c, core.NewResourceAwareScheduler())
		if err != nil {
			b.Fatalf("New: %v", err)
		}
		n.EnableFailureDetector(DetectorConfig{})
		sups := make(map[cluster.NodeID]*Supervisor)
		for _, id := range c.NodeIDs() {
			sv, err := n.StartSupervisor(id)
			if err != nil {
				b.Fatalf("StartSupervisor: %v", err)
			}
			sups[id] = sv
		}
		bt := topology.NewBuilder("bench")
		bt.SetSpout("s", 4).SetCPULoad(20).SetMemoryLoad(256)
		bt.SetBolt("b", 4).ShuffleGrouping("s").SetCPULoad(30).SetMemoryLoad(256)
		topo, err := bt.Build()
		if err != nil {
			b.Fatalf("Build: %v", err)
		}
		if err := n.SubmitTopology(topo); err != nil {
			b.Fatalf("Submit: %v", err)
		}
		n.RunSchedulingRound()
		n.HeartbeatTick()
		victim := n.Assignment("bench").NodesUsed()[0]
		if err := sups[victim].Fail(); err != nil {
			b.Fatalf("Fail: %v", err)
		}
		b.StartTimer()
		if dead := n.HeartbeatTick(); len(dead) != 1 {
			b.Fatalf("dead = %v", dead)
		}
	}
}
