package nimbus

import (
	"encoding/json"
	"fmt"

	"rstorm/internal/cluster"
	"rstorm/internal/statestore"
)

// HeartbeatPayload is what a supervisor publishes to the state store —
// R-Storm modifies Storm so machines "send their resource availability to
// Nimbus" (§5).
type HeartbeatPayload struct {
	Node     string  `json:"node"`
	CPU      float64 `json:"cpu"`
	MemoryMB float64 `json:"memoryMb"`
	Slots    int     `json:"slots"`
	Seq      int64   `json:"seq"`
}

// Supervisor is a worker node's daemon: it registers an ephemeral presence
// node bound to its session and heartbeats through it. Expiring the
// session models a machine failure.
type Supervisor struct {
	id      cluster.NodeID
	nimbus  *Nimbus
	session statestore.SessionID
	seq     int64
	failed  bool
}

// StartSupervisor registers a supervisor for a cluster node.
func (n *Nimbus) StartSupervisor(id cluster.NodeID) (*Supervisor, error) {
	if err := n.registerSupervisor(id); err != nil {
		return nil, err
	}
	node := n.cluster.Node(id)
	session := n.store.NewSession()
	sv := &Supervisor{id: id, nimbus: n, session: session}
	payload, err := json.Marshal(HeartbeatPayload{
		Node:     string(id),
		CPU:      node.Spec.Capacity.CPU,
		MemoryMB: node.Spec.Capacity.MemoryMB,
		Slots:    node.Spec.Slots,
	})
	if err != nil {
		return nil, fmt.Errorf("encode heartbeat: %w", err)
	}
	if err := n.store.Create(supervisorsPath+"/"+string(id), payload, session); err != nil {
		return nil, fmt.Errorf("register presence: %w", err)
	}
	return sv, nil
}

// ID returns the supervisor's node ID.
func (sv *Supervisor) ID() cluster.NodeID { return sv.id }

// Heartbeat publishes a fresh sequence number.
func (sv *Supervisor) Heartbeat() error {
	if sv.failed {
		return fmt.Errorf("supervisor %s has failed", sv.id)
	}
	sv.seq++
	node := sv.nimbus.cluster.Node(sv.id)
	payload, err := json.Marshal(HeartbeatPayload{
		Node:     string(sv.id),
		CPU:      node.Spec.Capacity.CPU,
		MemoryMB: node.Spec.Capacity.MemoryMB,
		Slots:    node.Spec.Slots,
		Seq:      sv.seq,
	})
	if err != nil {
		return fmt.Errorf("encode heartbeat: %w", err)
	}
	return sv.nimbus.store.Set(supervisorsPath+"/"+string(sv.id), payload)
}

// Fail simulates the machine dying: the session expires and the ephemeral
// presence node disappears. Nimbus notices at its next DetectFailures.
func (sv *Supervisor) Fail() error {
	if sv.failed {
		return fmt.Errorf("supervisor %s already failed", sv.id)
	}
	sv.failed = true
	return sv.nimbus.store.ExpireSession(sv.session)
}
