package nimbus

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rstorm/internal/adaptive"
	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/resource"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
)

// liarTopo declares every task light while the "work" stage is truly
// heavy, so a declaration-trusting schedule packs it onto one node.
func liarNimbusTopo(t *testing.T) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder("liar")
	b.SetSpout("s", 2).SetCPULoad(10).SetMemoryLoad(256)
	b.SetBolt("work", 6).ShuffleGrouping("s").SetCPULoad(10).SetMemoryLoad(256)
	b.SetBolt("z", 2).ShuffleGrouping("work").SetCPULoad(10).SetMemoryLoad(256)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func TestAdaptiveRebalanceMigratesOffenders(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	startAll(t, n, c)
	topo := liarNimbusTopo(t)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatal(err)
	}
	if got := n.RunSchedulingRound(); len(got) != 1 {
		t.Fatalf("scheduled %v", got)
	}
	before := n.Assignment("liar")

	// Measured truth arrives: each work task needs 80 points.
	moves, err := n.AdaptiveRebalance("liar", core.IncrementalOptions{
		Demands: map[string]resource.Vector{"work": {CPU: 80, MemoryMB: 256}},
		Margin:  0.15,
	})
	if err != nil {
		t.Fatalf("AdaptiveRebalance: %v", err)
	}
	if len(moves) == 0 || len(moves) >= topo.TotalTasks() {
		t.Fatalf("moves = %d, want within (0, %d)", len(moves), topo.TotalTasks())
	}
	after := n.Assignment("liar")
	if after == nil || after == before {
		t.Fatal("assignment not replaced")
	}
	if err := after.Validate(topo, c, resource.DefaultClasses()); err != nil {
		t.Fatalf("post-rebalance assignment invalid: %v", err)
	}
	// Only the recorded moves changed placements.
	movedSet := make(map[int]bool, len(moves))
	for _, m := range moves {
		movedSet[m.TaskID] = true
		if before.Placements[m.TaskID] != m.From || after.Placements[m.TaskID] != m.To {
			t.Errorf("move %v does not match assignments", m)
		}
	}
	for id, p := range before.Placements {
		if !movedSet[id] && after.Placements[id] != p {
			t.Errorf("task %d moved without a Move record", id)
		}
	}
	// Store round-trip reflects the new assignment.
	data, err := n.Store().Get("/assignments/liar")
	if err != nil {
		t.Fatalf("stored assignment: %v", err)
	}
	decoded, err := DecodeAssignment(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if decoded.Placements[moves[0].TaskID] != moves[0].To {
		t.Error("store not updated with migrated placement")
	}
	// Event logged.
	joined := strings.Join(n.Events(), "\n")
	if !strings.Contains(joined, "adaptive rebalance") {
		t.Errorf("events missing adaptive rebalance: %v", n.Events())
	}
}

func TestAdaptiveRebalanceValidation(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatal(err)
	}
	startAll(t, n, c)
	if _, err := n.AdaptiveRebalance("ghost", core.IncrementalOptions{}); err == nil {
		t.Error("unknown topology accepted")
	}
	topo := testTopo(t, "unsched", 2)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AdaptiveRebalance("unsched", core.IncrementalOptions{}); err == nil {
		t.Error("unscheduled topology accepted")
	}

	// Wrong scheduler kind.
	even, err := New(c, core.EvenScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	startAll(t, even, c)
	topo2 := testTopo(t, "even", 2)
	if err := even.SubmitTopology(topo2); err != nil {
		t.Fatal(err)
	}
	even.RunSchedulingRound()
	if _, err := even.AdaptiveRebalance("even", core.IncrementalOptions{}); err == nil ||
		!strings.Contains(err.Error(), "r-storm") {
		t.Errorf("even-scheduler rebalance err = %v", err)
	}
}

// TestAdaptiveRoute covers /adaptive with and without a controller, plus
// its method-not-allowed path.
func TestAdaptiveRoute(t *testing.T) {
	n, srv := statServerFixture(t)
	_ = n

	// Not attached: 404.
	resp, err := http.Get(srv.URL + "/adaptive")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unattached /adaptive status = %d, want 404", resp.StatusCode)
	}

	// Attached: serves the controller snapshot, including the runtime
	// memory model's measurements and thresholds.
	ctrl := adaptive.NewController(nil, nil, adaptive.ControllerConfig{})
	ctrl.OnWindow([]simulator.TaskSample{{
		Topology: "served", Component: "s", Node: cluster.NodeID("n0"),
		WindowEnd: 1e9, Slowdown: 1, NodeCPUCapacity: 100,
		ResidentMemMB: 1900, NodeMemCapacityMB: 2048,
		Edges: []simulator.EdgeRate{
			{DestTaskID: 1, DestComponent: "z", Tuples: 600, Remote: true},
			{DestTaskID: 2, DestComponent: "z", Tuples: 400},
		},
	}})
	srv2 := httptest.NewServer(NewStatisticServer(n, WithAdaptiveStatus(ctrl.Status)))
	t.Cleanup(srv2.Close)
	var status adaptive.ControllerStatus
	getJSON(t, srv2.URL+"/adaptive", &status)
	if status.Windows != 1 || len(status.Topologies) != 1 {
		t.Errorf("status = %+v", status)
	}
	if status.Topologies[0].Name != "served" {
		t.Errorf("topology = %+v", status.Topologies[0])
	}
	if status.MemHigh <= 0 {
		t.Errorf("memHigh = %v, want the controller default surfaced", status.MemHigh)
	}
	comps := status.Topologies[0].Components
	if len(comps) != 1 || comps[0].MemResidentMB != 1900 {
		t.Errorf("measured memory not served: %+v", comps)
	}
	// 1900/2048 is past the default MemHigh: the streak must be visible.
	if status.Topologies[0].MemStreak != 1 {
		t.Errorf("memStreak = %d, want 1", status.Topologies[0].MemStreak)
	}
	// The measured traffic state is served: the component-pair edge rate
	// (both task edges fold into one s->z pair) and the inter-node
	// fraction of the counted deliveries.
	traffic := status.Topologies[0].Traffic
	if len(traffic) != 1 || traffic[0].From != "s" || traffic[0].To != "z" {
		t.Fatalf("traffic = %+v, want one s->z edge", traffic)
	}
	if traffic[0].RatePerSec != 1000 || traffic[0].Tuples != 1000 || traffic[0].RemoteTuples != 600 {
		t.Errorf("traffic edge = %+v, want 1000/s, 1000 tuples, 600 remote", traffic[0])
	}
	if got := status.Topologies[0].InterNodeFraction; got != 0.6 {
		t.Errorf("interNodeFraction = %v, want 0.6", got)
	}

	post, err := http.Post(srv2.URL+"/adaptive", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /adaptive status = %d", post.StatusCode)
	}
}

// TestRebalanceRoundTripOverHTTP: a RebalanceTopology teardown is visible
// through the statistic server — the assignment route 404s while pending
// and serves the fresh placement after the next round.
func TestRebalanceRoundTripOverHTTP(t *testing.T) {
	n, srv := statServerFixture(t)
	if err := n.RebalanceTopology("served"); err != nil {
		t.Fatalf("RebalanceTopology: %v", err)
	}
	resp, err := http.Get(srv.URL + "/assignments/served")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("torn-down assignment status = %d, want 404", resp.StatusCode)
	}
	if got := n.RunSchedulingRound(); len(got) != 1 {
		t.Fatalf("reschedule round = %v", got)
	}
	var one map[string]any
	getJSON(t, srv.URL+"/assignments/served", &one)
	if one["topology"] != "served" {
		t.Errorf("reassigned topology = %v", one)
	}
	var events []string
	getJSON(t, srv.URL+"/events", &events)
	if !strings.Contains(strings.Join(events, "\n"), "rebalance requested") {
		t.Errorf("events missing rebalance: %v", events)
	}
}
