package nimbus

import (
	"strings"
	"testing"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/topology"
)

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	return c
}

func testTopo(t *testing.T, name string, par int) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder(name)
	b.SetSpout("s", par).SetCPULoad(20).SetMemoryLoad(256)
	b.SetBolt("b", par).ShuffleGrouping("s").SetCPULoad(30).SetMemoryLoad(256)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

// startAll registers supervisors for every node.
func startAll(t *testing.T, n *Nimbus, c *cluster.Cluster) map[cluster.NodeID]*Supervisor {
	t.Helper()
	sups := make(map[cluster.NodeID]*Supervisor, c.Size())
	for _, id := range c.NodeIDs() {
		sv, err := n.StartSupervisor(id)
		if err != nil {
			t.Fatalf("StartSupervisor(%s): %v", id, err)
		}
		sups[id] = sv
	}
	return sups
}

func TestSubmitScheduleLifecycle(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	startAll(t, n, c)

	topo := testTopo(t, "wordcount", 4)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := n.Pending(); len(got) != 1 || got[0] != "wordcount" {
		t.Fatalf("Pending = %v", got)
	}
	scheduled := n.RunSchedulingRound()
	if len(scheduled) != 1 || scheduled[0] != "wordcount" {
		t.Fatalf("scheduled = %v", scheduled)
	}
	if len(n.Pending()) != 0 {
		t.Fatalf("still pending: %v", n.Pending())
	}
	a := n.Assignment("wordcount")
	if a == nil || !a.Complete(topo) {
		t.Fatal("assignment missing or incomplete")
	}
	// Assignment persisted in the store and decodable.
	data, err := n.Store().Get("/assignments/wordcount")
	if err != nil {
		t.Fatalf("stored assignment: %v", err)
	}
	decoded, err := DecodeAssignment(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(decoded.Placements) != len(a.Placements) {
		t.Errorf("decoded %d placements, want %d", len(decoded.Placements), len(a.Placements))
	}

	if err := n.KillTopology("wordcount"); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	if n.Assignment("wordcount") != nil {
		t.Error("assignment survives kill")
	}
	if n.Store().Exists("/assignments/wordcount") {
		t.Error("stored assignment survives kill")
	}
}

func TestSchedulingWaitsForSupervisors(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	topo := testTopo(t, "early", 2)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// No supervisors yet: nothing can be placed.
	if scheduled := n.RunSchedulingRound(); len(scheduled) != 0 {
		t.Fatalf("scheduled with no supervisors: %v", scheduled)
	}
	if got := n.Pending(); len(got) != 1 {
		t.Fatalf("Pending = %v", got)
	}
	startAll(t, n, c)
	if scheduled := n.RunSchedulingRound(); len(scheduled) != 1 {
		t.Fatalf("scheduled = %v after supervisors joined", scheduled)
	}
}

func TestSupervisorMembershipAndHeartbeat(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.EvenScheduler{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sv, err := n.StartSupervisor(c.NodeIDs()[0])
	if err != nil {
		t.Fatalf("StartSupervisor: %v", err)
	}
	if got := n.AliveSupervisors(); len(got) != 1 || got[0] != c.NodeIDs()[0] {
		t.Fatalf("AliveSupervisors = %v", got)
	}
	if err := sv.Heartbeat(); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	if sv.ID() != c.NodeIDs()[0] {
		t.Errorf("ID = %v", sv.ID())
	}
	// Duplicate registration rejected.
	if _, err := n.StartSupervisor(c.NodeIDs()[0]); err == nil {
		t.Error("duplicate supervisor accepted")
	}
	if _, err := n.StartSupervisor("ghost"); err == nil {
		t.Error("unknown node accepted")
	}
	if err := sv.Fail(); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if err := sv.Heartbeat(); err == nil {
		t.Error("heartbeat after failure accepted")
	}
	if err := sv.Fail(); err == nil {
		t.Error("double failure accepted")
	}
	if got := n.AliveSupervisors(); len(got) != 0 {
		t.Fatalf("AliveSupervisors after failure = %v", got)
	}
}

func TestFailureTriggersReschedule(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sups := startAll(t, n, c)
	topo := testTopo(t, "resilient", 6)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := n.Tick(); len(got) != 1 {
		t.Fatalf("Tick scheduled %v", got)
	}
	before := n.Assignment("resilient")
	victim := before.NodesUsed()[0]

	if err := sups[victim].Fail(); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	lost := n.DetectFailures()
	if len(lost) != 1 || lost[0] != victim {
		t.Fatalf("lost = %v, want [%s]", lost, victim)
	}
	// Topology requeued and rescheduled off the dead node.
	if got := n.Pending(); len(got) != 1 || got[0] != "resilient" {
		t.Fatalf("Pending after failure = %v", got)
	}
	if got := n.RunSchedulingRound(); len(got) != 1 {
		t.Fatalf("reschedule round = %v", got)
	}
	after := n.Assignment("resilient")
	for id, p := range after.Placements {
		if p.Node == victim {
			t.Errorf("task %d still on failed node %s", id, victim)
		}
	}
}

func TestMultiTopologySchedulingSharesResources(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	startAll(t, n, c)
	t1 := testTopo(t, "first", 6)
	t2 := testTopo(t, "second", 6)
	if err := n.SubmitTopology(t1); err != nil {
		t.Fatal(err)
	}
	if err := n.SubmitTopology(t2); err != nil {
		t.Fatal(err)
	}
	if got := n.RunSchedulingRound(); len(got) != 2 {
		t.Fatalf("scheduled = %v", got)
	}
	// Both assignments respect memory jointly: per-node total <= 2048.
	used := make(map[cluster.NodeID]float64)
	for _, name := range []string{"first", "second"} {
		topo := map[string]*topology.Topology{"first": t1, "second": t2}[name]
		for node, vec := range n.Assignment(name).UsedPerNode(topo) {
			used[node] += vec.MemoryMB
		}
	}
	for node, mem := range used {
		if mem > 2048 {
			t.Errorf("node %s total memory %v exceeds capacity", node, mem)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.EvenScheduler{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	topo := testTopo(t, "dup", 1)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatal(err)
	}
	if err := n.SubmitTopology(topo); err == nil || !strings.Contains(err.Error(), "already submitted") {
		t.Fatalf("duplicate submit err = %v", err)
	}
	if err := n.KillTopology("never"); err == nil {
		t.Error("killing unknown topology accepted")
	}
}

func TestEventsLog(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	startAll(t, n, c)
	topo := testTopo(t, "logged", 2)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatal(err)
	}
	n.RunSchedulingRound()
	events := n.Events()
	var sawJoin, sawSubmit, sawSchedule bool
	for _, e := range events {
		if strings.Contains(e, "joined") {
			sawJoin = true
		}
		if strings.Contains(e, "submitted") {
			sawSubmit = true
		}
		if strings.Contains(e, "scheduled") {
			sawSchedule = true
		}
	}
	if !sawJoin || !sawSubmit || !sawSchedule {
		t.Errorf("events missing milestones: %v", events)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	a := core.NewAssignment("t", "r-storm")
	a.Place(0, core.Placement{Node: "n1", Slot: 0})
	a.Place(7, core.Placement{Node: "n2", Slot: 3})
	data, err := EncodeAssignment(a)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeAssignment(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Topology != "t" || got.Scheduler != "r-storm" {
		t.Errorf("metadata lost: %+v", got)
	}
	if got.Placements[7] != (core.Placement{Node: "n2", Slot: 3}) {
		t.Errorf("placements lost: %+v", got.Placements)
	}
	if _, err := DecodeAssignment([]byte("{bad json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := DecodeAssignment([]byte(`{"placements":{"xx":{"node":"n","slot":0}}}`)); err == nil {
		t.Error("bad task id accepted")
	}
}
