package nimbus

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rstorm/internal/core"
	"rstorm/internal/trace"
)

// journalCodes filters a journal's events down to those with the code.
func journalCodes(j *trace.Journal, code string) []trace.Event {
	var out []trace.Event
	for _, e := range j.Events() {
		if e.Code == code {
			out = append(out, e)
		}
	}
	return out
}

// TestStatServerRouteErrorPaths drives every route's error paths through
// one table: non-GET methods get 405 with an Allow header, missing
// sources get 404, and every error body is JSON with an "error" key.
func TestStatServerRouteErrorPaths(t *testing.T) {
	_, srv := statServerFixture(t) // bare server: no journal/latency/adaptive/detector
	routes := []struct {
		path       string
		wantGet    int // status of a plain GET
		wantErrKey string
	}{
		{"/summary", http.StatusOK, ""},
		{"/assignments", http.StatusOK, ""},
		{"/assignments/served", http.StatusOK, ""},
		{"/assignments/ghost", http.StatusNotFound, "unknown topology"},
		{"/events", http.StatusOK, ""},
		{"/evictions", http.StatusOK, ""},
		{"/adaptive", http.StatusNotFound, "adaptive controller not attached"},
		{"/faults", http.StatusNotFound, "failure detector not enabled"},
		{"/metrics", http.StatusOK, ""},
		{"/journal", http.StatusNotFound, "journal not attached"},
		{"/latency", http.StatusNotFound, "latency source not attached"},
	}
	for _, rt := range routes {
		t.Run("GET"+rt.path, func(t *testing.T) {
			resp, err := http.Get(srv.URL + rt.path)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != rt.wantGet {
				t.Fatalf("status = %d, want %d", resp.StatusCode, rt.wantGet)
			}
			ct := resp.Header.Get("Content-Type")
			if rt.path == "/metrics" && rt.wantGet == http.StatusOK {
				if ct != trace.PromContentType {
					t.Errorf("Content-Type = %q, want %q", ct, trace.PromContentType)
				}
			} else if !strings.HasPrefix(ct, "application/json") {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			if rt.wantErrKey != "" {
				var body struct {
					Error string `json:"error"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
					t.Fatalf("error body is not JSON: %v", err)
				}
				if body.Error != rt.wantErrKey {
					t.Errorf("error = %q, want %q", body.Error, rt.wantErrKey)
				}
			}
		})
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			t.Run(method+rt.path, func(t *testing.T) {
				req, err := http.NewRequest(method, srv.URL+rt.path, strings.NewReader("x"))
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusMethodNotAllowed {
					t.Fatalf("status = %d, want 405", resp.StatusCode)
				}
				if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
					t.Errorf("Allow = %q, want GET", allow)
				}
				if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
					t.Errorf("405 Content-Type = %q, want application/json", ct)
				}
				var body struct {
					Error string `json:"error"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
					t.Fatalf("405 body is not JSON: %v", err)
				}
				if body.Error != "method not allowed" {
					t.Errorf("405 error = %q", body.Error)
				}
			})
		}
	}
}

// TestStatServerMetricsParses validates the /metrics output against the
// package's own strict exposition parser (the promtool stand-in), with
// journal and latency sources attached so every family is exercised.
func TestStatServerMetricsParses(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatal(err)
	}
	n.EnableFailureDetector(DetectorConfig{})
	startAll(t, n, c)
	if err := n.SubmitTopology(testTopo(t, "served", 4)); err != nil {
		t.Fatal(err)
	}
	n.RunSchedulingRound()
	n.HeartbeatTick()

	j := trace.NewJournal(16)
	n.SetJournal(j)
	lat := map[string]trace.Summary{
		"served": {Count: 100, Mean: 4 * time.Millisecond,
			P50: 3 * time.Millisecond, P95: 9 * time.Millisecond,
			P99: 12 * time.Millisecond, Max: 15 * time.Millisecond},
	}
	srv := httptest.NewServer(NewStatisticServer(n,
		WithJournal(n.Journal),
		WithLatency(func() map[string]trace.Summary { return lat }),
	))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != trace.PromContentType {
		t.Errorf("Content-Type = %q", got)
	}
	families, err := trace.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	byName := make(map[string]trace.PromFamily, len(families))
	for _, f := range families {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"rstorm_supervisors_alive", "rstorm_topologies",
		"rstorm_scheduling_rounds_total", "rstorm_evictions_total",
		"rstorm_failovers_total", "rstorm_node_health",
		"rstorm_journal_events_total", "rstorm_journal_dropped_total",
		"rstorm_tuple_latency_seconds",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("family %s missing", want)
		}
	}
	if f := byName["rstorm_supervisors_alive"]; len(f.Samples) != 1 || f.Samples[0].Value != 12 {
		t.Errorf("supervisors = %+v", f.Samples)
	}
	if f := byName["rstorm_node_health"]; len(f.Samples) != 12 {
		t.Errorf("node_health samples = %d, want 12", len(f.Samples))
	}
	if f := byName["rstorm_tuple_latency_seconds"]; len(f.Samples) != 5 {
		// three quantiles + _sum + _count
		t.Errorf("latency samples = %d, want 5", len(f.Samples))
	}

	// The latency source also backs /latency.
	var got map[string]trace.Summary
	getJSON(t, srv.URL+"/latency", &got)
	if got["served"].Count != 100 || got["served"].P99 != 12*time.Millisecond {
		t.Errorf("/latency = %+v", got)
	}
}

// TestStatServerJournalRoute checks the JSONL stream: one valid JSON
// object per line, in sequence order.
func TestStatServerJournalRoute(t *testing.T) {
	n, _ := statServerFixture(t)
	j := trace.NewJournal(8)
	n.SetJournal(j)
	j.Record(time.Second, trace.CodeTriggerFired, "served", "", -1, "q=0.9")
	j.Record(2*time.Second, trace.CodeRebalanceApplied, "served", "", -1, "moves=2")
	srv := httptest.NewServer(NewStatisticServer(n, WithJournal(n.Journal)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var last trace.Event
	if err := json.Unmarshal([]byte(lines[1]), &last); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if last.Seq != 2 || last.Code != trace.CodeRebalanceApplied {
		t.Errorf("last event = %+v", last)
	}
}

// TestStatServerPprof: the profiling routes exist only with WithPprof.
func TestStatServerPprof(t *testing.T) {
	n, _ := statServerFixture(t)
	bare := httptest.NewServer(NewStatisticServer(n))
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("bare server serves pprof: %d", resp.StatusCode)
	}

	prof := httptest.NewServer(NewStatisticServer(n, WithPprof()))
	defer prof.Close()
	resp, err = http.Get(prof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
}

// TestNimbusJournalSchedulingEvents: a scheduling round with evictions
// journals eviction + scheduling-round, and the victims' eventual
// rescheduling journals readmission.
func TestNimbusJournalSchedulingEvents(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatal(err)
	}
	j := trace.NewJournal(0)
	n.SetJournal(j)
	startAll(t, n, c)
	fillCluster(t, n)
	if err := n.SubmitTopology(tenantTopo(t, "prod", 7, 1000, 8)); err != nil {
		t.Fatal(err)
	}
	if got := n.RunSchedulingRound(); len(got) != 1 || got[0] != "prod" {
		t.Fatalf("round scheduled %v", got)
	}
	evs := journalCodes(j, trace.CodeEviction)
	if len(evs) != len(n.Evictions()) || len(evs) == 0 {
		t.Fatalf("journaled evictions = %d, history = %d", len(evs), len(n.Evictions()))
	}
	if !strings.Contains(evs[0].Detail, "for=prod") {
		t.Errorf("eviction detail = %q", evs[0].Detail)
	}
	rounds := journalCodes(j, trace.CodeSchedulingRound)
	if len(rounds) != 2 {
		t.Fatalf("journaled rounds = %d, want 2", len(rounds))
	}

	// Make room: kill prod, reschedule — the victims are readmitted.
	if err := n.KillTopology("prod"); err != nil {
		t.Fatal(err)
	}
	kills := journalCodes(j, trace.CodeTopologyKilled)
	_ = kills // the master does not journal kills; the simulator does
	readmittedWant := len(n.Pending())
	if got := n.RunSchedulingRound(); len(got) != readmittedWant {
		t.Fatalf("readmission round scheduled %v, want %d", got, readmittedWant)
	}
	re := journalCodes(j, trace.CodeReadmission)
	if len(re) != readmittedWant {
		t.Fatalf("journaled readmissions = %d, want %d", len(re), readmittedWant)
	}
	// Seq is strictly increasing across the whole stream.
	events := j.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("Seq not increasing at %d: %+v", i, events[i])
		}
	}
}

// TestNimbusJournalDetectorEvents walks a node through suspect → dead →
// failover → rejoin and checks each transition is journaled exactly once.
func TestNimbusJournalDetectorEvents(t *testing.T) {
	c := testCluster(t)
	n, err := New(c, core.NewResourceAwareScheduler())
	if err != nil {
		t.Fatal(err)
	}
	n.EnableFailureDetector(DetectorConfig{SuspectAfter: 2, DeadAfter: 3, FlapDamping: 2})
	j := trace.NewJournal(0)
	n.SetJournal(j)
	sups := startAll(t, n, c)
	if err := n.SubmitTopology(testTopo(t, "wordcount", 4)); err != nil {
		t.Fatal(err)
	}
	n.RunSchedulingRound()
	victim := victimNode(t, n, "wordcount")

	n.HeartbeatTick()
	for i := 0; i < 3; i++ {
		beatExcept(t, sups, victim)
		n.HeartbeatTick()
	}
	sus := journalCodes(j, trace.CodeNodeSuspect)
	if len(sus) != 1 || sus[0].Node != string(victim) {
		t.Fatalf("suspect events = %+v", sus)
	}
	dead := journalCodes(j, trace.CodeNodeDead)
	if len(dead) != 1 || dead[0].Node != string(victim) || !strings.Contains(dead[0].Detail, "missed=3") {
		t.Fatalf("dead events = %+v", dead)
	}
	fo := journalCodes(j, trace.CodeFailoverRound)
	if len(fo) != 1 || fo[0].Topology != "wordcount" || fo[0].Node != string(victim) {
		t.Fatalf("failover events = %+v", fo)
	}
	if !strings.Contains(fo[0].Detail, "moves=") {
		t.Errorf("failover detail = %q", fo[0].Detail)
	}

	// The victim beats again: after FlapDamping fresh beats it rejoins.
	for i := 0; i < 2; i++ {
		beatExcept(t, sups)
		n.HeartbeatTick()
	}
	rejoin := journalCodes(j, trace.CodeNodeRejoin)
	if len(rejoin) != 1 || rejoin[0].Node != string(victim) {
		t.Fatalf("rejoin events = %+v", rejoin)
	}
}

// TestStatServerConcurrentJournalScrape hammers the journal with
// concurrent writers while scraping /metrics and /journal — the race
// detector's target in CI.
func TestStatServerConcurrentJournalScrape(t *testing.T) {
	n, _ := statServerFixture(t)
	j := trace.NewJournal(256)
	n.SetJournal(j)
	srv := httptest.NewServer(NewStatisticServer(n, WithJournal(n.Journal)))
	defer srv.Close()

	const writers, perWriter, scrapes = 4, 200, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Record(time.Duration(i)*time.Millisecond, trace.CodeTriggerFired,
					"topo", "", w, fmt.Sprintf("i=%d", i))
			}
		}(w)
	}
	for _, path := range []string{"/metrics", "/journal"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < scrapes; i++ {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}
	wg.Wait()
	if got := j.Len(); got != 256 {
		t.Errorf("journal retained %d, want full ring 256", got)
	}
	if got := j.Dropped(); got != writers*perWriter-256 {
		t.Errorf("dropped = %d, want %d", got, writers*perWriter-256)
	}
}
