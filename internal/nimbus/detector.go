package nimbus

import (
	"encoding/json"
	"fmt"
	"sort"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/resource"
	"rstorm/internal/trace"
)

// The heartbeat failure detector closes the loop DetectFailures leaves
// open: DetectFailures only notices a supervisor whose *session* expired,
// and its repair is a full teardown — every task of every affected
// topology is requeued and rescheduled from scratch. The detector instead
// watches heartbeat progress (a wedged supervisor holds its session but
// stops publishing fresh sequence numbers), walks each node through
// healthy → suspect → dead with configurable patience, and repairs
// incrementally: a failover scheduling round re-places only the dead
// node's tasks via core.IncrementalReschedule's Restart option, leaving
// every healthy worker untouched. Recovered nodes are flap-damped — held
// out of the availability picture until they prove themselves with a run
// of fresh heartbeats — so a bouncing machine cannot churn placements on
// every bounce.

// DetectorConfig tunes the heartbeat failure detector.
type DetectorConfig struct {
	// SuspectAfter is the number of consecutive HeartbeatTick observations
	// without heartbeat progress before a healthy node turns suspect.
	// Suspicion is advisory (reported, never acted on). Default 2.
	SuspectAfter int
	// DeadAfter is the number of consecutive missed observations before a
	// node is declared dead and its tasks failed over. Session expiry
	// (presence gone from the store) is death immediately, regardless.
	// Default 4; clamped above SuspectAfter.
	DeadAfter int
	// FlapDamping is the number of consecutive fresh heartbeats a dead
	// node must show after returning before it is trusted with capacity
	// again. Until then it reads as zero availability to every scheduling
	// and failover round. Default 3.
	FlapDamping int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 4
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + 1
	}
	if c.FlapDamping <= 0 {
		c.FlapDamping = 3
	}
	return c
}

// HealthState is a node's place in the detector's lifecycle.
type HealthState uint8

const (
	// HealthHealthy: heartbeats arriving on schedule.
	HealthHealthy HealthState = iota
	// HealthSuspect: SuspectAfter observations without progress.
	HealthSuspect
	// HealthDead: declared failed; tasks failed over, capacity released.
	HealthDead
	// HealthRecovering: heartbeating again after death, but still held
	// out of service until FlapDamping fresh beats accumulate.
	HealthRecovering
)

// String implements fmt.Stringer.
func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthSuspect:
		return "suspect"
	case HealthDead:
		return "dead"
	case HealthRecovering:
		return "recovering"
	default:
		return "unknown"
	}
}

// nodeHealth is the detector's per-node record.
type nodeHealth struct {
	state   HealthState
	lastSeq int64
	missed  int // consecutive observations without progress
	healthy int // consecutive fresh beats while recovering
}

// detector is the failure detector's state, guarded by the Nimbus mutex.
type detector struct {
	cfg    DetectorConfig
	nodes  map[cluster.NodeID]*nodeHealth
	ticks  int
	events []FailoverEvent
}

// FailoverEvent records one topology's repair after a node death.
type FailoverEvent struct {
	// Node is the dead node; Topology the repaired tenant.
	Node     string `json:"node"`
	Topology string `json:"topology"`
	// Moves counts the tasks restarted onto surviving nodes. Zero with
	// Requeued set: the incremental failover found no feasible placement
	// and the topology fell back to a full reschedule.
	Moves    int  `json:"moves"`
	Requeued bool `json:"requeued,omitempty"`
	// Tick is the HeartbeatTick ordinal (1-based) that declared the death.
	Tick int `json:"tick"`
}

// NodeHealthStatus is one node's detector record, JSON-ready.
type NodeHealthStatus struct {
	Node    string `json:"node"`
	State   string `json:"state"`
	Missed  int    `json:"missed,omitempty"`
	Healthy int    `json:"healthy,omitempty"`
	LastSeq int64  `json:"lastSeq"`
}

// DetectorStatus is the snapshot served by the StatisticServer's /faults
// route.
type DetectorStatus struct {
	Enabled      bool               `json:"enabled"`
	SuspectAfter int                `json:"suspectAfter,omitempty"`
	DeadAfter    int                `json:"deadAfter,omitempty"`
	FlapDamping  int                `json:"flapDamping,omitempty"`
	Ticks        int                `json:"ticks,omitempty"`
	Nodes        []NodeHealthStatus `json:"nodes,omitempty"`
	Events       []FailoverEvent    `json:"events,omitempty"`
}

// EnableFailureDetector turns the heartbeat failure detector on. Opt-in:
// without it, Nimbus keeps its legacy behaviour (session expiry noticed
// by DetectFailures, full teardown repair), byte for byte.
func (n *Nimbus) EnableFailureDetector(cfg DetectorConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.detector = &detector{
		cfg:   cfg.withDefaults(),
		nodes: make(map[cluster.NodeID]*nodeHealth),
	}
}

// Failovers returns the failover history, oldest first. Nil when the
// detector is disabled or nothing has failed over.
func (n *Nimbus) Failovers() []FailoverEvent {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.detector == nil || len(n.detector.events) == 0 {
		return nil
	}
	out := make([]FailoverEvent, len(n.detector.events))
	copy(out, n.detector.events)
	return out
}

// DetectorStatus snapshots the failure detector for operator tooling.
func (n *Nimbus) DetectorStatus() DetectorStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	d := n.detector
	if d == nil {
		return DetectorStatus{}
	}
	out := DetectorStatus{
		Enabled:      true,
		SuspectAfter: d.cfg.SuspectAfter,
		DeadAfter:    d.cfg.DeadAfter,
		FlapDamping:  d.cfg.FlapDamping,
		Ticks:        d.ticks,
		Events:       append([]FailoverEvent(nil), d.events...),
	}
	ids := make([]cluster.NodeID, 0, len(d.nodes))
	for id := range d.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		h := d.nodes[id]
		out.Nodes = append(out.Nodes, NodeHealthStatus{
			Node:    string(id),
			State:   h.state.String(),
			Missed:  h.missed,
			Healthy: h.healthy,
			LastSeq: h.lastSeq,
		})
	}
	return out
}

// HeartbeatTick runs one detector cycle: read every supervisor's presence
// and heartbeat sequence from the state store, advance each node's health
// state, fail over the tasks of nodes newly declared dead, and restore
// capacity to nodes that have finished their flap-damping hold. It
// returns the nodes declared dead this tick. A no-op until
// EnableFailureDetector.
//
// Call it on the master's heartbeat cadence; the suspect/dead thresholds
// are measured in these calls.
func (n *Nimbus) HeartbeatTick() []cluster.NodeID {
	// Read presence outside the Nimbus lock; the store has its own.
	present := make(map[cluster.NodeID]int64)
	if names, err := n.store.Children(supervisorsPath); err == nil {
		for _, name := range names {
			var hb HeartbeatPayload
			if data, err := n.store.Get(supervisorsPath + "/" + name); err == nil &&
				json.Unmarshal(data, &hb) == nil {
				present[cluster.NodeID(name)] = hb.Seq
			}
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	d := n.detector
	if d == nil {
		return nil
	}
	d.ticks++
	var newlyDead, recovered []cluster.NodeID
	for _, id := range n.cluster.NodeIDs() { // declaration order: deterministic
		seq, here := present[id]
		h := d.nodes[id]
		if h == nil {
			if !here {
				continue // never joined: not the detector's business
			}
			// First sight: the registration itself is the first beat.
			d.nodes[id] = &nodeHealth{state: HealthHealthy, lastSeq: seq}
			continue
		}
		switch {
		case !here:
			// Presence gone: the session expired. No patience needed —
			// the store's liveness contract is already broken.
			if h.state != HealthDead {
				h.state = HealthDead
				h.missed = 0
				h.healthy = 0
				newlyDead = append(newlyDead, id)
				n.journalRecord(trace.CodeNodeDead, "", string(id), "session-expired")
			}
		case h.state == HealthDead || h.state == HealthRecovering:
			if seq != h.lastSeq {
				h.lastSeq = seq
				h.state = HealthRecovering
				h.healthy++
				if h.healthy >= d.cfg.FlapDamping {
					h.state = HealthHealthy
					h.missed = 0
					h.healthy = 0
					recovered = append(recovered, id)
				}
			} else {
				// Stalled again mid-recovery: back to dead, progress
				// forfeited. Its tasks already moved, so no new failover.
				h.state = HealthDead
				h.healthy = 0
			}
		default: // healthy or suspect
			if seq != h.lastSeq {
				h.lastSeq = seq
				h.missed = 0
				h.state = HealthHealthy
			} else {
				h.missed++
				if h.missed >= d.cfg.DeadAfter {
					h.state = HealthDead
					h.healthy = 0
					newlyDead = append(newlyDead, id)
					n.journalRecord(trace.CodeNodeDead, "", string(id),
						fmt.Sprintf("missed=%d", h.missed))
				} else if h.missed >= d.cfg.SuspectAfter {
					if h.state != HealthSuspect {
						n.journalRecord(trace.CodeNodeSuspect, "", string(id),
							fmt.Sprintf("missed=%d", h.missed))
					}
					h.state = HealthSuspect
				}
			}
		}
	}
	for _, id := range newlyDead {
		// The detector owns the death from here; DetectFailures must not
		// double-handle it if the session also expires later.
		delete(n.alive, id)
		n.failoverNodeLocked(id)
	}
	for _, id := range recovered {
		_ = n.state.RestoreNode(id)
		n.alive[id] = true
		n.logf("node %s passed flap damping (%d fresh beats); capacity restored",
			id, d.cfg.FlapDamping)
		n.journalRecord(trace.CodeNodeRejoin, "", string(id),
			fmt.Sprintf("beats=%d", d.cfg.FlapDamping))
	}
	return newlyDead
}

// untrustedAvailability is the failover planner's availability picture:
// the global state's remaining capacity with every node the detector
// does not currently trust (dead or still in its flap-damping hold)
// zeroed out, so no restart or move can target it.
func (n *Nimbus) untrustedAvailability() map[cluster.NodeID]resource.Vector {
	avail := n.state.AvailableAll()
	for id, h := range n.detector.nodes {
		if h.state == HealthDead || h.state == HealthRecovering {
			avail[id] = resource.Vector{}
		}
	}
	return avail
}

// failoverNodeLocked repairs every topology with tasks on a dead node:
// one incremental failover round per topology, re-placing only the dead
// node's tasks (live workers frozen in place) on detector-trusted
// capacity. A topology whose restarts cannot all be placed falls back to
// the legacy repair — assignment torn down, topology requeued for a full
// scheduling round once capacity returns. Caller holds n.mu.
func (n *Nimbus) failoverNodeLocked(id cluster.NodeID) {
	d := n.detector
	affected := n.state.ReleaseNode(id)
	n.logf("failure detector declared %s dead; %d topologies affected", id, len(affected))
	ras, isRAS := n.scheduler.(*core.ResourceAwareScheduler)
	for _, name := range affected {
		topo := n.topologies[name]
		current := n.state.Assignment(name)
		if topo == nil || current == nil {
			continue
		}
		restart := make(map[int]bool)
		frozen := make(map[int]bool)
		for _, task := range topo.Tasks() {
			if current.Placements[task.ID].Node == id {
				restart[task.ID] = true
			} else {
				frozen[task.ID] = true
			}
		}
		// Plan with this topology's own reservation lifted, exactly like
		// AdaptiveRebalance; Remove also frees its slots on live nodes so
		// SlotFor can re-offer them.
		n.state.Remove(name)
		requeue := func() {
			_ = n.store.Delete(assignmentsPath + "/" + name)
			n.dropPendingLocked(name)
			n.pending = append(n.pending, name)
			d.events = append(d.events, FailoverEvent{
				Node: string(id), Topology: name, Requeued: true, Tick: d.ticks,
			})
			n.logf("failover of %q off %s infeasible; requeued for full reschedule", name, id)
			n.journalRecord(trace.CodeFailoverRound, name, string(id),
				fmt.Sprintf("tick=%d requeued", d.ticks))
		}
		if !isRAS {
			// Resource-blind schedulers have no incremental pass: legacy
			// teardown repair.
			requeue()
			continue
		}
		next, moves, err := ras.IncrementalReschedule(topo, n.cluster, current, core.IncrementalOptions{
			Available: n.untrustedAvailability(),
			Restart:   restart,
			Frozen:    frozen,
			SlotFor: func(nid cluster.NodeID) (int, bool) {
				return n.state.FirstFreeSlot(nid)
			},
		})
		if err == nil {
			// A restart the pass could not place stays on the dead node;
			// an assignment touching a dead node cannot be applied.
			for tid := range restart {
				if next.Placements[tid].Node == id {
					err = errUnplaceableRestart
					break
				}
			}
		}
		if err == nil {
			err = n.state.Apply(topo, next)
		}
		if err != nil {
			requeue()
			continue
		}
		n.persistAssignment(name, next)
		d.events = append(d.events, FailoverEvent{
			Node: string(id), Topology: name, Moves: len(moves), Tick: d.ticks,
		})
		n.logf("failover of %q: restarted %d tasks off %s", name, len(moves), id)
		n.journalRecord(trace.CodeFailoverRound, name, string(id),
			fmt.Sprintf("tick=%d moves=%d", d.ticks, len(moves)))
	}
	// Remove re-credits each topology's reservation to availability —
	// including the share that sat on the dead node. Release again so the
	// node reads zero to future scheduling rounds until it recovers.
	n.state.ReleaseNode(id)
}

// errUnplaceableRestart marks a failover plan that left a restart on the
// dead node (no surviving capacity could fit it).
var errUnplaceableRestart = errString("failover restart unplaceable")

type errString string

func (e errString) Error() string { return string(e) }
