package core

import (
	"testing"

	"rstorm/internal/cluster"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// Regression tests for the rstorm-lint determinism findings (PR 8): FP
// accumulations and first-error selection that used to run in
// map-iteration order. Each test repeats the operation enough times that
// Go's per-range map-order randomization would have produced at least
// one divergent result under the old code.

// fpTopo builds a 3-component chain whose CPU loads (0.1, 0.2, 0.3) sum
// non-associatively in float64: (0.1+0.2)+0.3 != 0.1+(0.2+0.3).
func fpTopo(t *testing.T) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder("fp")
	b.SetSpout("s", 1).SetCPULoad(0.1).SetMemoryLoad(64)
	b.SetBolt("a", 1).ShuffleGrouping("s").SetCPULoad(0.2).SetMemoryLoad(64)
	b.SetBolt("z", 1).ShuffleGrouping("a").SetCPULoad(0.3).SetMemoryLoad(64)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func TestUsedPerNodeBitStable(t *testing.T) {
	topo := fpTopo(t)
	a := NewAssignment("fp", "test")
	for _, task := range topo.Tasks() {
		a.Place(task.ID, Placement{Node: "n1", Slot: 0})
	}
	// The reference is the task-order sum — the only order UsedPerNode
	// is allowed to use.
	var want resource.Vector
	for _, task := range topo.Tasks() {
		want = want.Add(topo.TaskDemand(task))
	}
	for i := 0; i < 100; i++ {
		got := a.UsedPerNode(topo)["n1"]
		if got != want {
			t.Fatalf("call %d: UsedPerNode = %+v, want bit-identical %+v", i, got, want)
		}
	}
}

func TestValidateReportsSameNodeEveryTime(t *testing.T) {
	// A resource-blind even spread of monstrous memory demand overloads
	// every node; the reported violation must name the same (sorted
	// first) node on every call, not a map-order-dependent one.
	topo := linearTopo(t, 6, 10, 100000)
	c := emulab12(t)
	a, err := EvenScheduler{}.Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	first := a.Validate(topo, c, resource.DefaultClasses())
	if first == nil {
		t.Fatal("expected a hard-constraint violation")
	}
	for i := 0; i < 100; i++ {
		err := a.Validate(topo, c, resource.DefaultClasses())
		if err == nil || err.Error() != first.Error() {
			t.Fatalf("call %d: error %q, want stable %q", i, err, first)
		}
	}
}

func TestExactSchedulerRunToRunIdentical(t *testing.T) {
	// The branch-and-bound prunes on a float bound; with the bound summed
	// in a fixed order, two runs over identical fresh inputs must pick
	// identical placements even when candidate costs tie.
	topo := tinyTopo(t, 30, 512)
	var ref *Assignment
	for i := 0; i < 5; i++ {
		c, err := cluster.TwoRack(2, 2, cluster.EmulabNodeSpec())
		if err != nil {
			t.Fatalf("TwoRack: %v", err)
		}
		a, err := NewExactScheduler().Schedule(topo, c, NewGlobalState(c))
		if err != nil {
			t.Fatalf("Schedule: %v", err)
		}
		if ref == nil {
			ref = a
			continue
		}
		for _, task := range topo.Tasks() {
			want, _ := ref.PlacementOf(task.ID)
			got, _ := a.PlacementOf(task.ID)
			if got != want {
				t.Fatalf("run %d: task %d placed at %+v, want %+v", i, task.ID, got, want)
			}
		}
	}
}

func TestTrafficTotalMatchesPairOrder(t *testing.T) {
	// Total must sum in first-set order: with the adversarial values
	// below, any other order changes the low bits.
	m := NewTrafficMatrix()
	vals := []float64{1e16, 1, -1e16}
	m.Set("a", "b", vals[0])
	m.Set("b", "c", vals[1])
	m.Set("c", "d", vals[2])
	// Runtime float64 sum in first-set order (a constant expression
	// would be folded at arbitrary precision and not match).
	want := 0.0
	for _, v := range vals {
		want += v
	}
	for i := 0; i < 100; i++ {
		if got := m.Total(); got != want {
			t.Fatalf("call %d: Total = %v, want bit-identical %v", i, got, want)
		}
	}
}
