package core

import (
	"fmt"

	"rstorm/internal/cluster"
	"rstorm/internal/topology"
)

// OfflineLinearScheduler is a baseline in the style of the offline
// scheduler of Aniello, Baldoni and Querzoni (DEBS'13), which the paper
// compares against in §7: it linearizes the topology's components and
// places tasks from consecutive components together, round-robin over
// machines, to reduce inter-node traffic — but it is blind to resource
// demand and availability.
//
// Concretely: tasks are ordered with the same interleaved BFS linearization
// R-Storm uses, split into `workers` contiguous groups, and group i becomes
// worker i, with workers spread round-robin across nodes.
type OfflineLinearScheduler struct{}

var _ Scheduler = OfflineLinearScheduler{}

// Name implements Scheduler.
func (OfflineLinearScheduler) Name() string { return "offline-linear" }

// Schedule implements Scheduler.
func (OfflineLinearScheduler) Schedule(
	topo *topology.Topology,
	c *cluster.Cluster,
	state *GlobalState,
) (*Assignment, error) {
	workers := topo.NumWorkers()
	if workers <= 0 || workers > c.Size() {
		workers = c.Size()
	}
	slots := collectSlotsRoundRobin(c, state, workers)
	if len(slots) == 0 {
		return nil, fmt.Errorf("topology %q: %w", topo.Name(), ErrNoSlots)
	}

	ordered := TaskOrdering(topo)
	perWorker := (len(ordered) + len(slots) - 1) / len(slots)
	if perWorker == 0 {
		perWorker = 1
	}
	assignment := NewAssignment(topo.Name(), OfflineLinearScheduler{}.Name())
	for i, task := range ordered {
		w := i / perWorker
		if w >= len(slots) {
			w = len(slots) - 1
		}
		assignment.Place(task.ID, slots[w])
	}
	return assignment, nil
}
