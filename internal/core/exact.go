package core

import (
	"fmt"

	"rstorm/internal/cluster"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// ExactScheduler solves small instances of the paper's QM3DKP formulation
// (§3) by branch-and-bound over the full assignment space. It minimizes
//
//	cost = Σ_{adjacent task pairs (a,b)} networkDistance(node(a), node(b))
//	     + OverloadPenalty · Σ_nodes max(0, cpuUsed − cpuCapacity)/100
//
// subject to the hard memory constraint on every node. The network term is
// the quadratic profit of the QKP view (colocating communicating tasks);
// the penalty term expresses the soft CPU constraint.
//
// It exists to bound the greedy heuristic's optimality gap in Ablation B
// and is limited to instances with TotalTasks ≤ MaxTasks, because the
// search space is |nodes|^|tasks|.
type ExactScheduler struct {
	// MaxTasks caps instance size; Schedule errors above it. Default 10.
	MaxTasks int
	// OverloadPenalty scales the soft CPU overcommit term. Default 10.
	OverloadPenalty float64
	classes         resource.Classes
}

var _ Scheduler = (*ExactScheduler)(nil)

// NewExactScheduler returns an exact solver with default limits.
func NewExactScheduler() *ExactScheduler {
	return &ExactScheduler{
		MaxTasks:        10,
		OverloadPenalty: 10,
		classes:         resource.DefaultClasses(),
	}
}

// Name implements Scheduler.
func (s *ExactScheduler) Name() string { return "exact-bnb" }

// Schedule implements Scheduler.
func (s *ExactScheduler) Schedule(
	topo *topology.Topology,
	c *cluster.Cluster,
	state *GlobalState,
) (*Assignment, error) {
	tasks := topo.Tasks()
	if len(tasks) > s.MaxTasks {
		return nil, fmt.Errorf("exact scheduler limited to %d tasks, topology has %d",
			s.MaxTasks, len(tasks))
	}
	nodes := c.NodeIDs()
	// Only consider nodes with at least one free slot.
	eligible := nodes[:0:0]
	for _, id := range nodes {
		if len(state.FreeSlots(id)) > 0 {
			eligible = append(eligible, id)
		}
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("topology %q: %w", topo.Name(), ErrNoSlots)
	}

	// Adjacency between tasks: every (producer task, consumer task) pair
	// of every stream communicates; weight 1 per pair.
	type pair struct{ a, b int }
	var pairs []pair
	for _, st := range topo.Streams() {
		for _, pt := range topo.TasksOf(st.From) {
			for _, ct := range topo.TasksOf(st.To) {
				pairs = append(pairs, pair{pt.ID, ct.ID})
			}
		}
	}
	pairsByTask := make(map[int][]pair)
	for _, p := range pairs {
		pairsByTask[p.a] = append(pairsByTask[p.a], p)
		pairsByTask[p.b] = append(pairsByTask[p.b], p)
	}

	demands := make([]resource.Vector, len(tasks))
	for i, task := range tasks {
		demands[i] = topo.TaskDemand(task)
	}
	availBase := state.AvailableAll()

	assigned := make(map[int]cluster.NodeID, len(tasks))
	bestCost := -1.0
	var bestAssign map[int]cluster.NodeID

	used := make(map[cluster.NodeID]resource.Vector, len(eligible))

	// partialCost returns the network cost of pairs fully placed so far
	// plus the current CPU overload penalty — both monotone
	// non-decreasing as tasks are added, so they are a valid bound.
	// Both sums run in a fixed order (the pairs slice, the eligible node
	// list): the bound is compared against bestCost with <, so map-order
	// float accumulation could flip pruning decisions on near-ties.
	partialCost := func() float64 {
		var cost float64
		seen := make(map[pair]bool)
		for _, p := range pairs {
			if seen[p] {
				continue
			}
			na, aOK := assigned[p.a]
			nb, bOK := assigned[p.b]
			if aOK && bOK {
				seen[p] = true
				cost += c.NetworkDistance(na, nb)
			}
		}
		for _, nodeID := range eligible {
			u, ok := used[nodeID]
			if !ok {
				continue
			}
			if over := u.CPU - availBase[nodeID].CPU; over > 0 {
				cost += s.OverloadPenalty * over / 100
			}
		}
		return cost
	}

	var dfs func(i int)
	dfs = func(i int) {
		if i == len(tasks) {
			cost := partialCost()
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				bestAssign = make(map[int]cluster.NodeID, len(assigned))
				for k, v := range assigned {
					bestAssign[k] = v
				}
			}
			return
		}
		task := tasks[i]
		for _, node := range eligible {
			u := used[node].Add(demands[i])
			remaining := availBase[node].Sub(used[node])
			if !resource.SatisfiesHard(remaining, demands[i], s.classes) {
				continue
			}
			assigned[task.ID] = node
			prev := used[node]
			used[node] = u
			if bestCost < 0 || partialCost() < bestCost {
				dfs(i + 1)
			}
			used[node] = prev
			delete(assigned, task.ID)
		}
	}
	dfs(0)

	if bestAssign == nil {
		return nil, fmt.Errorf("topology %q: %w", topo.Name(), ErrInsufficientResources)
	}
	assignment := NewAssignment(topo.Name(), s.Name())
	slotOf := make(map[cluster.NodeID]int)
	for _, task := range tasks {
		node := bestAssign[task.ID]
		slot, ok := slotOf[node]
		if !ok {
			slot = state.FreeSlots(node)[0]
			slotOf[node] = slot
		}
		assignment.Place(task.ID, Placement{Node: node, Slot: slot})
	}
	return assignment, nil
}
