package core

import (
	"testing"

	"rstorm/internal/cluster"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// incrTopo builds a chain whose "work" stage declares light CPU.
func incrTopo(t *testing.T, workPar int) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder("incr")
	b.SetSpout("s", 2).SetCPULoad(10).SetMemoryLoad(128)
	b.SetBolt("work", workPar).ShuffleGrouping("s").SetCPULoad(10).SetMemoryLoad(128)
	b.SetBolt("z", 2).ShuffleGrouping("work").SetCPULoad(10).SetMemoryLoad(128)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func incrCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	return c
}

func TestIncrementalRescheduleIsNoopWhenPlacementIsGood(t *testing.T) {
	topo := incrTopo(t, 4)
	c := incrCluster(t)
	sched := NewResourceAwareScheduler()
	current, err := sched.Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	next, moves, err := sched.IncrementalReschedule(topo, c, current, IncrementalOptions{Margin: 0.15})
	if err != nil {
		t.Fatalf("IncrementalReschedule: %v", err)
	}
	if len(moves) != 0 {
		t.Errorf("fresh R-Storm schedule produced moves: %v", moves)
	}
	for id, p := range current.Placements {
		if next.Placements[id] != p {
			t.Errorf("task %d moved without a Move record: %v -> %v", id, p, next.Placements[id])
		}
	}
}

// TestIncrementalEscapesOvercommit is the hotspot case: measured demands
// reveal the packed node is far over CPU capacity, so exactly enough work
// tasks migrate to CPU-fit nodes, and nothing else is touched.
func TestIncrementalEscapesOvercommit(t *testing.T) {
	topo := incrTopo(t, 6)
	c := incrCluster(t)
	ids := c.NodeIDs()
	// Everything packed on one node (what a scheduler believing the
	// declarations would happily do: 10 tasks x 10 points).
	current := NewAssignment("incr", "r-storm")
	for _, task := range topo.Tasks() {
		current.Place(task.ID, Placement{Node: ids[0], Slot: 0})
	}
	// Measured truth: each work task needs 80 points.
	demands := map[string]resource.Vector{
		"work": {CPU: 80, MemoryMB: 128},
	}
	sched := NewResourceAwareScheduler()
	next, moves, err := sched.IncrementalReschedule(topo, c, current, IncrementalOptions{
		Demands: demands,
		Margin:  0.15,
	})
	if err != nil {
		t.Fatalf("IncrementalReschedule: %v", err)
	}
	if len(moves) == 0 {
		t.Fatal("no moves despite 6x80 points on a 100-point node")
	}
	if len(moves) >= topo.TotalTasks() {
		t.Errorf("moves = %d, want strictly fewer than a full reschedule (%d tasks)",
			len(moves), topo.TotalTasks())
	}
	// Post-move, no node may hold more than one work task (80 of 100
	// points each), and light tasks must not have been shuffled around.
	workPerNode := make(map[cluster.NodeID]int)
	for _, task := range topo.Tasks() {
		p := next.Placements[task.ID]
		if task.Component == "work" {
			workPerNode[p.Node]++
		} else if p != current.Placements[task.ID] {
			t.Errorf("light task %d moved: %v -> %v", task.ID, current.Placements[task.ID], p)
		}
	}
	for node, n := range workPerNode {
		if n > 1 {
			t.Errorf("node %s still hosts %d work tasks of 80 points", node, n)
		}
	}
	if !next.Complete(topo) {
		t.Error("incremental assignment incomplete")
	}
}

func TestIncrementalMaxMovesCapsDisruption(t *testing.T) {
	topo := incrTopo(t, 6)
	c := incrCluster(t)
	ids := c.NodeIDs()
	current := NewAssignment("incr", "r-storm")
	for _, task := range topo.Tasks() {
		current.Place(task.ID, Placement{Node: ids[0], Slot: 0})
	}
	demands := map[string]resource.Vector{"work": {CPU: 80, MemoryMB: 128}}
	sched := NewResourceAwareScheduler()
	_, moves, err := sched.IncrementalReschedule(topo, c, current, IncrementalOptions{
		Demands:  demands,
		MaxMoves: 2,
		Margin:   0.15,
	})
	if err != nil {
		t.Fatalf("IncrementalReschedule: %v", err)
	}
	if len(moves) != 2 {
		t.Errorf("moves = %d, want exactly the cap of 2", len(moves))
	}
}

// TestIncrementalRespectsHardConstraints: move targets must satisfy the
// hard memory axis under the measured demands.
func TestIncrementalRespectsHardConstraints(t *testing.T) {
	// Two nodes: one huge-memory (current, CPU-starved under truth), one
	// with too little memory to accept any task.
	big := cluster.NodeSpec{Capacity: resource.Vector{CPU: 100, MemoryMB: 4096}, Slots: 4, NICMbps: 100}
	tiny := cluster.NodeSpec{Capacity: resource.Vector{CPU: 400, MemoryMB: 64}, Slots: 4, NICMbps: 100}
	cb := cluster.NewBuilder()
	cb.AddNode("big", "rack-0", big)
	cb.AddNode("tiny", "rack-0", tiny)
	c, err := cb.Build()
	if err != nil {
		t.Fatalf("Build cluster: %v", err)
	}
	topo := incrTopo(t, 4)
	current := NewAssignment("incr", "r-storm")
	for _, task := range topo.Tasks() {
		current.Place(task.ID, Placement{Node: "big", Slot: 0})
	}
	demands := map[string]resource.Vector{"work": {CPU: 90, MemoryMB: 128}}
	sched := NewResourceAwareScheduler()
	next, _, err := sched.IncrementalReschedule(topo, c, current, IncrementalOptions{Demands: demands})
	if err != nil {
		t.Fatalf("IncrementalReschedule: %v", err)
	}
	for _, task := range topo.Tasks() {
		if next.Placements[task.ID].Node == "tiny" {
			t.Errorf("task %d placed on memory-starved node", task.ID)
		}
	}
}

// TestIncrementalFrozenTasksPinnedAndFree: frozen tasks keep their
// placement — even an infeasible one — and do not consume the MaxMoves
// budget, so live migrations are never starved by unmovable (dead) tasks.
func TestIncrementalFrozenTasksPinnedAndFree(t *testing.T) {
	topo := incrTopo(t, 6)
	c := incrCluster(t)
	ids := c.NodeIDs()
	current := NewAssignment("incr", "r-storm")
	for _, task := range topo.Tasks() {
		current.Place(task.ID, Placement{Node: ids[0], Slot: 0})
	}
	// Freeze half the work tasks (IDs 2,3,4 — as if their node died).
	frozen := map[int]bool{2: true, 3: true, 4: true}
	demands := map[string]resource.Vector{"work": {CPU: 80, MemoryMB: 128}}
	sched := NewResourceAwareScheduler()
	next, moves, err := sched.IncrementalReschedule(topo, c, current, IncrementalOptions{
		Demands:  demands,
		Frozen:   frozen,
		MaxMoves: 3,
		Margin:   0.15,
	})
	if err != nil {
		t.Fatalf("IncrementalReschedule: %v", err)
	}
	for id := range frozen {
		if next.Placements[id] != current.Placements[id] {
			t.Errorf("frozen task %d moved to %v", id, next.Placements[id])
		}
	}
	// The full MaxMoves budget must have gone to live work tasks.
	if len(moves) != 3 {
		t.Fatalf("moves = %d, want 3 (budget spent on live tasks)", len(moves))
	}
	for _, m := range moves {
		if frozen[m.TaskID] {
			t.Errorf("budget spent on frozen task %d", m.TaskID)
		}
	}
}

func TestIncrementalValidation(t *testing.T) {
	topo := incrTopo(t, 2)
	c := incrCluster(t)
	sched := NewResourceAwareScheduler()
	if _, _, err := sched.IncrementalReschedule(topo, c, nil, IncrementalOptions{}); err == nil {
		t.Error("nil current assignment accepted")
	}
	incomplete := NewAssignment("incr", "x")
	if _, _, err := sched.IncrementalReschedule(topo, c, incomplete, IncrementalOptions{}); err == nil {
		t.Error("incomplete current assignment accepted")
	}
	bad := NewAssignment("incr", "x")
	for _, task := range topo.Tasks() {
		bad.Place(task.ID, Placement{Node: "ghost", Slot: 0})
	}
	if _, _, err := sched.IncrementalReschedule(topo, c, bad, IncrementalOptions{}); err == nil {
		t.Error("unknown current node accepted")
	}
}

// TestIncrementalMemHeadroomPrefersSafeNodes: with the headroom tier on, a
// task escaping a memory-overfull node must land where the post-placement
// fill keeps headroom for further growth, even when a tighter node is
// closer; with the option off the tiering is unchanged and the tight
// placement survives.
func TestIncrementalMemHeadroomPrefersSafeNodes(t *testing.T) {
	topo := incrTopo(t, 2)
	c := incrCluster(t)
	sched := NewResourceAwareScheduler()
	ids := c.NodeIDs()

	// Everything packed on node 0; measured memory says each work task
	// really holds 900 MB, so node 0 (2 x 900 + light overhead) is over
	// its 2048 MB capacity and both work tasks must escape — to separate
	// nodes, since two of them anywhere would pass 80% fill (1800/2048).
	current := NewAssignment("incr", "manual")
	for _, task := range topo.Tasks() {
		current.Place(task.ID, Placement{Node: ids[0], Slot: 0})
	}
	demands := map[string]resource.Vector{
		"work": {CPU: 10, MemoryMB: 900, Bandwidth: 0},
	}
	next, moves, err := sched.IncrementalReschedule(topo, c, current, IncrementalOptions{
		Demands:     demands,
		Margin:      0.15,
		MemHeadroom: 0.8,
	})
	if err != nil {
		t.Fatalf("IncrementalReschedule: %v", err)
	}
	if len(moves) == 0 {
		t.Fatal("no moves off the memory-overfull node")
	}
	perNode := make(map[cluster.NodeID]int)
	for _, task := range topo.Tasks() {
		if task.Component == "work" {
			perNode[next.Placements[task.ID].Node]++
		}
	}
	for node, nWork := range perNode {
		if nWork > 1 {
			t.Errorf("node %s hosts %d work tasks; headroom tier should spread them", node, nWork)
		}
	}

	// Without the headroom option, memory-tight placements are acceptable:
	// a single 2048 MB node may host both 900 MB tasks (1800 <= 2048), so
	// the pass is allowed to pack them — assert only that it still escapes
	// the overfull node and stays hard-feasible.
	next2, moves2, err := sched.IncrementalReschedule(topo, c, current, IncrementalOptions{
		Demands: demands,
		Margin:  0.15,
	})
	if err != nil {
		t.Fatalf("IncrementalReschedule (no headroom): %v", err)
	}
	if len(moves2) == 0 {
		t.Fatal("no moves off the memory-overfull node without headroom either")
	}
	used := make(map[cluster.NodeID]float64)
	for _, task := range topo.Tasks() {
		d := resource.Vector{CPU: 10, MemoryMB: 128}
		if task.Component == "work" {
			d = demands["work"]
		}
		used[next2.Placements[task.ID].Node] += d.MemoryMB
	}
	for node, mb := range used {
		if mb > 2048 {
			t.Errorf("node %s at %v MB exceeds capacity under measured demands", node, mb)
		}
	}
}

// TestIncrementalDeadTasksFreeTheirNode: a task killed on a live node (the
// OOM path) is pinned like a frozen task, but its demand must NOT be
// debited from its node — the working set was freed, and a survivor must
// be allowed to take that capacity.
func TestIncrementalDeadTasksFreeTheirNode(t *testing.T) {
	topo := incrTopo(t, 2)
	c := incrCluster(t)
	sched := NewResourceAwareScheduler()
	ids := c.NodeIDs()

	// One work task sits alone on node 1 and is dead; the other sits on
	// node 0 with everything else. Measured memory says work tasks hold
	// 1800 MB, so node 0 (512 MB of light tasks + 1800) is over capacity
	// and the live work task must escape. Node 1 only has room if the
	// dead task's phantom 1800 MB is not debited (2048 - 1800(dead) <
	// 1800, but in truth the node is empty).
	current := NewAssignment("incr", "manual")
	var workIDs []int
	for _, task := range topo.Tasks() {
		if task.Component == "work" {
			workIDs = append(workIDs, task.ID)
		}
		current.Place(task.ID, Placement{Node: ids[0], Slot: 0})
	}
	deadID, liveID := workIDs[0], workIDs[1]
	current.Place(deadID, Placement{Node: ids[1], Slot: 0})
	demands := map[string]resource.Vector{
		"work": {CPU: 10, MemoryMB: 1800},
	}
	// Restrict availability to the two occupied nodes so the only valid
	// escape is the dead task's node.
	avail := map[cluster.NodeID]resource.Vector{
		ids[0]: c.Node(ids[0]).Spec.Capacity,
		ids[1]: c.Node(ids[1]).Spec.Capacity,
	}
	next, moves, err := sched.IncrementalReschedule(topo, c, current, IncrementalOptions{
		Demands:   demands,
		Available: avail,
		Margin:    0.15,
		Dead:      map[int]bool{deadID: true},
	})
	if err != nil {
		t.Fatalf("IncrementalReschedule: %v", err)
	}
	if got := next.Placements[deadID]; got != current.Placements[deadID] {
		t.Errorf("dead task moved to %v; it must stay pinned", got)
	}
	if got := next.Placements[liveID]; got.Node != ids[1] {
		t.Errorf("live work task on %v, want the dead task's freed node %v (moves: %v)",
			got.Node, ids[1], moves)
	}
}
