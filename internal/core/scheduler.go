// Package core implements the paper's primary contribution: R-Storm's
// resource-aware scheduler (§4), alongside the baselines it is evaluated
// against — Storm's default round-robin EvenScheduler and an offline
// linearization scheduler in the style of Aniello et al. (§7) — plus an
// exact solver for small instances used to bound the greedy heuristic's
// optimality gap.
package core

import (
	"errors"

	"rstorm/internal/cluster"
	"rstorm/internal/topology"
)

// Scheduler maps a topology's tasks onto cluster nodes. It is the analogue
// of Storm's IScheduler interface (§5): Nimbus invokes it periodically with
// the current cluster state.
//
// Schedule must not mutate state; it returns a complete mapping that the
// caller applies atomically (§4.1: "the actual assignment of task to node
// is done in an atomic fashion after the schedule mapping between all
// tasks to nodes has been determined").
type Scheduler interface {
	// Name identifies the scheduler in reports and logs.
	Name() string
	// Schedule computes a placement for every task of topo given the
	// remaining availability in state. Implementations return
	// ErrInsufficientResources when a hard constraint cannot be met.
	Schedule(topo *topology.Topology, c *cluster.Cluster, state *GlobalState) (*Assignment, error)
}

// ErrInsufficientResources reports that no node can host a task without
// violating a hard constraint.
var ErrInsufficientResources = errors.New("insufficient resources to satisfy hard constraints")

// ErrNoSlots reports that the cluster has no free worker slots left.
var ErrNoSlots = errors.New("no free worker slots")
