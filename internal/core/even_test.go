package core

import (
	"errors"
	"testing"

	"rstorm/internal/cluster"
	"rstorm/internal/topology"
)

func TestEvenSpreadsAcrossAllNodes(t *testing.T) {
	topo := linearTopo(t, 6, 50, 512) // 24 tasks
	c := emulab12(t)
	a, err := EvenScheduler{}.Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if got := len(a.NodesUsed()); got != 12 {
		t.Errorf("nodes used = %d, want 12", got)
	}
	// 24 tasks over 12 single-slot workers: 2 tasks per node.
	for _, n := range a.NodesUsed() {
		if got := len(a.TasksOnNode(n)); got != 2 {
			t.Errorf("node %s has %d tasks, want 2", n, got)
		}
	}
}

func TestEvenIgnoresResources(t *testing.T) {
	// Tasks that monstrously exceed node memory still get placed: the
	// default scheduler is resource-blind by design.
	topo := linearTopo(t, 6, 500, 100000)
	c := emulab12(t)
	a, err := EvenScheduler{}.Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if !a.Complete(topo) {
		t.Fatal("even scheduler should place everything regardless of demand")
	}
}

func TestEvenHonorsNumWorkers(t *testing.T) {
	b := topology.NewBuilder("small").SetNumWorkers(3)
	b.SetSpout("s", 3)
	b.SetBolt("b", 3).ShuffleGrouping("s")
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c := emulab12(t)
	a, err := EvenScheduler{}.Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if got := a.WorkersUsed(); got != 3 {
		t.Errorf("workers used = %d, want 3", got)
	}
	if got := len(a.NodesUsed()); got != 3 {
		t.Errorf("nodes used = %d, want 3 (one worker per node)", got)
	}
}

func TestEvenRoundRobinOrder(t *testing.T) {
	topo := linearTopo(t, 3, 10, 100) // 12 tasks over 12 nodes
	c := emulab12(t)
	a, err := EvenScheduler{}.Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	// Task i lands on node i (mod 12) in declaration order.
	ids := c.NodeIDs()
	for _, task := range topo.Tasks() {
		want := ids[task.ID%len(ids)]
		if got := a.Placements[task.ID].Node; got != want {
			t.Errorf("task %d on %s, want %s", task.ID, got, want)
		}
	}
}

func TestEvenNoSlots(t *testing.T) {
	topo := linearTopo(t, 1, 10, 100)
	c := emulab12(t)
	state := NewGlobalState(c)
	// Exhaust every slot with fake topologies.
	for _, id := range c.NodeIDs() {
		for _, slot := range state.FreeSlots(id) {
			occupySlot(t, state, id, slot)
		}
	}
	_, err := EvenScheduler{}.Schedule(topo, c, state)
	if !errors.Is(err, ErrNoSlots) {
		t.Fatalf("err = %v, want ErrNoSlots", err)
	}
}

// occupySlot reserves a slot via a single-task topology, so tests can
// exhaust slot capacity through the public API.
func occupySlot(t *testing.T, state *GlobalState, node cluster.NodeID, slot int) {
	t.Helper()
	name := "occupier-" + string(node) + "-" + string(rune('0'+slot))
	b := topology.NewBuilder(name)
	b.SetSpout("s", 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	a := NewAssignment(name, "test")
	a.Place(0, Placement{Node: node, Slot: slot})
	if err := state.Apply(topo, a); err != nil {
		t.Fatalf("Apply: %v", err)
	}
}

func TestOfflineLinearColocatesChains(t *testing.T) {
	topo := linearTopo(t, 6, 20, 256)
	c := emulab12(t)
	oa, err := OfflineLinearScheduler{}.Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("offline: %v", err)
	}
	ea, err := EvenScheduler{}.Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("even: %v", err)
	}
	if !oa.Complete(topo) {
		t.Fatal("offline incomplete")
	}
	if oc, ec := oa.NetworkCost(topo, c), ea.NetworkCost(topo, c); oc >= ec {
		t.Errorf("offline network cost %v not better than even %v", oc, ec)
	}
}

func TestOfflineLinearNoSlots(t *testing.T) {
	topo := linearTopo(t, 1, 10, 100)
	c := emulab12(t)
	state := NewGlobalState(c)
	for _, id := range c.NodeIDs() {
		for _, slot := range state.FreeSlots(id) {
			occupySlot(t, state, id, slot)
		}
	}
	_, err := OfflineLinearScheduler{}.Schedule(topo, c, state)
	if !errors.Is(err, ErrNoSlots) {
		t.Fatalf("err = %v, want ErrNoSlots", err)
	}
}

func TestSchedulerNames(t *testing.T) {
	if NewResourceAwareScheduler().Name() != "r-storm" {
		t.Error("r-storm name")
	}
	if (EvenScheduler{}).Name() != "default-even" {
		t.Error("even name")
	}
	if (OfflineLinearScheduler{}).Name() != "offline-linear" {
		t.Error("offline name")
	}
	if NewExactScheduler().Name() != "exact-bnb" {
		t.Error("exact name")
	}
}
