package core

import (
	"fmt"
	"sort"

	"rstorm/internal/cluster"
	"rstorm/internal/topology"
)

// This file is the cluster-level half of the multi-tenant control plane
// (DESIGN.md §6): instead of admitting topologies one at a time in FIFO
// order, a scheduling pass considers every pending submission against the
// whole cluster, admits in descending priority, and — when a
// higher-priority arrival is infeasible — frees capacity by evicting the
// lowest-priority tenants. Storm's production descendant of R-Storm added
// exactly this (topology priorities with eviction); Ghaderi et al. frame
// the online-arrival shared-cluster setting it serves.

// Tenant pairs a topology with its control-plane metadata: the scheduling
// priority (higher wins; zero = none) and the admission sequence number
// that breaks priority ties FIFO and makes eviction order deterministic.
type Tenant struct {
	Topo     *topology.Topology
	Priority int
	Seq      int
}

// Eviction records one tenant unassigned by the cluster pass to make room
// for a higher-priority admission. The freed assignment is complete —
// eviction is all-or-nothing, never partial — so the caller can re-queue
// the victim for a full reschedule once capacity recovers.
type Eviction struct {
	// Victim is the evicted topology; Priority its priority at eviction.
	Victim   string
	Priority int
	// For is the higher-priority topology the eviction made room for.
	For string
	// Assignment is the complete placement that was freed.
	Assignment *Assignment
}

// ClusterScheduleResult reports one cluster-level scheduling pass.
type ClusterScheduleResult struct {
	// Scheduled maps newly admitted topologies to their assignments;
	// ScheduledOrder lists them in admission order (descending priority,
	// FIFO within a priority).
	Scheduled      map[string]*Assignment
	ScheduledOrder []string
	// Evicted lists the tenants unassigned to admit higher-priority
	// arrivals, in eviction order.
	Evicted []Eviction
	// Failed maps topologies that could not be placed (even after any
	// permissible evictions) to the scheduler's error; FailedOrder lists
	// them in consideration order. Failed topologies caused no evictions:
	// a pass that cannot admit rolls its trial evictions back.
	Failed      map[string]error
	FailedOrder []string
}

// ClusterSchedule runs one cluster-level scheduling pass over the pending
// submissions: pending tenants are considered in descending priority
// (FIFO within a priority, by Seq), each scheduled with sched against
// state and applied atomically. When a pending tenant is infeasible and
// strictly lower-priority tenants are active, the eviction planner frees
// capacity greedily: victims are taken in deterministic order — lowest
// priority first, newest (highest Seq) first within a priority — each
// unassigned in full (the freed assignment is returned for re-queueing),
// until the arrival fits or no eligible victims remain. If it still does
// not fit, every trial eviction is rolled back (the victims' assignments
// re-applied unchanged) and the tenant is reported failed, so a failed
// admission never leaves the cluster with anything evicted and never
// leaves a partial assignment anywhere.
//
// active lists the currently scheduled tenants eligible as victims; a
// tenant admitted by this pass is never evicted by it (pending is
// priority-sorted, so later admissions never outrank earlier ones).
//
// With every priority zero (the default) the pass is exactly the old
// FIFO round: submission order is preserved and no eviction can trigger
// (no tenant has strictly lower priority than another).
func ClusterSchedule(
	sched Scheduler,
	c *cluster.Cluster,
	state *GlobalState,
	pending []Tenant,
	active []Tenant,
) ClusterScheduleResult {
	res := ClusterScheduleResult{
		Scheduled: make(map[string]*Assignment),
		Failed:    make(map[string]error),
	}

	order := append([]Tenant(nil), pending...)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Priority != order[j].Priority {
			return order[i].Priority > order[j].Priority
		}
		return order[i].Seq < order[j].Seq
	})

	// Victim candidates, kept sorted in eviction order: lowest priority
	// first, newest first within a priority. Evicting the newest of the
	// cheapest means long-running tenants outlive bursts of their peers.
	victims := append([]Tenant(nil), active...)
	sort.SliceStable(victims, func(i, j int) bool {
		if victims[i].Priority != victims[j].Priority {
			return victims[i].Priority < victims[j].Priority
		}
		return victims[i].Seq > victims[j].Seq
	})

	for _, t := range order {
		name := t.Topo.Name()
		a, err := trySchedule(sched, t.Topo, c, state)
		if err == nil {
			res.Scheduled[name] = a
			res.ScheduledOrder = append(res.ScheduledOrder, name)
			continue
		}

		// Infeasible: trial-evict eligible victims one at a time, retrying
		// after each. All bookkeeping is reversible until the admission
		// succeeds.
		var trial []Eviction
		for _, v := range victims {
			if v.Priority >= t.Priority {
				break // sorted ascending: no eligible victims remain
			}
			freed := state.Assignment(v.Topo.Name())
			if freed == nil {
				continue // not scheduled (itself pending): nothing to free
			}
			state.Remove(v.Topo.Name())
			trial = append(trial, Eviction{
				Victim:     v.Topo.Name(),
				Priority:   v.Priority,
				For:        name,
				Assignment: freed,
			})
			if a, err = trySchedule(sched, t.Topo, c, state); err == nil {
				break
			}
		}
		if err != nil {
			// Still infeasible: roll every trial eviction back. Re-applying
			// into state that only had those same reservations removed
			// cannot fail.
			for i := len(trial) - 1; i >= 0; i-- {
				v := trial[i]
				if applyErr := reapply(state, victimTopo(victims, v.Victim), v.Assignment); applyErr != nil {
					// Unreachable by construction; surface it rather than
					// silently corrupting state.
					res.Failed[name] = fmt.Errorf("rollback of %q failed: %w (after %v)",
						v.Victim, applyErr, err)
				}
			}
			if res.Failed[name] == nil {
				res.Failed[name] = err
			}
			res.FailedOrder = append(res.FailedOrder, name)
			continue
		}
		// Admission succeeded: commit the evictions and drop the victims
		// from the candidate pool (they are unassigned now).
		res.Evicted = append(res.Evicted, trial...)
		evictedSet := make(map[string]bool, len(trial))
		for _, e := range trial {
			evictedSet[e.Victim] = true
		}
		if len(evictedSet) > 0 {
			kept := victims[:0]
			for _, v := range victims {
				if !evictedSet[v.Topo.Name()] {
					kept = append(kept, v)
				}
			}
			victims = kept
		}
		res.Scheduled[name] = a
		res.ScheduledOrder = append(res.ScheduledOrder, name)
	}
	return res
}

// trySchedule computes and applies an assignment atomically, leaving state
// untouched on failure.
func trySchedule(sched Scheduler, topo *topology.Topology, c *cluster.Cluster, state *GlobalState) (*Assignment, error) {
	a, err := sched.Schedule(topo, c, state)
	if err != nil {
		return nil, err
	}
	if err := state.Apply(topo, a); err != nil {
		return nil, err
	}
	return a, nil
}

// reapply restores a victim's assignment during rollback.
func reapply(state *GlobalState, topo *topology.Topology, a *Assignment) error {
	if topo == nil {
		return fmt.Errorf("victim topology unknown")
	}
	return state.Apply(topo, a)
}

// victimTopo finds a tenant's topology by name in the victim pool.
func victimTopo(victims []Tenant, name string) *topology.Topology {
	for _, v := range victims {
		if v.Topo.Name() == name {
			return v.Topo
		}
	}
	return nil
}
