package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"rstorm/internal/cluster"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// propScenario is one randomized IncrementalReschedule input: a random
// chain topology, a random (possibly infeasible) current placement,
// random measured demands, and random knobs — everything derived from the
// scenario seed, so failures reproduce exactly.
type propScenario struct {
	seed    int64
	topo    *topology.Topology
	c       *cluster.Cluster
	current *Assignment
	opts    IncrementalOptions
}

// genScenario derives a scenario from its seed. withTraffic additionally
// equips the options with a random measured traffic matrix, switching the
// pass to the network-cost objective.
func genScenario(t *testing.T, seed int64, withTraffic bool) propScenario {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nStages := 3 + rng.Intn(3)
	b := topology.NewBuilder(fmt.Sprintf("prop-%d", seed))
	prev := ""
	var comps []string
	for i := 0; i < nStages; i++ {
		name := fmt.Sprintf("c%d", i)
		par := 1 + rng.Intn(4)
		cpu := 5 + rng.Float64()*80
		mem := 32 + rng.Float64()*700
		if i == 0 {
			b.SetSpout(name, par).SetCPULoad(cpu).SetMemoryLoad(mem)
		} else {
			bb := b.SetBolt(name, par).SetCPULoad(cpu).SetMemoryLoad(mem)
			if rng.Intn(2) == 0 {
				bb.ShuffleGrouping(prev)
			} else {
				bb.FieldsGrouping(prev, "key")
			}
		}
		comps = append(comps, name)
		prev = name
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("seed %d: Build: %v", seed, err)
	}
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	ids := c.NodeIDs()

	current := NewAssignment(topo.Name(), "random")
	for _, task := range topo.Tasks() {
		current.Place(task.ID, Placement{Node: ids[rng.Intn(len(ids))], Slot: 0})
	}

	demands := make(map[string]resource.Vector)
	for _, name := range comps {
		if rng.Intn(3) == 0 {
			continue // this component keeps its declared demand
		}
		demands[name] = resource.Vector{
			CPU:       1 + rng.Float64()*119,
			MemoryMB:  16 + rng.Float64()*900,
			Bandwidth: rng.Float64() * 20,
		}
	}
	frozen := make(map[int]bool)
	dead := make(map[int]bool)
	for _, task := range topo.Tasks() {
		switch rng.Intn(8) {
		case 0:
			frozen[task.ID] = true
		case 1:
			dead[task.ID] = true
		}
	}
	opts := IncrementalOptions{
		Demands:     demands,
		Frozen:      frozen,
		Dead:        dead,
		MaxMoves:    []int{0, 1, 2, 5}[rng.Intn(4)],
		Margin:      []float64{0, 0.15, 0.3}[rng.Intn(3)],
		MemHeadroom: []float64{0, 0.8}[rng.Intn(2)],
	}
	if withTraffic {
		m := NewTrafficMatrix()
		for _, st := range topo.Streams() {
			m.Set(st.From, st.To, 0.5+rng.Float64()*1000)
		}
		opts.Traffic = m
	}
	return propScenario{seed: seed, topo: topo, c: c, current: current, opts: opts}
}

// measuredDemand mirrors the pass's demand resolution: measured if
// present, declared otherwise.
func (sc propScenario) measuredDemand(task topology.Task) resource.Vector {
	if d, ok := sc.opts.Demands[task.Component]; ok {
		return d
	}
	return sc.topo.TaskDemand(task)
}

// TestIncrementalRescheduleInvariants fuzzes the pass across seeded random
// inputs under both objectives and asserts the invariants no input may
// break: completeness, the move cap, pinned frozen/dead tasks, faithful
// move records, hard-axis feasibility of every move target (with dead
// demand NOT debited — live-only accounting), and determinism.
func TestIncrementalRescheduleInvariants(t *testing.T) {
	for _, objective := range []struct {
		name        string
		withTraffic bool
	}{
		{"distance", false},
		{"traffic", true},
	} {
		t.Run(objective.name, func(t *testing.T) {
			for seed := int64(1); seed <= 60; seed++ {
				sc := genScenario(t, seed, objective.withTraffic)
				sched := NewResourceAwareScheduler()
				next, moves, err := sched.IncrementalReschedule(sc.topo, sc.c, sc.current, sc.opts)
				if err != nil {
					t.Fatalf("seed %d: IncrementalReschedule: %v", seed, err)
				}

				// Completeness: every task placed on a known node.
				if !next.Complete(sc.topo) {
					t.Fatalf("seed %d: incomplete assignment", seed)
				}

				// Move cap.
				if sc.opts.MaxMoves > 0 && len(moves) > sc.opts.MaxMoves {
					t.Errorf("seed %d: %d moves exceed cap %d", seed, len(moves), sc.opts.MaxMoves)
				}

				// Frozen and dead tasks are pinned.
				for id := range sc.opts.Frozen {
					if next.Placements[id] != sc.current.Placements[id] {
						t.Errorf("seed %d: frozen task %d moved", seed, id)
					}
				}
				for id := range sc.opts.Dead {
					if next.Placements[id] != sc.current.Placements[id] {
						t.Errorf("seed %d: dead task %d moved", seed, id)
					}
				}

				// Moves describe exactly the diff between current and next.
				moved := make(map[int]bool, len(moves))
				for _, m := range moves {
					moved[m.TaskID] = true
					if sc.current.Placements[m.TaskID] != m.From {
						t.Errorf("seed %d: move %v has stale From", seed, m)
					}
					if next.Placements[m.TaskID] != m.To {
						t.Errorf("seed %d: move %v not reflected in assignment", seed, m)
					}
					if m.From == m.To {
						t.Errorf("seed %d: no-op move %v recorded", seed, m)
					}
				}
				for id, p := range sc.current.Placements {
					if !moved[id] && next.Placements[id] != p {
						t.Errorf("seed %d: task %d moved without a Move record", seed, id)
					}
				}

				// Hard axis: any node that received a move ends with its
				// *live* measured memory within capacity. Dead tasks do not
				// count — their demand must never be debited (the working
				// set died with them), which is exactly what lets survivors
				// take that capacity.
				targets := make(map[cluster.NodeID]bool)
				for _, m := range moves {
					targets[m.To.Node] = true
				}
				liveMem := make(map[cluster.NodeID]float64)
				for _, task := range sc.topo.Tasks() {
					if sc.opts.Dead[task.ID] {
						continue
					}
					liveMem[next.Placements[task.ID].Node] += sc.measuredDemand(task).MemoryMB
				}
				for node := range targets {
					if cap := sc.c.Node(node).Spec.Capacity.MemoryMB; liveMem[node] > cap+1e-9 {
						t.Errorf("seed %d: move target %s at %.1f MB exceeds capacity %.1f",
							seed, node, liveMem[node], cap)
					}
				}

				// Determinism: the same scenario replans identically.
				sc2 := genScenario(t, seed, objective.withTraffic)
				next2, moves2, err := NewResourceAwareScheduler().
					IncrementalReschedule(sc2.topo, sc2.c, sc2.current, sc2.opts)
				if err != nil {
					t.Fatalf("seed %d: replay: %v", seed, err)
				}
				if !reflect.DeepEqual(next.Placements, next2.Placements) || !reflect.DeepEqual(moves, moves2) {
					t.Errorf("seed %d: replan diverged", seed)
				}
			}
		})
	}
}

// TestIncrementalTrafficDeadNodeNotDebited is the traffic-objective twin
// of TestIncrementalDeadTasksFreeTheirNode: with the network-cost
// objective active, a dead task's phantom demand must still not be
// debited from its node, and the dead task itself must neither move nor
// attract traffic (a live neighbor consolidates toward live tasks, not
// toward the corpse).
func TestIncrementalTrafficDeadNodeNotDebited(t *testing.T) {
	topo := incrTopo(t, 2)
	c := incrCluster(t)
	sched := NewResourceAwareScheduler()
	ids := c.NodeIDs()

	current := NewAssignment("incr", "manual")
	var workIDs []int
	for _, task := range topo.Tasks() {
		if task.Component == "work" {
			workIDs = append(workIDs, task.ID)
		}
		current.Place(task.ID, Placement{Node: ids[0], Slot: 0})
	}
	deadID, liveID := workIDs[0], workIDs[1]
	current.Place(deadID, Placement{Node: ids[1], Slot: 0})
	demands := map[string]resource.Vector{
		"work": {CPU: 10, MemoryMB: 1800},
	}
	avail := map[cluster.NodeID]resource.Vector{
		ids[0]: c.Node(ids[0]).Spec.Capacity,
		ids[1]: c.Node(ids[1]).Spec.Capacity,
	}
	m := NewTrafficMatrix()
	m.Set("s", "work", 500)
	m.Set("work", "z", 500)
	next, moves, err := sched.IncrementalReschedule(topo, c, current, IncrementalOptions{
		Demands:   demands,
		Available: avail,
		Margin:    0.15,
		Dead:      map[int]bool{deadID: true},
		Traffic:   m,
	})
	if err != nil {
		t.Fatalf("IncrementalReschedule: %v", err)
	}
	if got := next.Placements[deadID]; got != current.Placements[deadID] {
		t.Errorf("dead task moved to %v; it must stay pinned", got)
	}
	if got := next.Placements[liveID]; got.Node != ids[1] {
		t.Errorf("live work task on %v, want the dead task's freed node %v (moves: %v)",
			got.Node, ids[1], moves)
	}
}
