package core

import (
	"fmt"
	"sort"
	"strings"

	"rstorm/internal/cluster"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// Placement locates one task: a node and a worker-slot index on that node.
// Tasks sharing (Node, Slot) run in the same worker process and communicate
// intra-process.
type Placement struct {
	Node cluster.NodeID
	Slot int
}

// String implements fmt.Stringer.
func (p Placement) String() string {
	return fmt.Sprintf("%s/slot%d", p.Node, p.Slot)
}

// Assignment is a complete task → placement mapping for one topology.
type Assignment struct {
	// Topology is the scheduled topology's name.
	Topology string
	// Scheduler is the name of the scheduler that produced the mapping.
	Scheduler string
	// Placements maps task ID to placement.
	Placements map[int]Placement
}

// NewAssignment returns an empty assignment for the named topology.
func NewAssignment(topo, scheduler string) *Assignment {
	return &Assignment{
		Topology:   topo,
		Scheduler:  scheduler,
		Placements: make(map[int]Placement),
	}
}

// Clone returns a deep copy of the assignment. Failover planners mutate
// the copy (re-placing a dead node's tasks) while the original stays the
// authoritative record of what is currently applied.
func (a *Assignment) Clone() *Assignment {
	out := &Assignment{
		Topology:   a.Topology,
		Scheduler:  a.Scheduler,
		Placements: make(map[int]Placement, len(a.Placements)),
	}
	for id, p := range a.Placements {
		out.Placements[id] = p
	}
	return out
}

// Place records the placement for a task.
func (a *Assignment) Place(taskID int, p Placement) {
	a.Placements[taskID] = p
}

// PlacementOf returns the placement of a task.
func (a *Assignment) PlacementOf(taskID int) (Placement, bool) {
	p, ok := a.Placements[taskID]
	return p, ok
}

// NodesUsed returns the distinct nodes hosting at least one task, sorted.
func (a *Assignment) NodesUsed() []cluster.NodeID {
	set := make(map[cluster.NodeID]bool)
	for _, p := range a.Placements {
		set[p.Node] = true
	}
	out := make([]cluster.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WorkersUsed returns the number of distinct (node, slot) worker processes.
func (a *Assignment) WorkersUsed() int {
	set := make(map[Placement]bool)
	for _, p := range a.Placements {
		set[p] = true
	}
	return len(set)
}

// TasksOnNode returns the task IDs placed on a node, sorted.
func (a *Assignment) TasksOnNode(n cluster.NodeID) []int {
	var out []int
	for id, p := range a.Placements {
		if p.Node == n {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// UsedPerNode sums the demand of the tasks placed on each node. It
// iterates tasks in topology order, not placement-map order: per-node
// sums are floating-point accumulations, and a map-order walk would let
// the low bits differ between otherwise identical runs.
func (a *Assignment) UsedPerNode(topo *topology.Topology) map[cluster.NodeID]resource.Vector {
	out := make(map[cluster.NodeID]resource.Vector)
	for _, task := range topo.Tasks() {
		p, ok := a.Placements[task.ID]
		if !ok {
			continue
		}
		out[p.Node] = out[p.Node].Add(topo.TaskDemand(task))
	}
	return out
}

// Complete reports whether every task of topo has a placement.
func (a *Assignment) Complete(topo *topology.Topology) bool {
	for _, task := range topo.Tasks() {
		if _, ok := a.Placements[task.ID]; !ok {
			return false
		}
	}
	return true
}

// Validate checks the assignment against the cluster: every task placed on
// an existing node and valid slot, and — when classes mark memory hard —
// that no node's memory capacity is exceeded by this assignment alone.
func (a *Assignment) Validate(topo *topology.Topology, c *cluster.Cluster, classes resource.Classes) error {
	if !a.Complete(topo) {
		return fmt.Errorf("assignment for %q is incomplete: %d of %d tasks placed",
			a.Topology, len(a.Placements), topo.TotalTasks())
	}
	for id, p := range a.Placements {
		n := c.Node(p.Node)
		if n == nil {
			return fmt.Errorf("task %d placed on unknown node %q", id, p.Node)
		}
		if p.Slot < 0 || p.Slot >= n.Spec.Slots {
			return fmt.Errorf("task %d placed on invalid slot %d of node %q (has %d slots)",
				id, p.Slot, p.Node, n.Spec.Slots)
		}
	}
	// Check nodes in sorted order so the first-reported violation (and
	// therefore the error text) is the same on every run.
	used := a.UsedPerNode(topo)
	nodes := make([]cluster.NodeID, 0, len(used))
	for nodeID := range used {
		nodes = append(nodes, nodeID)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, nodeID := range nodes {
		u := used[nodeID]
		capa := c.Node(nodeID).Spec.Capacity
		if !resource.SatisfiesHard(capa, u, classes) {
			return fmt.Errorf("node %q hard constraint violated: used %v of %v",
				nodeID, u, capa)
		}
	}
	return nil
}

// NetworkCost returns the expected scheduler-visible network distance per
// tuple hand-off, summed over all streams. For each stream, each producer
// task contributes the mean distance to the consumer tasks it can reach
// under the stream's grouping. Lower is better; zero means every hand-off
// is node-local.
func (a *Assignment) NetworkCost(topo *topology.Topology, c *cluster.Cluster) float64 {
	var total float64
	for _, s := range topo.Streams() {
		producers := topo.TasksOf(s.From)
		consumers := topo.TasksOf(s.To)
		if len(producers) == 0 || len(consumers) == 0 {
			continue
		}
		for _, pt := range producers {
			pp, ok := a.Placements[pt.ID]
			if !ok {
				continue
			}
			targets := consumers
			if s.Grouping == topology.GroupingGlobal {
				targets = consumers[:1]
			}
			if s.Grouping == topology.GroupingLocalOrShuffle {
				// A worker-local consumer absorbs all of this
				// producer's traffic at zero network distance.
				local := false
				for _, ct := range targets {
					if cp, ok := a.Placements[ct.ID]; ok && cp == pp {
						local = true
						break
					}
				}
				if local {
					continue
				}
			}
			var sum float64
			for _, ct := range targets {
				cp, ok := a.Placements[ct.ID]
				if !ok {
					continue
				}
				sum += c.NetworkDistance(pp.Node, cp.Node)
			}
			if s.Grouping == topology.GroupingAll {
				total += sum // replicated: every consumer pays
			} else {
				total += sum / float64(len(targets))
			}
		}
	}
	return total
}

// CrossNodePairs counts adjacent (producer task, consumer task) pairs whose
// placements are on different nodes, a coarse colocation metric.
func (a *Assignment) CrossNodePairs(topo *topology.Topology) int {
	var crossings int
	for _, s := range topo.Streams() {
		for _, pt := range topo.TasksOf(s.From) {
			pp, ok := a.Placements[pt.ID]
			if !ok {
				continue
			}
			for _, ct := range topo.TasksOf(s.To) {
				cp, ok := a.Placements[ct.ID]
				if !ok {
					continue
				}
				if pp.Node != cp.Node {
					crossings++
				}
			}
		}
	}
	return crossings
}

// String renders a compact node → tasks table.
func (a *Assignment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "assignment %q (%s):", a.Topology, a.Scheduler)
	for _, n := range a.NodesUsed() {
		fmt.Fprintf(&b, " %s=%v", n, a.TasksOnNode(n))
	}
	return b.String()
}
