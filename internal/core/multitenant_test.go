package core

import (
	"math/rand"
	"reflect"
	"testing"

	"rstorm/internal/cluster"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// tenantTopo builds a two-component topology with the given per-task
// memory demand — memory is the hard axis, so it is what admission and
// eviction bind on.
func tenantTopo(t *testing.T, name string, par int, memMB float64) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder(name)
	b.SetSpout("s", 1).SetCPULoad(10).SetMemoryLoad(128)
	b.SetBolt("w", par).ShuffleGrouping("s").SetCPULoad(20).SetMemoryLoad(memMB)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return topo
}

// fillTenants builds n low-priority tenants that together nearly fill the
// 12-node testbed's memory (each ~5.1 GB of the 24 GB total).
func fillTenants(t *testing.T, n int) []Tenant {
	t.Helper()
	out := make([]Tenant, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Tenant{
			Topo: tenantTopo(t, "batch-"+string(rune('a'+i)), 5, 1000),
			Seq:  i,
		})
	}
	return out
}

func scheduleAll(t *testing.T, state *GlobalState, c *cluster.Cluster, tenants []Tenant) {
	t.Helper()
	sched := NewResourceAwareScheduler()
	for _, tn := range tenants {
		a, err := sched.Schedule(tn.Topo, c, state)
		if err != nil {
			t.Fatalf("schedule %s: %v", tn.Topo.Name(), err)
		}
		if err := state.Apply(tn.Topo, a); err != nil {
			t.Fatalf("apply %s: %v", tn.Topo.Name(), err)
		}
	}
}

func TestClusterScheduleFIFOWithEqualPriorities(t *testing.T) {
	c := emulab12(t)
	// Reference: the old FIFO round — schedule each in submission order.
	ref := NewGlobalState(c)
	pending := []Tenant{
		{Topo: tenantTopo(t, "one", 4, 700), Seq: 0},
		{Topo: tenantTopo(t, "two", 4, 700), Seq: 1},
		{Topo: tenantTopo(t, "three", 4, 700), Seq: 2},
	}
	scheduleAll(t, ref, c, pending)

	state := NewGlobalState(c)
	res := ClusterSchedule(NewResourceAwareScheduler(), c, state, pending, nil)
	if want := []string{"one", "two", "three"}; !reflect.DeepEqual(res.ScheduledOrder, want) {
		t.Fatalf("ScheduledOrder = %v, want %v", res.ScheduledOrder, want)
	}
	if len(res.Evicted) != 0 {
		t.Fatalf("equal priorities must never evict, got %v", res.Evicted)
	}
	for _, name := range res.ScheduledOrder {
		if !reflect.DeepEqual(res.Scheduled[name].Placements, ref.Assignment(name).Placements) {
			t.Errorf("%s: cluster pass placements differ from FIFO reference", name)
		}
	}
}

func TestClusterScheduleOrdersByPriority(t *testing.T) {
	c := emulab12(t)
	state := NewGlobalState(c)
	pending := []Tenant{
		{Topo: tenantTopo(t, "low", 4, 700), Priority: 1, Seq: 0},
		{Topo: tenantTopo(t, "high", 4, 700), Priority: 9, Seq: 1},
		{Topo: tenantTopo(t, "mid-a", 4, 700), Priority: 5, Seq: 2},
		{Topo: tenantTopo(t, "mid-b", 4, 700), Priority: 5, Seq: 3},
	}
	res := ClusterSchedule(NewResourceAwareScheduler(), c, state, pending, nil)
	want := []string{"high", "mid-a", "mid-b", "low"}
	if !reflect.DeepEqual(res.ScheduledOrder, want) {
		t.Fatalf("ScheduledOrder = %v, want %v", res.ScheduledOrder, want)
	}
}

func TestClusterScheduleEvictsLowestPriorityVictims(t *testing.T) {
	c := emulab12(t)
	state := NewGlobalState(c)
	// Fill the cluster with four low-priority tenants (~20.6 GB of 24 GB).
	active := fillTenants(t, 4)
	scheduleAll(t, state, c, active)

	// A high-priority arrival needing ~7.1 GB: free memory (~3.4 GB) is
	// not enough, so victims must fall.
	prod := Tenant{Topo: tenantTopo(t, "prod", 7, 1000), Priority: 8, Seq: 100}
	res := ClusterSchedule(NewResourceAwareScheduler(), c, state, []Tenant{prod}, active)

	if len(res.ScheduledOrder) != 1 || res.ScheduledOrder[0] != "prod" {
		t.Fatalf("prod not admitted: %+v", res)
	}
	if len(res.Evicted) == 0 {
		t.Fatal("expected evictions")
	}
	// Victim order: lowest priority first (all zero here), newest first.
	wantFirst := "batch-d"
	if res.Evicted[0].Victim != wantFirst {
		t.Errorf("first victim = %s, want %s (newest of the lowest priority)", res.Evicted[0].Victim, wantFirst)
	}
	for _, e := range res.Evicted {
		if e.For != "prod" {
			t.Errorf("eviction of %s attributed to %q, want prod", e.Victim, e.For)
		}
		if state.Assignment(e.Victim) != nil {
			t.Errorf("victim %s still scheduled after eviction", e.Victim)
		}
		if e.Assignment == nil || len(e.Assignment.Placements) == 0 {
			t.Errorf("victim %s freed assignment missing", e.Victim)
		}
	}
	if state.Assignment("prod") == nil {
		t.Fatal("prod assignment not applied")
	}
}

func TestClusterScheduleNeverEvictsEqualOrHigherPriority(t *testing.T) {
	c := emulab12(t)
	state := NewGlobalState(c)
	active := fillTenants(t, 4)
	for i := range active {
		active[i].Priority = 5
	}
	scheduleAll(t, state, c, active)

	// Same priority as the actives and far too big: must fail, evict
	// nothing, and leave every active tenant scheduled.
	pend := Tenant{Topo: tenantTopo(t, "peer", 12, 1500), Priority: 5, Seq: 99}
	res := ClusterSchedule(NewResourceAwareScheduler(), c, state, []Tenant{pend}, active)
	if len(res.Evicted) != 0 {
		t.Fatalf("evicted equal-priority tenants: %v", res.Evicted)
	}
	if res.Failed["peer"] == nil {
		t.Fatal("peer should have failed")
	}
	for _, a := range active {
		if state.Assignment(a.Topo.Name()) == nil {
			t.Errorf("active tenant %s lost its assignment", a.Topo.Name())
		}
	}
}

func TestClusterScheduleRollsBackWhenEvictionInsufficient(t *testing.T) {
	c := emulab12(t)
	state := NewGlobalState(c)
	active := fillTenants(t, 4)
	scheduleAll(t, state, c, active)
	before := state.AvailableAll()

	// Demands one 3000 MB task: no node can ever host it (2048 MB nodes),
	// so even evicting everything cannot help — all trial evictions must
	// roll back.
	huge := Tenant{Topo: tenantTopo(t, "huge", 1, 3000), Priority: 9, Seq: 50}
	res := ClusterSchedule(NewResourceAwareScheduler(), c, state, []Tenant{huge}, active)
	if len(res.Evicted) != 0 {
		t.Fatalf("committed evictions for an unplaceable tenant: %v", res.Evicted)
	}
	if res.Failed["huge"] == nil {
		t.Fatal("huge should have failed")
	}
	after := state.AvailableAll()
	if !reflect.DeepEqual(before, after) {
		t.Errorf("availability changed across a failed admission:\nbefore %v\nafter  %v", before, after)
	}
	for _, a := range active {
		got := state.Assignment(a.Topo.Name())
		if got == nil || !got.Complete(a.Topo) {
			t.Errorf("tenant %s assignment damaged by rollback", a.Topo.Name())
		}
	}
}

// TestClusterScheduleDeterministicVictimSequence is the eviction analogue
// of the golden-diff harness: identical priorities and capacities must
// produce the identical victim sequence run after run.
func TestClusterScheduleDeterministicVictimSequence(t *testing.T) {
	run := func() []string {
		c := emulab12(t)
		state := NewGlobalState(c)
		active := fillTenants(t, 4)
		scheduleAll(t, state, c, active)
		prod := Tenant{Topo: tenantTopo(t, "prod", 7, 1000), Priority: 8, Seq: 100}
		res := ClusterSchedule(NewResourceAwareScheduler(), c, state, []Tenant{prod}, active)
		out := make([]string, 0, len(res.Evicted))
		for _, e := range res.Evicted {
			out = append(out, e.Victim)
		}
		return out
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("scenario produced no evictions")
	}
	for i := 0; i < 5; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("victim sequence diverged on run %d: %v vs %v", i+2, got, first)
		}
	}
}

// TestClusterScheduleNeverPartial fuzzes random tenant mixes and checks
// the invariant behind "full assignments re-queued, never partial": after
// every pass, each topology is either completely scheduled (assignment
// covers every task, resources reserved) or completely absent from state.
func TestClusterScheduleNeverPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := emulab12(t)
	classes := resource.DefaultClasses()
	for iter := 0; iter < 40; iter++ {
		state := NewGlobalState(c)
		var active []Tenant
		nActive := 2 + rng.Intn(4)
		for i := 0; i < nActive; i++ {
			topo := tenantTopo(t, "act-"+string(rune('a'+i)), 2+rng.Intn(5), float64(400+rng.Intn(900)))
			active = append(active, Tenant{Topo: topo, Priority: rng.Intn(3), Seq: i})
		}
		// Some actives may themselves fail to fit; keep only the scheduled.
		sched := NewResourceAwareScheduler()
		kept := active[:0]
		for _, tn := range active {
			if a, err := sched.Schedule(tn.Topo, c, state); err == nil {
				if err := state.Apply(tn.Topo, a); err == nil {
					kept = append(kept, tn)
				}
			}
		}
		active = kept
		var pending []Tenant
		nPend := 1 + rng.Intn(3)
		for i := 0; i < nPend; i++ {
			topo := tenantTopo(t, "pend-"+string(rune('a'+i)), 2+rng.Intn(6), float64(400+rng.Intn(1200)))
			pending = append(pending, Tenant{Topo: topo, Priority: rng.Intn(6), Seq: 100 + i})
		}
		res := ClusterSchedule(sched, c, state, pending, active)

		topoOf := make(map[string]*topology.Topology)
		for _, tn := range active {
			topoOf[tn.Topo.Name()] = tn.Topo
		}
		for _, tn := range pending {
			topoOf[tn.Topo.Name()] = tn.Topo
		}
		evicted := make(map[string]bool)
		for _, e := range res.Evicted {
			if !e.Assignment.Complete(topoOf[e.Victim]) {
				t.Fatalf("iter %d: eviction of %s returned a partial assignment", iter, e.Victim)
			}
			evicted[e.Victim] = true
		}
		for name, topo := range topoOf {
			a := state.Assignment(name)
			if a == nil {
				continue // fully absent is fine (failed, evicted, or never active)
			}
			if evicted[name] {
				t.Fatalf("iter %d: %s both evicted and still scheduled", iter, name)
			}
			if !a.Complete(topo) {
				t.Fatalf("iter %d: %s has a partial assignment (%d of %d tasks)",
					iter, name, len(a.Placements), topo.TotalTasks())
			}
			if err := a.Validate(topo, c, classes); err != nil {
				t.Fatalf("iter %d: %s assignment invalid: %v", iter, name, err)
			}
		}
		// Failed admissions must have evicted nothing on their behalf.
		for name := range res.Failed {
			for _, e := range res.Evicted {
				if e.For == name {
					t.Fatalf("iter %d: failed admission %s committed an eviction of %s", iter, name, e.Victim)
				}
			}
		}
	}
}
