package core

import (
	"errors"
	"testing"
	"testing/quick"

	"rstorm/internal/cluster"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// linearTopo builds spout -> b1 -> b2 -> b3, parallelism par, with the
// given per-task demands.
func linearTopo(t *testing.T, par int, cpu, mem float64) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder("linear")
	b.SetSpout("spout", par).SetCPULoad(cpu).SetMemoryLoad(mem)
	b.SetBolt("b1", par).ShuffleGrouping("spout").SetCPULoad(cpu).SetMemoryLoad(mem)
	b.SetBolt("b2", par).ShuffleGrouping("b1").SetCPULoad(cpu).SetMemoryLoad(mem)
	b.SetBolt("b3", par).ShuffleGrouping("b2").SetCPULoad(cpu).SetMemoryLoad(mem)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func emulab12(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	return c
}

func TestTaskOrderingInterleavesAdjacentComponents(t *testing.T) {
	topo := linearTopo(t, 3, 10, 100)
	ordered := TaskOrdering(topo)
	if len(ordered) != 12 {
		t.Fatalf("ordering has %d tasks, want 12", len(ordered))
	}
	// Algorithm 3 draws one task per component per round:
	// spout[0] b1[0] b2[0] b3[0] spout[1] b1[1] ...
	wantComponents := []string{
		"spout", "b1", "b2", "b3",
		"spout", "b1", "b2", "b3",
		"spout", "b1", "b2", "b3",
	}
	for i, task := range ordered {
		if task.Component != wantComponents[i] {
			t.Fatalf("position %d = %s, want %s (full: %v)", i, task.Component, wantComponents[i], ordered)
		}
	}
}

func TestTaskOrderingUnevenParallelism(t *testing.T) {
	b := topology.NewBuilder("uneven")
	b.SetSpout("s", 1)
	b.SetBolt("a", 3).ShuffleGrouping("s")
	b.SetBolt("z", 1).ShuffleGrouping("a")
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ordered := TaskOrdering(topo)
	if len(ordered) != 5 {
		t.Fatalf("ordering = %v", ordered)
	}
	// Rounds: s[0] a[0] z[0], then a[1], then a[2].
	want := []string{"s", "a", "z", "a", "a"}
	for i, task := range ordered {
		if task.Component != want[i] {
			t.Fatalf("ordering = %v", ordered)
		}
	}
}

func TestQuickTaskOrderingCoversEveryTaskOnce(t *testing.T) {
	f := func(p1, p2, p3 uint8) bool {
		b := topology.NewBuilder("q")
		b.SetSpout("s", int(p1%5)+1)
		b.SetBolt("a", int(p2%5)+1).ShuffleGrouping("s")
		b.SetBolt("z", int(p3%5)+1).ShuffleGrouping("a")
		topo, err := b.Build()
		if err != nil {
			return false
		}
		ordered := TaskOrdering(topo)
		if len(ordered) != topo.TotalTasks() {
			return false
		}
		seen := make(map[int]bool, len(ordered))
		for _, task := range ordered {
			if seen[task.ID] {
				return false
			}
			seen[task.ID] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRStormSchedulesAllTasks(t *testing.T) {
	topo := linearTopo(t, 6, 25, 256)
	c := emulab12(t)
	state := NewGlobalState(c)
	sched := NewResourceAwareScheduler()

	a, err := sched.Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if !a.Complete(topo) {
		t.Fatal("assignment incomplete")
	}
	if err := a.Validate(topo, c, resource.DefaultClasses()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRStormRespectsHardMemoryConstraint(t *testing.T) {
	// 24 tasks x 600 MB = 14400 MB total; a node holds 2048 MB, so at
	// most 3 tasks per node. No node may exceed its memory.
	topo := linearTopo(t, 6, 5, 600)
	c := emulab12(t)
	state := NewGlobalState(c)

	a, err := NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	for node, used := range a.UsedPerNode(topo) {
		if capa := c.Node(node).Spec.Capacity; used.MemoryMB > capa.MemoryMB {
			t.Errorf("node %s memory %v exceeds capacity %v", node, used.MemoryMB, capa.MemoryMB)
		}
	}
}

func TestRStormErrorsWhenMemoryImpossible(t *testing.T) {
	topo := linearTopo(t, 6, 5, 4096) // single task exceeds any node
	c := emulab12(t)
	state := NewGlobalState(c)
	_, err := NewResourceAwareScheduler().Schedule(topo, c, state)
	if !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("err = %v, want ErrInsufficientResources", err)
	}
}

func TestRStormAllowsSoftCPUOvercommit(t *testing.T) {
	// Total CPU demand 24*60 = 1440 > 1200 cluster points, but memory
	// fits; scheduling must succeed because CPU is a soft constraint.
	topo := linearTopo(t, 6, 60, 100)
	c := emulab12(t)
	state := NewGlobalState(c)
	a, err := NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if !a.Complete(topo) {
		t.Fatal("incomplete assignment under soft overcommit")
	}
}

func TestRStormPacksFewerNodesThanEven(t *testing.T) {
	// Compute-bound Fig. 9a scenario: 24 tasks of 50 points each fill
	// exactly 12 cores; R-Storm should use ~6 of 12 nodes (2 tasks/node)
	// while the even scheduler uses all 12.
	topo := linearTopo(t, 6, 50, 512)
	c := emulab12(t)

	ra, err := NewResourceAwareScheduler().Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("r-storm: %v", err)
	}
	ea, err := EvenScheduler{}.Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("even: %v", err)
	}
	if got := len(ea.NodesUsed()); got != 12 {
		t.Errorf("even scheduler uses %d nodes, want 12", got)
	}
	if got := len(ra.NodesUsed()); got > 7 {
		t.Errorf("r-storm uses %d nodes, want <= 7", got)
	}
}

func TestRStormColocatesBetterThanEven(t *testing.T) {
	topo := linearTopo(t, 6, 20, 256)
	c := emulab12(t)

	ra, err := NewResourceAwareScheduler().Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("r-storm: %v", err)
	}
	ea, err := EvenScheduler{}.Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("even: %v", err)
	}
	rc, ec := ra.NetworkCost(topo, c), ea.NetworkCost(topo, c)
	if rc >= ec {
		t.Errorf("r-storm network cost %v not better than even %v", rc, ec)
	}
}

func TestRStormDeterministic(t *testing.T) {
	topo := linearTopo(t, 5, 30, 300)
	c := emulab12(t)
	a1, err := NewResourceAwareScheduler().Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	a2, err := NewResourceAwareScheduler().Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	for id, p := range a1.Placements {
		if a2.Placements[id] != p {
			t.Fatalf("non-deterministic placement for task %d: %v vs %v", id, p, a2.Placements[id])
		}
	}
}

func TestRStormSingleWorkerPerNode(t *testing.T) {
	topo := linearTopo(t, 6, 25, 256)
	c := emulab12(t)
	a, err := NewResourceAwareScheduler().Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	slotsPerNode := make(map[cluster.NodeID]map[int]bool)
	for _, p := range a.Placements {
		if slotsPerNode[p.Node] == nil {
			slotsPerNode[p.Node] = make(map[int]bool)
		}
		slotsPerNode[p.Node][p.Slot] = true
	}
	for node, slots := range slotsPerNode {
		if len(slots) != 1 {
			t.Errorf("node %s uses %d worker slots, want 1", node, len(slots))
		}
	}
}

func TestRStormPrefersRefRack(t *testing.T) {
	// A small topology that fits in one rack entirely should stay in the
	// ref rack, minimizing network distance.
	topo := linearTopo(t, 2, 25, 256)
	c := emulab12(t)
	a, err := NewResourceAwareScheduler().Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	racks := make(map[cluster.RackID]bool)
	for _, p := range a.Placements {
		racks[c.Node(p.Node).Rack] = true
	}
	if len(racks) != 1 {
		t.Errorf("small topology spread across %d racks, want 1: %s", len(racks), a)
	}
}

func TestRStormRefNodePicksFullestRack(t *testing.T) {
	// Build an asymmetric cluster: rack-b has strictly more resources.
	b := cluster.NewBuilder()
	small := cluster.NodeSpec{Capacity: resource.Vector{CPU: 50, MemoryMB: 1024, Bandwidth: 100}}
	big := cluster.NodeSpec{Capacity: resource.Vector{CPU: 100, MemoryMB: 4096, Bandwidth: 100}}
	b.AddNode("a1", "rack-a", small).AddNode("a2", "rack-a", small)
	b.AddNode("b1", "rack-b", big).AddNode("b2", "rack-b", big)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	s := NewResourceAwareScheduler()
	ref := s.pickRefNode(c, NewGlobalState(c).AvailableAll())
	if got := c.Node(ref).Rack; got != "rack-b" {
		t.Errorf("ref node %s on rack %s, want rack-b", ref, got)
	}
}

func TestRStormTaskOrderingOverride(t *testing.T) {
	topo := linearTopo(t, 2, 25, 256)
	c := emulab12(t)
	reversed := func(tp *topology.Topology) []topology.Task {
		tasks := TaskOrdering(tp)
		for i, j := 0, len(tasks)-1; i < j; i, j = i+1, j-1 {
			tasks[i], tasks[j] = tasks[j], tasks[i]
		}
		return tasks
	}
	s := NewResourceAwareScheduler(WithTaskOrdering(reversed))
	a, err := s.Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if !a.Complete(topo) {
		t.Fatal("incomplete with custom ordering")
	}
}

func TestRStormRejectsInvalidOptions(t *testing.T) {
	topo := linearTopo(t, 1, 10, 100)
	c := emulab12(t)
	if _, err := NewResourceAwareScheduler(
		WithWeights(resource.Weights{CPU: -1}),
	).Schedule(topo, c, NewGlobalState(c)); err == nil {
		t.Error("negative weights accepted")
	}
	if _, err := NewResourceAwareScheduler(
		WithClasses(resource.Classes{}),
	).Schedule(topo, c, NewGlobalState(c)); err == nil {
		t.Error("empty classes accepted")
	}
}

func TestQuickRStormNeverViolatesHardConstraints(t *testing.T) {
	c := emulab12(t)
	classes := resource.DefaultClasses()
	f := func(parRaw, cpuRaw, memRaw uint8) bool {
		par := int(parRaw%6) + 1
		cpu := float64(cpuRaw%80) + 1
		mem := float64(memRaw)*4 + 1
		b := topology.NewBuilder("q")
		b.SetSpout("s", par).SetCPULoad(cpu).SetMemoryLoad(mem)
		b.SetBolt("b", par).ShuffleGrouping("s").SetCPULoad(cpu).SetMemoryLoad(mem)
		topo, err := b.Build()
		if err != nil {
			return false
		}
		a, err := NewResourceAwareScheduler().Schedule(topo, c, NewGlobalState(c))
		if err != nil {
			// Only acceptable failure is genuinely impossible memory.
			return errors.Is(err, ErrInsufficientResources)
		}
		for node, used := range a.UsedPerNode(topo) {
			capa := c.Node(node).Spec.Capacity
			if !resource.SatisfiesHard(capa, used, classes) {
				return false
			}
		}
		return a.Complete(topo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
