package core

import (
	"fmt"
	"sort"
	"sync"

	"rstorm/internal/cluster"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// GlobalState is the paper's GlobalState module (§5.1): it tracks where
// every task of every topology is placed, the remaining resource
// availability of every node, and worker-slot occupancy. Nimbus owns one
// GlobalState and hands it to schedulers; schedulers read it and Nimbus
// applies accepted assignments atomically.
//
// GlobalState is safe for concurrent use.
type GlobalState struct {
	mu        sync.Mutex
	cluster   *cluster.Cluster
	available map[cluster.NodeID]resource.Vector
	slots     map[cluster.NodeID][]string // slot index -> owning topology ("" = free)
	// reserved remembers, per topology and node, the total reservation so
	// removal can release exactly what was taken.
	reserved    map[string]map[cluster.NodeID]resource.Vector
	assignments map[string]*Assignment
}

// NewGlobalState returns a GlobalState with every node fully available.
func NewGlobalState(c *cluster.Cluster) *GlobalState {
	s := &GlobalState{
		cluster:     c,
		available:   make(map[cluster.NodeID]resource.Vector, c.Size()),
		slots:       make(map[cluster.NodeID][]string, c.Size()),
		reserved:    make(map[string]map[cluster.NodeID]resource.Vector),
		assignments: make(map[string]*Assignment),
	}
	for _, n := range c.Nodes() {
		s.available[n.ID] = n.Spec.Capacity
		s.slots[n.ID] = make([]string, n.Spec.Slots)
	}
	return s
}

// Cluster returns the cluster this state tracks.
func (s *GlobalState) Cluster() *cluster.Cluster { return s.cluster }

// Available returns the remaining availability of a node. Soft axes may be
// negative when overcommitted by resource-blind schedulers.
func (s *GlobalState) Available(id cluster.NodeID) resource.Vector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.available[id]
}

// AvailableAll returns a copy of the availability map.
func (s *GlobalState) AvailableAll() map[cluster.NodeID]resource.Vector {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[cluster.NodeID]resource.Vector, len(s.available))
	for k, v := range s.available {
		out[k] = v
	}
	return out
}

// FreeSlots returns the free worker-slot indexes of a node, ascending.
func (s *GlobalState) FreeSlots(id cluster.NodeID) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.freeSlotsLocked(id)
}

// FirstFreeSlot returns the lowest free worker-slot index of a node and
// whether one exists. Unlike FreeSlots it allocates nothing, which matters
// in scheduler inner loops that probe every node per task.
func (s *GlobalState) FirstFreeSlot(id cluster.NodeID) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, owner := range s.slots[id] {
		if owner == "" {
			return i, true
		}
	}
	return 0, false
}

func (s *GlobalState) freeSlotsLocked(id cluster.NodeID) []int {
	var out []int
	for i, owner := range s.slots[id] {
		if owner == "" {
			out = append(out, i)
		}
	}
	return out
}

// SlotOwner returns the topology owning a slot, or "" if free or unknown.
func (s *GlobalState) SlotOwner(id cluster.NodeID, slot int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := s.slots[id]
	if slot < 0 || slot >= len(sl) {
		return ""
	}
	return sl[slot]
}

// Assignment returns the recorded assignment of a topology, or nil.
func (s *GlobalState) Assignment(topo string) *Assignment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.assignments[topo]
}

// Assignments returns all recorded assignments keyed by topology name.
func (s *GlobalState) Assignments() map[string]*Assignment {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*Assignment, len(s.assignments))
	for k, v := range s.assignments {
		out[k] = v
	}
	return out
}

// Topologies returns the names of all scheduled topologies, sorted.
func (s *GlobalState) Topologies() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.assignments))
	for name := range s.assignments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Apply atomically records an assignment, reserving resources and slots.
// It fails without side effects if the assignment references unknown nodes
// or slots, a slot owned by another topology, or if the topology is already
// scheduled. Soft over-reservation is permitted (availability may go
// negative on any axis) because resource-blind schedulers like default
// Storm do exactly that; hard-constraint enforcement is the scheduler's
// job at placement time.
func (s *GlobalState) Apply(topo *topology.Topology, a *Assignment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a.Topology != topo.Name() {
		return fmt.Errorf("assignment is for %q, topology is %q", a.Topology, topo.Name())
	}
	if _, dup := s.assignments[topo.Name()]; dup {
		return fmt.Errorf("topology %q is already scheduled", topo.Name())
	}
	if !a.Complete(topo) {
		return fmt.Errorf("assignment for %q is incomplete", topo.Name())
	}
	// Validate before mutating anything.
	for id, p := range a.Placements {
		sl, ok := s.slots[p.Node]
		if !ok {
			return fmt.Errorf("task %d placed on unknown node %q", id, p.Node)
		}
		if p.Slot < 0 || p.Slot >= len(sl) {
			return fmt.Errorf("task %d placed on invalid slot %d of %q", id, p.Slot, p.Node)
		}
		if owner := sl[p.Slot]; owner != "" && owner != topo.Name() {
			return fmt.Errorf("slot %d of %q is owned by topology %q", p.Slot, p.Node, owner)
		}
	}

	perNode := make(map[cluster.NodeID]resource.Vector)
	for _, task := range topo.Tasks() {
		p := a.Placements[task.ID]
		perNode[p.Node] = perNode[p.Node].Add(topo.TaskDemand(task))
		s.slots[p.Node][p.Slot] = topo.Name()
	}
	for node, used := range perNode {
		s.available[node] = s.available[node].Sub(used)
	}
	s.reserved[topo.Name()] = perNode
	s.assignments[topo.Name()] = a
	return nil
}

// Remove releases everything a topology reserved. Removing an unknown
// topology is a no-op.
func (s *GlobalState) Remove(topoName string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for node, used := range s.reserved[topoName] {
		s.available[node] = s.available[node].Add(used)
	}
	delete(s.reserved, topoName)
	delete(s.assignments, topoName)
	for node, sl := range s.slots {
		for i, owner := range sl {
			if owner == topoName {
				s.slots[node][i] = ""
			}
		}
	}
}

// ReleaseNode marks a node failed: its slots and reservations disappear and
// its availability drops to zero. Returns the topologies that had tasks on
// the node, sorted, so the caller can reschedule them.
func (s *GlobalState) ReleaseNode(id cluster.NodeID) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	affectedSet := make(map[string]bool)
	for topoName, perNode := range s.reserved {
		if _, ok := perNode[id]; ok {
			affectedSet[topoName] = true
		}
	}
	s.available[id] = resource.Vector{}
	s.slots[id] = nil
	out := make([]string, 0, len(affectedSet))
	for name := range affectedSet {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RestoreNode brings a failed node back with full capacity and fresh slots.
func (s *GlobalState) RestoreNode(id cluster.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.cluster.Node(id)
	if n == nil {
		return fmt.Errorf("unknown node %q", id)
	}
	s.available[id] = n.Spec.Capacity
	s.slots[id] = make([]string, n.Spec.Slots)
	return nil
}
