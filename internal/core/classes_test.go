package core

import (
	"errors"
	"testing"

	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// TestCPUAsHardConstraint exercises the paper's §3 statement that "the
// number of constraints to use and whether a constraint is soft or hard is
// specified by the user": with CPU reclassified as hard, R-Storm refuses
// CPU overcommit instead of degrading.
func TestCPUAsHardConstraint(t *testing.T) {
	strict := resource.Classes{
		resource.AxisCPU:       resource.Hard,
		resource.AxisMemory:    resource.Hard,
		resource.AxisBandwidth: resource.Soft,
	}
	c := emulab12(t)

	// 24 tasks x 60 points = 1440 > 1200 cluster points. Memory fits.
	topo := linearTopo(t, 6, 60, 100)

	// Default classes: soft CPU, so scheduling succeeds overcommitted.
	if _, err := NewResourceAwareScheduler().Schedule(topo, c, NewGlobalState(c)); err != nil {
		t.Fatalf("soft CPU: %v", err)
	}

	// Hard CPU: impossible, and said so.
	_, err := NewResourceAwareScheduler(WithClasses(strict)).Schedule(topo, c, NewGlobalState(c))
	if !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("hard CPU err = %v, want ErrInsufficientResources", err)
	}

	// A topology that fits under hard CPU schedules without overcommit
	// anywhere.
	fits := linearTopo(t, 6, 45, 100) // 24 x 45 = 1080 <= 1200
	a, err := NewResourceAwareScheduler(WithClasses(strict)).Schedule(fits, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("fitting topology: %v", err)
	}
	for node, used := range a.UsedPerNode(fits) {
		if used.CPU > c.Node(node).Spec.Capacity.CPU {
			t.Errorf("node %s overcommitted under hard CPU: %v", node, used.CPU)
		}
	}
}

// TestGlobalStateSharedAcrossSchedulers verifies that reservations from
// one topology constrain the next even under a different scheduler — the
// master mixes schedulers freely over one GlobalState.
func TestGlobalStateSharedAcrossSchedulers(t *testing.T) {
	c := emulab12(t)
	state := NewGlobalState(c)

	first := linearTopo(t, 6, 25, 900) // 24 tasks x 900 MB: 2 per node, fills all 12 nodes
	a1, err := NewResourceAwareScheduler().Schedule(first, c, state)
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	if err := state.Apply(first, a1); err != nil {
		t.Fatalf("apply: %v", err)
	}

	// Remaining memory per node is at most 2048 - 1800 = 248 MB; a
	// 400 MB-per-task topology cannot fit anywhere. The second topology
	// gets a distinct name so GlobalState accepts it.
	b := topology.NewBuilder("second")
	b.SetSpout("s", 2).SetCPULoad(10).SetMemoryLoad(400)
	b.SetBolt("b", 2).ShuffleGrouping("s").SetCPULoad(10).SetMemoryLoad(400)
	second, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	_, err = NewResourceAwareScheduler().Schedule(second, c, state)
	if !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("second err = %v, want ErrInsufficientResources", err)
	}
}
