package core

import (
	"strings"
	"testing"
)

func TestTrafficMatrix(t *testing.T) {
	var nilM *TrafficMatrix
	if nilM.Total() != 0 || nilM.Rate("a", "b") != 0 {
		t.Error("nil matrix must read as empty")
	}
	nilM.Pairs(func(src, dst string, r float64) {
		t.Errorf("nil matrix visited pair %s->%s", src, dst)
	})
	if got := nilM.String(); got != "traffic{}" {
		t.Errorf("nil String = %q", got)
	}

	m := NewTrafficMatrix()
	if got := m.String(); got != "traffic{}" {
		t.Errorf("empty String = %q", got)
	}
	m.Set("a", "b", 100)
	m.Set("b", "c", 50)
	m.Set("a", "b", 200) // replaces, does not duplicate
	if got := m.Rate("a", "b"); got != 200 {
		t.Errorf("Rate(a,b) = %v, want 200", got)
	}
	if got := m.Rate("c", "a"); got != 0 {
		t.Errorf("unmeasured pair = %v, want 0", got)
	}
	if got := m.Total(); got != 250 {
		t.Errorf("Total = %v, want 250", got)
	}
	var visited [][2]string
	m.Pairs(func(src, dst string, r float64) {
		visited = append(visited, [2]string{src, dst})
	})
	if len(visited) != 2 || visited[0] != [2]string{"a", "b"} || visited[1] != [2]string{"b", "c"} {
		t.Errorf("Pairs order = %v, want first-set order without duplicates", visited)
	}
	s := m.String()
	for _, want := range []string{"a->b: 200.0/s", "b->c: 50.0/s"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}
