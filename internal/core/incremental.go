package core

import (
	"fmt"
	"sort"

	"rstorm/internal/cluster"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// Move records one task migration decided by an incremental reschedule.
type Move struct {
	TaskID int
	From   Placement
	To     Placement
}

// String implements fmt.Stringer.
func (m Move) String() string {
	return fmt.Sprintf("task %d: %s -> %s", m.TaskID, m.From, m.To)
}

// IncrementalOptions tunes IncrementalReschedule.
type IncrementalOptions struct {
	// Demands overrides per-component, per-task demand vectors — typically
	// the adaptive profiler's *measured* demands, replacing the user's
	// declarations. Components absent from the map fall back to their
	// declared demand.
	Demands map[string]resource.Vector
	// Available is the base availability per node *excluding* this
	// topology's own usage (other topologies' reservations subtracted).
	// Nil means full node capacity.
	Available map[cluster.NodeID]resource.Vector
	// SlotFor resolves a worker slot on a node that currently hosts none
	// of this topology's tasks. Nil defaults to slot 0 (single-topology
	// clusters); Nimbus passes GlobalState.FirstFreeSlot.
	SlotFor func(cluster.NodeID) (int, bool)
	// Frozen pins tasks to their current placement and excludes them from
	// the walk entirely — they neither move nor consume the MaxMoves
	// budget. Frozen tasks still reserve their demand on their node (they
	// are pinned, not gone).
	Frozen map[int]bool
	// Dead marks tasks that no longer consume anything — killed by node
	// failures or the runtime memory model's OOM enforcement. They are
	// implicitly frozen (there is no executor left to migrate, and
	// replanning them every round would starve live migrations of the
	// MaxMoves budget), and unlike Frozen their demand is NOT debited
	// from their node: an OOM-killed task's working set is freed and its
	// CPU demand departs, so debiting it would deny survivors a node
	// that in truth has that capacity back.
	Dead map[int]bool
	// Restart marks dead tasks that should be brought back: instead of
	// being pinned as corpses they are force-placed on the best feasible
	// node — no stickiness margin (there is no live placement to stick
	// to) and no MaxMoves charge (leaving work dead to save a move would
	// invert the budget's purpose). A restart Move is recorded even when
	// the chosen node is the current one (restart-in-place after the node
	// recovered); if no node is feasible the task stays put, dead, with no
	// Move recorded. Like Dead tasks, their demand is not debited at the
	// current placement — it returns only on the node the walk picks.
	// Callers exclude dead *nodes* the usual way, by zeroing them in
	// Available; Restart wins where it overlaps Dead or Frozen.
	Restart map[int]bool
	// MaxMoves caps migrations per call; 0 means no cap. Capping trades
	// convergence speed for per-round disruption — the control loop's
	// hysteresis carries the remainder into later rounds.
	MaxMoves int
	// Margin is the relative distance improvement an equally-feasible
	// alternative must offer before a task moves (0.15 = 15% closer).
	// It is the anti-oscillation stickiness of the control loop.
	Margin float64
	// MemHeadroom, when in (0, 1], adds a preferred memory-feasibility
	// tier: a candidate node whose memory fill after placement stays at or
	// below this fraction of its capacity outranks any memory-tight
	// candidate, regardless of distance. Under *measured* (possibly still
	// growing) memory demands this is what keeps a rescheduled task from
	// landing one window short of the next OOM. Zero disables the tier,
	// leaving the feasibility ordering exactly as before.
	MemHeadroom float64
	// Traffic, when non-nil and carrying measured rates, switches the soft
	// objective of the pass from the paper's ref-node distance to a
	// network-cost objective over measured traffic: a candidate node for
	// task a is scored by Σ_b rate(a,b)·NetworkDistance(candidate,
	// node(b)) over the tasks b of adjacent components (planned positions
	// for tasks already walked, current positions otherwise). This
	// generalizes the exact solver's unit-weight pairwise cost (exact.go)
	// to measured edge rates, and is what makes cold-topology
	// consolidation produce moves: the symmetric ref-node distance cannot
	// see that two chatty tasks sit one hop apart. Feasibility tiers, the
	// stickiness margin (applied to the cost), and the move cap are
	// unchanged; tasks with no measured traffic fall back to the distance
	// objective. Nil (or an empty matrix) leaves the pass exactly as
	// before.
	Traffic *TrafficMatrix
}

// candidate tiers: a node that covers the task's CPU demand outright beats
// any node that would overcommit CPU, regardless of distance. The paper's
// distance is symmetric — slightly-overfull and slightly-underfull look the
// same — which is fine for declared demands (the scheduler never overcommits
// what it believes) but wrong for *measured* demands, where escaping an
// overloaded node is the whole point. With MemHeadroom set, an extra top
// tier prefers nodes that keep memory fill under the headroom fraction —
// the same asymmetry argument applied to the hard axis, where "barely fits
// right now" is one growth window away from an OOM kill.
const (
	tierMemSafe = 1 // CPU covered and memory fill stays under the headroom
	tierCPUFit  = 2 // hard constraints satisfied, CPU demand covered
	tierOver    = 3 // hard constraints satisfied, CPU overcommitted
	tierInvalid = 4 // hard constraint violated
)

// trafficNeighbor is one adjacent component seen from a task's component,
// with the measured per-task-pair rate (tuples/sec) of the edge between
// them. Both directions of a stream contribute: distance is symmetric, so
// traffic toward a producer pulls as hard as traffic toward a consumer.
type trafficNeighbor struct {
	comp string
	rate float64
}

// trafficScorer evaluates the measured network-cost objective for one
// IncrementalReschedule pass: cost(task, node) = Σ over tasks u of
// adjacent components rate(task,u) · NetworkDistance(node, node(u)),
// where node(u) is u's planned position if the walk has already decided
// it and its current position otherwise. Component-pair rates are split
// uniformly across the pair's live task pairs — the matrix is measured
// per component (the profiler's EWMA), and a uniform split keeps the
// objective well-defined without per-task-pair bookkeeping.
type trafficScorer struct {
	dist      [][]float64 // pairwise NetworkDistance by node index
	nodeOf    map[int]int // task ID → node index, planned-so-far view
	neighbors map[string][]trafficNeighbor
	tasks     map[string][]int // component → live task IDs, dense order
	// w is the per-node rate aggregation for the task currently being
	// walked (prepare): w[n] sums the rates of the task's neighbors
	// sitting on node n, so scoring a candidate is O(nodes) instead of
	// O(neighbor tasks) per candidate.
	w []float64
}

// newTrafficScorer builds the scorer, or returns nil when the matrix is
// absent or carries no signal (the pass then keeps the distance objective).
func newTrafficScorer(
	topo *topology.Topology,
	c *cluster.Cluster,
	current *Assignment,
	opts IncrementalOptions,
	ids []cluster.NodeID,
	idx map[cluster.NodeID]int,
) *trafficScorer {
	if opts.Traffic.Total() <= 0 {
		return nil
	}
	sc := &trafficScorer{
		dist:      make([][]float64, len(ids)),
		nodeOf:    make(map[int]int, topo.TotalTasks()),
		neighbors: make(map[string][]trafficNeighbor),
		tasks:     make(map[string][]int),
		w:         make([]float64, len(ids)),
	}
	for i, a := range ids {
		sc.dist[i] = make([]float64, len(ids))
		for j, b := range ids {
			sc.dist[i][j] = c.NetworkDistance(a, b)
		}
	}
	for _, task := range topo.Tasks() {
		if p, ok := current.PlacementOf(task.ID); ok {
			sc.nodeOf[task.ID] = idx[p.Node]
		}
		// Dead tasks are pinned corpses: they generate no traffic and must
		// not anchor live neighbors to their node.
		if !opts.Dead[task.ID] {
			sc.tasks[task.Component] = append(sc.tasks[task.Component], task.ID)
		}
	}
	for _, st := range topo.Streams() {
		r := opts.Traffic.Rate(st.From, st.To)
		if r <= 0 {
			continue
		}
		nf, nt := len(sc.tasks[st.From]), len(sc.tasks[st.To])
		if nf == 0 || nt == 0 {
			continue
		}
		perPair := r / float64(nf*nt)
		sc.neighbors[st.From] = append(sc.neighbors[st.From],
			trafficNeighbor{comp: st.To, rate: perPair})
		sc.neighbors[st.To] = append(sc.neighbors[st.To],
			trafficNeighbor{comp: st.From, rate: perPair})
	}
	return sc
}

// prepare folds the task's neighbor traffic into the per-node weight
// vector against the planned-so-far positions. Called once per walked
// task, before its candidate loop; every subsequent cost() is O(nodes).
func (sc *trafficScorer) prepare(task topology.Task) {
	for i := range sc.w {
		sc.w[i] = 0
	}
	for _, ne := range sc.neighbors[task.Component] {
		for _, uid := range sc.tasks[ne.comp] {
			if uid == task.ID {
				continue
			}
			sc.w[sc.nodeOf[uid]] += ne.rate
		}
	}
}

// cost scores placing the prepared task on the node at index i. Zero when
// the task has no measured traffic (callers then fall back to the
// distance objective).
func (sc *trafficScorer) cost(i int) float64 {
	var cost float64
	d := sc.dist[i]
	for n, wn := range sc.w {
		if wn != 0 {
			cost += wn * d[n]
		}
	}
	return cost
}

// place records the walk's decision for a task, so later tasks score
// against the plan rather than the stale placement.
func (sc *trafficScorer) place(taskID, nodeIdx int) { sc.nodeOf[taskID] = nodeIdx }

// IncrementalReschedule computes a migration-aware improvement of an
// existing assignment: every task keeps its placement unless another node
// is strictly more attractive under the (measured) demands — a stricter
// feasibility tier, or a distance improvement beyond the stickiness margin.
// It reuses R-Storm's node-selection machinery (Algorithm 4's ref-node
// network distance and weighted Euclidean fit) but walks tasks in schedule
// order against the *current* load picture instead of an empty cluster, so
// only the offending tasks move. This is the control-plane alternative to
// Storm's full teardown-and-reschedule rebalance, which restarts every
// worker of the topology.
//
// The returned assignment is complete and disjoint from `current`; moves
// lists the changed placements in task-schedule order.
func (s *ResourceAwareScheduler) IncrementalReschedule(
	topo *topology.Topology,
	c *cluster.Cluster,
	current *Assignment,
	opts IncrementalOptions,
) (*Assignment, []Move, error) {
	if err := s.weights.Validate(); err != nil {
		return nil, nil, fmt.Errorf("scheduler weights: %w", err)
	}
	if err := s.classes.Validate(); err != nil {
		return nil, nil, fmt.Errorf("scheduler classes: %w", err)
	}
	if current == nil || !current.Complete(topo) {
		return nil, nil, fmt.Errorf("incremental reschedule of %q needs a complete current assignment", topo.Name())
	}

	ids := c.NodeIDs()
	idx := make(map[cluster.NodeID]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	demandOf := func(task topology.Task) resource.Vector {
		if d, ok := opts.Demands[task.Component]; ok {
			return d
		}
		return topo.TaskDemand(task)
	}

	// Availability under the measured demands: base minus every task's
	// demand at its current placement.
	avail := make([]resource.Vector, len(ids))
	for i, id := range ids {
		if opts.Available != nil {
			avail[i] = opts.Available[id]
		} else if n := c.Node(id); n != nil {
			avail[i] = n.Spec.Capacity
		}
	}
	for _, task := range topo.Tasks() {
		p, ok := current.PlacementOf(task.ID)
		if !ok {
			continue
		}
		ni, ok := idx[p.Node]
		if !ok {
			return nil, nil, fmt.Errorf("task %d currently on unknown node %q", task.ID, p.Node)
		}
		if opts.Dead[task.ID] || opts.Restart[task.ID] {
			continue
		}
		avail[ni] = avail[ni].Sub(demandOf(task))
	}

	// Ref node per Algorithm 4 over the measured availability, fixing the
	// network-distance axis for the whole pass.
	availMap := make(map[cluster.NodeID]resource.Vector, len(ids))
	for i, id := range ids {
		availMap[id] = avail[i]
	}
	refNode := s.pickRefNode(c, availMap)
	netdist := make([]float64, len(ids))
	for i, id := range ids {
		netdist[i] = c.NetworkDistance(refNode, id)
	}

	// This topology's worker slot per node, for move targets (the
	// scheduler packs one worker per node per topology). Walk tasks in
	// dense-ID order so a node hosting several worker slots (a
	// default-even placement) resolves deterministically to the lowest
	// task's slot rather than to map iteration order.
	slotOn := make(map[cluster.NodeID]int, len(ids))
	for _, task := range topo.Tasks() {
		p, ok := current.PlacementOf(task.ID)
		if !ok {
			continue
		}
		if _, seen := slotOn[p.Node]; !seen {
			slotOn[p.Node] = p.Slot
		}
	}
	slotFor := func(id cluster.NodeID) (int, bool) {
		if slot, ok := slotOn[id]; ok {
			return slot, true
		}
		if opts.SlotFor != nil {
			return opts.SlotFor(id)
		}
		return 0, true
	}

	// Node memory capacities for the headroom tier. The availability
	// vector alone cannot express "fill fraction": it is capacity minus
	// everyone's usage, so the capacity itself is needed as the divisor.
	memCap := make([]float64, len(ids))
	if opts.MemHeadroom > 0 {
		for i, id := range ids {
			if n := c.Node(id); n != nil {
				memCap[i] = n.Spec.Capacity.MemoryMB
			}
		}
	}
	tierOf := func(i int, a, d resource.Vector) int {
		if !resource.SatisfiesHard(a, d, s.classes) {
			return tierInvalid
		}
		if a.CPU >= d.CPU {
			if opts.MemHeadroom > 0 && memCap[i] > 0 &&
				memCap[i]-(a.MemoryMB-d.MemoryMB) <= opts.MemHeadroom*memCap[i] {
				return tierMemSafe
			}
			return tierCPUFit
		}
		return tierOver
	}

	// Walk tasks in descending measured-demand order (stable within ties,
	// so equal-demand tasks keep the BFS schedule order): the biggest
	// offenders escape an overloaded node first, and once they have
	// drained it below capacity the small tasks see a feasible home and
	// stay put — which is what keeps the move count minimal.
	order := s.ordering(topo)
	sort.SliceStable(order, func(i, j int) bool {
		return s.weights.Apply(demandOf(order[i])).Total() >
			s.weights.Apply(demandOf(order[j])).Total()
	})

	// With a traffic matrix, the soft objective becomes the measured
	// network cost; without one (or without signal) scorer is nil and the
	// pass scores by ref-node distance exactly as before.
	scorer := newTrafficScorer(topo, c, current, opts, ids, idx)

	next := NewAssignment(topo.Name(), s.Name()+"-incremental")
	var moves []Move
	forced := 0 // restart moves, exempt from the MaxMoves budget
	for _, task := range order {
		cur := current.Placements[task.ID]
		restart := opts.Restart[task.ID]
		if !restart && (opts.Frozen[task.ID] || opts.Dead[task.ID]) {
			next.Place(task.ID, cur)
			continue
		}
		d := demandOf(task)
		ci := idx[cur.Node]
		// Lift the task off its node, then judge every node — including
		// its own — from the resulting availability. A restarting task was
		// never debited (it is dead), so there is nothing to lift.
		if !restart {
			avail[ci] = avail[ci].Add(d)
		}
		if scorer != nil {
			scorer.prepare(task)
		}
		best, bestTier, bestDist, bestCost := -1, tierInvalid+1, 0.0, 0.0
		for i := range ids {
			tier := tierOf(i, avail[i], d)
			if tier == tierInvalid {
				continue
			}
			if _, ok := slotFor(ids[i]); !ok {
				continue
			}
			dist := resource.Distance(d, avail[i], netdist[i], s.weights)
			var cost float64
			if scorer != nil {
				cost = scorer.cost(i)
			}
			better := tier < bestTier
			if tier == bestTier {
				if scorer != nil {
					// Traffic objective: network cost first; the paper's
					// distance only splits cost ties, so zero-traffic tasks
					// (cost 0 everywhere) keep the distance behavior.
					better = cost < bestCost || (cost == bestCost && dist < bestDist)
				} else {
					better = dist < bestDist
				}
			}
			if better {
				best, bestTier, bestDist, bestCost = i, tier, dist, cost
			}
		}
		if restart {
			if best < 0 {
				// Nowhere feasible: the task stays where it died, and no
				// Move is recorded — callers learn the restart failed by
				// its absence from moves.
				next.Place(task.ID, cur)
				continue
			}
			// Forced placement: best node wins outright, restart-in-place
			// included, outside the MaxMoves budget.
			avail[best] = avail[best].Sub(d)
			if scorer != nil {
				scorer.place(task.ID, best)
			}
			slot, _ := slotFor(ids[best])
			to := Placement{Node: ids[best], Slot: slot}
			slotOn[to.Node] = to.Slot
			next.Place(task.ID, to)
			moves = append(moves, Move{TaskID: task.ID, From: cur, To: to})
			forced++
			continue
		}
		chosen := ci
		if best >= 0 && best != ci {
			curTier := tierOf(ci, avail[ci], d)
			curDist := resource.Distance(d, avail[ci], netdist[ci], s.weights)
			var improves bool
			if scorer != nil {
				curCost := scorer.cost(ci)
				improves = bestTier < curTier || (bestTier == curTier &&
					(bestCost < curCost*(1-opts.Margin) ||
						(bestCost == curCost && bestDist < curDist*(1-opts.Margin))))
			} else {
				improves = bestTier < curTier ||
					(bestTier == curTier && bestDist < curDist*(1-opts.Margin))
			}
			if improves && (opts.MaxMoves <= 0 || len(moves)-forced < opts.MaxMoves) {
				chosen = best
			}
		}
		avail[chosen] = avail[chosen].Sub(d)
		if scorer != nil {
			scorer.place(task.ID, chosen)
		}
		if chosen == ci {
			next.Place(task.ID, cur)
			continue
		}
		slot, _ := slotFor(ids[chosen])
		to := Placement{Node: ids[chosen], Slot: slot}
		slotOn[to.Node] = to.Slot
		next.Place(task.ID, to)
		moves = append(moves, Move{TaskID: task.ID, From: cur, To: to})
	}
	return next, moves, nil
}
