package core

import (
	"fmt"
	"sort"

	"rstorm/internal/cluster"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// Move records one task migration decided by an incremental reschedule.
type Move struct {
	TaskID int
	From   Placement
	To     Placement
}

// String implements fmt.Stringer.
func (m Move) String() string {
	return fmt.Sprintf("task %d: %s -> %s", m.TaskID, m.From, m.To)
}

// IncrementalOptions tunes IncrementalReschedule.
type IncrementalOptions struct {
	// Demands overrides per-component, per-task demand vectors — typically
	// the adaptive profiler's *measured* demands, replacing the user's
	// declarations. Components absent from the map fall back to their
	// declared demand.
	Demands map[string]resource.Vector
	// Available is the base availability per node *excluding* this
	// topology's own usage (other topologies' reservations subtracted).
	// Nil means full node capacity.
	Available map[cluster.NodeID]resource.Vector
	// SlotFor resolves a worker slot on a node that currently hosts none
	// of this topology's tasks. Nil defaults to slot 0 (single-topology
	// clusters); Nimbus passes GlobalState.FirstFreeSlot.
	SlotFor func(cluster.NodeID) (int, bool)
	// Frozen pins tasks to their current placement and excludes them from
	// the walk entirely — they neither move nor consume the MaxMoves
	// budget. Frozen tasks still reserve their demand on their node (they
	// are pinned, not gone).
	Frozen map[int]bool
	// Dead marks tasks that no longer consume anything — killed by node
	// failures or the runtime memory model's OOM enforcement. They are
	// implicitly frozen (there is no executor left to migrate, and
	// replanning them every round would starve live migrations of the
	// MaxMoves budget), and unlike Frozen their demand is NOT debited
	// from their node: an OOM-killed task's working set is freed and its
	// CPU demand departs, so debiting it would deny survivors a node
	// that in truth has that capacity back.
	Dead map[int]bool
	// MaxMoves caps migrations per call; 0 means no cap. Capping trades
	// convergence speed for per-round disruption — the control loop's
	// hysteresis carries the remainder into later rounds.
	MaxMoves int
	// Margin is the relative distance improvement an equally-feasible
	// alternative must offer before a task moves (0.15 = 15% closer).
	// It is the anti-oscillation stickiness of the control loop.
	Margin float64
	// MemHeadroom, when in (0, 1], adds a preferred memory-feasibility
	// tier: a candidate node whose memory fill after placement stays at or
	// below this fraction of its capacity outranks any memory-tight
	// candidate, regardless of distance. Under *measured* (possibly still
	// growing) memory demands this is what keeps a rescheduled task from
	// landing one window short of the next OOM. Zero disables the tier,
	// leaving the feasibility ordering exactly as before.
	MemHeadroom float64
}

// candidate tiers: a node that covers the task's CPU demand outright beats
// any node that would overcommit CPU, regardless of distance. The paper's
// distance is symmetric — slightly-overfull and slightly-underfull look the
// same — which is fine for declared demands (the scheduler never overcommits
// what it believes) but wrong for *measured* demands, where escaping an
// overloaded node is the whole point. With MemHeadroom set, an extra top
// tier prefers nodes that keep memory fill under the headroom fraction —
// the same asymmetry argument applied to the hard axis, where "barely fits
// right now" is one growth window away from an OOM kill.
const (
	tierMemSafe = 1 // CPU covered and memory fill stays under the headroom
	tierCPUFit  = 2 // hard constraints satisfied, CPU demand covered
	tierOver    = 3 // hard constraints satisfied, CPU overcommitted
	tierInvalid = 4 // hard constraint violated
)

// IncrementalReschedule computes a migration-aware improvement of an
// existing assignment: every task keeps its placement unless another node
// is strictly more attractive under the (measured) demands — a stricter
// feasibility tier, or a distance improvement beyond the stickiness margin.
// It reuses R-Storm's node-selection machinery (Algorithm 4's ref-node
// network distance and weighted Euclidean fit) but walks tasks in schedule
// order against the *current* load picture instead of an empty cluster, so
// only the offending tasks move. This is the control-plane alternative to
// Storm's full teardown-and-reschedule rebalance, which restarts every
// worker of the topology.
//
// The returned assignment is complete and disjoint from `current`; moves
// lists the changed placements in task-schedule order.
func (s *ResourceAwareScheduler) IncrementalReschedule(
	topo *topology.Topology,
	c *cluster.Cluster,
	current *Assignment,
	opts IncrementalOptions,
) (*Assignment, []Move, error) {
	if err := s.weights.Validate(); err != nil {
		return nil, nil, fmt.Errorf("scheduler weights: %w", err)
	}
	if err := s.classes.Validate(); err != nil {
		return nil, nil, fmt.Errorf("scheduler classes: %w", err)
	}
	if current == nil || !current.Complete(topo) {
		return nil, nil, fmt.Errorf("incremental reschedule of %q needs a complete current assignment", topo.Name())
	}

	ids := c.NodeIDs()
	idx := make(map[cluster.NodeID]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	demandOf := func(task topology.Task) resource.Vector {
		if d, ok := opts.Demands[task.Component]; ok {
			return d
		}
		return topo.TaskDemand(task)
	}

	// Availability under the measured demands: base minus every task's
	// demand at its current placement.
	avail := make([]resource.Vector, len(ids))
	for i, id := range ids {
		if opts.Available != nil {
			avail[i] = opts.Available[id]
		} else if n := c.Node(id); n != nil {
			avail[i] = n.Spec.Capacity
		}
	}
	for _, task := range topo.Tasks() {
		p, ok := current.PlacementOf(task.ID)
		if !ok {
			continue
		}
		ni, ok := idx[p.Node]
		if !ok {
			return nil, nil, fmt.Errorf("task %d currently on unknown node %q", task.ID, p.Node)
		}
		if opts.Dead[task.ID] {
			continue
		}
		avail[ni] = avail[ni].Sub(demandOf(task))
	}

	// Ref node per Algorithm 4 over the measured availability, fixing the
	// network-distance axis for the whole pass.
	availMap := make(map[cluster.NodeID]resource.Vector, len(ids))
	for i, id := range ids {
		availMap[id] = avail[i]
	}
	refNode := s.pickRefNode(c, availMap)
	netdist := make([]float64, len(ids))
	for i, id := range ids {
		netdist[i] = c.NetworkDistance(refNode, id)
	}

	// This topology's worker slot per node, for move targets (the
	// scheduler packs one worker per node per topology). Walk tasks in
	// dense-ID order so a node hosting several worker slots (a
	// default-even placement) resolves deterministically to the lowest
	// task's slot rather than to map iteration order.
	slotOn := make(map[cluster.NodeID]int, len(ids))
	for _, task := range topo.Tasks() {
		p, ok := current.PlacementOf(task.ID)
		if !ok {
			continue
		}
		if _, seen := slotOn[p.Node]; !seen {
			slotOn[p.Node] = p.Slot
		}
	}
	slotFor := func(id cluster.NodeID) (int, bool) {
		if slot, ok := slotOn[id]; ok {
			return slot, true
		}
		if opts.SlotFor != nil {
			return opts.SlotFor(id)
		}
		return 0, true
	}

	// Node memory capacities for the headroom tier. The availability
	// vector alone cannot express "fill fraction": it is capacity minus
	// everyone's usage, so the capacity itself is needed as the divisor.
	memCap := make([]float64, len(ids))
	if opts.MemHeadroom > 0 {
		for i, id := range ids {
			if n := c.Node(id); n != nil {
				memCap[i] = n.Spec.Capacity.MemoryMB
			}
		}
	}
	tierOf := func(i int, a, d resource.Vector) int {
		if !resource.SatisfiesHard(a, d, s.classes) {
			return tierInvalid
		}
		if a.CPU >= d.CPU {
			if opts.MemHeadroom > 0 && memCap[i] > 0 &&
				memCap[i]-(a.MemoryMB-d.MemoryMB) <= opts.MemHeadroom*memCap[i] {
				return tierMemSafe
			}
			return tierCPUFit
		}
		return tierOver
	}

	// Walk tasks in descending measured-demand order (stable within ties,
	// so equal-demand tasks keep the BFS schedule order): the biggest
	// offenders escape an overloaded node first, and once they have
	// drained it below capacity the small tasks see a feasible home and
	// stay put — which is what keeps the move count minimal.
	order := s.ordering(topo)
	sort.SliceStable(order, func(i, j int) bool {
		return s.weights.Apply(demandOf(order[i])).Total() >
			s.weights.Apply(demandOf(order[j])).Total()
	})

	next := NewAssignment(topo.Name(), s.Name()+"-incremental")
	var moves []Move
	for _, task := range order {
		cur := current.Placements[task.ID]
		if opts.Frozen[task.ID] || opts.Dead[task.ID] {
			next.Place(task.ID, cur)
			continue
		}
		d := demandOf(task)
		ci := idx[cur.Node]
		// Lift the task off its node, then judge every node — including
		// its own — from the resulting availability.
		avail[ci] = avail[ci].Add(d)
		best, bestTier, bestDist := -1, tierInvalid+1, 0.0
		for i := range ids {
			tier := tierOf(i, avail[i], d)
			if tier == tierInvalid {
				continue
			}
			if _, ok := slotFor(ids[i]); !ok {
				continue
			}
			dist := resource.Distance(d, avail[i], netdist[i], s.weights)
			if tier < bestTier || (tier == bestTier && dist < bestDist) {
				best, bestTier, bestDist = i, tier, dist
			}
		}
		chosen := ci
		if best >= 0 && best != ci {
			curTier := tierOf(ci, avail[ci], d)
			curDist := resource.Distance(d, avail[ci], netdist[ci], s.weights)
			improves := bestTier < curTier ||
				(bestTier == curTier && bestDist < curDist*(1-opts.Margin))
			if improves && (opts.MaxMoves <= 0 || len(moves) < opts.MaxMoves) {
				chosen = best
			}
		}
		avail[chosen] = avail[chosen].Sub(d)
		if chosen == ci {
			next.Place(task.ID, cur)
			continue
		}
		slot, _ := slotFor(ids[chosen])
		to := Placement{Node: ids[chosen], Slot: slot}
		slotOn[to.Node] = to.Slot
		next.Place(task.ID, to)
		moves = append(moves, Move{TaskID: task.ID, From: cur, To: to})
	}
	return next, moves, nil
}
