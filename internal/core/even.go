package core

import (
	"fmt"

	"rstorm/internal/cluster"
	"rstorm/internal/topology"
)

// EvenScheduler reproduces default Storm's pseudo-random round-robin
// scheduling (§1, §2): executors are spread round-robin over worker slots,
// and slots are taken one per node in turn, so tasks of a single component
// "will most likely be placed on different physical machines" (Fig. 3). It
// is deliberately blind to resource demand and availability — that
// blindness is what the paper evaluates against.
type EvenScheduler struct{}

var _ Scheduler = EvenScheduler{}

// Name implements Scheduler.
func (EvenScheduler) Name() string { return "default-even" }

// Schedule implements Scheduler.
func (EvenScheduler) Schedule(
	topo *topology.Topology,
	c *cluster.Cluster,
	state *GlobalState,
) (*Assignment, error) {
	workers := topo.NumWorkers()
	if workers <= 0 {
		// Storm operators typically run one worker per machine; the
		// paper's default-Storm runs use all 12 (or 24) machines.
		workers = c.Size()
	}

	slots := collectSlotsRoundRobin(c, state, workers)
	if len(slots) == 0 {
		return nil, fmt.Errorf("topology %q: %w", topo.Name(), ErrNoSlots)
	}

	assignment := NewAssignment(topo.Name(), EvenScheduler{}.Name())
	for i, task := range topo.Tasks() {
		assignment.Place(task.ID, slots[i%len(slots)])
	}
	return assignment, nil
}

// collectSlotsRoundRobin gathers up to max free worker slots, taking the
// next free slot of each node in declaration order per round, which is how
// Storm's EvenScheduler spreads workers across supervisors.
func collectSlotsRoundRobin(c *cluster.Cluster, state *GlobalState, max int) []Placement {
	free := make(map[cluster.NodeID][]int, c.Size())
	for _, id := range c.NodeIDs() {
		free[id] = state.FreeSlots(id)
	}
	var out []Placement
	for round := 0; len(out) < max; round++ {
		took := false
		for _, id := range c.NodeIDs() {
			if len(out) >= max {
				break
			}
			if round < len(free[id]) {
				out = append(out, Placement{Node: id, Slot: free[id][round]})
				took = true
			}
		}
		if !took {
			break // no node has a slot at this depth: all free slots taken
		}
	}
	return out
}
