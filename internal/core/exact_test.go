package core

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"rstorm/internal/cluster"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// tinyTopo builds a 6-task chain small enough for the exact solver.
func tinyTopo(t *testing.T, cpu, mem float64) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder("tiny")
	b.SetSpout("s", 2).SetCPULoad(cpu).SetMemoryLoad(mem)
	b.SetBolt("a", 2).ShuffleGrouping("s").SetCPULoad(cpu).SetMemoryLoad(mem)
	b.SetBolt("z", 2).ShuffleGrouping("a").SetCPULoad(cpu).SetMemoryLoad(mem)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

// tinyCluster builds a 2-rack, 4-node cluster for exact-search tests.
func tinyCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.TwoRack(2, 2, cluster.EmulabNodeSpec())
	if err != nil {
		t.Fatalf("TwoRack: %v", err)
	}
	return c
}

func TestExactProducesValidAssignment(t *testing.T) {
	topo := tinyTopo(t, 30, 512)
	c := tinyCluster(t)
	a, err := NewExactScheduler().Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := a.Validate(topo, c, resource.DefaultClasses()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestExactAtLeastAsGoodAsGreedy(t *testing.T) {
	// The exact solver minimizes network cost + overload penalty; the
	// greedy heuristic must never beat it on that objective.
	tests := []struct {
		name     string
		cpu, mem float64
	}{
		{"loose", 10, 128},
		{"cpu-tight", 45, 128},
		{"memory-tight", 10, 900},
	}
	c := tinyCluster(t)
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			topo := tinyTopo(t, tt.cpu, tt.mem)
			exact, err := NewExactScheduler().Schedule(topo, c, NewGlobalState(c))
			if err != nil {
				t.Fatalf("exact: %v", err)
			}
			greedy, err := NewResourceAwareScheduler().Schedule(topo, c, NewGlobalState(c))
			if err != nil {
				t.Fatalf("greedy: %v", err)
			}
			eCost := objectiveCost(exact, topo, c)
			gCost := objectiveCost(greedy, topo, c)
			if gCost < eCost-1e-9 {
				t.Errorf("greedy cost %v beat exact cost %v — exact is not optimal", gCost, eCost)
			}
		})
	}
}

// objectiveCost mirrors the exact solver's objective for comparison.
func objectiveCost(a *Assignment, topo *topology.Topology, c *cluster.Cluster) float64 {
	cost := 0.0
	for _, st := range topo.Streams() {
		for _, pt := range topo.TasksOf(st.From) {
			for _, ct := range topo.TasksOf(st.To) {
				cost += c.NetworkDistance(a.Placements[pt.ID].Node, a.Placements[ct.ID].Node)
			}
		}
	}
	used := a.UsedPerNode(topo)
	nodes := make([]cluster.NodeID, 0, len(used))
	for node := range used {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, node := range nodes {
		if over := used[node].CPU - c.Node(node).Spec.Capacity.CPU; over > 0 {
			cost += 10 * over / 100
		}
	}
	return cost
}

func TestExactRefusesLargeInstances(t *testing.T) {
	topo := linearTopo(t, 6, 10, 100) // 24 tasks
	c := tinyCluster(t)
	_, err := NewExactScheduler().Schedule(topo, c, NewGlobalState(c))
	if err == nil || !strings.Contains(err.Error(), "limited to") {
		t.Fatalf("err = %v, want size-limit error", err)
	}
}

func TestExactHonorsHardMemory(t *testing.T) {
	// Each task needs 1100 MB; a 2048 MB node fits one task only, and
	// 6 tasks fit exactly on 4 nodes... they don't: only 4 nodes x 1 =
	// 4 < 6, so scheduling must fail.
	topo := tinyTopo(t, 10, 1100)
	c := tinyCluster(t)
	_, err := NewExactScheduler().Schedule(topo, c, NewGlobalState(c))
	if !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("err = %v, want ErrInsufficientResources", err)
	}
}

func TestExactNoSlots(t *testing.T) {
	topo := tinyTopo(t, 10, 100)
	c := tinyCluster(t)
	state := NewGlobalState(c)
	for _, id := range c.NodeIDs() {
		for _, slot := range state.FreeSlots(id) {
			occupySlot(t, state, id, slot)
		}
	}
	_, err := NewExactScheduler().Schedule(topo, c, state)
	if !errors.Is(err, ErrNoSlots) {
		t.Fatalf("err = %v, want ErrNoSlots", err)
	}
}

func TestExactColocatesChain(t *testing.T) {
	// A 3-task chain with generous resources should be fully colocated:
	// optimal network cost is zero.
	b := topology.NewBuilder("chain3")
	b.SetSpout("s", 1).SetCPULoad(10).SetMemoryLoad(100)
	b.SetBolt("a", 1).ShuffleGrouping("s").SetCPULoad(10).SetMemoryLoad(100)
	b.SetBolt("z", 1).ShuffleGrouping("a").SetCPULoad(10).SetMemoryLoad(100)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c := tinyCluster(t)
	a, err := NewExactScheduler().Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if got := a.NetworkCost(topo, c); got != 0 {
		t.Errorf("network cost = %v, want 0 (full colocation): %s", got, a)
	}
}
