package core

import (
	"testing"

	"rstorm/internal/cluster"
	"rstorm/internal/resource"
)

// availExcluding returns full capacities with the given nodes zeroed — the
// caller-side convention for dead-node exclusion.
func availExcluding(c *cluster.Cluster, dead ...cluster.NodeID) map[cluster.NodeID]resource.Vector {
	avail := make(map[cluster.NodeID]resource.Vector, c.Size())
	for _, n := range c.Nodes() {
		avail[n.ID] = n.Spec.Capacity
	}
	for _, id := range dead {
		avail[id] = resource.Vector{}
	}
	return avail
}

func TestIncrementalRestartReplacesDeadNodeTasks(t *testing.T) {
	topo := incrTopo(t, 4)
	c := incrCluster(t)
	ids := c.NodeIDs()
	// Spread the chain over three nodes; node ids[1] then dies.
	current := NewAssignment("incr", "r-storm")
	comps := map[string]cluster.NodeID{"s": ids[0], "work": ids[1], "z": ids[2]}
	restart := make(map[int]bool)
	frozen := make(map[int]bool)
	for _, task := range topo.Tasks() {
		current.Place(task.ID, Placement{Node: comps[task.Component], Slot: 0})
		if task.Component == "work" {
			restart[task.ID] = true
		} else {
			// Freeze survivors: this test isolates the restart mechanics
			// (a failover round may well allow improvement moves too).
			frozen[task.ID] = true
		}
	}
	sched := NewResourceAwareScheduler()
	next, moves, err := sched.IncrementalReschedule(topo, c, current, IncrementalOptions{
		Available: availExcluding(c, ids[1]),
		Restart:   restart,
		Frozen:    frozen,
		Margin:    0.15,
	})
	if err != nil {
		t.Fatalf("IncrementalReschedule: %v", err)
	}
	if len(moves) != len(restart) {
		t.Fatalf("moves = %v, want one per restarting task (%d)", moves, len(restart))
	}
	for _, m := range moves {
		if !restart[m.TaskID] {
			t.Errorf("live task %d moved during failover: %v", m.TaskID, m)
		}
		if m.To.Node == ids[1] {
			t.Errorf("task %d restarted on the dead node: %v", m.TaskID, m)
		}
	}
	for _, task := range topo.Tasks() {
		if restart[task.ID] {
			continue
		}
		if next.Placements[task.ID] != current.Placements[task.ID] {
			t.Errorf("surviving task %d displaced: %v -> %v",
				task.ID, current.Placements[task.ID], next.Placements[task.ID])
		}
	}
	if !next.Complete(topo) {
		t.Error("failover assignment incomplete")
	}
}

func TestIncrementalRestartInPlaceRecordsMove(t *testing.T) {
	// After the node recovers (full availability again), a restart may
	// legitimately choose the task's old node — the Move must still be
	// recorded, because the executor needs an explicit restart either way.
	topo := incrTopo(t, 2)
	c := incrCluster(t)
	ids := c.NodeIDs()
	current := NewAssignment("incr", "r-storm")
	restart := make(map[int]bool)
	for _, task := range topo.Tasks() {
		current.Place(task.ID, Placement{Node: ids[0], Slot: 0})
		restart[task.ID] = true
	}
	sched := NewResourceAwareScheduler()
	_, moves, err := sched.IncrementalReschedule(topo, c, current, IncrementalOptions{
		Restart: restart,
		Margin:  0.15,
	})
	if err != nil {
		t.Fatalf("IncrementalReschedule: %v", err)
	}
	if len(moves) != len(restart) {
		t.Fatalf("moves = %d, want %d (every restart recorded, in-place included)",
			len(moves), len(restart))
	}
}

func TestIncrementalRestartStaysDeadWhenNothingFits(t *testing.T) {
	topo := incrTopo(t, 2)
	c := incrCluster(t)
	ids := c.NodeIDs()
	current := NewAssignment("incr", "r-storm")
	restart := make(map[int]bool)
	for _, task := range topo.Tasks() {
		current.Place(task.ID, Placement{Node: ids[0], Slot: 0})
		if task.Component == "work" {
			restart[task.ID] = true
		}
	}
	// Every node zeroed: the cluster has no capacity anywhere.
	sched := NewResourceAwareScheduler()
	next, moves, err := sched.IncrementalReschedule(topo, c, current, IncrementalOptions{
		Available: availExcluding(c, ids...),
		Restart:   restart,
		Margin:    0.15,
	})
	if err != nil {
		t.Fatalf("IncrementalReschedule: %v", err)
	}
	for _, m := range moves {
		if restart[m.TaskID] {
			t.Errorf("restart task %d got a move with zero capacity: %v", m.TaskID, m)
		}
	}
	for id := range restart {
		if next.Placements[id] != current.Placements[id] {
			t.Errorf("unplaceable restart task %d moved", id)
		}
	}
}

func TestIncrementalRestartExemptFromMaxMoves(t *testing.T) {
	topo := incrTopo(t, 4)
	c := incrCluster(t)
	ids := c.NodeIDs()
	current := NewAssignment("incr", "r-storm")
	comps := map[string]cluster.NodeID{"s": ids[0], "work": ids[1], "z": ids[2]}
	restart := make(map[int]bool)
	for _, task := range topo.Tasks() {
		current.Place(task.ID, Placement{Node: comps[task.Component], Slot: 0})
		if task.Component == "work" {
			restart[task.ID] = true
		}
	}
	sched := NewResourceAwareScheduler()
	_, moves, err := sched.IncrementalReschedule(topo, c, current, IncrementalOptions{
		Available: availExcluding(c, ids[1]),
		Restart:   restart,
		MaxMoves:  1,
		Margin:    0.15,
	})
	if err != nil {
		t.Fatalf("IncrementalReschedule: %v", err)
	}
	restarted := 0
	for _, m := range moves {
		if restart[m.TaskID] {
			restarted++
		}
	}
	if restarted != len(restart) {
		t.Errorf("MaxMoves=1 starved failover: %d of %d tasks restarted",
			restarted, len(restart))
	}
}
