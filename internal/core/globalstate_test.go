package core

import (
	"strings"
	"testing"

	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

func TestGlobalStateApplyAndRemove(t *testing.T) {
	topo := linearTopo(t, 6, 25, 256)
	c := emulab12(t)
	state := NewGlobalState(c)

	a, err := NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := state.Apply(topo, a); err != nil {
		t.Fatalf("Apply: %v", err)
	}

	// Reservations visible.
	usedNodes := a.NodesUsed()
	full := c.Node(usedNodes[0]).Spec.Capacity
	if avail := state.Available(usedNodes[0]); avail == full {
		t.Error("availability unchanged after Apply")
	}
	if got := state.Topologies(); len(got) != 1 || got[0] != "linear" {
		t.Errorf("Topologies = %v", got)
	}
	if state.Assignment("linear") != a {
		t.Error("Assignment not recorded")
	}

	// Remove releases everything.
	state.Remove("linear")
	for _, id := range c.NodeIDs() {
		if avail := state.Available(id); avail != c.Node(id).Spec.Capacity {
			t.Errorf("node %s not fully released: %v", id, avail)
		}
		if got := len(state.FreeSlots(id)); got != c.Node(id).Spec.Slots {
			t.Errorf("node %s slots not released: %d free", id, got)
		}
	}
	if got := state.Topologies(); len(got) != 0 {
		t.Errorf("Topologies after remove = %v", got)
	}
}

func TestGlobalStateRejectsDoubleApply(t *testing.T) {
	topo := linearTopo(t, 2, 25, 256)
	c := emulab12(t)
	state := NewGlobalState(c)
	a, err := NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := state.Apply(topo, a); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := state.Apply(topo, a); err == nil || !strings.Contains(err.Error(), "already scheduled") {
		t.Fatalf("double apply err = %v", err)
	}
}

func TestGlobalStateRejectsMismatchedAssignment(t *testing.T) {
	topo := linearTopo(t, 1, 10, 100)
	c := emulab12(t)
	state := NewGlobalState(c)
	a := NewAssignment("other-name", "test")
	if err := state.Apply(topo, a); err == nil {
		t.Fatal("mismatched names accepted")
	}
}

func TestGlobalStateRejectsIncomplete(t *testing.T) {
	topo := linearTopo(t, 2, 10, 100)
	c := emulab12(t)
	state := NewGlobalState(c)
	a := NewAssignment("linear", "test")
	a.Place(0, Placement{Node: c.NodeIDs()[0], Slot: 0})
	if err := state.Apply(topo, a); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("incomplete apply err = %v", err)
	}
}

func TestGlobalStateRejectsForeignSlot(t *testing.T) {
	c := emulab12(t)
	state := NewGlobalState(c)
	node := c.NodeIDs()[0]
	occupySlot(t, state, node, 0)

	b := topology.NewBuilder("intruder")
	b.SetSpout("s", 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	a := NewAssignment("intruder", "test")
	a.Place(0, Placement{Node: node, Slot: 0})
	if err := state.Apply(topo, a); err == nil || !strings.Contains(err.Error(), "owned by") {
		t.Fatalf("foreign slot err = %v", err)
	}
}

func TestGlobalStateRejectsUnknownNodeAndSlot(t *testing.T) {
	c := emulab12(t)
	state := NewGlobalState(c)
	b := topology.NewBuilder("t")
	b.SetSpout("s", 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	a := NewAssignment("t", "test")
	a.Place(0, Placement{Node: "ghost", Slot: 0})
	if err := state.Apply(topo, a); err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Fatalf("unknown node err = %v", err)
	}
	a2 := NewAssignment("t", "test")
	a2.Place(0, Placement{Node: c.NodeIDs()[0], Slot: 99})
	if err := state.Apply(topo, a2); err == nil || !strings.Contains(err.Error(), "invalid slot") {
		t.Fatalf("invalid slot err = %v", err)
	}
}

func TestGlobalStateReleaseAndRestoreNode(t *testing.T) {
	topo := linearTopo(t, 6, 25, 256)
	c := emulab12(t)
	state := NewGlobalState(c)
	a, err := NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := state.Apply(topo, a); err != nil {
		t.Fatalf("Apply: %v", err)
	}

	victim := a.NodesUsed()[0]
	affected := state.ReleaseNode(victim)
	if len(affected) != 1 || affected[0] != "linear" {
		t.Errorf("affected = %v, want [linear]", affected)
	}
	if avail := state.Available(victim); !avail.IsZero() {
		t.Errorf("failed node availability = %v, want zero", avail)
	}
	if got := state.FreeSlots(victim); len(got) != 0 {
		t.Errorf("failed node has free slots: %v", got)
	}

	// Releasing a node nobody uses affects nothing.
	if affected := state.ReleaseNode("ghost-node"); len(affected) != 0 {
		t.Errorf("unused node release affected %v", affected)
	}

	if err := state.RestoreNode(victim); err != nil {
		t.Fatalf("RestoreNode: %v", err)
	}
	if avail := state.Available(victim); avail != c.Node(victim).Spec.Capacity {
		t.Errorf("restored availability = %v", avail)
	}
	if err := state.RestoreNode("ghost"); err == nil {
		t.Error("restoring unknown node should fail")
	}
}

func TestGlobalStateSlotOwner(t *testing.T) {
	c := emulab12(t)
	state := NewGlobalState(c)
	node := c.NodeIDs()[0]
	if owner := state.SlotOwner(node, 0); owner != "" {
		t.Errorf("fresh slot owner = %q", owner)
	}
	occupySlot(t, state, node, 0)
	if owner := state.SlotOwner(node, 0); !strings.HasPrefix(owner, "occupier-") {
		t.Errorf("slot owner = %q", owner)
	}
	if owner := state.SlotOwner(node, 999); owner != "" {
		t.Errorf("out-of-range slot owner = %q", owner)
	}
}

func TestAssignmentValidateCatchesMemoryViolation(t *testing.T) {
	topo := linearTopo(t, 6, 10, 1500) // 24 tasks x 1500MB
	c := emulab12(t)
	a, err := EvenScheduler{}.Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	// Even scheduler stacks 2 tasks x 1500MB = 3000MB > 2048MB per node.
	if err := a.Validate(topo, c, resource.DefaultClasses()); err == nil {
		t.Fatal("expected hard-constraint violation")
	}
}

func TestAssignmentHelpers(t *testing.T) {
	topo := linearTopo(t, 2, 25, 256)
	c := emulab12(t)
	a, err := NewResourceAwareScheduler().Schedule(topo, c, NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if _, ok := a.PlacementOf(0); !ok {
		t.Error("PlacementOf(0) missing")
	}
	if _, ok := a.PlacementOf(999); ok {
		t.Error("PlacementOf(999) should be absent")
	}
	if a.WorkersUsed() < 1 {
		t.Error("WorkersUsed < 1")
	}
	if s := a.String(); !strings.Contains(s, "linear") || !strings.Contains(s, "r-storm") {
		t.Errorf("String = %q", s)
	}
	if p := (Placement{Node: "n", Slot: 2}); p.String() != "n/slot2" {
		t.Errorf("placement string = %q", p.String())
	}
}
