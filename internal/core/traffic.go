package core

import (
	"fmt"
	"sort"
	"strings"
)

// TrafficMatrix holds measured inter-component traffic rates — the
// adaptive profiler's EWMA estimate of tuples per second flowing from one
// component to another. It generalizes the exact solver's unit-weight
// pairwise cost (exact.go) to measured rates: where the paper's heuristic
// treats every adjacent component pair as equally chatty, the matrix
// weights each pair by what the data plane actually delivered, which is
// what makes a network-cost objective meaningful at runtime.
//
// Rates are directed (src → dst) but the network-cost objective is
// symmetric in distance, so both directions of a pair contribute.
type TrafficMatrix struct {
	rates map[[2]string]float64
	order [][2]string // first-set order, for deterministic iteration
}

// NewTrafficMatrix returns an empty traffic matrix.
func NewTrafficMatrix() *TrafficMatrix {
	return &TrafficMatrix{rates: make(map[[2]string]float64)}
}

// Set records the measured rate (tuples/sec) from component src to dst.
// Setting a pair again replaces its rate.
func (m *TrafficMatrix) Set(src, dst string, ratePerSec float64) {
	k := [2]string{src, dst}
	if _, seen := m.rates[k]; !seen {
		m.order = append(m.order, k)
	}
	m.rates[k] = ratePerSec
}

// Rate returns the measured rate from src to dst (0 if unmeasured).
func (m *TrafficMatrix) Rate(src, dst string) float64 {
	if m == nil {
		return 0
	}
	return m.rates[[2]string{src, dst}]
}

// Pairs visits every measured pair in first-set order.
func (m *TrafficMatrix) Pairs(fn func(src, dst string, ratePerSec float64)) {
	if m == nil {
		return
	}
	for _, k := range m.order {
		fn(k[0], k[1], m.rates[k])
	}
}

// Total sums all measured rates — zero means the matrix carries no signal
// and a traffic objective would be a no-op.
func (m *TrafficMatrix) Total() float64 {
	if m == nil {
		return 0
	}
	// Sum in first-set order (m.order), not map order: Total feeds
	// reports and thresholds, so its bits must not vary run to run.
	var sum float64
	for _, k := range m.order {
		sum += m.rates[k]
	}
	return sum
}

// String renders the matrix sorted by pair, for logs and tests.
func (m *TrafficMatrix) String() string {
	if m == nil || len(m.rates) == 0 {
		return "traffic{}"
	}
	keys := make([][2]string, 0, len(m.rates))
	for k := range m.rates {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var b strings.Builder
	b.WriteString("traffic{")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s->%s: %.1f/s", k[0], k[1], m.rates[k])
	}
	b.WriteString("}")
	return b.String()
}
