package core

import (
	"fmt"

	"rstorm/internal/cluster"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// ResourceAwareScheduler implements R-Storm's scheduling algorithm (§4):
//
//  1. Task selection (Algorithm 3): a BFS traversal from the spouts yields
//     a component ordering; tasks are drawn round-robin from that ordering
//     so tasks of adjacent components are scheduled in close succession.
//  2. Node selection (Algorithm 4): the first task lands on the node with
//     the most available resources within the rack with the most available
//     resources (the ref node). Every other task lands on the node
//     minimizing the weighted Euclidean distance between the task's demand
//     and the node's remaining availability, with the bandwidth axis
//     replaced by the network distance from the ref node, excluding nodes
//     that would violate a hard constraint.
//
// On each node it uses, the scheduler packs all of a topology's tasks into
// a single worker process, maximizing intra-process communication.
type ResourceAwareScheduler struct {
	weights resource.Weights
	classes resource.Classes
	// ordering computes the task schedule order; replaced in ablation
	// tests to measure the BFS ordering's contribution.
	ordering func(*topology.Topology) []topology.Task
}

var _ Scheduler = (*ResourceAwareScheduler)(nil)

// RASOption configures a ResourceAwareScheduler.
type RASOption func(*ResourceAwareScheduler)

// WithWeights overrides the soft-constraint weights (§4: S' = Weights·S).
func WithWeights(w resource.Weights) RASOption {
	return func(s *ResourceAwareScheduler) { s.weights = w }
}

// WithClasses overrides the hard/soft classification of the resource axes.
func WithClasses(c resource.Classes) RASOption {
	return func(s *ResourceAwareScheduler) { s.classes = c }
}

// WithTaskOrdering overrides task selection; used by the task-ordering
// ablation to compare BFS against alternatives.
func WithTaskOrdering(f func(*topology.Topology) []topology.Task) RASOption {
	return func(s *ResourceAwareScheduler) { s.ordering = f }
}

// NewResourceAwareScheduler returns an R-Storm scheduler with the paper's
// defaults: memory hard, CPU and bandwidth soft, normalized weights.
func NewResourceAwareScheduler(opts ...RASOption) *ResourceAwareScheduler {
	s := &ResourceAwareScheduler{
		weights:  resource.DefaultWeights(),
		classes:  resource.DefaultClasses(),
		ordering: TaskOrdering,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Name implements Scheduler.
func (s *ResourceAwareScheduler) Name() string { return "r-storm" }

// TaskOrdering implements Algorithm 3 (TaskSelection): iterate the BFS
// component ordering repeatedly, drawing one task from each component that
// still has tasks, until every task is ordered. Adjacent components'
// tasks end up interleaved and near each other in the ordering.
func TaskOrdering(topo *topology.Topology) []topology.Task {
	order := topo.BFSOrder()
	remaining := make(map[string][]topology.Task, len(order))
	for _, comp := range order {
		remaining[comp] = topo.TasksOf(comp)
	}
	out := make([]topology.Task, 0, topo.TotalTasks())
	for len(out) < topo.TotalTasks() {
		drew := false
		for _, comp := range order {
			tasks := remaining[comp]
			if len(tasks) == 0 {
				continue
			}
			out = append(out, tasks[0])
			remaining[comp] = tasks[1:]
			drew = true
		}
		if !drew {
			break // defensive: cannot happen on a validated topology
		}
	}
	return out
}

// slotUnknown / slotNone are sentinels in schedState's per-node slot cache.
const (
	slotUnknown = -1
	slotNone    = -2
)

// schedState is one Schedule call's dense working set. Node IDs are
// resolved to integer indices once up front, so the O(tasks × nodes) inner
// loop of selectNode runs over flat slices with no map operations, no
// NodeID re-resolution, and no repeated FreeSlots scans:
//
//   - avail mirrors GlobalState availability as a slice indexed by node.
//   - netdist caches the network distance from the ref node per node
//     (static once the ref node is fixed — Algorithm 4 picks it once).
//   - slot lazily caches each node's first free worker slot; the scheduler
//     packs all of a topology's tasks into one worker per node, so a
//     node's answer never changes within a Schedule call (GlobalState is
//     not mutated until the caller applies the assignment atomically).
type schedState struct {
	ids     []cluster.NodeID
	avail   []resource.Vector
	netdist []float64
	slot    []int
	state   *GlobalState
}

// hasFreeSlot reports (resolving and caching on first query) whether node
// i has a worker slot this topology can use.
func (ss *schedState) hasFreeSlot(i int) bool {
	if ss.slot[i] == slotUnknown {
		if free, ok := ss.state.FirstFreeSlot(ss.ids[i]); ok {
			ss.slot[i] = free
		} else {
			ss.slot[i] = slotNone
		}
	}
	return ss.slot[i] >= 0
}

// Schedule implements Scheduler.
func (s *ResourceAwareScheduler) Schedule(
	topo *topology.Topology,
	c *cluster.Cluster,
	state *GlobalState,
) (*Assignment, error) {
	if err := s.weights.Validate(); err != nil {
		return nil, fmt.Errorf("scheduler weights: %w", err)
	}
	if err := s.classes.Validate(); err != nil {
		return nil, fmt.Errorf("scheduler classes: %w", err)
	}

	availMap := state.AvailableAll() // scratch copy; Apply happens later, atomically
	ids := c.NodeIDs()
	ss := &schedState{
		ids:     ids,
		avail:   make([]resource.Vector, len(ids)),
		netdist: make([]float64, len(ids)),
		slot:    make([]int, len(ids)),
		state:   state,
	}
	for i, id := range ids {
		ss.avail[i] = availMap[id]
		ss.slot[i] = slotUnknown
	}

	assignment := NewAssignment(topo.Name(), s.Name())
	haveRef := false

	for _, task := range s.ordering(topo) {
		demand := topo.TaskDemand(task)
		if !haveRef {
			// The ref node is chosen once, before any availability is
			// consumed, so availMap still matches ss.avail here.
			refNode := s.pickRefNode(c, availMap)
			for i, id := range ids {
				ss.netdist[i] = c.NetworkDistance(refNode, id)
			}
			haveRef = true
		}
		ni, ok := s.selectNode(ss, demand)
		if !ok {
			return nil, fmt.Errorf(
				"task %s (demand %v): %w", task, demand, ErrInsufficientResources)
		}
		assignment.Place(task.ID, Placement{Node: ids[ni], Slot: ss.slot[ni]})
		ss.avail[ni] = ss.avail[ni].Sub(demand)
	}
	return assignment, nil
}

// pickRefNode implements Algorithm 4 lines 6–9: the node with the most
// available resources inside the rack with the most available resources.
// Resource totals are compared after weight normalization so axes are
// commensurable; each node's weighted total is computed once up front
// rather than re-weighting in the rack-sum and best-node passes.
func (s *ResourceAwareScheduler) pickRefNode(
	c *cluster.Cluster,
	avail map[cluster.NodeID]resource.Vector,
) cluster.NodeID {
	totals := make(map[cluster.NodeID]float64, len(avail))
	for id, a := range avail {
		totals[id] = s.weights.Apply(a).Total()
	}
	var bestRack cluster.RackID
	bestRackTotal := -1.0
	for _, rack := range c.Racks() {
		var sum float64
		for _, id := range c.NodesInRack(rack) {
			sum += totals[id]
		}
		if sum > bestRackTotal {
			bestRackTotal = sum
			bestRack = rack
		}
	}
	var bestNode cluster.NodeID
	bestNodeTotal := -1.0
	for _, id := range c.NodesInRack(bestRack) {
		if total := totals[id]; total > bestNodeTotal {
			bestNodeTotal = total
			bestNode = id
		}
	}
	return bestNode
}

// selectNode implements Algorithm 4 line 10: the eligible node minimizing
// the weighted Euclidean distance between task demand and node
// availability, with the network distance from the ref node on the
// bandwidth axis. Ties break toward cluster declaration order for
// determinism.
func (s *ResourceAwareScheduler) selectNode(
	ss *schedState, demand resource.Vector,
) (int, bool) {
	best := -1
	bestDist := -1.0
	for i := range ss.avail {
		a := ss.avail[i]
		if !resource.SatisfiesHard(a, demand, s.classes) {
			continue
		}
		if !ss.hasFreeSlot(i) {
			continue
		}
		d := resource.Distance(demand, a, ss.netdist[i], s.weights)
		if bestDist < 0 || d < bestDist {
			bestDist = d
			best = i
		}
	}
	return best, bestDist >= 0
}
