package core

import (
	"fmt"

	"rstorm/internal/cluster"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
)

// ResourceAwareScheduler implements R-Storm's scheduling algorithm (§4):
//
//  1. Task selection (Algorithm 3): a BFS traversal from the spouts yields
//     a component ordering; tasks are drawn round-robin from that ordering
//     so tasks of adjacent components are scheduled in close succession.
//  2. Node selection (Algorithm 4): the first task lands on the node with
//     the most available resources within the rack with the most available
//     resources (the ref node). Every other task lands on the node
//     minimizing the weighted Euclidean distance between the task's demand
//     and the node's remaining availability, with the bandwidth axis
//     replaced by the network distance from the ref node, excluding nodes
//     that would violate a hard constraint.
//
// On each node it uses, the scheduler packs all of a topology's tasks into
// a single worker process, maximizing intra-process communication.
type ResourceAwareScheduler struct {
	weights resource.Weights
	classes resource.Classes
	// ordering computes the task schedule order; replaced in ablation
	// tests to measure the BFS ordering's contribution.
	ordering func(*topology.Topology) []topology.Task
}

var _ Scheduler = (*ResourceAwareScheduler)(nil)

// RASOption configures a ResourceAwareScheduler.
type RASOption func(*ResourceAwareScheduler)

// WithWeights overrides the soft-constraint weights (§4: S' = Weights·S).
func WithWeights(w resource.Weights) RASOption {
	return func(s *ResourceAwareScheduler) { s.weights = w }
}

// WithClasses overrides the hard/soft classification of the resource axes.
func WithClasses(c resource.Classes) RASOption {
	return func(s *ResourceAwareScheduler) { s.classes = c }
}

// WithTaskOrdering overrides task selection; used by the task-ordering
// ablation to compare BFS against alternatives.
func WithTaskOrdering(f func(*topology.Topology) []topology.Task) RASOption {
	return func(s *ResourceAwareScheduler) { s.ordering = f }
}

// NewResourceAwareScheduler returns an R-Storm scheduler with the paper's
// defaults: memory hard, CPU and bandwidth soft, normalized weights.
func NewResourceAwareScheduler(opts ...RASOption) *ResourceAwareScheduler {
	s := &ResourceAwareScheduler{
		weights:  resource.DefaultWeights(),
		classes:  resource.DefaultClasses(),
		ordering: TaskOrdering,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Name implements Scheduler.
func (s *ResourceAwareScheduler) Name() string { return "r-storm" }

// TaskOrdering implements Algorithm 3 (TaskSelection): iterate the BFS
// component ordering repeatedly, drawing one task from each component that
// still has tasks, until every task is ordered. Adjacent components'
// tasks end up interleaved and near each other in the ordering.
func TaskOrdering(topo *topology.Topology) []topology.Task {
	order := topo.BFSOrder()
	remaining := make(map[string][]topology.Task, len(order))
	for _, comp := range order {
		remaining[comp] = topo.TasksOf(comp)
	}
	out := make([]topology.Task, 0, topo.TotalTasks())
	for len(out) < topo.TotalTasks() {
		drew := false
		for _, comp := range order {
			tasks := remaining[comp]
			if len(tasks) == 0 {
				continue
			}
			out = append(out, tasks[0])
			remaining[comp] = tasks[1:]
			drew = true
		}
		if !drew {
			break // defensive: cannot happen on a validated topology
		}
	}
	return out
}

// Schedule implements Scheduler.
func (s *ResourceAwareScheduler) Schedule(
	topo *topology.Topology,
	c *cluster.Cluster,
	state *GlobalState,
) (*Assignment, error) {
	if err := s.weights.Validate(); err != nil {
		return nil, fmt.Errorf("scheduler weights: %w", err)
	}
	if err := s.classes.Validate(); err != nil {
		return nil, fmt.Errorf("scheduler classes: %w", err)
	}

	avail := state.AvailableAll() // scratch copy; Apply happens later, atomically
	slotOf := make(map[cluster.NodeID]int)
	hasFreeSlot := func(n cluster.NodeID) bool {
		if _, already := slotOf[n]; already {
			return true // topology already holds a worker on this node
		}
		return len(state.FreeSlots(n)) > 0
	}

	assignment := NewAssignment(topo.Name(), s.Name())
	var refNode cluster.NodeID

	for _, task := range s.ordering(topo) {
		demand := topo.TaskDemand(task)
		if refNode == "" {
			refNode = s.pickRefNode(c, avail)
		}
		node, ok := s.selectNode(c, avail, demand, refNode, hasFreeSlot)
		if !ok {
			return nil, fmt.Errorf(
				"task %s (demand %v): %w", task, demand, ErrInsufficientResources)
		}
		slot, ok := slotOf[node]
		if !ok {
			free := state.FreeSlots(node)
			if len(free) == 0 {
				return nil, fmt.Errorf("node %s: %w", node, ErrNoSlots)
			}
			slot = free[0]
			slotOf[node] = slot
		}
		assignment.Place(task.ID, Placement{Node: node, Slot: slot})
		avail[node] = avail[node].Sub(demand)
	}
	return assignment, nil
}

// pickRefNode implements Algorithm 4 lines 6–9: the node with the most
// available resources inside the rack with the most available resources.
// Resource totals are compared after weight normalization so axes are
// commensurable.
func (s *ResourceAwareScheduler) pickRefNode(
	c *cluster.Cluster,
	avail map[cluster.NodeID]resource.Vector,
) cluster.NodeID {
	var bestRack cluster.RackID
	bestRackTotal := -1.0
	for _, rack := range c.Racks() {
		var sum float64
		for _, id := range c.NodesInRack(rack) {
			sum += s.weights.Apply(avail[id]).Total()
		}
		if sum > bestRackTotal {
			bestRackTotal = sum
			bestRack = rack
		}
	}
	var bestNode cluster.NodeID
	bestNodeTotal := -1.0
	for _, id := range c.NodesInRack(bestRack) {
		if total := s.weights.Apply(avail[id]).Total(); total > bestNodeTotal {
			bestNodeTotal = total
			bestNode = id
		}
	}
	return bestNode
}

// selectNode implements Algorithm 4 line 10: the eligible node minimizing
// the weighted Euclidean distance between task demand and node
// availability, with the network distance from the ref node on the
// bandwidth axis. Ties break toward cluster declaration order for
// determinism.
func (s *ResourceAwareScheduler) selectNode(
	c *cluster.Cluster,
	avail map[cluster.NodeID]resource.Vector,
	demand resource.Vector,
	refNode cluster.NodeID,
	hasFreeSlot func(cluster.NodeID) bool,
) (cluster.NodeID, bool) {
	var best cluster.NodeID
	bestDist := -1.0
	for _, id := range c.NodeIDs() {
		a := avail[id]
		if !resource.SatisfiesHard(a, demand, s.classes) {
			continue
		}
		if !hasFreeSlot(id) {
			continue
		}
		d := resource.Distance(demand, a, c.NetworkDistance(refNode, id), s.weights)
		if bestDist < 0 || d < bestDist {
			bestDist = d
			best = id
		}
	}
	return best, bestDist >= 0
}
