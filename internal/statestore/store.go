// Package statestore is an in-memory stand-in for Zookeeper (§2: Nimbus
// "communicates and coordinates with Zookeeper to maintain a consistent
// list of active worker nodes and to detect failure in the membership").
// It provides a hierarchical key space, ephemeral nodes bound to sessions,
// and one-shot watches — the subset of the Zookeeper contract Nimbus needs.
package statestore

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Well-known errors, matchable with errors.Is.
var (
	// ErrNodeExists reports a Create on an existing path.
	ErrNodeExists = errors.New("node already exists")
	// ErrNoNode reports an operation on a missing path.
	ErrNoNode = errors.New("node does not exist")
	// ErrNoParent reports a Create whose parent path is missing.
	ErrNoParent = errors.New("parent node does not exist")
	// ErrNotEmpty reports a Delete on a node with children.
	ErrNotEmpty = errors.New("node has children")
	// ErrNoSession reports an operation with an expired or unknown
	// session.
	ErrNoSession = errors.New("session does not exist")
	// ErrBadPath reports a malformed path.
	ErrBadPath = errors.New("bad path")
)

// SessionID identifies a client session; ephemeral nodes die with it.
type SessionID uint64

// EventType classifies watch events.
type EventType int

const (
	// EventCreated fires when a node is created.
	EventCreated EventType = iota + 1
	// EventUpdated fires when a node's data changes.
	EventUpdated
	// EventDeleted fires when a node is deleted (including ephemeral
	// cleanup on session expiry).
	EventDeleted
)

// String implements fmt.Stringer.
func (e EventType) String() string {
	switch e {
	case EventCreated:
		return "created"
	case EventUpdated:
		return "updated"
	case EventDeleted:
		return "deleted"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// Event describes a change to a watched path.
type Event struct {
	Type EventType
	Path string
}

// Watcher receives exactly one Event, then is discarded (Zookeeper's
// one-shot watch semantics).
type Watcher func(Event)

type entry struct {
	data  []byte
	owner SessionID // 0 = persistent
}

// Store is the in-memory hierarchical state store. It is safe for
// concurrent use. Watch callbacks run synchronously under no lock, after
// the mutation completes.
type Store struct {
	mu          sync.Mutex
	nodes       map[string]*entry
	sessions    map[SessionID]map[string]bool // session -> owned paths
	nextSession SessionID
	dataWatch   map[string][]Watcher
	childWatch  map[string][]Watcher
}

// New returns a Store containing only the root node "/".
func New() *Store {
	return &Store{
		nodes:      map[string]*entry{"/": {}},
		sessions:   make(map[SessionID]map[string]bool),
		dataWatch:  make(map[string][]Watcher),
		childWatch: make(map[string][]Watcher),
	}
}

// normalize validates and cleans a path.
func normalize(p string) (string, error) {
	if p == "" || !strings.HasPrefix(p, "/") {
		return "", fmt.Errorf("%w: %q must be absolute", ErrBadPath, p)
	}
	clean := path.Clean(p)
	return clean, nil
}

// NewSession opens a session for ephemeral ownership.
func (s *Store) NewSession() SessionID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSession++
	id := s.nextSession
	s.sessions[id] = make(map[string]bool)
	return id
}

// ExpireSession deletes the session and every ephemeral node it owns,
// firing watches for each deletion.
func (s *Store) ExpireSession(id SessionID) error {
	s.mu.Lock()
	owned, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return ErrNoSession
	}
	delete(s.sessions, id)
	paths := make([]string, 0, len(owned))
	for p := range owned {
		paths = append(paths, p)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths))) // children before parents
	var fired []func()
	for _, p := range paths {
		if _, exists := s.nodes[p]; exists {
			delete(s.nodes, p)
			fired = append(fired, s.collectWatchesLocked(p, EventDeleted)...)
		}
	}
	s.mu.Unlock()
	for _, f := range fired {
		f()
	}
	return nil
}

// Create adds a node. The parent must exist. With a non-zero session the
// node is ephemeral and dies with the session.
func (s *Store) Create(p string, data []byte, session SessionID) error {
	p, err := normalize(p)
	if err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("%w: /", ErrNodeExists)
	}
	s.mu.Lock()
	if session != 0 {
		if _, ok := s.sessions[session]; !ok {
			s.mu.Unlock()
			return ErrNoSession
		}
	}
	if _, exists := s.nodes[p]; exists {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNodeExists, p)
	}
	parent := path.Dir(p)
	if _, ok := s.nodes[parent]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoParent, parent)
	}
	s.nodes[p] = &entry{data: append([]byte(nil), data...), owner: session}
	if session != 0 {
		s.sessions[session][p] = true
	}
	fired := s.collectWatchesLocked(p, EventCreated)
	s.mu.Unlock()
	for _, f := range fired {
		f()
	}
	return nil
}

// Set replaces a node's data.
func (s *Store) Set(p string, data []byte) error {
	p, err := normalize(p)
	if err != nil {
		return err
	}
	s.mu.Lock()
	e, ok := s.nodes[p]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoNode, p)
	}
	e.data = append([]byte(nil), data...)
	fired := s.collectDataWatchesLocked(p, EventUpdated)
	s.mu.Unlock()
	for _, f := range fired {
		f()
	}
	return nil
}

// Get returns a copy of a node's data.
func (s *Store) Get(p string) ([]byte, error) {
	p, err := normalize(p)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.nodes[p]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoNode, p)
	}
	return append([]byte(nil), e.data...), nil
}

// Exists reports whether a node exists.
func (s *Store) Exists(p string) bool {
	p, err := normalize(p)
	if err != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.nodes[p]
	return ok
}

// Delete removes a childless node.
func (s *Store) Delete(p string) error {
	p, err := normalize(p)
	if err != nil {
		return err
	}
	s.mu.Lock()
	e, ok := s.nodes[p]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoNode, p)
	}
	if len(s.childrenLocked(p)) > 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotEmpty, p)
	}
	delete(s.nodes, p)
	if e.owner != 0 {
		if owned, ok := s.sessions[e.owner]; ok {
			delete(owned, p)
		}
	}
	fired := s.collectWatchesLocked(p, EventDeleted)
	s.mu.Unlock()
	for _, f := range fired {
		f()
	}
	return nil
}

// Children returns the names (not full paths) of a node's children,
// sorted.
func (s *Store) Children(p string) ([]string, error) {
	p, err := normalize(p)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.nodes[p]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoNode, p)
	}
	return s.childrenLocked(p), nil
}

func (s *Store) childrenLocked(p string) []string {
	prefix := p
	if prefix != "/" {
		prefix += "/"
	}
	var out []string
	for candidate := range s.nodes {
		if candidate == p || !strings.HasPrefix(candidate, prefix) {
			continue
		}
		rest := candidate[len(prefix):]
		if !strings.Contains(rest, "/") {
			out = append(out, rest)
		}
	}
	sort.Strings(out)
	return out
}

// WatchData registers a one-shot watcher fired on the next create, update,
// or delete of p.
func (s *Store) WatchData(p string, w Watcher) error {
	p, err := normalize(p)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dataWatch[p] = append(s.dataWatch[p], w)
	return nil
}

// WatchChildren registers a one-shot watcher fired the next time a direct
// child of p is created or deleted.
func (s *Store) WatchChildren(p string, w Watcher) error {
	p, err := normalize(p)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.nodes[p]; !ok {
		return fmt.Errorf("%w: %s", ErrNoNode, p)
	}
	s.childWatch[p] = append(s.childWatch[p], w)
	return nil
}

// collectWatchesLocked gathers data watches on p and child watches on its
// parent for create/delete events.
func (s *Store) collectWatchesLocked(p string, t EventType) []func() {
	fired := s.collectDataWatchesLocked(p, t)
	parent := path.Dir(p)
	if ws := s.childWatch[parent]; len(ws) > 0 {
		delete(s.childWatch, parent)
		ev := Event{Type: t, Path: p}
		for _, w := range ws {
			w := w
			fired = append(fired, func() { w(ev) })
		}
	}
	return fired
}

func (s *Store) collectDataWatchesLocked(p string, t EventType) []func() {
	var fired []func()
	if ws := s.dataWatch[p]; len(ws) > 0 {
		delete(s.dataWatch, p)
		ev := Event{Type: t, Path: p}
		for _, w := range ws {
			w := w
			fired = append(fired, func() { w(ev) })
		}
	}
	return fired
}
