package statestore

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSupervisorChurn hammers the store with the access pattern
// Nimbus produces: many supervisors registering ephemeral nodes,
// heartbeating, and expiring concurrently, while a reader lists children.
// Run with -race.
func TestConcurrentSupervisorChurn(t *testing.T) {
	s := New()
	if err := s.Create("/supervisors", nil, 0); err != nil {
		t.Fatal(err)
	}

	const workers = 16
	const rounds = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			path := fmt.Sprintf("/supervisors/node-%d", w)
			for r := 0; r < rounds; r++ {
				sess := s.NewSession()
				if err := s.Create(path, []byte("hb"), sess); err != nil {
					t.Errorf("create %s: %v", path, err)
					return
				}
				for hb := 0; hb < 3; hb++ {
					if err := s.Set(path, []byte{byte(hb)}); err != nil {
						t.Errorf("set %s: %v", path, err)
						return
					}
				}
				if err := s.ExpireSession(sess); err != nil {
					t.Errorf("expire: %v", err)
					return
				}
			}
		}()
	}
	// Concurrent readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < workers*rounds; i++ {
			if _, err := s.Children("/supervisors"); err != nil {
				t.Errorf("children: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	children, err := s.Children("/supervisors")
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 0 {
		t.Errorf("ephemeral nodes leaked: %v", children)
	}
}

// TestConcurrentWatchers attaches watchers from several goroutines while
// another mutates; every watcher must fire at most once and without racing.
func TestConcurrentWatchers(t *testing.T) {
	s := New()
	if err := s.Create("/key", nil, 0); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	fired := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.WatchData("/key", func(Event) {
				mu.Lock()
				fired++
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	if err := s.Set("/key", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("/key", []byte("y")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if fired != 8 {
		t.Errorf("fired = %d, want 8 (one-shot each)", fired)
	}
}
