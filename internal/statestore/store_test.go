package statestore

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCreateGetSetDelete(t *testing.T) {
	s := New()
	if err := s.Create("/a", []byte("1"), 0); err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := s.Get("/a")
	if err != nil || string(got) != "1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := s.Set("/a", []byte("2")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	got, _ = s.Get("/a")
	if string(got) != "2" {
		t.Fatalf("after Set, Get = %q", got)
	}
	if !s.Exists("/a") {
		t.Error("Exists(/a) false")
	}
	if err := s.Delete("/a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if s.Exists("/a") {
		t.Error("Exists after delete")
	}
}

func TestErrors(t *testing.T) {
	s := New()
	if err := s.Create("/a", nil, 0); err != nil {
		t.Fatalf("Create: %v", err)
	}
	tests := []struct {
		name string
		op   func() error
		want error
	}{
		{"duplicate create", func() error { return s.Create("/a", nil, 0) }, ErrNodeExists},
		{"create root", func() error { return s.Create("/", nil, 0) }, ErrNodeExists},
		{"missing parent", func() error { return s.Create("/x/y", nil, 0) }, ErrNoParent},
		{"get missing", func() error { _, err := s.Get("/nope"); return err }, ErrNoNode},
		{"set missing", func() error { return s.Set("/nope", nil) }, ErrNoNode},
		{"delete missing", func() error { return s.Delete("/nope") }, ErrNoNode},
		{"children of missing", func() error { _, err := s.Children("/nope"); return err }, ErrNoNode},
		{"relative path", func() error { return s.Create("x", nil, 0) }, ErrBadPath},
		{"empty path", func() error { _, err := s.Get(""); return err }, ErrBadPath},
		{"create with dead session", func() error { return s.Create("/b", nil, 42) }, ErrNoSession},
		{"expire unknown session", func() error { return s.ExpireSession(42) }, ErrNoSession},
		{"watch children of missing", func() error { return s.WatchChildren("/nope", func(Event) {}) }, ErrNoNode},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.op(); !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestDeleteNonEmpty(t *testing.T) {
	s := New()
	if err := s.Create("/a", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/a/b", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/a"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("Delete non-empty = %v", err)
	}
	if err := s.Delete("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/a"); err != nil {
		t.Fatal(err)
	}
}

func TestChildren(t *testing.T) {
	s := New()
	for _, p := range []string{"/sup", "/sup/n2", "/sup/n1", "/sup/n1/deep", "/other"} {
		if err := s.Create(p, nil, 0); err != nil {
			t.Fatalf("Create %s: %v", p, err)
		}
	}
	got, err := s.Children("/sup")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("Children = %v", got)
	}
	root, err := s.Children("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(root) != 2 || root[0] != "other" || root[1] != "sup" {
		t.Fatalf("root children = %v", root)
	}
}

func TestEphemeralNodesDieWithSession(t *testing.T) {
	s := New()
	if err := s.Create("/sup", nil, 0); err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	if err := s.Create("/sup/worker", []byte("hb"), sess); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/sup/worker/sub", nil, sess); err != nil {
		t.Fatal(err)
	}
	if err := s.ExpireSession(sess); err != nil {
		t.Fatal(err)
	}
	if s.Exists("/sup/worker") || s.Exists("/sup/worker/sub") {
		t.Error("ephemeral nodes survived session expiry")
	}
	if !s.Exists("/sup") {
		t.Error("persistent parent deleted")
	}
}

func TestDeleteEphemeralBeforeExpiry(t *testing.T) {
	s := New()
	sess := s.NewSession()
	if err := s.Create("/e", nil, sess); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/e"); err != nil {
		t.Fatal(err)
	}
	// Expiry after manual delete must not error or resurrect.
	if err := s.ExpireSession(sess); err != nil {
		t.Fatal(err)
	}
	if s.Exists("/e") {
		t.Error("node resurrected")
	}
}

func TestDataWatchFiresOnceOnUpdate(t *testing.T) {
	s := New()
	if err := s.Create("/a", nil, 0); err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := s.WatchData("/a", func(e Event) { events = append(events, e) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("/a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("/a", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != EventUpdated || events[0].Path != "/a" {
		t.Fatalf("events = %v", events)
	}
}

func TestDataWatchFiresOnDelete(t *testing.T) {
	s := New()
	if err := s.Create("/a", nil, 0); err != nil {
		t.Fatal(err)
	}
	var got *Event
	if err := s.WatchData("/a", func(e Event) { got = &e }); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Type != EventDeleted {
		t.Fatalf("event = %v", got)
	}
}

func TestChildWatchFiresOnCreateAndExpiry(t *testing.T) {
	s := New()
	if err := s.Create("/sup", nil, 0); err != nil {
		t.Fatal(err)
	}
	var events []Event
	watch := func() {
		if err := s.WatchChildren("/sup", func(e Event) { events = append(events, e) }); err != nil {
			t.Fatal(err)
		}
	}
	watch()
	sess := s.NewSession()
	if err := s.Create("/sup/n1", nil, sess); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != EventCreated || events[0].Path != "/sup/n1" {
		t.Fatalf("create events = %v", events)
	}
	watch() // re-arm (one-shot)
	if err := s.ExpireSession(sess); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Type != EventDeleted {
		t.Fatalf("expiry events = %v", events)
	}
}

func TestWatchDoesNotFireForGrandchildren(t *testing.T) {
	s := New()
	if err := s.Create("/a", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/a/b", nil, 0); err != nil {
		t.Fatal(err)
	}
	fired := false
	if err := s.WatchChildren("/a", func(Event) { fired = true }); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/a/b/c", nil, 0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("child watch fired for grandchild")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	if err := s.Create("/a", []byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("/a")
	got[0] = 'X'
	again, _ := s.Get("/a")
	if string(again) != "abc" {
		t.Error("Get returned aliased data")
	}
}

func TestPathNormalization(t *testing.T) {
	s := New()
	if err := s.Create("/a", nil, 0); err != nil {
		t.Fatal(err)
	}
	if !s.Exists("/a/") {
		t.Error("trailing slash not normalized")
	}
	if !s.Exists("//a") {
		t.Error("double slash not normalized")
	}
}

func TestEventTypeString(t *testing.T) {
	for _, e := range []EventType{EventCreated, EventUpdated, EventDeleted, EventType(99)} {
		if e.String() == "" {
			t.Errorf("empty string for %d", int(e))
		}
	}
}

func TestQuickCreateThenGetRoundTrips(t *testing.T) {
	f := func(name string, data []byte) bool {
		if name == "" {
			return true
		}
		// Restrict to a safe single-segment name.
		for _, r := range name {
			if r == '/' || r == 0 {
				return true
			}
		}
		s := New()
		p := "/" + name
		if err := s.Create(p, data, 0); err != nil {
			return false
		}
		got, err := s.Get(p)
		if err != nil {
			return false
		}
		return string(got) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
