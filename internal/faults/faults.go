// Package faults is the chaos-injection harness: a declarative fault
// model (crash, recover, slow) with a scripted-schedule parser, consumed
// by the simulator's injection API (Simulation.InjectFault), the failover
// experiment, and rstorm-sim's -fail/-chaos flags.
//
// A schedule is a comma-separated list of events:
//
//	node-0-3@20s              crash node-0-3 at t=20s (legacy form)
//	crash:node-0-3@20s        the same, spelled out
//	recover:node-0-3@40s      bring node-0-3 back at t=40s
//	slow:node-0-5@10s:2.5     degrade node-0-5 by 2.5x from t=10s
//
// Times are Go durations relative to simulation start; the slow factor is
// a service-time multiplier > 1 (recover resets it).
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"rstorm/internal/cluster"
)

// Kind classifies a fault event.
type Kind uint8

const (
	// Crash kills a node: its tasks die, queued tuples drop, its NIC
	// fails.
	Crash Kind = iota
	// Recover brings a crashed node back with full capacity (its dead
	// tasks stay dead until a control plane re-places them) and clears
	// any slow factor.
	Recover
	// Slow degrades a node transiently: per-tuple service times stretch
	// by Factor until the node recovers.
	Slow
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case Slow:
		return "slow"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one scheduled fault event.
type Fault struct {
	Kind Kind
	Node cluster.NodeID
	At   time.Duration
	// Factor is the service-time multiplier of a Slow fault (> 1);
	// ignored for Crash and Recover.
	Factor float64
}

// String renders the fault in schedule syntax (parseable by ParseSchedule).
func (f Fault) String() string {
	switch f.Kind {
	case Slow:
		return fmt.Sprintf("slow:%s@%v:%g", f.Node, f.At, f.Factor)
	case Recover:
		return fmt.Sprintf("recover:%s@%v", f.Node, f.At)
	default:
		return fmt.Sprintf("crash:%s@%v", f.Node, f.At)
	}
}

// Validate rejects malformed faults independent of any cluster.
func (f Fault) Validate() error {
	if f.Node == "" {
		return fmt.Errorf("fault has no node")
	}
	if f.At < 0 {
		return fmt.Errorf("fault time %v, want >= 0", f.At)
	}
	switch f.Kind {
	case Crash, Recover:
	case Slow:
		if f.Factor <= 1 {
			return fmt.Errorf("slow factor %g, want > 1", f.Factor)
		}
	default:
		return fmt.Errorf("unknown fault kind %d", f.Kind)
	}
	return nil
}

// Schedule is an ordered list of fault events.
type Schedule []Fault

// ParseEvent parses one schedule event: [kind:]node@time[:factor]. The
// bare node@time form is a crash, byte-compatible with the original
// rstorm-sim -fail grammar.
func ParseEvent(spec string) (Fault, error) {
	var f Fault
	rest := spec
	switch {
	case strings.HasPrefix(spec, "crash:"):
		f.Kind = Crash
		rest = spec[len("crash:"):]
	case strings.HasPrefix(spec, "recover:"):
		f.Kind = Recover
		rest = spec[len("recover:"):]
	case strings.HasPrefix(spec, "slow:"):
		f.Kind = Slow
		rest = spec[len("slow:"):]
	}
	parts := strings.SplitN(rest, "@", 2)
	if len(parts) != 2 || parts[0] == "" {
		return Fault{}, fmt.Errorf("fault spec %q, want [crash:|recover:|slow:]node@time (e.g. node-0-3@20s)", spec)
	}
	f.Node = cluster.NodeID(parts[0])
	timePart := parts[1]
	if f.Kind == Slow {
		tf := strings.SplitN(timePart, ":", 2)
		if len(tf) != 2 {
			return Fault{}, fmt.Errorf("slow spec %q, want slow:node@time:factor (e.g. slow:node-0-3@20s:2.5)", spec)
		}
		timePart = tf[0]
		factor, err := strconv.ParseFloat(tf[1], 64)
		if err != nil {
			return Fault{}, fmt.Errorf("slow factor in %q: %w", spec, err)
		}
		f.Factor = factor
	}
	at, err := time.ParseDuration(timePart)
	if err != nil {
		return Fault{}, fmt.Errorf("fault time in %q: %w", spec, err)
	}
	f.At = at
	if err := f.Validate(); err != nil {
		return Fault{}, fmt.Errorf("fault spec %q: %w", spec, err)
	}
	return f, nil
}

// ParseSchedule parses a comma-separated list of events. Events keep their
// written order; use Sorted for time order. An empty spec is an empty
// schedule.
func ParseSchedule(spec string) (Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out Schedule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := ParseEvent(part)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// String renders the schedule in parseable syntax.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// Validate checks every event, and — per node — that the sequence is
// coherent: a recover must follow a crash or slow, and two crashes of the
// same node need a recover between them.
func (s Schedule) Validate() error {
	for _, f := range s {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	type state struct {
		down bool
		slow bool
		any  bool
	}
	states := make(map[cluster.NodeID]*state)
	for _, f := range s.Sorted() {
		st := states[f.Node]
		if st == nil {
			st = &state{}
			states[f.Node] = st
		}
		switch f.Kind {
		case Crash:
			if st.down {
				return fmt.Errorf("node %s crashes twice without a recover", f.Node)
			}
			st.down = true
		case Recover:
			if !st.any {
				return fmt.Errorf("node %s recovers at %v before any fault", f.Node, f.At)
			}
			st.down = false
			st.slow = false
		case Slow:
			st.slow = true
		}
		st.any = true
	}
	return nil
}

// Sorted returns a copy ordered by time (stable: written order breaks
// ties), which is the order an injector should apply them in.
func (s Schedule) Sorted() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Injector is anything that accepts fault events —
// simulator.Simulation.InjectFault satisfies it. Defined here (and
// consumed via Apply) so the harness does not import the simulator.
type Injector interface {
	InjectFault(f Fault) error
}

// Apply injects every event of the schedule, in time order.
func (s Schedule) Apply(inj Injector) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, f := range s.Sorted() {
		if err := inj.InjectFault(f); err != nil {
			return fmt.Errorf("injecting %s: %w", f, err)
		}
	}
	return nil
}
