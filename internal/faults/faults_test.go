package faults

import (
	"strings"
	"testing"
	"time"

	"rstorm/internal/cluster"
)

func TestParseEventForms(t *testing.T) {
	cases := []struct {
		spec string
		want Fault
	}{
		{"node-0-3@20s", Fault{Kind: Crash, Node: "node-0-3", At: 20 * time.Second}},
		{"crash:node-0-3@20s", Fault{Kind: Crash, Node: "node-0-3", At: 20 * time.Second}},
		{"recover:node-0-3@40s", Fault{Kind: Recover, Node: "node-0-3", At: 40 * time.Second}},
		{"slow:node-0-5@10s:2.5", Fault{Kind: Slow, Node: "node-0-5", At: 10 * time.Second, Factor: 2.5}},
		{"slow:node-1-0@1.5s:4", Fault{Kind: Slow, Node: "node-1-0", At: 1500 * time.Millisecond, Factor: 4}},
		{"crash:node-0-0@0s", Fault{Kind: Crash, Node: "node-0-0", At: 0}},
	}
	for _, c := range cases {
		got, err := ParseEvent(c.spec)
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Errorf("ParseEvent(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParseEventErrors(t *testing.T) {
	cases := []string{
		"",                      // empty
		"node-0-3",              // no @time
		"@20s",                  // no node
		"node-0-3@soon",         // bad duration
		"node-0-3@-5s",          // negative time
		"slow:node-0-3@20s",     // slow without factor
		"slow:node-0-3@20s:1.0", // factor must exceed 1
		"slow:node-0-3@20s:x",   // non-numeric factor
	}
	for _, spec := range cases {
		if _, err := ParseEvent(spec); err == nil {
			t.Errorf("ParseEvent(%q) succeeded, want error", spec)
		}
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	spec := "crash:node-0-3@20s,recover:node-0-3@40s,slow:node-0-5@10s:2.5"
	sched, err := ParseSchedule(spec)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if len(sched) != 3 {
		t.Fatalf("got %d events, want 3", len(sched))
	}
	if got := sched.String(); got != spec {
		t.Errorf("round-trip = %q, want %q", got, spec)
	}
	reparsed, err := ParseSchedule(sched.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	for i := range sched {
		if reparsed[i] != sched[i] {
			t.Errorf("event %d: reparsed %+v != %+v", i, reparsed[i], sched[i])
		}
	}
}

func TestParseScheduleWhitespaceAndEmpty(t *testing.T) {
	sched, err := ParseSchedule("  ")
	if err != nil || sched != nil {
		t.Fatalf("blank spec: got %v, %v; want nil, nil", sched, err)
	}
	sched, err = ParseSchedule(" node-0-1@5s , , crash:node-0-2@6s ")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if len(sched) != 2 {
		t.Fatalf("got %d events, want 2", len(sched))
	}
	if sched[0].Node != "node-0-1" || sched[1].Node != "node-0-2" {
		t.Errorf("unexpected nodes: %v", sched)
	}
}

func TestParseSchedulePropagatesError(t *testing.T) {
	_, err := ParseSchedule("node-0-1@5s,bogus")
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("want error mentioning bad event, got %v", err)
	}
}

func TestScheduleSortedStable(t *testing.T) {
	sched := Schedule{
		{Kind: Recover, Node: "b", At: 30 * time.Second},
		{Kind: Crash, Node: "a", At: 10 * time.Second},
		{Kind: Slow, Node: "c", At: 10 * time.Second, Factor: 2},
	}
	sorted := sched.Sorted()
	if sorted[0].Node != "a" || sorted[1].Node != "c" || sorted[2].Node != "b" {
		t.Errorf("sort order wrong: %v", sorted)
	}
	// Original untouched.
	if sched[0].Node != "b" {
		t.Errorf("Sorted mutated the receiver")
	}
}

func TestScheduleValidateSequencing(t *testing.T) {
	ok := Schedule{
		{Kind: Crash, Node: "a", At: 10 * time.Second},
		{Kind: Recover, Node: "a", At: 20 * time.Second},
		{Kind: Crash, Node: "a", At: 30 * time.Second},
		{Kind: Slow, Node: "b", At: 5 * time.Second, Factor: 2},
		{Kind: Recover, Node: "b", At: 15 * time.Second},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}

	doubleCrash := Schedule{
		{Kind: Crash, Node: "a", At: 10 * time.Second},
		{Kind: Crash, Node: "a", At: 20 * time.Second},
	}
	if err := doubleCrash.Validate(); err == nil {
		t.Errorf("double crash accepted")
	}

	orphanRecover := Schedule{
		{Kind: Recover, Node: "a", At: 10 * time.Second},
	}
	if err := orphanRecover.Validate(); err == nil {
		t.Errorf("recover before any fault accepted")
	}

	badEvent := Schedule{{Kind: Slow, Node: "a", At: time.Second, Factor: 0.5}}
	if err := badEvent.Validate(); err == nil {
		t.Errorf("invalid event accepted")
	}
}

func TestFaultValidate(t *testing.T) {
	if err := (Fault{Kind: Crash, Node: "n", At: 0}).Validate(); err != nil {
		t.Errorf("valid crash rejected: %v", err)
	}
	if err := (Fault{Kind: Crash, At: 0}).Validate(); err == nil {
		t.Errorf("empty node accepted")
	}
	if err := (Fault{Kind: Kind(9), Node: "n"}).Validate(); err == nil {
		t.Errorf("unknown kind accepted")
	}
	if err := (Fault{Kind: Crash, Node: "n", At: -time.Second}).Validate(); err == nil {
		t.Errorf("negative time accepted")
	}
}

func TestKindString(t *testing.T) {
	if Crash.String() != "crash" || Recover.String() != "recover" || Slow.String() != "slow" {
		t.Errorf("kind strings wrong: %v %v %v", Crash, Recover, Slow)
	}
	if got := Kind(7).String(); got != "Kind(7)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

type recordingInjector struct {
	got  []Fault
	fail bool
}

func (r *recordingInjector) InjectFault(f Fault) error {
	if r.fail {
		return &timeErr{}
	}
	r.got = append(r.got, f)
	return nil
}

type timeErr struct{}

func (*timeErr) Error() string { return "node is in the past" }

func TestScheduleApply(t *testing.T) {
	sched := Schedule{
		{Kind: Recover, Node: "a", At: 30 * time.Second},
		{Kind: Crash, Node: "a", At: 10 * time.Second},
	}
	inj := &recordingInjector{}
	if err := sched.Apply(inj); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(inj.got) != 2 || inj.got[0].Kind != Crash || inj.got[1].Kind != Recover {
		t.Errorf("events not applied in time order: %v", inj.got)
	}

	if err := sched.Apply(&recordingInjector{fail: true}); err == nil {
		t.Errorf("injector error not propagated")
	}

	bad := Schedule{{Kind: Recover, Node: cluster.NodeID("a"), At: time.Second}}
	if err := bad.Apply(inj); err == nil {
		t.Errorf("invalid schedule applied")
	}
}
