package topology

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

const sampleSpec = `{
  "name": "wordcount",
  "workers": 4,
  "maxSpoutPending": 32,
  "components": [
    {"name": "words", "kind": "spout", "parallelism": 4,
     "cpuLoad": 25, "memoryLoadMb": 512,
     "profile": {"cpuPerTupleUs": 100, "tupleBytes": 256}},
    {"name": "count", "kind": "bolt", "parallelism": 4,
     "cpuLoad": 50, "memoryLoadMb": 512,
     "inputs": [{"from": "words", "grouping": "fields", "key": "word"}]},
    {"name": "report", "kind": "bolt", "parallelism": 1,
     "inputs": [{"from": "count", "grouping": "global"}]}
  ]
}`

func TestParseSpecAndBuild(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	topo, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if topo.Name() != "wordcount" || topo.NumWorkers() != 4 || topo.MaxSpoutPending() != 32 {
		t.Errorf("metadata: %q workers=%d pending=%d", topo.Name(), topo.NumWorkers(), topo.MaxSpoutPending())
	}
	if topo.TotalTasks() != 9 {
		t.Errorf("tasks = %d", topo.TotalTasks())
	}
	words := topo.Component("words")
	if words.Kind != KindSpout || words.CPULoad != 25 || words.MemoryLoad != 512 {
		t.Errorf("spout: %+v", words)
	}
	if words.Profile.CPUPerTuple != 100*time.Microsecond || words.Profile.TupleBytes != 256 {
		t.Errorf("profile: %+v", words.Profile)
	}
	in := topo.Incoming("count")
	if len(in) != 1 || in[0].Grouping != GroupingFields || in[0].FieldsKey != "word" {
		t.Errorf("count inputs: %v", in)
	}
	if topo.Incoming("report")[0].Grouping != GroupingGlobal {
		t.Error("report grouping")
	}
}

func TestSpecBuildErrors(t *testing.T) {
	tests := []struct {
		name string
		spec Spec
		sub  string
	}{
		{
			name: "unknown kind",
			spec: Spec{Name: "t", Components: []ComponentSpec{{Name: "x", Kind: "widget", Parallelism: 1}}},
			sub:  "unknown kind",
		},
		{
			name: "spout with inputs",
			spec: Spec{Name: "t", Components: []ComponentSpec{
				{Name: "s", Kind: "spout", Parallelism: 1, Inputs: []InputSpec{{From: "s"}}},
			}},
			sub: "must not declare inputs",
		},
		{
			name: "unknown grouping",
			spec: Spec{Name: "t", Components: []ComponentSpec{
				{Name: "s", Kind: "spout", Parallelism: 1},
				{Name: "b", Kind: "bolt", Parallelism: 1, Inputs: []InputSpec{{From: "s", Grouping: "zigzag"}}},
			}},
			sub: "unknown grouping",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.spec.Build()
			if err == nil || !strings.Contains(err.Error(), tt.sub) {
				t.Fatalf("err = %v, want %q", err, tt.sub)
			}
		})
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(`{"name": "t", "bogus": 1}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseSpecRejectsBadJSON(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(`{`))
	if err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	topo, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// topology -> spec -> encode -> parse -> build -> compare shape.
	var buf bytes.Buffer
	if err := SpecOf(topo).Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	spec2, err := ParseSpec(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	topo2, err := spec2.Build()
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if topo2.TotalTasks() != topo.TotalTasks() {
		t.Errorf("task count drift: %d vs %d", topo2.TotalTasks(), topo.TotalTasks())
	}
	if len(topo2.Streams()) != len(topo.Streams()) {
		t.Errorf("stream drift: %v vs %v", topo2.Streams(), topo.Streams())
	}
	for _, name := range topo.ComponentNames() {
		a, b := topo.Component(name), topo2.Component(name)
		if b == nil {
			t.Fatalf("component %q lost", name)
		}
		if a.CPULoad != b.CPULoad || a.MemoryLoad != b.MemoryLoad || a.Parallelism != b.Parallelism {
			t.Errorf("component %q drift: %+v vs %+v", name, a, b)
		}
		if a.Profile != b.Profile {
			t.Errorf("component %q profile drift: %+v vs %+v", name, a.Profile, b.Profile)
		}
	}
}
