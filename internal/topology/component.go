// Package topology models Storm topologies: directed graphs of spouts and
// bolts connected by streams, parallelized into tasks (paper §2). It also
// carries the per-component resource demands that R-Storm's user API
// exposes (paper §5.2: SetCPULoad / SetMemoryLoad).
package topology

import (
	"fmt"
	"time"

	"rstorm/internal/resource"
)

// Kind distinguishes the two component types of a Storm topology.
type Kind int

const (
	// KindSpout is a source of tuples.
	KindSpout Kind = iota + 1
	// KindBolt consumes, processes, and potentially emits tuples.
	KindBolt
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSpout:
		return "spout"
	case KindBolt:
		return "bolt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ExecProfile describes the runtime behaviour of one task of a component —
// the stand-in for the user's spout/bolt code when a topology executes on
// the simulator. Profiles are workload knobs, not scheduler inputs: the
// scheduler sees only the declared resource loads.
type ExecProfile struct {
	// CPUPerTuple is the un-contended processing time for one tuple. The
	// simulator stretches it when the host node's CPU is overcommitted.
	CPUPerTuple time.Duration
	// TupleBytes is the serialized size of each emitted tuple, which
	// drives NIC bandwidth consumption for inter-node transfers.
	TupleBytes int
	// OutRatio is the average number of tuples a bolt emits per input
	// tuple on each outgoing stream (1 = pass-through, 0 = pure sink
	// behaviour on that bolt, 2 = splitter). Ignored for spouts.
	OutRatio float64
	// KeyCardinality bounds the synthetic key space used for fields
	// groupings.
	KeyCardinality int
	// CPUPoints is the task's *true* sustained CPU demand in points. The
	// scheduler never sees it — it schedules from the declared CPULoad —
	// but the simulator's overcommit model uses it, so workloads whose
	// declarations do not match reality (the adaptive-scheduling
	// scenarios, DESIGN.md) behave according to the truth. Zero means
	// "the declaration is honest": the declared CPULoad is used.
	CPUPoints float64
	// MemMB is the task's *true* steady-state resident memory in MB — the
	// memory analogue of CPUPoints. The scheduler sees only the declared
	// MemoryLoad; the simulator's runtime memory model (Config.MemoryModel,
	// DESIGN.md §4) accounts resident memory against MemMB. Zero means
	// "the declaration is honest": the declared MemoryLoad is resident.
	MemMB float64
	// MemGrowTuples is the number of tuples a task must handle (process,
	// for bolts; emit, for spouts) before its resident state reaches the
	// steady footprint: resident ramps linearly from zero to the effective
	// memory over that many tuples. Zero means the footprint is resident
	// immediately. This is the state-growth term that lets mis-declared
	// memory workloads creep up on a node's capacity at runtime rather
	// than violating it at t=0.
	MemGrowTuples int
}

// withDefaults fills unset profile fields with safe defaults.
func (p ExecProfile) withDefaults() ExecProfile {
	if p.CPUPerTuple <= 0 {
		p.CPUPerTuple = 50 * time.Microsecond
	}
	if p.TupleBytes <= 0 {
		p.TupleBytes = 128
	}
	if p.OutRatio < 0 {
		p.OutRatio = 0
	} else if p.OutRatio == 0 {
		p.OutRatio = 1
	}
	if p.KeyCardinality <= 0 {
		p.KeyCardinality = 1024
	}
	if p.CPUPoints < 0 {
		p.CPUPoints = 0
	}
	if p.MemMB < 0 {
		p.MemMB = 0
	}
	if p.MemGrowTuples < 0 {
		p.MemGrowTuples = 0
	}
	return p
}

// Component is a processing operator in a topology: a spout or a bolt,
// parallelized into Parallelism tasks that all run the same logic.
type Component struct {
	// Name uniquely identifies the component within its topology.
	Name string
	// Kind is KindSpout or KindBolt.
	Kind Kind
	// Parallelism is the number of tasks instantiated from this
	// component. Always >= 1 after Build.
	Parallelism int
	// CPULoad is the declared CPU demand, in points, of one task
	// (paper §5.2: setCPULoad).
	CPULoad float64
	// MemoryLoad is the declared memory demand, in MB, of one task
	// (paper §5.2: setMemoryLoad).
	MemoryLoad float64
	// BandwidthLoad is the declared bandwidth demand of one task. The
	// paper's node-selection algorithm replaces this axis with network
	// distance, but the demand is retained for accounting.
	BandwidthLoad float64
	// Profile is the simulated runtime behaviour of each task.
	Profile ExecProfile
}

// EffectiveCPUPoints returns the true per-task CPU consumption driving the
// simulator's contention model: the profile's CPUPoints when set, else the
// declared CPULoad (an honest declaration).
func (c *Component) EffectiveCPUPoints() float64 {
	if c.Profile.CPUPoints > 0 {
		return c.Profile.CPUPoints
	}
	return c.CPULoad
}

// EffectiveMemMB returns the true per-task steady resident memory driving
// the simulator's runtime memory model: the profile's MemMB when set, else
// the declared MemoryLoad (an honest declaration).
func (c *Component) EffectiveMemMB() float64 {
	if c.Profile.MemMB > 0 {
		return c.Profile.MemMB
	}
	return c.MemoryLoad
}

// Demand returns the per-task resource demand vector A_τ.
func (c *Component) Demand() resource.Vector {
	return resource.Vector{
		CPU:       c.CPULoad,
		MemoryMB:  c.MemoryLoad,
		Bandwidth: c.BandwidthLoad,
	}
}

// TotalDemand returns the demand of all tasks of this component combined.
func (c *Component) TotalDemand() resource.Vector {
	return c.Demand().Scale(float64(c.Parallelism))
}

// validate checks the component's declared configuration.
func (c *Component) validate() error {
	if c.Name == "" {
		return fmt.Errorf("component has empty name")
	}
	if c.Kind != KindSpout && c.Kind != KindBolt {
		return fmt.Errorf("component %q has invalid kind %d", c.Name, int(c.Kind))
	}
	if c.Parallelism < 1 {
		return fmt.Errorf("component %q has parallelism %d, want >= 1", c.Name, c.Parallelism)
	}
	if err := c.Demand().Validate(); err != nil {
		return fmt.Errorf("component %q: %w", c.Name, err)
	}
	return nil
}
