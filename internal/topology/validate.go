package topology

import (
	"fmt"
	"strings"
)

// validateShape checks structural properties once the component and stream
// tables are assembled: spouts take no inputs, bolts have at least one
// input, there is at least one spout, and every component is reachable from
// some spout (otherwise it could never receive tuples).
func validateShape(t *Topology) error {
	spouts := 0
	for _, name := range t.order {
		c := t.components[name]
		switch c.Kind {
		case KindSpout:
			spouts++
			if len(t.incoming[name]) > 0 {
				return fmt.Errorf("spout %q has incoming streams %v", name, t.incoming[name])
			}
		case KindBolt:
			if len(t.incoming[name]) == 0 {
				return fmt.Errorf("bolt %q has no incoming streams", name)
			}
		}
	}
	if spouts == 0 {
		return fmt.Errorf("topology has no spouts")
	}

	reached := make(map[string]bool, len(t.order))
	var queue []string
	for _, name := range t.order {
		if t.components[name].Kind == KindSpout {
			queue = append(queue, name)
			reached[name] = true
		}
	}
	for len(queue) > 0 {
		com := queue[0]
		queue = queue[1:]
		for _, s := range t.outgoing[com] {
			if !reached[s.To] {
				reached[s.To] = true
				queue = append(queue, s.To)
			}
		}
	}
	if len(reached) != len(t.order) {
		var orphans []string
		for _, name := range t.order {
			if !reached[name] {
				orphans = append(orphans, name)
			}
		}
		return fmt.Errorf("components unreachable from any spout: %s", strings.Join(orphans, ", "))
	}
	return nil
}
