package topology

import (
	"fmt"

	"rstorm/internal/resource"
)

// Task is one parallel instance of a component — the schedulable unit
// (paper §2: "Tasks - A Storm job that is an instantiation of a Spout or
// Bolt").
type Task struct {
	// ID is the task's unique index within its topology, dense in
	// [0, TotalTasks).
	ID int
	// Component is the owning component's name.
	Component string
	// Index is the task's index within its component, in
	// [0, Parallelism).
	Index int
}

// String implements fmt.Stringer.
func (t Task) String() string {
	return fmt.Sprintf("%s[%d]#%d", t.Component, t.Index, t.ID)
}

// Topology is an immutable, validated computation graph. Build one with a
// Builder.
type Topology struct {
	name       string
	components map[string]*Component
	order      []string // component insertion order, for determinism
	streams    []Stream
	workers    int
	maxPending int
	priority   int

	tasks     []Task
	taskIndex map[string][]Task // component name -> its tasks
	outgoing  map[string][]Stream
	incoming  map[string][]Stream
}

// Name returns the topology's name.
func (t *Topology) Name() string { return t.name }

// NumWorkers returns the requested number of worker processes (Storm's
// topology.workers). Zero means "let the scheduler decide".
func (t *Topology) NumWorkers() int { return t.workers }

// MaxSpoutPending returns the per-spout-task cap on incomplete tuple trees
// (Storm's topology.max.spout.pending). Zero means "use the cluster
// default".
func (t *Topology) MaxSpoutPending() int { return t.maxPending }

// Priority returns the topology's scheduling priority (Storm's
// topology.priority, inverted: here higher wins). The multi-tenant control
// plane admits pending topologies in descending priority and may evict
// lower-priority tenants to make room for a higher-priority arrival. Zero
// — the default — means "no priority": with every topology at zero the
// cluster pass degenerates to FIFO admission and never evicts.
func (t *Topology) Priority() int { return t.priority }

// Component returns the named component, or nil if absent.
func (t *Topology) Component(name string) *Component {
	return t.components[name]
}

// Components returns all components in insertion order. The slice is fresh;
// the *Component values are shared and must be treated as read-only.
func (t *Topology) Components() []*Component {
	out := make([]*Component, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, t.components[name])
	}
	return out
}

// ComponentNames returns component names in insertion order.
func (t *Topology) ComponentNames() []string {
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// Spouts returns the spout components in insertion order.
func (t *Topology) Spouts() []*Component {
	var out []*Component
	for _, name := range t.order {
		if c := t.components[name]; c.Kind == KindSpout {
			out = append(out, c)
		}
	}
	return out
}

// Sinks returns the components with no outgoing streams — the "output
// bolts" whose arrival rate defines topology throughput in the paper's
// evaluation (§6.2).
func (t *Topology) Sinks() []*Component {
	var out []*Component
	for _, name := range t.order {
		if len(t.outgoing[name]) == 0 {
			out = append(out, t.components[name])
		}
	}
	return out
}

// Streams returns every stream in declaration order.
func (t *Topology) Streams() []Stream {
	out := make([]Stream, len(t.streams))
	copy(out, t.streams)
	return out
}

// Outgoing returns the streams produced by the named component.
func (t *Topology) Outgoing(name string) []Stream {
	src := t.outgoing[name]
	out := make([]Stream, len(src))
	copy(out, src)
	return out
}

// Incoming returns the streams consumed by the named component.
func (t *Topology) Incoming(name string) []Stream {
	src := t.incoming[name]
	out := make([]Stream, len(src))
	copy(out, src)
	return out
}

// Tasks returns every task of the topology, ordered by component insertion
// order then task index. Task IDs are dense and stable.
func (t *Topology) Tasks() []Task {
	out := make([]Task, len(t.tasks))
	copy(out, t.tasks)
	return out
}

// TasksOf returns the tasks of the named component in index order.
func (t *Topology) TasksOf(component string) []Task {
	src := t.taskIndex[component]
	out := make([]Task, len(src))
	copy(out, src)
	return out
}

// TotalTasks returns the number of tasks across all components.
func (t *Topology) TotalTasks() int { return len(t.tasks) }

// TaskDemand returns the resource demand vector of the given task.
func (t *Topology) TaskDemand(task Task) resource.Vector {
	c := t.components[task.Component]
	if c == nil {
		return resource.Vector{}
	}
	return c.Demand()
}

// TotalDemand returns the combined demand of every task in the topology.
func (t *Topology) TotalDemand() resource.Vector {
	var total resource.Vector
	for _, name := range t.order {
		total = total.Add(t.components[name].TotalDemand())
	}
	return total
}

// BFSOrder implements Algorithm 2 (BFSTopologyTraversal): a breadth-first
// traversal over the downstream adjacency starting from the spouts,
// returning a component ordering in which adjacent components appear in
// close succession. With multiple spouts, all spouts seed the queue in
// insertion order, matching "we start traversing the topology starting from
// the spouts" (§4.1.1). Cycles are handled by the visited set, so the
// traversal is not limited to acyclic topologies (§7).
func (t *Topology) BFSOrder() []string {
	visited := make(map[string]bool, len(t.order))
	queue := make([]string, 0, len(t.order))
	out := make([]string, 0, len(t.order))

	for _, name := range t.order {
		if t.components[name].Kind == KindSpout {
			queue = append(queue, name)
			visited[name] = true
			out = append(out, name)
		}
	}
	for len(queue) > 0 {
		com := queue[0]
		queue = queue[1:]
		for _, s := range t.outgoing[com] {
			if !visited[s.To] {
				visited[s.To] = true
				queue = append(queue, s.To)
				out = append(out, s.To)
			}
		}
	}
	// Components unreachable from any spout are rejected at Build time,
	// so out covers the whole topology.
	return out
}

// AdjacentPairs returns every (producer, consumer) component pair, useful
// for measuring how well a schedule colocates communicating components.
func (t *Topology) AdjacentPairs() [][2]string {
	out := make([][2]string, 0, len(t.streams))
	for _, s := range t.streams {
		out = append(out, [2]string{s.From, s.To})
	}
	return out
}
