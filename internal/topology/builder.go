package topology

import (
	"errors"
	"fmt"
	"time"
)

// Builder assembles a Topology, mirroring Storm's TopologyBuilder and the
// R-Storm user API of paper §5.2:
//
//	b := topology.NewBuilder("wordcount")
//	b.SetSpout("word", 10).SetMemoryLoad(1024).SetCPULoad(50)
//	b.SetBolt("count", 5).FieldsGrouping("word", "word").SetCPULoad(25)
//	topo, err := b.Build()
type Builder struct {
	name       string
	components map[string]*Component
	order      []string
	streams    []Stream
	workers    int
	maxPending int
	priority   int
	errs       []error
}

// NewBuilder returns a Builder for a topology with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:       name,
		components: make(map[string]*Component),
	}
}

// SetNumWorkers requests a number of worker processes (Storm's
// topology.workers). Zero lets the scheduler decide.
func (b *Builder) SetNumWorkers(n int) *Builder {
	b.workers = n
	return b
}

// SetMaxSpoutPending caps incomplete tuple trees per spout task (Storm's
// topology.max.spout.pending). Zero means "use the cluster default".
func (b *Builder) SetMaxSpoutPending(n int) *Builder {
	b.maxPending = n
	return b
}

// SetPriority sets the topology's scheduling priority (higher wins).
// Zero — the default — means "no priority": equal-priority topologies are
// admitted FIFO and never evict each other.
func (b *Builder) SetPriority(p int) *Builder {
	b.priority = p
	return b
}

// SetSpout declares a spout with the given parallelism hint and returns a
// declarer for attaching resource loads and an execution profile.
func (b *Builder) SetSpout(name string, parallelism int) *SpoutDeclarer {
	c := b.add(name, KindSpout, parallelism)
	return &SpoutDeclarer{declarer{builder: b, component: c}}
}

// SetBolt declares a bolt with the given parallelism hint and returns a
// declarer for attaching input streams, resource loads, and a profile.
func (b *Builder) SetBolt(name string, parallelism int) *BoltDeclarer {
	c := b.add(name, KindBolt, parallelism)
	return &BoltDeclarer{declarer{builder: b, component: c}}
}

func (b *Builder) add(name string, kind Kind, parallelism int) *Component {
	if _, dup := b.components[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("component %q declared twice", name))
	}
	c := &Component{Name: name, Kind: kind, Parallelism: parallelism}
	b.components[name] = c
	b.order = append(b.order, name)
	return c
}

// Build validates the declarations and returns an immutable Topology.
func (b *Builder) Build() (*Topology, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	if b.name == "" {
		return nil, errors.New("topology name is empty")
	}
	if len(b.components) == 0 {
		return nil, fmt.Errorf("topology %q has no components", b.name)
	}
	if b.workers < 0 {
		return nil, fmt.Errorf("topology %q: workers %d is negative", b.name, b.workers)
	}
	if b.maxPending < 0 {
		return nil, fmt.Errorf("topology %q: max spout pending %d is negative", b.name, b.maxPending)
	}
	if b.priority < 0 {
		return nil, fmt.Errorf("topology %q: priority %d is negative", b.name, b.priority)
	}

	t := &Topology{
		name:       b.name,
		components: make(map[string]*Component, len(b.components)),
		order:      append([]string(nil), b.order...),
		streams:    append([]Stream(nil), b.streams...),
		workers:    b.workers,
		maxPending: b.maxPending,
		priority:   b.priority,
		taskIndex:  make(map[string][]Task, len(b.components)),
		outgoing:   make(map[string][]Stream),
		incoming:   make(map[string][]Stream),
	}
	for name, c := range b.components {
		cc := *c // copy so later builder mutation cannot alias
		cc.Profile = cc.Profile.withDefaults()
		if err := cc.validate(); err != nil {
			return nil, fmt.Errorf("topology %q: %w", b.name, err)
		}
		t.components[name] = &cc
	}
	for _, s := range t.streams {
		if !s.Grouping.valid() {
			return nil, fmt.Errorf("topology %q: stream %s has invalid grouping", b.name, s)
		}
		if _, ok := t.components[s.From]; !ok {
			return nil, fmt.Errorf("topology %q: stream source %q does not exist", b.name, s.From)
		}
		if _, ok := t.components[s.To]; !ok {
			return nil, fmt.Errorf("topology %q: stream target %q does not exist", b.name, s.To)
		}
		if t.components[s.From] == t.components[s.To] {
			return nil, fmt.Errorf("topology %q: self-loop on %q", b.name, s.From)
		}
		t.outgoing[s.From] = append(t.outgoing[s.From], s)
		t.incoming[s.To] = append(t.incoming[s.To], s)
	}
	if err := validateShape(t); err != nil {
		return nil, fmt.Errorf("topology %q: %w", b.name, err)
	}

	// Derive dense task IDs: component insertion order, then index.
	id := 0
	for _, name := range t.order {
		c := t.components[name]
		tasks := make([]Task, 0, c.Parallelism)
		for i := 0; i < c.Parallelism; i++ {
			task := Task{ID: id, Component: name, Index: i}
			tasks = append(tasks, task)
			t.tasks = append(t.tasks, task)
			id++
		}
		t.taskIndex[name] = tasks
	}
	return t, nil
}

// declarer is the shared half of SpoutDeclarer and BoltDeclarer.
type declarer struct {
	builder   *Builder
	component *Component
}

// setCPULoad records the per-task CPU demand in points (100 ≈ one core).
func (d *declarer) setCPULoad(points float64) { d.component.CPULoad = points }

// setMemoryLoad records the per-task memory demand in MB.
func (d *declarer) setMemoryLoad(mb float64) { d.component.MemoryLoad = mb }

// setBandwidthLoad records the per-task bandwidth demand.
func (d *declarer) setBandwidthLoad(bw float64) { d.component.BandwidthLoad = bw }

// setProfile records the simulated execution profile.
func (d *declarer) setProfile(p ExecProfile) { d.component.Profile = p }

// SpoutDeclarer configures a spout declaration.
type SpoutDeclarer struct{ declarer }

// SetCPULoad sets the per-task CPU demand in points (paper §5.2).
func (d *SpoutDeclarer) SetCPULoad(points float64) *SpoutDeclarer {
	d.setCPULoad(points)
	return d
}

// SetMemoryLoad sets the per-task memory demand in MB (paper §5.2).
func (d *SpoutDeclarer) SetMemoryLoad(mb float64) *SpoutDeclarer {
	d.setMemoryLoad(mb)
	return d
}

// SetBandwidthLoad sets the per-task bandwidth demand.
func (d *SpoutDeclarer) SetBandwidthLoad(bw float64) *SpoutDeclarer {
	d.setBandwidthLoad(bw)
	return d
}

// SetProfile sets the simulated execution profile.
func (d *SpoutDeclarer) SetProfile(p ExecProfile) *SpoutDeclarer {
	d.setProfile(p)
	return d
}

// SetEmitInterval is a convenience for configuring how quickly the spout
// produces tuples: it sets CPUPerTuple on the profile, which is the spout's
// per-tuple generation cost.
func (d *SpoutDeclarer) SetEmitInterval(dur time.Duration) *SpoutDeclarer {
	d.component.Profile.CPUPerTuple = dur
	return d
}

// BoltDeclarer configures a bolt declaration.
type BoltDeclarer struct{ declarer }

// SetCPULoad sets the per-task CPU demand in points (paper §5.2).
func (d *BoltDeclarer) SetCPULoad(points float64) *BoltDeclarer {
	d.setCPULoad(points)
	return d
}

// SetMemoryLoad sets the per-task memory demand in MB (paper §5.2).
func (d *BoltDeclarer) SetMemoryLoad(mb float64) *BoltDeclarer {
	d.setMemoryLoad(mb)
	return d
}

// SetBandwidthLoad sets the per-task bandwidth demand.
func (d *BoltDeclarer) SetBandwidthLoad(bw float64) *BoltDeclarer {
	d.setBandwidthLoad(bw)
	return d
}

// SetProfile sets the simulated execution profile.
func (d *BoltDeclarer) SetProfile(p ExecProfile) *BoltDeclarer {
	d.setProfile(p)
	return d
}

// ShuffleGrouping subscribes this bolt to src with shuffle partitioning.
func (d *BoltDeclarer) ShuffleGrouping(src string) *BoltDeclarer {
	return d.grouping(src, GroupingShuffle, "")
}

// FieldsGrouping subscribes this bolt to src, routing tuples by key.
func (d *BoltDeclarer) FieldsGrouping(src, key string) *BoltDeclarer {
	return d.grouping(src, GroupingFields, key)
}

// GlobalGrouping subscribes this bolt to src, routing every tuple to the
// lowest task.
func (d *BoltDeclarer) GlobalGrouping(src string) *BoltDeclarer {
	return d.grouping(src, GroupingGlobal, "")
}

// AllGrouping subscribes this bolt to src, replicating tuples to all tasks.
func (d *BoltDeclarer) AllGrouping(src string) *BoltDeclarer {
	return d.grouping(src, GroupingAll, "")
}

// LocalOrShuffleGrouping subscribes this bolt to src, preferring tasks in
// the same worker process.
func (d *BoltDeclarer) LocalOrShuffleGrouping(src string) *BoltDeclarer {
	return d.grouping(src, GroupingLocalOrShuffle, "")
}

func (d *BoltDeclarer) grouping(src string, kind GroupingKind, key string) *BoltDeclarer {
	d.builder.streams = append(d.builder.streams, Stream{
		From:      src,
		To:        d.component.Name,
		Grouping:  kind,
		FieldsKey: key,
	})
	return d
}
