package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Spec is the JSON description of a topology, used by cmd/rstorm-sim so
// topologies can be defined in files:
//
//	{
//	  "name": "wordcount",
//	  "workers": 4,
//	  "maxSpoutPending": 32,
//	  "components": [
//	    {"name": "words", "kind": "spout", "parallelism": 4,
//	     "cpuLoad": 25, "memoryLoadMb": 512,
//	     "profile": {"cpuPerTupleUs": 100, "tupleBytes": 256}},
//	    {"name": "count", "kind": "bolt", "parallelism": 4,
//	     "cpuLoad": 50, "memoryLoadMb": 512,
//	     "inputs": [{"from": "words", "grouping": "fields", "key": "word"}]}
//	  ]
//	}
type Spec struct {
	Name            string          `json:"name"`
	Workers         int             `json:"workers,omitempty"`
	MaxSpoutPending int             `json:"maxSpoutPending,omitempty"`
	Priority        int             `json:"priority,omitempty"`
	Components      []ComponentSpec `json:"components"`
}

// ComponentSpec describes one spout or bolt.
type ComponentSpec struct {
	Name          string       `json:"name"`
	Kind          string       `json:"kind"` // "spout" or "bolt"
	Parallelism   int          `json:"parallelism"`
	CPULoad       float64      `json:"cpuLoad,omitempty"`
	MemoryLoadMB  float64      `json:"memoryLoadMb,omitempty"`
	BandwidthLoad float64      `json:"bandwidthLoad,omitempty"`
	Profile       *ProfileSpec `json:"profile,omitempty"`
	Inputs        []InputSpec  `json:"inputs,omitempty"`
}

// ProfileSpec describes the simulated execution profile.
type ProfileSpec struct {
	CPUPerTupleUs  float64 `json:"cpuPerTupleUs,omitempty"`
	TupleBytes     int     `json:"tupleBytes,omitempty"`
	OutRatio       float64 `json:"outRatio,omitempty"`
	KeyCardinality int     `json:"keyCardinality,omitempty"`
	CPUPoints      float64 `json:"cpuPoints,omitempty"`
	MemMB          float64 `json:"memMb,omitempty"`
	MemGrowTuples  int     `json:"memGrowTuples,omitempty"`
}

// InputSpec describes one subscription of a bolt.
type InputSpec struct {
	From     string `json:"from"`
	Grouping string `json:"grouping"` // shuffle|fields|global|all|localOrShuffle
	Key      string `json:"key,omitempty"`
}

// ParseSpec reads a JSON topology spec.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("parse topology spec: %w", err)
	}
	return &spec, nil
}

// Build assembles the topology the spec describes.
func (s *Spec) Build() (*Topology, error) {
	b := NewBuilder(s.Name)
	b.SetNumWorkers(s.Workers)
	b.SetMaxSpoutPending(s.MaxSpoutPending)
	b.SetPriority(s.Priority)
	for _, cs := range s.Components {
		profile := ExecProfile{}
		if cs.Profile != nil {
			profile = ExecProfile{
				CPUPerTuple:    time.Duration(cs.Profile.CPUPerTupleUs * float64(time.Microsecond)),
				TupleBytes:     cs.Profile.TupleBytes,
				OutRatio:       cs.Profile.OutRatio,
				KeyCardinality: cs.Profile.KeyCardinality,
				CPUPoints:      cs.Profile.CPUPoints,
				MemMB:          cs.Profile.MemMB,
				MemGrowTuples:  cs.Profile.MemGrowTuples,
			}
		}
		switch cs.Kind {
		case "spout":
			if len(cs.Inputs) > 0 {
				return nil, fmt.Errorf("spout %q must not declare inputs", cs.Name)
			}
			b.SetSpout(cs.Name, cs.Parallelism).
				SetCPULoad(cs.CPULoad).
				SetMemoryLoad(cs.MemoryLoadMB).
				SetBandwidthLoad(cs.BandwidthLoad).
				SetProfile(profile)
		case "bolt":
			d := b.SetBolt(cs.Name, cs.Parallelism).
				SetCPULoad(cs.CPULoad).
				SetMemoryLoad(cs.MemoryLoadMB).
				SetBandwidthLoad(cs.BandwidthLoad).
				SetProfile(profile)
			for _, in := range cs.Inputs {
				switch in.Grouping {
				case "", "shuffle":
					d.ShuffleGrouping(in.From)
				case "fields":
					d.FieldsGrouping(in.From, in.Key)
				case "global":
					d.GlobalGrouping(in.From)
				case "all":
					d.AllGrouping(in.From)
				case "localOrShuffle":
					d.LocalOrShuffleGrouping(in.From)
				default:
					return nil, fmt.Errorf("bolt %q: unknown grouping %q", cs.Name, in.Grouping)
				}
			}
		default:
			return nil, fmt.Errorf("component %q: unknown kind %q (want spout or bolt)", cs.Name, cs.Kind)
		}
	}
	return b.Build()
}

// SpecOf converts a built topology back to its JSON spec form, enabling
// round-trips and spec export from code-defined topologies.
func SpecOf(t *Topology) *Spec {
	spec := &Spec{
		Name:            t.Name(),
		Workers:         t.NumWorkers(),
		MaxSpoutPending: t.MaxSpoutPending(),
		Priority:        t.Priority(),
	}
	for _, c := range t.Components() {
		cs := ComponentSpec{
			Name:          c.Name,
			Parallelism:   c.Parallelism,
			CPULoad:       c.CPULoad,
			MemoryLoadMB:  c.MemoryLoad,
			BandwidthLoad: c.BandwidthLoad,
			Profile: &ProfileSpec{
				CPUPerTupleUs:  float64(c.Profile.CPUPerTuple) / float64(time.Microsecond),
				TupleBytes:     c.Profile.TupleBytes,
				OutRatio:       c.Profile.OutRatio,
				KeyCardinality: c.Profile.KeyCardinality,
				CPUPoints:      c.Profile.CPUPoints,
				MemMB:          c.Profile.MemMB,
				MemGrowTuples:  c.Profile.MemGrowTuples,
			},
		}
		switch c.Kind {
		case KindSpout:
			cs.Kind = "spout"
		case KindBolt:
			cs.Kind = "bolt"
		}
		for _, in := range t.Incoming(c.Name) {
			grouping := in.Grouping.String()
			cs.Inputs = append(cs.Inputs, InputSpec{
				From:     in.From,
				Grouping: grouping,
				Key:      in.FieldsKey,
			})
		}
		spec.Components = append(spec.Components, cs)
	}
	return spec
}

// Encode writes the spec as indented JSON.
func (s *Spec) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
