package topology

import "fmt"

// GroupingKind selects how tuples on a stream are partitioned among the
// consuming component's tasks, mirroring Storm's stream groupings.
type GroupingKind int

const (
	// GroupingShuffle distributes tuples round-robin across consumer
	// tasks (Storm's shuffle grouping is randomized; round-robin gives
	// the same balance deterministically).
	GroupingShuffle GroupingKind = iota + 1
	// GroupingFields routes tuples with the same key to the same task.
	GroupingFields
	// GroupingGlobal routes every tuple to the consumer's lowest task.
	GroupingGlobal
	// GroupingAll replicates every tuple to all consumer tasks.
	GroupingAll
	// GroupingLocalOrShuffle prefers a consumer task in the same worker
	// process, falling back to shuffle.
	GroupingLocalOrShuffle
)

// String implements fmt.Stringer.
func (g GroupingKind) String() string {
	switch g {
	case GroupingShuffle:
		return "shuffle"
	case GroupingFields:
		return "fields"
	case GroupingGlobal:
		return "global"
	case GroupingAll:
		return "all"
	case GroupingLocalOrShuffle:
		return "localOrShuffle"
	default:
		return fmt.Sprintf("GroupingKind(%d)", int(g))
	}
}

func (g GroupingKind) valid() bool {
	switch g {
	case GroupingShuffle, GroupingFields, GroupingGlobal, GroupingAll, GroupingLocalOrShuffle:
		return true
	default:
		return false
	}
}

// Stream is a directed edge of the topology DAG: tuples flow From → To.
type Stream struct {
	// From is the producing component's name.
	From string
	// To is the consuming component's name.
	To string
	// Grouping selects the partitioning of tuples among To's tasks.
	Grouping GroupingKind
	// FieldsKey names the key field for GroupingFields (informational;
	// the simulator generates synthetic keys).
	FieldsKey string
}

// String renders the stream as "from -> to (grouping)".
func (s Stream) String() string {
	return fmt.Sprintf("%s -> %s (%s)", s.From, s.To, s.Grouping)
}
