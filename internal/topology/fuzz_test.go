package topology

import (
	"strings"
	"testing"
)

// FuzzParseSpec checks the JSON spec pipeline end to end: any input either
// fails cleanly at parse/build, or produces a valid topology whose BFS
// ordering covers every component.
func FuzzParseSpec(f *testing.F) {
	f.Add(sampleSpec)
	f.Add(`{"name":"x","components":[{"name":"s","kind":"spout","parallelism":1}]}`)
	f.Add(`{"name":"x","components":[]}`)
	f.Add(`{"name":"","components":null}`)
	f.Add(`{"name":"x","components":[{"name":"s","kind":"spout","parallelism":-3}]}`)
	f.Add(`{"name":"x","components":[
	  {"name":"s","kind":"spout","parallelism":1},
	  {"name":"b","kind":"bolt","parallelism":2,"inputs":[{"from":"s","grouping":"all"}]}]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		spec, err := ParseSpec(strings.NewReader(doc))
		if err != nil {
			return
		}
		topo, err := spec.Build()
		if err != nil {
			return
		}
		if topo.TotalTasks() <= 0 {
			t.Fatalf("built topology with %d tasks", topo.TotalTasks())
		}
		order := topo.BFSOrder()
		if len(order) != len(topo.Components()) {
			t.Fatalf("BFS covers %d of %d components", len(order), len(topo.Components()))
		}
		// Round-trip: SpecOf must produce a buildable spec.
		if _, err := SpecOf(topo).Build(); err != nil {
			t.Fatalf("round-trip build: %v", err)
		}
	})
}
