package topology

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// buildLinear builds spout -> b1 -> b2 -> b3 with the given parallelism.
func buildLinear(t *testing.T, par int) *Topology {
	t.Helper()
	b := NewBuilder("linear")
	b.SetSpout("spout", par).SetCPULoad(20).SetMemoryLoad(256)
	b.SetBolt("b1", par).ShuffleGrouping("spout").SetCPULoad(30).SetMemoryLoad(256)
	b.SetBolt("b2", par).ShuffleGrouping("b1").SetCPULoad(30).SetMemoryLoad(256)
	b.SetBolt("b3", par).ShuffleGrouping("b2").SetCPULoad(30).SetMemoryLoad(256)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

// buildDiamond builds spout -> {left, right} -> join.
func buildDiamond(t *testing.T) *Topology {
	t.Helper()
	b := NewBuilder("diamond")
	b.SetSpout("spout", 2)
	b.SetBolt("left", 2).ShuffleGrouping("spout")
	b.SetBolt("right", 2).ShuffleGrouping("spout")
	b.SetBolt("join", 2).ShuffleGrouping("left").ShuffleGrouping("right")
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func TestBuilderHappyPath(t *testing.T) {
	topo := buildLinear(t, 3)
	if topo.Name() != "linear" {
		t.Errorf("Name = %q", topo.Name())
	}
	if got := len(topo.Components()); got != 4 {
		t.Errorf("components = %d, want 4", got)
	}
	if got := topo.TotalTasks(); got != 12 {
		t.Errorf("TotalTasks = %d, want 12", got)
	}
	if got := len(topo.Spouts()); got != 1 {
		t.Errorf("spouts = %d, want 1", got)
	}
	sinks := topo.Sinks()
	if len(sinks) != 1 || sinks[0].Name != "b3" {
		t.Errorf("sinks = %v, want [b3]", sinks)
	}
}

func TestBuilderValidationErrors(t *testing.T) {
	tests := []struct {
		name    string
		build   func() *Builder
		wantSub string
	}{
		{
			name: "duplicate component",
			build: func() *Builder {
				b := NewBuilder("t")
				b.SetSpout("x", 1)
				b.SetBolt("x", 1).ShuffleGrouping("x")
				return b
			},
			wantSub: "declared twice",
		},
		{
			name: "no components",
			build: func() *Builder {
				return NewBuilder("t")
			},
			wantSub: "no components",
		},
		{
			name: "no spouts",
			build: func() *Builder {
				b := NewBuilder("t")
				b.SetBolt("a", 1).ShuffleGrouping("a")
				return b
			},
			wantSub: "self-loop",
		},
		{
			name: "bolt without inputs",
			build: func() *Builder {
				b := NewBuilder("t")
				b.SetSpout("s", 1)
				b.SetBolt("b", 1)
				return b
			},
			wantSub: "no incoming streams",
		},
		{
			name: "spout with inputs",
			build: func() *Builder {
				b := NewBuilder("t")
				b.SetSpout("s", 1)
				b.SetBolt("b", 1).ShuffleGrouping("s")
				b.streams = append(b.streams, Stream{From: "b", To: "s", Grouping: GroupingShuffle})
				return b
			},
			wantSub: "has incoming streams",
		},
		{
			name: "unknown stream source",
			build: func() *Builder {
				b := NewBuilder("t")
				b.SetSpout("s", 1)
				b.SetBolt("b", 1).ShuffleGrouping("ghost")
				return b
			},
			wantSub: "does not exist",
		},
		{
			name: "zero parallelism",
			build: func() *Builder {
				b := NewBuilder("t")
				b.SetSpout("s", 0)
				return b
			},
			wantSub: "parallelism",
		},
		{
			name: "negative cpu load",
			build: func() *Builder {
				b := NewBuilder("t")
				b.SetSpout("s", 1).SetCPULoad(-5)
				return b
			},
			wantSub: "negative",
		},
		{
			name: "unreachable bolt island",
			build: func() *Builder {
				b := NewBuilder("t")
				b.SetSpout("s", 1)
				b.SetBolt("a", 1).ShuffleGrouping("s")
				b.SetBolt("x", 1).ShuffleGrouping("y")
				b.SetBolt("y", 1).ShuffleGrouping("x")
				return b
			},
			wantSub: "unreachable",
		},
		{
			name: "empty topology name",
			build: func() *Builder {
				b := NewBuilder("")
				b.SetSpout("s", 1)
				return b
			},
			wantSub: "name is empty",
		},
		{
			name: "negative workers",
			build: func() *Builder {
				b := NewBuilder("t").SetNumWorkers(-1)
				b.SetSpout("s", 1)
				return b
			},
			wantSub: "negative",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.build().Build()
			if err == nil {
				t.Fatal("Build succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestBFSOrderLinear(t *testing.T) {
	topo := buildLinear(t, 2)
	got := topo.BFSOrder()
	want := []string{"spout", "b1", "b2", "b3"}
	if len(got) != len(want) {
		t.Fatalf("BFSOrder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BFSOrder = %v, want %v", got, want)
		}
	}
}

func TestBFSOrderDiamond(t *testing.T) {
	topo := buildDiamond(t)
	got := topo.BFSOrder()
	want := []string{"spout", "left", "right", "join"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BFSOrder = %v, want %v", got, want)
		}
	}
}

func TestBFSOrderMultipleSpouts(t *testing.T) {
	b := NewBuilder("star")
	b.SetSpout("s1", 1)
	b.SetSpout("s2", 1)
	b.SetBolt("hub", 2).ShuffleGrouping("s1").ShuffleGrouping("s2")
	b.SetBolt("out1", 1).ShuffleGrouping("hub")
	b.SetBolt("out2", 1).ShuffleGrouping("hub")
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	got := topo.BFSOrder()
	want := []string{"s1", "s2", "hub", "out1", "out2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BFSOrder = %v, want %v", got, want)
		}
	}
}

func TestBFSOrderWithCycle(t *testing.T) {
	// Cyclic topologies are allowed (§7: R-Storm is not limited to
	// acyclic topologies); BFS must terminate and cover every component.
	b := NewBuilder("cyclic")
	b.SetSpout("s", 1)
	b.SetBolt("a", 1).ShuffleGrouping("s").ShuffleGrouping("b")
	b.SetBolt("b", 1).ShuffleGrouping("a")
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	got := topo.BFSOrder()
	if len(got) != 3 {
		t.Fatalf("BFSOrder = %v, want all 3 components", got)
	}
	seen := map[string]bool{}
	for _, n := range got {
		if seen[n] {
			t.Fatalf("BFSOrder repeats %q: %v", n, got)
		}
		seen[n] = true
	}
}

func TestTaskDerivation(t *testing.T) {
	topo := buildLinear(t, 3)
	tasks := topo.Tasks()
	if len(tasks) != 12 {
		t.Fatalf("tasks = %d, want 12", len(tasks))
	}
	// IDs dense and ordered.
	for i, task := range tasks {
		if task.ID != i {
			t.Errorf("task %d has ID %d", i, task.ID)
		}
	}
	spoutTasks := topo.TasksOf("spout")
	if len(spoutTasks) != 3 {
		t.Fatalf("spout tasks = %d", len(spoutTasks))
	}
	for i, task := range spoutTasks {
		if task.Index != i || task.Component != "spout" {
			t.Errorf("spout task %d = %+v", i, task)
		}
	}
	if topo.TasksOf("nope") != nil && len(topo.TasksOf("nope")) != 0 {
		t.Error("unknown component should have no tasks")
	}
}

func TestTaskDemandAndTotals(t *testing.T) {
	topo := buildLinear(t, 2)
	spoutTask := topo.TasksOf("spout")[0]
	d := topo.TaskDemand(spoutTask)
	if d.CPU != 20 || d.MemoryMB != 256 {
		t.Errorf("spout demand = %v", d)
	}
	total := topo.TotalDemand()
	// 2 spout tasks * 20 + 6 bolt tasks * 30 = 220 CPU.
	if total.CPU != 220 {
		t.Errorf("total CPU = %v, want 220", total.CPU)
	}
	if total.MemoryMB != 8*256 {
		t.Errorf("total mem = %v, want %v", total.MemoryMB, 8*256)
	}
	if got := topo.TaskDemand(Task{Component: "ghost"}); !got.IsZero() {
		t.Errorf("unknown component demand = %v, want zero", got)
	}
}

func TestProfileDefaults(t *testing.T) {
	b := NewBuilder("t")
	b.SetSpout("s", 1)
	b.SetBolt("b", 1).ShuffleGrouping("s")
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p := topo.Component("b").Profile
	if p.CPUPerTuple <= 0 || p.TupleBytes <= 0 || p.OutRatio != 1 || p.KeyCardinality <= 0 {
		t.Errorf("defaults not applied: %+v", p)
	}
}

func TestProfileExplicitValuesKept(t *testing.T) {
	b := NewBuilder("t")
	b.SetSpout("s", 1).SetProfile(ExecProfile{
		CPUPerTuple:    2 * time.Millisecond,
		TupleBytes:     4096,
		OutRatio:       0.5,
		KeyCardinality: 7,
	})
	b.SetBolt("b", 1).ShuffleGrouping("s")
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p := topo.Component("s").Profile
	if p.CPUPerTuple != 2*time.Millisecond || p.TupleBytes != 4096 || p.OutRatio != 0.5 || p.KeyCardinality != 7 {
		t.Errorf("explicit profile mutated: %+v", p)
	}
}

func TestBuilderIsolationAfterBuild(t *testing.T) {
	b := NewBuilder("t")
	sd := b.SetSpout("s", 1)
	b.SetBolt("b", 1).ShuffleGrouping("s")
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sd.SetCPULoad(999) // mutating the builder must not affect the built topology
	if got := topo.Component("s").CPULoad; got != 0 {
		t.Errorf("built topology aliased builder state: CPULoad = %v", got)
	}
}

func TestStreamAccessorsCopy(t *testing.T) {
	topo := buildDiamond(t)
	out := topo.Outgoing("spout")
	if len(out) != 2 {
		t.Fatalf("Outgoing(spout) = %v", out)
	}
	out[0] = Stream{} // mutating the returned slice must not corrupt the topology
	if topo.Outgoing("spout")[0].To == "" {
		t.Error("Outgoing returned aliased internal slice")
	}
	in := topo.Incoming("join")
	if len(in) != 2 {
		t.Fatalf("Incoming(join) = %v", in)
	}
}

func TestGroupingKinds(t *testing.T) {
	b := NewBuilder("t")
	b.SetSpout("s", 2)
	b.SetBolt("a", 2).FieldsGrouping("s", "k")
	b.SetBolt("g", 1).GlobalGrouping("a")
	b.SetBolt("all", 2).AllGrouping("g")
	b.SetBolt("l", 2).LocalOrShuffleGrouping("all")
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	wantKinds := map[string]GroupingKind{
		"a":   GroupingFields,
		"g":   GroupingGlobal,
		"all": GroupingAll,
		"l":   GroupingLocalOrShuffle,
	}
	for comp, want := range wantKinds {
		in := topo.Incoming(comp)
		if len(in) != 1 || in[0].Grouping != want {
			t.Errorf("%s incoming = %v, want grouping %v", comp, in, want)
		}
	}
	if topo.Incoming("a")[0].FieldsKey != "k" {
		t.Error("fields key lost")
	}
}

func TestQuickBFSCoversAllComponentsOnce(t *testing.T) {
	// Property: for random linear-ish chains of length n with random
	// parallelism, BFSOrder returns each component exactly once.
	f := func(nRaw uint8, parRaw uint8) bool {
		n := int(nRaw%8) + 1
		par := int(parRaw%4) + 1
		b := NewBuilder("chain")
		b.SetSpout("c0", par)
		for i := 1; i <= n; i++ {
			b.SetBolt(nameOf(i), par).ShuffleGrouping(nameOf(i - 1))
		}
		topo, err := b.Build()
		if err != nil {
			return false
		}
		order := topo.BFSOrder()
		if len(order) != n+1 {
			return false
		}
		seen := make(map[string]bool, len(order))
		for _, c := range order {
			if seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func nameOf(i int) string {
	if i == 0 {
		return "c0"
	}
	return "c" + string(rune('0'+i))
}

func TestKindAndStreamStrings(t *testing.T) {
	if KindSpout.String() != "spout" || KindBolt.String() != "bolt" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should render")
	}
	s := Stream{From: "a", To: "b", Grouping: GroupingShuffle}
	if s.String() != "a -> b (shuffle)" {
		t.Errorf("stream string = %q", s.String())
	}
	if GroupingKind(42).String() == "" {
		t.Error("unknown grouping should render")
	}
	task := Task{ID: 3, Component: "b1", Index: 1}
	if task.String() != "b1[1]#3" {
		t.Errorf("task string = %q", task.String())
	}
}

func TestAdjacentPairs(t *testing.T) {
	topo := buildDiamond(t)
	pairs := topo.AdjacentPairs()
	if len(pairs) != 4 {
		t.Fatalf("pairs = %v", pairs)
	}
	want := [][2]string{{"spout", "left"}, {"spout", "right"}, {"left", "join"}, {"right", "join"}}
	for i := range want {
		if pairs[i] != want[i] {
			t.Errorf("pair %d = %v, want %v", i, pairs[i], want[i])
		}
	}
}
