package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"rstorm/internal/core"
	"rstorm/internal/topology"
)

// shortOpts keeps experiment tests fast: short simulated time, small
// windows.
func shortOpts() Options {
	return Options{
		Duration:      6 * time.Second,
		MetricsWindow: 2 * time.Second,
		Seed:          1,
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	all := All()
	wantIDs := []string{
		"fig8a", "fig8b", "fig8c",
		"fig9a", "fig9b", "fig9c",
		"fig10", "fig12a", "fig12b", "fig13",
		"ablationA", "ablationB", "ablationC",
		"elasticity", "memstress", "consolidate", "multitenant",
		"failover", "observability",
	}
	if len(all) != len(wantIDs) {
		t.Fatalf("experiments = %d, want %d", len(all), len(wantIDs))
	}
	for i, id := range wantIDs {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].PaperClaim == "" || all[i].Run == nil {
			t.Errorf("experiment %s incomplete", id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig8a"); !ok {
		t.Error("fig8a missing")
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("fig99 should not exist")
	}
}

// TestByIDDoesNotRebuildRegistry pins the registry fix: a ByID lookup
// must be an indexed read, not a reconstruction of the whole catalogue
// (which allocated the All() slice plus every Experiment on every call).
// A map hit and a map miss both allocate nothing.
func TestByIDDoesNotRebuildRegistry(t *testing.T) {
	ensureRegistry()
	for _, id := range []string{"fig8a", "observability", "no-such-experiment"} {
		if allocs := testing.AllocsPerRun(100, func() { ByID(id) }); allocs != 0 {
			t.Errorf("ByID(%q) allocates %.0f objects per lookup, want 0 (registry rebuilt?)", id, allocs)
		}
	}
}

// TestAllReturnsACopy: callers may sort or truncate the slice All hands
// out without corrupting the registry's paper ordering.
func TestAllReturnsACopy(t *testing.T) {
	a := All()
	a[0], a[1] = a[1], a[0]
	b := All()
	if b[0].ID != "fig8a" || b[1].ID != "fig8b" {
		t.Errorf("mutating All()'s result leaked into the registry: got %s, %s", b[0].ID, b[1].ID)
	}
}

func TestFig9aShortRun(t *testing.T) {
	// Compute-bound experiments are cheap enough to smoke-test: the
	// headline property (equal throughput, half the nodes) must hold
	// even on a short run.
	e, _ := ByID("fig9a")
	report, err := e.Run(shortOpts())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(report.Rows) < 3 {
		t.Fatalf("rows = %v", report.Rows)
	}
	thr := report.Rows[0]
	if thr.Baseline <= 0 || thr.RStorm <= 0 {
		t.Fatalf("no throughput: %+v", thr)
	}
	if ratio := thr.RStorm / thr.Baseline; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("fig9a throughput ratio = %v, want ~1.0", ratio)
	}
	nodes := report.Rows[1]
	if nodes.Baseline != 12 || nodes.RStorm != 6 {
		t.Errorf("fig9a nodes = %v vs %v, want 12 vs 6", nodes.Baseline, nodes.RStorm)
	}
	util := report.Rows[2]
	if util.RStorm <= util.Baseline {
		t.Errorf("fig9a utilization not better: %v vs %v", util.Baseline, util.RStorm)
	}
}

func TestFig9cShortRun(t *testing.T) {
	e, _ := ByID("fig9c")
	report, err := e.Run(shortOpts())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	thr := report.Rows[0]
	if thr.RStorm <= thr.Baseline {
		t.Errorf("fig9c: R-Storm %v not above default %v", thr.RStorm, thr.Baseline)
	}
}

func TestAblationBShortRun(t *testing.T) {
	e, _ := ByID("ablationB")
	report, err := e.Run(shortOpts())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cost := report.Rows[0]
	// Exact (baseline column) must be <= greedy (rstorm column).
	if cost.Baseline > cost.RStorm+1e-9 {
		t.Errorf("exact cost %v exceeds greedy %v", cost.Baseline, cost.RStorm)
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{
		ID:         "figX",
		Title:      "test figure",
		PaperClaim: "something improves",
		Window:     10 * time.Second,
		Rows: []Row{
			{Label: "throughput", Baseline: 100, RStorm: 150, ImprovementPct: 50},
			{Label: "weird", Baseline: 0, RStorm: 1, ImprovementPct: math.Inf(1)},
		},
		Series: map[string][]float64{
			"default": {100, 100},
			"r-storm": {150, 150},
		},
	}
	out := r.Render()
	for _, want := range []string{"figX", "test figure", "something improves", "throughput", "+50.0%", "default", "r-storm"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestReportRenderNoSeries(t *testing.T) {
	r := &Report{ID: "x", Title: "t", PaperClaim: "c", Rows: []Row{{Label: "l"}}}
	out := r.Render()
	if strings.Contains(out, "throughput per") {
		t.Error("chart rendered without series")
	}
}

func TestSimulateHelperSurfacesSchedulingErrors(t *testing.T) {
	c, err := emulab12()
	if err != nil {
		t.Fatal(err)
	}
	b := topology.NewBuilder("impossible")
	b.SetSpout("s", 1).SetMemoryLoad(1 << 20) // 1 TB: no node can host it
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = simulate(c, []*topology.Topology{topo},
		core.NewResourceAwareScheduler(), microCfg(shortOpts()))
	if err == nil || !strings.Contains(err.Error(), "insufficient resources") {
		t.Fatalf("err = %v, want insufficient resources", err)
	}
}
