package experiments

import (
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
	"rstorm/internal/workloads"
)

// TestCalibrationFig13 is a manual calibration aid for the multi-topology
// experiment, enabled with RSTORM_CALIBRATE=1.
func TestCalibrationFig13(t *testing.T) {
	if os.Getenv("RSTORM_CALIBRATE") == "" {
		t.Skip("set RSTORM_CALIBRATE=1 to run")
	}
	c, err := cluster.Emulab24()
	if err != nil {
		t.Fatal(err)
	}
	cfg := simulator.Config{
		Duration:        20 * time.Second,
		MetricsWindow:   5 * time.Second,
		Seed:            1,
		MaxSpoutPending: 4096,
		TupleTimeout:    2 * time.Second,
	}
	for _, sched := range []core.Scheduler{core.EvenScheduler{}, core.NewResourceAwareScheduler()} {
		pl, err := workloads.PageLoadTopology()
		if err != nil {
			t.Fatal(err)
		}
		pr, err := workloads.ProcessingTopology()
		if err != nil {
			t.Fatal(err)
		}
		out, err := simulate(c, []*topology.Topology{pl, pr}, sched, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("\n==== scheduler %s\n", sched.Name())
		for _, name := range []string{"pageload", "processing"} {
			tr := out.result.Topology(name)
			fmt.Printf("  %s: thr=%.0f emitted=%d delivered=%d expired=%d latency=%v nodes=%d\n",
				name, tr.MeanSinkThroughput, tr.TuplesEmitted, tr.TuplesDelivered,
				tr.TuplesExpired, tr.MeanLatency, tr.NodesUsed)
			fmt.Printf("    assignment: %s\n", out.assignments[name])
		}
		var ids []string
		for id := range out.result.NodeUtilization {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		for _, id := range ids {
			u := out.result.NodeUtilization[cluster.NodeID(id)]
			if u > 0.9 {
				fmt.Printf("    hot node %s util=%.2f\n", id, u)
			}
		}
	}
}
