package experiments

import (
	"fmt"
	"time"

	"rstorm/internal/adaptive"
	"rstorm/internal/core"
	"rstorm/internal/metrics"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
	"rstorm/internal/workloads"
)

// consolidateWindow is the control-loop granularity of the consolidation
// experiment: fine enough that the cold-topology (imbalance) trigger's
// hysteresis clears early in the run.
const consolidateWindow = 500 * time.Millisecond

// Consolidate regenerates the traffic-aware consolidation figure
// (DESIGN.md §5): the ChattyChain workload with CPU demands declared an
// order of magnitude too high, run two ways — static R-Storm (trusting
// the lie, it spreads the chain one task per node, so every hot edge
// crosses the wire and throughput is NIC-bound) and the adaptive loop
// with the measured-traffic network-cost objective (the cold-topology
// imbalance trigger fires, and the incremental pass co-locates the chatty
// edges, cutting the inter-node tuple fraction and recovering the
// latency/throughput the wire was eating).
func Consolidate() Experiment {
	return Experiment{
		ID:    "consolidate",
		Title: "Traffic-aware consolidation of a cold, spread-out chain",
		PaperClaim: "(beyond the paper: measured edge rates drive a network-cost " +
			"objective — consolidation cuts the inter-node tuple fraction and " +
			"recovers the throughput the wire was eating)",
		Run: runConsolidate,
	}
}

func runConsolidate(o Options) (*Report, error) {
	o = o.withDefaults()
	c, err := emulab12()
	if err != nil {
		return nil, err
	}
	cfg := simulator.Config{
		Duration:      o.Duration,
		MetricsWindow: consolidateWindow,
		Seed:          o.Seed,
		Shards:        o.Shards,
	}
	loopCfg := adaptive.LoopConfig{
		Controller: adaptive.ControllerConfig{TrafficObjective: true},
	}

	lyingStatic, err := workloads.ChattyChain(false)
	if err != nil {
		return nil, err
	}
	static, err := simulate(c, []*topology.Topology{lyingStatic}, core.NewResourceAwareScheduler(), cfg)
	if err != nil {
		return nil, fmt.Errorf("consolidate static: %w", err)
	}

	lyingAdaptive, err := workloads.ChattyChain(false)
	if err != nil {
		return nil, err
	}
	adaptiveOut, err := simulateAdaptive(c, lyingAdaptive, cfg, loopCfg)
	if err != nil {
		return nil, fmt.Errorf("consolidate adaptive: %w", err)
	}

	name := lyingStatic.Name()
	staticTR := static.result.Topology(name)
	adaptiveTR := adaptiveOut.Result.Topology(name)
	staticSteady := steadyMean(staticTR.SinkSeries)
	adaptiveSteady := steadyMean(adaptiveTR.SinkSeries)

	unit := fmt.Sprintf("steady-state throughput (tuples/%s)", consolidateWindow)
	return &Report{
		ID:    "consolidate",
		Title: "Traffic-aware consolidation of a cold, spread-out chain",
		PaperClaim: "static spreads the hot edges across the wire; the traffic " +
			"objective co-locates them, cutting the inter-node tuple fraction",
		Window: consolidateWindow,
		Series: map[string][]float64{
			"static (spread)":        staticTR.SinkSeries,
			"adaptive (consolidate)": adaptiveTR.SinkSeries,
		},
		Rows: []Row{
			{
				// Baseline = static spread placement, RStorm = adaptive.
				Label:          unit + ": static vs adaptive",
				Baseline:       staticSteady,
				RStorm:         adaptiveSteady,
				ImprovementPct: metrics.ImprovementPct(staticSteady, adaptiveSteady),
			},
			{
				// Lower is better: the consolidation headline.
				Label:          "inter-node tuple fraction (%)",
				Baseline:       staticTR.InterNodeFraction() * 100,
				RStorm:         adaptiveTR.InterNodeFraction() * 100,
				ImprovementPct: metrics.ImprovementPct(adaptiveTR.InterNodeFraction(), staticTR.InterNodeFraction()),
			},
			{
				Label:          "mean spout-to-sink latency (ms)",
				Baseline:       float64(staticTR.MeanLatency) / float64(time.Millisecond),
				RStorm:         float64(adaptiveTR.MeanLatency) / float64(time.Millisecond),
				ImprovementPct: metrics.ImprovementPct(float64(adaptiveTR.MeanLatency), float64(staticTR.MeanLatency)),
			},
			{
				// Baseline = tasks a full teardown restarts; RStorm = the
				// incremental loop's total migrations.
				Label:    "tasks migrated: full reschedule vs incremental",
				Baseline: float64(lyingStatic.TotalTasks()),
				RStorm:   float64(adaptiveOut.TotalMoves()),
			},
			{
				Label:    "rebalance rounds until convergence",
				Baseline: 0,
				RStorm:   float64(len(adaptiveOut.Events)),
			},
		},
	}, nil
}
