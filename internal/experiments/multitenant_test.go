package experiments

import (
	"testing"
	"time"
)

func multitenantOpts() Options {
	return Options{
		Duration: 12 * time.Second,
		Seed:     1,
	}
}

// TestMultiTenantAcceptance is the acceptance regression for the
// multi-tenant control plane: under FIFO admission the production tenant
// starves on the loaded cluster; under priority-aware admission the
// eviction planner frees capacity, the tenant recovers at least 90% of
// its dedicated-cluster oracle, and a victim is readmitted in full once
// capacity recovers.
func TestMultiTenantAcceptance(t *testing.T) {
	e, ok := ByID("multitenant")
	if !ok {
		t.Fatal("multitenant experiment not registered")
	}
	report, err := e.Run(multitenantOpts())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(report.Rows) < 5 {
		t.Fatalf("rows = %+v", report.Rows)
	}
	fifoVsPrio := report.Rows[0]
	if fifoVsPrio.Baseline != 0 {
		t.Errorf("FIFO admission should starve prod entirely, got %v tuples/window", fifoVsPrio.Baseline)
	}
	if fifoVsPrio.RStorm <= 0 {
		t.Fatalf("priority arm produced nothing: %v", fifoVsPrio.RStorm)
	}
	recovery := report.Rows[1]
	if recovery.Baseline <= 0 {
		t.Fatalf("oracle produced nothing: %v", recovery.Baseline)
	}
	if ratio := recovery.RStorm / recovery.Baseline; ratio < 0.9 {
		t.Errorf("priority recovered only %.1f%% of the dedicated oracle (%v vs %v), want >= 90%%",
			ratio*100, recovery.RStorm, recovery.Baseline)
	}
	if evs := report.Rows[2]; evs.RStorm == 0 {
		t.Error("priority arm applied no evictions")
	} else if evs.Baseline != 0 {
		t.Errorf("FIFO arm evicted %v tenants; equal priorities must never evict", evs.Baseline)
	}
	if re := report.Rows[3]; re.RStorm == 0 {
		t.Error("no victim was readmitted after capacity recovery")
	}
	// The FIFO arm's batch tier keeps the capacity the priority arm
	// confiscates: its aggregate throughput must be at least as high.
	if batch := report.Rows[4]; batch.RStorm > batch.Baseline {
		t.Errorf("batch tier did better under eviction (%v) than under FIFO (%v)?",
			batch.RStorm, batch.Baseline)
	}
	// The starvation timeline: prod's FIFO series is flat zero, and the
	// priority series is zero only before the burst.
	fifoSeries := report.Series["prod fifo (starved)"]
	for i, v := range fifoSeries {
		if v != 0 {
			t.Errorf("FIFO prod delivered %v tuples in window %d", v, i)
			break
		}
	}
	prioSeries := report.Series["prod priority (evicting)"]
	var post float64
	for _, v := range prioSeries[len(prioSeries)/2:] {
		post += v
	}
	if post <= 0 {
		t.Errorf("priority prod never flowed: %v", prioSeries)
	}
}
