package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// goldenOpts are the short options the golden-diff harness runs every
// experiment under. Experiments with intrinsic timelines (memstress) or
// their own control windows (elasticity, consolidate) take what they need
// from these and override the rest — the harness only cares that the same
// options go in twice.
func goldenOpts() Options {
	return Options{
		Duration:      6 * time.Second,
		MetricsWindow: 2 * time.Second,
		Seed:          1,
	}
}

// TestGoldenDiffAllExperiments is the repository's determinism harness:
// every registered experiment — adaptive control decisions, OOM kills,
// migrations and all — must produce byte-identical reports when run twice
// with the same options, under both kernels. The legacy kernel
// (Shards = 0) is checked run-to-run; the sharded kernel is additionally
// checked across worker counts {1, 2, NumCPU}, which must all agree —
// Shards >= 1 is pure parallelism, never a result knob (DESIGN.md §11).
// It subsumes the per-experiment ad-hoc determinism checks; a new
// experiment is covered the moment it is registered in All().
func TestGoldenDiffAllExperiments(t *testing.T) {
	compare := func(t *testing.T, label string, want, got *Report) {
		t.Helper()
		// Structural equality first (catches NaN-free numeric drift in
		// fields a rendering might round away) …
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: reports diverged structurally:\nwant: %+v\ngot:  %+v", label, want, got)
		}
		// … then the rendered bytes, which is what the acceptance
		// criterion is stated in.
		if a, b := want.Render(), got.Render(); a != b {
			t.Errorf("%s: rendered reports differ:\n--- want ---\n%s\n--- got ---\n%s", label, a, b)
		}
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			first, err := e.Run(goldenOpts())
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			second, err := e.Run(goldenOpts())
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			compare(t, "legacy run-to-run", first, second)

			shardedOpts := goldenOpts()
			shardedOpts.Shards = 1
			sharded, err := e.Run(shardedOpts)
			if err != nil {
				t.Fatalf("sharded run (shards=1): %v", err)
			}
			for _, shards := range []int{2, runtime.NumCPU()} {
				opts := goldenOpts()
				opts.Shards = shards
				got, err := e.Run(opts)
				if err != nil {
					t.Fatalf("sharded run (shards=%d): %v", shards, err)
				}
				compare(t, fmt.Sprintf("shards=%d vs shards=1", shards), sharded, got)
			}
		})
	}
}
