package experiments

import (
	"reflect"
	"testing"
	"time"
)

// goldenOpts are the short options the golden-diff harness runs every
// experiment under. Experiments with intrinsic timelines (memstress) or
// their own control windows (elasticity, consolidate) take what they need
// from these and override the rest — the harness only cares that the same
// options go in twice.
func goldenOpts() Options {
	return Options{
		Duration:      6 * time.Second,
		MetricsWindow: 2 * time.Second,
		Seed:          1,
	}
}

// TestGoldenDiffAllExperiments is the repository's determinism harness:
// every registered experiment — adaptive control decisions, OOM kills,
// migrations and all — must produce byte-identical reports when run twice
// with the same options. It subsumes the per-experiment ad-hoc
// determinism checks; a new experiment is covered the moment it is
// registered in All().
func TestGoldenDiffAllExperiments(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			first, err := e.Run(goldenOpts())
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			second, err := e.Run(goldenOpts())
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			// Structural equality first (catches NaN-free numeric drift in
			// fields a rendering might round away) …
			if !reflect.DeepEqual(first, second) {
				t.Errorf("reports diverged structurally:\nfirst:  %+v\nsecond: %+v", first, second)
			}
			// … then the rendered bytes, which is what the acceptance
			// criterion is stated in.
			if a, b := first.Render(), second.Render(); a != b {
				t.Errorf("rendered reports differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
			}
		})
	}
}
