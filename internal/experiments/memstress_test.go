package experiments

import (
	"testing"
	"time"
)

func memStressOpts() Options {
	return Options{
		Duration:      12 * time.Second, // ignored: the scenario fixes its own timeline
		MetricsWindow: 2 * time.Second,  // likewise
		Seed:          1,
	}
}

// TestMemoryStressClosesTheLoop is the acceptance regression for the
// runtime memory model: with a mis-declared, runtime-growing memory
// footprint under OOM enforcement, the static schedule must OOM-thrash
// (kills, collapsed throughput) while the adaptive loop must migrate off
// the filling node, take zero OOM kills, and recover at least 90% of the
// honestly-declared oracle's steady-state throughput.
func TestMemoryStressClosesTheLoop(t *testing.T) {
	e, ok := ByID("memstress")
	if !ok {
		t.Fatal("memstress experiment not registered")
	}
	report, err := e.Run(memStressOpts())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(report.Rows) < 6 {
		t.Fatalf("rows = %+v", report.Rows)
	}
	recovery := report.Rows[1] // oracle (baseline) vs adaptive
	if recovery.Baseline <= 0 {
		t.Fatalf("oracle throughput = %v", recovery.Baseline)
	}
	if ratio := recovery.RStorm / recovery.Baseline; ratio < 0.9 {
		t.Errorf("adaptive recovered only %.1f%% of the oracle (%v vs %v)",
			ratio*100, recovery.RStorm, recovery.Baseline)
	}
	gap := report.Rows[2] // oracle (baseline) vs static
	if ratio := gap.RStorm / gap.Baseline; ratio >= 0.9 {
		t.Errorf("static unexpectedly recovered %.1f%% of the oracle; "+
			"the OOM thrash should hurt it", ratio*100)
	}
	kills := report.Rows[3] // static kills (baseline) vs adaptive kills
	if kills.Baseline <= 0 {
		t.Errorf("static took %v OOM kills, want > 0 (no thrash happened)", kills.Baseline)
	}
	if kills.RStorm != 0 {
		t.Errorf("adaptive took %v OOM kills, want 0 (it should migrate first)", kills.RStorm)
	}
	moves := report.Rows[4]
	if moves.RStorm <= 0 {
		t.Error("adaptive migrated nothing; recovery without migration is not this scenario")
	}
	for _, key := range []string{"oracle (honest decl)", "static (mis-decl)", "adaptive (mis-decl)"} {
		if len(report.Series[key]) == 0 {
			t.Errorf("series %q missing", key)
		}
	}
}

// Determinism of the whole three-run experiment is covered by the
// golden-diff harness (TestGoldenDiffAllExperiments).
