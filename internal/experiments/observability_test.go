package experiments

import (
	"strings"
	"testing"
	"time"
)

func obsOpts() Options {
	return Options{Duration: 6 * time.Second, Seed: 1, Percentiles: true}
}

// TestObservabilityZeroPerturbation: the bare and instrumented runs of
// the chaos scenario agree exactly on every shared quantity — turning
// the observability layer on does not change what it observes.
func TestObservabilityZeroPerturbation(t *testing.T) {
	report, err := runObservability(obsOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range report.Rows[:3] { // throughput, delivered, mean latency
		if row.Baseline != row.RStorm {
			t.Errorf("%s: bare %v != instrumented %v", row.Label, row.Baseline, row.RStorm)
		}
	}
	bare, full := report.Series["bare"], report.Series["instrumented"]
	if len(bare) == 0 || len(bare) != len(full) {
		t.Fatalf("series lengths: bare %d, instrumented %d", len(bare), len(full))
	}
	for i := range bare {
		if bare[i] != full[i] {
			t.Fatalf("sink series diverge at window %d: %v vs %v", i, bare[i], full[i])
		}
	}
}

// TestObservabilityDeterminism: same seed and sample rate ⇒ the span
// trees and journal are byte-identical across two independent runs. The
// registered experiment's digest rows fold the same property into
// TestGoldenDiffAllExperiments; this is the direct byte-level check.
func TestObservabilityDeterminism(t *testing.T) {
	capture := func() *observedOutcome {
		t.Helper()
		out, err := runObservedChaos(obsOpts(), true)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := capture()
	second := capture()
	if first.spans == 0 || first.trees == 0 || first.journaled == 0 {
		t.Fatalf("instrumented run captured nothing: %+v", first)
	}
	if first.spans != second.spans || first.trees != second.trees ||
		first.journaled != second.journaled {
		t.Errorf("capture counts diverged: %+v vs %+v", first, second)
	}
	if first.jsonlDigest != second.jsonlDigest {
		t.Error("journal JSONL bytes diverged across identical runs")
	}
	if first.treeDigest != second.treeDigest {
		t.Error("rendered span trees diverged across identical runs")
	}
}

// TestFailoverPercentilesRows: with Percentiles on, the failover report
// gains the p99 rows and they show the spike-and-recover shape; with it
// off the report is unchanged (no latency rows at all).
func TestFailoverPercentilesRows(t *testing.T) {
	// The full default duration: the recovery assertion needs enough
	// post-repair windows for the tail to drain back down.
	o := Options{Duration: 30 * time.Second, Seed: 1}
	plain, err := runFailover(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range plain.Rows {
		if strings.Contains(row.Label, "p99") {
			t.Errorf("p99 row %q present without Percentiles", row.Label)
		}
	}
	o.Percentiles = true
	withP, err := runFailover(o)
	if err != nil {
		t.Fatal(err)
	}
	var pre, spike, final Row
	found := 0
	for _, row := range withP.Rows {
		switch {
		case strings.Contains(row.Label, "pre-crash max"):
			pre = row
			found++
		case strings.Contains(row.Label, "post-crash spike"):
			spike = row
			found++
		case strings.Contains(row.Label, "final window"):
			final = row
			found++
		case strings.Contains(row.Label, "p99"):
			found++
		}
	}
	if found != 4 {
		t.Fatalf("p99 rows = %d, want 4", found)
	}
	// The spike: the failover run's tail rises above its pre-crash
	// equilibrium as the chain re-equilibrates on surviving capacity.
	if spike.RStorm <= pre.RStorm {
		t.Errorf("adaptive p99 spike %v not above pre-crash %v", spike.RStorm, pre.RStorm)
	}
	// The recovery: the failover run still serves traffic at a bounded
	// tail in the final window, while the starved static run has no
	// latency to measure at all.
	if final.RStorm <= 0 {
		t.Errorf("adaptive final-window p99 = %v, want > 0 (traffic flowing)", final.RStorm)
	}
	if final.Baseline != 0 {
		t.Errorf("static final-window p99 = %v, want 0 (starved)", final.Baseline)
	}
	if final.RStorm > spike.RStorm {
		t.Errorf("final p99 %v exceeds the spike %v: tail unbounded", final.RStorm, spike.RStorm)
	}
	// The non-percentile rows are identical to the plain run: histograms
	// observe without perturbing.
	if len(withP.Rows) != len(plain.Rows)+4 {
		t.Fatalf("rows = %d, want %d", len(withP.Rows), len(plain.Rows)+4)
	}
	for i, row := range plain.Rows {
		if row != withP.Rows[i] {
			t.Errorf("row %d changed under Percentiles: %+v vs %+v", i, row, withP.Rows[i])
		}
	}
}
