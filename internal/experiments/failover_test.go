package experiments

import (
	"testing"
	"time"
)

func failoverOpts() Options {
	return Options{
		Duration:      15 * time.Second,
		MetricsWindow: 2 * time.Second, // ignored: the experiment uses its own window
		Seed:          1,
	}
}

// TestFailoverSelfHeals is the acceptance regression for the self-healing
// subsystem: after the scripted crash, the static schedule must stay
// degraded for the rest of the run (its crash-killed tasks never restart),
// while the adaptive failover trigger must recover at least 90% of the
// run's own pre-crash throughput, with a measured (non-sentinel)
// time-to-recover. Replay is on for both runs, so the adaptive run's
// recovery includes at-least-once re-emissions.
func TestFailoverSelfHeals(t *testing.T) {
	e, ok := ByID("failover")
	if !ok {
		t.Fatal("failover experiment not registered")
	}
	report, err := e.Run(failoverOpts())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(report.Rows) < 7 {
		t.Fatalf("rows = %+v", report.Rows)
	}

	headline := report.Rows[0] // static steady (baseline) vs adaptive steady
	if headline.RStorm <= headline.Baseline {
		t.Errorf("adaptive post-crash throughput %v not above static %v",
			headline.RStorm, headline.Baseline)
	}
	recovery := report.Rows[1] // pre-crash (baseline) vs adaptive post-crash
	if recovery.Baseline <= 0 {
		t.Fatalf("pre-crash throughput = %v", recovery.Baseline)
	}
	if ratio := recovery.RStorm / recovery.Baseline; ratio < 0.9 {
		t.Errorf("adaptive recovered only %.1f%% of pre-crash throughput (%v vs %v)",
			ratio*100, recovery.RStorm, recovery.Baseline)
	}
	damage := report.Rows[2] // pre-crash (baseline) vs static post-crash
	if ratio := damage.RStorm / damage.Baseline; ratio >= 0.9 {
		t.Errorf("static unexpectedly recovered %.1f%% without a failover", ratio*100)
	}
	ttr := report.Rows[3]
	if ttr.Baseline != -1 {
		t.Errorf("static time-to-recover = %v, want the -1 never-recovered sentinel", ttr.Baseline)
	}
	if ttr.RStorm <= 0 {
		t.Errorf("adaptive time-to-recover = %v, want measured > 0", ttr.RStorm)
	}
	replayed := report.Rows[4]
	if replayed.RStorm <= 0 {
		t.Errorf("adaptive run replayed %v tuples, want > 0 (replay is on)", replayed.RStorm)
	}
	for _, key := range []string{"static (no failover)", "adaptive (failover)"} {
		if len(report.Series[key]) == 0 {
			t.Errorf("series %q missing", key)
		}
	}
}

// Determinism of both runs is covered by the golden-diff harness
// (TestGoldenDiffAllExperiments).
