package experiments

import (
	"fmt"
	"sort"
	"time"

	"rstorm/internal/adaptive"
	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/faults"
	"rstorm/internal/metrics"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
)

// failoverWindow is the control-loop granularity of the failover
// experiment — fine enough to resolve the crash dip and the recovery ramp.
const failoverWindow = 500 * time.Millisecond

// failoverFlapDamping is the adaptive run's recovered-node embargo, in
// control epochs.
const failoverFlapDamping = 3

// Failover regenerates the self-healing figure (DESIGN.md §7): an
// honestly-declared chain loses the node hosting the most tasks at one
// third of the run and gets it back at two thirds, under at-least-once
// replay. Run twice — static R-Storm (schedule once, never react) and
// R-Storm with the adaptive loop's failover trigger closing the loop.
func Failover() Experiment {
	return Experiment{
		ID:    "failover",
		Title: "Self-healing failover under a scripted node crash",
		PaperClaim: "(beyond the paper: crash-killed tasks stay dead under the static " +
			"schedule — throughput never recovers; the failover trigger re-places them " +
			"and recovers >=90% of pre-crash throughput, with measured time-to-recover)",
		Run: runFailover,
	}
}

// chainTopology is the failover workload: an honest three-stage chain
// whose declared and true demands agree, so the only perturbation in the
// experiment is the injected fault schedule.
func chainTopology() (*topology.Topology, error) {
	b := topology.NewBuilder("chain")
	b.SetSpout("s", 2).SetCPULoad(20).SetMemoryLoad(128).
		SetProfile(topology.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 128})
	b.SetBolt("work", 4).ShuffleGrouping("s").SetCPULoad(25).SetMemoryLoad(128).
		SetProfile(topology.ExecProfile{CPUPerTuple: 300 * time.Microsecond, TupleBytes: 128})
	b.SetBolt("z", 2).ShuffleGrouping("work").SetCPULoad(10).SetMemoryLoad(128).
		SetProfile(topology.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 128})
	return b.Build()
}

// busiestNode picks the node hosting the most tasks of the assignment
// (ties: lexicographically smallest ID) — the crash target that hurts the
// schedule the most.
func busiestNode(topo *topology.Topology, a *core.Assignment) cluster.NodeID {
	counts := make(map[cluster.NodeID]int)
	for _, task := range topo.Tasks() {
		counts[a.Placements[task.ID].Node]++
	}
	ids := make([]cluster.NodeID, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	best := ids[0]
	for _, id := range ids[1:] {
		if counts[id] > counts[best] {
			best = id
		}
	}
	return best
}

func runFailover(o Options) (*Report, error) {
	o = o.withDefaults()
	c, err := emulab12()
	if err != nil {
		return nil, err
	}
	crashAt := o.Duration / 3
	recoverAt := 2 * o.Duration / 3
	cfg := simulator.Config{
		Duration:          o.Duration,
		MetricsWindow:     failoverWindow,
		Seed:              o.Seed,
		Replay:            true,
		LatencyHistograms: o.Percentiles,
		Shards:            o.Shards,
	}

	// Both runs schedule identically (same scheduler, same declarations),
	// so one scratch pass pins the crash target for both.
	probe, err := chainTopology()
	if err != nil {
		return nil, err
	}
	probeAssign, err := core.NewResourceAwareScheduler().Schedule(probe, c, core.NewGlobalState(c))
	if err != nil {
		return nil, fmt.Errorf("failover probe schedule: %w", err)
	}
	victim := busiestNode(probe, probeAssign)
	schedule := faults.Schedule{
		{Kind: faults.Crash, Node: victim, At: crashAt},
		{Kind: faults.Recover, Node: victim, At: recoverAt},
	}

	staticTopo, err := chainTopology()
	if err != nil {
		return nil, err
	}
	static, err := simulateFaulted(c, staticTopo, cfg, schedule)
	if err != nil {
		return nil, fmt.Errorf("failover static: %w", err)
	}

	adaptiveTopo, err := chainTopology()
	if err != nil {
		return nil, err
	}
	loopCfg := adaptive.LoopConfig{FlapDamping: failoverFlapDamping}
	adaptiveOut, err := simulateAdaptiveFaulted(c, adaptiveTopo, cfg, loopCfg, schedule)
	if err != nil {
		return nil, fmt.Errorf("failover adaptive: %w", err)
	}

	name := staticTopo.Name()
	staticTR := static.result.Topology(name)
	adaptiveTR := adaptiveOut.Result.Topology(name)
	// Pre-crash baseline: the fully-healthy windows after warmup, before
	// the crash window. Identical placements make the two runs agree here;
	// measure each from its own series anyway.
	crashWin := int(crashAt / failoverWindow)
	preCrash := func(series []float64) float64 {
		if crashWin <= 1 || crashWin > len(series) {
			return steadyMean(series)
		}
		return metrics.Mean(series[1:crashWin])
	}
	staticPre := preCrash(staticTR.SinkSeries)
	adaptivePre := preCrash(adaptiveTR.SinkSeries)
	staticSteady := steadyMean(staticTR.SinkSeries)
	adaptiveSteady := steadyMean(adaptiveTR.SinkSeries)

	unit := fmt.Sprintf("throughput (tuples/%s)", failoverWindow)
	report := &Report{
		ID:    "failover",
		Title: "Self-healing failover under a scripted node crash",
		PaperClaim: "static stays degraded after the crash; the failover trigger " +
			"recovers >=90% of pre-crash throughput",
		Window: failoverWindow,
		Series: map[string][]float64{
			"static (no failover)": staticTR.SinkSeries,
			"adaptive (failover)":  adaptiveTR.SinkSeries,
		},
		Rows: []Row{
			{
				// The headline: post-crash steady state, static vs failover.
				Label:          unit + " after crash: static vs adaptive",
				Baseline:       staticSteady,
				RStorm:         adaptiveSteady,
				ImprovementPct: metrics.ImprovementPct(staticSteady, adaptiveSteady),
			},
			{
				// Recovery ratio against the run's own pre-crash baseline.
				Label:          unit + ": pre-crash vs adaptive post-crash (recovery)",
				Baseline:       adaptivePre,
				RStorm:         adaptiveSteady,
				ImprovementPct: metrics.ImprovementPct(adaptivePre, adaptiveSteady),
			},
			{
				Label:          unit + ": pre-crash vs static post-crash (the damage)",
				Baseline:       staticPre,
				RStorm:         staticSteady,
				ImprovementPct: metrics.ImprovementPct(staticPre, staticSteady),
			},
			{
				// Time from the crash to the first recovered window;
				// -1 = never recovered within the run.
				Label:    "time-to-recover (s)",
				Baseline: recoverySeconds(staticTR.RecoveryTime),
				RStorm:   recoverySeconds(adaptiveTR.RecoveryTime),
			},
			{
				Label:    "tuples replayed (at-least-once)",
				Baseline: float64(static.result.TuplesReplayed),
				RStorm:   float64(adaptiveOut.Result.TuplesReplayed),
			},
			{
				Label:    "tuples dropped",
				Baseline: float64(static.result.TuplesDropped),
				RStorm:   float64(adaptiveOut.Result.TuplesDropped),
			},
			{
				Label:    "victim downtime (s)",
				Baseline: static.result.NodeDowntime[victim].Seconds(),
				RStorm:   adaptiveOut.Result.NodeDowntime[victim].Seconds(),
			},
		},
	}
	if o.Percentiles {
		// The latency story behind the throughput dip: the static run's
		// post-crash p99 is zero because nothing reaches the sinks at all,
		// while the failover run spikes (the chain re-equilibrates on less
		// capacity) and then holds a bounded steady state — tuples keep
		// flowing at a higher but stable tail.
		report.Rows = append(report.Rows,
			Row{
				Label:    "p99 latency (ms): pre-crash max",
				Baseline: maxWindow(windowRange(staticTR.LatencyP99Series, 1, crashWin)),
				RStorm:   maxWindow(windowRange(adaptiveTR.LatencyP99Series, 1, crashWin)),
			},
			Row{
				Label:    "p99 latency (ms): post-crash spike (max)",
				Baseline: maxWindow(windowRange(staticTR.LatencyP99Series, crashWin, -1)),
				RStorm:   maxWindow(windowRange(adaptiveTR.LatencyP99Series, crashWin, -1)),
			},
			Row{
				Label:    "p99 latency (ms): final window (0 = starved)",
				Baseline: lastWindow(staticTR.LatencyP99Series),
				RStorm:   lastWindow(adaptiveTR.LatencyP99Series),
			},
			Row{
				Label:    "p99 latency (ms): whole run",
				Baseline: float64(staticTR.LatencyP99) / float64(time.Millisecond),
				RStorm:   float64(adaptiveTR.LatencyP99) / float64(time.Millisecond),
			},
		)
	}
	return report, nil
}

// windowRange slices [lo, hi) out of a per-window series with clamping
// (hi < 0 means the end), so the p99 rows survive runs too short for the
// crash to land where the schedule expects it.
func windowRange(series []float64, lo, hi int) []float64 {
	if hi < 0 || hi > len(series) {
		hi = len(series)
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return nil
	}
	return series[lo:hi]
}

// maxWindow returns the largest value of a per-window series slice (zero
// when empty).
func maxWindow(series []float64) float64 {
	var max float64
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	return max
}

// lastWindow returns the final entry of a series (zero when empty).
func lastWindow(series []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	return series[len(series)-1]
}

// recoverySeconds renders the simulator's RecoveryTime for a report row:
// the negative "never recovered" sentinel becomes a clean -1.
func recoverySeconds(d time.Duration) float64 {
	if d < 0 {
		return -1
	}
	return d.Seconds()
}

// simulateFaulted is simulate for a single topology with a fault schedule
// installed before start.
func simulateFaulted(
	c *cluster.Cluster,
	topo *topology.Topology,
	cfg simulator.Config,
	schedule faults.Schedule,
) (*outcome, error) {
	state := core.NewGlobalState(c)
	sched := core.NewResourceAwareScheduler()
	a, err := sched.Schedule(topo, c, state)
	if err != nil {
		return nil, fmt.Errorf("scheduling %q: %w", topo.Name(), err)
	}
	if err := state.Apply(topo, a); err != nil {
		return nil, fmt.Errorf("apply %q: %w", topo.Name(), err)
	}
	sim, err := simulator.New(c, cfg)
	if err != nil {
		return nil, err
	}
	if err := sim.AddTopology(topo, a); err != nil {
		return nil, err
	}
	if err := schedule.Apply(sim); err != nil {
		return nil, err
	}
	result, err := sim.Run()
	if err != nil {
		return nil, err
	}
	return &outcome{result: result, assignments: map[string]*core.Assignment{topo.Name(): a}}, nil
}

// simulateAdaptiveFaulted is simulateAdaptive with a fault schedule
// installed before the loop starts.
func simulateAdaptiveFaulted(
	c *cluster.Cluster,
	topo *topology.Topology,
	cfg simulator.Config,
	loopCfg adaptive.LoopConfig,
	schedule faults.Schedule,
) (*adaptive.LoopResult, error) {
	sched := core.NewResourceAwareScheduler()
	state := core.NewGlobalState(c)
	a, err := sched.Schedule(topo, c, state)
	if err != nil {
		return nil, fmt.Errorf("scheduling %q: %w", topo.Name(), err)
	}
	if err := state.Apply(topo, a); err != nil {
		return nil, fmt.Errorf("apply %q: %w", topo.Name(), err)
	}
	sim, err := simulator.New(c, cfg)
	if err != nil {
		return nil, err
	}
	if err := sim.AddTopology(topo, a); err != nil {
		return nil, err
	}
	if err := schedule.Apply(sim); err != nil {
		return nil, err
	}
	loop := adaptive.NewLoop(sim, c, sched, loopCfg)
	if err := loop.Manage(topo, a); err != nil {
		return nil, err
	}
	return loop.Run()
}
