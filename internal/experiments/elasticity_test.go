package experiments

import (
	"testing"
	"time"
)

func elasticityOpts() Options {
	return Options{
		Duration:      12 * time.Second,
		MetricsWindow: 2 * time.Second, // ignored: the experiment uses its own window
		Seed:          1,
	}
}

// TestElasticityClosesTheLoop is the acceptance regression for the
// adaptive subsystem: with deliberately mis-declared demands, the adaptive
// run must recover at least 90% of the honestly-declared oracle's
// steady-state throughput, static R-Storm must not, and the incremental
// rebalance must migrate strictly fewer tasks than a full reschedule
// (which restarts all of them).
func TestElasticityClosesTheLoop(t *testing.T) {
	e, ok := ByID("elasticity")
	if !ok {
		t.Fatal("elasticity experiment not registered")
	}
	report, err := e.Run(elasticityOpts())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(report.Rows) < 5 {
		t.Fatalf("rows = %+v", report.Rows)
	}
	recovery := report.Rows[1] // oracle (baseline) vs adaptive
	if recovery.Baseline <= 0 {
		t.Fatalf("oracle throughput = %v", recovery.Baseline)
	}
	if ratio := recovery.RStorm / recovery.Baseline; ratio < 0.9 {
		t.Errorf("adaptive recovered only %.1f%% of the oracle (%v vs %v)",
			ratio*100, recovery.RStorm, recovery.Baseline)
	}
	gap := report.Rows[2] // oracle (baseline) vs static
	if ratio := gap.RStorm / gap.Baseline; ratio >= 0.9 {
		t.Errorf("static R-Storm unexpectedly recovered %.1f%% of the oracle; "+
			"the mis-declaration should hurt it", ratio*100)
	}
	migration := report.Rows[3] // full reschedule (baseline) vs incremental moves
	if migration.RStorm <= 0 || migration.RStorm >= migration.Baseline {
		t.Errorf("incremental moves = %v, want within (0, %v)", migration.RStorm, migration.Baseline)
	}
	for _, key := range []string{"oracle (honest decl)", "static (mis-decl)", "adaptive (mis-decl)"} {
		if len(report.Series[key]) == 0 {
			t.Errorf("series %q missing", key)
		}
	}
}

// Determinism of the whole three-run experiment is covered by the
// golden-diff harness (TestGoldenDiffAllExperiments).
