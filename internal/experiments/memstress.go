package experiments

import (
	"fmt"
	"time"

	"rstorm/internal/adaptive"
	"rstorm/internal/core"
	"rstorm/internal/metrics"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
	"rstorm/internal/workloads"
)

// memStressWindow is the control-loop (and OOM-enforcement) granularity of
// the memory-stress experiment — fine enough that the adaptive loop can
// see a node filling up and act windows before the OOM killer would.
const memStressWindow = 500 * time.Millisecond

// memStressDuration gives the working sets time to ramp, the control loop
// time to converge, and still leaves a clean final third for the
// steady-state comparison regardless of Options.Duration (the scenario's
// timeline is intrinsic to its growth constants, not to the caller's
// preferred run length).
const memStressDuration = 30 * time.Second

// MemoryStress regenerates the runtime-memory-model figure (DESIGN.md §4):
// the MemStressChain workload with a mis-declared, runtime-growing memory
// footprint, run three ways under OOM enforcement — honestly-declared
// R-Storm (the oracle), mis-declared static R-Storm (whose packed node
// OOM-thrashes as the working sets grow), and mis-declared R-Storm with
// the adaptive loop measuring resident memory and migrating tasks off the
// filling node before the kills start.
func MemoryStress() Experiment {
	return Experiment{
		ID:    "memstress",
		Title: "Runtime memory model: OOM enforcement vs adaptive memory correction",
		PaperClaim: "(beyond the paper: memory is enforced at runtime, not admission time — " +
			"static mis-declaration OOM-thrashes; the adaptive loop corrects the " +
			"mis-declaration from measured residents and recovers >=90% of the oracle)",
		Run: runMemoryStress,
	}
}

func runMemoryStress(o Options) (*Report, error) {
	o = o.withDefaults()
	c, err := emulab12()
	if err != nil {
		return nil, err
	}
	cfg := simulator.Config{
		Duration:      memStressDuration,
		MetricsWindow: memStressWindow,
		Seed:          o.Seed,
		MemoryModel:   true,
		Shards:        o.Shards,
	}
	// The adaptive loop projects measured memory growth far forward (the
	// working sets ramp for many windows), triggers well under the OOM
	// threshold, and places tasks only where the memory fill keeps
	// headroom for further growth.
	loopCfg := adaptive.LoopConfig{
		Profiler: adaptive.ProfilerConfig{
			MemLookaheadWindows: 40,
		},
		Controller: adaptive.ControllerConfig{
			MemHigh:     0.7,
			MemHeadroom: 0.8,
		},
	}

	honest, err := workloads.MemStressChain(true)
	if err != nil {
		return nil, err
	}
	oracle, err := simulate(c, []*topology.Topology{honest}, core.NewResourceAwareScheduler(), cfg)
	if err != nil {
		return nil, fmt.Errorf("memstress oracle: %w", err)
	}

	lyingStatic, err := workloads.MemStressChain(false)
	if err != nil {
		return nil, err
	}
	static, err := simulate(c, []*topology.Topology{lyingStatic}, core.NewResourceAwareScheduler(), cfg)
	if err != nil {
		return nil, fmt.Errorf("memstress static: %w", err)
	}

	lyingAdaptive, err := workloads.MemStressChain(false)
	if err != nil {
		return nil, err
	}
	adaptiveOut, err := simulateAdaptive(c, lyingAdaptive, cfg, loopCfg)
	if err != nil {
		return nil, fmt.Errorf("memstress adaptive: %w", err)
	}

	name := honest.Name()
	oracleSeries := oracle.result.Topology(name).SinkSeries
	staticSeries := static.result.Topology(name).SinkSeries
	adaptiveSeries := adaptiveOut.Result.Topology(name).SinkSeries
	oracleSteady := steadyMean(oracleSeries)
	staticSteady := steadyMean(staticSeries)
	adaptiveSteady := steadyMean(adaptiveSeries)

	unit := fmt.Sprintf("steady-state throughput (tuples/%s)", memStressWindow)
	return &Report{
		ID:    "memstress",
		Title: "Runtime memory model: OOM enforcement vs adaptive memory correction",
		PaperClaim: "static mis-declaration OOM-thrashes; adaptive migrates off the " +
			"filling node, takes zero OOM kills, and recovers >=90% of the oracle",
		Window: memStressWindow,
		Series: map[string][]float64{
			"oracle (honest decl)": oracleSeries,
			"static (mis-decl)":    staticSeries,
			"adaptive (mis-decl)":  adaptiveSeries,
		},
		Rows: []Row{
			{
				// Baseline = static mis-declared, RStorm = adaptive.
				Label:          unit + ": static vs adaptive",
				Baseline:       staticSteady,
				RStorm:         adaptiveSteady,
				ImprovementPct: metrics.ImprovementPct(staticSteady, adaptiveSteady),
			},
			{
				// Baseline = oracle; recovery ratio is the headline.
				Label:          unit + ": oracle vs adaptive (recovery)",
				Baseline:       oracleSteady,
				RStorm:         adaptiveSteady,
				ImprovementPct: metrics.ImprovementPct(oracleSteady, adaptiveSteady),
			},
			{
				Label:          unit + ": oracle vs static (the gap left open)",
				Baseline:       oracleSteady,
				RStorm:         staticSteady,
				ImprovementPct: metrics.ImprovementPct(oracleSteady, staticSteady),
			},
			{
				// Baseline = static's OOM kills; RStorm = adaptive's.
				Label:    "tasks OOM-killed: static vs adaptive",
				Baseline: float64(static.result.TasksOOMKilled),
				RStorm:   float64(adaptiveOut.Result.TasksOOMKilled),
			},
			{
				Label:    "tasks migrated by the adaptive loop",
				Baseline: float64(honest.TotalTasks()),
				RStorm:   float64(adaptiveOut.TotalMoves()),
			},
			{
				Label:    "rebalance rounds until convergence",
				Baseline: 0,
				RStorm:   float64(len(adaptiveOut.Events)),
			},
		},
	}, nil
}
