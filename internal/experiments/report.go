package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rstorm/internal/viz"
)

// Render formats a report as text: header, comparison table, and a
// timeline chart when the report carries series.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.ID, r.Title)
	fmt.Fprintf(&b, "paper: %s\n\n", r.PaperClaim)

	labelW := len("metric")
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s  %14s  %14s  %12s\n", labelW, "metric", "default", "r-storm", "improvement")
	for _, row := range r.Rows {
		imp := "—"
		if !math.IsNaN(row.ImprovementPct) && !math.IsInf(row.ImprovementPct, 0) {
			imp = fmt.Sprintf("%+.1f%%", row.ImprovementPct)
		} else if math.IsInf(row.ImprovementPct, 1) {
			imp = "+inf"
		}
		fmt.Fprintf(&b, "%-*s  %14.1f  %14.1f  %12s\n", labelW, row.Label, row.Baseline, row.RStorm, imp)
	}

	switch {
	case len(r.Series) > 0:
		names := make([]string, 0, len(r.Series))
		for name := range r.Series {
			names = append(names, name)
		}
		sort.Strings(names)
		series := make([]viz.Series, 0, len(names))
		for _, name := range names {
			series = append(series, viz.Series{Name: name, Values: r.Series[name]})
		}
		b.WriteString("\n")
		b.WriteString(viz.LineChart(fmt.Sprintf("throughput per %s window", r.Window), series, 72, 14))
	case len(r.Rows) > 0:
		// Bar-chart figures (e.g. Fig. 10's utilization comparison).
		labels := make([]string, 0, len(r.Rows))
		baseline := make([]float64, 0, len(r.Rows))
		rstorm := make([]float64, 0, len(r.Rows))
		for _, row := range r.Rows {
			labels = append(labels, row.Label)
			baseline = append(baseline, row.Baseline)
			rstorm = append(rstorm, row.RStorm)
		}
		b.WriteString("\n")
		b.WriteString(viz.BarChart("default vs r-storm", labels, baseline, rstorm, 40))
	}
	return b.String()
}
