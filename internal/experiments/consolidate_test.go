package experiments

import (
	"testing"
	"time"
)

func consolidateOpts() Options {
	return Options{
		Duration:      10 * time.Second,
		MetricsWindow: 2 * time.Second, // ignored: the experiment uses its own window
		Seed:          1,
	}
}

// TestConsolidateClosesTheLoop is the acceptance regression for the
// traffic-aware consolidation objective: static R-Storm spreads the
// CPU-overdeclared chatty chain so most deliveries cross the wire, and
// the adaptive run must consolidate — strictly fewer migrations than a
// full teardown, a clearly lower inter-node tuple fraction, and higher
// steady-state throughput.
func TestConsolidateClosesTheLoop(t *testing.T) {
	e, ok := ByID("consolidate")
	if !ok {
		t.Fatal("consolidate experiment not registered")
	}
	report, err := e.Run(consolidateOpts())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(report.Rows) < 5 {
		t.Fatalf("rows = %+v", report.Rows)
	}
	thr := report.Rows[0] // static (baseline) vs adaptive throughput
	if thr.Baseline <= 0 {
		t.Fatalf("static throughput = %v", thr.Baseline)
	}
	if thr.RStorm < 2*thr.Baseline {
		t.Errorf("consolidation recovered only %.1fx of static throughput (%v vs %v); "+
			"the wire was supposed to be the bottleneck", thr.RStorm/thr.Baseline, thr.RStorm, thr.Baseline)
	}
	frac := report.Rows[1] // inter-node tuple fraction, percent
	if frac.Baseline < 50 {
		t.Errorf("static inter-node fraction = %.1f%%, want the spread placement to put most "+
			"traffic on the wire", frac.Baseline)
	}
	if frac.RStorm >= frac.Baseline/2 {
		t.Errorf("adaptive inter-node fraction %.1f%% not clearly below static %.1f%%",
			frac.RStorm, frac.Baseline)
	}
	lat := report.Rows[2] // mean latency, ms (lower is better)
	if lat.RStorm >= lat.Baseline {
		t.Errorf("adaptive latency %.2fms not below static %.2fms", lat.RStorm, lat.Baseline)
	}
	moves := report.Rows[3] // full teardown (baseline) vs incremental moves
	if moves.RStorm <= 0 || moves.RStorm >= moves.Baseline {
		t.Errorf("incremental moves = %v, want within (0, %v)", moves.RStorm, moves.Baseline)
	}
	for _, key := range []string{"static (spread)", "adaptive (consolidate)"} {
		if len(report.Series[key]) == 0 {
			t.Errorf("series %q missing", key)
		}
	}
}
