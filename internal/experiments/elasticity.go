package experiments

import (
	"fmt"
	"time"

	"rstorm/internal/adaptive"
	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/metrics"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
	"rstorm/internal/workloads"
)

// elasticityWindow is the control-loop granularity of the elasticity
// experiment. It is deliberately finer than Options.MetricsWindow (the
// paper's 10 s reporting bucket): the figure of interest here is the
// DRS-style convergence timeline, which needs sub-second resolution.
const elasticityWindow = 500 * time.Millisecond

// steadyMean averages the last third of a throughput series — the
// post-convergence steady state the recovery comparison is made over.
func steadyMean(series []float64) float64 {
	n := len(series)
	if n == 0 {
		return 0
	}
	tail := n / 3
	if tail < 1 {
		tail = 1
	}
	return metrics.Mean(series[n-tail:])
}

// Elasticity regenerates the adaptive-scheduling figure (DESIGN.md): the
// ElasticChain workload with mis-declared demands, run three ways —
// honestly-declared R-Storm (the oracle), mis-declared static R-Storm (the
// paper's scheduler, trusting the lie), and mis-declared R-Storm with the
// adaptive feedback loop closing on measured demands.
func Elasticity() Experiment {
	return Experiment{
		ID:    "elasticity",
		Title: "Adaptive feedback scheduling under mis-declared demands",
		PaperClaim: "(beyond the paper: DRS-style loop — adaptive recovers >=90% of the " +
			"honest-declaration schedule; incremental rebalance moves a strict subset of tasks)",
		Run: runElasticity,
	}
}

func runElasticity(o Options) (*Report, error) {
	o = o.withDefaults()
	c, err := emulab12()
	if err != nil {
		return nil, err
	}
	cfg := simulator.Config{
		Duration:      o.Duration,
		MetricsWindow: elasticityWindow,
		Seed:          o.Seed,
		Shards:        o.Shards,
	}

	honest, err := workloads.ElasticChain(true)
	if err != nil {
		return nil, err
	}
	oracle, err := simulate(c, []*topology.Topology{honest}, core.NewResourceAwareScheduler(), cfg)
	if err != nil {
		return nil, fmt.Errorf("elasticity oracle: %w", err)
	}

	lyingStatic, err := workloads.ElasticChain(false)
	if err != nil {
		return nil, err
	}
	static, err := simulate(c, []*topology.Topology{lyingStatic}, core.NewResourceAwareScheduler(), cfg)
	if err != nil {
		return nil, fmt.Errorf("elasticity static: %w", err)
	}

	lyingAdaptive, err := workloads.ElasticChain(false)
	if err != nil {
		return nil, err
	}
	adaptiveOut, err := simulateAdaptive(c, lyingAdaptive, cfg, adaptive.LoopConfig{})
	if err != nil {
		return nil, fmt.Errorf("elasticity adaptive: %w", err)
	}

	name := honest.Name()
	oracleSeries := oracle.result.Topology(name).SinkSeries
	staticSeries := static.result.Topology(name).SinkSeries
	adaptiveSeries := adaptiveOut.Result.Topology(name).SinkSeries
	oracleSteady := steadyMean(oracleSeries)
	staticSteady := steadyMean(staticSeries)
	adaptiveSteady := steadyMean(adaptiveSeries)
	totalTasks := honest.TotalTasks()
	moves := adaptiveOut.TotalMoves()

	unit := fmt.Sprintf("steady-state throughput (tuples/%s)", elasticityWindow)
	return &Report{
		ID:    "elasticity",
		Title: "Adaptive feedback scheduling under mis-declared demands",
		PaperClaim: "adaptive recovers >=90% of the oracle; static does not; " +
			"incremental migration beats full teardown",
		Window: elasticityWindow,
		Series: map[string][]float64{
			"oracle (honest decl)": oracleSeries,
			"static (mis-decl)":    staticSeries,
			"adaptive (mis-decl)":  adaptiveSeries,
		},
		Rows: []Row{
			{
				// Baseline = static mis-declared, RStorm = adaptive.
				Label:          unit + ": static vs adaptive",
				Baseline:       staticSteady,
				RStorm:         adaptiveSteady,
				ImprovementPct: metrics.ImprovementPct(staticSteady, adaptiveSteady),
			},
			{
				// Baseline = oracle; recovery ratio is the headline.
				Label:          unit + ": oracle vs adaptive (recovery)",
				Baseline:       oracleSteady,
				RStorm:         adaptiveSteady,
				ImprovementPct: metrics.ImprovementPct(oracleSteady, adaptiveSteady),
			},
			{
				Label:          unit + ": oracle vs static (the gap left open)",
				Baseline:       oracleSteady,
				RStorm:         staticSteady,
				ImprovementPct: metrics.ImprovementPct(oracleSteady, staticSteady),
			},
			{
				// Baseline = tasks a full teardown restarts; RStorm = the
				// incremental loop's total migrations.
				Label:          "tasks migrated: full reschedule vs incremental",
				Baseline:       float64(totalTasks),
				RStorm:         float64(moves),
				ImprovementPct: metrics.ImprovementPct(float64(totalTasks), float64(moves)),
			},
			{
				Label:    "rebalance rounds until convergence",
				Baseline: 0,
				RStorm:   float64(len(adaptiveOut.Events)),
			},
		},
	}, nil
}

// simulateAdaptive schedules topo from its (mis-)declarations, then runs it
// under the adaptive control loop configured by loopCfg.
func simulateAdaptive(
	c *cluster.Cluster,
	topo *topology.Topology,
	cfg simulator.Config,
	loopCfg adaptive.LoopConfig,
) (*adaptive.LoopResult, error) {
	sched := core.NewResourceAwareScheduler()
	state := core.NewGlobalState(c)
	a, err := sched.Schedule(topo, c, state)
	if err != nil {
		return nil, fmt.Errorf("scheduling %q: %w", topo.Name(), err)
	}
	if err := state.Apply(topo, a); err != nil {
		return nil, fmt.Errorf("apply %q: %w", topo.Name(), err)
	}
	sim, err := simulator.New(c, cfg)
	if err != nil {
		return nil, err
	}
	if err := sim.AddTopology(topo, a); err != nil {
		return nil, err
	}
	loop := adaptive.NewLoop(sim, c, sched, loopCfg)
	if err := loop.Manage(topo, a); err != nil {
		return nil, err
	}
	return loop.Run()
}
