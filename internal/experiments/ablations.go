package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/metrics"
	"rstorm/internal/resource"
	"rstorm/internal/topology"
	"rstorm/internal/workloads"
)

// AblationTaskOrdering measures the contribution of Algorithm 3's BFS task
// ordering (DESIGN.md Ablation A): R-Storm with its BFS ordering versus
// R-Storm with a seeded random ordering. The workload is a linear pipeline
// with local-or-shuffle groupings — the production pattern where
// colocating adjacent components' tasks translates directly into
// intra-process traffic. BFS ordering packs each chain slice onto one
// node; a random ordering packs arbitrary task quadruples, so most
// hand-offs fall back to remote shuffle.
func AblationTaskOrdering() Experiment {
	return Experiment{
		ID:         "ablationA",
		Title:      "Ablation A: BFS task ordering vs random ordering",
		PaperClaim: "(design choice §4.1.1 — no paper number)",
		Run: func(o Options) (*Report, error) {
			c, err := emulab12()
			if err != nil {
				return nil, err
			}
			randomOrdering := func(tp *topology.Topology) []topology.Task {
				tasks := tp.Tasks()
				rng := rand.New(rand.NewSource(42))
				rng.Shuffle(len(tasks), func(i, j int) { tasks[i], tasks[j] = tasks[j], tasks[i] })
				return tasks
			}
			buildTopo := func() (*topology.Topology, error) {
				prof := topology.ExecProfile{CPUPerTuple: 200 * time.Microsecond, TupleBytes: 200}
				b := topology.NewBuilder("linear-local")
				b.SetMaxSpoutPending(23)
				b.SetSpout("spout", 6).SetCPULoad(10).SetMemoryLoad(512).SetProfile(prof)
				b.SetBolt("bolt1", 6).LocalOrShuffleGrouping("spout").
					SetCPULoad(10).SetMemoryLoad(512).SetProfile(prof)
				b.SetBolt("bolt2", 6).LocalOrShuffleGrouping("bolt1").
					SetCPULoad(10).SetMemoryLoad(512).SetProfile(prof)
				b.SetBolt("bolt3", 6).LocalOrShuffleGrouping("bolt2").
					SetCPULoad(10).SetMemoryLoad(512).SetProfile(prof)
				return b.Build()
			}
			topoBFS, err := buildTopo()
			if err != nil {
				return nil, err
			}
			topoRnd, err := buildTopo()
			if err != nil {
				return nil, err
			}
			bfs, err := simulate(c, []*topology.Topology{topoBFS},
				core.NewResourceAwareScheduler(), microCfg(o))
			if err != nil {
				return nil, fmt.Errorf("ablationA bfs: %w", err)
			}
			rnd, err := simulate(c, []*topology.Topology{topoRnd},
				core.NewResourceAwareScheduler(core.WithTaskOrdering(randomOrdering)), microCfg(o))
			if err != nil {
				return nil, fmt.Errorf("ablationA random: %w", err)
			}
			bfsCost := bfs.assignments[topoBFS.Name()].NetworkCost(topoBFS, c)
			rndCost := rnd.assignments[topoRnd.Name()].NetworkCost(topoRnd, c)
			bt := bfs.result.Topology(topoBFS.Name()).MeanSinkThroughput
			rt := rnd.result.Topology(topoRnd.Name()).MeanSinkThroughput
			return &Report{
				ID:         "ablationA",
				Title:      "BFS task ordering vs random ordering (network-bound Linear)",
				PaperClaim: "BFS ordering colocates adjacent components (§4.1.1)",
				Window:     microCfg(o).MetricsWindow,
				Series: map[string][]float64{
					"bfs-ordering":    bfs.result.Topology(topoBFS.Name()).SinkSeries,
					"random-ordering": rnd.result.Topology(topoRnd.Name()).SinkSeries,
				},
				Rows: []Row{
					{
						// Baseline = random ordering, RStorm = BFS.
						Label:          "schedule network cost (lower is better)",
						Baseline:       rndCost,
						RStorm:         bfsCost,
						ImprovementPct: metrics.ImprovementPct(bfsCost, rndCost),
					},
					{
						Label:          fmt.Sprintf("throughput (tuples/%s)", microCfg(o).MetricsWindow),
						Baseline:       rt,
						RStorm:         bt,
						ImprovementPct: metrics.ImprovementPct(rt, bt),
					},
				},
			}, nil
		},
	}
}

// AblationGreedyVsExact bounds the greedy heuristic's optimality gap
// (DESIGN.md Ablation B) on an instance small enough for branch-and-bound:
// a 6-task chain on a 4-node, 2-rack cluster, compared on the exact
// solver's objective.
func AblationGreedyVsExact() Experiment {
	return Experiment{
		ID:         "ablationB",
		Title:      "Ablation B: greedy node selection vs exact branch-and-bound",
		PaperClaim: "(QM3DKP is NP-hard; greedy must be near-optimal to justify §4)",
		Run: func(o Options) (*Report, error) {
			c, err := cluster.TwoRack(2, 2, cluster.EmulabNodeSpec())
			if err != nil {
				return nil, err
			}
			b := topology.NewBuilder("chain6")
			b.SetSpout("s", 2).SetCPULoad(30).SetMemoryLoad(600)
			b.SetBolt("m", 2).ShuffleGrouping("s").SetCPULoad(30).SetMemoryLoad(600)
			b.SetBolt("z", 2).ShuffleGrouping("m").SetCPULoad(30).SetMemoryLoad(600)
			topo, err := b.Build()
			if err != nil {
				return nil, err
			}
			greedy, err := core.NewResourceAwareScheduler().Schedule(topo, c, core.NewGlobalState(c))
			if err != nil {
				return nil, fmt.Errorf("greedy: %w", err)
			}
			exact, err := core.NewExactScheduler().Schedule(topo, c, core.NewGlobalState(c))
			if err != nil {
				return nil, fmt.Errorf("exact: %w", err)
			}
			gCost := greedy.NetworkCost(topo, c)
			eCost := exact.NetworkCost(topo, c)
			return &Report{
				ID:         "ablationB",
				Title:      "Greedy vs exact on a 6-task chain (4 nodes)",
				PaperClaim: "greedy should be near the exact optimum",
				Rows: []Row{
					{
						// Baseline = exact optimum, RStorm = greedy.
						Label:          "schedule network cost (lower is better)",
						Baseline:       eCost,
						RStorm:         gCost,
						ImprovementPct: metrics.ImprovementPct(gCost, eCost),
					},
					{
						Label:    "nodes used",
						Baseline: float64(len(exact.NodesUsed())),
						RStorm:   float64(len(greedy.NodesUsed())),
					},
				},
			}, nil
		},
	}
}

// AblationWeights sweeps the soft-constraint weight ratio (DESIGN.md
// Ablation C). On a homogeneous cluster the bandwidth axis is the only
// tiebreaker and every weight yields the same schedule, so this ablation
// uses a heterogeneous cluster: the remote rack's nodes have slightly
// less memory, making them *tighter* fits that the memory term prefers.
// A small bandwidth weight lets the scheduler chase those tight fits
// across the rack boundary; a large weight keeps the topology in the ref
// rack. The sweep measures both schedule network cost and throughput.
func AblationWeights() Experiment {
	return Experiment{
		ID:         "ablationC",
		Title:      "Ablation C: soft-constraint weight sensitivity",
		PaperClaim: "(§4: weights let users decide which constraints are more valued)",
		Run: func(o Options) (*Report, error) {
			near := cluster.NodeSpec{
				Capacity: resource.Vector{CPU: 100, MemoryMB: 2048, Bandwidth: 100},
			}
			far := cluster.NodeSpec{
				Capacity: resource.Vector{CPU: 100, MemoryMB: 1792, Bandwidth: 100},
			}
			cb := cluster.NewBuilder()
			for i := 0; i < 6; i++ {
				cb.AddNode(cluster.NodeID(fmt.Sprintf("near-%d", i)), "rack-near", near)
			}
			for i := 0; i < 6; i++ {
				cb.AddNode(cluster.NodeID(fmt.Sprintf("far-%d", i)), "rack-far", far)
			}
			c, err := cb.Build()
			if err != nil {
				return nil, err
			}
			scales := []struct {
				label string
				scale float64
			}{
				{"bandwidth-weight x0", 0},
				{"bandwidth-weight x1 (default)", 1},
				{"bandwidth-weight x100", 100},
				{"bandwidth-weight x1000", 1000},
			}
			report := &Report{
				ID:         "ablationC",
				Title:      "Throughput vs bandwidth-weight scale (network-bound Linear)",
				PaperClaim: "locality weight should matter for network-bound workloads",
				Window:     microCfg(o).MetricsWindow,
				Series:     map[string][]float64{},
			}
			var defaultThroughput float64
			results := make([]float64, len(scales))
			costs := make([]float64, len(scales))
			for i, sc := range scales {
				topo, err := workloads.LinearTopology(workloads.NetworkBound)
				if err != nil {
					return nil, err
				}
				w := resource.DefaultWeights()
				w.Bandwidth *= sc.scale
				out, err := simulate(c, []*topology.Topology{topo},
					core.NewResourceAwareScheduler(core.WithWeights(w)), microCfg(o))
				if err != nil {
					return nil, fmt.Errorf("ablationC %s: %w", sc.label, err)
				}
				tp := out.result.Topology(topo.Name()).MeanSinkThroughput
				results[i] = tp
				costs[i] = out.assignments[topo.Name()].NetworkCost(topo, c)
				if sc.scale == 1 {
					defaultThroughput = tp
				}
				report.Series[sc.label] = out.result.Topology(topo.Name()).SinkSeries
			}
			for i, sc := range scales {
				report.Rows = append(report.Rows, Row{
					Label:          sc.label + " throughput",
					Baseline:       defaultThroughput,
					RStorm:         results[i],
					ImprovementPct: metrics.ImprovementPct(defaultThroughput, results[i]),
				})
				report.Rows = append(report.Rows, Row{
					Label:    sc.label + " network cost",
					Baseline: costs[i],
					RStorm:   costs[i],
				})
			}
			return report, nil
		},
	}
}
