package experiments

import (
	"context"
	"fmt"

	"rstorm/internal/orchestra"
)

// This file adapts the experiment registry onto the parallel scenario
// orchestrator (internal/orchestra, DESIGN.md §10). Each matrix cell
// constructs its own cluster, simulator, profiler and report inside
// Experiment.Run — nothing is shared between cells — so the pool can
// burn every core without perturbing any run's determinism.

// RunResult is one experiment's outcome from RunAll, in registry order.
type RunResult struct {
	ID     string
	Report *Report
	Err    error
}

// RunAll runs every registered experiment once with the given options
// across a bounded pool of parallelism workers (<= 0 means NumCPU) and
// returns the results in paper order regardless of completion order. A
// failing experiment fails its own slot only; the returned error is
// non-nil only when ctx was cancelled.
func RunAll(ctx context.Context, parallelism int, opts Options) ([]RunResult, error) {
	all := All()
	results := make([]RunResult, len(all))
	cells := make([]orchestra.Cell, len(all))
	for i, e := range all {
		results[i] = RunResult{ID: e.ID}
		cells[i] = orchestra.Cell{
			Key: e.ID,
			Run: func(context.Context) (string, error) {
				// The pool guarantees exactly one worker touches index i,
				// and its WaitGroup join publishes the write before
				// orchestra.Run returns.
				results[i].Report, results[i].Err = e.Run(opts)
				return "", results[i].Err
			},
		}
	}
	run, err := orchestra.Run(ctx, cells, orchestra.Options{Workers: parallelism})
	for i, c := range run.Cells {
		if c.Skipped {
			results[i].Err = c.Err
		}
	}
	return results, err
}

// MatrixCells resolves a parsed matrix spec against the registry: "all"
// expands to the full catalogue in paper order, every other ID must be
// registered, and each cell's unset knobs fall back to base. The
// returned cells render their reports under their cell key.
func MatrixCells(spec *orchestra.Spec, base Options) ([]orchestra.Cell, error) {
	// "all" multiplies the rest of the matrix by the whole catalogue. The
	// expansion happens at the ID level, before the cross product, so the
	// matrix order (experiments vary slowest) is preserved.
	resolved := *spec
	resolved.IDs = nil
	for _, id := range spec.IDs {
		if id != "all" {
			resolved.IDs = append(resolved.IDs, id)
			continue
		}
		for _, e := range All() {
			resolved.IDs = append(resolved.IDs, e.ID)
		}
	}
	cellSpecs := resolved.Cells()
	cells := make([]orchestra.Cell, 0, len(cellSpecs))
	for _, cs := range cellSpecs {
		e, ok := ByID(cs.ID)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q in matrix spec (rstorm-bench -list names them)", cs.ID)
		}
		opts := base
		if cs.Seed != 0 {
			opts.Seed = cs.Seed
		}
		if cs.Duration != 0 {
			opts.Duration = cs.Duration
		}
		if cs.Window != 0 {
			opts.MetricsWindow = cs.Window
		}
		cells = append(cells, orchestra.Cell{
			Key: cs.Key(),
			Run: func(context.Context) (string, error) {
				report, err := e.Run(opts)
				if err != nil {
					return "", err
				}
				return report.Render(), nil
			},
		})
	}
	return cells, nil
}
