package experiments

import (
	"fmt"
	"sort"
	"time"

	"rstorm/internal/core"
	"rstorm/internal/metrics"
	"rstorm/internal/nimbus"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
	"rstorm/internal/workloads"
)

// multitenantWindow is the control-plane granularity of the multi-tenant
// experiment: admission/eviction decisions land on these boundaries, and
// the starvation-vs-recovery timeline needs sub-second resolution.
const multitenantWindow = 500 * time.Millisecond

// prodPriority is the production tenant's priority in the
// priority+eviction arm (batch tenants run at zero).
const prodPriority = 8

// MultiTenant regenerates the multi-tenant control-plane figure
// (DESIGN.md §6): four low-priority batch tenants load the cluster near
// its memory capacity; mid-run a burst arrives — one more batch tenant,
// then the production tenant. Under FIFO admission (every priority zero)
// the production tenant is infeasible and starves behind the queue.
// Under priority-aware admission it preempts: the cluster pass evicts the
// newest low-priority tenants, the simulator tears them down mid-run, and
// the production tenant runs at its dedicated-cluster rate; when a
// surviving batch tenant later finishes, an evicted victim is readmitted
// in full on the recovered capacity.
func MultiTenant() Experiment {
	return Experiment{
		ID:    "multitenant",
		Title: "Multi-tenant control plane: priority-aware admission and eviction",
		PaperClaim: "(beyond the paper: production Storm's topology priorities + eviction, " +
			"per Ghaderi et al.'s online-arrival setting — priority recovers >=90% of the " +
			"dedicated-cluster oracle; FIFO starves the production tenant)",
		Run: runMultiTenant,
	}
}

// tenantRun is one arm's outcome.
type tenantRun struct {
	result     *simulator.Result
	evictions  []nimbus.EvictionEvent
	readmitted int
}

func runMultiTenant(o Options) (*Report, error) {
	o = o.withDefaults()
	cfg := simulator.Config{
		Duration:      o.Duration,
		MetricsWindow: multitenantWindow,
		Seed:          o.Seed,
		Shards:        o.Shards,
	}
	// Epoch boundaries: the burst arrives a third in, a batch tenant
	// finishes two thirds in. Both snap to window boundaries.
	t1 := (o.Duration / 3).Truncate(multitenantWindow)
	t2 := (2 * o.Duration / 3).Truncate(multitenantWindow)
	if t1 < multitenantWindow || t2 <= t1 {
		return nil, fmt.Errorf("multitenant: duration %v too short for its epochs", o.Duration)
	}

	// Oracle: the production tenant alone on a dedicated cluster.
	c, err := emulab12()
	if err != nil {
		return nil, err
	}
	prodAlone, err := workloads.ProdTenant(0)
	if err != nil {
		return nil, err
	}
	oracle, err := simulate(c, []*topology.Topology{prodAlone}, core.NewResourceAwareScheduler(), cfg)
	if err != nil {
		return nil, fmt.Errorf("multitenant oracle: %w", err)
	}

	fifo, err := driveTenants(cfg, t1, t2, 0)
	if err != nil {
		return nil, fmt.Errorf("multitenant fifo: %w", err)
	}
	prio, err := driveTenants(cfg, t1, t2, prodPriority)
	if err != nil {
		return nil, fmt.Errorf("multitenant priority: %w", err)
	}

	// A tenant never admitted (FIFO's starved prod) has no simulator run:
	// its timeline is the flat zero it earned.
	windows := int(o.Duration / multitenantWindow)
	seriesOf := func(r *simulator.Result, name string) []float64 {
		if tr := r.Topology(name); tr != nil {
			return tr.SinkSeries
		}
		return make([]float64, windows)
	}
	oracleSeries := seriesOf(oracle.result, "prod")
	fifoSeries := seriesOf(fifo.result, "prod")
	prioSeries := seriesOf(prio.result, "prod")
	oracleSteady := steadyMean(oracleSeries)
	fifoSteady := steadyMean(fifoSeries)
	prioSteady := steadyMean(prioSeries)

	// Sum batch tenants in sorted name order: the report quotes this
	// float, so its bits must not depend on map traversal.
	batchSteady := func(r *tenantRun) float64 {
		names := make([]string, 0, len(r.result.Topologies))
		for name := range r.result.Topologies {
			if name != "prod" {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		var sum float64
		for _, name := range names {
			sum += steadyMean(r.result.Topologies[name].SinkSeries)
		}
		return sum
	}

	unit := fmt.Sprintf("prod steady-state throughput (tuples/%s)", multitenantWindow)
	return &Report{
		ID:    "multitenant",
		Title: "Multi-tenant control plane: priority-aware admission and eviction",
		PaperClaim: "priority+eviction recovers >=90% of the dedicated-cluster oracle; " +
			"FIFO admission starves the production tenant",
		Window: multitenantWindow,
		Series: map[string][]float64{
			"prod oracle (dedicated)":  oracleSeries,
			"prod fifo (starved)":      fifoSeries,
			"prod priority (evicting)": prioSeries,
		},
		Rows: []Row{
			{
				// Baseline = FIFO admission, RStorm = priority+eviction.
				Label:          unit + ": fifo vs priority",
				Baseline:       fifoSteady,
				RStorm:         prioSteady,
				ImprovementPct: metrics.ImprovementPct(fifoSteady, prioSteady),
			},
			{
				// Baseline = dedicated oracle; recovery is the headline.
				Label:          unit + ": oracle vs priority (recovery)",
				Baseline:       oracleSteady,
				RStorm:         prioSteady,
				ImprovementPct: metrics.ImprovementPct(oracleSteady, prioSteady),
			},
			{
				Label:    "evictions applied",
				Baseline: float64(len(fifo.evictions)),
				RStorm:   float64(len(prio.evictions)),
			},
			{
				Label:    "victims readmitted on capacity recovery",
				Baseline: float64(fifo.readmitted),
				RStorm:   float64(prio.readmitted),
			},
			{
				// What the privilege costs the batch tier.
				Label:          fmt.Sprintf("batch aggregate steady throughput (tuples/%s)", multitenantWindow),
				Baseline:       batchSteady(fifo),
				RStorm:         batchSteady(prio),
				ImprovementPct: metrics.ImprovementPct(batchSteady(fifo), batchSteady(prio)),
			},
		},
	}, nil
}

// driveTenants runs one arm of the scenario end-to-end through the real
// control plane: Nimbus owns admission, priority ordering and eviction;
// the driver mirrors its decisions onto the simulator's tenancy epochs.
// prodPrio is the production tenant's priority (zero = the FIFO arm).
func driveTenants(cfg simulator.Config, t1, t2 time.Duration, prodPrio int) (*tenantRun, error) {
	c, err := emulab12()
	if err != nil {
		return nil, err
	}
	n, err := nimbus.New(c, core.NewResourceAwareScheduler())
	if err != nil {
		return nil, err
	}
	for _, id := range c.NodeIDs() {
		if _, err := n.StartSupervisor(id); err != nil {
			return nil, err
		}
	}
	sim, err := simulator.New(c, cfg)
	if err != nil {
		return nil, err
	}

	topos := make(map[string]*topology.Topology)
	submit := func(topo *topology.Topology, err error) error {
		if err != nil {
			return err
		}
		topos[topo.Name()] = topo
		return n.SubmitTopology(topo)
	}

	// t=0: the batch tier fills the cluster.
	for _, name := range []string{"batch-a", "batch-b", "batch-c", "batch-d"} {
		if err := submit(workloads.BatchTenant(name)); err != nil {
			return nil, err
		}
	}
	for _, name := range n.RunSchedulingRound() {
		if err := sim.AddTopology(topos[name], n.Assignment(name)); err != nil {
			return nil, err
		}
	}
	if err := sim.Start(); err != nil {
		return nil, err
	}

	// applyRound mirrors one Nimbus scheduling round onto the simulator:
	// victims torn down first, admissions (including revived victims)
	// submitted after, both in the round's deterministic order.
	readmitted := 0
	applyRound := func() error {
		known := len(n.Evictions())
		scheduled := n.RunSchedulingRound()
		for _, e := range n.Evictions()[known:] {
			if err := sim.KillTopology(e.Victim); err != nil {
				return fmt.Errorf("kill %q: %w", e.Victim, err)
			}
		}
		for _, name := range scheduled {
			if err := sim.SubmitTopology(topos[name], n.Assignment(name)); err != nil {
				return fmt.Errorf("submit %q: %w", name, err)
			}
		}
		for _, e := range n.Evictions() {
			for _, name := range scheduled {
				if name == e.Victim {
					readmitted++
				}
			}
		}
		return nil
	}

	// t1: the burst — one more batch tenant, then the production tenant
	// (submitted last, so FIFO puts it at the back of the queue).
	if err := sim.RunTo(t1); err != nil {
		return nil, err
	}
	if err := submit(workloads.BatchTenant("batch-e")); err != nil {
		return nil, err
	}
	if err := submit(workloads.ProdTenant(prodPrio)); err != nil {
		return nil, err
	}
	if err := applyRound(); err != nil {
		return nil, err
	}

	// t2: a surviving batch tenant finishes; the next round readmits
	// pending work onto the recovered capacity.
	if err := sim.RunTo(t2); err != nil {
		return nil, err
	}
	if n.Assignment("batch-a") != nil {
		if err := n.KillTopology("batch-a"); err != nil {
			return nil, err
		}
		if err := sim.KillTopology("batch-a"); err != nil {
			return nil, err
		}
	}
	if err := applyRound(); err != nil {
		return nil, err
	}

	res, err := sim.Finish()
	if err != nil {
		return nil, err
	}
	return &tenantRun{result: res, evictions: n.Evictions(), readmitted: readmitted}, nil
}
