package experiments

import (
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
	"rstorm/internal/workloads"
)

// TestCalibrationDebug is a manual calibration aid, enabled with
// RSTORM_CALIBRATE=1. It prints link utilizations and placements for the
// network-bound micro-benchmarks.
func TestCalibrationDebug(t *testing.T) {
	if os.Getenv("RSTORM_CALIBRATE") == "" {
		t.Skip("set RSTORM_CALIBRATE=1 to run")
	}
	c, err := emulab12()
	if err != nil {
		t.Fatal(err)
	}
	cfg := simulator.Config{Duration: 15 * time.Second, MetricsWindow: 5 * time.Second, Seed: 1}

	cases := []struct {
		name  string
		build func() (*topology.Topology, error)
	}{
		{"linear", func() (*topology.Topology, error) { return workloads.LinearTopology(workloads.NetworkBound) }},
		{"diamond", func() (*topology.Topology, error) { return workloads.DiamondTopology(workloads.NetworkBound) }},
		{"star", func() (*topology.Topology, error) { return workloads.StarTopology(workloads.NetworkBound) }},
	}
	for _, tc := range cases {
		for _, sched := range []core.Scheduler{core.EvenScheduler{}, core.NewResourceAwareScheduler()} {
			topo, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			out, err := simulate(c, []*topology.Topology{topo}, sched, cfg)
			if err != nil {
				t.Fatal(err)
			}
			tr := out.result.Topology(topo.Name())
			fmt.Printf("\n== %s / %s: thr=%.0f/window emitted=%d delivered=%d latency=%v nodes=%d\n",
				tc.name, sched.Name(), tr.MeanSinkThroughput, tr.TuplesEmitted, tr.TuplesDelivered,
				tr.MeanLatency, tr.NodesUsed)
			var ids []string
			for id := range out.result.NICUtilization {
				ids = append(ids, string(id))
			}
			sort.Strings(ids)
			for _, id := range ids {
				nu := out.result.NICUtilization[cluster.NodeID(id)]
				if nu > 0.01 {
					fmt.Printf("   nic %-10s util=%.2f\n", id, nu)
				}
			}
			fmt.Printf("   assignment: %s\n", out.assignments[topo.Name()])
		}
	}
}
