package experiments

import (
	"fmt"
	"sync"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/metrics"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
	"rstorm/internal/workloads"
)

// registry is the experiment catalogue, built exactly once: the slice
// keeps paper order (figures, then ablations, then the post-paper
// scenario experiments) and the map indexes it by ID. Constructing every
// experiment on each ByID lookup — what the pre-registry code did — made
// a lookup O(catalogue) in time and allocations, which the parallel
// orchestrator would pay once per matrix cell.
//
//rstorm:global-ok sync.Once-guarded: written once before first read, immutable afterwards
var registry struct {
	once sync.Once
	all  []Experiment
	byID map[string]Experiment
}

func ensureRegistry() {
	registry.once.Do(func() {
		registry.all = []Experiment{
			Fig8a(), Fig8b(), Fig8c(),
			Fig9a(), Fig9b(), Fig9c(),
			Fig10(),
			Fig12a(), Fig12b(),
			Fig13(),
			AblationTaskOrdering(),
			AblationGreedyVsExact(),
			AblationWeights(),
			Elasticity(),
			MemoryStress(),
			Consolidate(),
			MultiTenant(),
			Failover(),
			Observability(),
		}
		registry.byID = make(map[string]Experiment, len(registry.all))
		for _, e := range registry.all {
			registry.byID[e.ID] = e
		}
	})
}

// All returns every figure experiment in paper order, followed by the
// ablations from DESIGN.md and the adaptive-scheduling elasticity figure.
// The returned slice is a fresh copy; callers may reorder it freely.
func All() []Experiment {
	ensureRegistry()
	out := make([]Experiment, len(registry.all))
	copy(out, registry.all)
	return out
}

// ByID returns the experiment with the given ID in O(1), without
// rebuilding the catalogue.
func ByID(id string) (Experiment, bool) {
	ensureRegistry()
	e, ok := registry.byID[id]
	return e, ok
}

func microCfg(o Options) simulator.Config {
	o = o.withDefaults()
	return simulator.Config{
		Duration:      o.Duration,
		MetricsWindow: o.MetricsWindow,
		Seed:          o.Seed,
		Shards:        o.Shards,
	}
}

func emulab12() (*cluster.Cluster, error) { return cluster.Emulab12() }

// Fig8a regenerates Figure 8a: network-bound Linear topology.
func Fig8a() Experiment {
	return Experiment{
		ID:         "fig8a",
		Title:      "Network-bound Linear topology, 12 nodes / 2 racks",
		PaperClaim: "R-Storm ~50% higher throughput than default Storm",
		Run: func(o Options) (*Report, error) {
			c, err := emulab12()
			if err != nil {
				return nil, err
			}
			return throughputComparison("fig8a", "Network-bound Linear topology",
				"R-Storm ~50% higher throughput", c,
				func() (*topology.Topology, error) { return workloads.LinearTopology(workloads.NetworkBound) },
				microCfg(o))
		},
	}
}

// Fig8b regenerates Figure 8b: network-bound Diamond topology.
func Fig8b() Experiment {
	return Experiment{
		ID:         "fig8b",
		Title:      "Network-bound Diamond topology, 12 nodes / 2 racks",
		PaperClaim: "R-Storm ~30% higher throughput than default Storm",
		Run: func(o Options) (*Report, error) {
			c, err := emulab12()
			if err != nil {
				return nil, err
			}
			return throughputComparison("fig8b", "Network-bound Diamond topology",
				"R-Storm ~30% higher throughput", c,
				func() (*topology.Topology, error) { return workloads.DiamondTopology(workloads.NetworkBound) },
				microCfg(o))
		},
	}
}

// Fig8c regenerates Figure 8c: network-bound Star topology.
func Fig8c() Experiment {
	return Experiment{
		ID:         "fig8c",
		Title:      "Network-bound Star topology, 12 nodes / 2 racks",
		PaperClaim: "R-Storm ~47% higher throughput than default Storm",
		Run: func(o Options) (*Report, error) {
			c, err := emulab12()
			if err != nil {
				return nil, err
			}
			return throughputComparison("fig8c", "Network-bound Star topology",
				"R-Storm ~47% higher throughput", c,
				func() (*topology.Topology, error) { return workloads.StarTopology(workloads.NetworkBound) },
				microCfg(o))
		},
	}
}

// Fig9a regenerates Figure 9a: compute-bound Linear topology.
func Fig9a() Experiment {
	return Experiment{
		ID:         "fig9a",
		Title:      "Compute-bound Linear topology, 12 nodes / 2 racks",
		PaperClaim: "R-Storm matches default's throughput using 6 machines instead of 12",
		Run: func(o Options) (*Report, error) {
			c, err := emulab12()
			if err != nil {
				return nil, err
			}
			return throughputComparison("fig9a", "Compute-bound Linear topology",
				"equal throughput on half the machines", c,
				func() (*topology.Topology, error) { return workloads.LinearTopology(workloads.ComputeBound) },
				microCfg(o))
		},
	}
}

// Fig9b regenerates Figure 9b: compute-bound Diamond topology.
func Fig9b() Experiment {
	return Experiment{
		ID:         "fig9b",
		Title:      "Compute-bound Diamond topology, 12 nodes / 2 racks",
		PaperClaim: "R-Storm matches default's throughput using 7 machines instead of 12",
		Run: func(o Options) (*Report, error) {
			c, err := emulab12()
			if err != nil {
				return nil, err
			}
			return throughputComparison("fig9b", "Compute-bound Diamond topology",
				"equal throughput on 7 machines", c,
				func() (*topology.Topology, error) { return workloads.DiamondTopology(workloads.ComputeBound) },
				microCfg(o))
		},
	}
}

// Fig9c regenerates Figure 9c: compute-bound Star topology, where default
// Storm over-utilizes one machine and bottlenecks the whole topology.
func Fig9c() Experiment {
	return Experiment{
		ID:         "fig9c",
		Title:      "Compute-bound Star topology, 12 nodes / 2 racks",
		PaperClaim: "R-Storm higher throughput with ~half the machines; default bottlenecked by one over-utilized node",
		Run: func(o Options) (*Report, error) {
			c, err := emulab12()
			if err != nil {
				return nil, err
			}
			return throughputComparison("fig9c", "Compute-bound Star topology",
				"higher throughput on ~half the machines", c,
				func() (*topology.Topology, error) { return workloads.StarTopology(workloads.ComputeBound) },
				microCfg(o))
		},
	}
}

// Fig10 regenerates Figure 10: the CPU-utilization comparison across the
// three compute-bound micro-benchmarks.
func Fig10() Experiment {
	return Experiment{
		ID:         "fig10",
		Title:      "CPU utilization, compute-bound micro-benchmarks",
		PaperClaim: "R-Storm 69% / 91% / 350% better CPU utilization (Linear / Diamond / Star)",
		Run: func(o Options) (*Report, error) {
			c, err := emulab12()
			if err != nil {
				return nil, err
			}
			report := &Report{
				ID:         "fig10",
				Title:      "CPU utilization of used machines",
				PaperClaim: "R-Storm 69% / 91% / 350% better CPU utilization",
				Window:     microCfg(o).MetricsWindow,
				Series:     map[string][]float64{},
			}
			builders := []struct {
				name  string
				build func() (*topology.Topology, error)
			}{
				{"linear", func() (*topology.Topology, error) { return workloads.LinearTopology(workloads.ComputeBound) }},
				{"diamond", func() (*topology.Topology, error) { return workloads.DiamondTopology(workloads.ComputeBound) }},
				{"star", func() (*topology.Topology, error) { return workloads.StarTopology(workloads.ComputeBound) }},
			}
			for _, b := range builders {
				topoA, err := b.build()
				if err != nil {
					return nil, err
				}
				topoB, err := b.build()
				if err != nil {
					return nil, err
				}
				base, err := simulate(c, []*topology.Topology{topoA}, core.EvenScheduler{}, microCfg(o))
				if err != nil {
					return nil, fmt.Errorf("fig10 %s baseline: %w", b.name, err)
				}
				rs, err := simulate(c, []*topology.Topology{topoB}, core.NewResourceAwareScheduler(), microCfg(o))
				if err != nil {
					return nil, fmt.Errorf("fig10 %s r-storm: %w", b.name, err)
				}
				bu := base.result.MeanUtilizationUsed * 100
				ru := rs.result.MeanUtilizationUsed * 100
				report.Rows = append(report.Rows, Row{
					Label:          b.name + " CPU utilization (%)",
					Baseline:       bu,
					RStorm:         ru,
					ImprovementPct: metrics.ImprovementPct(bu, ru),
				})
			}
			return report, nil
		},
	}
}

// Fig12a regenerates Figure 12a: the Yahoo! PageLoad topology.
func Fig12a() Experiment {
	return Experiment{
		ID:         "fig12a",
		Title:      "Yahoo! PageLoad topology, 12 nodes / 2 racks",
		PaperClaim: "R-Storm ~50% higher throughput than default Storm",
		Run: func(o Options) (*Report, error) {
			c, err := emulab12()
			if err != nil {
				return nil, err
			}
			return throughputComparison("fig12a", "Yahoo! PageLoad topology",
				"R-Storm ~50% higher throughput", c,
				workloads.PageLoadTopology, microCfg(o))
		},
	}
}

// Fig12b regenerates Figure 12b: the Yahoo! Processing topology.
func Fig12b() Experiment {
	return Experiment{
		ID:         "fig12b",
		Title:      "Yahoo! Processing topology, 12 nodes / 2 racks",
		PaperClaim: "R-Storm ~47% higher throughput than default Storm",
		Run: func(o Options) (*Report, error) {
			c, err := emulab12()
			if err != nil {
				return nil, err
			}
			return throughputComparison("fig12b", "Yahoo! Processing topology",
				"R-Storm ~47% higher throughput", c,
				workloads.ProcessingTopology, microCfg(o))
		},
	}
}

// Fig13 regenerates Figure 13: both Yahoo! topologies submitted to one
// 24-node cluster. Default Storm stacks the two topologies' heavy tasks,
// overloading nodes so badly that Processing's tuples exceed the message
// timeout and its measured throughput collapses toward zero.
func Fig13() Experiment {
	return Experiment{
		ID:         "fig13",
		Title:      "Multi-topology: PageLoad + Processing on 24 nodes",
		PaperClaim: "PageLoad +53% (25496 vs 16695 tuples/10s); Processing orders of magnitude better (67115 tuples/10s vs ~10 tuples/s)",
		Run: func(o Options) (*Report, error) {
			o = o.withDefaults()
			c, err := cluster.Emulab24()
			if err != nil {
				return nil, err
			}
			cfg := simulator.Config{
				Duration:      o.Duration,
				MetricsWindow: o.MetricsWindow,
				Seed:          o.Seed,
				TupleTimeout:  2 * time.Second,
				Shards:        o.Shards,
			}
			build := func() ([]*topology.Topology, error) {
				pl, err := workloads.PageLoadTopology()
				if err != nil {
					return nil, err
				}
				pr, err := workloads.ProcessingTopologyScaled(2)
				if err != nil {
					return nil, err
				}
				return []*topology.Topology{pl, pr}, nil
			}
			baseTopos, err := build()
			if err != nil {
				return nil, err
			}
			rsTopos, err := build()
			if err != nil {
				return nil, err
			}
			base, err := simulate(c, baseTopos, core.EvenScheduler{}, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig13 baseline: %w", err)
			}
			rs, err := simulate(c, rsTopos, core.NewResourceAwareScheduler(), cfg)
			if err != nil {
				return nil, fmt.Errorf("fig13 r-storm: %w", err)
			}
			report := &Report{
				ID:         "fig13",
				Title:      "Multi-topology scheduling (PageLoad + Processing)",
				PaperClaim: "PageLoad +53%; Processing collapses to ~zero under default Storm",
				Window:     cfg.MetricsWindow,
				Series:     map[string][]float64{},
			}
			for _, name := range []string{"pageload", "processing"} {
				bt := base.result.Topology(name)
				rt := rs.result.Topology(name)
				report.Series["default/"+name] = bt.SinkSeries
				report.Series["r-storm/"+name] = rt.SinkSeries
				report.Rows = append(report.Rows, Row{
					Label:          fmt.Sprintf("%s throughput (tuples/%s)", name, cfg.MetricsWindow),
					Baseline:       bt.MeanSinkThroughput,
					RStorm:         rt.MeanSinkThroughput,
					ImprovementPct: metrics.ImprovementPct(bt.MeanSinkThroughput, rt.MeanSinkThroughput),
				})
			}
			return report, nil
		},
	}
}
