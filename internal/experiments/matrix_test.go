package experiments

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"rstorm/internal/orchestra"
)

// matrixRender parses and runs a matrix spec at the given worker count,
// returning the merged rendered bytes.
func matrixRender(t *testing.T, spec string, workers int, base Options) string {
	t.Helper()
	parsed, err := orchestra.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	cells, err := MatrixCells(parsed, base)
	if err != nil {
		t.Fatalf("MatrixCells: %v", err)
	}
	res, err := orchestra.Run(context.Background(), cells, orchestra.Options{Workers: workers})
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	if res.Failed() != 0 {
		t.Fatalf("workers=%d: %d cells failed:\n%s", workers, res.Failed(), res.Render())
	}
	return res.Render()
}

// TestMatrixGoldenAcrossWorkerCounts extends the golden-diff harness to
// the orchestrator (the tentpole acceptance criterion): a seed matrix
// over experiments with adaptive control decisions, evictions and chaos
// must render byte-identically at workers ∈ {1, 4, NumCPU}.
func TestMatrixGoldenAcrossWorkerCounts(t *testing.T) {
	const spec = "fig9b,consolidate,failover × seeds=1..2"
	base := goldenOpts()
	want := matrixRender(t, spec, 1, base)
	if !strings.Contains(want, "matrix: 6 cells, 0 failed") {
		t.Fatalf("unexpected serial baseline:\n%s", want)
	}
	counts := []int{4, runtime.NumCPU()}
	for _, workers := range counts {
		if got := matrixRender(t, spec, workers, base); got != want {
			t.Errorf("workers=%d output diverged from serial run:\n--- got ---\n%s\n--- want ---\n%s",
				workers, got, want)
		}
	}
}

// TestMatrixGoldenAcrossShardCounts extends the matrix golden to the
// sharded simulation kernel: the same seed matrix must render
// byte-identically at shards ∈ {1, 2, NumCPU}, pool workers held fixed —
// the kernel's worker count is pure parallelism, never a result knob
// (DESIGN.md §11).
func TestMatrixGoldenAcrossShardCounts(t *testing.T) {
	const spec = "fig9b,consolidate,failover × seeds=1..2"
	opts := goldenOpts()
	opts.Shards = 1
	want := matrixRender(t, spec, 2, opts)
	if !strings.Contains(want, "matrix: 6 cells, 0 failed") {
		t.Fatalf("unexpected shards=1 baseline:\n%s", want)
	}
	for _, shards := range []int{2, runtime.NumCPU()} {
		opts.Shards = shards
		if got := matrixRender(t, spec, 2, opts); got != want {
			t.Errorf("shards=%d output diverged from shards=1:\n--- got ---\n%s\n--- want ---\n%s",
				shards, got, want)
		}
	}
}

// TestRunAllEightWorkers is the race sweep's entry point: the full
// registered suite — every simulator epoch, the adaptive loop, Nimbus
// arbitration, chaos injection, OOM kills — runs concurrently across at
// least 8 workers. Under `go test -race` (the CI race job runs this by
// name) any shared rand source, report buffer, counter registry or pool
// freelist between cells is a hard failure; without -race it still pins
// result completeness and paper ordering.
func TestRunAllEightWorkers(t *testing.T) {
	opts := Options{
		Duration:      2 * time.Second,
		MetricsWindow: 1 * time.Second,
		Seed:          1,
	}
	results, err := RunAll(context.Background(), 8, opts)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	all := All()
	if len(results) != len(all) {
		t.Fatalf("results = %d, want %d", len(results), len(all))
	}
	for i, r := range results {
		if r.ID != all[i].ID {
			t.Errorf("result %d = %s, want %s (paper order)", i, r.ID, all[i].ID)
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.ID, r.Err)
		}
		if r.Report == nil {
			t.Errorf("%s: nil report", r.ID)
		}
	}
}

// TestRunAllCancelled: a pre-cancelled context skips every cell and
// surfaces the cancellation both per-result and from RunAll itself.
func TestRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := RunAll(ctx, 4, goldenOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, r := range results {
		if r.Report != nil {
			// A cell the pool had already dispatched before noticing the
			// cancellation may legitimately finish; none should here with
			// a context cancelled before Run was called, but the hard
			// requirement is that unfinished cells carry the error.
			continue
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", r.ID, r.Err)
		}
	}
}

// TestMatrixCellsUnknownID: resolution rejects IDs the registry does not
// know, naming the offender.
func TestMatrixCellsUnknownID(t *testing.T) {
	spec, err := orchestra.ParseSpec("fig8a,fig99 × seeds=1..2")
	if err != nil {
		t.Fatal(err)
	}
	_, err = MatrixCells(spec, goldenOpts())
	if err == nil || !strings.Contains(err.Error(), `unknown experiment "fig99"`) {
		t.Errorf("err = %v, want unknown experiment fig99", err)
	}
}

// TestMatrixCellsAllExpandsRegistry: "all" multiplies the catalogue in
// paper order by the rest of the matrix.
func TestMatrixCellsAllExpandsRegistry(t *testing.T) {
	spec, err := orchestra.ParseSpec("all × seeds=1..2")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := MatrixCells(spec, goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	all := All()
	if len(cells) != 2*len(all) {
		t.Fatalf("cells = %d, want %d", len(cells), 2*len(all))
	}
	if cells[0].Key != all[0].ID+" seed=1" || cells[1].Key != all[0].ID+" seed=2" {
		t.Errorf("first cells = %q, %q: seeds must vary faster than experiments", cells[0].Key, cells[1].Key)
	}
	if last := cells[len(cells)-1].Key; last != all[len(all)-1].ID+" seed=2" {
		t.Errorf("last cell = %q", last)
	}
}

// TestMatrixKnobsOverrideBase: a knob the spec sets replaces the base
// option for that cell; unset knobs inherit it.
func TestMatrixKnobsOverrideBase(t *testing.T) {
	spec, err := orchestra.ParseSpec("fig9b × seeds=7 × duration=4s × window=2s")
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Duration: time.Hour, MetricsWindow: time.Minute, Seed: 1}
	cells, err := MatrixCells(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(cells))
	}
	if cells[0].Key != "fig9b seed=7 duration=4s window=2s" {
		t.Errorf("key = %q", cells[0].Key)
	}
	out, err := cells[0].Run(context.Background())
	if err != nil {
		t.Fatalf("cell run: %v", err)
	}
	// The 2s window shows up in the report's throughput label — proof the
	// spec's knobs (not base's hour-long run) reached the simulator.
	if !strings.Contains(out, "throughput (tuples/2s)") {
		t.Errorf("cell output not produced under the spec's window:\n%s", out)
	}
}
