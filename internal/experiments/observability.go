package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"time"

	"rstorm/internal/adaptive"
	"rstorm/internal/core"
	"rstorm/internal/faults"
	"rstorm/internal/simulator"
	"rstorm/internal/trace"
)

// traceSampleEvery is the observability experiment's deterministic
// sampling stride: every 17th spout emission carries a trace context.
const traceSampleEvery = 17

// Observability regenerates the zero-perturbation claim of DESIGN.md §8:
// the same chaos scenario run twice — once bare, once with the full
// observability layer (latency histograms, sampled tracing, decision
// journal) — must produce identical throughput, and the layer's own
// outputs must be deterministic. The report columns are "default" = the
// bare run and "r-storm" = the instrumented run: the first rows must
// agree exactly (observation does not perturb the experiment), and the
// digest rows pin the journal and span-tree bytes so the golden-diff
// harness catches any nondeterminism in the trace layer itself.
func Observability() Experiment {
	return Experiment{
		ID:    "observability",
		Title: "Observability layer: zero perturbation, deterministic traces",
		PaperClaim: "(beyond the paper: latency histograms, tuple tracing and the decision " +
			"journal observe a chaos run without changing it — identical throughput with " +
			"the layer on, and byte-stable trace output for a fixed seed)",
		Run: runObservability,
	}
}

// observedOutcome is one chaos run plus whatever the observability layer
// captured (zero values for the bare run).
type observedOutcome struct {
	result    *simulator.Result
	spans     int
	trees     int
	journaled int
	// jsonlDigest and treeDigest are FNV-32a digests of the journal's
	// JSONL export and the rendered span trees.
	jsonlDigest float64
	treeDigest  float64
}

// runObservedChaos executes the failover chaos scenario under the
// adaptive loop, optionally with the full observability layer attached.
func runObservedChaos(o Options, observed bool) (*observedOutcome, error) {
	c, err := emulab12()
	if err != nil {
		return nil, err
	}
	topo, err := chainTopology()
	if err != nil {
		return nil, err
	}
	// Options.Shards is deliberately not threaded here: this experiment
	// attaches the decision journal and tuple tracer, which require the
	// single-ordered-loop legacy kernel (simulator.Config.Shards == 0).
	cfg := simulator.Config{
		Duration:      o.Duration,
		MetricsWindow: failoverWindow,
		Seed:          o.Seed,
		Replay:        true,
	}
	if observed {
		cfg.LatencyHistograms = true
		cfg.TraceSampleEvery = traceSampleEvery
	}

	sched := core.NewResourceAwareScheduler()
	state := core.NewGlobalState(c)
	a, err := sched.Schedule(topo, c, state)
	if err != nil {
		return nil, fmt.Errorf("scheduling %q: %w", topo.Name(), err)
	}
	if err := state.Apply(topo, a); err != nil {
		return nil, fmt.Errorf("apply %q: %w", topo.Name(), err)
	}
	sim, err := simulator.New(c, cfg)
	if err != nil {
		return nil, err
	}
	if err := sim.AddTopology(topo, a); err != nil {
		return nil, err
	}
	victim := busiestNode(topo, a)
	schedule := faults.Schedule{
		{Kind: faults.Crash, Node: victim, At: o.Duration / 3},
		{Kind: faults.Recover, Node: victim, At: 2 * o.Duration / 3},
	}
	if err := schedule.Apply(sim); err != nil {
		return nil, err
	}
	var journal *trace.Journal
	loopCfg := adaptive.LoopConfig{FlapDamping: failoverFlapDamping}
	if observed {
		journal = trace.NewJournal(0)
		if err := sim.SetJournal(journal); err != nil {
			return nil, err
		}
		loopCfg.Journal = journal
	}
	loop := adaptive.NewLoop(sim, c, sched, loopCfg)
	if err := loop.Manage(topo, a); err != nil {
		return nil, err
	}
	lr, err := loop.Run()
	if err != nil {
		return nil, err
	}
	out := &observedOutcome{result: lr.Result}
	if observed {
		tracer := sim.Tracer()
		trees := tracer.Trees()
		out.spans = len(tracer.Spans())
		out.trees = len(trees)
		out.journaled = journal.Len()
		var jsonl strings.Builder
		if err := journal.WriteJSONL(&jsonl); err != nil {
			return nil, err
		}
		out.jsonlDigest = fnvDigest(jsonl.String())
		out.treeDigest = fnvDigest(trace.RenderTrees(trees))
	}
	return out, nil
}

func runObservability(o Options) (*Report, error) {
	o = o.withDefaults()
	bare, err := runObservedChaos(o, false)
	if err != nil {
		return nil, fmt.Errorf("observability bare: %w", err)
	}
	full, err := runObservedChaos(o, true)
	if err != nil {
		return nil, fmt.Errorf("observability instrumented: %w", err)
	}

	name := "chain"
	bareTR := bare.result.Topology(name)
	fullTR := full.result.Topology(name)
	unit := fmt.Sprintf("throughput (tuples/%s)", failoverWindow)
	return &Report{
		ID:    "observability",
		Title: "Observability layer: zero perturbation, deterministic traces",
		PaperClaim: "identical throughput with the layer on; trace and journal " +
			"output byte-stable for a fixed seed",
		Window: failoverWindow,
		Series: map[string][]float64{
			"bare":         bareTR.SinkSeries,
			"instrumented": fullTR.SinkSeries,
		},
		Rows: []Row{
			{
				// Must be exactly equal: observation does not perturb.
				Label:    unit + ": bare vs instrumented",
				Baseline: bareTR.MeanSinkThroughput,
				RStorm:   fullTR.MeanSinkThroughput,
			},
			{
				Label:    "tuples delivered: bare vs instrumented",
				Baseline: float64(bareTR.TuplesDelivered),
				RStorm:   float64(fullTR.TuplesDelivered),
			},
			{
				Label:    "mean latency (ms): bare vs instrumented",
				Baseline: float64(bareTR.MeanLatency) / float64(time.Millisecond),
				RStorm:   float64(fullTR.MeanLatency) / float64(time.Millisecond),
			},
			{
				// Only the instrumented run can see its own tail.
				Label:  "p99 latency (ms), histogram-quantized",
				RStorm: float64(fullTR.LatencyP99) / float64(time.Millisecond),
			},
			{
				Label:  fmt.Sprintf("spans recorded (1-in-%d sampling)", traceSampleEvery),
				RStorm: float64(full.spans),
			},
			{
				Label:  "span trees reconstructed",
				RStorm: float64(full.trees),
			},
			{
				Label:  "journal events (loop + simulator)",
				RStorm: float64(full.journaled),
			},
			{
				Label:  "journal JSONL digest (fnv32a)",
				RStorm: full.jsonlDigest,
			},
			{
				Label:  "span-tree render digest (fnv32a)",
				RStorm: full.treeDigest,
			},
		},
	}, nil
}

// fnvDigest hashes a string with FNV-32a; the 32-bit result is exactly
// representable as a float64, so it can ride in a report Row.
func fnvDigest(s string) float64 {
	h := fnv.New32a()
	_, _ = io.WriteString(h, s)
	return float64(h.Sum32())
}
