// Package experiments regenerates every figure of the paper's evaluation
// (§6): it schedules the benchmark workloads with default Storm and with
// R-Storm, executes both on the simulator, and reports the comparison the
// corresponding figure makes. cmd/rstorm-bench and the repository-level
// benchmarks are thin wrappers around this package.
package experiments

import (
	"fmt"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/metrics"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
)

// Options tunes experiment execution. Zero values take defaults that keep
// a full figure run in the tens of seconds of wall-clock time.
type Options struct {
	// Duration is the simulated time per run. Default 30s.
	Duration time.Duration
	// MetricsWindow is the throughput bucket. Default 10s (the paper's
	// reporting unit).
	MetricsWindow time.Duration
	// Seed drives the simulator RNG. Default 1.
	Seed int64
	// Percentiles turns on the simulator's latency histograms
	// (simulator.Config.LatencyHistograms) in experiments that support
	// them, adding latency-percentile rows to the report. Off by default;
	// leaving it off keeps every report byte-identical to before the
	// observability layer existed.
	Percentiles bool
	// Shards selects the simulator kernel (simulator.Config.Shards): 0
	// runs the legacy single-threaded kernel; >= 1 runs the sharded
	// conservative-parallel kernel on that many workers. Sharded results
	// are identical for every Shards >= 1, so reports vary only between
	// the two kernels, never across worker counts. Experiments that
	// require the single-ordered-loop observability path (the journal)
	// ignore it.
	Shards int
}

func (o Options) withDefaults() Options {
	if o.Duration == 0 {
		o.Duration = 30 * time.Second
	}
	if o.MetricsWindow == 0 {
		o.MetricsWindow = 10 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Row is one measured comparison within a figure.
type Row struct {
	// Label names the quantity, e.g. "throughput (tuples/10s)".
	Label string
	// Baseline is default Storm's measurement; RStorm is R-Storm's.
	Baseline float64
	RStorm   float64
	// ImprovementPct is how much better R-Storm is, in percent.
	ImprovementPct float64
}

// Report is a regenerated figure.
type Report struct {
	// ID is the figure identifier, e.g. "fig8a".
	ID string
	// Title describes the experiment.
	Title string
	// PaperClaim quotes what the paper reports for this figure.
	PaperClaim string
	// Rows are the summary comparisons.
	Rows []Row
	// Series holds named throughput timelines (tuples per window) for
	// timeline figures; keys are like "default" and "r-storm".
	Series map[string][]float64
	// Window is the bucket duration of Series.
	Window time.Duration
}

// Experiment is a runnable figure regeneration.
type Experiment struct {
	// ID is the figure identifier ("fig8a" … "fig13", "ablationA" …).
	ID string
	// Title describes the workload and setting.
	Title string
	// PaperClaim quotes the paper's reported result.
	PaperClaim string
	// Run executes the experiment.
	Run func(Options) (*Report, error)
}

// runSpec describes one scheduler's execution of a set of topologies.
type runSpec struct {
	name      string
	scheduler core.Scheduler
}

// outcome bundles a finished simulation with its assignments.
type outcome struct {
	result      *simulator.Result
	assignments map[string]*core.Assignment
}

// simulate schedules topos in order with the given scheduler (applying
// each assignment to shared state, as Nimbus would) and runs them together.
func simulate(
	c *cluster.Cluster,
	topos []*topology.Topology,
	sched core.Scheduler,
	cfg simulator.Config,
) (*outcome, error) {
	state := core.NewGlobalState(c)
	sim, err := simulator.New(c, cfg)
	if err != nil {
		return nil, err
	}
	assignments := make(map[string]*core.Assignment, len(topos))
	for _, topo := range topos {
		a, err := sched.Schedule(topo, c, state)
		if err != nil {
			return nil, fmt.Errorf("%s scheduling %q: %w", sched.Name(), topo.Name(), err)
		}
		if err := state.Apply(topo, a); err != nil {
			return nil, fmt.Errorf("apply %q: %w", topo.Name(), err)
		}
		if err := sim.AddTopology(topo, a); err != nil {
			return nil, fmt.Errorf("add %q: %w", topo.Name(), err)
		}
		assignments[topo.Name()] = a
	}
	result, err := sim.Run()
	if err != nil {
		return nil, err
	}
	return &outcome{result: result, assignments: assignments}, nil
}

// throughputComparison builds the standard single-topology figure: one
// throughput row plus nodes-used and utilization rows, with both timelines.
func throughputComparison(
	id, title, claim string,
	c *cluster.Cluster,
	build func() (*topology.Topology, error),
	cfg simulator.Config,
) (*Report, error) {
	topoA, err := build()
	if err != nil {
		return nil, err
	}
	topoB, err := build()
	if err != nil {
		return nil, err
	}
	base, err := simulate(c, []*topology.Topology{topoA}, core.EvenScheduler{}, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s baseline: %w", id, err)
	}
	rstorm, err := simulate(c, []*topology.Topology{topoB}, core.NewResourceAwareScheduler(), cfg)
	if err != nil {
		return nil, fmt.Errorf("%s r-storm: %w", id, err)
	}
	bt := base.result.Topology(topoA.Name())
	rt := rstorm.result.Topology(topoB.Name())
	report := &Report{
		ID:         id,
		Title:      title,
		PaperClaim: claim,
		Window:     cfg.MetricsWindow,
		Series: map[string][]float64{
			"default": bt.SinkSeries,
			"r-storm": rt.SinkSeries,
		},
		Rows: []Row{
			{
				Label:          fmt.Sprintf("throughput (tuples/%s)", cfg.MetricsWindow),
				Baseline:       bt.MeanSinkThroughput,
				RStorm:         rt.MeanSinkThroughput,
				ImprovementPct: metrics.ImprovementPct(bt.MeanSinkThroughput, rt.MeanSinkThroughput),
			},
			{
				Label:          "nodes used",
				Baseline:       float64(bt.NodesUsed),
				RStorm:         float64(rt.NodesUsed),
				ImprovementPct: metrics.ImprovementPct(float64(bt.NodesUsed), float64(rt.NodesUsed)),
			},
			{
				Label:          "mean CPU utilization of used nodes (%)",
				Baseline:       base.result.MeanUtilizationUsed * 100,
				RStorm:         rstorm.result.MeanUtilizationUsed * 100,
				ImprovementPct: metrics.ImprovementPct(base.result.MeanUtilizationUsed, rstorm.result.MeanUtilizationUsed),
			},
		},
	}
	return report, nil
}
