// Package viz renders simple ASCII charts for experiment reports: multi-
// series line charts for throughput timelines (the paper's Fig. 8/9/12/13)
// and bar charts for utilization comparisons (Fig. 10).
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// seriesMarks are the glyphs assigned to series in order (all ASCII, so
// byte indexing is safe).
const seriesMarks = "*o+x#@%&"

// LineChart renders the series into a width x height ASCII plot with a
// y-axis scale and a legend. Series longer than width are downsampled.
func LineChart(title string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	maxVal := 0.0
	maxLen := 0
	for _, s := range series {
		for _, v := range s.Values {
			if v > maxVal {
				maxVal = v
			}
		}
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if maxLen == 0 || maxVal == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}

	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for si, s := range series {
		mark := rune(seriesMarks[si%len(seriesMarks)])
		for x := 0; x < width; x++ {
			// Map column to series index (downsample or stretch).
			idx := x * maxLen / width
			if idx >= len(s.Values) {
				continue
			}
			v := s.Values[idx]
			y := int(math.Round(v / maxVal * float64(height-1)))
			row := height - 1 - y
			if row < 0 {
				row = 0
			}
			if grid[row][x] == ' ' || grid[row][x] == mark {
				grid[row][x] = mark
			} else {
				grid[row][x] = '!'
			}
		}
	}

	for i, row := range grid {
		yVal := maxVal * float64(height-1-i) / float64(height-1)
		fmt.Fprintf(&b, "%10.0f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarks[si%len(seriesMarks)], s.Name))
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", strings.Join(legend, "   "))
	return b.String()
}

// BarChart renders labeled value pairs (baseline vs comparison) as
// horizontal bars scaled to the largest value.
func BarChart(title string, labels []string, baseline, comparison []float64, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	maxVal := 0.0
	labelW := 0
	for i, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
		if i < len(baseline) && baseline[i] > maxVal {
			maxVal = baseline[i]
		}
		if i < len(comparison) && comparison[i] > maxVal {
			maxVal = comparison[i]
		}
	}
	if maxVal == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	bar := func(v float64) string {
		n := int(math.Round(v / maxVal * float64(width)))
		if n < 0 {
			n = 0
		}
		return strings.Repeat("█", n)
	}
	for i, l := range labels {
		var base, comp float64
		if i < len(baseline) {
			base = baseline[i]
		}
		if i < len(comparison) {
			comp = comparison[i]
		}
		fmt.Fprintf(&b, "%-*s default %10.1f |%s\n", labelW, l, base, bar(base))
		fmt.Fprintf(&b, "%-*s r-storm %10.1f |%s\n", labelW, "", comp, bar(comp))
	}
	return b.String()
}
