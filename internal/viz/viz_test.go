package viz

import (
	"strings"
	"testing"
)

func TestLineChartRendersSeries(t *testing.T) {
	out := LineChart("throughput", []Series{
		{Name: "default", Values: []float64{10, 20, 30}},
		{Name: "r-storm", Values: []float64{20, 40, 60}},
	}, 30, 8)
	if !strings.Contains(out, "throughput") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "default") || !strings.Contains(out, "r-storm") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing series marks")
	}
	// y-axis max equals the max value.
	if !strings.Contains(out, "60") {
		t.Errorf("missing y scale:\n%s", out)
	}
}

func TestLineChartEmpty(t *testing.T) {
	out := LineChart("empty", nil, 30, 8)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart = %q", out)
	}
	out = LineChart("zeros", []Series{{Name: "z", Values: []float64{0, 0}}}, 30, 8)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("zero chart = %q", out)
	}
}

func TestLineChartClampsTinyDimensions(t *testing.T) {
	out := LineChart("tiny", []Series{{Name: "s", Values: []float64{1, 2}}}, 1, 1)
	if out == "" {
		t.Fatal("no output")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + >=4 rows + axis + legend
	if len(lines) < 6 {
		t.Errorf("too few lines: %d\n%s", len(lines), out)
	}
}

func TestLineChartDownsamplesLongSeries(t *testing.T) {
	values := make([]float64, 1000)
	for i := range values {
		values[i] = float64(i)
	}
	out := LineChart("long", []Series{{Name: "s", Values: values}}, 40, 8)
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 40+14 { // width + y-axis label margin
			t.Errorf("line too long (%d): %q", len(line), line)
		}
	}
}

func TestLineChartCollisionMark(t *testing.T) {
	// Two series with identical values collide onto the same cells; the
	// chart must still render (either mark or the collision glyph).
	out := LineChart("collide", []Series{
		{Name: "a", Values: []float64{5, 5, 5}},
		{Name: "b", Values: []float64{5, 5, 5}},
	}, 20, 6)
	if !strings.Contains(out, "!") && !strings.Contains(out, "*") {
		t.Errorf("collision rendering missing:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("utilization", []string{"linear", "diamond"},
		[]float64{50, 30}, []float64{100, 60}, 20)
	if !strings.Contains(out, "utilization") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "linear") || !strings.Contains(out, "diamond") {
		t.Error("missing labels")
	}
	if !strings.Contains(out, "█") {
		t.Error("missing bars")
	}
	if !strings.Contains(out, "100.0") {
		t.Error("missing values")
	}
}

func TestBarChartEmpty(t *testing.T) {
	out := BarChart("none", nil, nil, nil, 20)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty bar chart = %q", out)
	}
}

func TestBarChartMismatchedLengths(t *testing.T) {
	// Shorter value slices must not panic; missing entries render as 0.
	out := BarChart("odd", []string{"a", "b", "c"}, []float64{10}, []float64{5, 6}, 10)
	if !strings.Contains(out, "c") {
		t.Errorf("labels lost: %q", out)
	}
}
