package orchestra

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolBoundsWorkers pins the bounded-pool invariant: with Workers=4,
// at most 4 cells are ever in flight at once, and every cell still runs.
func TestPoolBoundsWorkers(t *testing.T) {
	const cells, workers = 32, 4
	var inFlight, peak, ran atomic.Int64
	in := make([]Cell, cells)
	for i := range in {
		in[i] = Cell{
			Key: fmt.Sprintf("cell-%d", i),
			Run: func(context.Context) (string, error) {
				n := inFlight.Add(1)
				defer inFlight.Add(-1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				ran.Add(1)
				return "ok", nil
			},
		}
	}
	res, err := Run(context.Background(), in, Options{Workers: workers})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := ran.Load(); got != cells {
		t.Errorf("ran %d cells, want %d", got, cells)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak in-flight cells = %d, want <= %d", p, workers)
	}
	if res.Failed() != 0 {
		t.Errorf("Failed() = %d, want 0", res.Failed())
	}
}

// TestWorkersDefaultAndClamp: Workers<=0 falls back to NumCPU, and a
// pool larger than the matrix still runs every cell exactly once.
func TestWorkersDefaultAndClamp(t *testing.T) {
	for _, workers := range []int{0, -3, 100} {
		var ran atomic.Int64
		in := make([]Cell, 5)
		for i := range in {
			in[i] = Cell{Key: fmt.Sprintf("c%d", i), Run: func(context.Context) (string, error) {
				ran.Add(1)
				return "", nil
			}}
		}
		if _, err := Run(context.Background(), in, Options{Workers: workers}); err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if got := ran.Load(); got != 5 {
			t.Errorf("Workers=%d: ran %d cells, want 5", workers, got)
		}
	}
}

// TestCancellationMidMatrix: cancelling the context stops dispatch —
// in-flight cells finish, never-dispatched cells come back skipped with
// the context's error, and Run reports the cancellation.
func TestCancellationMidMatrix(t *testing.T) {
	const cells, workers = 8, 2
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, cells)
	release := make(chan struct{})
	in := make([]Cell, cells)
	for i := range in {
		in[i] = Cell{
			Key: fmt.Sprintf("cell-%d", i),
			Run: func(context.Context) (string, error) {
				started <- struct{}{}
				<-release
				return "done", nil
			},
		}
	}
	var (
		res *Results
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err = Run(ctx, in, Options{Workers: workers})
	}()
	// Let both workers pick up a cell, then cancel and release them.
	<-started
	<-started
	cancel()
	close(release)
	wg.Wait()

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	var finished, skipped int
	for _, c := range res.Cells {
		switch {
		case c.Skipped:
			skipped++
			if !errors.Is(c.Err, context.Canceled) {
				t.Errorf("skipped cell %s carries %v, want context.Canceled", c.Key, c.Err)
			}
		case c.Err == nil && c.Output == "done":
			finished++
		default:
			t.Errorf("cell %s in impossible state: %+v", c.Key, c)
		}
	}
	if finished == 0 || skipped == 0 {
		t.Errorf("finished=%d skipped=%d, want both nonzero (cancellation mid-matrix)", finished, skipped)
	}
	if res.Failed() != skipped {
		t.Errorf("Failed() = %d, want %d (skipped cells carry the cancellation error)", res.Failed(), skipped)
	}
}

// TestPanicIsolation: a panicking cell fails that cell, not the suite.
func TestPanicIsolation(t *testing.T) {
	in := []Cell{
		{Key: "good-1", Run: func(context.Context) (string, error) { return "one", nil }},
		{Key: "bad", Run: func(context.Context) (string, error) { panic("index out of range [12]") }},
		{Key: "good-2", Run: func(context.Context) (string, error) { return "two", nil }},
	}
	res, err := Run(context.Background(), in, Options{Workers: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Cells[0].Err != nil || res.Cells[0].Output != "one" {
		t.Errorf("good-1: %+v", res.Cells[0])
	}
	if res.Cells[2].Err != nil || res.Cells[2].Output != "two" {
		t.Errorf("good-2: %+v", res.Cells[2])
	}
	if res.Cells[1].Err == nil || !strings.Contains(res.Cells[1].Err.Error(), "cell panicked: index out of range [12]") {
		t.Errorf("bad cell error = %v, want the recovered panic value", res.Cells[1].Err)
	}
	if res.Failed() != 1 {
		t.Errorf("Failed() = %d, want 1", res.Failed())
	}
	out := res.Render()
	if !strings.Contains(out, "error: cell panicked") || !strings.Contains(out, "matrix: 3 cells, 1 failed") {
		t.Errorf("Render missing failure report:\n%s", out)
	}
}

// jitterCells builds a matrix whose cells finish in scrambled order —
// each sleeps a seeded pseudo-random time — so completion order differs
// from matrix order whenever workers > 1.
func jitterCells(n int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{
			Key: fmt.Sprintf("cell-%03d", i),
			Run: func(context.Context) (string, error) {
				rng := rand.New(rand.NewSource(int64(i) * 7919))
				time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
				if i%7 == 3 {
					return "", fmt.Errorf("seeded failure in cell %03d", i)
				}
				return fmt.Sprintf("output of cell %03d: %d\n", i, rng.Int63()), nil
			},
		}
	}
	return cells
}

// TestDeterministicMergeAcrossWorkerCounts is the orchestrator's own
// golden-diff property: the rendered results must be byte-identical for
// workers ∈ {1, 4, 16} even though completion order is scrambled.
func TestDeterministicMergeAcrossWorkerCounts(t *testing.T) {
	base, err := Run(context.Background(), jitterCells(40), Options{Workers: 1})
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	want := base.Render()
	if !strings.Contains(want, "matrix: 40 cells, 6 failed") {
		t.Fatalf("unexpected baseline summary:\n%s", want)
	}
	for _, workers := range []int{4, 16} {
		res, err := Run(context.Background(), jitterCells(40), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := res.Render(); got != want {
			t.Errorf("workers=%d render diverged from workers=1:\n--- got ---\n%s\n--- want ---\n%s", workers, got, want)
		}
	}
}

// TestEmptyMatrix: no cells is a valid (empty) run, not a hang.
func TestEmptyMatrix(t *testing.T) {
	res, err := Run(context.Background(), nil, Options{Workers: 8})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Cells) != 0 || res.Failed() != 0 {
		t.Errorf("empty matrix: %+v", res)
	}
	if got := res.Render(); !strings.Contains(got, "matrix: 0 cells, 0 failed") {
		t.Errorf("Render = %q", got)
	}
}

// TestRenderSkipped: skipped cells render distinctly from failed ones
// and are counted separately in the summary.
func TestRenderSkipped(t *testing.T) {
	res := &Results{Cells: []CellResult{
		{Key: "a", Output: "ran\n"},
		{Key: "b", Err: context.Canceled, Skipped: true},
	}}
	out := res.Render()
	for _, want := range []string{"--- cell a ---", "ran", "--- cell b ---", "skipped: context canceled", "matrix: 2 cells, 0 failed, 1 skipped"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}
