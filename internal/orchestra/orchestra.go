// Package orchestra is the embarrassingly parallel scenario orchestrator
// (DESIGN.md §10): it evaluates experiment matrices — {experiments ×
// seeds × policy knobs} — across a bounded pool of worker goroutines and
// merges the results deterministically.
//
// The package is deliberately generic: a Cell is any function producing
// rendered output, so the pool knows nothing about the experiment
// registry (internal/experiments adapts its catalogue onto cells; the
// import points from experiments to orchestra, never back). Three
// invariants make massed runs safe and reproducible:
//
//   - Isolation: a cell owns everything it touches. Every simulator
//     instance, RNG, freelist, profiler, journal and report buffer is
//     constructed inside the cell's Run and never escapes it. Package
//     orchestra itself holds no mutable package-level state (enforced
//     statically by rstorm-lint's globalvar check).
//   - Deterministic merge: results land in a slice indexed by matrix
//     position, so Render output is byte-identical regardless of worker
//     count or completion order. Nothing in a result may depend on wall
//     time or on which worker ran it.
//   - Failure containment: a cell that returns an error or panics fails
//     that cell alone; the rest of the matrix still runs. Cancelling the
//     context stops dispatch — in-flight cells finish, undispatched
//     cells are marked skipped.
package orchestra

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
)

// Cell is one unit of work in a matrix: a key naming the cell in the
// results and a function producing its rendered output. Run must be
// self-contained (see the isolation invariant above) and deterministic
// in its output bytes.
type Cell struct {
	Key string
	Run func(ctx context.Context) (string, error)
}

// Options tunes a matrix run.
type Options struct {
	// Workers bounds the goroutine pool. <= 0 means runtime.NumCPU().
	Workers int
}

// CellResult is one cell's outcome, stored at the cell's matrix position.
type CellResult struct {
	Key    string
	Output string
	Err    error
	// Skipped marks a cell that was never dispatched because the context
	// was cancelled first; Err then carries the context's error.
	Skipped bool
}

// Results is the deterministic results store: Cells is in matrix order,
// independent of worker count and completion order.
type Results struct {
	Cells []CellResult
}

// Run evaluates the cells across a pool of at most opts.Workers
// goroutines. It returns results for every cell, in input order; the
// error is non-nil only when ctx was cancelled (per-cell failures are
// reported in the results, not here).
func Run(ctx context.Context, cells []Cell, opts Options) (*Results, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	res := &Results{Cells: make([]CellResult, len(cells))}
	if len(cells) == 0 {
		return res, ctx.Err()
	}

	// Workers pull cell indices from the channel and write their result
	// into the slot the index names — the only write to that slot, and
	// the WaitGroup join below publishes it before Run returns.
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res.Cells[i] = runCell(ctx, cells[i])
			}
		}()
	}

	// Dispatch in matrix order, stopping at cancellation. The order cells
	// *start* in is irrelevant to the output — only the slot they land in
	// matters — but in-order dispatch keeps worker=1 runs identical to a
	// serial loop.
	next := 0
dispatch:
	for ; next < len(cells); next++ {
		select {
		case idx <- next:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	for i := next; i < len(cells); i++ {
		res.Cells[i] = CellResult{Key: cells[i].Key, Err: ctx.Err(), Skipped: true}
	}
	return res, ctx.Err()
}

// runCell executes one cell, converting a panic into that cell's error:
// one bad cell must not take down the suite (or the process).
func runCell(ctx context.Context, c Cell) (r CellResult) {
	r.Key = c.Key
	defer func() {
		if p := recover(); p != nil {
			// The panic value alone, no stack: goroutine IDs in a stack
			// trace would vary with worker count and break the
			// byte-identical merge.
			r.Err = fmt.Errorf("cell panicked: %v", p)
		}
	}()
	r.Output, r.Err = c.Run(ctx)
	return r
}

// Failed counts cells that errored (skipped cells included: they carry
// the cancellation error).
func (r *Results) Failed() int {
	n := 0
	for _, c := range r.Cells {
		if c.Err != nil {
			n++
		}
	}
	return n
}

// Render formats the merged results in matrix order: each cell's output
// under a banner naming it, then a summary line. The bytes depend only
// on the cells' outputs — never on worker count, completion order, or
// wall time.
func (r *Results) Render() string {
	var b strings.Builder
	skipped := 0
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "--- cell %s ---\n", c.Key)
		switch {
		case c.Skipped:
			fmt.Fprintf(&b, "skipped: %v\n", c.Err)
			skipped++
		case c.Err != nil:
			fmt.Fprintf(&b, "error: %v\n", c.Err)
		default:
			b.WriteString(c.Output)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "matrix: %d cells, %d failed", len(r.Cells), r.Failed()-skipped)
	if skipped > 0 {
		fmt.Fprintf(&b, ", %d skipped", skipped)
	}
	b.WriteString("\n")
	return b.String()
}
