package orchestra

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseSpecGrammar(t *testing.T) {
	tests := []struct {
		in   string
		want Spec
	}{
		{"failover", Spec{IDs: []string{"failover"}}},
		{"failover,consolidate × seeds=1..4", Spec{
			IDs:   []string{"failover", "consolidate"},
			Seeds: []int64{1, 2, 3, 4},
		}},
		{"fig8a x seeds=2,5,9", Spec{
			IDs:   []string{"fig8a"},
			Seeds: []int64{2, 5, 9},
		}},
		{"all × seeds=1..2 × duration=6s,12s × window=2s", Spec{
			IDs:       []string{"all"},
			Seeds:     []int64{1, 2},
			Durations: []time.Duration{6 * time.Second, 12 * time.Second},
			Windows:   []time.Duration{2 * time.Second},
		}},
		// The cross may be glued to its operands.
		{"fig8a ×seeds=3", Spec{IDs: []string{"fig8a"}, Seeds: []int64{3}}},
		{"fig8a×seeds=3", Spec{IDs: []string{"fig8a"}, Seeds: []int64{3}}},
	}
	for _, tc := range tests {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(*got, tc.want) {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, *got, tc.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	tests := []struct {
		in      string
		wantErr string
	}{
		{"", "empty matrix spec"},
		{"   ", "empty matrix spec"},
		{"× seeds=1", "empty term"},
		{"fig8a × × seeds=1", "empty term"},
		{"fig8a ×", "empty term"},
		{"seeds=1..4", "first term must name experiments"},
		{"fig8a, × seeds=1", "empty experiment ID"},
		{"fig8a × seeds=4..1", "descending"},
		{"fig8a × seeds=0..4", "out of range"},
		{"fig8a × seeds=zero", "bad seed"},
		{"fig8a × seeds=", "not key=values"},
		{"fig8a × colour=blue", "unknown knob"},
		{"fig8a × seeds=1 × seeds=2", "duplicate seeds term"},
		{"fig8a × duration=1s × duration=2s", "duplicate duration term"},
		{"fig8a × window=2s × window=4s", "duplicate window term"},
		{"fig8a × duration=fast", "bad duration"},
		{"fig8a × duration=-3s", "out of range"},
		{"fig8a × window=0s", "out of range"},
		{"fig8a fig8b × seeds=1", "not separated by ×"},
	}
	for _, tc := range tests {
		_, err := ParseSpec(tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseSpec(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
		}
	}
}

// TestSpecCellsMatrixOrder pins the row-major expansion order — the
// deterministic merge key: experiments vary slowest, then seeds, then
// durations, then windows.
func TestSpecCellsMatrixOrder(t *testing.T) {
	spec := &Spec{
		IDs:       []string{"a", "b"},
		Seeds:     []int64{1, 2},
		Durations: []time.Duration{time.Second},
		Windows:   nil, // unset: single zero value
	}
	var keys []string
	for _, c := range spec.Cells() {
		keys = append(keys, c.Key())
	}
	want := []string{
		"a seed=1 duration=1s",
		"a seed=2 duration=1s",
		"b seed=1 duration=1s",
		"b seed=2 duration=1s",
	}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("Cells() order = %v, want %v", keys, want)
	}
}

// TestSpecCellsDefaults: a spec with only IDs expands to one cell per ID
// with every knob unset, and the key omits unset knobs.
func TestSpecCellsDefaults(t *testing.T) {
	spec := &Spec{IDs: []string{"failover"}}
	cells := spec.Cells()
	if len(cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(cells))
	}
	c := cells[0]
	if c.Seed != 0 || c.Duration != 0 || c.Window != 0 {
		t.Errorf("unset knobs not zero: %+v", c)
	}
	if c.Key() != "failover" {
		t.Errorf("Key() = %q, want bare ID for unset knobs", c.Key())
	}
}
