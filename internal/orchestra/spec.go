package orchestra

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// A Spec is a parsed experiment-matrix description. The grammar (one
// line, whitespace-separated terms joined by the cross operator):
//
//	spec     := ids ( "×" term )*          ("x" is accepted for "×")
//	ids      := "all" | id ("," id)*
//	term     := "seeds=" ints | "duration=" durs | "window=" durs
//	ints     := int ".." int | int ("," int)*
//	durs     := dur ("," dur)*             (Go duration syntax: "6s")
//
// Examples:
//
//	"failover,consolidate × seeds=1..16"
//	"all × seeds=1,3,5 × duration=6s,12s"
//
// The first term always names the experiments; ID validity is checked at
// resolution time by the caller (orchestra does not know the registry).
// Every later term multiplies the matrix. Omitted terms contribute a
// single unset value, which resolution replaces with the caller's
// defaults.
type Spec struct {
	IDs       []string
	Seeds     []int64
	Durations []time.Duration
	Windows   []time.Duration
}

// A CellSpec is one point of the expanded matrix. Zero fields mean "not
// set by the spec": the resolver applies its defaults.
type CellSpec struct {
	ID       string
	Seed     int64
	Duration time.Duration
	Window   time.Duration
}

// Key names the cell in results and reports: the experiment ID followed
// by the knobs the spec actually set, in grammar order.
func (c CellSpec) Key() string {
	var b strings.Builder
	b.WriteString(c.ID)
	if c.Seed != 0 {
		fmt.Fprintf(&b, " seed=%d", c.Seed)
	}
	if c.Duration != 0 {
		fmt.Fprintf(&b, " duration=%v", c.Duration)
	}
	if c.Window != 0 {
		fmt.Fprintf(&b, " window=%v", c.Window)
	}
	return b.String()
}

// ParseSpec parses the matrix grammar above.
func ParseSpec(s string) (*Spec, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty matrix spec")
	}
	// Group whitespace-separated fields into terms split on the cross
	// operator. "×" may also appear glued to a term ("a ×seeds=1"): split
	// those too.
	var terms []string
	cur := ""
	flush := func() error {
		if cur == "" {
			return fmt.Errorf("matrix spec %q: empty term (two crosses in a row?)", s)
		}
		terms = append(terms, cur)
		cur = ""
		return nil
	}
	for _, f := range fields {
		for {
			before, after, found := cutCross(f)
			if !found {
				break
			}
			if before != "" {
				if cur != "" {
					return nil, fmt.Errorf("matrix spec %q: term %q and %q not separated by ×", s, cur, before)
				}
				cur = before
			}
			if err := flush(); err != nil {
				return nil, err
			}
			f = after
		}
		if f == "" {
			continue
		}
		if cur != "" {
			return nil, fmt.Errorf("matrix spec %q: term %q and %q not separated by ×", s, cur, f)
		}
		cur = f
	}
	if err := flush(); err != nil {
		return nil, err
	}

	spec := &Spec{}
	for i, t := range terms {
		if i == 0 {
			if strings.Contains(t, "=") {
				return nil, fmt.Errorf("matrix spec %q: first term must name experiments, got %q", s, t)
			}
			if t == "all" {
				spec.IDs = []string{"all"}
				continue
			}
			for _, id := range strings.Split(t, ",") {
				if id == "" {
					return nil, fmt.Errorf("matrix spec %q: empty experiment ID in %q", s, t)
				}
				spec.IDs = append(spec.IDs, id)
			}
			continue
		}
		key, val, found := strings.Cut(t, "=")
		if !found || val == "" {
			return nil, fmt.Errorf("matrix spec %q: term %q is not key=values", s, t)
		}
		switch key {
		case "seeds":
			if spec.Seeds != nil {
				return nil, fmt.Errorf("matrix spec %q: duplicate seeds term", s)
			}
			seeds, err := parseInts(val)
			if err != nil {
				return nil, fmt.Errorf("matrix spec %q: seeds: %w", s, err)
			}
			spec.Seeds = seeds
		case "duration":
			if spec.Durations != nil {
				return nil, fmt.Errorf("matrix spec %q: duplicate duration term", s)
			}
			durs, err := parseDurations(val)
			if err != nil {
				return nil, fmt.Errorf("matrix spec %q: duration: %w", s, err)
			}
			spec.Durations = durs
		case "window":
			if spec.Windows != nil {
				return nil, fmt.Errorf("matrix spec %q: duplicate window term", s)
			}
			durs, err := parseDurations(val)
			if err != nil {
				return nil, fmt.Errorf("matrix spec %q: window: %w", s, err)
			}
			spec.Windows = durs
		default:
			return nil, fmt.Errorf("matrix spec %q: unknown knob %q (want seeds, duration, or window)", s, key)
		}
	}
	return spec, nil
}

// cutCross splits a field at the first cross operator. A bare "x" field
// is an operator; an embedded "x" is not (it could be part of an ID like
// "exact"), so only "×" splits mid-field.
func cutCross(f string) (before, after string, found bool) {
	if f == "x" || f == "×" {
		return "", "", true
	}
	return strings.Cut(f, "×")
}

// parseInts parses "1..16" (inclusive range) or "1,2,5".
func parseInts(val string) ([]int64, error) {
	if lo, hi, found := strings.Cut(val, ".."); found {
		a, err := parseSeed(lo)
		if err != nil {
			return nil, err
		}
		b, err := parseSeed(hi)
		if err != nil {
			return nil, err
		}
		if b < a {
			return nil, fmt.Errorf("range %s..%s is descending", lo, hi)
		}
		out := make([]int64, 0, b-a+1)
		for v := a; v <= b; v++ {
			out = append(out, v)
		}
		return out, nil
	}
	var out []int64
	for _, part := range strings.Split(val, ",") {
		v, err := parseSeed(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseSeed parses one seed value. Seeds must be positive: 0 is the
// "unset" sentinel that resolution replaces with the caller's default.
func parseSeed(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad seed %q", s)
	}
	if v < 1 {
		return 0, fmt.Errorf("seed %d out of range (want >= 1)", v)
	}
	return v, nil
}

func parseDurations(val string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(val, ",") {
		d, err := time.ParseDuration(part)
		if err != nil {
			return nil, fmt.Errorf("bad duration %q", part)
		}
		if d <= 0 {
			return nil, fmt.Errorf("duration %v out of range (want > 0)", d)
		}
		out = append(out, d)
	}
	return out, nil
}

// Cells expands the matrix in row-major grammar order: experiments vary
// slowest, then seeds, durations, windows. This ordering is the
// deterministic merge key the results store preserves.
func (s *Spec) Cells() []CellSpec {
	ids := s.IDs
	seeds := s.Seeds
	if seeds == nil {
		seeds = []int64{0}
	}
	durs := s.Durations
	if durs == nil {
		durs = []time.Duration{0}
	}
	wins := s.Windows
	if wins == nil {
		wins = []time.Duration{0}
	}
	out := make([]CellSpec, 0, len(ids)*len(seeds)*len(durs)*len(wins))
	for _, id := range ids {
		for _, seed := range seeds {
			for _, d := range durs {
				for _, w := range wins {
					out = append(out, CellSpec{ID: id, Seed: seed, Duration: d, Window: w})
				}
			}
		}
	}
	return out
}
