// Package analysis is rstorm-lint: a suite of static analyzers that turn
// the repository's headline invariants — seeded determinism, zero-alloc
// hot paths, journal-code exhaustiveness, uniform StatisticServer route
// discipline — into compile-time checked facts (DESIGN.md §9).
//
// The golden-diff harness and the allocation benchmarks enforce these
// invariants dynamically, but only over the paths a run happens to
// exercise. The analyzers here prove them over all paths: an unordered
// map range feeding a report, a stray time.Now in the control plane, a
// fmt call inside a //rstorm:hotpath function, or a journal reason code
// that no switch handles all fail CI before any experiment runs.
//
// The suite mirrors the shapes of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) but is self-contained on the standard
// library: the module has no external dependencies and the container
// builds offline, so the driver loads packages itself via `go list
// -export` and type-checks with go/types against gc export data. The
// cmd/rstorm-lint binary runs either standalone (`rstorm-lint ./...`) or
// as a `go vet -vettool` (unit.go implements the vet.cfg protocol), and
// a future migration onto x/tools is a mechanical rename.
//
// Suppressions are explicit and carry a written reason:
//
//	//rstorm:unordered-ok reason   map-iteration finding accepted
//	//rstorm:wallclock-ok reason   time.Now / global rand accepted
//	//rstorm:alloc-ok reason       hot-path allocation accepted
//	//rstorm:route-ok reason       route-discipline finding accepted
//	//rstorm:global-ok reason      package-level var accepted
//
// A suppression with no reason is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run is invoked once per package; Finish,
// when set, runs after every package of a standalone invocation and may
// report whole-program findings (it is skipped in per-package vettool
// mode, which sees one compilation unit at a time).
type Analyzer struct {
	Name string
	Doc  string
	// Flags maps a flag name (registered on the command line as
	// <analyzer>.<name>) to its value pointer, so both the standalone
	// driver and `go vet -vettool` invocations can reconfigure a check.
	Flags map[string]*string
	Run   func(*Pass) error
	// Finish reports whole-program diagnostics accumulated across passes.
	Finish func(report func(Diagnostic))
}

// A Pass provides one package's syntax and type information to an
// analyzer, plus the report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	report   func(Diagnostic)
}

// A Diagnostic is one finding. Category names the suppression token
// (without the "//rstorm:" prefix) that silences it; an empty Category is
// unsuppressable (used for malformed suppressions themselves).
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Category string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos under the given suppression category.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppression is one parsed //rstorm:<token>-ok comment.
type suppression struct {
	token  string // e.g. "unordered-ok"
	reason string
	pos    token.Position
	used   bool
}

// suppressionSet indexes a package's //rstorm: suppression comments by
// file and line.
type suppressionSet struct {
	byLine map[string]map[int]*suppression
}

// collectSuppressions scans the files' comments for rstorm suppression
// directives. Only "-ok" tokens participate; //rstorm:hotpath is an
// annotation, not a suppression.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressionSet {
	set := &suppressionSet{byLine: make(map[string]map[int]*suppression)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//rstorm:")
				if !ok {
					continue
				}
				tok, reason, _ := strings.Cut(text, " ")
				if !strings.HasSuffix(tok, "-ok") {
					continue
				}
				// Golden suites pin suppression behaviour with trailing
				// `// want` clauses; those are expectations, not reasons.
				if i := strings.Index(reason, "// want"); i >= 0 {
					reason = reason[:i]
				}
				pos := fset.Position(c.Pos())
				lines := set.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]*suppression)
					set.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = &suppression{
					token:  tok,
					reason: strings.TrimSpace(reason),
					pos:    pos,
				}
			}
		}
	}
	return set
}

// filter applies the suppression set to raw diagnostics: a finding whose
// line (or the line above it) carries a matching //rstorm:<category>
// comment is dropped — unless the comment has no reason, in which case
// the finding is replaced by an unsuppressable "missing reason" one.
// Suppression comments that matched nothing are reported too: a stale
// suppression hides nothing and should be deleted.
func (set *suppressionSet) filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		s := set.lookup(d.Pos.Filename, d.Pos.Line, d.Category)
		if s == nil {
			out = append(out, d)
			continue
		}
		s.used = true
		if s.reason == "" {
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Analyzer: d.Analyzer,
				Message:  fmt.Sprintf("//rstorm:%s suppression missing a reason", s.token),
			})
		}
	}
	return out
}

func (set *suppressionSet) lookup(file string, line int, category string) *suppression {
	if category == "" {
		return nil
	}
	lines := set.byLine[file]
	if lines == nil {
		return nil
	}
	for _, l := range []int{line, line - 1} {
		if s := lines[l]; s != nil && s.token == category {
			return s
		}
	}
	return nil
}

// unused returns "suppresses nothing" diagnostics for suppression
// comments no analyzer finding matched, in file/line order.
func (set *suppressionSet) unused(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, lines := range set.byLine {
		for _, s := range lines {
			if !s.used && known[s.token] {
				out = append(out, Diagnostic{
					Pos:      s.pos,
					Analyzer: "rstorm-lint",
					Message:  fmt.Sprintf("//rstorm:%s suppresses nothing; delete it", s.token),
				})
			}
		}
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// runAnalyzers executes the suite over one loaded package, applying
// suppressions, and returns the surviving diagnostics.
func runAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report:   func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
		}
	}
	set := collectSuppressions(pkg.Fset, pkg.Files)
	diags := set.filter(raw)
	diags = append(diags, set.unused(suppressionTokens(analyzers))...)
	sortDiagnostics(diags)
	return diags, nil
}

// suppressionTokens returns the categories the given analyzers can emit,
// so unused-suppression reporting ignores tokens belonging to analyzers
// not in this run.
func suppressionTokens(analyzers []*Analyzer) map[string]bool {
	known := make(map[string]bool)
	for _, a := range analyzers {
		for _, tok := range analyzerCategories[a.Name] {
			known[tok] = true
		}
	}
	return known
}

// analyzerCategories names each analyzer's suppression tokens (kept in
// one place so unused-suppression detection and DESIGN.md stay in sync).
var analyzerCategories = map[string][]string{
	"determinism": {"unordered-ok", "wallclock-ok"},
	"hotpath":     {"alloc-ok"},
	"journal":     {"journal-ok"},
	"statserver":  {"route-ok"},
	"globalvar":   {"global-ok"},
}

// Suite returns fresh instances of all five analyzers. Instances carry
// per-run state (the journal analyzer accumulates cross-package usage),
// so each invocation needs its own.
func Suite() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(),
		NewHotpath(),
		NewJournal(),
		NewStatserver(),
		NewGlobalvar(),
	}
}
