package analysis

import "testing"

func TestDeterminismGolden(t *testing.T) {
	a := NewDeterminism()
	*a.Flags["scope"] = "determinism"
	RunGolden(t, []*Analyzer{a}, "determinism")
}

func TestDeterminismOutOfScope(t *testing.T) {
	// With the testdata package outside the scope list, every finding
	// disappears — but so do the suppression comments' matches, so run
	// without want-matching and assert zero diagnostics directly.
	a := NewDeterminism()
	*a.Flags["scope"] = "rstorm/internal/core"
	ti := newTestImporter("testdata/src")
	pkg, err := ti.load("determinism")
	if err != nil {
		t.Fatalf("loading testdata package: %v", err)
	}
	var raw []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		report:   func(d Diagnostic) { raw = append(raw, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		t.Errorf("out-of-scope package produced %d diagnostics, want 0: %v", len(raw), raw)
	}
}

func TestPathInScope(t *testing.T) {
	cases := []struct {
		path, scope string
		want        bool
	}{
		{"rstorm/internal/core", "rstorm/internal/core,rstorm/internal/nimbus", true},
		{"rstorm/internal/trace", "rstorm/internal/core,rstorm/internal/nimbus", false},
		{"anything", "", false},
		{"determinism", "determinism", true},
	}
	for _, c := range cases {
		if got := pathInScope(c.path, c.scope); got != c.want {
			t.Errorf("pathInScope(%q, %q) = %v, want %v", c.path, c.scope, got, c.want)
		}
	}
}
