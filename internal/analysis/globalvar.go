package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewGlobalvar builds the globalvar analyzer: within the packages an
// orchestrated run can reach (the scope flag — the simulator, the
// scheduling core and control plane, the experiment registry, the
// orchestrator itself and every rendering/measurement package they pull
// in), no package-level `var` may exist. The parallel scenario
// orchestrator (DESIGN.md §10) runs many simulator instances
// concurrently under the run-isolation invariant "a run owns every piece
// of state it touches"; a package-level variable is exactly the state no
// run owns, so it is either a data race or a cross-run determinism leak
// waiting for a write.
//
// Two shapes are exempt because they are conventionally immutable:
//
//   - blank assertions (`var _ Iface = (*T)(nil)`), which exist only for
//     the type checker;
//   - error sentinels (any var whose static type implements error),
//     which are written once at init and compared with errors.Is.
//
// Everything else — maps, slices, counters, freelists, sync.Once caches,
// rand sources — must either move into per-run state or carry a
// reasoned //rstorm:global-ok suppression arguing why shared access is
// safe (e.g. write-once-before-first-read under sync.Once).
func NewGlobalvar() *Analyzer {
	scope := "rstorm/internal/core,rstorm/internal/nimbus,rstorm/internal/adaptive," +
		"rstorm/internal/simulator,rstorm/internal/experiments,rstorm/internal/orchestra," +
		"rstorm/internal/des,rstorm/internal/cluster,rstorm/internal/topology," +
		"rstorm/internal/workloads,rstorm/internal/metrics,rstorm/internal/trace," +
		"rstorm/internal/faults,rstorm/internal/viz,rstorm/internal/resource," +
		"rstorm/internal/knapsack,rstorm/internal/statestore,rstorm/internal/pardes"
	a := &Analyzer{
		Name:  "globalvar",
		Doc:   "flag package-level mutable state reachable from orchestrated runs",
		Flags: map[string]*string{"scope": &scope},
	}
	a.Run = func(pass *Pass) error {
		if !pathInScope(pass.Pkg.Path(), scope) {
			return nil
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						checkGlobalVar(pass, name)
					}
				}
			}
		}
		return nil
	}
	return a
}

func checkGlobalVar(pass *Pass, name *ast.Ident) {
	if name.Name == "_" {
		return // type assertion for the checker, no storage anyone reads
	}
	obj := pass.Info.Defs[name]
	if obj == nil {
		return
	}
	if isErrorSentinel(obj.Type()) {
		return
	}
	pass.Reportf(name.Pos(), "global-ok",
		"package-level var %q is mutable state reachable from orchestrated runs: "+
			"parallel runs must own their state (move it into the run's instance, or "+
			"suppress with a reasoned //rstorm:global-ok)", name.Name)
}

// isErrorSentinel reports whether t implements the error interface —
// the `var ErrFoo = errors.New(...)` convention, written once at
// package init and only ever compared afterwards.
func isErrorSentinel(t types.Type) bool {
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errIface)
}
