package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// NewStatserver builds the route-discipline analyzer, generalizing PR 7's
// table-driven TestStatServerRouteErrorPaths into a structural check: in
// any package that declares a StatisticServer type, every route
// registered on an http.ServeMux must
//
//   - pass through a method-guard wrapper (the `get` helper serving 405 +
//     Allow on non-GET), and
//   - resolve to a handler that sets a Content-Type on some path — via
//     the writeJSON/jsonError helpers or an explicit Header().Set.
//
// Third-party handlers that manage their own discipline (net/http/pprof)
// are suppressed explicitly: //rstorm:route-ok <reason>.
func NewStatserver() *Analyzer {
	typeName := "StatisticServer"
	wrappers := "get"
	writers := "writeJSON,jsonError"
	a := &Analyzer{
		Name: "statserver",
		Doc:  "require every StatisticServer route to guard non-GET methods and set Content-Type",
		Flags: map[string]*string{
			"type":     &typeName,
			"wrappers": &wrappers,
			"writers":  &writers,
		},
	}
	a.Run = func(pass *Pass) error {
		if pass.Pkg.Scope().Lookup(typeName) == nil {
			return nil
		}
		s := &statserverPass{
			pass:     pass,
			wrappers: splitSet(wrappers),
			writers:  splitSet(writers),
			decls:    methodDecls(pass),
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					s.checkRegistration(call)
				}
				return true
			})
		}
		return nil
	}
	return a
}

func splitSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, e := range strings.Split(s, ",") {
		if e != "" {
			set[e] = true
		}
	}
	return set
}

// methodDecls indexes the package's function declarations by their
// types.Func object, so a registered handler expression resolves to the
// body that must set a Content-Type.
func methodDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := pass.Info.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
	}
	return decls
}

type statserverPass struct {
	pass     *Pass
	wrappers map[string]bool
	writers  map[string]bool
	decls    map[types.Object]*ast.FuncDecl
}

// checkRegistration inspects mux.HandleFunc(path, handler) calls.
func (s *statserverPass) checkRegistration(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "HandleFunc" || len(call.Args) != 2 {
		return
	}
	obj := s.pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
		return
	}
	route := "?"
	if lit, ok := call.Args[0].(*ast.BasicLit); ok {
		if unq, err := strconv.Unquote(lit.Value); err == nil {
			route = unq
		}
	}
	handler := call.Args[1]
	wrapped, ok := handler.(*ast.CallExpr)
	if !ok || !s.isWrapper(wrapped.Fun) {
		s.pass.Reportf(handler.Pos(), "route-ok",
			"route %q registered without a method-guard wrapper: non-GET requests are not answered with 405", route)
		return
	}
	if len(wrapped.Args) != 1 {
		return
	}
	s.checkContentType(route, wrapped.Args[0])
}

func (s *statserverPass) isWrapper(fun ast.Expr) bool {
	switch fun := fun.(type) {
	case *ast.Ident:
		return s.wrappers[fun.Name]
	case *ast.SelectorExpr:
		return s.wrappers[fun.Sel.Name]
	}
	return false
}

// checkContentType resolves the wrapped handler to a declaration and
// requires its body (or, for a func literal, the literal itself) to set
// a Content-Type: directly via Header().Set("Content-Type", ...), or
// through one of the uniform response helpers.
func (s *statserverPass) checkContentType(route string, handler ast.Expr) {
	var body *ast.BlockStmt
	name := "handler"
	switch h := handler.(type) {
	case *ast.FuncLit:
		body = h.Body
	case *ast.Ident:
		if fn := s.decls[s.pass.Info.Uses[h]]; fn != nil {
			body, name = fn.Body, fn.Name.Name
		}
	case *ast.SelectorExpr:
		if fn := s.decls[s.pass.Info.Uses[h.Sel]]; fn != nil {
			body, name = fn.Body, fn.Name.Name
		}
	}
	if body == nil {
		return // cross-package handler: wrapper guarantee is all we can check
	}
	if !s.setsContentType(body) {
		s.pass.Reportf(handler.Pos(), "route-ok",
			"handler %s for route %q never sets a Content-Type", name, route)
	}
}

func (s *statserverPass) setsContentType(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if s.writers[fun.Name] {
				found = true
			}
		case *ast.SelectorExpr:
			if s.writers[fun.Sel.Name] {
				found = true
				break
			}
			// w.Header().Set("Content-Type", ...)
			if fun.Sel.Name == "Set" && len(call.Args) == 2 {
				if lit, ok := call.Args[0].(*ast.BasicLit); ok {
					if unq, err := strconv.Unquote(lit.Value); err == nil && unq == "Content-Type" {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
