package analysis

import "testing"

func TestHotpathGolden(t *testing.T) {
	RunGolden(t, []*Analyzer{NewHotpath()}, "hotpath")
}
