package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"
)

// This file implements the `go vet -vettool` protocol (a stdlib-only
// analogue of x/tools' unitchecker): cmd/go invokes the tool once with
// -V=full to obtain a cache key, then once per package with the path to
// a vet.cfg JSON file describing one compilation unit — absolute source
// paths plus export-data locations for every dependency. Diagnostics go
// to stderr and a non-zero exit marks the unit failed, which is exactly
// how cmd/go surfaces vet findings.
//
// The journal analyzer's whole-program unused-code check needs to see
// every package of a run and therefore only executes in standalone mode
// (RunPatterns); a vettool unit checks everything else.

// vetConfig mirrors cmd/go's vetConfig (work/exec.go). Fields the unit
// checker does not consume are accepted and ignored by encoding/json.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string
	GoVersion    string

	SucceedOnTypecheckFailure bool
}

// Main is the rstorm-lint entry point.
func Main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches between the vettool protocol and the standalone
// multichecker and returns the process exit code:
//
//	rstorm-lint ./...                     standalone over packages
//	go vet -vettool=$(which rstorm-lint)  unit mode driven by cmd/go
//
// Analyzer flags are registered as -<analyzer>.<flag> in both modes.
func run(args []string, stdout, stderr io.Writer) int {
	analyzers := Suite()
	fs := flag.NewFlagSet("rstorm-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	for _, a := range analyzers {
		for name, value := range a.Flags {
			fs.String(a.Name+"."+name, *value, a.Name+" analyzer: "+name)
		}
	}
	versionFlag := fs.Bool("V", false, "print version and exit (cmd/go tool-ID handshake)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON and exit (cmd/go handshake)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(),
			"usage: rstorm-lint [flags] [packages]\n   or: go vet -vettool=$(which rstorm-lint) [packages]\n")
		fs.PrintDefaults()
	}
	// cmd/go invokes the tool with -V=full; stdlib flag accepts -V=true
	// style booleans only, so rewrite before parsing.
	args = append([]string(nil), args...)
	for i, arg := range args {
		if arg == "-V=full" {
			args[i] = "-V"
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *versionFlag {
		printVersion(stdout)
		return 0
	}
	if *flagsFlag {
		printFlags(stdout, fs)
		return 0
	}
	// Propagate parsed flag values back into the analyzers.
	for _, a := range analyzers {
		for name, value := range a.Flags {
			if f := fs.Lookup(a.Name + "." + name); f != nil {
				*value = f.Value.String()
			}
		}
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitCheck(rest[0], analyzers, stderr)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	count, err := RunPatterns(stdout, ".", rest, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "rstorm-lint:", err)
		return 2
	}
	if count > 0 {
		fmt.Fprintf(stderr, "rstorm-lint: %d finding(s)\n", count)
		return 1
	}
	return 0
}

// printVersion emits the tool-ID line cmd/go parses: the "devel" form
// keys the vet result cache on the binary's content hash, so rebuilding
// rstorm-lint invalidates stale cached verdicts.
func printVersion(w io.Writer) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(w, "rstorm-lint version devel comments-go-here buildID=%x\n", h.Sum(nil))
}

// printFlags emits the JSON flag inventory cmd/go requests via -flags so
// it can validate pass-through -<analyzer>.<flag> arguments.
func printFlags(w io.Writer, fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, _ := json.MarshalIndent(flags, "", "\t")
	w.Write(data)
	fmt.Fprintln(w)
}

// unitCheck analyzes one vet.cfg compilation unit, returning the process
// exit code.
func unitCheck(cfgFile string, analyzers []*Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, "rstorm-lint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "rstorm-lint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// cmd/go expects the vetx (facts) output to exist afterwards; the
	// suite carries no cross-package facts, so an empty file suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("rstorm-lint\n"), 0o666); err != nil {
			fmt.Fprintln(stderr, "rstorm-lint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := typeCheck(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "rstorm-lint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := runAnalyzers(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "rstorm-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
