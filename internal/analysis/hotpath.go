package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewHotpath builds the hot-path allocation analyzer. Functions annotated
// with a //rstorm:hotpath comment (DES heap operations, tuple delivery
// and completion, histogram recording, edge counters, queue-byte memory
// accounting) carry the repository's "N integer adds per tuple" claims;
// the analyzer rejects constructs that put an allocation, a write
// barrier, or a dynamic dispatch setup on such a path:
//
//   - defer (defer records) and go (goroutine + closure)
//   - function literals (closure environments escape or allocate)
//   - any call into fmt (formatting allocates and reflects)
//   - map literals and make(map) (hash table allocation)
//   - converting a concrete non-pointer value to an interface (boxing);
//     pointers are exempt — the pointer is the interface word
//   - calls on a known-allocating denylist (sort.Slice and friends,
//     errors.New, strconv/strings/bytes/log/regexp/encoding helpers)
//
// Escape hatch: //rstorm:alloc-ok <reason> on the offending line.
// Amortized-zero patterns (append into a retained pool or ring) are
// deliberately not flagged: the free lists grow to the simulation's peak
// population and then stop allocating.
func NewHotpath() *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc:  "forbid allocating constructs in functions annotated //rstorm:hotpath",
	}
	a.Run = func(pass *Pass) error {
		h := &hotpathPass{pass: pass}
		for _, f := range pass.Files {
			hot := hotpathFuncs(pass.Fset, f)
			for _, fn := range hot {
				h.checkFunc(fn)
			}
		}
		return nil
	}
	return a
}

// hotpathFuncs returns the file's function declarations annotated with a
// //rstorm:hotpath comment — in the doc group or on the line directly
// above the declaration (directive-style comments detach from doc
// groups, so both placements are honoured).
func hotpathFuncs(fset *token.FileSet, f *ast.File) []*ast.FuncDecl {
	annotated := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if text, ok := strings.CutPrefix(c.Text, "//rstorm:hotpath"); ok {
				if text == "" || text[0] == ' ' {
					annotated[fset.Position(c.Pos()).Line] = true
				}
			}
		}
	}
	var out []*ast.FuncDecl
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		start := fset.Position(fn.Pos()).Line
		if fn.Doc != nil {
			start = fset.Position(fn.Doc.Pos()).Line
		}
		for line := start - 1; line < fset.Position(fn.Pos()).Line+1; line++ {
			if annotated[line] {
				out = append(out, fn)
				break
			}
		}
	}
	return out
}

type hotpathPass struct {
	pass *Pass
}

func (h *hotpathPass) checkFunc(fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			h.pass.Reportf(n.Pos(), "alloc-ok",
				"defer in hot path %s: defer records cost on every call", name)
		case *ast.GoStmt:
			h.pass.Reportf(n.Pos(), "alloc-ok",
				"go statement in hot path %s: goroutine launch allocates", name)
		case *ast.FuncLit:
			h.pass.Reportf(n.Pos(), "alloc-ok",
				"closure in hot path %s: captured environment allocates", name)
			return false // the literal's body is not this function's path
		case *ast.CompositeLit:
			if tv, ok := h.pass.Info.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					h.pass.Reportf(n.Pos(), "alloc-ok",
						"map literal in hot path %s: hash table allocation", name)
				}
			}
		case *ast.CallExpr:
			h.checkCall(name, n)
		}
		return true
	})
}

func (h *hotpathPass) checkCall(fnName string, call *ast.CallExpr) {
	// make(map[...]...) allocates a hash table.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := h.pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" && len(call.Args) > 0 {
			if tv, ok := h.pass.Info.Types[call.Args[0]]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					h.pass.Reportf(call.Pos(), "alloc-ok",
						"make(map) in hot path %s: hash table allocation", fnName)
				}
			}
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := h.pass.Info.Uses[id].(*types.PkgName); ok {
				h.checkDenylist(fnName, call, pn.Imported().Path(), sel.Sel.Name)
			}
		}
	}
	h.checkInterfaceArgs(fnName, call)
}

// allocDenylist maps package path → denied function names; "*" denies the
// whole package.
var allocDenylist = map[string][]string{
	"fmt":           {"*"},
	"log":           {"*"},
	"regexp":        {"*"},
	"encoding/json": {"*"},
	"sort":          {"Slice", "SliceStable", "Stable", "Sort", "SliceIsSorted"},
	"errors":        {"New"},
	"strconv":       {"Itoa", "FormatInt", "FormatUint", "FormatFloat", "Quote"},
	"strings":       {"Join", "Repeat", "Split", "Fields", "Replace", "ReplaceAll", "ToUpper", "ToLower", "NewReader"},
	"bytes":         {"NewBuffer", "NewBufferString", "Join", "Repeat", "Split"},
}

func (h *hotpathPass) checkDenylist(fnName string, call *ast.CallExpr, pkgPath, sym string) {
	denied, ok := allocDenylist[pkgPath]
	if !ok {
		return
	}
	for _, d := range denied {
		if d == "*" || d == sym {
			h.pass.Reportf(call.Pos(), "alloc-ok",
				"%s.%s in hot path %s: known-allocating call", pkgPath, sym, fnName)
			return
		}
	}
}

// checkInterfaceArgs flags call arguments (and explicit conversions)
// that box a concrete non-pointer value into an interface. Passing a
// pointer is free — the pointer is the interface's data word — so only
// value boxing is reported.
func (h *hotpathPass) checkInterfaceArgs(fnName string, call *ast.CallExpr) {
	if tv, ok := h.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// Explicit conversion T(x).
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			h.reportBoxing(fnName, call.Args[0], tv.Type)
		}
		return
	}
	tv, ok := h.pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) {
			h.reportBoxing(fnName, arg, pt)
		}
	}
}

func (h *hotpathPass) reportBoxing(fnName string, arg ast.Expr, target types.Type) {
	tv, ok := h.pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	at := tv.Type
	if types.IsInterface(at) {
		return // already an interface: no new box
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Map, *types.Chan:
		// Single-word reference values: the interface data word holds
		// them directly, no box. (Slices are three words and do box.)
		return
	}
	if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	h.pass.Reportf(arg.Pos(), "alloc-ok",
		"concrete %s converted to %s in hot path %s: boxing allocates when it escapes",
		types.TypeString(at, types.RelativeTo(h.pass.Pkg)),
		types.TypeString(target, types.RelativeTo(h.pass.Pkg)), fnName)
}
