package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// This file is the suite's analysistest analogue: golden packages under
// testdata/src/<importpath>/ carry `// want "regex"` comments on the
// lines where diagnostics must appear (several per line allowed), and
// lines without a want comment must stay clean. Suppression comments are
// honoured before matching, so the golden suites pin the escape-hatch
// behaviour too. Sibling testdata packages import each other by their
// path under testdata/src; standard-library imports resolve through the
// same `go list -export` data the standalone driver uses.

// testImporter resolves imports for testdata packages: siblings from
// source, everything else from gc export data.
type testImporter struct {
	fset    *token.FileSet
	root    string
	pkgs    map[string]*Package
	loading map[string]bool
	exports map[string]string
	gc      types.Importer
}

func newTestImporter(root string) *testImporter {
	ti := &testImporter{
		fset:    token.NewFileSet(),
		root:    root,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		exports: make(map[string]string),
	}
	ti.gc = exportImporter(ti.fset, ti.exports, nil)
	return ti
}

func (ti *testImporter) Import(path string) (*types.Package, error) {
	if p, ok := ti.pkgs[path]; ok {
		return p.Types, nil
	}
	if dir := filepath.Join(ti.root, filepath.FromSlash(path)); dirExists(dir) {
		p, err := ti.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if err := ti.ensureExport(path); err != nil {
		return nil, err
	}
	return ti.gc.Import(path)
}

// stdExportOnce caches stdlib export data across every golden test in
// the process: `go list -export -deps std` compiles once, tests share.
var stdExportOnce struct {
	sync.Once
	exports map[string]string
	err     error
}

func (ti *testImporter) ensureExport(path string) error {
	if _, ok := ti.exports[path]; ok {
		return nil
	}
	stdExportOnce.Do(func() {
		stdExportOnce.exports, stdExportOnce.err = exportData(".", []string{"std"})
	})
	if stdExportOnce.err != nil {
		return stdExportOnce.err
	}
	for p, f := range stdExportOnce.exports {
		ti.exports[p] = f
	}
	if _, ok := ti.exports[path]; !ok {
		return fmt.Errorf("testdata import %q: not a testdata sibling and not in std", path)
	}
	return nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// load parses and type-checks one testdata package by its path under
// testdata/src.
func (ti *testImporter) load(path string) (*Package, error) {
	if ti.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	ti.loading[path] = true
	defer delete(ti.loading, path)
	dir := filepath.Join(ti.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	pkg, err := typeCheck(ti.fset, path, dir, goFiles, ti)
	if err != nil {
		return nil, err
	}
	ti.pkgs[path] = pkg
	return pkg, nil
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants extracts `// want "..."` expectations from a package.
func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted strings: `"a" "b"`.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s:%d: malformed want clause near %q", pos.Filename, pos.Line, s)
		}
		quote := s[0]
		end := 1
		for end < len(s) {
			if s[end] == quote && (quote == '`' || s[end-1] != '\\') {
				break
			}
			end++
		}
		if end == len(s) {
			t.Fatalf("%s:%d: unterminated want pattern in %q", pos.Filename, pos.Line, s)
		}
		unq, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, s[:end+1], err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// RunGolden runs the analyzers over the given testdata packages (paths
// under testdata/src, loaded in order so cross-package state accumulates
// deterministically), applies suppressions, runs Finish hooks, and
// matches every diagnostic against the packages' want comments.
func RunGolden(t *testing.T, analyzers []*Analyzer, pkgPaths ...string) {
	t.Helper()
	ti := newTestImporter(filepath.Join("testdata", "src"))
	var pkgs []*Package
	for _, path := range pkgPaths {
		pkg, err := ti.load(path)
		if err != nil {
			t.Fatalf("loading testdata package %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := runAnalyzers(pkg, analyzers)
		if err != nil {
			t.Fatalf("running analyzers: %v", err)
		}
		diags = append(diags, ds...)
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(func(d Diagnostic) { diags = append(diags, d) })
		}
	}
	var wants []*want
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}
