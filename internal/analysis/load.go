package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Dir   string
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
}

// goList runs the go command in dir and decodes its JSON package stream.
func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("go %s: %s", strings.Join(args, " "), msg)
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go %s: decoding output: %w", strings.Join(args, " "), err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportData builds (via the go build cache) and maps export data for the
// given patterns and their full dependency closure: import path → export
// file. The gc importer reads these files directly, so type-checking a
// package never re-checks its dependencies from source.
func exportData(dir string, patterns []string) (map[string]string, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, patterns...)
	pkgs, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// exportImporter returns a types.Importer resolving imports through an
// export-data map, with importMap translating source-level paths to
// canonical ones (the vet.cfg ImportMap; nil outside vettool mode).
func exportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typeCheck parses and type-checks one package's files.
func typeCheck(fset *token.FileSet, importPath, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Types: pkg, Info: info, Dir: dir}, nil
}

// loadPatterns loads and type-checks every package matched by patterns
// (non-test files, like the golden runs the invariants guard), in `go
// list` order.
func loadPatterns(dir string, patterns []string) ([]*Package, error) {
	exports, err := exportData(dir, patterns)
	if err != nil {
		return nil, err
	}
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	targets, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports, nil)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, t.ImportPath, t.Dir, t.GoFiles, imp)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
