package analysis

import "testing"

func TestGlobalvarGolden(t *testing.T) {
	a := NewGlobalvar()
	*a.Flags["scope"] = "globalvar"
	RunGolden(t, []*Analyzer{a}, "globalvar")
}

func TestGlobalvarOutOfScope(t *testing.T) {
	// Packages outside the orchestrated-run scope may keep their globals:
	// the analyzer must stay silent there.
	a := NewGlobalvar()
	*a.Flags["scope"] = "rstorm/internal/core"
	ti := newTestImporter("testdata/src")
	pkg, err := ti.load("globalvar")
	if err != nil {
		t.Fatalf("loading testdata package: %v", err)
	}
	var raw []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		report:   func(d Diagnostic) { raw = append(raw, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		t.Errorf("out-of-scope package produced %d diagnostics, want 0: %v", len(raw), raw)
	}
}
