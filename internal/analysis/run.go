package analysis

import (
	"fmt"
	"io"
)

// RunPatterns loads every package matched by the go-list patterns
// (relative to dir), runs the analyzer suite over each, then runs each
// analyzer's whole-program Finish. Diagnostics are written to w in
// file/line order per package; the returned count is the number of
// findings (0 means the tree is clean).
func RunPatterns(w io.Writer, dir string, patterns []string, analyzers []*Analyzer) (int, error) {
	pkgs, err := loadPatterns(dir, patterns)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, pkg := range pkgs {
		diags, err := runAnalyzers(pkg, analyzers)
		if err != nil {
			return count, err
		}
		for _, d := range diags {
			fmt.Fprintln(w, d)
			count++
		}
	}
	var finish []Diagnostic
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(func(d Diagnostic) { finish = append(finish, d) })
		}
	}
	sortDiagnostics(finish)
	for _, d := range finish {
		fmt.Fprintln(w, d)
		count++
	}
	return count, nil
}
