package analysis

import "testing"

func TestJournalSwitchesGolden(t *testing.T) {
	a := NewJournal()
	*a.Flags["codepkg"] = "journalcodes/codes"
	RunGolden(t, []*Analyzer{a}, "journalcodes/codes", "journalcodes/app")
}

func TestJournalUnusedGolden(t *testing.T) {
	// The unused-code check lives in its own scenario: an exhaustive
	// switch necessarily references every code, so a package exercising
	// exhaustiveness can never also carry an orphan.
	a := NewJournal()
	*a.Flags["codepkg"] = "journalunused"
	RunGolden(t, []*Analyzer{a}, "journalunused")
}
