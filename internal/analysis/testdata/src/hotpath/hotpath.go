// Package hotpath is the golden suite for the hot-path allocation
// analyzer: annotated functions with each forbidden construct, the
// pointer-boxing exemption, and the //rstorm:alloc-ok escape hatch.
package hotpath

import (
	"errors"
	"fmt"
	"sort"
)

type sink interface{ accept() }

type record struct{ n int }

func (r *record) accept() {}

type payload struct{ n int }

func (p payload) accept() {}

func consume(s sink)      {}
func consumeAny(v any)    {}
func variadic(vs ...any)  {}
func take(r *record)      {}
func takeValue(p payload) {}
func helper(f func() int) {}
func observe(d int64)     { _ = d }

// deliver is annotated and clean: integer adds, struct values, pointer
// into interface.
//
//rstorm:hotpath
func deliver(r *record, counts []int64) {
	counts[0]++
	take(r)
	consume(r) // pointer boxing is free: clean
	observe(int64(counts[0]))
}

// fire exhibits every forbidden construct.
//
//rstorm:hotpath
func fire(r *record, p payload) {
	defer take(r)                   // want `defer in hot path fire`
	go take(r)                      // want `go statement in hot path fire`
	f := func() int { return r.n }  // want `closure in hot path fire`
	helper(func() int { return 1 }) // want `closure in hot path fire`
	_ = fmt.Sprintf("%d", r.n)      // want `fmt.Sprintf in hot path fire: known-allocating call` `concrete int converted to any in hot path fire: boxing`
	m := map[string]int{"a": 1}     // want `map literal in hot path fire`
	mm := make(map[int]int)         // want `make\(map\) in hot path fire`
	_ = errors.New("boom")          // want `errors.New in hot path fire: known-allocating call`
	sort.Slice(nil, nil)            // want `sort.Slice in hot path fire: known-allocating call`
	consume(p)                      // want `concrete payload converted to sink in hot path fire: boxing`
	consumeAny(r.n)                 // want `concrete int converted to any in hot path fire: boxing`
	variadic(r.n, r)                // want `concrete int converted to any in hot path fire: boxing`
	_ = sink(p)                     // want `concrete payload converted to sink in hot path fire: boxing`
	_, _, _ = f, m, mm
}

// record90 is annotated with a suppressed, documented exception.
//
//rstorm:hotpath
func record90(p payload) {
	//rstorm:alloc-ok cold error path, taken at most once per run
	_ = fmt.Sprintf("%d", p.n)
}

// cold is NOT annotated: anything goes.
func cold(p payload) {
	defer takeValue(p)
	_ = fmt.Sprintf("%d", p.n)
	consumeAny(p)
}

// annotatedAbove uses the line-above placement instead of a doc group.
//
//rstorm:hotpath
func annotatedAbove(r *record) {
	_ = fmt.Sprint(r.n) // want `fmt.Sprint in hot path annotatedAbove: known-allocating call` `concrete int converted to any in hot path annotatedAbove: boxing`
}
