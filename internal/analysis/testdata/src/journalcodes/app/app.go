// Package app switches over the sibling taxonomy: one exhaustive
// switch (clean), one missing codes (flagged), one suppressed, and one
// below the two-code threshold.
package app

import "journalcodes/codes"

func exhaustive(c string) int {
	switch c {
	case codes.CodeA:
		return 1
	case codes.CodeB:
		return 2
	case codes.CodeC:
		return 3
	case codes.CodeD:
		return 4
	}
	return 0
}

func incomplete(c string) int {
	switch c { // want `switch over journal codes is not exhaustive: missing CodeC, CodeD`
	case codes.CodeA:
		return 1
	case codes.CodeB, "other":
		return 2
	default:
		return 0 // a default clause does not excuse missing codes
	}
}

func suppressed(c string) bool {
	//rstorm:journal-ok only the failure-shaped codes matter here, the rest fall through by design
	switch c {
	case codes.CodeA:
		return true
	case codes.CodeB:
		return true
	}
	return false
}

func singleCode(c string) bool {
	// One code plus arbitrary strings is a membership test, not a
	// taxonomy switch: below the threshold, clean.
	switch c {
	case codes.CodeA:
		return true
	case "unrelated":
		return false
	}
	return false
}
