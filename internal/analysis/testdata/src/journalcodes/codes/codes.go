// Package codes declares a journal reason-code taxonomy for the
// exhaustive-switch golden suite; every code here is referenced by the
// sibling app package.
package codes

const (
	CodeA = "a"
	CodeB = "b"
	CodeC = "c"
	CodeD = "d"
)

// NotACode is not a reason code: wrong prefix.
const NotACode = "x"

// CodeNumeric is not a reason code: not a string.
const CodeNumeric = 7
