// Package journalunused pins the whole-program unused-code check: a
// declared reason code nothing ever records is dead taxonomy.
package journalunused

const (
	CodeUsed   = "used"
	CodeOrphan = "orphan" // want `journal code CodeOrphan is declared but never recorded anywhere`
)

type journal struct{ last string }

func (j *journal) record(code string) { j.last = code }

func emit(j *journal) {
	j.record(CodeUsed)
}
