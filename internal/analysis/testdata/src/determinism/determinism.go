// Package determinism is the golden suite for the determinism analyzer:
// flagged and clean map ranges, wall-clock and global-rand calls, and
// the //rstorm:unordered-ok / //rstorm:wallclock-ok escape hatches.
package determinism

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// appendNoSort is the canonical finding: output order follows map
// traversal.
func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to "out" in map-iteration order without a later sort`
	}
	return out
}

// appendThenSort is the sanctioned shape: collect, then sort.
func appendThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// appendSortSlice also counts: any sort/slices call mentioning the slice.
func appendSortSlice(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// appendLocal appends to a per-iteration slice: order-local, clean.
func appendLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// writeInRange streams records in traversal order.
func writeInRange(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside a map range writes records in iteration order`
	}
}

// floatAccumulate sums floats in traversal order: the low bits differ
// run to run.
func floatAccumulate(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation in map-iteration order`
	}
	return total
}

// intAccumulate is commutative and exact: clean.
func intAccumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

type vec struct{ cpu, mem float64 }

func (v vec) add(o vec) vec { return vec{v.cpu + o.cpu, v.mem + o.mem} }

// vectorAccumulate is the UsedPerNode shape: read-modify-write of
// float-bearing storage keyed off the iteration.
func vectorAccumulate(demand map[int]vec, nodeOf map[int]string) map[string]vec {
	out := make(map[string]vec)
	for id, d := range demand {
		n := nodeOf[id]
		out[n] = out[n].add(d) // want `floating-point accumulation in map-iteration order`
	}
	return out
}

// pickBest selects a winner by ordered comparison over traversal: ties
// depend on iteration order.
func pickBest(scores map[string]float64) string {
	best := ""
	bestScore := -1.0
	for node, s := range scores {
		if s > bestScore { // want `best-candidate selection over map iteration`
			best, bestScore = node, s
		}
	}
	return best
}

// pickSuppressed carries the escape hatch with a reason: clean.
func pickSuppressed(scores map[string]float64) string {
	best := ""
	bestScore := -1.0
	for node, s := range scores {
		//rstorm:unordered-ok keys are distinct by construction, strict > breaks ties on first win only
		if s > bestScore {
			best, bestScore = node, s
		}
	}
	return best
}

// suppressionNeedsReason: a bare suppression is itself a finding.
func suppressionNeedsReason(m map[string]int) []string {
	var out []string
	for k := range m {
		//rstorm:unordered-ok // want `suppression missing a reason`
		out = append(out, k)
	}
	return out
}

// staleSuppression suppresses nothing and must be deleted.
func staleSuppression(m map[string]int) int {
	n := 0
	for range m {
		//rstorm:unordered-ok this loop only counts // want `suppresses nothing`
		n++
	}
	return n
}

// wallClock reads real time in a deterministic package.
func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in a deterministic package`
}

// wallClockSuppressed documents why the clock is acceptable.
func wallClockSuppressed() int64 {
	//rstorm:wallclock-ok operator-facing uptime label, never feeds scheduling
	return time.Now().UnixNano()
}

// globalRand draws from the unseeded process-global source.
func globalRand(n int) int {
	return rand.Intn(n) // want `global math/rand.Intn is unseeded`
}

// seededRand is the sanctioned plumbing: clean.
func seededRand(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// perKeyWrite updates float-bearing storage keyed by the range key
// itself: map keys are unique, so each slot is written exactly once per
// traversal and order cannot compound. Clean.
func perKeyWrite(reserved map[string]vec, avail map[string]vec) {
	for node, used := range reserved {
		avail[node] = avail[node].add(used)
	}
}

// perKeyAugAssign is the same exemption for augmented assignment.
func perKeyAugAssign(weights map[string]float64, totals map[string]float64) {
	for k, w := range weights {
		totals[k] += w
	}
}

// derivedKeyWrite accumulates into storage keyed off the range VALUE:
// distinct iterations may collide on one slot, so order compounds.
func derivedKeyWrite(weights map[string]float64, byGroup map[string]float64, groupOf map[string]string) {
	for k, w := range weights {
		byGroup[groupOf[k]] += w // want `floating-point accumulation in map-iteration order`
	}
}

// mapWrites builds another map: order-independent, clean.
func mapWrites(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
