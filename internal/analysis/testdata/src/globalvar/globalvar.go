// Package globalvar is the golden suite for the globalvar analyzer:
// package-level mutable state reachable from orchestrated runs.
package globalvar

import "errors"

// Plain package-level state in every shape a run could share.
var hits int // want `package-level var "hits" is mutable state`

var lookup = map[string]bool{"a": true} // want `package-level var "lookup" is mutable state`

var freelist []*node // want `package-level var "freelist" is mutable state`

var marks = []rune{'*', 'o'} // want `package-level var "marks" is mutable state`

// Grouped declarations are checked name by name.
var ( // each name below is its own finding
	buf   []byte  // want `package-level var "buf" is mutable state`
	ratio float64 // want `package-level var "ratio" is mutable state`
)

// A multi-name spec flags every name.
var a, b = 1, 2 // want `package-level var "a" is mutable state` `package-level var "b" is mutable state`

// Error sentinels are conventionally immutable: exempt.
var ErrNotFound = errors.New("not found")

// A custom type implementing error is a sentinel too.
var errSentinel = errString("boom")

type errString string

func (e errString) Error() string { return string(e) }

// Blank assertions exist only for the type checker: exempt.
var _ interface{ Error() string } = errSentinel

// A reasoned suppression is honoured.
//
//rstorm:global-ok write-once registry guarded by sync.Once, read-only afterwards
var registry map[string]int

// A reasonless suppression is itself a finding.
//
//rstorm:global-ok // want `suppression missing a reason`
var cache map[string]int

type node struct{ next *node }

// Locals are not package-level state: clean.
func useLocals() int {
	var n int
	var m = map[string]bool{}
	if m["x"] {
		n++
	}
	_ = freelist
	_ = buf
	_ = ratio
	_ = a + b + hits
	_ = ratio
	_ = lookup
	_ = marks
	_ = registry
	_ = cache
	_ = ErrNotFound
	_ = errSentinel
	return n
}
