// Package statserver is the golden suite for the route-discipline
// analyzer: wrapped and Content-Type-setting routes are clean, bare or
// type-less routes are flagged, third-party handlers are suppressed.
package statserver

import "net/http"

// StatisticServer triggers the analyzer in this package.
type StatisticServer struct {
	mux *http.ServeMux
}

func get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
}

func thirdPartyIndex(w http.ResponseWriter, r *http.Request) {}

func (s *StatisticServer) routes() {
	s.mux.HandleFunc("/summary", get(s.handleSummary))
	s.mux.HandleFunc("/bare", s.handleBare)        // want `route "/bare" registered without a method-guard wrapper`
	s.mux.HandleFunc("/plain", get(s.handlePlain)) // want `handler handlePlain for route "/plain" never sets a Content-Type`
	//rstorm:route-ok pprof handlers manage their own methods and content types
	s.mux.HandleFunc("/debug/pprof/", thirdPartyIndex)
	s.mux.HandleFunc("/lit", get(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
	}))
}

func (s *StatisticServer) handleSummary(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]int{})
}

func (s *StatisticServer) handleBare(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, nil)
}

func (s *StatisticServer) handlePlain(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("ok"))
}
