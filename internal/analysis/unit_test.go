package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the invariant the CI step enforces: the standalone
// suite (whole-program checks included) reports nothing over the whole
// repository. Every accepted finding must carry a reasoned suppression.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds export data for the whole repository")
	}
	var buf bytes.Buffer
	count, err := RunPatterns(&buf, "../..", []string{"./..."}, Suite())
	if err != nil {
		t.Fatalf("running suite over repository: %v", err)
	}
	if count != 0 {
		t.Errorf("rstorm-lint over ./... reported %d finding(s):\n%s", count, buf.String())
	}
}

// TestStandaloneCleanPackage drives run's standalone path over this
// package (out of determinism scope, no annotations: clean).
func TestStandaloneCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds export data")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"."}, &out, &errw); code != 0 {
		t.Errorf("run(.) = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errw); code != 0 {
		t.Fatalf("run(-V=full) = %d, want 0; stderr: %s", code, errw.String())
	}
	got := out.String()
	if !strings.HasPrefix(got, "rstorm-lint version devel ") || !strings.Contains(got, "buildID=") {
		t.Errorf("version line %q does not match cmd/go's vettool handshake format", got)
	}
}

// TestFlagsHandshake covers cmd/go's second probe: -flags must print a
// JSON array describing every registered flag.
func TestFlagsHandshake(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-flags"}, &out, &errw); code != 0 {
		t.Fatalf("run(-flags) = %d, want 0; stderr: %s", code, errw.String())
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out.String())
	}
	found := map[string]bool{}
	for _, f := range flags {
		found[f.Name] = true
	}
	for _, want := range []string{"V", "determinism.scope", "journal.codepkg", "statserver.type"} {
		if !found[want] {
			t.Errorf("-flags output missing %q: %v", want, found)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errw); code != 2 {
		t.Errorf("run(-no-such-flag) = %d, want 2", code)
	}
}

// writeUnitCfg assembles a vet.cfg for one real repository package the
// way cmd/go would: export data for the dependency closure, source file
// list, vetx output path.
func writeUnitCfg(t *testing.T, importPath string, mutate func(*vetConfig)) string {
	t.Helper()
	pkgs, err := goList("../..", "list", "-export", "-deps", "-json=ImportPath,Export,Dir,GoFiles", importPath)
	if err != nil {
		t.Fatalf("listing %s: %v", importPath, err)
	}
	exports := make(map[string]string, len(pkgs))
	cfg := vetConfig{ID: importPath, Compiler: "gc", ImportMap: map[string]string{}}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.ImportPath == importPath {
			cfg.Dir = p.Dir
			cfg.GoFiles = p.GoFiles
		}
	}
	cfg.PackageFile = exports
	cfg.VetxOutput = filepath.Join(t.TempDir(), "unit.vetx")
	if mutate != nil {
		mutate(&cfg)
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "vet.cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUnitCheckCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds export data")
	}
	var out, errw bytes.Buffer
	var vetx string
	cfg := writeUnitCfg(t, "rstorm/internal/trace", func(c *vetConfig) { vetx = c.VetxOutput })
	if code := run([]string{cfg}, &out, &errw); code != 0 {
		t.Errorf("unit check of internal/trace = %d, want 0; stderr:\n%s", code, errw.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}

func TestUnitCheckVetxOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("builds export data")
	}
	var out, errw bytes.Buffer
	// VetxOnly units must succeed without type-checking: poison the file
	// list to prove analysis is skipped.
	cfg := writeUnitCfg(t, "rstorm/internal/trace", func(c *vetConfig) {
		c.VetxOnly = true
		c.GoFiles = []string{"does-not-exist.go"}
	})
	if code := run([]string{cfg}, &out, &errw); code != 0 {
		t.Errorf("VetxOnly unit = %d, want 0; stderr: %s", code, errw.String())
	}
}

func TestUnitCheckTypecheckFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("builds export data")
	}
	var out, errw bytes.Buffer
	cfg := writeUnitCfg(t, "rstorm/internal/trace", func(c *vetConfig) {
		c.GoFiles = []string{"does-not-exist.go"}
	})
	if code := run([]string{cfg}, &out, &errw); code != 1 {
		t.Errorf("broken unit = %d, want 1", code)
	}
	var out2, errw2 bytes.Buffer
	cfg2 := writeUnitCfg(t, "rstorm/internal/trace", func(c *vetConfig) {
		c.GoFiles = []string{"does-not-exist.go"}
		c.SucceedOnTypecheckFailure = true
	})
	if code := run([]string{cfg2}, &out2, &errw2); code != 0 {
		t.Errorf("broken unit with SucceedOnTypecheckFailure = %d, want 0; stderr: %s", code, errw2.String())
	}
}

func TestUnitCheckBadConfig(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"no-such-file.cfg"}, &out, &errw); code != 2 {
		t.Errorf("missing cfg = %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.cfg")
	if err := os.WriteFile(bad, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	var out2, errw2 bytes.Buffer
	if code := run([]string{bad}, &out2, &errw2); code != 2 {
		t.Errorf("malformed cfg = %d, want 2", code)
	}
}

// TestUnitCheckFlagsPropagate narrows the determinism scope via the
// command line and unit-checks a package that would otherwise be in
// scope, proving -analyzer.flag reconfiguration reaches the analyzers.
func TestUnitCheckFlagsPropagate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds export data")
	}
	var out, errw bytes.Buffer
	cfg := writeUnitCfg(t, "rstorm/internal/core", nil)
	code := run([]string{"-determinism.scope=no/such/package", cfg}, &out, &errw)
	if code != 0 && !strings.Contains(errw.String(), "determinism") {
		// Core may legitimately carry suppressed findings from other
		// analyzers; what must not appear is a determinism finding.
		return
	}
	if strings.Contains(errw.String(), "determinism:") {
		t.Errorf("determinism findings survived a scope override:\n%s", errw.String())
	}
}
