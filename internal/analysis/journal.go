package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NewJournal builds the journal-exhaustiveness analyzer. The decision
// journal's reason codes (the Code* string constants in internal/trace)
// are the taxonomy every control-plane event is filed under; the
// analyzer keeps that taxonomy honest in both directions:
//
//   - every switch whose cases compare against Code* constants must list
//     every declared code — a new code silently falling into a default
//     branch is exactly the blind spot the journal exists to close;
//   - every declared code must be referenced somewhere in the program
//     (whole-run standalone mode only: per-package vettool units cannot
//     see their importers).
//
// Escape hatch: //rstorm:journal-ok <reason> on the switch statement.
func NewJournal() *Analyzer {
	codepkg := "internal/trace"
	a := &Analyzer{
		Name:  "journal",
		Doc:   "require journal reason-code switches to be exhaustive and every declared code to be recorded",
		Flags: map[string]*string{"codepkg": &codepkg},
	}
	st := &journalState{
		codepkg:  &codepkg,
		declared: make(map[string]token.Position),
		used:     make(map[string]bool),
	}
	a.Run = func(pass *Pass) error {
		st.pass(pass)
		return nil
	}
	a.Finish = func(report func(Diagnostic)) {
		names := make([]string, 0, len(st.declared))
		for name := range st.declared {
			if !st.used[name] {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			report(Diagnostic{
				Pos:      st.declared[name],
				Analyzer: "journal",
				Message:  "journal code " + name + " is declared but never recorded anywhere",
			})
		}
	}
	return a
}

type journalState struct {
	codepkg  *string
	declared map[string]token.Position
	used     map[string]bool
}

// isCodeConst reports whether obj is a journal reason-code constant: a
// Code*-named string constant declared in the code package.
func (st *journalState) isCodeConst(obj types.Object) bool {
	c, ok := obj.(*types.Const)
	if !ok || !strings.HasPrefix(c.Name(), "Code") || c.Pkg() == nil {
		return false
	}
	if !strings.Contains(c.Pkg().Path(), *st.codepkg) {
		return false
	}
	return c.Val().Kind() == constant.String
}

func (st *journalState) pass(p *Pass) {
	declaring := strings.Contains(p.Pkg.Path(), *st.codepkg)
	if declaring {
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			if obj := scope.Lookup(name); st.isCodeConst(obj) {
				st.declared[name] = p.Fset.Position(obj.Pos())
			}
		}
	}
	// Usage: any reference to a code constant counts as "recorded" —
	// journaling flows through wrappers (journalRecord, Record, Append),
	// so call-site shape is not constrained.
	for id, obj := range p.Info.Uses {
		if st.isCodeConst(obj) {
			_ = id
			st.used[obj.Name()] = true
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if sw, ok := n.(*ast.SwitchStmt); ok {
				st.checkSwitch(p, sw)
			}
			return true
		})
	}
}

// checkSwitch enforces exhaustiveness on switches over journal codes: if
// two or more cases compare against Code* constants, every declared code
// of that package must appear. A default clause does not exempt the
// switch — catching codes you did not think about is the failure mode,
// not the feature — but //rstorm:journal-ok does.
func (st *journalState) checkSwitch(p *Pass, sw *ast.SwitchStmt) {
	listed := make(map[string]bool)
	var codePkg *types.Package
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			obj := st.exprObject(p, e)
			if obj != nil && st.isCodeConst(obj) {
				listed[obj.Name()] = true
				codePkg = obj.Pkg()
			}
		}
	}
	if len(listed) < 2 || codePkg == nil {
		return
	}
	var missing []string
	scope := codePkg.Scope()
	for _, name := range scope.Names() {
		if st.isCodeConst(scope.Lookup(name)) && !listed[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	p.Reportf(sw.Pos(), "journal-ok",
		"switch over journal codes is not exhaustive: missing %s", strings.Join(missing, ", "))
}

func (st *journalState) exprObject(p *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return p.Info.Uses[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}
