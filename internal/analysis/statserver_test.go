package analysis

import "testing"

func TestStatserverGolden(t *testing.T) {
	RunGolden(t, []*Analyzer{NewStatserver()}, "statserver")
}

func TestStatserverSkipsPackagesWithoutTheType(t *testing.T) {
	// The hotpath testdata package has HandleFunc-free code and no
	// StatisticServer: the analyzer must not touch it.
	a := NewStatserver()
	ti := newTestImporter("testdata/src")
	pkg, err := ti.load("hotpath")
	if err != nil {
		t.Fatalf("loading testdata package: %v", err)
	}
	var raw []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		report:   func(d Diagnostic) { raw = append(raw, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		t.Errorf("package without StatisticServer produced %d diagnostics: %v", len(raw), raw)
	}
}
