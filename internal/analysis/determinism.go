package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewDeterminism builds the determinism analyzer. Within the scheduling
// and control-plane packages (the scope flag), it enforces the seeded
// byte-identical-results invariant the golden-diff harness checks
// dynamically:
//
//   - a `range` over a map must not feed an order-sensitive sink: an
//     append to an outer slice that is never sorted afterwards, a
//     report/journal write (fmt.Fprint*, Write*, Journal.Record), a
//     floating-point accumulation (FP addition is not associative), or a
//     best-candidate selection (argmin/argmax over iteration order —
//     the shape of a placement decision);
//   - time.Now must not be called: virtual time comes from the DES
//     engine, wall time from nowhere;
//   - the global math/rand source must not be used: all randomness flows
//     through a seeded *rand.Rand.
//
// Escape hatches: //rstorm:unordered-ok <reason> on the finding's line
// (or the line above) for map-iteration findings, //rstorm:wallclock-ok
// <reason> for clock/rand findings.
func NewDeterminism() *Analyzer {
	scope := "rstorm/internal/core,rstorm/internal/nimbus,rstorm/internal/adaptive," +
		"rstorm/internal/simulator,rstorm/internal/experiments,rstorm/internal/pardes"
	a := &Analyzer{
		Name:  "determinism",
		Doc:   "flag map-iteration-order and wall-clock dependence in scheduling and control-plane packages",
		Flags: map[string]*string{"scope": &scope},
	}
	a.Run = func(pass *Pass) error {
		if !pathInScope(pass.Pkg.Path(), scope) {
			return nil
		}
		d := &determinismPass{pass: pass}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						d.checkFunc(n.Body)
					}
					return true
				case *ast.CallExpr:
					d.checkCall(n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// pathInScope reports whether importPath matches any comma-separated
// element of scope (substring match, so "rstorm/internal/core" also
// covers its test binaries and "determinism" covers testdata packages).
func pathInScope(importPath, scope string) bool {
	for _, s := range strings.Split(scope, ",") {
		if s != "" && strings.Contains(importPath, s) {
			return true
		}
	}
	return false
}

type determinismPass struct {
	pass *Pass
}

// checkCall flags wall-clock and global-rand calls anywhere in scope.
func (d *determinismPass) checkCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkg := d.packageOf(sel.X)
	switch {
	case pkg == "time" && sel.Sel.Name == "Now":
		d.pass.Reportf(call.Pos(), "wallclock-ok",
			"time.Now in a deterministic package: use the DES engine's virtual clock")
	case pkg == "math/rand" && !seededRandConstructor(sel.Sel.Name):
		d.pass.Reportf(call.Pos(), "wallclock-ok",
			"global math/rand.%s is unseeded: draw from a seeded *rand.Rand", sel.Sel.Name)
	}
}

// seededRandConstructor reports whether a math/rand package function is
// part of the sanctioned seed plumbing rather than a draw from the
// global source.
func seededRandConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf":
		return true
	}
	return false
}

// packageOf resolves an expression to the import path of the package it
// names, or "" if it is not a package qualifier.
func (d *determinismPass) packageOf(x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := d.pass.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// checkFunc classifies every map range in one function body.
func (d *determinismPass) checkFunc(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := d.pass.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			d.checkMapRange(body, rs)
		}
		return true
	})
}

// checkMapRange applies the order-sensitivity rules to one map range.
func (d *determinismPass) checkMapRange(fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	iterVars := d.rangeVars(rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rs {
				// A nested map range is classified on its own.
				if tv, ok := d.pass.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.AssignStmt:
			d.checkAssign(fnBody, rs, n)
		case *ast.CallExpr:
			d.checkSinkCall(n)
		case *ast.IfStmt:
			d.checkSelection(rs, iterVars, n)
		}
		return true
	})
}

// rangeVars returns the objects bound by the range's key and value.
func (d *determinismPass) rangeVars(rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := d.pass.Info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := d.pass.Info.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// checkAssign flags order-sensitive accumulation inside a map range:
// appends to outer slices that are never sorted, and floating-point
// read-modify-write (addition order changes the low bits).
func (d *determinismPass) checkAssign(fnBody *ast.BlockStmt, rs *ast.RangeStmt, as *ast.AssignStmt) {
	// Floating-point accumulation: x += v, x -= v, x *= v, x /= v.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) == 1 && d.typeHasFloat(as.Lhs[0]) && !d.keyedByRangeKey(as.Lhs[0], rs) {
			d.pass.Reportf(as.Pos(), "unordered-ok",
				"floating-point accumulation in map-iteration order: result bits depend on traversal")
		}
		return
	case token.ASSIGN, token.DEFINE:
	default:
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		// x = x.Add(y) / m[k] = m[k].Add(v): read-modify-write of float-
		// bearing storage, same non-associativity as +=.
		if as.Tok == token.ASSIGN && d.typeHasFloat(lhs) && !d.keyedByRangeKey(lhs, rs) {
			lstr := types.ExprString(lhs)
			if lstr != "" && strings.Contains(types.ExprString(as.Rhs[i]), lstr) {
				d.pass.Reportf(as.Pos(), "unordered-ok",
					"floating-point accumulation in map-iteration order: result bits depend on traversal")
				continue
			}
		}
		// out = append(out, ...) into a slice declared outside the loop.
		call, ok := as.Rhs[i].(*ast.CallExpr)
		if !ok || !d.isBuiltinAppend(call) {
			continue
		}
		target, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := d.objectOf(target)
		if obj == nil || d.declaredWithin(obj, rs) {
			continue
		}
		if d.sortedAfter(fnBody, rs, obj) {
			continue
		}
		d.pass.Reportf(as.Pos(), "unordered-ok",
			"append to %q in map-iteration order without a later sort", target.Name)
	}
}

// keyedByRangeKey reports whether lhs is an index expression whose index
// is exactly the range's key variable. Map keys are unique, so such
// storage is written once per iteration: the per-key operation happens a
// fixed number of times regardless of traversal order, and the writes
// commute across distinct keys. `avail[node] = avail[node].Sub(used)`
// inside `for node, used := range reserved` is deterministic;
// `out[p.Node] = out[p.Node].Add(d)` (key derived from the value) is not.
func (d *determinismPass) keyedByRangeKey(lhs ast.Expr, rs *ast.RangeStmt) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ix.Index.(*ast.Ident)
	if !ok {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	obj := d.objectOf(id)
	return obj != nil && obj == d.objectOf(key)
}

func (d *determinismPass) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := d.pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

func (d *determinismPass) objectOf(id *ast.Ident) types.Object {
	if obj := d.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return d.pass.Info.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside the range
// statement (a per-iteration temporary is order-local).
func (d *determinismPass) declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
}

// sortedAfter reports whether, after the range statement, the enclosing
// function calls into package sort or slices with the accumulated slice
// as an argument — the "intervening sort" that restores determinism.
func (d *determinismPass) sortedAfter(fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || sorted {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg := d.packageOf(sel.X); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && d.objectOf(id) == obj {
					mentions = true
				}
				return !mentions
			})
			if mentions {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// checkSinkCall flags report/journal writes inside a map range: output
// record order would follow traversal order.
func (d *determinismPass) checkSinkCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if pkg := d.packageOf(sel.X); pkg == "fmt" {
		if strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") {
			d.pass.Reportf(call.Pos(), "unordered-ok",
				"fmt.%s inside a map range writes records in iteration order", name)
		}
		return
	}
	switch {
	case strings.HasPrefix(name, "Write"): // Write, WriteString, WriteByte, ...
		d.pass.Reportf(call.Pos(), "unordered-ok",
			"%s inside a map range writes records in iteration order", name)
	case name == "Record" || name == "Append":
		if d.receiverNamed(sel, "Journal") {
			d.pass.Reportf(call.Pos(), "unordered-ok",
				"journal %s inside a map range assigns sequence numbers in iteration order", name)
		}
	}
}

// receiverNamed reports whether the selector's receiver type (after
// pointer indirection) has the given name.
func (d *determinismPass) receiverNamed(sel *ast.SelectorExpr, name string) bool {
	tv, ok := d.pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// checkSelection flags argmin/argmax-style candidate selection inside a
// map range: `if cand < best { best, bestKey = cand, k }` picks a winner
// in iteration order, so ties (and FP comparisons) depend on traversal —
// the exact shape of a placement decision fed by an unordered map.
func (d *determinismPass) checkSelection(rs *ast.RangeStmt, iterVars map[types.Object]bool, ifs *ast.IfStmt) {
	if !d.hasOrderedComparison(ifs.Cond) {
		return
	}
	reported := false
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || reported {
			return !reported
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := d.objectOf(id)
			if obj == nil || d.declaredWithin(obj, rs) {
				continue
			}
			if i < len(as.Rhs) && d.mentionsAny(as.Rhs[i], iterVars) {
				d.pass.Reportf(ifs.Pos(), "unordered-ok",
					"best-candidate selection over map iteration: winner depends on traversal order")
				reported = true
				return false
			}
		}
		return true
	})
}

func (d *determinismPass) hasOrderedComparison(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok {
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				found = true
			}
		}
		return !found
	})
	return found
}

func (d *determinismPass) mentionsAny(e ast.Expr, vars map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && vars[d.objectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// typeHasFloat reports whether an expression's type contains a
// floating-point component (directly, or via struct fields / arrays).
func (d *determinismPass) typeHasFloat(e ast.Expr) bool {
	tv, ok := d.pass.Info.Types[e]
	if !ok {
		return false
	}
	return typeHasFloat(tv.Type, 0)
}

func typeHasFloat(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0 || u.Info()&types.IsComplex != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeHasFloat(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return typeHasFloat(u.Elem(), depth+1)
	}
	return false
}
