package simulator

import (
	"fmt"
	"sort"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/faults"
	"rstorm/internal/metrics"
)

// TopologyResult summarizes one topology's run.
type TopologyResult struct {
	// Name is the topology name; Scheduler the scheduler that placed it.
	Name      string
	Scheduler string
	// SinkSeries is total tuples arriving at sink components per metrics
	// window — the paper's throughput metric (§6.2).
	SinkSeries []float64
	// ComponentSeries is tuples processed per window, per component.
	ComponentSeries map[string][]float64
	// MeanSinkThroughput is the post-warmup mean of SinkSeries.
	MeanSinkThroughput float64
	// TuplesEmitted / TuplesProcessed / TuplesDelivered are end-of-run
	// totals (spout roots, bolt executions, sink arrivals).
	TuplesEmitted   int64
	TuplesProcessed int64
	TuplesDelivered int64
	// TuplesExpired counts sink arrivals past the tuple timeout, which
	// do not count as delivered.
	TuplesExpired int64
	// TuplesSent counts tuple deliveries entering the wire path over the
	// run; TuplesSentRemote is the subset that crossed between nodes.
	// Their ratio is the run's inter-node tuple fraction — the quantity a
	// traffic-aware placement minimizes.
	TuplesSent       int64
	TuplesSentRemote int64
	// MeanLatency is the mean spout-to-sink latency of delivered tuples.
	MeanLatency time.Duration
	// LatencyP50/P95/P99/Max are the complete-tree latency percentiles
	// over the whole run under Config.LatencyHistograms (expired
	// arrivals included), quantized by the histogram's 6.25% buckets.
	// All zero with histograms off.
	LatencyP50 time.Duration
	LatencyP95 time.Duration
	LatencyP99 time.Duration
	LatencyMax time.Duration
	// LatencyP99Series is the per-metrics-window p99 in milliseconds,
	// aligned with SinkSeries (trailing partial window excluded) — the
	// series that exposes a failover latency spike and its recovery.
	// Nil with histograms off.
	LatencyP99Series []float64
	// NodesUsed is the number of distinct nodes hosting tasks.
	NodesUsed int
	// RecoveryTime measures time-to-recover after the run's first node
	// crash: the interval from the crash until the end of the first full
	// metrics window whose sink throughput reached ≥90% of the pre-crash
	// baseline (the mean of full post-warmup windows before the crash).
	// Zero when no crash occurred or the baseline is not measurable; -1
	// when the topology never recovered within the run.
	RecoveryTime time.Duration
}

// Result is a completed simulation's output.
type Result struct {
	// Duration and Window echo the configuration.
	Duration time.Duration
	Window   time.Duration
	// WarmupWindows is the number of leading windows excluded from means.
	WarmupWindows int
	// Topologies holds per-topology results keyed by name.
	Topologies map[string]*TopologyResult
	// NodeUtilization is each node's CPU utilization in [0,1]: the
	// busy-time-weighted share of declared demand against capacity.
	NodeUtilization map[cluster.NodeID]float64
	// NICUtilization is each node's egress utilization in [0,1].
	NICUtilization map[cluster.NodeID]float64
	// NodesUsed counts nodes hosting at least one task.
	NodesUsed int
	// MeanUtilizationUsed averages NodeUtilization over used nodes —
	// the quantity compared in Fig. 10.
	MeanUtilizationUsed float64
	// TuplesDropped counts tuples abandoned due to node failures and OOM
	// kills (an OOM-killed task's queue drains through the same path).
	TuplesDropped int64
	// TuplesMigrated counts tuples failed out of task queues by the
	// administrative drain path: Reassign migrations (the rebalance
	// analogue of a worker restart) and KillTopology teardowns (eviction).
	TuplesMigrated int64
	// TasksOOMKilled counts executors killed by the runtime memory model
	// (Config.MemoryModel) for exceeding their node's memory capacity.
	// Always zero with the model off.
	TasksOOMKilled int64
	// TuplesReplayed counts spout re-emissions of failed tuple trees under
	// at-least-once replay (Config.Replay); TreesLost counts failed trees
	// abandoned for good — retries exhausted, or the spout died. Both are
	// always zero with replay off.
	TuplesReplayed int64
	TreesLost      int64
	// Faults is the log of fault events actually applied during the run
	// (state transitions only), in virtual-time order. Nil without faults.
	Faults []FaultRecord
	// NodeDowntime is each crashed node's total dead time over the run
	// (still-dead nodes accrue until the end). Nil without crashes.
	NodeDowntime map[cluster.NodeID]time.Duration
}

// InterNodeFraction returns the share of the topology's tuple deliveries
// that crossed between nodes, in [0,1]. Zero when nothing was sent.
func (tr *TopologyResult) InterNodeFraction() float64 {
	if tr.TuplesSent == 0 {
		return 0
	}
	return float64(tr.TuplesSentRemote) / float64(tr.TuplesSent)
}

// Topology returns the named topology's result, or nil.
func (r *Result) Topology(name string) *TopologyResult {
	return r.Topologies[name]
}

// TotalMeanThroughput sums MeanSinkThroughput across topologies, in
// sorted name order so the float sum is bit-stable across runs.
func (r *Result) TotalMeanThroughput() float64 {
	names := make([]string, 0, len(r.Topologies))
	for n := range r.Topologies {
		names = append(names, n)
	}
	sort.Strings(names)
	var sum float64
	for _, n := range names {
		sum += r.Topologies[n].MeanSinkThroughput
	}
	return sum
}

// String renders a one-line summary per topology.
func (r *Result) String() string {
	names := make([]string, 0, len(r.Topologies))
	for n := range r.Topologies {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		tr := r.Topologies[n]
		if i > 0 {
			out += "; "
		}
		out += fmt.Sprintf("%s: %.0f tuples/%s over %d nodes",
			tr.Name, tr.MeanSinkThroughput, r.Window, tr.NodesUsed)
	}
	return out
}

// buildResult assembles the Result after the event loop finishes. All
// aggregation here sums per-lane and per-task counters: integer sums
// commute, so the totals are identical however the work was partitioned.
func (s *Simulation) buildResult() *Result {
	res := &Result{
		Duration:        s.cfg.Duration,
		Window:          s.cfg.MetricsWindow,
		WarmupWindows:   s.cfg.WarmupWindows,
		Topologies:      make(map[string]*TopologyResult, len(s.runs)),
		NodeUtilization: make(map[cluster.NodeID]float64, len(s.order)),
		NICUtilization:  make(map[cluster.NodeID]float64, len(s.order)),
	}
	for _, ln := range s.lanes {
		res.TuplesDropped += ln.dropped
		res.TuplesMigrated += ln.migrated
		res.TasksOOMKilled += ln.oomKilled
		res.TuplesReplayed += ln.replayed
		res.TreesLost += ln.lostTrees
	}
	if len(s.faultLog) > 0 {
		res.Faults = make([]FaultRecord, len(s.faultLog))
		copy(res.Faults, s.faultLog)
	}
	// firstCrash drives per-topology time-to-recover; the fault log is in
	// virtual-time order, so the first Crash entry is the earliest.
	firstCrash := time.Duration(-1)
	for _, fr := range s.faultLog {
		if fr.Kind == faults.Crash {
			firstCrash = fr.At
			break
		}
	}

	for _, run := range s.runs {
		tr := &TopologyResult{
			Name:            run.topo.Name(),
			Scheduler:       run.assignment.Scheduler,
			ComponentSeries: make(map[string][]float64),
			NodesUsed:       len(run.assignment.NodesUsed()),
		}
		var latSum time.Duration
		var latN int64
		for _, st := range run.ordered {
			tr.TuplesEmitted += st.totEmitted
			tr.TuplesProcessed += st.totProcessed
			tr.TuplesDelivered += st.totDelivered
			tr.TuplesExpired += st.totExpired
			tr.TuplesSent += st.totSent
			tr.TuplesSentRemote += st.totSentRemote
			latSum += st.totLatSum
			latN += st.totLatN
		}
		// Per-sink-component series, summed over the component's tasks.
		// Bucket values are integer tuple counts (exact in float64), so
		// per-task sums reproduce the old shared-series values exactly. A
		// component with no recording task contributes no series, matching
		// the old lazily-populated maps.
		var sinkSeries [][]float64
		for _, comp := range run.topo.Sinks() {
			var agg []float64
			for _, st := range run.ordered {
				if st.comp.Name != comp.Name || st.sinkWin == nil {
					continue
				}
				series := st.sinkWin.Series(s.cfg.Duration)
				if agg == nil {
					agg = series
					continue
				}
				for i := range series {
					agg[i] += series[i]
				}
			}
			if agg != nil {
				sinkSeries = append(sinkSeries, agg)
			}
		}
		tr.SinkSeries = metrics.SumSeries(sinkSeries...)
		if len(tr.SinkSeries) == 0 {
			tr.SinkSeries = make([]float64, int(s.cfg.Duration/s.cfg.MetricsWindow))
		}
		tr.MeanSinkThroughput = metrics.MeanTail(tr.SinkSeries, s.cfg.WarmupWindows)
		for _, st := range run.ordered {
			if st.procWin == nil {
				continue
			}
			series := st.procWin.Series(s.cfg.Duration)
			if cur, ok := tr.ComponentSeries[st.comp.Name]; ok {
				for i := range series {
					cur[i] += series[i]
				}
				continue
			}
			tr.ComponentSeries[st.comp.Name] = series
		}
		if latN > 0 {
			tr.MeanLatency = latSum / time.Duration(latN)
		}
		if run.cumHist != nil {
			sum := run.cumHist.Summarize()
			tr.LatencyP50 = sum.P50
			tr.LatencyP95 = sum.P95
			tr.LatencyP99 = sum.P99
			tr.LatencyMax = sum.Max
			tr.LatencyP99Series = make([]float64, len(run.latP99))
			copy(tr.LatencyP99Series, run.latP99)
		}
		if firstCrash >= 0 {
			tr.RecoveryTime = recoveryTime(tr.SinkSeries, firstCrash,
				s.cfg.MetricsWindow, s.cfg.WarmupWindows)
		}
		res.Topologies[tr.Name] = tr
	}

	var utilSum float64
	for _, id := range s.order {
		n := s.nodes[id]
		util := 0.0
		if n.spec.Capacity.CPU > 0 {
			// Current residents contribute the busy time they accrued
			// here; work done before an inbound migration was credited to
			// the previous host (departedWeighted) when the task moved.
			for _, t := range n.tasks {
				busy := t.tracker.Busy() - t.creditedBusy
				util += float64(busy) / float64(s.cfg.Duration) *
					t.comp.EffectiveCPUPoints() / n.spec.Capacity.CPU
			}
			util += n.departedWeighted / float64(s.cfg.Duration) / n.spec.Capacity.CPU
			if util > 1 {
				util = 1
			}
		}
		res.NodeUtilization[id] = util
		res.NICUtilization[id] = n.nic.busy.Utilization(s.cfg.Duration)
		if n.everHosted {
			res.NodesUsed++
			utilSum += util
		}
	}
	if res.NodesUsed > 0 {
		res.MeanUtilizationUsed = utilSum / float64(res.NodesUsed)
	}
	for _, id := range s.order {
		n := s.nodes[id]
		down := n.downtime
		if n.dead {
			down += s.cfg.Duration - n.crashedAt
		}
		if down > 0 {
			if res.NodeDowntime == nil {
				res.NodeDowntime = make(map[cluster.NodeID]time.Duration)
			}
			res.NodeDowntime[id] = down
		}
	}
	return res
}

// recoveryTime computes time-to-recover from a sink-throughput series: the
// interval from crashAt until the end of the first fully-post-crash window
// whose throughput reached ≥90% of the pre-crash baseline. Returns 0 when
// no full post-warmup window precedes the crash (baseline unmeasurable)
// and -1 when no window recovered before the run ended.
func recoveryTime(series []float64, crashAt, window time.Duration, warmup int) time.Duration {
	crashWin := int(crashAt / window) // first window overlapping the crash
	if crashWin <= warmup {
		return 0
	}
	var baseline float64
	n := 0
	for i := warmup; i < crashWin && i < len(series); i++ {
		baseline += series[i]
		n++
	}
	if n == 0 || baseline <= 0 {
		return 0
	}
	baseline /= float64(n)
	// Scan from the first window that starts at/after the crash: the
	// window containing a mid-window crash is partially healthy and would
	// read as spuriously recovered.
	start := crashWin
	if crashAt%window != 0 {
		start++
	}
	for i := start; i < len(series); i++ {
		if series[i] >= 0.9*baseline {
			return time.Duration(i+1)*window - crashAt
		}
	}
	return -1
}
