package simulator

import (
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/topology"
)

// TestMultiTopologySharedNodesContend verifies cross-topology CPU
// contention: two identical chains on disjoint nodes run at full speed;
// stacked on the same nodes with combined demand over capacity, both slow
// down by the shared overcommit factor.
func TestMultiTopologySharedNodesContend(t *testing.T) {
	c := emulabCluster(t)
	ids := c.NodeIDs()

	build := func(name string) *topology.Topology {
		b := topology.NewBuilder(name)
		b.SetSpout("s", 1).SetCPULoad(80).SetMemoryLoad(256).
			SetProfile(topology.ExecProfile{CPUPerTuple: 500 * time.Microsecond, TupleBytes: 128})
		b.SetBolt("z", 1).ShuffleGrouping("s").SetCPULoad(80).SetMemoryLoad(256).
			SetProfile(topology.ExecProfile{CPUPerTuple: 500 * time.Microsecond, TupleBytes: 128})
		topo, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return topo
	}
	place := func(topo *topology.Topology, spoutNode, boltNode cluster.NodeID) *core.Assignment {
		a := core.NewAssignment(topo.Name(), "manual")
		a.Place(0, core.Placement{Node: spoutNode, Slot: 0})
		a.Place(1, core.Placement{Node: boltNode, Slot: 1})
		return a
	}
	run := func(stacked bool) (float64, float64) {
		sim, err := New(c, shortCfg())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		t1, t2 := build("one"), build("two")
		if err := sim.AddTopology(t1, place(t1, ids[0], ids[1])); err != nil {
			t.Fatal(err)
		}
		second := place(t2, ids[2], ids[3])
		if stacked {
			second = place(t2, ids[0], ids[1]) // same nodes: 160 points each
		}
		if err := sim.AddTopology(t2, second); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Topology("one").MeanSinkThroughput, res.Topology("two").MeanSinkThroughput
	}

	isolated1, isolated2 := run(false)
	stacked1, stacked2 := run(true)
	if isolated1 <= 0 || isolated2 <= 0 {
		t.Fatal("no throughput in isolated run")
	}
	// 160/100 points => 1.6x slowdown; allow simulation slack.
	for _, pair := range [][2]float64{{isolated1, stacked1}, {isolated2, stacked2}} {
		ratio := pair[0] / pair[1]
		if ratio < 1.4 || ratio > 1.8 {
			t.Errorf("stacking slowdown ratio = %.2f, want ~1.6", ratio)
		}
	}
}

// TestUtilizationMatchesDeclaredLoad pins the utilization model: a single
// always-busy 50-point task on a 100-point node reads as ~50% utilization.
func TestUtilizationMatchesDeclaredLoad(t *testing.T) {
	c := emulabCluster(t)
	b := topology.NewBuilder("util")
	// Bolt slower than spout: the bolt is always busy.
	b.SetSpout("s", 1).SetCPULoad(10).SetMemoryLoad(128).
		SetProfile(topology.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 128})
	b.SetBolt("z", 1).ShuffleGrouping("s").SetCPULoad(50).SetMemoryLoad(128).
		SetProfile(topology.ExecProfile{CPUPerTuple: 400 * time.Microsecond, TupleBytes: 128})
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ids := c.NodeIDs()
	a := core.NewAssignment("util", "manual")
	a.Place(0, core.Placement{Node: ids[0], Slot: 0})
	a.Place(1, core.Placement{Node: ids[1], Slot: 0})
	sim, err := New(c, shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	boltUtil := res.NodeUtilization[ids[1]]
	if boltUtil < 0.45 || boltUtil > 0.55 {
		t.Errorf("always-busy 50-point task => node util %.3f, want ~0.50", boltUtil)
	}
	// The spout node hosts a 10-point task that is mostly idle waiting
	// for the bolt: its utilization must be well below 10%.
	spoutUtil := res.NodeUtilization[ids[0]]
	if spoutUtil > 0.10 {
		t.Errorf("backpressured spout => node util %.3f, want < 0.10", spoutUtil)
	}
}
