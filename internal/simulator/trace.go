package simulator

import (
	"fmt"

	"rstorm/internal/trace"
)

// Observability attach points (DESIGN.md §8). Both are opt-in and inert
// by default: with no journal attached and tracing off, every guarded
// branch below is a single nil check and the simulation is byte-identical
// to the uninstrumented one.

// SetJournal attaches the decision journal: runtime control events (fault
// injections, OOM kills, topology submit/kill epochs) are recorded into
// it at simulated time. It must be called before the simulation starts;
// passing nil detaches it. The same journal is typically shared with the
// adaptive loop and Nimbus so Seq orders decisions across all three.
func (s *Simulation) SetJournal(j *trace.Journal) error {
	if s.started {
		return fmt.Errorf("simulation already started")
	}
	if j != nil && s.cfg.Shards > 0 {
		return fmt.Errorf("decision journal requires the single-threaded kernel (shards = 0)")
	}
	s.journal = j
	return nil
}

// Journal returns the attached decision journal, or nil.
func (s *Simulation) Journal() *trace.Journal { return s.journal }

// Tracer returns the sampled tuple tracer, or nil when
// Config.TraceSampleEvery is zero. Read its spans after the run.
func (s *Simulation) Tracer() *trace.Tracer { return s.tracer }

// LatencySummaries returns each topology's cumulative complete-tree
// latency summary, keyed by name — the /latency route's payload. Nil
// when Config.LatencyHistograms is off. Call it between RunTo epochs or
// after Run; the simulator is single-threaded, so reading mid-event-loop
// from another goroutine is not safe.
func (s *Simulation) LatencySummaries() map[string]trace.Summary {
	if !s.cfg.LatencyHistograms {
		return nil
	}
	out := make(map[string]trace.Summary, len(s.runs))
	for _, run := range s.runs {
		if run.cumHist != nil {
			out[run.topo.Name()] = run.cumHist.Summarize()
		}
	}
	return out
}

// traceOf returns tup's trace ID: nonzero only when tracing is on and
// the tuple's tree was sampled. The tracer nil check comes first so the
// untraced hot path pays one comparison.
func (s *Simulation) traceOf(tup *tuple) uint64 {
	if s.tracer == nil || tup.tree == nil {
		return 0
	}
	return tup.tree.trace
}

// journalRecord appends a runtime event at current virtual time if a
// journal is attached.
func (s *Simulation) journalRecord(code, topo, node string, task int, detail string) {
	if s.journal != nil {
		s.journal.Record(s.now(), code, topo, node, task, detail)
	}
}
