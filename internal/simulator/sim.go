package simulator

import (
	"fmt"
	"math/rand"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/faults"
	"rstorm/internal/metrics"
	"rstorm/internal/pardes"
	"rstorm/internal/topology"
	"rstorm/internal/trace"
)

// simNode is a worker machine at runtime.
type simNode struct {
	id   cluster.NodeID
	rack cluster.RackID
	spec cluster.NodeSpec
	// lane is the event loop that owns this node — fixed for the whole run
	// (lanes partition by rack, and machines do not change racks). Tasks
	// move between lanes only by moving between nodes.
	lane      *simLane
	nic       *link
	tasks     []*simTask
	cpuDemand float64 // true CPU points of all hosted tasks
	slowdown  float64 // max(1, cpuDemand/capacity): soft overcommit stretch
	dead      bool
	// slowFactor is the transient degradation multiplier of a Slow fault
	// (faultinject.go), 1 when healthy. It stretches service times on top
	// of the overcommit slowdown and resets when the node recovers.
	slowFactor float64
	// crashedAt is the virtual time of the node's last crash; downtime
	// accumulates completed dead intervals (recoverNode), with a still-dead
	// tail added at buildResult.
	crashedAt time.Duration
	downtime  time.Duration
	// everHosted marks nodes that held at least one task at any point of
	// the run (a node fully drained by migration still counts as used).
	everHosted bool
	// departedWeighted accumulates busy-duration × CPU points of work that
	// migrated tasks performed while hosted here, so utilization
	// accounting attributes each task's busy time to the node it actually
	// ran on.
	departedWeighted float64
}

// simTask is one executor at runtime.
type simTask struct {
	run       *topoRun
	task      topology.Task
	comp      *topology.Component
	node      *simNode
	placement core.Placement
	queue     *boundedQueue
	outs      []*router
	isSink    bool
	busy      bool
	dead      bool
	tracker   metrics.BusyTracker
	// service is the stretched per-tuple cost, frozen at Run start once
	// the node's overcommit factor is known.
	service time.Duration
	// procWin / sinkWin are the task's own metric series, lazily allocated
	// on first record so a task that never processes (or never sinks)
	// keeps no series. Per-task ownership keeps the hot path free of map
	// lookups and of cross-lane writes; buildResult sums tasks into the
	// per-component series the Result reports.
	procWin *metrics.Windowed
	sinkWin *metrics.Windowed

	// outBuf is the task's delivery scratch buffer. A task has at most
	// one emission in flight (spouts park until the previous root tuple's
	// fan-out is accepted; bolts stay busy until theirs is), so the buffer
	// is safely reused across emissions instead of allocating a fresh
	// outbound slice per tuple. outIdx is the delivery cursor.
	outBuf []outbound
	outIdx int

	// creditedBusy is the busy time already attributed to previous host
	// nodes at migration time (see Reassign); tracker.Busy() minus this is
	// what the current host has seen.
	creditedBusy time.Duration

	// handled counts tuples this task has executed over its lifetime
	// (bolt executions, spout root emissions) — the clock of the memory
	// model's state-growth ramp (memory.go). One integer add on the hot
	// path, maintained unconditionally.
	handled int64

	// Spout state.
	isSpout  int // 1 if spout (int for alignment clarity; 0 otherwise)
	inFlight int
	parked   bool // waiting for a max-pending credit
	// rngState is the spout's private splitmix64 key stream, used by the
	// sharded kernel in place of the simulation-wide RNG (lane.go). Seeded
	// from (seed, topology, task ID) only, so it is placement- and
	// shard-count-independent. Unused by the legacy kernel.
	rngState uint64
	// replayQ holds failed tuple trees awaiting re-emission (at-least-once
	// replay, faultinject.go). Each entry's max-pending credit is still
	// held, so re-emission does not take a new one. Always empty with
	// Config.Replay off.
	replayQ []spoutReplay

	// Per-window counters for the metrics tap (observer.go). Plain adds on
	// the hot path; materialized and reset at window flushes.
	winBusy      time.Duration
	winProcessed int64
	winEmitted   int64
	winOverflows int64
	winBytesOut  int64
	winLatSum    time.Duration
	winLatN      int64

	// Whole-run totals, summed across the run's tasks at buildResult.
	// Keeping them per task (not per run) means a lane only ever writes
	// counters of tasks it owns; integer sums commute, so the aggregated
	// totals match the old shared counters exactly.
	totEmitted    int64
	totProcessed  int64
	totDelivered  int64
	totExpired    int64
	totLatSum     time.Duration
	totLatN       int64
	totSent       int64
	totSentRemote int64

	// hist is the task's complete-tree latency histogram, allocated only
	// for sink tasks under Config.LatencyHistograms (recordSink is the
	// sole observation point) and nil otherwise — the hot path pays one
	// nil check. Merged into the run's window/cumulative histograms and
	// reset at each window flush.
	hist *trace.Histogram

	// edges are this task's outgoing traffic counters in wire-creation
	// order (outgoing streams, then consumer tasks — deterministic and
	// placement-independent). Allocated on the first buildRouters pass and
	// re-linked positionally on Reassign rebuilds, so counts accumulated
	// mid-window survive a migration intact. edgeBuf is the reusable
	// materialization of edges into TaskSample.Edges at window flushes.
	edges   []*edgeCount
	edgeBuf []EdgeRate
}

// wire is a precomputed delivery edge to one consumer task: the network
// path classification is static per task pair, so it is resolved once at
// topology-add time instead of per tuple.
type wire struct {
	dest    *simTask
	latency time.Duration
	net     bool  // path crosses the network (consumes NIC bandwidth)
	uplink  *link // rack uplink for inter-rack hops, else nil
	// edge is the persistent per-(emitter, consumer) traffic counter this
	// wire delivers into. Wires are rebuilt on every Reassign; edge
	// counters are owned by the emitting task and survive rebuilds, so
	// mid-window migrations neither lose nor double-count traffic.
	edge *edgeCount
}

// edgeCount measures one delivery edge — (emitter task, consumer task) —
// for the adaptive control plane's traffic matrix. The tuples counter is a
// single int add on the hot delivery path, materialized into TaskSample
// edge rates and reset at each metrics-window flush. The edge set is fixed
// at topology-add time (wires span every consumer regardless of
// placement), so counters are allocated once and only re-linked when
// Reassign rebuilds the wires.
type edgeCount struct {
	dest   *simTask
	tuples int64 // window counter, reset at flush
}

// router fans one outgoing stream out to consumer tasks per its grouping.
type router struct {
	stream  topology.Stream
	wires   []wire // one per consumer task, in task order
	local   []int  // indices into wires of same-worker consumers
	rr      int
	localRR int
	carry   float64
}

// topoRun is one topology's runtime state.
type topoRun struct {
	topo       *topology.Topology
	assignment *core.Assignment
	tasks      map[int]*simTask
	ordered    []*simTask // dense task-ID order, for iteration
	maxPending int        // per-spout-task tuple-tree cap

	// winHist / cumHist aggregate the run's sink-task histograms per
	// window and over the whole run (Config.LatencyHistograms); latP99
	// is the per-window p99 series in milliseconds, closed at full
	// window boundaries like the throughput series. All nil/empty with
	// histograms off.
	winHist *trace.Histogram
	cumHist *trace.Histogram
	latP99  []float64
}

// Simulation wires topologies, assignments, and a cluster into a
// discrete-event run. A simulation either runs in one shot (Run) or in
// epochs: Start, then RunTo as many times as needed — with Reassign calls
// between epochs migrating tasks — then Finish.
//
// Two kernels share this type (DESIGN.md §11). With Config.Shards == 0 the
// legacy single-threaded kernel runs: one lane holds every node and one
// engine drives the whole cluster, byte-identical to the pre-sharding
// simulator. With Shards >= 1 the sharded kernel runs: one lane per rack,
// advanced in conservative lookahead windows by a pardes.Coordinator over
// Shards workers. The sharded kernel's refinements (cross-rack ack delay,
// per-spout key streams) make it a slightly different — equally valid —
// model than the legacy kernel, but its results are byte-identical across
// every Shards value, which is what makes the parallelism trustworthy.
type Simulation struct {
	cfg      Config
	cluster  *cluster.Cluster
	rng      *rand.Rand
	nodes    map[cluster.NodeID]*simNode
	order    []cluster.NodeID
	uplinks  map[cluster.RackID]*link
	runs     []*topoRun
	schedule faults.Schedule // pre-start fault injections, applied in Start
	faultLog []FaultRecord   // faults actually applied, in virtual-time order
	started  bool
	finished bool

	// Kernel state. lanes is never empty: the legacy kernel is one lane
	// spanning the cluster. lookahead is the inter-rack path latency — the
	// conservative window bound. clock / nextFlush drive the sharded
	// window loop (sharded.go); coord exists only while sharded and
	// started.
	sharded   bool
	lanes     []*simLane
	coord     *pardes.Coordinator
	lookahead time.Duration
	clock     time.Duration
	nextFlush time.Duration // next flush barrier; 0 = flushes disabled

	// Metrics tap (observer.go). lastFlush is the virtual time of the most
	// recent window flush, bounding the partial tail window Finish (and
	// mid-window Reassigns) must still deliver.
	observer  Observer
	sampleBuf []TaskSample
	windowIdx int
	lastFlush time.Duration

	// Observability attach points (trace.go). tracer exists iff
	// Config.TraceSampleEvery > 0; journal is attached via SetJournal.
	// Both require the legacy kernel (rejected otherwise).
	tracer  *trace.Tracer
	journal *trace.Journal
}

// New returns a Simulation over the cluster.
func New(c *cluster.Cluster, cfg Config) (*Simulation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("simulator config: %w", err)
	}
	s := &Simulation{
		cfg:     cfg,
		cluster: c,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nodes:   make(map[cluster.NodeID]*simNode, c.Size()),
		order:   c.NodeIDs(),
		uplinks: make(map[cluster.RackID]*link, len(c.Racks())),
	}
	if cfg.TraceSampleEvery > 0 {
		s.tracer = trace.NewTracer(cfg.TraceSampleEvery, cfg.TraceMaxSpans)
	}
	for _, n := range c.Nodes() {
		sn := &simNode{id: n.ID, rack: n.Rack, spec: n.Spec, slowdown: 1, slowFactor: 1}
		sn.nic = newLink(func() bool { return !sn.dead },
			n.Spec.NICMbps, cfg.NICQueueCapacity, cfg.NICWindow)
		s.nodes[n.ID] = sn
	}
	// One uplink per rack to the aggregation switch (Fig. 4). All
	// inter-rack traffic leaving a rack shares it.
	for _, rack := range c.Racks() {
		s.uplinks[rack] = newLink(func() bool { return true },
			c.Network().InterRackMbps, cfg.NICQueueCapacity*4, cfg.NICWindow*4)
	}

	// Lane partition. The sharded kernel slices the cluster one lane per
	// rack — the partition depends only on the cluster, never on Shards,
	// so results are identical for every worker count. A single-rack
	// cluster (or a degenerate zero inter-rack latency, which would leave
	// no conservative lookahead) collapses to one lane: still the sharded
	// kernel's semantics, just with no parallelism to extract.
	s.sharded = cfg.Shards > 0
	s.lookahead = c.Network().Latency(cluster.PathInterRack)
	racks := c.Racks()
	laneCount := 1
	var rackLane map[cluster.RackID]int
	if s.sharded && s.lookahead > 0 && len(racks) > 1 {
		laneCount = len(racks)
		rackLane = make(map[cluster.RackID]int, laneCount)
		for i, r := range racks {
			rackLane[r] = i
		}
	}
	s.lanes = make([]*simLane, laneCount)
	for i := range s.lanes {
		s.lanes[i] = newLane(s, i)
		s.lanes[i].out = make([]pardes.Ring[laneMsg], laneCount)
	}
	for _, id := range s.order {
		n := s.nodes[id]
		li := 0
		if rackLane != nil {
			li = rackLane[n.rack]
		}
		n.lane = s.lanes[li]
		n.nic.lane = n.lane
		n.lane.nodes = append(n.lane.nodes, n)
	}
	for _, rack := range racks {
		li := 0
		if rackLane != nil {
			li = rackLane[rack]
		}
		s.uplinks[rack].lane = s.lanes[li]
	}
	return s, nil
}

// Config returns the simulation's effective (default-filled) configuration.
func (s *Simulation) Config() Config { return s.cfg }

// now returns the current virtual time. Lane 0's clock is authoritative:
// in the legacy kernel it is the only engine, and in the sharded kernel
// every public entry point runs at a barrier, where all lanes agree.
func (s *Simulation) now() time.Duration { return s.lanes[0].eng.Now() }

// AddTopology registers a scheduled topology for execution. It must be
// called before Start; SubmitTopology (tenancy.go) is the mid-run
// admission path.
func (s *Simulation) AddTopology(topo *topology.Topology, a *core.Assignment) error {
	if s.started {
		return fmt.Errorf("simulation already started")
	}
	_, err := s.addRun(topo, a)
	return err
}

// addRun validates an assignment and constructs the topology's runtime
// state, wiring its tasks onto their nodes and building delivery routers.
// Shared by the pre-start AddTopology and the mid-run SubmitTopology.
func (s *Simulation) addRun(topo *topology.Topology, a *core.Assignment) (*topoRun, error) {
	if a.Topology != topo.Name() {
		return nil, fmt.Errorf("assignment is for %q, topology is %q", a.Topology, topo.Name())
	}
	if !a.Complete(topo) {
		return nil, fmt.Errorf("assignment for %q is incomplete", topo.Name())
	}
	for _, r := range s.runs {
		if r.topo.Name() == topo.Name() {
			return nil, fmt.Errorf("topology %q already added", topo.Name())
		}
	}
	run := &topoRun{
		topo:       topo,
		assignment: a,
		tasks:      make(map[int]*simTask, topo.TotalTasks()),
		maxPending: topo.MaxSpoutPending(),
	}
	if run.maxPending <= 0 {
		run.maxPending = s.cfg.MaxSpoutPending
	}
	if s.cfg.LatencyHistograms {
		run.winHist = trace.NewHistogram()
		run.cumHist = trace.NewHistogram()
	}
	sinkSet := make(map[string]bool)
	for _, c := range topo.Sinks() {
		sinkSet[c.Name] = true
	}
	for _, task := range topo.Tasks() {
		p := a.Placements[task.ID]
		node, ok := s.nodes[p.Node]
		if !ok {
			return nil, fmt.Errorf("task %d placed on unknown node %q", task.ID, p.Node)
		}
		comp := topo.Component(task.Component)
		st := &simTask{
			run:       run,
			task:      task,
			comp:      comp,
			node:      node,
			placement: p,
			queue:     newBoundedQueue(s.cfg.QueueCapacity),
			isSink:    sinkSet[comp.Name],
			rngState:  taskSeed(s.cfg.Seed, topo.Name(), task.ID),
		}
		if comp.Kind == topology.KindSpout {
			st.isSpout = 1
		}
		if s.cfg.LatencyHistograms && st.isSink {
			st.hist = trace.NewHistogram()
		}
		node.tasks = append(node.tasks, st)
		node.cpuDemand += comp.EffectiveCPUPoints()
		node.everHosted = true
		run.tasks[task.ID] = st
		run.ordered = append(run.ordered, st)
	}
	s.buildRouters(run)
	s.runs = append(s.runs, run)
	return run, nil
}

// buildRouters (re)resolves the run's delivery edges. Path level, latency,
// and rack uplink are static per (emitter, consumer) pair for a given
// placement, so they are resolved once at topology-add time — and again
// after a Reassign moves tasks — rather than per delivered tuple. Rebuilding
// resets round-robin and out-ratio carry state, which is fine: a rebalance
// is a restart of the affected workers.
func (s *Simulation) buildRouters(run *topoRun) {
	net := s.cluster.Network()
	topo := run.topo
	for _, st := range run.ordered {
		st.outs = st.outs[:0]
		// Edge counters are identified positionally: the wire iteration
		// order below is placement-independent (outgoing streams, then
		// consumer tasks), so on a rebuild the running index re-links each
		// wire to the counter it fed before the migration.
		edgeIdx := 0
		for _, stream := range topo.Outgoing(st.task.Component) {
			r := &router{stream: stream}
			for _, ct := range topo.TasksOf(stream.To) {
				target := run.tasks[ct.ID]
				if edgeIdx == len(st.edges) {
					st.edges = append(st.edges, &edgeCount{dest: target})
				}
				edge := st.edges[edgeIdx]
				edgeIdx++
				sameWorker := target.placement == st.placement
				path := s.cluster.PathBetween(st.node.id, target.node.id, sameWorker)
				w := wire{
					dest:    target,
					latency: net.Latency(path),
					net:     path.CrossesNetwork(),
					edge:    edge,
				}
				if path == cluster.PathInterRack && net.InterRackMbps > 0 {
					w.uplink = s.uplinks[st.node.rack]
				}
				if sameWorker {
					r.local = append(r.local, len(r.wires))
				}
				r.wires = append(r.wires, w)
			}
			st.outs = append(st.outs, r)
		}
	}
}

// FailNodeAt schedules a node failure during the run: its tasks die,
// queued tuples are dropped (their trees fail so spouts are not wedged),
// and blocked senders are released. It is shorthand for injecting a Crash
// fault and, like InjectFault, is legal both before Start and mid-run
// between epochs.
func (s *Simulation) FailNodeAt(node cluster.NodeID, at time.Duration) error {
	return s.InjectFault(faults.Fault{Kind: faults.Crash, Node: node, At: at})
}

// Run executes the simulation in one shot and returns its Result. A
// Simulation runs once. Epoch-driven callers (the adaptive control loop)
// use Start / RunTo / Reassign / Finish instead.
func (s *Simulation) Run() (*Result, error) {
	if err := s.Start(); err != nil {
		return nil, err
	}
	return s.Finish()
}

// Start freezes the contention model, schedules failure injections and
// spout bootstraps, and makes the simulation runnable. It does not advance
// virtual time.
func (s *Simulation) Start() error {
	if s.started {
		return fmt.Errorf("simulation already started")
	}
	if len(s.runs) == 0 {
		return fmt.Errorf("no topologies added")
	}
	s.started = true

	// Freeze per-node CPU overcommit factors (static processor sharing)
	// and per-task service times. Both stay fixed until a Reassign epoch
	// refreshes the affected nodes.
	for _, id := range s.order {
		s.freezeNode(s.nodes[id])
	}
	// Fault injections fire on the faulted node's lane: the crash mutates
	// that lane's nodes and tasks, so it must run inside that lane's loop.
	for _, f := range s.schedule {
		f := f
		ln := s.nodes[f.Node].lane
		ln.eng.Schedule(f.At, func() { ln.applyFault(f) })
	}
	for _, run := range s.runs {
		for _, st := range run.ordered {
			if st.isSpout == 1 {
				st.node.lane.scheduleTask(0, evSpoutCycle, st)
			}
		}
	}
	// Latency histograms ride the same flush cadence as the observer:
	// window boundaries close each topology's per-window percentile
	// sample whether or not anyone taps the samples. The legacy kernel
	// flushes via an in-loop event; the sharded kernel flushes at merge
	// barriers (sharded.go), where every lane is quiescent and cross-lane
	// task state is safe to read.
	if (s.observer != nil || s.cfg.LatencyHistograms) && s.cfg.MetricsWindow <= s.cfg.Duration {
		if s.sharded {
			s.nextFlush = s.cfg.MetricsWindow
		} else {
			s.lanes[0].scheduleTask(s.cfg.MetricsWindow, evWindowFlush, nil)
		}
	}
	// OOM enforcement shares the window cadence but not the observer: the
	// memory hard axis is enforced whether or not anyone is watching. The
	// check is scheduled after the flush, so at a shared boundary the
	// observer samples the over-capacity window before the kill happens.
	// Each lane enforces its own nodes.
	if s.cfg.MemoryModel && s.cfg.MetricsWindow <= s.cfg.Duration {
		for _, ln := range s.lanes {
			ln.scheduleTask(s.cfg.MetricsWindow, evOOMCheck, nil)
		}
	}
	if s.sharded {
		ifaces := make([]pardes.Lane, len(s.lanes))
		for i, ln := range s.lanes {
			ifaces[i] = ln.eng
		}
		s.coord = pardes.NewCoordinator(ifaces, s.cfg.Shards)
	}
	return nil
}

// RunTo advances virtual time to t (clamped to the configured duration).
// It is the epoch boundary of the adaptive control loop: between RunTo
// calls the simulation is paused and Reassign may migrate tasks. The
// sharded kernel advances in half-open windows, so events at exactly t
// stay pending until the next epoch (or Finish); the legacy kernel keeps
// its historical inclusive semantics.
func (s *Simulation) RunTo(t time.Duration) error {
	if !s.started {
		return fmt.Errorf("simulation not started")
	}
	if s.finished {
		return fmt.Errorf("simulation already finished")
	}
	if t > s.cfg.Duration {
		t = s.cfg.Duration
	}
	if s.sharded {
		s.runWindows(t)
	} else {
		s.lanes[0].eng.RunUntil(t)
	}
	return nil
}

// Finish runs the simulation to its configured duration and builds the
// Result. A Simulation finishes once.
func (s *Simulation) Finish() (*Result, error) {
	if !s.started {
		return nil, fmt.Errorf("simulation not started")
	}
	if s.finished {
		return nil, fmt.Errorf("simulation already finished")
	}
	if s.sharded {
		s.runWindows(s.cfg.Duration)
		// Events at exactly Duration are still pending (half-open
		// windows). Run them serially, lane by lane: any cross-lane
		// message they emit lands at or beyond Duration+lookahead — past
		// the end of simulated time for every lane — so leaving the
		// inboxes undrained afterwards is uniform and order-independent.
		for _, ln := range s.lanes {
			ln.eng.RunUntil(s.cfg.Duration)
		}
		s.mergeLaneFaults()
		s.coord.Stop()
	} else {
		s.lanes[0].eng.RunUntil(s.cfg.Duration)
	}
	// Deliver the trailing partial window: when Duration is not a multiple
	// of MetricsWindow the tail counters never see a scheduled flush, and
	// the adaptive profiler would silently miss the final samples.
	s.flushPartialWindow()
	s.finished = true
	return s.buildResult(), nil
}

// freezeNode recomputes a node's CPU overcommit stretch from the true
// demand of its hosted tasks, then refreezes its tasks' service times.
// Dead tasks consume nothing: an OOM-killed executor's CPU demand departs
// with it. (With the memory model off, a dead task only ever sits on a
// dead node, which is never refrozen, so the skip changes nothing.)
func (s *Simulation) freezeNode(n *simNode) {
	n.cpuDemand = 0
	for _, t := range n.tasks {
		if t.dead {
			continue
		}
		n.cpuDemand += t.comp.EffectiveCPUPoints()
	}
	n.slowdown = 1
	switch {
	case n.spec.Capacity.CPU > 0:
		if f := n.cpuDemand / n.spec.Capacity.CPU; f > 1 {
			n.slowdown = f
		}
	case n.cpuDemand > 0:
		n.slowdown = 1000 // no declared CPU at all: crawl
	}
	for _, t := range n.tasks {
		t.service = s.serviceTime(t)
	}
}

// serviceTime returns the stretched per-tuple cost for a task: the
// component's profile cost × the node's overcommit slowdown × any
// transient slow-fault degradation (slowFactor is exactly 1 on healthy
// nodes, so fault-free runs are bit-identical to the pre-fault model).
func (s *Simulation) serviceTime(t *simTask) time.Duration {
	d := time.Duration(float64(t.comp.Profile.CPUPerTuple) * t.node.slowdown * t.node.slowFactor)
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}

// spoutCycle generates one root tuple, delivers it, and loops. It parks
// when the max-pending window is full and is woken by tree completion. A
// queued replay proceeds regardless of credits: its tree's credit is
// already held.
//
//rstorm:hotpath
func (ln *simLane) spoutCycle(t *simTask) {
	if t.dead {
		return
	}
	if len(t.replayQ) == 0 && t.inFlight >= t.run.maxPending {
		t.parked = true
		return
	}
	ln.scheduleTask(t.service, evSpoutFire, t)
}

// spoutFire runs when a spout's per-tuple service completes: it emits one
// root tuple tree and starts delivering its fan-out.
//
//rstorm:hotpath
func (ln *simLane) spoutFire(t *simTask) {
	if t.dead {
		return
	}
	s := ln.sim
	t.tracker.AddBusy(t.service)
	t.winBusy += t.service
	t.winEmitted++
	t.handled++
	now := ln.eng.Now()
	// A queued replay re-emits a failed tree's key on its held credit;
	// otherwise a fresh root tuple draws a new key (and a new credit). The
	// sharded kernel draws from the spout's private key stream — a shared
	// RNG would be consumed in lane-interleaving order; the legacy kernel
	// keeps the historical shared-RNG draw order bit-for-bit.
	var key uint64
	attempt := 0
	replaying := len(t.replayQ) > 0
	switch {
	case replaying:
		re := t.replayQ[0]
		t.replayQ = t.replayQ[:copy(t.replayQ, t.replayQ[1:])]
		key, attempt = re.key, re.attempt
		ln.replayed++
	case s.sharded:
		key = t.nextKey() % uint64(t.comp.Profile.KeyCardinality)
	default:
		key = s.rng.Uint64() % uint64(t.comp.Profile.KeyCardinality)
	}
	tr := ln.newTree(t)
	tr.key = key
	tr.attempt = attempt
	if s.tracer != nil {
		if id := s.tracer.SampleRoot(); id != 0 {
			tr.trace = id
			s.tracer.Record(trace.Span{Trace: id, Kind: trace.SpanRoot,
				Topology: t.run.topo.Name(), Component: t.comp.Name,
				Task: t.task.ID, From: -1, At: now})
		}
	}
	outs := ln.routeOutputs(t, key, now, tr, true)
	t.totEmitted++
	if t.isSink {
		// A spout with no consumers is its own sink: count it.
		ln.recordSink(t, now, now)
	}
	if len(outs) == 0 {
		ln.freeTree(tr)
		if replaying {
			t.inFlight-- // the held credit has nothing left to wait for
		}
		ln.scheduleTask(0, evSpoutCycle, t)
		return
	}
	tr.pending = len(outs)
	if !replaying {
		t.inFlight++
	}
	t.outIdx = 0
	ln.stepDeliver(t)
}

// boltTry starts processing the next queued tuple if the task is idle.
//
//rstorm:hotpath
func (ln *simLane) boltTry(t *simTask) {
	if t.busy || t.dead || t.queue.empty() {
		return
	}
	tup, unblocked, ok := t.queue.dequeue()
	if !ok {
		return
	}
	if unblocked.kind != compNone {
		ln.scheduleComplete(0, unblocked)
	}
	t.busy = true
	ev := ln.newEvent(evBoltFire)
	ev.task = t
	ev.tup = tup
	ln.eng.ScheduleEvent(t.service, ev)
}

// boltFire runs when a bolt's service completes: it records the processed
// tuple and emits (then delivers) its outputs.
//
//rstorm:hotpath
func (ln *simLane) boltFire(t *simTask, tup *tuple) {
	s := ln.sim
	t.tracker.AddBusy(t.service)
	if t.dead {
		// The task's node died mid-service: the tuple is lost. Count the
		// drop and fail its tree so the spout's max-pending credit comes
		// back instead of leaking (a small window could otherwise wedge
		// the spout for the rest of the run).
		ln.dropTuple(tup)
		return
	}
	now := ln.eng.Now()
	t.totProcessed++
	t.winBusy += t.service
	t.winProcessed++
	t.handled++
	if t.procWin == nil {
		t.procWin = newWindowed(s.cfg.MetricsWindow)
	}
	t.procWin.Record(now, 1)
	if id := s.traceOf(tup); id != 0 {
		wait := now - t.service - tup.arrivedAt
		if wait < 0 {
			// A mid-service refreeze can stretch t.service past the value
			// this execution was scheduled with; clamp rather than report
			// a negative queue wait.
			wait = 0
		}
		s.tracer.Record(trace.Span{Trace: id, Kind: trace.SpanHop,
			Topology: t.run.topo.Name(), Component: t.comp.Name,
			Task: t.task.ID, From: int(tup.fromTask), At: now,
			Wait: wait, Service: t.service, Net: tup.arrivedAt - tup.sentAt})
	}
	if t.isSink {
		ln.recordSink(t, now, tup.created)
	}
	outs := ln.routeOutputs(t, tup.key, tup.created, tup.tree, false)
	tr := tup.tree
	ln.freeTuple(tup)
	// The combined delta (children added minus this instance consumed)
	// must reach the tree before any child's own ack can: ackTree rides
	// the same FIFO outbox the children's later acks will, so the tree's
	// pending count never transiently hits zero.
	ln.ackTree(tr, len(outs)-1, false)
	t.outIdx = 0
	ln.stepDeliver(t)
}

// outbound is one tuple instance headed to a destination task.
type outbound struct {
	tup *tuple
	wire
}

// routeOutputs materializes the output tuple instances for one processed
// (or spout-generated) tuple across every outgoing stream, into the task's
// reusable scratch buffer.
//
//rstorm:hotpath
func (ln *simLane) routeOutputs(
	t *simTask, key uint64, created time.Duration, tr *tree, fromSpout bool,
) []outbound {
	outs := t.outBuf[:0]
	bytes := t.comp.Profile.TupleBytes
	for _, r := range t.outs {
		n := 1
		if !fromSpout {
			r.carry += t.comp.Profile.OutRatio
			n = int(r.carry)
			r.carry -= float64(n)
		}
		for i := 0; i < n; i++ {
			if r.stream.Grouping == topology.GroupingAll {
				// One tuple instance per consumer task; no template
				// tuple is built and discarded.
				for wi := range r.wires {
					outs = append(outs, outbound{
						tup:  ln.newTuple(bytes, key, created, tr),
						wire: r.wires[wi],
					})
				}
				continue
			}
			var wi int
			switch r.stream.Grouping {
			case topology.GroupingGlobal:
				wi = 0
			case topology.GroupingFields:
				wi = hashKey(key, len(r.wires))
			case topology.GroupingLocalOrShuffle:
				if len(r.local) > 0 {
					wi = r.local[r.localRR%len(r.local)]
					r.localRR++
				} else {
					wi = r.rr % len(r.wires)
					r.rr++
				}
			default: // shuffle
				wi = r.rr % len(r.wires)
				r.rr++
			}
			outs = append(outs, outbound{
				tup:  ln.newTuple(bytes, key, created, tr),
				wire: r.wires[wi],
			})
		}
	}
	t.outBuf = outs
	return outs
}

// stepDeliver delivers the task's next pending outbound, or finishes the
// sequence. Deliveries are strictly one at a time: the next one starts
// only when the previous is accepted downstream, which is what blocks an
// emitter on backpressure.
//
//rstorm:hotpath
func (ln *simLane) stepDeliver(t *simTask) {
	if t.outIdx >= len(t.outBuf) {
		ln.finishDeliver(t)
		return
	}
	ln.deliver(t, t.outBuf[t.outIdx], completion{kind: compDeliver, task: t})
}

// finishDeliver runs after the last outbound of an emission is accepted:
// spouts loop, bolts go idle and poll their queue.
//
//rstorm:hotpath
func (ln *simLane) finishDeliver(t *simTask) {
	if t.isSpout == 1 {
		ln.spoutCycle(t)
		return
	}
	t.busy = false
	ln.boltTry(t)
}

// deliver moves one tuple instance toward its destination: directly (with
// path latency) for local hand-offs, through the sender's NIC for remote
// ones. comp fires when the sender may proceed.
//
//rstorm:hotpath
func (ln *simLane) deliver(from *simTask, ob outbound, comp completion) {
	s := ln.sim
	ob.edge.tuples++
	from.totSent++
	// Remote accounting classifies against *live* placements, not the
	// wire-build-time ob.net: a sender mid-emission across a Reassign
	// still delivers its buffered outbounds on the stale path (documented
	// in reassign.go), but the inter-node counters must agree with the
	// flush-time EdgeRate.Remote classification, which sees the same live
	// placements. Outside that transition the two predicates are
	// identical (a wire crosses the network iff its endpoints' nodes
	// differ).
	if ob.dest.node != from.node {
		from.totSentRemote++
	}
	if id := s.traceOf(ob.tup); id != 0 {
		ob.tup.sentAt = ln.eng.Now()
		ob.tup.fromTask = int32(from.task.ID)
	}
	// The early dead-destination drop applies only to same-lane targets:
	// another lane's liveness may not be read mid-window (and could have
	// changed by the tuple's arrival time anyway). Cross-lane tuples take
	// the normal path and are dropped by the arrival-side check in
	// enqueueAt, on the destination's own lane. The gate's outcome depends
	// only on the rack partition, never on the worker count.
	if ob.dest.node.lane == ln && (ob.dest.dead || ob.dest.node.dead) {
		if id := s.traceOf(ob.tup); id != 0 {
			s.tracer.Record(trace.Span{Trace: id, Kind: trace.SpanDrop,
				Topology: from.run.topo.Name(), Component: ob.dest.comp.Name,
				Task: ob.dest.task.ID, From: from.task.ID, At: ln.eng.Now()})
		}
		ln.dropTuple(ob.tup)
		ln.scheduleComplete(0, comp)
		return
	}
	if !ob.net {
		ln.scheduleArrive(ob.latency, ob.dest, ob.tup, comp)
		return
	}
	from.winBytesOut += int64(ob.tup.bytes)
	from.node.nic.send(ln, transfer{
		tup:      ob.tup,
		dest:     ob.dest,
		latency:  ob.latency,
		uplink:   ob.uplink,
		accepted: comp,
	})
}

// enqueueAt admits a tuple to a task's input queue, parking the producer
// completion when full. Always runs on dest's own lane.
//
//rstorm:hotpath
func (ln *simLane) enqueueAt(dest *simTask, tup *tuple, comp completion) {
	s := ln.sim
	if dest.dead || dest.node.dead {
		if id := s.traceOf(tup); id != 0 {
			s.tracer.Record(trace.Span{Trace: id, Kind: trace.SpanDrop,
				Topology: dest.run.topo.Name(), Component: dest.comp.Name,
				Task: dest.task.ID, From: int(tup.fromTask), At: ln.eng.Now()})
		}
		ln.dropTuple(tup)
		ln.scheduleComplete(0, comp)
		return
	}
	if id := s.traceOf(tup); id != 0 {
		// Arrival at the queue, including any time about to be spent
		// parked as a waiter: queue wait measures from here.
		tup.arrivedAt = ln.eng.Now()
	}
	if dest.queue.tryEnqueue(tup) {
		ln.scheduleComplete(0, comp)
		ln.scheduleTask(0, evBoltTry, dest)
		return
	}
	dest.winOverflows++
	dest.queue.addWaiter(tup, comp)
}

// recordSink counts a tuple arriving at a sink component and samples its
// end-to-end latency. Tuples older than the tuple timeout are expired:
// real Storm would have failed and replayed them, so they do not count
// toward throughput.
//
//rstorm:hotpath
func (ln *simLane) recordSink(t *simTask, now, created time.Duration) {
	s := ln.sim
	age := now - created
	t.winLatSum += age
	t.winLatN++
	if t.hist != nil {
		// Expired arrivals included: like winLatSum, the histogram
		// reports the truth, not the SLA view.
		t.hist.Observe(age)
	}
	if s.cfg.TupleTimeout > 0 && age > s.cfg.TupleTimeout {
		t.totExpired++
		return
	}
	t.totDelivered++
	if t.sinkWin == nil {
		t.sinkWin = newWindowed(s.cfg.MetricsWindow)
	}
	t.sinkWin.Record(now, 1)
	t.totLatSum += age
	t.totLatN++
}

// dropTuple abandons a tuple instance lost to a node failure.
func (ln *simLane) dropTuple(tup *tuple) {
	ln.dropped++
	ln.failTuple(tup)
}

// migrateTuple abandons a tuple drained from a migrating task's queue (the
// rebalance analogue of Storm's worker restart: in-flight tuples fail and
// would be replayed by the spout).
func (ln *simLane) migrateTuple(tup *tuple) {
	ln.migrated++
	ln.failTuple(tup)
}

// failTuple releases a tuple instance and fails its tree so the spout
// recovers its max-pending credit rather than wedging.
//
//rstorm:hotpath
func (ln *simLane) failTuple(tup *tuple) {
	tr := tup.tree
	ln.freeTuple(tup)
	if tr == nil {
		return
	}
	ln.ackTree(tr, -1, true)
}

// completeTree returns a max-pending credit to the spout and wakes it.
// With at-least-once replay on, a failed tree with retries left re-emits
// from the spout after an exponential backoff instead — its credit stays
// held until the retry chain completes or is exhausted. Always runs on
// the tree's home lane (applyAck is the only caller besides spoutFire's
// empty-fanout path), so the spout it wakes is local.
//
//rstorm:hotpath
func (ln *simLane) completeTree(tr *tree) {
	s := ln.sim
	sp := tr.spout
	if tr.failed && s.cfg.Replay && sp != nil {
		if !sp.dead && tr.attempt < s.cfg.ReplayMaxRetries {
			key, attempt := tr.key, tr.attempt
			ln.freeTree(tr)
			ev := ln.newEvent(evSpoutReplay)
			ev.task = sp
			ev.key = key
			ev.attempt = attempt + 1
			ln.eng.ScheduleEvent(s.cfg.ReplayBackoff<<uint(attempt), ev)
			return
		}
		ln.lostTrees++
	}
	ln.freeTree(tr)
	if sp == nil {
		return
	}
	sp.inFlight--
	if sp.parked && !sp.dead {
		sp.parked = false
		ln.scheduleTask(0, evSpoutCycle, sp)
	}
}

// failNode kills a node mid-run. Runs on the node's own lane (fault
// events are scheduled onto the faulted node's lane).
func (ln *simLane) failNode(id cluster.NodeID) {
	n := ln.sim.nodes[id]
	if n == nil || n.dead {
		return
	}
	n.dead = true
	n.crashedAt = ln.eng.Now()
	for _, t := range n.tasks {
		t.dead = true
		tuples, unblocked := t.queue.drain()
		for _, tup := range tuples {
			ln.dropTuple(tup)
		}
		for _, comp := range unblocked {
			ln.scheduleComplete(0, comp)
		}
	}
	n.nic.fail(ln)
}

// newWindowed allocates a per-task metric series. The window is always a
// validated config value, so the error branch is unreachable.
func newWindowed(window time.Duration) *metrics.Windowed {
	w, _ := metrics.NewWindowed(window)
	return w
}
