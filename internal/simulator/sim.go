package simulator

import (
	"fmt"
	"math/rand"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/des"
	"rstorm/internal/metrics"
	"rstorm/internal/topology"
)

// simNode is a worker machine at runtime.
type simNode struct {
	id        cluster.NodeID
	rack      cluster.RackID
	spec      cluster.NodeSpec
	nic       *link
	tasks     []*simTask
	cpuDemand float64 // declared CPU points of all hosted tasks
	slowdown  float64 // max(1, cpuDemand/capacity): soft overcommit stretch
	dead      bool
}

// simTask is one executor at runtime.
type simTask struct {
	run       *topoRun
	task      topology.Task
	comp      *topology.Component
	node      *simNode
	placement core.Placement
	queue     *boundedQueue
	outs      []*router
	isSink    bool
	busy      bool
	dead      bool
	tracker   metrics.BusyTracker

	// Spout state.
	isSpout  int // 1 if spout (int for alignment clarity; 0 otherwise)
	inFlight int
	parked   bool // waiting for a max-pending credit
}

// router fans one outgoing stream out to consumer tasks per its grouping.
type router struct {
	stream  topology.Stream
	targets []*simTask
	local   []*simTask // same worker process, for local-or-shuffle
	rr      int
	localRR int
	carry   float64
}

// topoRun is one topology's runtime state.
type topoRun struct {
	topo       *topology.Topology
	assignment *core.Assignment
	tasks      map[int]*simTask
	maxPending int                          // per-spout-task tuple-tree cap
	sinkWin    map[string]*metrics.Windowed // per sink component
	procWin    map[string]*metrics.Windowed // per component, processed

	emitted    int64
	processed  int64
	delivered  int64
	expired    int64
	latencySum time.Duration
	latencyN   int64
}

// failure is a scheduled node death.
type failure struct {
	at   time.Duration
	node cluster.NodeID
}

// Simulation wires topologies, assignments, and a cluster into a
// discrete-event run.
type Simulation struct {
	cfg      Config
	cluster  *cluster.Cluster
	engine   *des.Engine
	rng      *rand.Rand
	nodes    map[cluster.NodeID]*simNode
	order    []cluster.NodeID
	uplinks  map[cluster.RackID]*link
	runs     []*topoRun
	failures []failure
	dropped  int64
	ran      bool
}

// New returns a Simulation over the cluster.
func New(c *cluster.Cluster, cfg Config) (*Simulation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("simulator config: %w", err)
	}
	s := &Simulation{
		cfg:     cfg,
		cluster: c,
		engine:  des.NewEngine(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nodes:   make(map[cluster.NodeID]*simNode, c.Size()),
		order:   c.NodeIDs(),
		uplinks: make(map[cluster.RackID]*link, len(c.Racks())),
	}
	for _, n := range c.Nodes() {
		sn := &simNode{id: n.ID, rack: n.Rack, spec: n.Spec, slowdown: 1}
		sn.nic = newLink(func() bool { return !sn.dead },
			n.Spec.NICMbps, cfg.NICQueueCapacity, cfg.NICWindow)
		s.nodes[n.ID] = sn
	}
	// One uplink per rack to the aggregation switch (Fig. 4). All
	// inter-rack traffic leaving a rack shares it.
	for _, rack := range c.Racks() {
		s.uplinks[rack] = newLink(func() bool { return true },
			c.Network().InterRackMbps, cfg.NICQueueCapacity*4, cfg.NICWindow*4)
	}
	return s, nil
}

// AddTopology registers a scheduled topology for execution.
func (s *Simulation) AddTopology(topo *topology.Topology, a *core.Assignment) error {
	if s.ran {
		return fmt.Errorf("simulation already ran")
	}
	if a.Topology != topo.Name() {
		return fmt.Errorf("assignment is for %q, topology is %q", a.Topology, topo.Name())
	}
	if !a.Complete(topo) {
		return fmt.Errorf("assignment for %q is incomplete", topo.Name())
	}
	for _, r := range s.runs {
		if r.topo.Name() == topo.Name() {
			return fmt.Errorf("topology %q already added", topo.Name())
		}
	}
	run := &topoRun{
		topo:       topo,
		assignment: a,
		tasks:      make(map[int]*simTask, topo.TotalTasks()),
		maxPending: topo.MaxSpoutPending(),
		sinkWin:    make(map[string]*metrics.Windowed),
		procWin:    make(map[string]*metrics.Windowed),
	}
	if run.maxPending <= 0 {
		run.maxPending = s.cfg.MaxSpoutPending
	}
	sinkSet := make(map[string]bool)
	for _, c := range topo.Sinks() {
		sinkSet[c.Name] = true
	}
	for _, task := range topo.Tasks() {
		p := a.Placements[task.ID]
		node, ok := s.nodes[p.Node]
		if !ok {
			return fmt.Errorf("task %d placed on unknown node %q", task.ID, p.Node)
		}
		comp := topo.Component(task.Component)
		st := &simTask{
			run:       run,
			task:      task,
			comp:      comp,
			node:      node,
			placement: p,
			queue:     newBoundedQueue(s.cfg.QueueCapacity),
			isSink:    sinkSet[comp.Name],
		}
		if comp.Kind == topology.KindSpout {
			st.isSpout = 1
		}
		node.tasks = append(node.tasks, st)
		node.cpuDemand += comp.CPULoad
		run.tasks[task.ID] = st
	}
	// Routers need all tasks of the run built first.
	for _, task := range topo.Tasks() {
		st := run.tasks[task.ID]
		for _, stream := range topo.Outgoing(task.Component) {
			r := &router{stream: stream}
			for _, ct := range topo.TasksOf(stream.To) {
				target := run.tasks[ct.ID]
				r.targets = append(r.targets, target)
				if target.placement == st.placement {
					r.local = append(r.local, target)
				}
			}
			st.outs = append(st.outs, r)
		}
	}
	s.runs = append(s.runs, run)
	return nil
}

// FailNodeAt schedules a node failure during the run: its tasks die,
// queued tuples are dropped (their trees fail so spouts are not wedged),
// and blocked senders are released.
func (s *Simulation) FailNodeAt(node cluster.NodeID, at time.Duration) error {
	if s.ran {
		return fmt.Errorf("simulation already ran")
	}
	if _, ok := s.nodes[node]; !ok {
		return fmt.Errorf("unknown node %q", node)
	}
	if at < 0 {
		return fmt.Errorf("failure time %v, want >= 0", at)
	}
	s.failures = append(s.failures, failure{at: at, node: node})
	return nil
}

// Run executes the simulation and returns its Result. A Simulation runs
// once.
func (s *Simulation) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("simulation already ran")
	}
	if len(s.runs) == 0 {
		return nil, fmt.Errorf("no topologies added")
	}
	s.ran = true

	// Freeze per-node CPU overcommit factors (static processor sharing).
	for _, id := range s.order {
		n := s.nodes[id]
		switch {
		case n.spec.Capacity.CPU > 0:
			if f := n.cpuDemand / n.spec.Capacity.CPU; f > 1 {
				n.slowdown = f
			}
		case n.cpuDemand > 0:
			n.slowdown = 1000 // no declared CPU at all: crawl
		}
	}
	for _, f := range s.failures {
		f := f
		s.engine.Schedule(f.at, func() { s.failNode(f.node) })
	}
	for _, run := range s.runs {
		for _, task := range run.topo.Tasks() {
			st := run.tasks[task.ID]
			if st.isSpout == 1 {
				st := st
				s.engine.Schedule(0, func() { s.spoutCycle(st) })
			}
		}
	}
	s.engine.RunUntil(s.cfg.Duration)
	return s.buildResult(), nil
}

// serviceTime returns the stretched per-tuple cost for a task.
func (s *Simulation) serviceTime(t *simTask) time.Duration {
	d := time.Duration(float64(t.comp.Profile.CPUPerTuple) * t.node.slowdown)
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}

// spoutCycle generates one root tuple, delivers it, and loops. It parks
// when the max-pending window is full and is woken by tree completion.
func (s *Simulation) spoutCycle(t *simTask) {
	if t.dead {
		return
	}
	if t.inFlight >= t.run.maxPending {
		t.parked = true
		return
	}
	service := s.serviceTime(t)
	s.engine.Schedule(service, func() {
		if t.dead {
			return
		}
		t.tracker.AddBusy(service)
		now := s.engine.Now()
		key := s.rng.Uint64() % uint64(t.comp.Profile.KeyCardinality)
		tr := &tree{spout: t}
		outs := s.routeOutputs(t, key, now, tr, true)
		t.run.emitted++
		if t.isSink {
			// A spout with no consumers is its own sink: count it.
			s.recordSink(t, now, now)
		}
		if len(outs) == 0 {
			s.engine.Schedule(0, func() { s.spoutCycle(t) })
			return
		}
		tr.pending = len(outs)
		t.inFlight++
		s.deliverSeq(t, outs, func() { s.spoutCycle(t) })
	})
}

// boltTry starts processing the next queued tuple if the task is idle.
func (s *Simulation) boltTry(t *simTask) {
	if t.busy || t.dead || t.queue.empty() {
		return
	}
	tup, unblocked, ok := t.queue.dequeue()
	if !ok {
		return
	}
	if unblocked != nil {
		s.engine.Schedule(0, unblocked)
	}
	t.busy = true
	service := s.serviceTime(t)
	s.engine.Schedule(service, func() {
		t.tracker.AddBusy(service)
		if t.dead {
			return
		}
		now := s.engine.Now()
		t.run.processed++
		t.run.procWinFor(t.comp.Name, s.cfg.MetricsWindow).Record(now, 1)
		if t.isSink {
			s.recordSink(t, now, tup.created)
		}
		outs := s.routeOutputs(t, tup.key, tup.created, tup.tree, false)
		tup.tree.pending += len(outs) - 1
		if tup.tree.pending == 0 {
			s.completeTree(tup.tree)
		}
		s.deliverSeq(t, outs, func() {
			t.busy = false
			s.boltTry(t)
		})
	})
}

// outbound is one tuple instance headed to a destination task.
type outbound struct {
	tup  *tuple
	dest *simTask
}

// routeOutputs materializes the output tuple instances for one processed
// (or spout-generated) tuple across every outgoing stream.
func (s *Simulation) routeOutputs(
	t *simTask, key uint64, created time.Duration, tr *tree, fromSpout bool,
) []outbound {
	var outs []outbound
	for _, r := range t.outs {
		n := 1
		if !fromSpout {
			r.carry += t.comp.Profile.OutRatio
			n = int(r.carry)
			r.carry -= float64(n)
		}
		for i := 0; i < n; i++ {
			tup := &tuple{
				bytes:   t.comp.Profile.TupleBytes,
				key:     key,
				created: created,
				tree:    tr,
			}
			switch r.stream.Grouping {
			case topology.GroupingAll:
				for _, dest := range r.targets {
					outs = append(outs, outbound{tup: &tuple{
						bytes: tup.bytes, key: tup.key, created: tup.created, tree: tr,
					}, dest: dest})
				}
			case topology.GroupingGlobal:
				outs = append(outs, outbound{tup: tup, dest: r.targets[0]})
			case topology.GroupingFields:
				outs = append(outs, outbound{tup: tup, dest: r.targets[hashKey(key, len(r.targets))]})
			case topology.GroupingLocalOrShuffle:
				if len(r.local) > 0 {
					outs = append(outs, outbound{tup: tup, dest: r.local[r.localRR%len(r.local)]})
					r.localRR++
				} else {
					outs = append(outs, outbound{tup: tup, dest: r.targets[r.rr%len(r.targets)]})
					r.rr++
				}
			default: // shuffle
				outs = append(outs, outbound{tup: tup, dest: r.targets[r.rr%len(r.targets)]})
				r.rr++
			}
		}
	}
	return outs
}

// deliverSeq delivers outs one at a time; done fires after the last is
// accepted, which is what blocks an emitter on downstream backpressure.
func (s *Simulation) deliverSeq(from *simTask, outs []outbound, done func()) {
	var next func(i int)
	next = func(i int) {
		if i >= len(outs) {
			done()
			return
		}
		s.deliver(from, outs[i], func() { next(i + 1) })
	}
	next(0)
}

// deliver moves one tuple instance toward its destination: directly (with
// path latency) for local hand-offs, through the sender's NIC for remote
// ones. accepted fires when the sender may proceed.
func (s *Simulation) deliver(from *simTask, ob outbound, accepted func()) {
	if ob.dest.dead || ob.dest.node.dead {
		s.dropTuple(ob.tup)
		s.engine.Schedule(0, accepted)
		return
	}
	sameWorker := from.placement == ob.dest.placement
	path := s.cluster.PathBetween(from.node.id, ob.dest.node.id, sameWorker)
	latency := s.cluster.Network().Latency(path)
	if !path.CrossesNetwork() {
		s.engine.Schedule(latency, func() {
			s.enqueueAt(ob.dest, ob.tup, accepted)
		})
		return
	}
	var uplink *link
	if path == cluster.PathInterRack && s.cluster.Network().InterRackMbps > 0 {
		uplink = s.uplinks[from.node.rack]
	}
	from.node.nic.send(s, transfer{
		tup:      ob.tup,
		dest:     ob.dest,
		latency:  latency,
		uplink:   uplink,
		accepted: accepted,
	})
}

// enqueueAt admits a tuple to a task's input queue, parking the producer
// callback when full.
func (s *Simulation) enqueueAt(dest *simTask, tup *tuple, accepted func()) {
	if dest.dead || dest.node.dead {
		s.dropTuple(tup)
		s.engine.Schedule(0, accepted)
		return
	}
	if dest.queue.tryEnqueue(tup) {
		s.engine.Schedule(0, accepted)
		s.engine.Schedule(0, func() { s.boltTry(dest) })
		return
	}
	dest.queue.addWaiter(tup, accepted)
}

// recordSink counts a tuple arriving at a sink component and samples its
// end-to-end latency. Tuples older than the tuple timeout are expired:
// real Storm would have failed and replayed them, so they do not count
// toward throughput.
func (s *Simulation) recordSink(t *simTask, now, created time.Duration) {
	age := now - created
	if s.cfg.TupleTimeout > 0 && age > s.cfg.TupleTimeout {
		t.run.expired++
		return
	}
	t.run.delivered++
	t.run.sinkWinFor(t.comp.Name, s.cfg.MetricsWindow).Record(now, 1)
	t.run.latencySum += age
	t.run.latencyN++
}

// dropTuple abandons a tuple instance (dead destination); the tree fails so
// the spout recovers its credit rather than wedging.
func (s *Simulation) dropTuple(tup *tuple) {
	s.dropped++
	if tup.tree == nil {
		return
	}
	tup.tree.failed = true
	tup.tree.pending--
	if tup.tree.pending == 0 {
		s.completeTree(tup.tree)
	}
}

// completeTree returns a max-pending credit to the spout and wakes it.
func (s *Simulation) completeTree(tr *tree) {
	sp := tr.spout
	if sp == nil {
		return
	}
	sp.inFlight--
	if sp.parked && !sp.dead {
		sp.parked = false
		s.engine.Schedule(0, func() { s.spoutCycle(sp) })
	}
}

// failNode kills a node mid-run.
func (s *Simulation) failNode(id cluster.NodeID) {
	n := s.nodes[id]
	if n == nil || n.dead {
		return
	}
	n.dead = true
	for _, t := range n.tasks {
		t.dead = true
		tuples, unblocked := t.queue.drain()
		for _, tup := range tuples {
			s.dropTuple(tup)
		}
		for _, fn := range unblocked {
			s.engine.Schedule(0, fn)
		}
	}
	n.nic.fail(s)
}

// procWinFor returns (creating) the processed-count series of a component.
func (r *topoRun) procWinFor(comp string, window time.Duration) *metrics.Windowed {
	w, ok := r.procWin[comp]
	if !ok {
		w, _ = metrics.NewWindowed(window)
		r.procWin[comp] = w
	}
	return w
}

// sinkWinFor returns (creating) the sink-arrival series of a component.
func (r *topoRun) sinkWinFor(comp string, window time.Duration) *metrics.Windowed {
	w, ok := r.sinkWin[comp]
	if !ok {
		w, _ = metrics.NewWindowed(window)
		r.sinkWin[comp] = w
	}
	return w
}
