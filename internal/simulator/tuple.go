package simulator

import (
	"hash/fnv"
	"time"
)

// tree tracks one spout-rooted tuple tree: pending is the number of live
// tuple instances descending from the root. When pending reaches zero the
// tree is complete and the spout regains a max-pending credit — Storm's
// acking flow control, with the ack notification itself modeled as free.
type tree struct {
	spout   *simTask
	pending int
	failed  bool // a descendant was dropped (node failure)
}

// tuple is one in-flight tuple instance.
type tuple struct {
	bytes   int
	key     uint64
	created time.Duration // spout emit time of the root, for latency
	tree    *tree
}

// hashKey maps a key to a consumer index for fields grouping.
func hashKey(key uint64, n int) int {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(key >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return int(h.Sum64() % uint64(n))
}
