package simulator

import (
	"time"
)

// tree tracks one spout-rooted tuple tree: pending is the number of live
// tuple instances descending from the root. When pending reaches zero the
// tree is complete and the spout regains a max-pending credit — Storm's
// acking flow control, with the ack notification itself modeled as free.
// Trees are pooled (see events.go).
type tree struct {
	spout   *simTask
	pending int
	failed  bool // a descendant was dropped (node failure)
	// key and attempt support at-least-once replay (Config.Replay): a
	// failed tree re-emits its root key from the spout, and attempt counts
	// how many times this tree already ran (0 = original emission).
	key     uint64
	attempt int
	// trace is the sampled-tracing context (Config.TraceSampleEvery):
	// nonzero on a traced tree, inherited by every descendant tuple via
	// this pointer — ack-tree propagation is the trace propagation. Zero
	// on unsampled trees and whenever tracing is off.
	trace uint64
}

// tuple is one in-flight tuple instance. Tuples are pooled (see events.go).
type tuple struct {
	bytes   int
	key     uint64
	created time.Duration // spout emit time of the root, for latency
	tree    *tree
	// sentAt/arrivedAt/fromTask are span timestamps, written and read
	// only on the traced paths (tree.trace != 0), so untraced tuples —
	// including pooled reuses — never touch them.
	sentAt    time.Duration
	arrivedAt time.Duration
	fromTask  int32
}

// hashKey maps a key to a consumer index for fields grouping. It is FNV-1a
// over the key's 8 little-endian bytes, inlined (bit-identical to
// hash/fnv's sum64a) so the per-tuple path does not allocate a hasher.
func hashKey(key uint64, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= key >> (8 * i) & 0xff
		h *= prime64
	}
	return int(h % uint64(n))
}
