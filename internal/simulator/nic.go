package simulator

import (
	"time"

	"rstorm/internal/metrics"
)

// transfer is one tuple crossing a link.
type transfer struct {
	tup     *tuple
	dest    *simTask
	latency time.Duration
	// uplink, when non-nil, is the rack uplink the tuple must traverse
	// after this node's NIC (inter-rack path, Fig. 4).
	uplink *link
	// accepted unblocks the sender once the transfer is admitted to the
	// egress queue.
	accepted completion
}

// link models a store-and-forward network stage: a bounded FIFO served at a
// byte rate, with a window of transfers allowed downstream awaiting
// acceptance (approximate TCP windowing). Node NICs and rack uplinks are
// both links. Saturating a link is what bounds network-bound topologies;
// the window propagates remote backpressure upstream.
//
// A link belongs to one lane — a node's NIC to its node's lane, a rack
// uplink to its rack's lane — and all its methods run on that lane: senders
// are tasks hosted on the same rack, and window-slot releases are routed
// home by scheduleComplete.
type link struct {
	alive    func() bool
	lane     *simLane
	rateBps  float64 // bytes per second; 0 = infinite
	capacity int
	window   int

	queue    ring[transfer]
	waiters  ring[transfer]
	serving  bool
	inFlight int
	busy     metrics.BusyTracker
}

func newLink(alive func() bool, mbps float64, capacity, window int) *link {
	return &link{
		alive:    alive,
		rateBps:  mbps * 1e6 / 8,
		capacity: capacity,
		window:   window,
	}
}

// send admits tr to the egress queue, or parks the sender when full.
//
//rstorm:hotpath
func (n *link) send(ln *simLane, tr transfer) {
	if !n.alive() {
		ln.dropTuple(tr.tup)
		ln.scheduleComplete(0, tr.accepted)
		return
	}
	if n.queue.len() < n.capacity {
		n.queue.push(tr)
		ln.scheduleComplete(0, tr.accepted)
		n.startServe(ln)
		return
	}
	n.waiters.push(tr)
}

// startServe begins transmitting the head transfer if the link is idle and
// the in-flight window has room.
//
//rstorm:hotpath
func (n *link) startServe(ln *simLane) {
	if n.serving || !n.alive() || n.queue.len() == 0 || n.inFlight >= n.window {
		return
	}
	n.serving = true
	tr := n.queue.pop()
	if n.waiters.len() > 0 {
		w := n.waiters.pop()
		n.queue.push(w)
		ln.scheduleComplete(0, w.accepted)
	}

	service := time.Nanosecond
	if n.rateBps > 0 {
		service = time.Duration(float64(tr.tup.bytes) / n.rateBps * float64(time.Second))
		if service <= 0 {
			service = time.Nanosecond
		}
	}
	n.busy.AddBusy(service)
	ev := ln.newEvent(evLinkDone)
	ev.link = n
	ev.tr = tr
	ln.eng.ScheduleEvent(service, ev)
}

// linkDone runs when the link finishes serializing a transfer: the tuple
// occupies a window slot while it propagates (through the rack uplink for
// inter-rack hops) and the slot frees once it is admitted downstream.
//
//rstorm:hotpath
func (ln *simLane) linkDone(n *link, tr transfer) {
	n.serving = false
	n.inFlight++
	release := completion{kind: compRelease, link: n}
	if up := tr.uplink; up != nil {
		// Hand off to the rack uplink; the NIC's window slot frees once
		// the uplink admits the transfer. The uplink is the NIC's own
		// rack's, so the hand-off never leaves the lane.
		up.send(ln, transfer{
			tup:      tr.tup,
			dest:     tr.dest,
			latency:  tr.latency,
			accepted: release,
		})
	} else {
		ln.scheduleArrive(tr.latency, tr.dest, tr.tup, release)
	}
	n.startServe(ln)
}

// fail drops everything queued and unblocks parked senders.
func (n *link) fail(ln *simLane) {
	for n.queue.len() > 0 {
		ln.dropTuple(n.queue.pop().tup)
	}
	for n.waiters.len() > 0 {
		tr := n.waiters.pop()
		ln.dropTuple(tr.tup)
		ln.scheduleComplete(0, tr.accepted)
	}
}
