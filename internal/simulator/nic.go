package simulator

import (
	"time"

	"rstorm/internal/metrics"
)

// transfer is one tuple crossing a link.
type transfer struct {
	tup     *tuple
	dest    *simTask
	latency time.Duration
	// uplink, when non-nil, is the rack uplink the tuple must traverse
	// after this node's NIC (inter-rack path, Fig. 4).
	uplink *link
	// accepted unblocks the sender once the transfer is admitted to the
	// egress queue.
	accepted func()
}

// link models a store-and-forward network stage: a bounded FIFO served at a
// byte rate, with a window of transfers allowed downstream awaiting
// acceptance (approximate TCP windowing). Node NICs and rack uplinks are
// both links. Saturating a link is what bounds network-bound topologies;
// the window propagates remote backpressure upstream.
type link struct {
	alive    func() bool
	rateBps  float64 // bytes per second; 0 = infinite
	capacity int
	window   int

	queue    []transfer
	waiters  []transfer
	serving  bool
	inFlight int
	busy     metrics.BusyTracker
}

func newLink(alive func() bool, mbps float64, capacity, window int) *link {
	return &link{
		alive:    alive,
		rateBps:  mbps * 1e6 / 8,
		capacity: capacity,
		window:   window,
	}
}

// send admits tr to the egress queue, or parks the sender when full.
func (n *link) send(s *Simulation, tr transfer) {
	if !n.alive() {
		s.dropTuple(tr.tup)
		s.engine.Schedule(0, tr.accepted)
		return
	}
	if len(n.queue) < n.capacity {
		n.queue = append(n.queue, tr)
		s.engine.Schedule(0, tr.accepted)
		n.startServe(s)
		return
	}
	n.waiters = append(n.waiters, tr)
}

// startServe begins transmitting the head transfer if the link is idle and
// the in-flight window has room.
func (n *link) startServe(s *Simulation) {
	if n.serving || !n.alive() || len(n.queue) == 0 || n.inFlight >= n.window {
		return
	}
	n.serving = true
	tr := n.queue[0]
	n.queue[0] = transfer{}
	n.queue = n.queue[1:]
	if len(n.waiters) > 0 {
		w := n.waiters[0]
		n.waiters[0] = transfer{}
		n.waiters = n.waiters[1:]
		n.queue = append(n.queue, w)
		s.engine.Schedule(0, w.accepted)
	}

	service := time.Nanosecond
	if n.rateBps > 0 {
		service = time.Duration(float64(tr.tup.bytes) / n.rateBps * float64(time.Second))
		if service <= 0 {
			service = time.Nanosecond
		}
	}
	n.busy.AddBusy(service)
	s.engine.Schedule(service, func() {
		n.serving = false
		n.inFlight++
		release := func() {
			n.inFlight--
			n.startServe(s)
		}
		if up := tr.uplink; up != nil {
			// Hand off to the rack uplink; the NIC's window slot
			// frees once the uplink admits the transfer.
			up.send(s, transfer{
				tup:      tr.tup,
				dest:     tr.dest,
				latency:  tr.latency,
				accepted: release,
			})
		} else {
			s.engine.Schedule(tr.latency, func() {
				s.enqueueAt(tr.dest, tr.tup, release)
			})
		}
		n.startServe(s)
	})
}

// fail drops everything queued and unblocks parked senders.
func (n *link) fail(s *Simulation) {
	for _, tr := range n.queue {
		s.dropTuple(tr.tup)
	}
	n.queue = nil
	for _, tr := range n.waiters {
		s.dropTuple(tr.tup)
		s.engine.Schedule(0, tr.accepted)
	}
	n.waiters = nil
}
