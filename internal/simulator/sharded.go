package simulator

import "time"

// runWindows drives the sharded kernel from the global clock to target,
// alternating conservative lookahead windows with merge barriers. Each
// iteration: drain the cross-lane inboxes into the destination engines,
// pick the largest horizon h no lane can be affected across (at most
// clock+lookahead, clamped to the next metrics flush and to target), let
// the coordinator advance every lane through [clock, h), then land the
// flush if h hit it.
//
// The lookahead bound is the inter-rack path latency: an event firing at
// time τ inside the window can push a cross-lane message no earlier than
// τ + lookahead ≥ h, so nothing drained at the next barrier belongs inside
// the window just run. (The single exception — an in-flight tuple whose
// new post-Reassign route is suddenly local — arrives clamped to the
// barrier time, which is itself identical for every shard count.)
//
// When every lane is idle until some future time, the loop skips ahead:
// the window opens at the earliest pending event rather than crawling from
// the current clock in lookahead-sized steps through dead air.
func (s *Simulation) runWindows(target time.Duration) {
	for s.clock < target {
		s.drainInboxes()
		// hmax: hard ceiling for this window — next flush barrier or target.
		hmax := target
		if s.nextFlush > 0 && s.nextFlush < hmax {
			hmax = s.nextFlush
		}
		var h time.Duration
		if len(s.lanes) == 1 {
			// One lane cannot race itself: run straight to the ceiling.
			h = hmax
		} else {
			h = s.clock + s.lookahead
			if h > hmax {
				h = hmax
			}
			if earliest, ok := s.coord.NextEvent(); !ok {
				h = hmax
			} else if earliest >= h && earliest < hmax {
				// Idle gap: open the window at the earliest event instead.
				h = earliest + s.lookahead
				if h > hmax {
					h = hmax
				}
			} else if earliest >= hmax {
				h = hmax
			}
		}
		s.coord.Advance(h)
		s.clock = h
		if s.nextFlush > 0 && s.clock == s.nextFlush {
			// Barrier doubles as the flush point: all lanes quiescent, so
			// the flush may read task state across lanes.
			s.flushWindow(s.clock)
			s.nextFlush += s.cfg.MetricsWindow
			if s.nextFlush > s.cfg.Duration {
				s.nextFlush = 0
			}
		}
	}
	// Epoch exit: queue anything still in flight so engines hold the
	// complete pending set (Reassign/Finish rely on this).
	s.drainInboxes()
	s.mergeLaneFaults()
}
