package simulator

import (
	"fmt"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/trace"
)

// TaskSample is one task's runtime measurements over one metrics window —
// the feed of the adaptive scheduling loop (internal/adaptive). Samples are
// accumulated in plain per-task counters on the tuple hot path (a handful
// of integer adds, no allocation) and materialized only at window
// boundaries, into a buffer the Simulation reuses across flushes.
type TaskSample struct {
	// Topology, Component, TaskID and Node identify the task and where it
	// currently runs (placements change across Reassign epochs).
	Topology  string
	Component string
	TaskID    int
	Node      cluster.NodeID
	// Spout and Sink mirror the task's role; Dead marks tasks lost to a
	// node failure (their counters stop moving). NodeDead marks the host
	// node itself as currently down, letting observers distinguish a task
	// killed by a crash (restartable elsewhere once detected) from one the
	// OOM killer took on a healthy node.
	Spout    bool
	Sink     bool
	Dead     bool
	NodeDead bool

	// Window is the flush index (0-based); WindowStart/WindowEnd bound the
	// sampled interval in virtual time.
	Window      int
	WindowStart time.Duration
	WindowEnd   time.Duration

	// Busy is the (overcommit-stretched) service time completed in the
	// window; Busy over the window length is the executor's utilization.
	Busy time.Duration
	// Slowdown is the host node's CPU overcommit stretch factor at flush
	// time (>= 1), letting observers de-stretch Busy into real compute.
	Slowdown float64
	// NodeCPUCapacity is the host node's CPU capacity in points.
	NodeCPUCapacity float64

	// Processed counts bolt executions; Emitted counts spout root tuples.
	Processed int64
	Emitted   int64

	// QueueLen and QueueCap snapshot the input queue at flush time;
	// Overflows counts enqueue attempts during the window that found the
	// queue full and parked the producer (backpressure events).
	QueueLen  int
	QueueCap  int
	Overflows int64

	// BytesOut is the payload handed to this node's NIC by this task
	// during the window — its share of egress pressure.
	BytesOut int64

	// ResidentMemMB is the task's resident memory at flush time under the
	// runtime memory model (working set plus queued payload, memory.go);
	// NodeMemCapacityMB is the host node's memory capacity. Both are zero
	// when Config.MemoryModel is off: memory is then unmeasured and the
	// declared loads stay authoritative.
	ResidentMemMB     float64
	NodeMemCapacityMB float64

	// LatencySum / LatencyN accumulate spout-to-arrival latency for
	// tuples reaching this task when it is a sink (expired arrivals
	// included: the controller wants the truth, not the SLA view).
	LatencySum time.Duration
	LatencyN   int64

	// Latency is the window's complete-tree latency distribution digest
	// for sink tasks under Config.LatencyHistograms — the percentile
	// substrate SLO-aware scheduling reads. Zero-valued (Count == 0)
	// with histograms off or for non-sink tasks. A value copy: safe to
	// keep even though the sample slice itself is reused.
	Latency trace.Summary

	// Edges are this task's outgoing per-edge tuple counts for the window
	// — the measured traffic the paper's network-distance heuristic is a
	// proxy for. Like the sample slice itself, the backing array is owned
	// by the Simulation and reused across flushes: observers must copy
	// what they keep. Edges with zero traffic this window are included
	// (the slice is positionally stable across windows).
	Edges []EdgeRate
}

// EdgeRate is one delivery edge's measured traffic over a metrics window.
type EdgeRate struct {
	// DestTaskID / DestComponent identify the consumer.
	DestTaskID    int
	DestComponent string
	// Tuples is the number of tuple deliveries on this edge during the
	// window (dropped deliveries included: traffic is offered load).
	Tuples int64
	// Remote reports whether the edge crossed nodes at flush time. A
	// mid-window Reassign flushes the partial window before any task
	// moves, so the classification matches the placement the counted
	// traffic actually traversed.
	Remote bool
}

// Utilization returns the executor's busy fraction over the window.
func (ts TaskSample) Utilization() float64 {
	if w := ts.WindowEnd - ts.WindowStart; w > 0 {
		u := float64(ts.Busy) / float64(w)
		if u > 1 {
			u = 1
		}
		return u
	}
	return 0
}

// QueueFill returns the input queue's fill fraction at flush time.
func (ts TaskSample) QueueFill() float64 {
	if ts.QueueCap <= 0 {
		return 0
	}
	return float64(ts.QueueLen) / float64(ts.QueueCap)
}

// Observer receives every task's sample at each metrics-window boundary.
// The samples slice (and its backing array) is owned by the Simulation and
// reused across flushes: observers must copy anything they keep. OnWindow
// runs inside the event loop, in deterministic task order (topology
// registration order, then dense task ID), and must not call back into the
// Simulation.
type Observer interface {
	OnWindow(samples []TaskSample)
}

// SetObserver attaches the metrics tap. It must be called before the
// simulation starts; passing nil detaches it.
func (s *Simulation) SetObserver(o Observer) error {
	if s.started {
		return fmt.Errorf("simulation already started")
	}
	s.observer = o
	return nil
}

// windowFlush materializes every task's window counters into the reusable
// sample buffer, hands them to the observer, resets the counters, and
// schedules the next flush. Legacy-kernel only: the sharded kernel flushes
// at merge barriers (sharded.go), never from inside a lane's event loop,
// because flushWindow reads task state across every lane.
func (s *Simulation) windowFlush() {
	now := s.now()
	s.flushWindow(now)
	if next := now + s.cfg.MetricsWindow; next <= s.cfg.Duration {
		s.lanes[0].scheduleTask(s.cfg.MetricsWindow, evWindowFlush, nil)
	}
}

// flushPartialWindow delivers the counters accumulated since the last
// flush, if any — the tail window Finish must not silently drop when the
// duration is not a multiple of the metrics window, and the pre-migration
// slice of a window when Reassign lands mid-window. A no-op at an exact
// window boundary (nothing has accumulated) and when neither an observer
// nor latency histograms consume flushes.
func (s *Simulation) flushPartialWindow() {
	if s.observer == nil && !s.cfg.LatencyHistograms {
		return
	}
	if now := s.now(); now > s.lastFlush {
		s.flushWindow(now)
	}
}

// flushWindow materializes the window [s.lastFlush, now): samples for the
// observer (if attached), and the latency-histogram roll-up — per-task
// window digests into the samples, task histograms merged into the run's
// window and cumulative histograms, and the per-window p99 series closed
// at full window boundaries (partial flushes accumulate without closing,
// so the series stays aligned with the throughput series).
func (s *Simulation) flushWindow(now time.Duration) {
	observed := s.observer != nil
	buf := s.sampleBuf[:0]
	start := s.lastFlush
	memModel := s.cfg.MemoryModel
	for _, run := range s.runs {
		name := run.topo.Name()
		for _, st := range run.ordered {
			if observed {
				sample := TaskSample{
					Topology:        name,
					Component:       st.comp.Name,
					TaskID:          st.task.ID,
					Node:            st.node.id,
					Spout:           st.isSpout == 1,
					Sink:            st.isSink,
					Dead:            st.dead,
					NodeDead:        st.node.dead,
					Window:          s.windowIdx,
					WindowStart:     start,
					WindowEnd:       now,
					Busy:            st.winBusy,
					Slowdown:        st.node.slowdown,
					NodeCPUCapacity: st.node.spec.Capacity.CPU,
					Processed:       st.winProcessed,
					Emitted:         st.winEmitted,
					QueueLen:        st.queue.len(),
					QueueCap:        s.cfg.QueueCapacity,
					Overflows:       st.winOverflows,
					BytesOut:        st.winBytesOut,
					LatencySum:      st.winLatSum,
					LatencyN:        st.winLatN,
				}
				if memModel {
					sample.ResidentMemMB = s.residentMemMB(st)
					sample.NodeMemCapacityMB = st.node.spec.Capacity.MemoryMB
				}
				if st.hist != nil {
					sample.Latency = st.hist.Summarize()
				}
				if len(st.edges) > 0 {
					sample.Edges = st.materializeEdges()
				}
				buf = append(buf, sample)
			}
			if st.hist != nil {
				run.winHist.Merge(st.hist)
				run.cumHist.Merge(st.hist)
				st.hist.Reset()
			}
			st.resetWindow()
		}
		if run.winHist != nil {
			for time.Duration(len(run.latP99)+1)*s.cfg.MetricsWindow <= now {
				run.latP99 = append(run.latP99,
					float64(run.winHist.Quantile(0.99))/float64(time.Millisecond))
				run.winHist.Reset()
			}
		}
	}
	if observed {
		s.sampleBuf = buf
		s.observer.OnWindow(buf)
	}
	s.windowIdx++
	s.lastFlush = now
}

// materializeEdges snapshots the task's per-edge counters into its
// reusable EdgeRate buffer for the observer. Remote-ness is classified
// against current placements, which match the flushed interval: Reassign
// flushes the partial window before moving anything.
func (t *simTask) materializeEdges() []EdgeRate {
	buf := t.edgeBuf[:0]
	for _, e := range t.edges {
		buf = append(buf, EdgeRate{
			DestTaskID:    e.dest.task.ID,
			DestComponent: e.dest.comp.Name,
			Tuples:        e.tuples,
			Remote:        e.dest.node != t.node,
		})
	}
	t.edgeBuf = buf
	return buf
}

// resetWindow clears the per-window counters after a flush.
func (t *simTask) resetWindow() {
	t.winBusy = 0
	t.winProcessed = 0
	t.winEmitted = 0
	t.winOverflows = 0
	t.winBytesOut = 0
	t.winLatSum = 0
	t.winLatN = 0
	for _, e := range t.edges {
		e.tuples = 0
	}
}
